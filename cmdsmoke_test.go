package rtmap

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdSmoke builds every cmd/ binary and runs each one end-to-end on a
// tiny model (or -h where the tool's real run would be slow), so a broken
// flag surface or a panic in a main package fails the suite.
func TestCmdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the command-line tools")
	}
	bin := t.TempDir()
	tools := []string{"rtmap-bench", "rtmap-compile", "rtmap-dfg", "rtmap-diag", "rtmap-sim"}
	for _, tool := range tools {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "rtmap/cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", tool, err, out)
		}
	}

	cases := []struct {
		tool string
		args []string
		want string // substring expected in combined output
	}{
		{"rtmap-bench", []string{"-h"}, "table2"},
		{"rtmap-compile", []string{"-model", "tinycnn"}, "tinycnn"},
		{"rtmap-compile", []string{"-model", "tinycnn", "-no-cse", "-serial", "-no-cache"}, "arrays"},
		{"rtmap-dfg", []string{"-eq1"}, "unroll+CSE"},
		{"rtmap-diag", []string{"-tiny"}, "TinyCNN RTM"},
		{"rtmap-sim", []string{"-model", "tinycnn", "-inputs", "1"}, "OK"},
	}
	for _, tc := range cases {
		name := tc.tool + " " + strings.Join(tc.args, " ")
		cmd := exec.Command(filepath.Join(bin, tc.tool), tc.args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			// -h exits 0 under the flag package; any other failure is real.
			if ee, ok := err.(*exec.ExitError); !ok || len(tc.args) == 0 || tc.args[0] != "-h" || ee.ExitCode() != 0 {
				t.Errorf("%s: %v\n%s", name, err, out)
				continue
			}
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: output missing %q:\n%s", name, tc.want, out)
		}
	}
}
