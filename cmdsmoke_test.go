package rtmap

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rtmap/internal/workload"
)

// buildTools compiles the given cmd/ binaries into a temp dir.
func buildTools(t *testing.T, tools ...string) string {
	t.Helper()
	bin := t.TempDir()
	for _, tool := range tools {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "rtmap/cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", tool, err, out)
		}
	}
	return bin
}

// TestCmdSmoke builds every cmd/ binary and runs each one end-to-end on a
// tiny model (or -h where the tool's real run would be slow), so a broken
// flag surface or a panic in a main package fails the suite.
func TestCmdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the command-line tools")
	}
	bin := buildTools(t, "rtmap-bench", "rtmap-compile", "rtmap-dfg", "rtmap-diag", "rtmap-sim", "rtmap-load", "rtmap-router", "rtmap-trace", "rtmap-vet")

	cases := []struct {
		tool string
		args []string
		want string // substring expected in combined output
	}{
		{"rtmap-bench", []string{"-h"}, "table2"},
		{"rtmap-bench", []string{"-shards", "3", "-net", "tinycnn", "-q"}, "Pipeline-sharding frontier"},
		{"rtmap-bench", []string{"-shards", "3", "-net", "tinycnn", "-q", "-json"}, `"steady_infer_per_s"`},
		{"rtmap-compile", []string{"-model", "tinycnn"}, "tinycnn"},
		{"rtmap-compile", []string{"-model", "tinycnn", "-no-cse", "-serial", "-no-cache"}, "arrays"},
		{"rtmap-dfg", []string{"-eq1"}, "unroll+CSE"},
		{"rtmap-diag", []string{"-tiny"}, "TinyCNN RTM"},
		{"rtmap-sim", []string{"-model", "tinycnn", "-inputs", "1"}, "OK"},
		{"rtmap-sim", []string{"-model", "tinycnn", "-inputs", "1", "-json"}, `"ok": true`},
		{"rtmap-load", []string{"-h"}, "closed-loop"},
		{"rtmap-router", []string{"-h"}, "health probe period"},
		{"rtmap-trace", []string{"-h"}, "/debug/traces"},
		{"rtmap-vet", []string{"-h"}, "plans"},
		// Lint mode over the repo: exit 0, no findings printed.
		{"rtmap-vet", []string{"./..."}, ""},
	}
	for _, tc := range cases {
		name := tc.tool + " " + strings.Join(tc.args, " ")
		cmd := exec.Command(filepath.Join(bin, tc.tool), tc.args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			// -h exits 0 under the flag package; any other failure is real.
			if ee, ok := err.(*exec.ExitError); !ok || len(tc.args) == 0 || tc.args[0] != "-h" || ee.ExitCode() != 0 {
				t.Errorf("%s: %v\n%s", name, err, out)
				continue
			}
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: output missing %q:\n%s", name, tc.want, out)
		}
	}
}

// TestServeSmoke boots the real rtmap-serve binary on a random port,
// checks /healthz, runs one bit-exact inference through /v1/infer and
// compares it to RunFunctional, drives it briefly with the real
// rtmap-load binary, and SIGTERMs it expecting a clean drain (exit 0).
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the serving binaries")
	}
	bin := buildTools(t, "rtmap-serve", "rtmap-load", "rtmap-trace")

	srv := exec.Command(filepath.Join(bin, "rtmap-serve"),
		"-addr", "127.0.0.1:0", "-devices", "2", "-max-batch", "4", "-batch-window", "1ms",
		"-shard-stages", "2", "-trace-sample", "4")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The server logs "listening on HOST:PORT" once bound.
	var addr string
	sc := bufio.NewScanner(stderr)
	linec := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				linec <- strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
		close(linec)
	}()
	select {
	case a, ok := <-linec:
		if !ok {
			t.Fatal("rtmap-serve exited before binding")
		}
		addr = a
	case <-time.After(30 * time.Second):
		t.Fatal("rtmap-serve did not report its listen address")
	}
	// Drain the rest of stderr so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", resp.StatusCode)
	}

	// One bit-exact inference must equal RunFunctional on the same
	// network and input.
	net := BuildTinyCNN(ModelConfig{ActBits: 4, Sparsity: 0.8, Seed: 1})
	cfg := DefaultCompileConfig()
	cfg.KeepPrograms = true
	comp, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := workload.Inputs(net.InputShape, 1, 99)[0]
	tr, err := RunFunctional(comp, in)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"model": "tinycnn", "bit_exact": true, "inputs": [][]float32{in.Data},
	})
	if err != nil {
		t.Fatal(err)
	}
	post, err := http.Post(base+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/infer: %v", err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("/v1/infer: HTTP %d", post.StatusCode)
	}
	var infer struct {
		Results []struct {
			Logits []int32 `json:"logits"`
		} `json:"results"`
	}
	if err := json.NewDecoder(post.Body).Decode(&infer); err != nil {
		t.Fatal(err)
	}
	if len(infer.Results) != 1 {
		t.Fatalf("%d results", len(infer.Results))
	}
	want := tr.Logits().Data
	if fmt.Sprint(infer.Results[0].Logits) != fmt.Sprint(want) {
		t.Fatalf("served logits %v != RunFunctional %v", infer.Results[0].Logits, want)
	}

	// Drive it with the real load generator for a moment; -inspect prints
	// the pipeline path the sharded server reports, and -trace-sample
	// exercises the client-side trace join against /debug/traces.
	load := exec.Command(filepath.Join(bin, "rtmap-load"),
		"-url", base, "-model", "tinycnn", "-duration", "300ms", "-concurrency", "2",
		"-trace-sample", "2", "-json", "-inspect")
	out, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("rtmap-load: %v\n%s", err, out)
	}
	for _, want := range []string{`"req_per_s"`, `"p95"`, `"errors": 0`, "pipeline stages via devices",
		`"sampled"`, `"client_wall_ms"`, `"server_phase_ms"`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("rtmap-load output missing %s:\n%s", want, out)
		}
	}

	// The trace analyzer must see the sampled spans on the live server and
	// attribute the two pipeline stages.
	tout, err := exec.Command(filepath.Join(bin, "rtmap-trace"),
		"-url", base, "-model", "tinycnn").CombinedOutput()
	if err != nil {
		t.Fatalf("rtmap-trace: %v\n%s", err, tout)
	}
	for _, want := range []string{"model tinycnn", "stage 0:", "stage 1:", "bottleneck"} {
		if !strings.Contains(string(tout), want) {
			t.Errorf("rtmap-trace output missing %q:\n%s", want, tout)
		}
	}

	// Graceful drain: SIGTERM → exit 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rtmap-serve did not exit cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rtmap-serve did not exit after SIGTERM")
	}
}
