package rtmap

import (
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/xbar"
)

// CSEReduction reports the relative reduction of DFG adds/subs achieved by
// CSE on one network (the paper: "the CSE optimization alone reduces the
// number of additions by an average of 31%"). A non-nil cache memoizes the
// per-layer counts; nil counts uncached.
func CSEReduction(net *Network, cache *CompileCache) (float64, error) {
	oc, err := core.CountOps(net, true, cache)
	if err != nil {
		return 0, err
	}
	if oc.Unroll == 0 {
		return 0, fmt.Errorf("rtmap: no operations counted")
	}
	return 1 - float64(oc.CSE)/float64(oc.Unroll), nil
}

// CSEReductionAverage averages CSEReduction over the paper's three
// networks at their Table II sparsities.
func CSEReductionAverage(seed uint64, cache *CompileCache) (float64, error) {
	nets := []*Network{
		model.ResNet18(model.Config{ActBits: 4, Sparsity: 0.8, Seed: seed}),
		model.VGG9(model.Config{ActBits: 4, Sparsity: 0.85, Seed: seed}),
		model.VGG11(model.Config{ActBits: 4, Sparsity: 0.85, Seed: seed}),
	}
	total := 0.0
	for _, n := range nets {
		r, err := CSEReduction(n, cache)
		if err != nil {
			return 0, err
		}
		total += r
	}
	return total / float64(len(nets)), nil
}

// MovementComparison reports the data-movement energy share of RTM-AP and
// of the crossbar baseline for one network (§V-C: ≈3% vs 41%).
func MovementComparison(net *Network, cfg CompileConfig) (rtmShare, xbarShare float64, err error) {
	comp, err := core.Compile(net, cfg)
	if err != nil {
		return 0, 0, err
	}
	rep := sim.Analyze(comp)
	ai := 4
	for i := range net.Layers {
		if net.Layers[i].Kind == model.KindActQuant {
			ai = net.Layers[i].Q.Bits
			break
		}
	}
	xb := xbar.Analyze(net, xbar.Default(), ai)
	return rep.MovementShare(), xb.MovementShare(), nil
}
