// Command rtmap-compile runs the compilation flow on a network and prints
// the per-layer mapping and instruction statistics:
//
//	rtmap-compile -model resnet18                    # built-in model
//	rtmap-compile -model vgg9 -bits 8 -sparsity 0.9  # other Table II points
//	rtmap-compile -json net.json                     # serialized model
//	rtmap-compile -model vgg9 -save net.json         # export a model
//	rtmap-compile -model resnet18 -no-cse            # `unroll` configuration
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rtmap"
	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
)

func buildNet(name string, bits int, sparsity float64, seed uint64) (*rtmap.Network, error) {
	cfg := rtmap.ModelConfig{ActBits: bits, Sparsity: sparsity, Seed: seed}
	switch name {
	case "resnet18":
		return rtmap.BuildResNet18(cfg), nil
	case "vgg9":
		return rtmap.BuildVGG9(cfg), nil
	case "vgg11":
		return rtmap.BuildVGG11(cfg), nil
	case "tinycnn":
		return rtmap.BuildTinyCNN(cfg), nil
	case "tinyresnet":
		return rtmap.BuildTinyResNet(cfg), nil
	}
	return nil, fmt.Errorf("unknown model %q (resnet18|vgg9|vgg11|tinycnn|tinyresnet)", name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-compile: ")
	var (
		modelName = flag.String("model", "", "built-in model name")
		jsonPath  = flag.String("json", "", "load model from JSON instead")
		savePath  = flag.String("save", "", "serialize the model to JSON and exit")
		bits      = flag.Int("bits", 4, "activation precision")
		sparsity  = flag.Float64("sparsity", 0.8, "ternary weight sparsity")
		seed      = flag.Uint64("seed", 1, "weight seed")
		noCSE     = flag.Bool("no-cse", false, "disable CSE (the `unroll` configuration)")
		serial    = flag.Bool("serial", false, "disable the parallel lowering driver")
		noCache   = flag.Bool("no-cache", false, "disable the compiled-artifact cache")
	)
	flag.Parse()

	var net *rtmap.Network
	var err error
	switch {
	case *jsonPath != "":
		net, err = model.LoadFile(*jsonPath)
	case *modelName != "":
		net, err = buildNet(*modelName, *bits, *sparsity, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *savePath != "" {
		if err := net.SaveFile(*savePath); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *savePath)
		return
	}

	cfg := rtmap.DefaultCompileConfig()
	cfg.CSE = !*noCSE
	cfg.Parallel = !*serial
	if *noCache {
		cfg.Cache = nil
	}
	comp, err := rtmap.Compile(net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep := sim.Analyze(comp)

	fmt.Printf("%s  (sparsity %.2f, %d-bit activations, CSE %v)\n",
		net.Name, net.WeightSparsity(), *bits, cfg.CSE)
	fmt.Printf("arrays: %d × 256×256   total adds/subs: %d   energy %.2f uJ   latency %.3f ms\n\n",
		comp.PoolArrays, comp.TotalAddSub(), rep.EnergyUJ(), rep.LatencyMS())
	fmt.Printf("%-24s %6s %5s %5s×%-4s %5s %5s %5s %6s %9s %9s %7s\n",
		"layer", "P", "rowG", "strip", "og", "plane", "tiles", "accW", "adds", "accumOps", "energy-uJ", "lat-us")
	for i, p := range comp.Layers {
		if p.Class != core.ClassConv {
			continue
		}
		lr := rep.Layers[i]
		fmt.Printf("%-24s %6d %5d %5d×%-4d %5d %5d %5d %6d %9d %9.3f %7.1f\n",
			p.Name, p.P, p.RowGroups, p.Strips, p.OutGroups, p.Planes, p.Tiles, p.AccWidth,
			p.AddSubOps, p.CG.AccumOps, lr.Energy.TotalPJ()/1e6, lr.LatencyNS/1e3)
	}
}
