package main

import (
	"testing"
	"time"
)

// Nearest-rank percentiles over tiny samples: every p must stay in
// range and follow the ceil(p·n)-1 definition.
func TestPercentileNearestRank(t *testing.T) {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   float64 // ms
	}{
		{"empty", nil, 0.99, 0},
		{"empty max", nil, 1.0, 0},
		{"n=1 p0", []time.Duration{ms(5)}, 0, 5},
		{"n=1 p50", []time.Duration{ms(5)}, 0.5, 5},
		{"n=1 max", []time.Duration{ms(5)}, 1.0, 5},
		{"n=2 p50 is the lower rank", []time.Duration{ms(1), ms(9)}, 0.5, 1},
		{"n=2 p95", []time.Duration{ms(1), ms(9)}, 0.95, 9},
		{"n=2 max", []time.Duration{ms(1), ms(9)}, 1.0, 9},
		{"n=2 p0 clamps low", []time.Duration{ms(1), ms(9)}, 0, 1},
		// ceil(0.5·4)-1 = 1: the 2nd of 4 observations.
		{"n=4 p50", []time.Duration{ms(1), ms(2), ms(3), ms(4)}, 0.5, 2},
		// ceil(0.99·100)-1 = 98 — the old int(p·(n-1)) truncation hit 98
		// too, but ceil(0.95·100)-1 = 94 vs the old 94.05→94; the
		// definitions diverge at e.g. p=0.9: ceil(90)-1 = 89 vs 89.1→89.
		{"n=100 p99", ramp(ms, 100), 0.99, 99},
		{"n=100 max in range", ramp(ms, 100), 1.0, 100},
	}
	for _, tc := range cases {
		if got := percentileMS(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentileMS(p=%g) = %g ms, want %g", tc.name, tc.p, got, tc.want)
		}
	}
}

func ramp(ms func(float64) time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = ms(float64(i + 1))
	}
	return out
}
