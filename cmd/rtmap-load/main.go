// Command rtmap-load is a load generator for rtmap-serve: it discovers
// the model's input shape from /v1/models, pre-builds a pool of synthetic
// request payloads, drives /v1/infer in closed-loop (fixed concurrency)
// or open-loop (fixed arrival rate) mode, and reports throughput and
// latency percentiles — the serving path's benchmark harness.
//
//	rtmap-load -url http://127.0.0.1:8080 -model tinycnn -duration 5s -concurrency 8
//	rtmap-load -model tinycnn -rate 200 -duration 10s     # open loop, 200 req/s
//	rtmap-load -model tinycnn -batch 4 -bit-exact -json
//	rtmap-load -model tinycnn -trace-sample 16            # trace 1-in-16, join vs server spans
//	rtmap-load -model tinycnn -rate 400 -mix "interactive:50:25,standard:30:100,bulk:20:0"
//
// With -mix, each request carries a priority class and deadline drawn
// from a deterministic 100-slot schedule of class:weight:deadline_ms
// entries (deadline 0 = none). Sheds (HTTP 429) and expiries (HTTP 503
// kind "expired") are counted per class rather than as errors, and the
// report adds goodput: requests that returned 200 within their own
// deadline budget — the serving metric the SLO scheduler optimizes.
//
// With -trace-sample N, one in N requests carries an X-Rtmap-Trace
// header; after the run the generator scrapes the server's /debug/traces
// and joins each sampled request's client wall time against the server's
// phase breakdown (wait/queue/exec/stage/hop), so queueing delay is
// attributable from a single report.
//
// Every outcome is classified into an error taxonomy — ok, http_429,
// http_503, http_4xx, http_5xx, connect_refused, timeout, reset, other —
// reported as a per-category tally, so a failed run says *how* it failed
// (a refused dial and a shed read very differently). -retry N re-fires
// a request up to N times on transient categories (refused, timeout,
// reset, non-expired 503) with capped exponential backoff; the report
// then distinguishes per-attempt latency (each wire round trip) from
// per-request latency (what the caller actually waited, retries and
// backoff included). -rejects-ok treats clean backpressure (429/503) as
// an expected outcome instead of an error — the right stance when
// driving the cluster router, whose load shedding is part of the
// contract being measured.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rtmap/internal/serve"
	"rtmap/internal/tensor"
	"rtmap/internal/trace"
	"rtmap/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-load: ")
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "rtmap-serve base URL")
		modelName   = flag.String("model", "tinycnn", "model to load (see /v1/models)")
		bits        = flag.Int("bits", 4, "activation precision")
		sparsity    = flag.Float64("sparsity", 0.8, "weight sparsity")
		seed        = flag.Uint64("seed", 1, "model weight seed (payload seed derives from it)")
		duration    = flag.Duration("duration", 5*time.Second, "measurement duration")
		concurrency = flag.Int("concurrency", 4, "closed-loop worker count")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		batch       = flag.Int("batch", 1, "inputs per request")
		payloads    = flag.Int("payloads", 16, "distinct pre-built payloads cycled through")
		bitExact    = flag.Bool("bit-exact", false, "request bit-exact AP execution instead of the software reference")
		jsonOut     = flag.Bool("json", false, "emit the results as JSON")
		outFile     = flag.String("out", "", "also write the JSON report to this file (BENCH_*.json artifact feed)")
		inspect     = flag.Bool("inspect", false, "print one response's batch accounting (device path, pipeline stages, simulated cost) before the run")
		traceSample = flag.Int("trace-sample", 0, "send an X-Rtmap-Trace header on 1-in-N requests and join client wall time against the server's /debug/traces phase breakdown (0 disables)")
		mixSpec     = flag.String("mix", "", "per-request SLO mix as class:weight:deadline_ms entries, e.g. \"interactive:50:25,standard:30:100,bulk:20:0\" (deadline 0 = none); sheds and expiries count per class, and the report adds goodput")
		retries     = flag.Int("retry", 0, "client-side retries per request on transient failures (refused/timeout/reset/non-expired 503), with capped exponential backoff")
		rejectsOK   = flag.Bool("rejects-ok", false, "count clean backpressure (HTTP 429/503) as rejections rather than errors — for servers/routers whose shedding is expected")
	)
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatalf("-mix: %v", err)
	}

	shape, err := discoverShape(*url, *modelName)
	if err != nil {
		log.Fatal(err)
	}

	bodies := buildPayloads(payloadSpec{
		model: *modelName, bits: *bits, sparsity: *sparsity, seed: *seed,
		bitExact: *bitExact, batch: *batch, n: *payloads, shape: shape,
	})

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}}
	inferURL := *url + "/v1/infer"

	// Warm-up: admit (compile) the model and open connections before the
	// measurement window.
	if _, err := post(client, inferURL, bodies[0], "", nil); err != nil {
		log.Fatalf("warm-up request: %v", err)
	}
	if *inspect {
		if err := inspectOnce(client, inferURL, bodies[0]); err != nil {
			log.Fatalf("inspect request: %v", err)
		}
	}

	var (
		mu          sync.Mutex
		latencies   []time.Duration // per-request: attempts plus retry backoff
		attemptLats []time.Duration // per-attempt: each wire round trip
		categories  = map[string]int64{}
		errs        int
		rejected    int
		retried     int64
		slo         map[string]*classTally
	)
	if mix != nil {
		slo = map[string]*classTally{}
		for _, c := range mix.classes {
			slo[c.name] = &classTally{deadlineMS: c.deadlineMS}
		}
	}
	recordAttempt := func(d time.Duration, category string) {
		mu.Lock()
		attemptLats = append(attemptLats, d)
		categories[category]++
		mu.Unlock()
	}
	record := func(d time.Duration, sc *sloClass, sh shot, err error) {
		cat := classify(sh, err)
		mu.Lock()
		defer mu.Unlock()
		var ct *classTally
		if sc != nil {
			ct = slo[sc.name]
			ct.sent++
		}
		switch cat {
		case "ok":
			latencies = append(latencies, d)
			if ct != nil {
				ct.accepted++
				if sc.deadlineMS == 0 || d.Seconds()*1e3 <= sc.deadlineMS {
					ct.goodput++
				}
			}
		case "http_429", "http_503":
			// Clean backpressure: an error document with Retry-After. With a
			// mix, sheds and expiries are expected per-class outcomes; with
			// -rejects-ok, any of them is an expected rejection; otherwise
			// the legacy contract holds and they fail the run.
			expected := *rejectsOK
			switch {
			case ct == nil:
			case cat == "http_429":
				ct.shed++
				expected = true
			case sh.kind == "expired":
				ct.expired++
				expected = true
			case *rejectsOK:
				ct.shed++
			default:
				ct.failed++
			}
			if expected {
				rejected++
			} else {
				errs++
			}
		default:
			errs++
			if ct != nil {
				ct.failed++
			}
		}
	}

	tj := newTraceJoin(*traceSample)

	// fire issues request i end to end: the attempt/retry loop, per-attempt
	// taxonomy accounting, and the per-request outcome.
	fire := func(i int) {
		id := tj.id()
		sc := mix.next()
		t0 := time.Now()
		var sh shot
		var err error
		for attempt := 0; ; attempt++ {
			a0 := time.Now()
			sh, err = post(client, inferURL, bodies[i%len(bodies)], id, sc)
			recordAttempt(time.Since(a0), classify(sh, err))
			if attempt >= *retries || !retryable(classify(sh, err), sh.kind) {
				break
			}
			mu.Lock()
			retried++
			mu.Unlock()
			backoff := (10 * time.Millisecond) << uint(attempt)
			if backoff > 250*time.Millisecond {
				backoff = 250 * time.Millisecond
			}
			time.Sleep(backoff)
		}
		d := time.Since(t0)
		record(d, sc, sh, err)
		if err == nil && sh.status == http.StatusOK {
			tj.record(id, d)
		}
	}

	start := time.Now()
	deadline := start.Add(*duration)
	if *rate > 0 {
		openLoop(*rate, deadline, fire)
	} else {
		closedLoop(*concurrency, deadline, fire)
	}
	elapsed := time.Since(start)

	report(reportInput{
		model: *modelName, mode: mode(*rate), bitExact: *bitExact,
		batch: *batch, latencies: latencies, errs: errs, elapsed: elapsed,
		attempts: attemptLats, categories: categories,
		rejected: rejected, retried: retried,
		trace: tj.join(*url, *modelName), slo: slo,
	}, *jsonOut, *outFile)
	if errs > 0 {
		os.Exit(1)
	}
}

// classify maps one attempt's outcome onto the error taxonomy: HTTP
// answers by status, transport failures by cause. The categories let a
// failed run say how it failed — connect_refused means nobody listens,
// timeout means something accepted and stalled, http_503 means a node
// answered and declined — which is exactly the distinction the cluster
// chaos gates and the router's retry policy reason about.
func classify(sh shot, err error) string {
	if sh.status != 0 {
		switch {
		case sh.status == http.StatusOK:
			return "ok"
		case sh.status == http.StatusTooManyRequests:
			return "http_429"
		case sh.status == http.StatusServiceUnavailable:
			return "http_503"
		case sh.status >= 500:
			return "http_5xx"
		case sh.status >= 400:
			return "http_4xx"
		}
		return fmt.Sprintf("http_%d", sh.status)
	}
	switch {
	case err == nil:
		return "other" // status 0 with no error should not happen
	case errors.Is(err, syscall.ECONNREFUSED):
		return "connect_refused"
	case errors.Is(err, syscall.ECONNRESET):
		return "reset"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	return "other"
}

// retryable reports whether an attempt's outcome is transient enough to
// re-fire under -retry: refused dials, timeouts, resets, and non-expired
// 503s (a shedding or draining server invites a retry with Retry-After;
// an expired deadline cannot succeed on one).
func retryable(category, kind string) bool {
	switch category {
	case "connect_refused", "timeout", "reset":
		return true
	case "http_503":
		return kind != "expired"
	}
	return false
}

// sloClass is one -mix entry: a priority class and the deadline budget
// its requests carry (0 = no deadline).
type sloClass struct {
	name       string
	weight     int
	deadlineMS float64
}

// sloMix assigns each request a class from a deterministic 100-slot
// schedule proportional to the entry weights, so two runs with the same
// flags offer the same class sequence regardless of worker interleaving.
type sloMix struct {
	classes  []sloClass
	schedule []*sloClass
	n        atomic.Uint64
}

// parseMix decodes "class:weight:deadline_ms,..." into a mix; an empty
// spec returns nil (SLO headers off).
func parseMix(spec string) (*sloMix, error) {
	if spec == "" {
		return nil, nil
	}
	m := &sloMix{}
	total := 0
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("entry %q: want class:weight:deadline_ms", part)
		}
		var c sloClass
		c.name = strings.TrimSpace(fields[0])
		if _, err := fmt.Sscanf(fields[1], "%d", &c.weight); err != nil || c.weight <= 0 {
			return nil, fmt.Errorf("entry %q: weight must be a positive integer", part)
		}
		if _, err := fmt.Sscanf(fields[2], "%g", &c.deadlineMS); err != nil || c.deadlineMS < 0 {
			return nil, fmt.Errorf("entry %q: deadline_ms must be a non-negative number", part)
		}
		m.classes = append(m.classes, c)
		total += c.weight
	}
	// Proportional fill by running quota (Bresenham-style): slot i goes
	// to the class furthest behind its weight share, which interleaves
	// classes instead of batching each one's slots together.
	const slots = 100
	assigned := make([]int, len(m.classes))
	for i := 0; i < slots; i++ {
		best, bestLag := 0, -1.0
		for j, c := range m.classes {
			lag := float64(c.weight)*float64(i+1)/float64(total) - float64(assigned[j])
			if lag > bestLag {
				best, bestLag = j, lag
			}
		}
		assigned[best]++
		m.schedule = append(m.schedule, &m.classes[best])
	}
	return m, nil
}

// next returns the class of the next request. Safe on a nil receiver
// (mix disabled): every request is classless.
func (m *sloMix) next() *sloClass {
	if m == nil {
		return nil
	}
	return m.schedule[(m.n.Add(1)-1)%uint64(len(m.schedule))]
}

// classTally is the client-side per-class ledger; the accounting-audit
// test in internal/serve checks the server agrees with the same sums.
type classTally struct {
	deadlineMS float64
	sent       int64
	accepted   int64
	shed       int64
	expired    int64
	failed     int64
	goodput    int64 // accepted AND inside the class deadline budget
}

func mode(rate float64) string {
	if rate > 0 {
		return "open"
	}
	return "closed"
}

// discoverShape asks the server for the model's input shape, so the
// generator needs no local model build and stays honest about what the
// server actually serves.
func discoverShape(baseURL, model string) (tensor.Shape, error) {
	resp, err := http.Get(baseURL + "/v1/models")
	if err != nil {
		return tensor.Shape{}, fmt.Errorf("querying /v1/models: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return tensor.Shape{}, fmt.Errorf("/v1/models: HTTP %d", resp.StatusCode)
	}
	var list struct {
		Available []struct {
			Model     string `json:"model"`
			InputNCHW [4]int `json:"input_nchw"`
		} `json:"available"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return tensor.Shape{}, fmt.Errorf("decoding /v1/models: %w", err)
	}
	for _, m := range list.Available {
		if m.Model == model {
			s := m.InputNCHW
			return tensor.Shape{N: s[0], C: s[1], H: s[2], W: s[3]}, nil
		}
	}
	return tensor.Shape{}, fmt.Errorf("model %q not served at %s", model, baseURL)
}

type payloadSpec struct {
	model    string
	bits     int
	sparsity float64
	seed     uint64
	bitExact bool
	batch    int
	n        int
	shape    tensor.Shape
}

func buildPayloads(s payloadSpec) [][]byte {
	if s.n < 1 {
		s.n = 1
	}
	if s.batch < 1 {
		s.batch = 1
	}
	data := workload.InputData(s.shape, s.n*s.batch, s.seed+1000)
	bodies := make([][]byte, s.n)
	for i := range bodies {
		req := serve.InferRequest{
			Model: s.model, ActBits: s.bits, Sparsity: &s.sparsity, Seed: s.seed,
			BitExact: s.bitExact, Inputs: data[i*s.batch : (i+1)*s.batch],
		}
		b, err := json.Marshal(&req)
		if err != nil {
			log.Fatal(err)
		}
		bodies[i] = b
	}
	return bodies
}

// shot is one request's classified outcome: the HTTP status plus, for
// non-200 answers, the structured error kind the server attached.
type shot struct {
	status int
	kind   string
}

// post fires one request, attaching the trace header and the class's
// SLO headers when set. The returned error covers transport failures
// only — HTTP-level rejections come back classified in the shot, and
// the caller decides whether they are errors (no -mix) or expected
// outcomes (sheds and expiries under a mix). Without a mix (sc nil), a
// non-200 status is also returned as an error to keep the legacy
// contract for warm-up and plain runs.
func post(client *http.Client, url string, body []byte, traceID string, sc *sloClass) (shot, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return shot{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(serve.TraceHeader, traceID)
	}
	if sc != nil {
		req.Header.Set(serve.ClassHeader, sc.name)
		if sc.deadlineMS > 0 {
			req.Header.Set(serve.DeadlineHeader, fmt.Sprintf("%g", sc.deadlineMS))
		}
	}
	resp, err := client.Do(req)
	if err != nil {
		return shot{}, err
	}
	defer resp.Body.Close()
	sh := shot{status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return sh, err
		}
		return sh, nil
	}
	var eresp struct {
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err == nil {
		sh.kind = eresp.Kind
	}
	io.Copy(io.Discard, resp.Body)
	if sc == nil {
		return sh, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return sh, nil
}

// closedLoop runs `workers` goroutines that each fire the next request as
// soon as the previous one returns.
func closedLoop(workers int, deadline time.Time, fire func(i int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				fire(i)
			}
		}(w)
	}
	wg.Wait()
}

// openLoop fires requests on a fixed schedule regardless of completions
// (up to a bounded number in flight), which measures latency under a
// target arrival rate rather than a target concurrency.
func openLoop(rate float64, deadline time.Time, fire func(i int)) {
	interval := time.Duration(float64(time.Second) / rate)
	sem := make(chan struct{}, 1024)
	var wg sync.WaitGroup
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; time.Now().Before(deadline); i++ {
		<-tick.C
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fire(i)
		}(i)
	}
	wg.Wait()
}

// traceJoin samples 1-in-N requests with a client-chosen trace ID and,
// after the run, joins each sampled request's client wall time against
// the server-side span breakdown scraped from /debug/traces. IDs carry a
// run-unique prefix so back-to-back runs against one server don't mix.
type traceJoin struct {
	every  int
	prefix string
	n      atomic.Uint64

	mu   sync.Mutex
	wall map[string]time.Duration
}

func newTraceJoin(every int) *traceJoin {
	if every <= 0 {
		return nil
	}
	return &traceJoin{
		every:  every,
		prefix: fmt.Sprintf("load%09x.", time.Now().UnixNano()&0xfffffffff),
		wall:   map[string]time.Duration{},
	}
}

// id returns the trace ID the next request should carry, or "" when that
// request is unsampled. Safe on a nil receiver (tracing disabled).
func (t *traceJoin) id() string {
	if t == nil {
		return ""
	}
	n := t.n.Add(1)
	if n%uint64(t.every) != 0 {
		return ""
	}
	return fmt.Sprintf("%s%d", t.prefix, n)
}

// record stores a sampled request's client-observed wall time.
func (t *traceJoin) record(id string, wall time.Duration) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	t.wall[id] = wall
	t.mu.Unlock()
}

// join scrapes /debug/traces and aggregates the server's spans for every
// sampled request: wait/queue/http take the max across a trace's spans
// (requeues re-emit them), exec/stage/hop sum (a sharded request spends
// exec time in several stage spans). Returns nil when tracing is off;
// logs and returns a partial report when the scrape fails, so a load run
// never fails on the join.
func (t *traceJoin) join(baseURL, model string) map[string]any {
	if t == nil {
		return nil
	}
	sampled := len(t.wall)
	out := map[string]any{"sampled": sampled, "joined": 0}
	if sampled == 0 {
		return out
	}
	resp, err := http.Get(baseURL + "/debug/traces?model=" + neturl.QueryEscape(model))
	if err != nil {
		log.Printf("trace join: %v", err)
		return out
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Printf("trace join: /debug/traces: HTTP %d", resp.StatusCode)
		return out
	}
	var body struct {
		Spans []trace.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Printf("trace join: decoding /debug/traces: %v", err)
		return out
	}

	maxPhases := map[string]bool{"http": true, "wait": true, "queue": true}
	agg := map[string]map[string]time.Duration{} // trace ID -> phase -> ns
	for _, sp := range body.Spans {
		if !strings.HasPrefix(sp.TraceID, t.prefix) {
			continue
		}
		if _, ours := t.wall[sp.TraceID]; !ours {
			continue
		}
		p := agg[sp.TraceID]
		if p == nil {
			p = map[string]time.Duration{}
			agg[sp.TraceID] = p
		}
		d := time.Duration(sp.Dur)
		if maxPhases[sp.Name] {
			if d > p[sp.Name] {
				p[sp.Name] = d
			}
		} else {
			p[sp.Name] += d
		}
	}

	byPhase := map[string][]time.Duration{}
	var walls []time.Duration
	for id, phases := range agg {
		walls = append(walls, t.wall[id])
		for name, d := range phases {
			byPhase[name] = append(byPhase[name], d)
		}
	}
	out["joined"] = len(agg)
	if len(agg) < sampled {
		log.Printf("trace join: %d of %d sampled traces missing from /debug/traces (ring buffer wrapped? raise rtmap-serve -trace-buf)",
			sampled-len(agg), sampled)
	}
	quantiles := func(ds []time.Duration) map[string]float64 {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return map[string]float64{
			"p50": percentileMS(ds, 0.50), "p95": percentileMS(ds, 0.95), "p99": percentileMS(ds, 0.99),
		}
	}
	if len(walls) > 0 {
		out["client_wall_ms"] = quantiles(walls)
	}
	server := map[string]map[string]float64{}
	for name, ds := range byPhase {
		server[name] = quantiles(ds)
	}
	if len(server) > 0 {
		out["server_phase_ms"] = server
	}
	return out
}

type reportInput struct {
	model      string
	mode       string
	bitExact   bool
	batch      int
	latencies  []time.Duration  // per-request wall time of 200s (retries included)
	attempts   []time.Duration  // per-attempt wire round trips, every outcome
	categories map[string]int64 // taxonomy tally across attempts
	errs       int
	rejected   int   // clean backpressure accepted as expected (mix or -rejects-ok)
	retried    int64 // retry attempts fired under -retry
	elapsed    time.Duration
	trace      map[string]any         // traceJoin.join output; nil when -trace-sample is off
	slo        map[string]*classTally // per-class ledger; nil when -mix is off
}

// inspectOnce fires one request and prints the server's batch accounting
// for its first sample: the simulated device (or, for sharded models,
// the pipeline stage count and device path) and the simulated cost.
func inspectOnce(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var out serve.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if len(out.Results) == 0 {
		return fmt.Errorf("response carries no results")
	}
	b := out.Results[0].Batch
	if b.Stages > 0 {
		log.Printf("batch accounting: %d pipeline stages via devices %v, coalesced size %d, sim %.1f ns (%.1f ns/sample), %.1f pJ",
			b.Stages, b.Path, b.Size, b.SimLatencyNS, b.SimPerSampleNS, b.SimEnergyPJ)
	} else {
		log.Printf("batch accounting: device %d, coalesced size %d, sim %.1f ns (%.1f ns/sample), %.1f pJ",
			b.Device, b.Size, b.SimLatencyNS, b.SimPerSampleNS, b.SimEnergyPJ)
	}
	return nil
}

// percentileMS returns the nearest-rank p-quantile of the sorted latency
// slice in milliseconds: the smallest element with at least ceil(p·n)
// observations at or below it. The index clamps to [0, n-1], so p=0,
// p=1, and tiny samples (n=0/1/2) are all well-defined — the previous
// int(p·(n-1)) truncation both drifted low for mid percentiles and
// depended on float rounding to stay in range at p=1.
func percentileMS(sorted []time.Duration, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i].Seconds() * 1e3
}

func report(in reportInput, jsonOut bool, outFile string) {
	sort.Slice(in.latencies, func(i, j int) bool { return in.latencies[i] < in.latencies[j] })
	n := len(in.latencies)
	pct := func(p float64) float64 { return percentileMS(in.latencies, p) }
	var sum time.Duration
	for _, d := range in.latencies {
		sum += d
	}
	meanMS := 0.0
	if n > 0 {
		meanMS = sum.Seconds() * 1e3 / float64(n)
	}
	reqPerSec := float64(n) / in.elapsed.Seconds()
	out := map[string]any{
		"model":       in.model,
		"mode":        in.mode,
		"bit_exact":   in.bitExact,
		"batch":       in.batch,
		"requests":    n,
		"errors":      in.errs,
		"rejected":    in.rejected,
		"elapsed_s":   in.elapsed.Seconds(),
		"req_per_s":   reqPerSec,
		"infer_per_s": reqPerSec * float64(in.batch),
		"latency_ms":  map[string]float64{"mean": meanMS, "p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99), "max": pct(1.0)},
	}
	if len(in.categories) > 0 {
		out["categories"] = in.categories
	}
	// Per-attempt latency diverges from per-request latency exactly when
	// retries fired: each attempt is one wire round trip, the request is
	// what the caller waited (attempts plus backoff).
	if in.retried > 0 {
		sort.Slice(in.attempts, func(i, j int) bool { return in.attempts[i] < in.attempts[j] })
		apct := func(p float64) float64 { return percentileMS(in.attempts, p) }
		out["retries"] = in.retried
		out["attempts"] = len(in.attempts)
		out["attempt_latency_ms"] = map[string]float64{
			"p50": apct(0.50), "p95": apct(0.95), "p99": apct(0.99), "max": apct(1.0),
		}
	}
	if in.trace != nil {
		out["trace"] = in.trace
	}
	var goodputTotal int64
	if in.slo != nil {
		classes := map[string]any{}
		for name, ct := range in.slo {
			classes[name] = map[string]any{
				"deadline_ms": ct.deadlineMS,
				"sent":        ct.sent,
				"accepted":    ct.accepted,
				"shed":        ct.shed,
				"expired":     ct.expired,
				"failed":      ct.failed,
				"goodput":     ct.goodput,
			}
			goodputTotal += ct.goodput
		}
		out["slo"] = map[string]any{
			"classes":       classes,
			"goodput":       goodputTotal,
			"goodput_per_s": float64(goodputTotal) / in.elapsed.Seconds(),
		}
	}
	if outFile != "" {
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(outFile, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", outFile)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("%s (%s loop, batch %d, bit_exact=%v): %d requests, %d rejected, %d errors in %.2fs\n",
		in.model, in.mode, in.batch, in.bitExact, n, in.rejected, in.errs, in.elapsed.Seconds())
	fmt.Printf("throughput: %.1f req/s (%.1f inferences/s)\n", reqPerSec, reqPerSec*float64(in.batch))
	fmt.Printf("latency ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		meanMS, pct(0.50), pct(0.95), pct(0.99), pct(1.0))
	if nonOK := int64(len(in.attempts)) - in.categories["ok"]; nonOK > 0 {
		names := make([]string, 0, len(in.categories))
		for name := range in.categories {
			if name != "ok" {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		fmt.Print("outcomes:")
		for _, name := range names {
			fmt.Printf("  %s %d", name, in.categories[name])
		}
		fmt.Println()
	}
	if in.retried > 0 {
		sort.Slice(in.attempts, func(i, j int) bool { return in.attempts[i] < in.attempts[j] })
		apct := func(p float64) float64 { return percentileMS(in.attempts, p) }
		fmt.Printf("retries: %d (%d attempts total); attempt latency ms: p50 %.2f  p95 %.2f  p99 %.2f\n",
			in.retried, len(in.attempts), apct(0.50), apct(0.95), apct(0.99))
	}
	if in.slo != nil {
		var sentTotal int64
		for _, ct := range in.slo {
			sentTotal += ct.sent
		}
		fmt.Printf("goodput: %.1f req/s in-deadline (%d of %d sent)\n",
			float64(goodputTotal)/in.elapsed.Seconds(), goodputTotal, sentTotal)
		names := make([]string, 0, len(in.slo))
		for name := range in.slo {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ct := in.slo[name]
			fmt.Printf("  %-11s deadline %6.1fms: sent %5d  ok %5d  goodput %5d  shed %5d  expired %5d  failed %3d\n",
				name, ct.deadlineMS, ct.sent, ct.accepted, ct.goodput, ct.shed, ct.expired, ct.failed)
		}
	}
	if in.trace != nil {
		fmt.Printf("trace join: %v sampled, %v joined via /debug/traces\n", in.trace["sampled"], in.trace["joined"])
		if phases, ok := in.trace["server_phase_ms"].(map[string]map[string]float64); ok {
			wall, _ := in.trace["client_wall_ms"].(map[string]float64)
			fmt.Printf("  p50 ms: client %.2f", wall["p50"])
			for _, name := range []string{"http", "wait", "queue", "exec", "stage", "hop"} {
				if q, ok := phases[name]; ok {
					fmt.Printf("  %s %.2f", name, q["p50"])
				}
			}
			fmt.Println()
		}
	}
}
