// Command rtmap-serve runs the batched multi-tenant inference server: an
// HTTP/JSON front end over the compiler, the compiled-artifact cache, an
// adaptive per-model micro-batcher, and a simulated fleet of AP devices
// priced by the paper's cost model.
//
//	rtmap-serve                                  # defaults: :8080, 4 devices
//	rtmap-serve -addr 127.0.0.1:0 -devices 8 -max-batch 16 -batch-window 1ms
//	rtmap-serve -devices 4 -shard-stages 4       # pipeline-parallel layer sharding
//
// Endpoints: POST /v1/infer, GET /v1/models, GET /healthz, GET /metrics
// (Prometheus text format). SIGINT/SIGTERM drain gracefully: in-flight
// requests finish, queued batches execute, then the process exits 0.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"rtmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-serve: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		devices   = flag.Int("devices", 4, "simulated AP devices in the fleet")
		maxBatch  = flag.Int("max-batch", 8, "micro-batch size cap (1 disables coalescing)")
		window    = flag.Duration("batch-window", 2*time.Millisecond, "max wait for follow-up requests when forming a batch")
		maxModels = flag.Int("max-models", 4, "compiled models resident before LRU eviction")
		shards    = flag.Int("shard-stages", 0, "serve each model as a pipeline of N layer-range stages pinned to distinct devices (0/1 = whole-model dispatch; clamped to -devices)")
		queue     = flag.Int("queue", 64, "per-model and per-device queue capacity")
		maxInputs = flag.Int("max-inputs", 64, "samples accepted per /v1/infer request")
		noCache   = flag.Bool("no-cache", false, "disable the compiled-artifact cache")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	err := rtmap.Serve(ctx, rtmap.ServeOptions{
		Addr:        *addr,
		Devices:     *devices,
		MaxBatch:    *maxBatch,
		Window:      *window,
		MaxModels:   *maxModels,
		ShardStages: *shards,
		Queue:       *queue,
		MaxInputs:   *maxInputs,
		NoCache:     *noCache,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}
