// Command rtmap-serve runs the batched multi-tenant inference server: an
// HTTP/JSON front end over the compiler, the compiled-artifact cache, an
// adaptive per-model micro-batcher, and a simulated fleet of AP devices
// priced by the paper's cost model.
//
//	rtmap-serve                                  # defaults: :8080, 4 devices
//	rtmap-serve -addr 127.0.0.1:0 -devices 8 -max-batch 16 -batch-window 1ms
//	rtmap-serve -devices 4 -shard-stages 4       # pipeline-parallel layer sharding
//	rtmap-serve -devices 4 -replicas 2           # data-parallel replication
//	rtmap-serve -replicas 2 -fail-device 0 -fail-after 2s   # failover demo
//	rtmap-serve -model mynet=net.json            # serve a JSON model file
//	rtmap-serve -trace-sample 16 -trace-out spans.jsonl -pprof   # observability on
//	rtmap-serve -max-queue-delay 50ms            # shed (HTTP 429) past this backlog
//	rtmap-serve -autoscale -scale-interval 250ms # grow/shrink replicas and stages from live load
//
// Endpoints: POST /v1/infer, GET /v1/models, GET /healthz, GET /metrics
// (Prometheus text format), GET /debug/traces (span ring buffer; requests
// carrying an X-Rtmap-Trace header are always traced), and /debug/pprof/
// behind -pprof. SIGINT/SIGTERM drain gracefully: in-flight requests
// finish, queued batches execute, then the process exits 0. The drain is
// bounded by -drain-timeout (default 10s) — past it, lingering work is
// abandoned and the process still exits, never hangs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rtmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-serve: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		devices    = flag.Int("devices", 4, "simulated AP devices in the fleet")
		maxBatch   = flag.Int("max-batch", 8, "micro-batch size cap (1 disables coalescing)")
		window     = flag.Duration("batch-window", 2*time.Millisecond, "max wait for follow-up requests when forming a batch")
		maxModels  = flag.Int("max-models", 4, "compiled models resident before LRU eviction")
		shards     = flag.Int("shard-stages", 0, "serve each model as a pipeline of N layer-range stages pinned to distinct devices (0/1 = whole-model dispatch; clamped to -devices)")
		replicas   = flag.Int("replicas", 1, "data-parallel copies of each model placed on disjoint devices; batches balance across live replicas and fail over on device loss")
		failDev    = flag.Int("fail-device", -1, "fault injection: mark this device dead -fail-after into the run (-1 disables)")
		failAfter  = flag.Duration("fail-after", 2*time.Second, "delay before the -fail-device fault fires")
		queue      = flag.Int("queue", 64, "per-model and per-device queue capacity")
		maxInputs  = flag.Int("max-inputs", 64, "samples accepted per /v1/infer request")
		noCache    = flag.Bool("no-cache", false, "disable the compiled-artifact cache")
		traceBuf   = flag.Int("trace-buf", 4096, "span ring-buffer capacity behind /debug/traces")
		traceSamp  = flag.Int("trace-sample", 0, "trace 1-in-N requests without an X-Rtmap-Trace header (0 = header-only tracing)")
		traceLayer = flag.Int("trace-layer-sample", 8, "record per-layer execution spans for 1-in-N traced requests (0 disables layer spans)")
		traceOut   = flag.String("trace-out", "", "append every span as a JSON line to this file (rtmap-trace -in reads it)")
		pprofOn    = flag.Bool("pprof", false, "mount the net/http/pprof profiling handlers under /debug/pprof/")
		maxQDelay  = flag.Duration("max-queue-delay", 0, "shed requests (HTTP 429 + Retry-After) when the estimated queue delay exceeds this bound (0 = deadline-driven shedding only)")
		autoscale  = flag.Bool("autoscale", false, "resize each model's replicas and pipeline stages from live queue depth (bounded by -devices and -shard-stages)")
		scaleEvery = flag.Duration("scale-interval", 250*time.Millisecond, "autoscaler evaluation period (with -autoscale)")
		wallScale  = flag.Float64("wall-scale", 0, "dilate simulated device latency into wall time by this factor, so service time follows the cost model instead of host speed (0 disables)")
		drainT     = flag.Duration("drain-timeout", 10*time.Second, "bound on the SIGTERM graceful drain: past it, lingering connections are force-closed and the process exits anyway (negative = wait forever)")
	)
	modelFiles := map[string]string{}
	flag.Func("model", "serve a JSON model file as `name=path` (repeatable; decoded at admission, malformed files answer HTTP 400)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			path = v
			name = strings.TrimSuffix(filepath.Base(path), ".json")
		}
		if name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		modelFiles[name] = path
		return nil
	})
	flag.Parse()

	fa := time.Duration(0)
	if *failDev >= 0 {
		if *failDev >= *devices {
			log.Fatalf("-fail-device %d out of range: the fleet has devices 0..%d", *failDev, *devices-1)
		}
		fa = *failAfter
		if fa <= 0 {
			fa = time.Millisecond // "no delay": fire as soon as the server is up
		}
	}

	var traceSink *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("-trace-out: %v", err)
		}
		traceSink = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := rtmap.ServeOptions{
		Addr:              *addr,
		Devices:           *devices,
		MaxBatch:          *maxBatch,
		Window:            *window,
		MaxModels:         *maxModels,
		ShardStages:       *shards,
		Replicas:          *replicas,
		FailDevice:        *failDev,
		FailAfter:         fa,
		ModelFiles:        modelFiles,
		Queue:             *queue,
		MaxInputs:         *maxInputs,
		NoCache:           *noCache,
		TraceBuf:          *traceBuf,
		TraceSample:       *traceSamp,
		TraceLayerSample:  *traceLayer,
		EnablePprof:       *pprofOn,
		MaxQueueDelay:     *maxQDelay,
		Autoscale:         *autoscale,
		AutoscaleInterval: *scaleEvery,
		WallScale:         *wallScale,
		DrainTimeout:      *drainT,
		Logf:              log.Printf,
	}
	if traceSink != nil {
		opts.TraceOut = traceSink
	}
	err := rtmap.Serve(ctx, opts)
	if traceSink != nil {
		// The server flushed its buffered span encoder during Shutdown;
		// close surfaces any write error the flush could not.
		if cerr := traceSink.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}
