// Command rtmap-trace analyzes the serving stack's request traces: it
// reads spans from a JSONL sink (rtmap-serve -trace-out) or scrapes a
// running server's /debug/traces, and prints per-model span breakdowns,
// a p50/p95/p99 table per phase, and critical-path analysis for
// pipeline-sharded requests (which stage bottlenecks, and how much of
// the HTTP wall time the traced phases account for).
//
//	rtmap-trace -in spans.jsonl
//	rtmap-trace -url http://127.0.0.1:8080 -model tinycnn
//	rtmap-trace -in spans.jsonl -trace 4f1c9a2d03b7e865   # one request, chronological
//	rtmap-trace -in spans.jsonl -json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"sort"

	"rtmap/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-trace: ")
	var (
		in      = flag.String("in", "", "read spans from a JSONL file (rtmap-serve -trace-out)")
		url     = flag.String("url", "", "scrape spans from a running server's /debug/traces")
		modelF  = flag.String("model", "", "restrict the analysis to one model")
		traceF  = flag.String("trace", "", "print one trace's spans chronologically instead of aggregating")
		jsonOut = flag.Bool("json", false, "emit the analysis as JSON")
	)
	flag.Parse()
	if (*in == "") == (*url == "") {
		log.Fatal("exactly one of -in or -url is required")
	}

	var spans []trace.Span
	var err error
	if *in != "" {
		spans, err = readJSONL(*in)
	} else {
		spans, err = scrape(*url)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *modelF != "" {
		kept := spans[:0]
		for _, sp := range spans {
			if sp.Model == *modelF {
				kept = append(kept, sp)
			}
		}
		spans = kept
	}
	if len(spans) == 0 {
		log.Fatal("no spans after filters")
	}

	if *traceF != "" {
		printTrace(spans, *traceF, *jsonOut)
		return
	}

	a := analyze(spans)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			log.Fatal(err)
		}
		return
	}
	printAnalysis(a)
}

// readJSONL decodes one span per line, skipping blank lines.
func readJSONL(path string) ([]trace.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var spans []trace.Span
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sp trace.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return spans, nil
}

// scrape pulls the span ring buffer from /debug/traces.
func scrape(baseURL string) ([]trace.Span, error) {
	resp, err := http.Get(baseURL + "/debug/traces")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/traces: HTTP %d", resp.StatusCode)
	}
	var body struct {
		Spans   []trace.Span `json:"spans"`
		Total   uint64       `json:"total_recorded"`
		Dropped uint64       `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding /debug/traces: %w", err)
	}
	if body.Dropped > 0 {
		log.Printf("note: ring buffer dropped %d of %d spans (raise rtmap-serve -trace-buf or use -trace-out)",
			body.Dropped, body.Total)
	}
	return body.Spans, nil
}

// printTrace lists one request's spans in start order.
func printTrace(spans []trace.Span, id string, jsonOut bool) {
	var got []trace.Span
	for _, sp := range spans {
		if sp.TraceID == id {
			got = append(got, sp)
		}
	}
	if len(got) == 0 {
		log.Fatalf("trace %q not found", id)
	}
	sort.SliceStable(got, func(i, j int) bool { return got[i].Start < got[j].Start })
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(got); err != nil {
			log.Fatal(err)
		}
		return
	}
	t0 := got[0].Start
	fmt.Printf("trace %s (%s): %d spans\n", id, got[0].Model, len(got))
	for _, sp := range got {
		where := ""
		if sp.Device >= 0 {
			where = fmt.Sprintf(" dev=%d", sp.Device)
		}
		if sp.Stage >= 0 {
			where += fmt.Sprintf(" stage=%d", sp.Stage)
		}
		if sp.Detail != "" {
			where += " " + sp.Detail
		}
		fmt.Printf("  +%8.3fms %-8s %8.3fms%s\n",
			float64(sp.Start-t0)/1e6, sp.Name, float64(sp.Dur)/1e6, where)
	}
}

// phaseStat is the aggregated view of one span kind (phase) within one
// model: occurrence count and duration percentiles in milliseconds.
type phaseStat struct {
	Phase  string  `json:"phase"`
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// stageStat aggregates one pipeline stage across traces.
type stageStat struct {
	Stage      int     `json:"stage"`
	Count      int     `json:"count"`
	MeanMS     float64 `json:"mean_ms"`
	Bottleneck bool    `json:"bottleneck"`
}

// modelAnalysis is one model's breakdown.
type modelAnalysis struct {
	Model  string      `json:"model"`
	Traces int         `json:"traces"`
	Phases []phaseStat `json:"phases"`
	// Stages is present for pipeline-sharded traffic; CoveredFrac is the
	// mean fraction of a traced request's http wall time that its
	// wait+queue+stage+hop spans account for (the critical path).
	Stages      []stageStat `json:"stages,omitempty"`
	HopMeanMS   float64     `json:"hop_mean_ms,omitempty"`
	CoveredFrac float64     `json:"covered_frac,omitempty"`
}

type analysis struct {
	Spans  int             `json:"spans"`
	Traces int             `json:"traces"`
	Models []modelAnalysis `json:"models"`
}

// pct returns the nearest-rank p-quantile of a sorted ms slice.
func pct(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

func stats(name string, durs []float64) phaseStat {
	sort.Float64s(durs)
	sum := 0.0
	for _, d := range durs {
		sum += d
	}
	mean := 0.0
	if len(durs) > 0 {
		mean = sum / float64(len(durs))
	}
	return phaseStat{
		Phase: name, Count: len(durs), MeanMS: mean,
		P50MS: pct(durs, 0.50), P95MS: pct(durs, 0.95), P99MS: pct(durs, 0.99),
	}
}

// phaseOrder fixes the display order of the span taxonomy.
var phaseOrder = []string{"http", "wait", "queue", "hop", "exec", "stage", "layer", "requeue", "shed", "expired"}

func analyze(spans []trace.Span) analysis {
	byModel := map[string]map[string][]float64{} // model -> phase -> ms
	stageDur := map[string]map[int][]float64{}   // model -> stage -> ms
	traces := map[string]bool{}
	tracesByModel := map[string]map[string]bool{}
	// Per-trace critical-path accounting (sharded models): traced phase
	// time vs the trace's http wall.
	httpByTrace := map[string]float64{}
	pathByTrace := map[string]float64{}
	hopByModel := map[string][]float64{}
	modelOfTrace := map[string]string{}

	for _, sp := range spans {
		traces[sp.TraceID] = true
		if sp.Model != "" {
			modelOfTrace[sp.TraceID] = sp.Model
		}
		m := sp.Model
		if byModel[m] == nil {
			byModel[m] = map[string][]float64{}
			tracesByModel[m] = map[string]bool{}
		}
		tracesByModel[m][sp.TraceID] = true
		ms := float64(sp.Dur) / 1e6
		byModel[m][sp.Name] = append(byModel[m][sp.Name], ms)
		switch sp.Name {
		case "http":
			httpByTrace[sp.TraceID] += ms
		case "wait", "queue", "exec":
			pathByTrace[sp.TraceID] += ms
		case "stage":
			pathByTrace[sp.TraceID] += ms
			if stageDur[m] == nil {
				stageDur[m] = map[int][]float64{}
			}
			stageDur[m][sp.Stage] = append(stageDur[m][sp.Stage], ms)
		case "hop":
			pathByTrace[sp.TraceID] += ms
			hopByModel[m] = append(hopByModel[m], ms)
		}
	}

	a := analysis{Spans: len(spans), Traces: len(traces)}
	models := make([]string, 0, len(byModel))
	for m := range byModel {
		models = append(models, m)
	}
	sort.Strings(models)
	for _, m := range models {
		ma := modelAnalysis{Model: m, Traces: len(tracesByModel[m])}
		for _, name := range phaseOrder {
			if durs, ok := byModel[m][name]; ok {
				ma.Phases = append(ma.Phases, stats(name, durs))
			}
		}
		if sd := stageDur[m]; len(sd) > 0 {
			idxs := make([]int, 0, len(sd))
			for s := range sd {
				idxs = append(idxs, s)
			}
			sort.Ints(idxs)
			worst, worstMean := -1, -1.0
			for _, s := range idxs {
				st := stats("", sd[s])
				ma.Stages = append(ma.Stages, stageStat{Stage: s, Count: st.Count, MeanMS: st.MeanMS})
				if st.MeanMS > worstMean {
					worst, worstMean = len(ma.Stages)-1, st.MeanMS
				}
			}
			if worst >= 0 {
				ma.Stages[worst].Bottleneck = true
			}
			ma.HopMeanMS = stats("", hopByModel[m]).MeanMS
			// Coverage: per trace of this model, traced-path time over
			// http wall, averaged (traces whose http span was dropped by
			// the ring are skipped).
			var frac float64
			n := 0
			for id := range tracesByModel[m] {
				if modelOfTrace[id] != m || httpByTrace[id] <= 0 {
					continue
				}
				frac += math.Min(1, pathByTrace[id]/httpByTrace[id])
				n++
			}
			if n > 0 {
				ma.CoveredFrac = frac / float64(n)
			}
		}
		a.Models = append(a.Models, ma)
	}
	return a
}

func printAnalysis(a analysis) {
	fmt.Printf("%d spans across %d traces\n", a.Spans, a.Traces)
	for _, m := range a.Models {
		name := m.Model
		if name == "" {
			name = "(no model)"
		}
		fmt.Printf("\nmodel %s: %d traces\n", name, m.Traces)
		fmt.Printf("  %-8s %7s %9s %9s %9s %9s\n", "phase", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms")
		for _, p := range m.Phases {
			fmt.Printf("  %-8s %7d %9.3f %9.3f %9.3f %9.3f\n",
				p.Phase, p.Count, p.MeanMS, p.P50MS, p.P95MS, p.P99MS)
		}
		if len(m.Stages) > 0 {
			fmt.Printf("  pipeline critical path (%d stages):\n", len(m.Stages))
			for _, s := range m.Stages {
				mark := ""
				if s.Bottleneck {
					mark = "  <- bottleneck"
				}
				fmt.Printf("    stage %d: mean %.3f ms over %d batches%s\n", s.Stage, s.MeanMS, s.Count, mark)
			}
			fmt.Printf("    hops: mean %.3f ms\n", m.HopMeanMS)
			if m.CoveredFrac > 0 {
				fmt.Printf("    traced phases cover %.0f%% of http wall (mean)\n", 100*m.CoveredFrac)
			}
		}
	}
}
