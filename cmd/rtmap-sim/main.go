// Command rtmap-sim runs the functional AP simulation of a compiled
// network and verifies bit-exactness against the quantized software
// reference — the paper's "retaining software accuracy" property:
//
//	rtmap-sim -model tinyresnet -inputs 5
//	rtmap-sim -model tinycnn -inputs 3 -bits 8
//	rtmap-sim -model tinycnn -inputs 3 -json     # machine-readable verdicts
//
// Every input is checked individually; the exit status is non-zero when
// ANY input disagrees with the reference on any layer, so CI can gate on
// bit-exactness.
//
// Functional simulation executes the real emitted AP programs on the
// word-level machine (proved pass-exact against the bit-level CAM model in
// the test suite), so use the tiny models or be prepared to wait.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"rtmap"
	"rtmap/internal/workload"
)

type inputVerdict struct {
	Input int    `json:"input"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

type simResult struct {
	Model    string         `json:"model"`
	ActBits  int            `json:"act_bits"`
	Sparsity float64        `json:"sparsity"`
	Seed     uint64         `json:"seed"`
	Inputs   int            `json:"inputs"`
	OK       bool           `json:"ok"`
	Failures int            `json:"failures"`
	Verdicts []inputVerdict `json:"verdicts"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-sim: ")
	var (
		modelName = flag.String("model", "tinycnn", "model (tinycnn|tinyresnet|vgg9|vgg11|resnet18)")
		inputs    = flag.Int("inputs", 3, "number of random inputs to verify")
		bits      = flag.Int("bits", 4, "activation precision")
		sparsity  = flag.Float64("sparsity", 0.8, "weight sparsity")
		seed      = flag.Uint64("seed", 1, "weight/data seed")
		jsonOut   = flag.Bool("json", false, "emit machine-readable verdicts on stdout")
	)
	flag.Parse()

	cfg := rtmap.ModelConfig{ActBits: *bits, Sparsity: *sparsity, Seed: *seed}
	var net *rtmap.Network
	switch *modelName {
	case "tinycnn":
		net = rtmap.BuildTinyCNN(cfg)
	case "tinyresnet":
		net = rtmap.BuildTinyResNet(cfg)
	case "vgg9":
		net = rtmap.BuildVGG9(cfg)
	case "vgg11":
		net = rtmap.BuildVGG11(cfg)
	case "resnet18":
		net = rtmap.BuildResNet18(cfg)
	default:
		log.Printf("unknown model %q", *modelName)
		flag.Usage()
		os.Exit(2)
	}

	ins := workload.Inputs(net.InputShape, *inputs, *seed+100)
	log.Printf("compiling %s with programs retained", net.Name)
	ccfg := rtmap.DefaultCompileConfig()
	ccfg.KeepPrograms = true
	comp, err := rtmap.Compile(net, ccfg)
	if err != nil {
		log.Fatal(err)
	}

	res := simResult{
		Model: net.Name, ActBits: *bits, Sparsity: *sparsity, Seed: *seed,
		Inputs: *inputs, OK: true,
	}
	for i, in := range ins {
		v := inputVerdict{Input: i, OK: true}
		if err := rtmap.VerifyInput(comp, in); err != nil {
			v.OK = false
			v.Error = err.Error()
			res.OK = false
			res.Failures++
			log.Printf("input %d: FAILED: %v", i, err)
		}
		res.Verdicts = append(res.Verdicts, v)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&res); err != nil {
			log.Fatal(err)
		}
	} else if res.OK {
		fmt.Printf("OK: %s — AP execution bit-identical to the software reference on %d inputs (every layer)\n",
			net.Name, *inputs)
	} else {
		fmt.Printf("FAILED: %s — %d of %d inputs diverge from the software reference\n",
			net.Name, res.Failures, *inputs)
	}
	if !res.OK {
		os.Exit(1)
	}
}
