// Command rtmap-sim runs the functional AP simulation of a compiled
// network and verifies bit-exactness against the quantized software
// reference — the paper's "retaining software accuracy" property:
//
//	rtmap-sim -model tinyresnet -inputs 5
//	rtmap-sim -model tinycnn -inputs 3 -bits 8
//
// Functional simulation executes the real emitted AP programs on the
// word-level machine (proved pass-exact against the bit-level CAM model in
// the test suite), so use the tiny models or be prepared to wait.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rtmap"
	"rtmap/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-sim: ")
	var (
		modelName = flag.String("model", "tinycnn", "model (tinycnn|tinyresnet|vgg9|vgg11|resnet18)")
		inputs    = flag.Int("inputs", 3, "number of random inputs to verify")
		bits      = flag.Int("bits", 4, "activation precision")
		sparsity  = flag.Float64("sparsity", 0.8, "weight sparsity")
		seed      = flag.Uint64("seed", 1, "weight/data seed")
	)
	flag.Parse()

	cfg := rtmap.ModelConfig{ActBits: *bits, Sparsity: *sparsity, Seed: *seed}
	var net *rtmap.Network
	switch *modelName {
	case "tinycnn":
		net = rtmap.BuildTinyCNN(cfg)
	case "tinyresnet":
		net = rtmap.BuildTinyResNet(cfg)
	case "vgg9":
		net = rtmap.BuildVGG9(cfg)
	case "vgg11":
		net = rtmap.BuildVGG11(cfg)
	case "resnet18":
		net = rtmap.BuildResNet18(cfg)
	default:
		log.Printf("unknown model %q", *modelName)
		flag.Usage()
		os.Exit(2)
	}

	ins := workload.Inputs(net.InputShape, *inputs, *seed+100)
	log.Printf("compiling %s with programs retained", net.Name)
	if err := rtmap.Verify(net, rtmap.DefaultCompileConfig(), ins); err != nil {
		log.Fatalf("FAILED: %v", err)
	}
	fmt.Printf("OK: %s — AP execution bit-identical to the software reference on %d inputs (every layer)\n",
		net.Name, *inputs)
}
