// Command rtmap-vet is the project's static-analysis gate. It has two
// modes, both run by CI:
//
//	rtmap-vet ./...                      # lint packages (exhaustive
//	                                     # enum switches, //rtmap:noalloc,
//	                                     # panic/error conventions)
//	rtmap-vet -plans                     # compile the small builtin
//	                                     # models and audit every tile
//	                                     # plan with the independent
//	                                     # verifier
//	rtmap-vet -plans -all                # include the full paper zoo
//	rtmap-vet -plans -model name=net.json  # audit a serialized model
//
// Exit status is 0 when clean, 1 on findings or plan violations, 2 on
// usage errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rtmap/internal/core"
	"rtmap/internal/lint"
	"rtmap/internal/model"
	"rtmap/internal/verify"
)

// builtinModels are the networks -plans audits, in sweep order. The
// small ones always run; the paper zoo is gated behind -all (resnet18
// alone compiles for minutes).
var builtinModels = []struct {
	name  string
	full  bool
	build func(model.Config) *model.Network
}{
	{"tinycnn", false, model.TinyCNN},
	{"tinyresnet", false, model.TinyResNet},
	{"miniresnet18", false, func(c model.Config) *model.Network { return model.MiniResNet18(c, 32, 32) }},
	{"vgg9", true, model.VGG9},
	{"vgg11", true, model.VGG11},
	{"resnet18", true, model.ResNet18},
}

// modelFlags collects repeated -model name=path arguments.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-vet: ")
	var (
		plans  = flag.Bool("plans", false, "audit compiled execution plans instead of linting packages")
		all    = flag.Bool("all", false, "with -plans: include the full paper zoo (vgg9, vgg11, resnet18)")
		extras modelFlags
	)
	flag.Var(&extras, "model", "with -plans: also audit a serialized model, as name=path (repeatable)")
	flag.Parse()

	if *plans {
		os.Exit(runPlans(*all, extras))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(runLint(patterns))
}

func runLint(patterns []string) int {
	findings, err := lint.Run(patterns)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Printf("rtmap-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func runPlans(all bool, extras modelFlags) int {
	type target struct {
		name string
		net  *model.Network
	}
	var targets []target
	for _, b := range builtinModels {
		if b.full && !all {
			continue
		}
		targets = append(targets, target{b.name, b.build(model.DefaultConfig())})
	}
	for _, e := range extras {
		net, err := model.LoadFile(e.path)
		if err != nil {
			log.Fatalf("-model %s: %v", e.name, err)
		}
		targets = append(targets, target{e.name, net})
	}

	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	bad := 0
	for _, t := range targets {
		comp, err := core.Compile(t.net, cfg)
		if err != nil {
			log.Fatalf("%s: compile: %v", t.name, err)
		}
		programs := 0
		for _, lp := range comp.Layers {
			for _, sp := range lp.StripPlans {
				programs += len(sp.Programs)
			}
		}
		if err := core.VerifyCompiled(comp); err != nil {
			bad++
			var ve *verify.Error
			if errors.As(err, &ve) {
				for _, d := range ve.Diags {
					fmt.Println(d)
				}
				fmt.Printf("%s: %d violation(s) across %d programs\n", t.name, len(ve.Diags), programs)
			} else {
				fmt.Printf("%s: %v\n", t.name, err)
			}
			continue
		}
		fmt.Printf("%s: %d tile programs verified clean\n", t.name, programs)
	}
	if bad > 0 {
		return 1
	}
	return 0
}
