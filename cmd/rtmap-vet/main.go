// Command rtmap-vet is the project's static-analysis gate. It has three
// modes, all run by CI:
//
//	rtmap-vet ./...                      # lint packages (exhaustive
//	                                     # enum switches, //rtmap:noalloc,
//	                                     # panic/error conventions, clock
//	                                     # and lock discipline)
//	rtmap-vet -plans                     # compile the small builtin
//	                                     # models and audit every tile
//	                                     # plan with the independent
//	                                     # verifier
//	rtmap-vet -dataflow                  # whole-model dataflow
//	                                     # verification: cross-layer
//	                                     # ranges, per-column liveness,
//	                                     # shard-plan certification, and
//	                                     # plan certificates
//	rtmap-vet -plans -all                # include the full paper zoo
//	rtmap-vet -plans -model name=net.json  # audit a serialized model
//	rtmap-vet -dataflow -certs-out dir   # also write the certificates
//	rtmap-vet -json <mode>               # machine-readable output
//
// With -json, each mode emits one JSON object on stdout — findings and
// diagnostics in deterministic order — instead of text. Exit status is
// unchanged: 0 when clean, 1 on findings or violations, 2 on usage
// errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"rtmap/internal/core"
	"rtmap/internal/dataflow"
	"rtmap/internal/lint"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/verify"
)

// builtinModels are the networks -plans and -dataflow audit, in sweep
// order. The small ones always run; the paper zoo is gated behind -all
// (resnet18 alone compiles for minutes).
var builtinModels = []struct {
	name  string
	full  bool
	build func(model.Config) *model.Network
}{
	{"tinycnn", false, model.TinyCNN},
	{"tinyresnet", false, model.TinyResNet},
	{"miniresnet18", false, func(c model.Config) *model.Network { return model.MiniResNet18(c, 32, 32) }},
	{"vgg9", true, model.VGG9},
	{"vgg11", true, model.VGG11},
	{"resnet18", true, model.ResNet18},
}

// shardCounts are the pipeline depths -dataflow certifies shard plans
// for (clamped per model to its layer count).
var shardCounts = []int{2, 4}

// modelFlags collects repeated -model name=path arguments.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

// modelReport is one model's result in -json output. Diagnostics are in
// the verifier's canonical order; Error carries non-diagnostic failures
// (compile errors).
type modelReport struct {
	Name        string                `json:"name"`
	Programs    int                   `json:"programs"`
	Clean       bool                  `json:"clean"`
	Diagnostics []verify.Diagnostic   `json:"diagnostics,omitempty"`
	Error       string                `json:"error,omitempty"`
	Certificate *dataflow.Certificate `json:"certificate,omitempty"`
	Shards      []shardReport         `json:"shards,omitempty"`
}

// shardReport is one shard-plan certification result.
type shardReport struct {
	Stages      int                 `json:"stages"`
	Clean       bool                `json:"clean"`
	Diagnostics []verify.Diagnostic `json:"diagnostics,omitempty"`
	Error       string              `json:"error,omitempty"`
}

// vetReport is the top-level -json object of every mode.
type vetReport struct {
	Mode       string        `json:"mode"`
	Violations int           `json:"violations"`
	Findings   []lintFinding `json:"findings,omitempty"`
	Models     []modelReport `json:"models,omitempty"`
}

// lintFinding is one lint violation in -json output.
type lintFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Rule   string `json:"rule"`
	Msg    string `json:"msg"`
}

func emitJSON(r vetReport) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatalf("encoding report: %v", err)
	}
	fmt.Println(string(data))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-vet: ")
	var (
		plans    = flag.Bool("plans", false, "audit compiled execution plans instead of linting packages")
		dflow    = flag.Bool("dataflow", false, "whole-model dataflow verification and plan certificates")
		all      = flag.Bool("all", false, "with -plans/-dataflow: include the full paper zoo (vgg9, vgg11, resnet18)")
		jsonOut  = flag.Bool("json", false, "emit one machine-readable JSON object instead of text")
		certsOut = flag.String("certs-out", "", "with -dataflow: write each clean model's certificate into this directory")
		extras   modelFlags
	)
	flag.Var(&extras, "model", "with -plans/-dataflow: also audit a serialized model, as name=path (repeatable)")
	flag.Parse()

	if *plans && *dflow {
		log.Print("-plans and -dataflow are separate modes")
		os.Exit(2)
	}
	switch {
	case *dflow:
		os.Exit(runDataflow(*all, extras, *jsonOut, *certsOut))
	case *plans:
		os.Exit(runPlans(*all, extras, *jsonOut))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(runLint(patterns, *jsonOut))
}

func runLint(patterns []string, jsonOut bool) int {
	findings, err := lint.Run(patterns)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		r := vetReport{Mode: "lint", Violations: len(findings)}
		for _, f := range findings {
			r.Findings = append(r.Findings, lintFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg,
			})
		}
		emitJSON(r)
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Printf("rtmap-vet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// target is one network to audit, by name.
type target struct {
	name string
	net  *model.Network
}

// resolveTargets builds the sweep list: builtin models (paper zoo
// behind all) plus any -model files.
func resolveTargets(all bool, extras modelFlags) []target {
	var targets []target
	for _, b := range builtinModels {
		if b.full && !all {
			continue
		}
		targets = append(targets, target{b.name, b.build(model.DefaultConfig())})
	}
	for _, e := range extras {
		net, err := model.LoadFile(e.path)
		if err != nil {
			log.Fatalf("-model %s: %v", e.name, err)
		}
		targets = append(targets, target{e.name, net})
	}
	return targets
}

// countPrograms sums the retained tile programs of an artifact.
func countPrograms(comp *core.Compiled) int {
	programs := 0
	for _, lp := range comp.Layers {
		for _, sp := range lp.StripPlans {
			programs += len(sp.Programs)
		}
	}
	return programs
}

// diagsOf extracts located diagnostics from a verification error;
// non-diagnostic errors come back in the string.
func diagsOf(err error) ([]verify.Diagnostic, string) {
	var ve *verify.Error
	if errors.As(err, &ve) {
		return ve.Diags, ""
	}
	return nil, err.Error()
}

func runPlans(all bool, extras modelFlags, jsonOut bool) int {
	bad := 0
	report := vetReport{Mode: "plans"}
	for _, t := range resolveTargets(all, extras) {
		cfg := core.DefaultConfig()
		cfg.KeepPrograms = true
		comp, err := core.Compile(t.net, cfg)
		if err != nil {
			log.Fatalf("%s: compile: %v", t.name, err)
		}
		programs := countPrograms(comp)
		mr := modelReport{Name: t.name, Programs: programs, Clean: true}
		if err := core.VerifyCompiled(comp); err != nil {
			bad++
			mr.Clean = false
			mr.Diagnostics, mr.Error = diagsOf(err)
			report.Violations += len(mr.Diagnostics)
			if !jsonOut {
				for _, d := range mr.Diagnostics {
					fmt.Println(d)
				}
				if mr.Error != "" {
					fmt.Printf("%s: %s\n", t.name, mr.Error)
				} else {
					fmt.Printf("%s: %d violation(s) across %d programs\n", t.name, len(mr.Diagnostics), programs)
				}
			}
		} else if !jsonOut {
			fmt.Printf("%s: %d tile programs verified clean\n", t.name, programs)
		}
		report.Models = append(report.Models, mr)
	}
	if jsonOut {
		emitJSON(report)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func runDataflow(all bool, extras modelFlags, jsonOut bool, certsOut string) int {
	if certsOut != "" {
		if err := os.MkdirAll(certsOut, 0o755); err != nil {
			log.Fatalf("-certs-out: %v", err)
		}
	}
	bad := 0
	report := vetReport{Mode: "dataflow"}
	for _, t := range resolveTargets(all, extras) {
		cfg := core.DefaultConfig()
		cfg.KeepPrograms = true
		comp, err := core.Compile(t.net, cfg)
		if err != nil {
			log.Fatalf("%s: compile: %v", t.name, err)
		}
		mr := modelReport{Name: t.name, Programs: countPrograms(comp), Clean: true}

		cert, err := dataflow.Check(comp)
		if err != nil {
			bad++
			mr.Clean = false
			mr.Diagnostics, mr.Error = diagsOf(err)
			report.Violations += len(mr.Diagnostics)
			if !jsonOut {
				for _, d := range mr.Diagnostics {
					fmt.Println(d)
				}
				fmt.Printf("%s: dataflow verification failed (%d violation(s))\n", t.name, len(mr.Diagnostics))
			}
		} else {
			mr.Certificate = cert
			if certsOut != "" {
				data, err := cert.Encode()
				if err != nil {
					log.Fatalf("%s: %v", t.name, err)
				}
				path := filepath.Join(certsOut, t.name+".cert.json")
				if err := os.WriteFile(path, data, 0o644); err != nil {
					log.Fatalf("%s: writing certificate: %v", t.name, err)
				}
			}
		}

		// Shard certification runs even when the flat audit failed: a
		// broken transfer set is worth locating either way.
		rep := sim.Analyze(comp)
		costs := make([]float64, len(rep.Layers))
		for i, lr := range rep.Layers {
			costs[i] = lr.LatencyNS
		}
		for _, k := range shardCounts {
			if k > len(comp.Layers) {
				continue
			}
			sr := shardReport{Stages: k, Clean: true}
			sp, err := core.Partition(comp, k, costs)
			if err != nil {
				sr.Clean, sr.Error = false, err.Error()
			} else if err := dataflow.AuditShard(comp, sp); err != nil {
				sr.Clean = false
				sr.Diagnostics, sr.Error = diagsOf(err)
				report.Violations += len(sr.Diagnostics)
			}
			if !sr.Clean {
				bad++
				if !jsonOut {
					for _, d := range sr.Diagnostics {
						fmt.Println(d)
					}
					fmt.Printf("%s: shard plan k=%d failed certification\n", t.name, k)
				}
			}
			mr.Shards = append(mr.Shards, sr)
		}

		if mr.Clean && !jsonOut {
			shards := make([]string, 0, len(mr.Shards))
			for _, sr := range mr.Shards {
				if sr.Clean {
					shards = append(shards, fmt.Sprintf("k=%d ok", sr.Stages))
				}
			}
			fmt.Printf("%s: certified %d programs, artifact %s (%s)\n",
				t.name, mr.Programs, cert.Artifact[:12], strings.Join(shards, ", "))
		}
		report.Models = append(report.Models, mr)
	}
	if jsonOut {
		emitJSON(report)
	}
	if bad > 0 {
		return 1
	}
	return 0
}
