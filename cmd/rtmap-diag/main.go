// Command rtmap-diag prints calibration diagnostics: component-level energy
// and latency for the RTM-AP model and the crossbar baseline on the
// Table II networks. Development aid; the shipped artifacts come from
// cmd/rtmap-bench.
package main

import (
	"flag"
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/xbar"
)

func rtmDump(name string, net *model.Network) {
	comp, err := core.Compile(net, core.DefaultConfig())
	if err != nil {
		fmt.Println(name, "compile error:", err)
		return
	}
	rep := sim.Analyze(comp)
	t := rep.Total
	fmt.Printf("%s RTM: total %.2fuJ dfg=%.2f acc=%.2f shift=%.2f move=%.2f periph=%.2f | lat=%.2fms arrays=%d\n",
		name, rep.EnergyUJ(), t.DFGPJ/1e6, t.AccumPJ/1e6, t.ShiftPJ/1e6, t.MovementPJ/1e6, t.PeripheralsPJ/1e6,
		rep.LatencyMS(), comp.PoolArrays)
	// Layers sorted by latency (top 6).
	type kv struct {
		n          string
		lat, e     float64
		cns, r, ld float64
	}
	var top []kv
	for _, lr := range rep.Layers {
		top = append(top, kv{lr.Plan.Name, lr.LatencyNS / 1e6, lr.Energy.TotalPJ() / 1e6, lr.ComputeNS / 1e6, lr.ReduceNS / 1e6, lr.LoadNS / 1e6})
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].lat > top[i].lat {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	for i := 0; i < 6 && i < len(top); i++ {
		fmt.Printf("   %-22s lat=%.3fms (cmp %.3f red %.3f ld %.3f) e=%.2fuJ\n",
			top[i].n, top[i].lat, top[i].cns, top[i].r, top[i].ld, top[i].e)
	}
}

func main() {
	tiny := flag.Bool("tiny", false, "diagnose the tiny models instead of the Table II networks")
	flag.Parse()
	if *tiny {
		rtmDump("TinyCNN", model.TinyCNN(model.DefaultConfig()))
		rtmDump("TinyResNet", model.TinyResNet(model.DefaultConfig()))
		return
	}
	for _, bits := range []int{4, 8} {
		net := model.VGG9(model.Config{ActBits: bits, Sparsity: 0.85, Seed: 1})
		r := xbar.Analyze(net, xbar.Default(), bits)
		t := r.Total
		fmt.Printf("VGG9 %db XBAR: total %.2fuJ adc=%.2f xbar=%.2f acc=%.2f periph=%.2f move=%.2f (move %.0f%%) lat=%.2fms arrays=%d\n",
			bits, r.EnergyUJ(), t.ADCPJ/1e6, t.CrossbarPJ/1e6, t.AccumPJ/1e6, t.PeriphPJ/1e6, t.MovePJ/1e6, 100*r.MovementShare(), r.LatencyMS(), r.Arrays)
	}
	for _, bits := range []int{4, 8} {
		net := model.ResNet18(model.Config{ActBits: bits, Sparsity: 0.8, Seed: 1})
		r := xbar.Analyze(net, xbar.Default(), bits)
		fmt.Printf("ResNet18 %db XBAR: total %.2fuJ (move %.0f%%) lat=%.2fms arrays=%d\n",
			bits, r.EnergyUJ(), 100*r.MovementShare(), r.LatencyMS(), r.Arrays)
	}
	rtmDump("VGG9-4b", model.VGG9(model.Config{ActBits: 4, Sparsity: 0.85, Seed: 1}))
	rtmDump("ResNet18-4b", model.ResNet18(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1}))
}
