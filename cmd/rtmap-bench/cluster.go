package main

import (
	"context"
	"fmt"
	"time"

	"rtmap/internal/cluster"
	"rtmap/internal/cluster/chaos"
	"rtmap/internal/core"
	"rtmap/internal/serve"
)

// Cluster-sweep shape: enough tinycnn seed-variants that the hash ring
// spreads keys over every node with overwhelming probability, pinned
// closed-loop workers so each node runs at its own device-bound
// capacity, and wall-time dilation so that capacity follows the cost
// model instead of host HTTP overhead (same rationale as the SLO
// bench's dilation).
const (
	clusterVariants  = 24
	clusterWorkers   = 2 // pinned workers per variant
	clusterWallScale = 2000
)

// clusterArm is one measured load window (bench/BENCH_cluster.json).
type clusterArm struct {
	Nodes      int     `json:"nodes"`
	WallS      float64 `json:"wall_s"`
	Sent       int64   `json:"sent"`
	OK         int64   `json:"ok"`
	Rejected   int64   `json:"rejected"`
	Errors     int64   `json:"errors"`
	Mismatches int64   `json:"mismatches"`
	OKPerSec   float64 `json:"ok_per_s"`
}

// clusterRecovery is the node-kill phase: detection latency in wall
// time and in completed health-probe cycles, plus the tally of the
// drive that ran across the kill (its gates are Errors == 0 and
// Mismatches == 0 — the kill must not drop accepted requests or bend
// results).
type clusterRecovery struct {
	Victim           string     `json:"victim"`
	HealthIntervalMS float64    `json:"health_interval_ms"`
	DetectMS         float64    `json:"detect_ms"`
	DetectCycles     int64      `json:"detect_cycles"`
	AcrossKill       clusterArm `json:"across_kill"`
}

// clusterSection is the JSON artifact of rtmap-bench -cluster.
type clusterSection struct {
	Network    string          `json:"network"`
	Variants   int             `json:"variants"`
	Workers    int             `json:"pinned_workers_per_variant"`
	WallScale  float64         `json:"wall_scale"`
	Arms       []clusterArm    `json:"arms"`
	Scaling3v1 float64         `json:"scaling_3v1"`
	Recovery   clusterRecovery `json:"recovery"`
}

// clusterSweep measures the router tier: aggregate throughput at 1 and
// 3 nodes under identical dilated load, then a mid-load node kill on
// the 3-node cluster timing how fast the health table confirms the
// death. The artifact's acceptance gates: scaling_3v1 >= 2.5 and
// recovery.detect_cycles <= 1 (passive connect-refused reports from
// live traffic beat the active prober to the threshold).
func clusterSweep(dur time.Duration, progress func(string)) (*clusterSection, error) {
	healthInterval := 100 * time.Millisecond
	cache := core.NewCache() // shared across arms: the 3-node arm admits warm
	nodeOpts := serve.Options{
		Devices: 2, MaxBatch: 8, Window: time.Millisecond, Queue: 256,
		MaxModels: clusterVariants + 2,
		WallScale: clusterWallScale,
		Cache:     cache,
		Logf:      func(string, ...any) {},
	}
	routerOpts := cluster.Options{
		Health: cluster.HealthOptions{
			Interval: healthInterval, Timeout: 250 * time.Millisecond,
			FailThreshold: 3, SuccessThreshold: 2,
		},
		Breaker:     cluster.BreakerOptions{Threshold: 5, Cooloff: 500 * time.Millisecond},
		MaxAttempts: 3,
		Logf:        func(string, ...any) {},
	}
	drive := chaos.DriveOptions{
		Models:   []string{"tinycnn"},
		Variants: clusterVariants,
		Workers:  clusterWorkers,
		Pinned:   true,
	}

	sec := &clusterSection{
		Network: "tinycnn", Variants: clusterVariants,
		Workers: clusterWorkers, WallScale: clusterWallScale,
	}
	for _, n := range []int{1, 3} {
		progress(fmt.Sprintf("cluster arm: %d node(s), %d variants, %s window", n, clusterVariants, dur))
		c, err := chaos.Start(chaos.Options{Nodes: n, Node: nodeOpts, Router: routerOpts})
		if err != nil {
			return nil, err
		}
		arm, err := clusterDrive(c, drive, dur, true)
		if err != nil {
			c.Close()
			return nil, err
		}
		arm.Nodes = n
		sec.Arms = append(sec.Arms, *arm)

		if n == 3 {
			rec, err := clusterKill(c, drive, healthInterval, progress)
			if err != nil {
				c.Close()
				return nil, err
			}
			sec.Recovery = *rec
		}
		c.Close()
	}
	if a := sec.Arms[0].OKPerSec; a > 0 {
		sec.Scaling3v1 = sec.Arms[1].OKPerSec / a
	}
	return sec, nil
}

// clusterDrive runs one measured window (with a preceding warmup run
// that admits every variant, so compile time never pollutes the
// measurement).
func clusterDrive(c *chaos.Cluster, drive chaos.DriveOptions, dur time.Duration, warm bool) (*clusterArm, error) {
	if warm {
		wctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := c.Drive(wctx, drive)
		cancel()
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	start := time.Now()
	rep, err := c.Drive(ctx, drive)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	return &clusterArm{
		WallS: wall, Sent: rep.Sent, OK: rep.OK, Rejected: rep.Rejected,
		Errors: rep.Errors, Mismatches: rep.Mismatches,
		OKPerSec: float64(rep.OK) / wall,
	}, nil
}

// clusterKill kills the busiest node mid-load and times detection.
func clusterKill(c *chaos.Cluster, drive chaos.DriveOptions, healthInterval time.Duration, progress func(string)) (*clusterRecovery, error) {
	// Background drive across the kill; the arm that just finished left
	// every variant admitted, so no warmup is needed.
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	type driven struct {
		rep *chaos.Report
		err error
	}
	done := make(chan driven, 1)
	start := time.Now()
	go func() {
		rep, err := c.Drive(rctx, drive)
		done <- driven{rep, err}
	}()
	time.Sleep(500 * time.Millisecond) // steady state before the kill

	// Victim: the primary owner of the most variants — the node whose
	// death moves the most traffic.
	ring := c.Router().Ring()
	counts := map[string]int{}
	for v := 1; v <= drive.Variants; v++ {
		key := cluster.RouteKey("tinycnn", 0, nil, uint64(v))
		counts[ring.Owners(key, 1)[0]]++
	}
	victim, victimIdx := "", -1
	for i := 0; i < c.Nodes(); i++ {
		if url := c.NodeURL(i); victim == "" || counts[url] > counts[victim] {
			victim, victimIdx = url, i
		}
	}

	progress(fmt.Sprintf("cluster kill: %s (owns %d/%d variants)", victim, counts[victim], drive.Variants))
	health := c.Router().Health()
	cycles0 := health.Cycles()
	t0 := time.Now()
	if err := c.Kill(victimIdx); err != nil {
		return nil, err
	}
	for health.State(victim) != cluster.StateDown {
		if time.Since(t0) > 10*time.Second {
			return nil, fmt.Errorf("cluster bench: %s not marked down 10s after kill", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	detect := time.Since(t0)
	detectCycles := health.Cycles() - cycles0

	time.Sleep(500 * time.Millisecond) // post-kill window at 2 nodes
	rcancel()
	d := <-done
	if d.err != nil {
		return nil, d.err
	}
	wall := time.Since(start).Seconds()
	return &clusterRecovery{
		Victim:           victim,
		HealthIntervalMS: float64(healthInterval) / 1e6,
		DetectMS:         float64(detect) / 1e6,
		DetectCycles:     detectCycles,
		AcrossKill: clusterArm{
			Nodes: 3, WallS: wall, Sent: d.rep.Sent, OK: d.rep.OK,
			Rejected: d.rep.Rejected, Errors: d.rep.Errors,
			Mismatches: d.rep.Mismatches,
			OKPerSec:   float64(d.rep.OK) / wall,
		},
	}, nil
}
