// Command rtmap-bench regenerates the paper's evaluation artifacts:
//
//	rtmap-bench -table2            # Table II (all systems and networks)
//	rtmap-bench -table2 -net vgg9  # one network section
//	rtmap-bench -fig4              # both panels of Fig. 4 (ResNet-18)
//	rtmap-bench -cse               # §V-A: average CSE reduction
//	rtmap-bench -movement          # §V-C: data-movement energy shares
//	rtmap-bench -endurance         # §V-C: write-endurance lifetime
//	rtmap-bench -shards 8          # pipeline-sharding throughput frontier
//	rtmap-bench -shards 6 -net tinycnn -json -out DIR   # BENCH_shards.json
//	rtmap-bench -replicas 4        # data-parallel replication frontier
//	rtmap-bench -replicas 4 -json -out DIR              # BENCH_replicas.json
//	rtmap-bench -exec 8            # batched execution engine vs baseline
//	rtmap-bench -exec 8 -json -out DIR                  # BENCH_exec.json
//	rtmap-bench -trace-overhead    # serving-path tracing overhead (off/sampled/full)
//	rtmap-bench -trace-overhead -json -out DIR          # BENCH_trace.json
//	rtmap-bench -slo               # SLO scheduler vs static config: goodput under mixed deadlines
//	rtmap-bench -slo -json -out DIR                     # BENCH_slo.json
//	rtmap-bench -cluster           # router tier: 1-node vs 3-node throughput + node-kill recovery
//	rtmap-bench -cluster -json -out DIR                 # BENCH_cluster.json
//
// Outputs are printed and, with -out DIR, also written as TSV files.
// With -json, results are emitted as one machine-readable JSON document
// on stdout (and, combined with -out, as BENCH_<section>.json files) for
// the performance-trajectory tooling.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"rtmap"
	"rtmap/internal/serve"
	"rtmap/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-bench: ")

	var (
		table2    = flag.Bool("table2", false, "regenerate Table II")
		fig4      = flag.Bool("fig4", false, "regenerate Fig. 4 (ResNet-18 per-layer)")
		cse       = flag.Bool("cse", false, "report average CSE add/sub reduction (§V-A)")
		movement  = flag.Bool("movement", false, "report data-movement energy shares (§V-C)")
		endurance = flag.Bool("endurance", false, "report write-endurance lifetime (§V-C)")
		shards    = flag.Int("shards", 0, "sweep pipeline sharding from 1 to N stages and report the stage-count/throughput frontier")
		execB     = flag.Int("exec", 0, "sweep the batched functional execution engine at batch sizes 1..N (powers of two) against the retained baseline interpreter")
		replicas  = flag.Int("replicas", 0, "sweep data-parallel replication from 1 to N replicas and report the aggregate-throughput frontier")
		traceOH   = flag.Bool("trace-overhead", false, "measure the serving path's tracing overhead: tinycnn request cost with tracing off, 1-in-16 sampled, and fully traced with layer spans")
		sloB      = flag.Bool("slo", false, "drive a mixed-deadline workload against a static configuration and the SLO scheduler (deadline-aware batching, shedding, autoscaling) at the same offered load and compare goodput")
		sloDur    = flag.Duration("slo-duration", 3*time.Second, "measurement window per -slo arm")
		clusterB  = flag.Bool("cluster", false, "measure the router tier: aggregate throughput at 1 vs 3 rtmap-serve nodes under identical dilated load, then a mid-load node kill timing failover detection")
		clusterD  = flag.Duration("cluster-duration", 3*time.Second, "measurement window per -cluster arm")
		netFilter = flag.String("net", "", "restrict Table II to one network (resnet18|vgg9|vgg11); also selects the -shards model (default resnet18; tiny models allowed) and the -replicas models (default tinycnn+resnet18)")
		samples   = flag.Int("samples", 0, "accuracy evaluation samples (0 = skip accuracy columns)")
		seed      = flag.Uint64("seed", 1, "synthetic weight/data seed")
		outDir    = flag.String("out", "", "directory for TSV/JSON artifacts")
		jsonOut   = flag.Bool("json", false, "emit machine-readable results on stdout")
		quiet     = flag.Bool("q", false, "suppress progress lines")
		noCache   = flag.Bool("no-cache", false, "disable the compiled-artifact cache")
	)
	flag.Parse()
	if !*table2 && !*fig4 && !*cse && !*movement && !*endurance && *shards <= 0 && *replicas <= 0 && *execB <= 0 && !*traceOH && !*sloB && !*clusterB {
		flag.Usage()
		os.Exit(2)
	}
	progress := func(s string) {
		if !*quiet {
			log.Print(s)
		}
	}
	save := func(name, content string) {
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	// jsonDoc accumulates one section per key; emitted at the end when
	// -json is set, and as BENCH_<section>.json per section with -out.
	jsonDoc := map[string]any{}
	addJSON := func(section string, v any) {
		if !*jsonOut {
			return
		}
		jsonDoc[section] = v
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		save("BENCH_"+section+".json", string(b)+"\n")
	}

	if *table2 {
		opt := rtmap.DefaultTable2Options()
		opt.Seed = *seed
		opt.AccuracySamples = *samples
		opt.Progress = progress
		if *netFilter != "" {
			opt.Networks = []string{*netFilter}
		}
		opt.NoCache = *noCache
		res, err := rtmap.Table2(opt)
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Println("\nTable II — accuracy, energy, latency, arrays, operations")
			fmt.Print(res.Text())
		}
		save("table2.tsv", res.TSV())
		addJSON("table2", table2JSON(res))
	}

	if *fig4 {
		opt := rtmap.DefaultFigure4Options()
		opt.Seed = *seed
		opt.Progress = progress
		opt.NoCache = *noCache
		res, err := rtmap.Figure4(opt)
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Println()
			fmt.Print(res.Energy.Render())
			fmt.Println()
			fmt.Print(res.Latency.Render())
		}
		save("fig4_energy.tsv", res.Energy.TSV())
		save("fig4_latency.tsv", res.Latency.TSV())
		addJSON("fig4", map[string]any{"energy": res.Energy, "latency": res.Latency})
	}

	if *cse {
		progress("counting operations on all three networks")
		avg, err := rtmap.CSEReductionAverage(*seed, compileConfig(*noCache).Cache)
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("average CSE add/sub reduction: %.1f%% (paper: 31%%)\n", avg*100)
		}
		addJSON("cse", map[string]any{"avg_reduction_pct": avg * 100, "paper_pct": 31.0})
	}

	if *movement {
		net := rtmap.BuildResNet18(rtmap.DefaultModelConfig())
		progress("compiling ResNet-18")
		rtmShare, xbShare, err := rtmap.MovementComparison(net, compileConfig(*noCache))
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("data-movement energy share: RTM-AP %.1f%% (paper: ~3%%), crossbar %.1f%% (paper: 41%%)\n",
				rtmShare*100, xbShare*100)
		}
		addJSON("movement", map[string]any{
			"rtm_ap_share_pct": rtmShare * 100, "crossbar_share_pct": xbShare * 100,
		})
	}

	if *endurance {
		net := rtmap.BuildResNet18(rtmap.DefaultModelConfig())
		progress("compiling ResNet-18")
		comp, err := rtmap.Compile(net, compileConfig(*noCache))
		if err != nil {
			log.Fatal(err)
		}
		rep := rtmap.Analyze(comp)
		e := rtmap.Endurance(comp, rep)
		if !*jsonOut {
			fmt.Printf("write endurance: busiest cell (%s) rewritten every %.0f ns on average → lifetime %.1f years (paper: ~100 ns, ~31 years)\n",
				e.WorstLayer, e.MeanRewriteIntervalNS, e.LifetimeYears)
		}
		addJSON("endurance", map[string]any{
			"worst_layer":              e.WorstLayer,
			"mean_rewrite_interval_ns": e.MeanRewriteIntervalNS,
			"lifetime_years":           e.LifetimeYears,
		})
	}

	if *shards > 0 {
		name := *netFilter
		if name == "" {
			name = "resnet18"
		}
		progress(fmt.Sprintf("compiling %s for the shard sweep", name))
		rows, err := shardSweep(name, *seed, *shards, compileConfig(*noCache))
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("\nPipeline-sharding frontier — %s (steady-state throughput vs stage count)\n", name)
			fmt.Printf("%-7s %-14s %-16s %-14s %-12s %s\n",
				"stages", "bottleneck_ms", "infer/s(steady)", "fill_ms", "xfer_kbit", "speedup")
			for _, r := range rows {
				fmt.Printf("%-7d %-14.4f %-16.1f %-14.4f %-12.1f %.2fx\n",
					r.Stages, r.BottleneckNS/1e6, r.SteadyInfersPerSec,
					r.FillNS/1e6, float64(r.XferBits)/1e3, r.Speedup)
			}
		}
		addJSON("shards", map[string]any{"network": name, "frontier": rows})
	}

	if *execB > 0 {
		name := *netFilter
		if name == "" {
			name = "resnet18"
		}
		sec, err := execSweep(name, *seed, *execB, compileConfig(*noCache), progress)
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("\nFunctional execution engine — %s (batched ExecPlan engine vs baseline interpreter, GOMAXPROCS=%d)\n",
				name, sec.GoMaxProcs)
			fmt.Printf("baseline: %.3f ms/infer (%.1f infer/s single-stream)\n",
				sec.BaselineNSPerInfer/1e6, 1e9/sec.BaselineNSPerInfer)
			fmt.Printf("%-7s %-14s %-12s %s\n", "batch", "ms/infer", "infer/s", "speedup_vs_baseline")
			for _, r := range sec.Frontier {
				fmt.Printf("%-7d %-14.4f %-12.1f %.2fx\n",
					r.Batch, r.NSPerInfer/1e6, r.InfersPerSec, r.Speedup)
			}
		}
		addJSON("exec", sec)
	}

	if *traceOH {
		sec, err := traceOverheadSweep(*seed, *noCache, progress)
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("\nTracing overhead — %s (batch-%d bit-exact requests through the in-process serving path)\n",
				sec.Network, sec.Batch)
			fmt.Printf("%-9s %-14s %-12s %-14s %s\n", "mode", "ms/request", "req/s", "overhead_pct", "spans")
			for _, r := range sec.Modes {
				fmt.Printf("%-9s %-14.4f %-12.1f %-14.2f %d\n",
					r.Mode, r.NSPerRequest/1e6, 1e9/r.NSPerRequest, r.OverheadPct, r.Spans)
			}
		}
		addJSON("trace", sec)
	}

	if *sloB {
		sec, err := sloSweep(*seed, *sloDur, *noCache, progress)
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("\nSLO scheduling — %s (mixed-deadline open loop at %.0f req/s, %.1fs per arm)\n",
				sec.Network, sec.OfferedPerSec, sec.DurationS)
			printArm := func(a sloArm) {
				fmt.Printf("%-45s goodput %6.1f req/s  (ok %d  shed %d  expired %d  failed %d of %d; replicas %d)\n",
					a.Config+":", a.GoodputPerSec, a.Accepted, a.Shed, a.Expired, a.Failed, a.Sent, a.FinalReplicas)
			}
			printArm(sec.Static)
			printArm(sec.SLO)
			fmt.Printf("goodput ratio (slo/static): %.2fx   bit-exact spot checks: %d, violations: %d\n",
				sec.GoodputRatio, sec.BitExactChecked, sec.BitExactViolations)
		}
		addJSON("slo", sec)
	}

	if *clusterB {
		sec, err := clusterSweep(*clusterD, progress)
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("\nCluster serving — %s × %d variants, %d pinned workers each, WallScale %.0f\n",
				sec.Network, sec.Variants, sec.Workers, sec.WallScale)
			for _, a := range sec.Arms {
				fmt.Printf("%d node(s): %8.1f ok/s   (sent %d  ok %d  rejected %d  errors %d  mismatches %d)\n",
					a.Nodes, a.OKPerSec, a.Sent, a.OK, a.Rejected, a.Errors, a.Mismatches)
			}
			r := sec.Recovery
			fmt.Printf("aggregate scaling 3v1: %.2fx\n", sec.Scaling3v1)
			fmt.Printf("node kill (%s): down in %.1fms = %d completed health cycle(s) @ %.0fms; across the kill: ok %d errors %d mismatches %d\n",
				r.Victim, r.DetectMS, r.DetectCycles, r.HealthIntervalMS,
				r.AcrossKill.OK, r.AcrossKill.Errors, r.AcrossKill.Mismatches)
		}
		addJSON("cluster", sec)
	}

	if *replicas > 0 {
		nets := []string{"tinycnn", "resnet18"}
		if *netFilter != "" {
			nets = []string{*netFilter}
		}
		var sections []replicaSection
		for _, name := range nets {
			progress(fmt.Sprintf("compiling %s for the replica sweep", name))
			rows, err := replicaSweep(name, *seed, *replicas, compileConfig(*noCache))
			if err != nil {
				log.Fatal(err)
			}
			sections = append(sections, replicaSection{Network: name, Frontier: rows})
			if !*jsonOut {
				fmt.Printf("\nData-parallel replication frontier — %s (aggregate steady-state throughput vs replica count)\n", name)
				fmt.Printf("%-9s %-14s %-18s %-16s %s\n",
					"replicas", "steady_ns", "infer/s(aggregate)", "batch64_ms", "speedup")
				for _, r := range rows {
					fmt.Printf("%-9d %-14.2f %-18.1f %-16.4f %.2fx\n",
						r.Replicas, r.SteadyNS, r.AggInfersPerSec, r.Batch64LatencyNS/1e6, r.Speedup)
				}
			}
		}
		addJSON("replicas", map[string]any{"networks": sections})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonDoc); err != nil {
			log.Fatal(err)
		}
	}

	if !*noCache {
		progress(rtmap.SharedCompileCache().String())
	}
}

// table2JSON renders Table II rows as JSON-safe maps: the table uses NaN
// for not-applicable cells, which encoding/json rejects, so those become
// null.
func table2JSON(res *rtmap.Table2Result) []map[string]any {
	num := func(v float64) any {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		return v
	}
	rows := make([]map[string]any, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = map[string]any{
			"network":       r.Network,
			"system":        r.System,
			"sparsity":      num(r.Sparsity),
			"acc_fp":        num(r.AccFP),
			"acc_4b":        num(r.Acc4),
			"acc_8b":        num(r.Acc8),
			"energy_4b_uj":  num(r.Energy4UJ),
			"energy_8b_uj":  num(r.Energy8UJ),
			"latency_4b_ms": num(r.Latency4MS),
			"latency_8b_ms": num(r.Latency8MS),
			"arrays":        r.Arrays,
			"adds_unroll_k": num(r.AddsUnrollK),
			"adds_cse_k":    num(r.AddsCSEK),
		}
	}
	return rows
}

// compileConfig resolves the compile configuration for the direct
// (cse/movement/endurance/shards) paths; they reuse the shared cache
// unless -no-cache is given.
func compileConfig(noCache bool) rtmap.CompileConfig {
	return rtmap.CompileConfigWithCache(nil, noCache)
}

// shardRow is one point of the stage-count/throughput frontier.
type shardRow struct {
	Stages             int     `json:"stages"`
	BottleneckNS       float64 `json:"bottleneck_ns"`
	SteadyInfersPerSec float64 `json:"steady_infer_per_s"`
	FillNS             float64 `json:"fill_ns"`
	XferBits           int64   `json:"xfer_bits"`
	// Speedup is steady-state throughput relative to the unsharded
	// (one-stage) pipeline.
	Speedup float64 `json:"speedup_vs_unsharded"`
}

// buildNet constructs a sweepable network by zoo name.
func buildNet(name string, seed uint64) (*rtmap.Network, error) {
	mcfg := rtmap.DefaultModelConfig()
	mcfg.Seed = seed
	switch name {
	case "resnet18":
		return rtmap.BuildResNet18(mcfg), nil
	case "miniresnet18":
		return rtmap.BuildMiniResNet18(mcfg, 32, 32), nil
	case "vgg9":
		return rtmap.BuildVGG9(mcfg), nil
	case "vgg11":
		return rtmap.BuildVGG11(mcfg), nil
	case "tinycnn":
		return rtmap.BuildTinyCNN(mcfg), nil
	case "tinyresnet":
		return rtmap.BuildTinyResNet(mcfg), nil
	}
	return nil, fmt.Errorf("unknown network %q for the sweep", name)
}

// shardSweep compiles the named network once and prices its pipeline
// sharding at every stage count from 1 to maxK.
func shardSweep(name string, seed uint64, maxK int, cfg rtmap.CompileConfig) ([]shardRow, error) {
	net, err := buildNet(name, seed)
	if err != nil {
		return nil, err
	}
	comp, err := rtmap.Compile(net, cfg)
	if err != nil {
		return nil, err
	}
	rep := rtmap.Analyze(comp)
	var rows []shardRow
	var base float64
	for k := 1; k <= maxK; k++ {
		sp, err := rtmap.Partition(comp, rep, k)
		if err != nil {
			return nil, err
		}
		pr, err := rtmap.AnalyzePipeline(comp, rep, sp)
		if err != nil {
			return nil, err
		}
		var xfer int64
		for _, st := range sp.Stages {
			xfer += st.XferBits
		}
		row := shardRow{
			Stages:             len(sp.Stages),
			BottleneckNS:       pr.BottleneckNS,
			SteadyInfersPerSec: pr.SteadyInfersPerSec(),
			FillNS:             pr.FillNS,
			XferBits:           xfer,
		}
		if k == 1 {
			base = pr.BottleneckNS
		}
		if pr.BottleneckNS > 0 {
			row.Speedup = base / pr.BottleneckNS
		}
		rows = append(rows, row)
		if len(sp.Stages) < k {
			break // clamped: the network has no more layers to split
		}
	}
	return rows, nil
}

// execSection is the JSON artifact of the functional-execution engine
// sweep (bench/BENCH_exec.json).
type execSection struct {
	Network    string `json:"network"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// BaselineNSPerInfer is the single-stream per-inference time of the
	// retained pre-ExecPlan interpreter (RunFunctionalBaseline).
	BaselineNSPerInfer float64   `json:"baseline_ns_per_infer"`
	Frontier           []execRow `json:"frontier"`
}

// execRow is one batch-size point of the engine sweep.
type execRow struct {
	Batch        int     `json:"batch"`
	NSPerInfer   float64 `json:"ns_per_infer"`
	InfersPerSec float64 `json:"infer_per_s"`
	// Speedup is per-inference throughput relative to the baseline
	// interpreter's single stream.
	Speedup float64 `json:"speedup_vs_baseline"`
}

// benchLoop measures ns per call of f: one warmup call, then repeats
// until two seconds or five calls, whichever comes first (big networks
// take minutes per call; small ones need the averaging).
func benchLoop(f func() error) (float64, error) {
	if err := f(); err != nil { // warmup: lazy plan builds, pool growth
		return 0, err
	}
	var reps int
	start := time.Now()
	for time.Since(start) < 2*time.Second && reps < 5 {
		if err := f(); err != nil {
			return 0, err
		}
		reps++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps), nil
}

// execSweep compiles the named network with programs retained, checks
// the two interpreters agree bit for bit on a probe input, and measures
// baseline single-stream plus the batched engine at batch sizes 1..maxB
// (powers of two).
func execSweep(name string, seed uint64, maxB int, cfg rtmap.CompileConfig, progress func(string)) (*execSection, error) {
	net, err := buildNet(name, seed)
	if err != nil {
		return nil, err
	}
	cfg.KeepPrograms = true
	progress(fmt.Sprintf("compiling %s with programs retained", name))
	comp, err := rtmap.Compile(net, cfg)
	if err != nil {
		return nil, err
	}
	ins := workload.Inputs(net.InputShape, maxB, seed+1)

	progress("cross-checking engine vs baseline interpreter")
	want, err := rtmap.RunFunctionalBaseline(comp, ins[0])
	if err != nil {
		return nil, err
	}
	got, err := rtmap.RunFunctional(comp, ins[0])
	if err != nil {
		return nil, err
	}
	for i := range net.Layers {
		if !got.Outputs[i].Equal(want.Outputs[i]) {
			return nil, fmt.Errorf("engine diverges from baseline at layer %d", i)
		}
	}

	sec := &execSection{Network: name, GoMaxProcs: runtime.GOMAXPROCS(0)}
	progress("measuring baseline interpreter (single stream)")
	sec.BaselineNSPerInfer, err = benchLoop(func() error {
		_, err := rtmap.RunFunctionalBaseline(comp, ins[0])
		return err
	})
	if err != nil {
		return nil, err
	}
	for b := 1; b <= maxB; b *= 2 {
		batch := ins[:b]
		progress(fmt.Sprintf("measuring batched engine at batch %d", b))
		ns, err := benchLoop(func() error {
			_, err := rtmap.RunFunctionalBatch(comp, batch)
			return err
		})
		if err != nil {
			return nil, err
		}
		row := execRow{
			Batch:        b,
			NSPerInfer:   ns / float64(b),
			InfersPerSec: 1e9 * float64(b) / ns,
		}
		if sec.BaselineNSPerInfer > 0 {
			row.Speedup = sec.BaselineNSPerInfer / row.NSPerInfer
		}
		sec.Frontier = append(sec.Frontier, row)
	}
	return sec, nil
}

// replicaSection groups one network's replication frontier in the JSON
// artifact.
type replicaSection struct {
	Network  string       `json:"network"`
	Frontier []replicaRow `json:"frontier"`
}

// replicaRow is one point of the replica-count/throughput frontier.
type replicaRow struct {
	Replicas int `json:"replicas"`
	// SteadyNS is the aggregate steady-state inter-sample interval of the
	// replica group; AggInfersPerSec is its reciprocal throughput.
	SteadyNS        float64 `json:"steady_ns"`
	AggInfersPerSec float64 `json:"agg_infer_per_s"`
	// Batch64LatencyNS is the completion time of a 64-sample batch
	// load-balanced across the replicas.
	Batch64LatencyNS float64 `json:"batch64_latency_ns"`
	// Speedup is aggregate throughput relative to one replica.
	Speedup float64 `json:"speedup_vs_single"`
}

// traceSection is the JSON artifact of the tracing-overhead smoke
// (bench/BENCH_trace.json): one row per tracing mode, with overhead
// relative to tracing off. The CI bench job regenerates it so a span
// fast-path regression shows up as an overhead jump.
type traceSection struct {
	Network  string         `json:"network"`
	Batch    int            `json:"batch"`
	Requests int            `json:"requests"`
	Modes    []traceModeRow `json:"modes"`
}

// traceModeRow is one tracing mode's measurement.
type traceModeRow struct {
	// Mode is "off" (no tracer traffic), "sampled" (1-in-16 requests, 1-in-8
	// of those with layer spans — the recommended production setting), or
	// "full" (every request traced with layer spans — the worst case).
	Mode         string  `json:"mode"`
	NSPerRequest float64 `json:"ns_per_request"`
	ReqPerSec    float64 `json:"req_per_s"`
	// OverheadPct is this mode's per-request cost increase over "off".
	OverheadPct float64 `json:"overhead_pct_vs_off"`
	// Spans is how many spans the mode recorded across the measured
	// requests (sanity: off must record none, full the most).
	Spans uint64 `json:"spans_recorded"`
}

// traceOverheadSweep drives batch-8 bit-exact tinycnn requests through an
// in-process Server (httptest recorders, no sockets) under each tracing
// mode and measures the per-request wall cost. Batch 8 fills MaxBatch, so
// every request dispatches immediately instead of waiting out the batch
// window, and the measurement tracks handler+engine+span cost.
func traceOverheadSweep(seed uint64, noCache bool, progress func(string)) (*traceSection, error) {
	const batch, warmup, reps = 8, 20, 300
	net, err := buildNet("tinycnn", seed)
	if err != nil {
		return nil, err
	}
	sparsity := 0.8
	req := serve.InferRequest{
		Model: "tinycnn", ActBits: 4, Sparsity: &sparsity, Seed: seed,
		BitExact: true, Inputs: workload.InputData(net.InputShape, batch, seed+1000),
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}

	modes := []struct {
		name          string
		sample, layer int
		header        bool
	}{
		{name: "off"},
		{name: "sampled", sample: 16, layer: 8},
		{name: "full", layer: 1, header: true},
	}
	sec := &traceSection{Network: "tinycnn", Batch: batch, Requests: reps}
	var baseNS float64
	for _, m := range modes {
		progress(fmt.Sprintf("measuring serving path with tracing %s", m.name))
		srv := serve.New(serve.Options{
			Devices: 2, MaxBatch: batch, MaxModels: 2,
			TraceBuf: 1 << 15, TraceSample: m.sample, TraceLayerSample: m.layer,
			NoCache: noCache, Logf: func(string, ...any) {},
		})
		do := func(i int) error {
			r := httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body))
			r.Header.Set("Content-Type", "application/json")
			if m.header {
				r.Header.Set(serve.TraceHeader, fmt.Sprintf("oh%s%d", m.name, i))
			}
			w := httptest.NewRecorder()
			srv.Handler().ServeHTTP(w, r)
			if w.Code != http.StatusOK {
				return fmt.Errorf("tracing %s: HTTP %d: %s", m.name, w.Code, w.Body.String())
			}
			return nil
		}
		for i := 0; i < warmup; i++ {
			if err := do(i); err != nil {
				return nil, err
			}
		}
		// Best of three rounds: the per-request cost is sub-millisecond, so
		// one scheduler hiccup would otherwise dominate the mean.
		before := srv.Tracer().Total()
		ns := math.Inf(1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := do(warmup + round*reps + i); err != nil {
					return nil, err
				}
			}
			if r := float64(time.Since(start).Nanoseconds()) / reps; r < ns {
				ns = r
			}
		}
		spans := (srv.Tracer().Total() - before) / 3
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			return nil, err
		}
		row := traceModeRow{Mode: m.name, NSPerRequest: ns, ReqPerSec: 1e9 / ns, Spans: spans}
		if m.name == "off" {
			baseNS = ns
		} else if baseNS > 0 {
			row.OverheadPct = (ns - baseNS) / baseNS * 100
		}
		sec.Modes = append(sec.Modes, row)
	}
	return sec, nil
}

// replicaSweep compiles the named network once and prices data-parallel
// replication at every replica count from 1 to maxR
// (rtmap.AnalyzeReplicatedBatch).
func replicaSweep(name string, seed uint64, maxR int, cfg rtmap.CompileConfig) ([]replicaRow, error) {
	net, err := buildNet(name, seed)
	if err != nil {
		return nil, err
	}
	comp, err := rtmap.Compile(net, cfg)
	if err != nil {
		return nil, err
	}
	rep := rtmap.Analyze(comp)
	var rows []replicaRow
	var base float64
	for r := 1; r <= maxR; r++ {
		rr := rtmap.AnalyzeReplicatedBatch(rep, 64, r)
		row := replicaRow{
			Replicas:         r,
			SteadyNS:         rr.SteadyNS,
			AggInfersPerSec:  rr.AggregateInfersPerSec(),
			Batch64LatencyNS: rr.LatencyNS,
		}
		if r == 1 {
			base = rr.AggregateInfersPerSec()
		}
		if base > 0 {
			row.Speedup = row.AggInfersPerSec / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}
