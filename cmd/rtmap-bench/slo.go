package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"rtmap"
	"rtmap/internal/serve"
	"rtmap/internal/workload"
)

// sloSection is the JSON artifact of the SLO-scheduling benchmark
// (bench/BENCH_slo.json): two serving arms driven with the identical
// open-loop mixed-deadline workload on identical hardware, compared on
// goodput — requests answered 200 within their own deadline budget.
//
//   - "static": fixed devices/replicas, SLO machinery disabled. The
//     server runs throughput-only FIFO batching; deadlines exist only in
//     the client's ledger.
//   - "slo": deadline-aware formation, load shedding, and the
//     autoscaler growing the deployment from one replica, all on.
//
// The CI smoke job regenerates this artifact; GoodputRatio dropping
// toward 1.0 means the scheduler stopped earning its complexity, and
// any bit-exactness violation fails the run outright.
type sloSection struct {
	Network   string  `json:"network"`
	DurationS float64 `json:"duration_s_per_arm"`
	// WallScale is the serve.Options.WallScale dilation factor both arms
	// run under: simulated device latency is honored as wall time, so
	// service time — and therefore all queueing and deadline behaviour —
	// is governed by the paper's cost model instead of host CPU speed.
	WallScale float64 `json:"wall_scale"`
	// OfferedPerSec is the open-loop arrival rate both arms receive,
	// calibrated to ~1.3x the measured capacity of the static
	// configuration so deadline pressure is real but bounded.
	OfferedPerSec float64       `json:"offered_per_s"`
	Mix           []sloMixEntry `json:"mix"`
	Static        sloArm        `json:"static"`
	SLO           sloArm        `json:"slo"`
	// GoodputRatio is SLO-arm goodput over static-arm goodput at the
	// same offered load; the acceptance floor is 1.5.
	GoodputRatio float64 `json:"goodput_ratio"`
	// BitExactViolations counts sampled bit-exact responses whose logits
	// diverged from the reference engine. Must be zero.
	BitExactViolations int `json:"bit_exact_violations"`
	BitExactChecked    int `json:"bit_exact_checked"`
}

// sloMixEntry documents one class of the driven workload.
type sloMixEntry struct {
	Class      string  `json:"class"`
	WeightPct  int     `json:"weight_pct"`
	DeadlineMS float64 `json:"deadline_ms"` // 0 = none
}

// sloArm is one serving configuration's measured outcome ledger.
type sloArm struct {
	Config        string                 `json:"config"`
	Sent          int64                  `json:"sent"`
	Accepted      int64                  `json:"accepted"`
	Shed          int64                  `json:"shed"`
	Expired       int64                  `json:"expired"`
	Failed        int64                  `json:"failed"`
	Goodput       int64                  `json:"goodput"`
	GoodputPerSec float64                `json:"goodput_per_s"`
	FinalReplicas int                    `json:"final_replicas"`
	Classes       map[string]sloArmClass `json:"classes"`
}

// sloArmClass is one class's slice of an arm's ledger.
type sloArmClass struct {
	DeadlineMS float64 `json:"deadline_ms"`
	Sent       int64   `json:"sent"`
	Accepted   int64   `json:"accepted"`
	Shed       int64   `json:"shed"`
	Expired    int64   `json:"expired"`
	Goodput    int64   `json:"goodput"`
}

// sloClassSpec is one class of the driven mix.
type sloClassSpec struct {
	name     string
	weight   int
	deadline time.Duration // 0 = none
}

// sloWorkload is everything both arms share: the class schedule, the
// request bodies, and the reference logits for bit-exact spot checks.
type sloWorkload struct {
	schedule    []*sloClassSpec // deterministic 10-slot proportional fill
	bodies      [][]byte
	exactBodies [][]byte  // bit-exact variants, verified against wantLogits
	wantLogits  [][]int32 // reference logits per exactBodies index
}

// sloSweep builds the shared workload, calibrates the offered rate
// against a throwaway static server, then drives both arms with the
// identical schedule.
func sloSweep(seed uint64, dur time.Duration, noCache bool, progress func(string)) (*sloSection, error) {
	const devices, maxBatch = 4, 8
	// Dilation factor: tinycnn's batch-8 simulated latency is ~8.7us, so
	// x1000 makes one device worth ~1.1ms of wall time per item. That
	// puts the device — not the HTTP handler — on the critical path,
	// which is the regime the scheduler exists for: replicas add real
	// capacity, backlogs convert into missed deadlines, and the
	// autoscaler's cost-model pricing matches observed wall time.
	const wallScale = 1000
	mix := []sloClassSpec{
		{name: "interactive", weight: 5, deadline: 50 * time.Millisecond},
		{name: "standard", weight: 3, deadline: 200 * time.Millisecond},
		{name: "bulk", weight: 2, deadline: 0},
	}
	wl, err := buildSLOWorkload(mix, seed)
	if err != nil {
		return nil, err
	}
	sec := &sloSection{Network: "tinycnn", DurationS: dur.Seconds(), WallScale: wallScale}
	for _, c := range mix {
		sec.Mix = append(sec.Mix, sloMixEntry{
			Class: c.name, WeightPct: c.weight * 10,
			DeadlineMS: float64(c.deadline) / float64(time.Millisecond),
		})
	}

	staticOpts := serve.Options{
		Devices: devices, Replicas: 2, MaxBatch: maxBatch, MaxModels: 2,
		Window: 2 * time.Millisecond, DisableSLO: true,
		WallScale: wallScale,
		NoCache:   noCache, Logf: func(string, ...any) {},
	}
	// Shedding bound sized to the tightest deadline: a backlog worth more
	// than half an interactive budget cannot serve that class in time.
	sloOpts := serve.Options{
		Devices: devices, Replicas: 1, MaxBatch: maxBatch, MaxModels: 2,
		Window:        2 * time.Millisecond,
		MaxQueueDelay: 25 * time.Millisecond,
		Autoscale:     true, AutoscaleInterval: 100 * time.Millisecond,
		WallScale: wallScale,
		NoCache:   noCache, Logf: func(string, ...any) {},
	}

	progress("calibrating offered load against the static configuration")
	capacity, err := calibrateCapacity(staticOpts, wl.bodies[0])
	if err != nil {
		return nil, err
	}
	sec.OfferedPerSec = capacity * 1.3

	progress(fmt.Sprintf("driving static arm at %.0f req/s for %v", sec.OfferedPerSec, dur))
	st, err := driveSLOArm(staticOpts, "static 2 replicas, SLO off", sec.OfferedPerSec, dur, wl, sec)
	if err != nil {
		return nil, err
	}
	sec.Static = *st

	progress(fmt.Sprintf("driving SLO arm at %.0f req/s for %v", sec.OfferedPerSec, dur))
	sl, err := driveSLOArm(sloOpts, "autoscale from 1 replica, shed at 25ms backlog", sec.OfferedPerSec, dur, wl, sec)
	if err != nil {
		return nil, err
	}
	sec.SLO = *sl

	if sec.Static.Goodput > 0 {
		sec.GoodputRatio = float64(sec.SLO.Goodput) / float64(sec.Static.Goodput)
	}
	return sec, nil
}

// buildSLOWorkload pre-builds the request bodies and the bit-exact
// reference logits the spot checks compare against.
func buildSLOWorkload(mix []sloClassSpec, seed uint64) (*sloWorkload, error) {
	const pool, exactPool = 16, 4
	net, err := buildNet("tinycnn", seed)
	if err != nil {
		return nil, err
	}
	wl := &sloWorkload{}

	// Proportional fill (Bresenham-style) over 10 slots so the class
	// sequence is deterministic and interleaved.
	total := 0
	for _, c := range mix {
		total += c.weight
	}
	assigned := make([]int, len(mix))
	for i := 0; i < 10; i++ {
		best, bestLag := 0, -1.0
		for j, c := range mix {
			lag := float64(c.weight)*float64(i+1)/float64(total) - float64(assigned[j])
			if lag > bestLag {
				best, bestLag = j, lag
			}
		}
		assigned[best]++
		wl.schedule = append(wl.schedule, &mix[best])
	}

	sparsity := 0.8
	data := workload.InputData(net.InputShape, pool+exactPool, seed+1000)
	marshal := func(inputs [][]float32, exact bool) ([]byte, error) {
		req := serve.InferRequest{
			Model: "tinycnn", ActBits: 4, Sparsity: &sparsity, Seed: seed,
			BitExact: exact, Inputs: inputs,
		}
		return json.Marshal(&req)
	}
	for i := 0; i < pool; i++ {
		b, err := marshal(data[i:i+1], false)
		if err != nil {
			return nil, err
		}
		wl.bodies = append(wl.bodies, b)
	}

	// Reference logits from the standalone engine: the serving path must
	// reproduce them bit for bit, deadline pressure or not.
	cfg := rtmap.CompileConfigWithCache(nil, false)
	cfg.KeepPrograms = true
	comp, err := rtmap.Compile(net, cfg)
	if err != nil {
		return nil, err
	}
	exactIns := workload.Inputs(net.InputShape, exactPool, seed+1000+pool)
	for i := 0; i < exactPool; i++ {
		b, err := marshal([][]float32{exactIns[i].Data}, true)
		if err != nil {
			return nil, err
		}
		wl.exactBodies = append(wl.exactBodies, b)
		tr, err := rtmap.RunFunctional(comp, exactIns[i])
		if err != nil {
			return nil, err
		}
		wl.wantLogits = append(wl.wantLogits, tr.Logits().Data)
	}
	return wl, nil
}

// calibrateCapacity measures the static configuration's closed-loop
// throughput on a throwaway server, so the offered rate tracks the host
// instead of a hardcoded number.
func calibrateCapacity(opts serve.Options, body []byte) (float64, error) {
	srv := serve.New(opts)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	do := func() error {
		r := httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			return fmt.Errorf("calibration: HTTP %d: %s", w.Code, w.Body.String())
		}
		return nil
	}
	if err := do(); err != nil { // warm-up: admission compiles the model
		return 0, err
	}
	// Enough closed-loop workers to keep every replica's batcher full:
	// with dilated devices the measurement is saturation throughput, not
	// latency-bound round-trips.
	const workers = 64
	var count atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	deadline := start.Add(700 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if err := do(); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				count.Add(1)
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	c := float64(count.Load()) / elapsed
	if c <= 0 {
		return 0, fmt.Errorf("calibration measured zero throughput")
	}
	return c, nil
}

// driveSLOArm runs one serving configuration under the shared open-loop
// workload and returns its outcome ledger. Bit-exact spot checks (one
// request in 8) verify logits against the reference engine and
// accumulate into sec.BitExactChecked/BitExactViolations.
func driveSLOArm(opts serve.Options, config string, rate float64, dur time.Duration,
	wl *sloWorkload, sec *sloSection) (*sloArm, error) {
	srv := serve.New(opts)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// Warm-up admits (compiles) the model outside the window.
	{
		r := httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(wl.bodies[0]))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			return nil, fmt.Errorf("%s warm-up: HTTP %d: %s", config, w.Code, w.Body.String())
		}
	}

	arm := &sloArm{Config: config, Classes: map[string]sloArmClass{}}
	tally := map[string]*sloArmClass{}
	for i := range wl.schedule {
		c := wl.schedule[i]
		if tally[c.name] == nil {
			tally[c.name] = &sloArmClass{DeadlineMS: float64(c.deadline) / float64(time.Millisecond)}
		}
	}
	var mu sync.Mutex
	var exactChecked, exactBad int

	shoot := func(n int) {
		sc := wl.schedule[n%len(wl.schedule)]
		exact := n%8 == 0
		var body []byte
		var exactIdx int
		if exact {
			exactIdx = (n / 8) % len(wl.exactBodies)
			body = wl.exactBodies[exactIdx]
		} else {
			body = wl.bodies[n%len(wl.bodies)]
		}
		r := httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		r.Header.Set(serve.ClassHeader, sc.name)
		if sc.deadline > 0 {
			r.Header.Set(serve.DeadlineHeader,
				fmt.Sprintf("%g", float64(sc.deadline)/float64(time.Millisecond)))
		}
		t0 := time.Now()
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, r)
		wall := time.Since(t0)

		good := false
		var logits []int32
		if w.Code == http.StatusOK {
			good = sc.deadline == 0 || wall <= sc.deadline
			if exact {
				var resp serve.InferResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err == nil && len(resp.Results) > 0 {
					logits = resp.Results[0].Logits
				}
			}
		}
		var kind string
		if w.Code != http.StatusOK {
			var eresp struct {
				Kind string `json:"kind"`
			}
			json.Unmarshal(w.Body.Bytes(), &eresp)
			kind = eresp.Kind
		}

		mu.Lock()
		defer mu.Unlock()
		ct := tally[sc.name]
		ct.Sent++
		arm.Sent++
		switch {
		case w.Code == http.StatusOK:
			ct.Accepted++
			arm.Accepted++
			if good {
				ct.Goodput++
				arm.Goodput++
			}
		case w.Code == http.StatusTooManyRequests:
			ct.Shed++
			arm.Shed++
		case w.Code == http.StatusServiceUnavailable && kind == "expired":
			ct.Expired++
			arm.Expired++
		default:
			arm.Failed++
		}
		if logits != nil {
			exactChecked++
			want := wl.wantLogits[exactIdx]
			if len(logits) != len(want) {
				exactBad++
			} else {
				for j := range want {
					if logits[j] != want[j] {
						exactBad++
						break
					}
				}
			}
		}
	}

	// Open loop with catch-up pacing: every wakeup dispatches however
	// many arrivals the schedule owes (a sleep-based ticker tops out at
	// the kernel timer granularity, ~1ms, and silently halves the offered
	// rate). Bounded in-flight: under overload the semaphore converts
	// excess arrivals into client-side queueing, which both arms
	// experience identically.
	sem := make(chan struct{}, 512)
	var wg sync.WaitGroup
	start := time.Now()
	for n := 0; ; {
		elapsed := time.Since(start)
		if elapsed >= dur {
			break
		}
		for target := int(rate * elapsed.Seconds()); n < target; n++ {
			sem <- struct{}{}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				defer func() { <-sem }()
				shoot(n)
			}(n)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	elapsed := dur.Seconds()
	arm.GoodputPerSec = float64(arm.Goodput) / elapsed
	for name, ct := range tally {
		arm.Classes[name] = *ct
	}
	if loaded := srv.Registry().Loaded(); len(loaded) > 0 {
		arm.FinalReplicas = loaded[0].Replicas
	}
	sec.BitExactChecked += exactChecked
	sec.BitExactViolations += exactBad
	return arm, nil
}
