// Command rtmap-router runs the cluster front tier: an HTTP router that
// consistent-hashes models across several rtmap-serve nodes and wraps
// every proxied /v1/infer in the robustness policy — health-checked
// failover, class-derived attempt timeouts, budgeted retries with
// capped exponential backoff, hedged interactive requests, and per-node
// circuit breakers.
//
//	rtmap-router -node http://127.0.0.1:8081 -node http://127.0.0.1:8082 -node http://127.0.0.1:8083
//	rtmap-router -addr :8090 -max-attempts 3 -backoff 10ms -backoff-cap 250ms
//	rtmap-router -health-interval 250ms -fail-threshold 3    # kill detected within ~3 probe rounds
//	rtmap-router -no-hedge                                   # retries only, no hedging
//	rtmap-router -fault 'http://127.0.0.1:8082=slow:50ms'    # wire-level fault injection
//	rtmap-router -fault 1=kill -fault 2=flap:500ms           # nodes addressable by -node index too
//
// Endpoints: POST /v1/infer (proxied under the robustness policy),
// GET /v1/models, GET /healthz, GET /metrics (Prometheus text format
// with per-node health/retry/hedge/breaker series), GET /cluster (the
// member table: health state, breaker state, probe counters), and
// GET /debug/traces (route/retry/hedge spans; requests carrying an
// X-Rtmap-Trace header are always traced and keep their ID across the
// proxied hop). SIGINT/SIGTERM drain gracefully, bounded by
// -drain-timeout.
//
// Fault injection (-fault, repeatable) arms a node-level fault at the
// router's transport: kill and partition refuse connections, hang holds
// them open forever, slow:<dur> delays every response, flap[:<period>]
// alternates dead and alive. Faults shape both proxied attempts and
// health probes — the point is to watch the failover machinery do its
// job from /metrics and /cluster.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rtmap/internal/cluster"
	"rtmap/internal/dispatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtmap-router: ")
	var (
		addr      = flag.String("addr", ":8090", "listen address (port 0 picks a free port)")
		vnodes    = flag.Int("vnodes", 0, "virtual points per node on the hash ring (0 = default 128)")
		hInterval = flag.Duration("health-interval", 250*time.Millisecond, "health probe period")
		hTimeout  = flag.Duration("health-timeout", 0, "per-probe timeout (0 = the probe interval, min 50ms)")
		failThr   = flag.Int("fail-threshold", 3, "consecutive probe failures before a node is down")
		succThr   = flag.Int("success-threshold", 2, "consecutive probe successes before a probationary node is up again")
		brkThr    = flag.Int("breaker-threshold", 5, "consecutive attempt failures before a node's circuit opens")
		brkCool   = flag.Duration("breaker-cooloff", time.Second, "open-circuit hold before a half-open trial")
		attempts  = flag.Int("max-attempts", 3, "total tries per request (first attempt + retries)")
		backoff   = flag.Duration("backoff", 10*time.Millisecond, "base retry backoff (doubles per retry)")
		backCap   = flag.Duration("backoff-cap", 250*time.Millisecond, "retry backoff ceiling")
		bEarn     = flag.Float64("budget-earn", 0.1, "retry-budget tokens earned per request (retries+hedges spend 1 each)")
		bBurst    = flag.Float64("budget-burst", 16, "retry-budget bucket cap (and initial balance)")
		noHedge   = flag.Bool("no-hedge", false, "disable hedged interactive requests")
		hedgeFall = flag.Duration("hedge-fallback", 25*time.Millisecond, "hedge delay before a model has latency samples (then: observed p95)")
		tInter    = flag.Duration("timeout-interactive", 0, "attempt timeout for interactive requests (0 = class default)")
		tStandard = flag.Duration("timeout-standard", 0, "attempt timeout for standard requests (0 = class default)")
		tBulk     = flag.Duration("timeout-bulk", 0, "attempt timeout for bulk requests (0 = class default)")
		traceBuf  = flag.Int("trace-buf", 4096, "span ring-buffer capacity behind /debug/traces")
		traceSamp = flag.Int("trace-sample", 0, "trace 1-in-N requests without an X-Rtmap-Trace header (0 = header-only tracing)")
		drainT    = flag.Duration("drain-timeout", 10*time.Second, "bound on the SIGTERM graceful drain")
	)
	var nodes []string
	flag.Func("node", "rtmap-serve base `URL` (repeatable; at least one required)", func(v string) error {
		v = strings.TrimSuffix(v, "/")
		if !strings.HasPrefix(v, "http://") && !strings.HasPrefix(v, "https://") {
			v = "http://" + v
		}
		nodes = append(nodes, v)
		return nil
	})
	type armedFault struct {
		node string // URL, or a -node index
		f    cluster.Fault
	}
	var faults []armedFault
	flag.Func("fault", "arm a wire-level fault as `node=kind`: node is a -node URL or index, kind is kill|partition|hang|slow:<dur>|flap[:<period>] (repeatable)", func(v string) error {
		node, spec, ok := strings.Cut(v, "=")
		if !ok || node == "" {
			return fmt.Errorf("want node=kind, got %q", v)
		}
		f, err := cluster.ParseFault(spec)
		if err != nil {
			return err
		}
		faults = append(faults, armedFault{node: node, f: f})
		return nil
	})
	flag.Parse()

	if len(nodes) == 0 {
		log.Fatal("at least one -node is required")
	}

	// Resolve -fault node references (an integer is a -node index) now
	// that the node list is complete.
	for i, af := range faults {
		if idx, err := strconv.Atoi(af.node); err == nil {
			if idx < 0 || idx >= len(nodes) {
				log.Fatalf("-fault node index %d out of range: %d nodes given", idx, len(nodes))
			}
			faults[i].node = nodes[idx]
			continue
		}
		url := strings.TrimSuffix(af.node, "/")
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		faults[i].node = url
	}

	opts := cluster.Options{
		Addr:         *addr,
		Nodes:        nodes,
		VirtualNodes: *vnodes,
		Health: cluster.HealthOptions{
			Interval:         *hInterval,
			Timeout:          *hTimeout,
			FailThreshold:    *failThr,
			SuccessThreshold: *succThr,
		},
		Breaker: cluster.BreakerOptions{Threshold: *brkThr, Cooloff: *brkCool},
		Timeout: dispatch.AttemptTimeouts{
			Interactive: *tInter, Standard: *tStandard, Bulk: *tBulk,
		},
		MaxAttempts:   *attempts,
		BackoffBase:   *backoff,
		BackoffCap:    *backCap,
		BudgetEarn:    *bEarn,
		BudgetBurst:   *bBurst,
		DisableHedge:  *noHedge,
		HedgeFallback: *hedgeFall,
		TraceBuf:      *traceBuf,
		TraceSample:   *traceSamp,
		Logf:          log.Printf,
	}
	if len(faults) > 0 {
		inj := cluster.NewFaultInjector(nil)
		for _, af := range faults {
			inj.Set(af.node, af.f)
			log.Printf("fault armed: %s = %s", af.node, af.f.Kind)
		}
		opts.Transport = inj
	}

	r, err := cluster.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	laddr, err := r.Listen()
	if err != nil {
		log.Fatal(err)
	}
	// The listen line doubles as the harness handshake (like rtmap-serve).
	fmt.Printf("rtmap-router listening on %s (%d nodes)\n", laddr, len(nodes))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- r.Serve() }()
	select {
	case err := <-errc:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), *drainT)
		err := r.Shutdown(sctx)
		cancel()
		if serr := <-errc; serr != nil && err == nil {
			err = serr
		}
		if err != nil {
			log.Fatal(err)
		}
		log.Print("drained cleanly")
	}
	_ = os.Stdout.Sync()
}
