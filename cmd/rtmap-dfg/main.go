// Command rtmap-dfg inspects the arithmetic-level compiler:
//
//	rtmap-dfg -eq1          # the paper's Equation (1): 19 ops → 7 after CSE
//	rtmap-dfg -eq1 -dot     # its optimized DFG in Graphviz format (Fig. 3e)
//	rtmap-dfg -luts         # the generated Table I pass tables
//	rtmap-dfg -random 64    # CSE statistics on a random 64×9 slice
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"rtmap/internal/ap"
	"rtmap/internal/dfg"
	"rtmap/internal/ternary"
)

// equation1 is the paper's worked MVM example (sign typos corrected; see
// DESIGN.md §2).
func equation1() ternary.Slice {
	return ternary.Slice{Cout: 6, K: 6, M: []int8{
		1, -1, 0, 1, 0, -1,
		0, 0, -1, 1, 0, -1,
		0, 0, 0, -1, 0, 1,
		0, -1, 0, -1, 0, 1,
		1, -1, 0, -1, 0, 0,
		1, -1, -1, 1, 0, -1,
	}}
}

func main() {
	log.SetFlags(0)
	var (
		eq1    = flag.Bool("eq1", false, "analyze the paper's Equation (1)")
		dot    = flag.Bool("dot", false, "emit the DFG as Graphviz dot")
		luts   = flag.Bool("luts", false, "print the generated Table I LUTs")
		random = flag.Int("random", 0, "CSE stats for a random Nx9 slice")
		sparse = flag.Float64("sparsity", 0.8, "sparsity for -random")
		bits   = flag.Int("bits", 4, "input activation bits")
	)
	flag.Parse()
	if !*eq1 && !*luts && *random == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *luts {
		for _, l := range []*ap.LUT{ap.AddIn, ap.AddOut, ap.SubIn, ap.SubOut, ap.NegOut, ap.CopyOut} {
			fmt.Println(l)
		}
	}

	analyze := func(name string, s ternary.Slice) {
		naive := dfg.NaiveAccumulateOps(s)
		un := dfg.Build(s, dfg.Options{})
		cse := dfg.Build(s, dfg.Options{CSE: true})
		hi := int64(1)<<uint(*bits) - 1
		cse.AnnotateWidths(0, hi)
		st := cse.Statistics()
		fmt.Printf("%s: %d×%d, nnz %d\n", name, s.Cout, s.K, s.NNZ())
		fmt.Printf("  accumulate convention: %d ops\n", naive)
		fmt.Printf("  unroll:                %d add/sub\n", un.NumOps())
		fmt.Printf("  unroll+CSE:            %d add/sub (%.0f%% reduction), depth %d, max %d bits, %d negated aliases, %d zero rows\n",
			cse.NumOps(), 100*(1-float64(cse.NumOps())/float64(un.NumOps())),
			st.Depth, st.MaxBits, st.NegAliases, st.ZeroRows)
		if *dot {
			fmt.Print(cse.Dot(name))
		}
	}

	if *eq1 {
		analyze("equation1", equation1())
	}
	if *random > 0 {
		rng := rand.New(rand.NewPCG(7, 7))
		w := ternary.Random(rng, *random, 1, 3, 3, *sparse)
		analyze("random", w.Slice(0))
	}
}
