// Package ternary represents ternary weight networks (TWNs): weights
// restricted to {−1, 0, +1} with a per-layer positive scale. The paper's
// compilation flow assumes TWNs trained with BIPROP; since training is out
// of scope here, this package provides both (a) TWN-style ternarization of
// dense float weights (threshold 0.7·mean|W|, the classic TWN rule) and
// (b) deterministic, seeded generation of ternary weights at a target
// sparsity — the structural property that drives every compiler and
// hardware cost in the paper (Table II reports sparsity next to every row).
package ternary
