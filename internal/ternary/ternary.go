package ternary

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Weights holds one layer's ternary weights in OIHW order.
// Linear layers use Fh = Fw = 1 with Cin = input features.
type Weights struct {
	Cout, Cin, Fh, Fw int
	W                 []int8 // len Cout*Cin*Fh*Fw, values in {-1,0,1}
}

// New allocates an all-zero ternary weight tensor.
func New(cout, cin, fh, fw int) *Weights {
	if cout <= 0 || cin <= 0 || fh <= 0 || fw <= 0 {
		panic(fmt.Sprintf("ternary: invalid dims %d %d %d %d", cout, cin, fh, fw))
	}
	return &Weights{Cout: cout, Cin: cin, Fh: fh, Fw: fw, W: make([]int8, cout*cin*fh*fw)}
}

// At returns w[co][ci][kh][kw].
func (w *Weights) At(co, ci, kh, kw int) int8 {
	return w.W[((co*w.Cin+ci)*w.Fh+kh)*w.Fw+kw]
}

// Set stores v (must be -1, 0 or 1) at w[co][ci][kh][kw].
func (w *Weights) Set(co, ci, kh, kw int, v int8) {
	if v < -1 || v > 1 {
		panic(fmt.Sprintf("ternary: value %d out of {-1,0,1}", v))
	}
	w.W[((co*w.Cin+ci)*w.Fh+kh)*w.Fw+kw] = v
}

// Elems returns the number of weights.
func (w *Weights) Elems() int { return len(w.W) }

// NNZ returns the number of nonzero weights.
func (w *Weights) NNZ() int {
	n := 0
	for _, v := range w.W {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero weights.
func (w *Weights) Sparsity() float64 {
	return 1 - float64(w.NNZ())/float64(w.Elems())
}

// Validate checks every element is in {-1,0,1}.
func (w *Weights) Validate() error {
	if len(w.W) != w.Cout*w.Cin*w.Fh*w.Fw {
		return fmt.Errorf("ternary: data length %d != %d", len(w.W), w.Cout*w.Cin*w.Fh*w.Fw)
	}
	for i, v := range w.W {
		if v < -1 || v > 1 {
			return fmt.Errorf("ternary: element %d has value %d", i, v)
		}
	}
	return nil
}

// Slice is the weight slice convolved on a single input channel: a
// Cout × K matrix with K = Fh·Fw. It is the unit the paper's CSE operates
// on (§IV-A: "CSEs are found within the weight slice (Cout×1×Fh×Fw), which
// allows the greatest potential for reuse of a single input channel across
// all output channels").
type Slice struct {
	Cout, K int
	M       []int8 // row-major Cout × K
}

// At returns M[row][k].
func (s Slice) At(row, k int) int8 { return s.M[row*s.K+k] }

// Row returns row `row` of the slice (aliasing the underlying storage).
func (s Slice) Row(row int) []int8 { return s.M[row*s.K : (row+1)*s.K] }

// NNZ returns the nonzero count of the slice.
func (s Slice) NNZ() int {
	n := 0
	for _, v := range s.M {
		if v != 0 {
			n++
		}
	}
	return n
}

// RowRange returns the sub-slice of rows [lo, hi) — one output-channel
// tile of the slice. The result aliases the receiver's storage.
func (s Slice) RowRange(lo, hi int) Slice {
	if lo < 0 || hi > s.Cout || lo >= hi {
		panic(fmt.Sprintf("ternary: row range [%d,%d) outside 0..%d", lo, hi, s.Cout))
	}
	return Slice{Cout: hi - lo, K: s.K, M: s.M[lo*s.K : hi*s.K]}
}

// Slice extracts the weight slice for input channel ci.
func (w *Weights) Slice(ci int) Slice {
	k := w.Fh * w.Fw
	s := Slice{Cout: w.Cout, K: k, M: make([]int8, w.Cout*k)}
	for co := 0; co < w.Cout; co++ {
		base := ((co*w.Cin + ci) * w.Fh) * w.Fw
		copy(s.M[co*k:(co+1)*k], w.W[base:base+k])
	}
	return s
}

// Random generates ternary weights where each element is zero with
// probability sparsity and otherwise ±1 with equal probability. The rng
// makes generation deterministic; the same (seed, dims, sparsity) always
// yields the same network.
func Random(rng *rand.Rand, cout, cin, fh, fw int, sparsity float64) *Weights {
	if sparsity < 0 || sparsity > 1 {
		panic(fmt.Sprintf("ternary: sparsity %v out of [0,1]", sparsity))
	}
	w := New(cout, cin, fh, fw)
	for i := range w.W {
		if rng.Float64() >= sparsity {
			if rng.IntN(2) == 0 {
				w.W[i] = 1
			} else {
				w.W[i] = -1
			}
		}
	}
	// Guarantee at least one nonzero per output filter so no channel is
	// dead (trained TWNs never have all-zero filters after pruning).
	per := cin * fh * fw
	for co := 0; co < cout; co++ {
		row := w.W[co*per : (co+1)*per]
		dead := true
		for _, v := range row {
			if v != 0 {
				dead = false
				break
			}
		}
		if dead {
			row[rng.IntN(per)] = int8(1 - 2*rng.IntN(2))
		}
	}
	return w
}

// Ternarize converts dense float weights (OIHW) into ternary weights plus a
// positive scale using the TWN rule: threshold Δ = 0.7·mean|W|, scale
// α = mean of |w| over the weights that survive the threshold.
func Ternarize(fw []float32, cout, cin, fh, fw_ int) (*Weights, float32) {
	w := New(cout, cin, fh, fw_)
	if len(fw) != len(w.W) {
		panic(fmt.Sprintf("ternary: got %d floats for %d weights", len(fw), len(w.W)))
	}
	var meanAbs float64
	for _, v := range fw {
		meanAbs += math.Abs(float64(v))
	}
	meanAbs /= float64(len(fw))
	delta := 0.7 * meanAbs

	var alphaSum float64
	var alphaN int
	for i, v := range fw {
		a := math.Abs(float64(v))
		if a <= delta {
			continue
		}
		if v > 0 {
			w.W[i] = 1
		} else {
			w.W[i] = -1
		}
		alphaSum += a
		alphaN++
	}
	alpha := float32(1.0)
	if alphaN > 0 {
		alpha = float32(alphaSum / float64(alphaN))
	}
	return w, alpha
}

// Stats aggregates structural statistics used for reporting.
type Stats struct {
	Elems, NNZ       int
	Sparsity         float64
	PosCount, NegCnt int
}

// Statistics computes structural statistics of the weights.
func (w *Weights) Statistics() Stats {
	s := Stats{Elems: w.Elems()}
	for _, v := range w.W {
		switch {
		case v > 0:
			s.PosCount++
		case v < 0:
			s.NegCnt++
		}
	}
	s.NNZ = s.PosCount + s.NegCnt
	s.Sparsity = 1 - float64(s.NNZ)/float64(s.Elems)
	return s
}
