package ternary

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRandomSparsityTarget(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for _, target := range []float64{0.8, 0.85, 0.9} {
		w := Random(rng, 64, 64, 3, 3, target)
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
		got := w.Sparsity()
		if math.Abs(got-target) > 0.02 {
			t.Errorf("sparsity %.3f, want ~%.2f", got, target)
		}
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(rand.New(rand.NewPCG(1, 2)), 8, 4, 3, 3, 0.8)
	b := Random(rand.New(rand.NewPCG(1, 2)), 8, 4, 3, 3, 0.8)
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same seed must give identical weights")
		}
	}
}

func TestRandomNoDeadFilters(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	w := Random(rng, 32, 1, 1, 1, 0.95) // aggressive sparsity, tiny filters
	per := w.Cin * w.Fh * w.Fw
	for co := 0; co < w.Cout; co++ {
		alive := false
		for _, v := range w.W[co*per : (co+1)*per] {
			if v != 0 {
				alive = true
			}
		}
		if !alive {
			t.Fatalf("filter %d is all zero", co)
		}
	}
}

func TestSliceExtraction(t *testing.T) {
	w := New(2, 3, 2, 2)
	// Mark w[co][ci][0][0] = distinctive values.
	w.Set(0, 1, 0, 0, 1)
	w.Set(1, 1, 1, 1, -1)
	s := w.Slice(1)
	if s.Cout != 2 || s.K != 4 {
		t.Fatalf("slice dims %dx%d, want 2x4", s.Cout, s.K)
	}
	if s.At(0, 0) != 1 {
		t.Errorf("slice[0][0] = %d, want 1", s.At(0, 0))
	}
	if s.At(1, 3) != -1 {
		t.Errorf("slice[1][3] = %d, want -1", s.At(1, 3))
	}
	if s.NNZ() != 2 {
		t.Errorf("slice nnz = %d, want 2", s.NNZ())
	}
}

func TestSliceMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	w := Random(rng, 5, 4, 3, 3, 0.7)
	for ci := 0; ci < w.Cin; ci++ {
		s := w.Slice(ci)
		for co := 0; co < w.Cout; co++ {
			for kh := 0; kh < w.Fh; kh++ {
				for kw := 0; kw < w.Fw; kw++ {
					if s.At(co, kh*w.Fw+kw) != w.At(co, ci, kh, kw) {
						t.Fatalf("slice mismatch at co=%d ci=%d kh=%d kw=%d", co, ci, kh, kw)
					}
				}
			}
		}
	}
}

func TestTernarizeTWNRule(t *testing.T) {
	// mean|W| = (1+0.1+0.1+0.8+0.05+0.95)/6 = 0.5, Δ = 0.35.
	fw := []float32{1.0, -0.1, 0.1, -0.8, 0.05, 0.95}
	w, alpha := Ternarize(fw, 6, 1, 1, 1)
	want := []int8{1, 0, 0, -1, 0, 1}
	for i, v := range want {
		if w.W[i] != v {
			t.Errorf("ternarize[%d] = %d, want %d", i, w.W[i], v)
		}
	}
	// alpha = mean(|1|, |0.8|, |0.95|) ≈ 0.9167
	if math.Abs(float64(alpha)-0.91666) > 1e-3 {
		t.Errorf("alpha = %v, want ~0.9167", alpha)
	}
}

func TestTernarizeAllZero(t *testing.T) {
	w, alpha := Ternarize(make([]float32, 4), 4, 1, 1, 1)
	if w.NNZ() != 0 {
		t.Error("zero input should ternarize to zero")
	}
	if alpha != 1 {
		t.Errorf("alpha for empty support = %v, want 1", alpha)
	}
}

func TestStatistics(t *testing.T) {
	w := New(1, 1, 2, 2)
	w.W = []int8{1, -1, 0, 1}
	s := w.Statistics()
	if s.NNZ != 3 || s.PosCount != 2 || s.NegCnt != 1 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.Sparsity-0.25) > 1e-12 {
		t.Errorf("sparsity = %v, want 0.25", s.Sparsity)
	}
}

func TestSetRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set must panic on |v| > 1")
		}
	}()
	New(1, 1, 1, 1).Set(0, 0, 0, 0, 2)
}

// Property: ternarized weights are always valid and sign-consistent with
// the source floats.
func TestQuickTernarizeSignConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		n := 16
		fw := make([]float32, n)
		for i := range fw {
			fw[i] = float32(rng.NormFloat64())
		}
		w, _ := Ternarize(fw, n, 1, 1, 1)
		if w.Validate() != nil {
			return false
		}
		for i, v := range w.W {
			if v == 1 && fw[i] <= 0 {
				return false
			}
			if v == -1 && fw[i] >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
