package deepcam

import (
	"math"
	"math/rand/v2"

	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// Params are the DeepCAM figures of merit.
type Params struct {
	ArrayRows, ArrayCols int
	HashLen              int     // binary signature length (variable in [4])
	SearchPJPerBit       float64 // CAM search energy per cell
	MatchNSPerSearch     float64 // match-line discharge + timing readout
	PeriphPJPerOut       float64 // time-to-digital conversion per output
	MovePJBit            float64
}

// Default returns the configuration used for the Table II row
// (512×1024 arrays as in [4]).
func Default() Params {
	return Params{
		ArrayRows: 512, ArrayCols: 1024,
		HashLen:          64,
		SearchPJPerBit:   0.02,
		MatchNSPerSearch: 5.0,
		PeriphPJPerOut:   1.9,
		MovePJBit:        1.0,
	}
}

// Report is the whole-network DeepCAM estimate.
type Report struct {
	EnergyPJ  float64
	LatencyNS float64
	Arrays    int
	// ApproxSigma is the modeled relative standard deviation of the
	// Hamming dot-product approximation at the final layer — the driver
	// of DeepCAM's accuracy loss on complex tasks.
	ApproxSigma float64
}

// EnergyUJ returns energy in µJ.
func (r *Report) EnergyUJ() float64 { return r.EnergyPJ / 1e6 }

// LatencyMS returns latency in ms.
func (r *Report) LatencyMS() float64 { return r.LatencyNS / 1e6 }

// Analyze estimates DeepCAM's cost on the network.
func Analyze(net *model.Network, par Params) *Report {
	rep := &Report{}
	shapes := net.OutShapes(1)
	weights := 0
	depth := 0
	for i := range net.Layers {
		l := &net.Layers[i]
		if l.Kind != model.KindConv && l.Kind != model.KindLinear {
			continue
		}
		depth++
		weights += l.W.Elems()
		p := shapes[i].H * shapes[i].W
		outs := float64(p) * float64(l.W.Cout)
		// One hash-length CAM search per output (all rows matched in
		// parallel) and one match-line timing readout per output; readouts
		// serialize through the time-to-digital converters.
		rep.EnergyPJ += outs*float64(par.HashLen)*par.SearchPJPerBit + outs*par.PeriphPJPerOut
		rep.LatencyNS += outs * par.MatchNSPerSearch
		// Hash signatures of activations move between layers.
		rep.EnergyPJ += float64(p) * float64(par.HashLen) * par.MovePJBit * 0.02
	}
	// Signature storage sets the array count (~1.25 signature bits per
	// weight after hashing).
	rep.Arrays = (weights*5/4 + par.ArrayRows*par.ArrayCols - 1) / (par.ArrayRows * par.ArrayCols)
	// Relative error of an L-bit random-projection dot product is
	// ~1/sqrt(L) per layer and compounds with depth (§V-A: accuracy of
	// complex tasks "is more sensitive to approximation").
	rep.ApproxSigma = math.Sqrt(float64(depth)) / math.Sqrt(float64(par.HashLen))
	return rep
}

// ForwardHash runs the integer forward pass with DeepCAM's approximation
// injected: every conv partial sum is perturbed with zero-mean noise of
// standard deviation |sum|·/√HashLen (the Johnson–Lindenstrauss error of
// the Hamming-distance dot-product estimate), deterministically seeded.
func ForwardHash(net *model.Network, in *tensor.Float, par Params, seed uint64) (*model.IntTrace, error) {
	rng := rand.New(rand.NewPCG(seed, 0xdeebca3))
	sigma := 1 / math.Sqrt(float64(par.HashLen))
	return net.ForwardIntQuantized(in, func(x *tensor.Int, l *model.Layer) *tensor.Int {
		out := tensor.ConvIntTernarySparse(x, l.W.W, l.ConvSpec())
		// Scale of a typical partial sum for noise injection.
		var meanAbs float64
		for _, v := range out.Data {
			meanAbs += math.Abs(float64(v))
		}
		if len(out.Data) > 0 {
			meanAbs /= float64(len(out.Data))
		}
		for i, v := range out.Data {
			noise := rng.NormFloat64() * sigma * (0.5*math.Abs(float64(v)) + 0.5*meanAbs)
			out.Data[i] = v + int32(math.RoundToEven(noise))
		}
		return out
	})
}
