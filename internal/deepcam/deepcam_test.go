package deepcam

import (
	"math"
	"math/rand/v2"
	"testing"

	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

func TestAnalyzeVGG11Row(t *testing.T) {
	net := model.VGG11(model.Config{ActBits: 4, Sparsity: 0.85, Seed: 1})
	r := Analyze(net, Default())
	// Table II: DeepCAM runs VGG-11 at well under a microjoule per
	// inference (0.49 µJ) on 24 arrays of 512×1024.
	if r.EnergyUJ() <= 0 || r.EnergyUJ() > 5 {
		t.Errorf("VGG-11 energy %.3f µJ implausible vs paper's 0.49", r.EnergyUJ())
	}
	if r.Arrays < 10 || r.Arrays > 60 {
		t.Errorf("arrays %d implausible vs paper's 24", r.Arrays)
	}
	if r.LatencyMS() <= 0 {
		t.Error("zero latency")
	}
}

func TestScalingCaveat(t *testing.T) {
	// §V-A: "the energy efficiency of deeper networks like ResNet18 does
	// not scale as effectively" and accuracy is more approximation
	// sensitive. Energy per MAC and approximation error must both be
	// worse for ResNet-18 than VGG-11.
	vgg := model.VGG11(model.Config{ActBits: 4, Sparsity: 0.85, Seed: 1})
	res := model.ResNet18(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	rv := Analyze(vgg, Default())
	rr := Analyze(res, Default())
	if rr.ApproxSigma <= rv.ApproxSigma {
		t.Errorf("approximation error must grow with depth: resnet %.3f vs vgg %.3f",
			rr.ApproxSigma, rv.ApproxSigma)
	}
}

func TestForwardHashPerturbsButPreservesScale(t *testing.T) {
	net := model.TinyCNN(model.Config{ActBits: 8, Sparsity: 0.5, Seed: 4})
	rng := rand.New(rand.NewPCG(9, 9))
	var cal []*tensor.Float
	for j := 0; j < 3; j++ {
		c := tensor.NewFloat(net.InputShape)
		for i := range c.Data {
			c.Data[i] = float32(math.Abs(rng.NormFloat64()))
		}
		cal = append(cal, c)
	}
	if err := model.Calibrate(net, cal); err != nil {
		t.Fatal(err)
	}
	in := tensor.NewFloat(net.InputShape)
	for i := range in.Data {
		in.Data[i] = float32(math.Abs(rng.NormFloat64()))
	}
	ref, err := net.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := ForwardHash(net, in, Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	var refMax, hashMax int32
	for i, v := range ref.Logits().Data {
		if hash.Logits().Data[i] != v {
			same = false
		}
		if a := abs32(v); a > refMax {
			refMax = a
		}
		if a := abs32(hash.Logits().Data[i]); a > hashMax {
			hashMax = a
		}
	}
	if same {
		t.Error("hash approximation left logits bit-exact")
	}
	if refMax > 0 && (hashMax > 4*refMax) {
		t.Errorf("hash logits magnitude %d vs reference %d — noise model unstable", hashMax, refMax)
	}
}

func TestForwardHashSeeded(t *testing.T) {
	net := model.TinyCNN(model.Config{ActBits: 8, Sparsity: 0.5, Seed: 5})
	in := tensor.NewFloat(net.InputShape)
	for i := range in.Data {
		in.Data[i] = float32(i%13) * 0.15
	}
	if err := model.Calibrate(net, []*tensor.Float{in}); err != nil {
		t.Fatal(err)
	}
	a, _ := ForwardHash(net, in, Default(), 7)
	b, _ := ForwardHash(net, in, Default(), 7)
	c, _ := ForwardHash(net, in, Default(), 8)
	if !a.Logits().Equal(b.Logits()) {
		t.Error("same seed must reproduce")
	}
	diff := false
	for i := range a.Logits().Data {
		if a.Logits().Data[i] != c.Logits().Data[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should perturb differently")
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestLongerHashReducesError(t *testing.T) {
	short := Default()
	short.HashLen = 16
	long := Default()
	long.HashLen = 256
	net := model.VGG11(model.Config{ActBits: 4, Sparsity: 0.85, Seed: 1})
	rs := Analyze(net, short)
	rl := Analyze(net, long)
	if rl.ApproxSigma >= rs.ApproxSigma {
		t.Error("longer hashes must reduce approximation error")
	}
	if rl.EnergyPJ <= rs.EnergyPJ {
		t.Error("longer hashes must cost more energy")
	}
}
