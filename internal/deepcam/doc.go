// Package deepcam models the DeepCAM baseline [4] of Table II: a fully
// CAM-based inference accelerator that approximates dot products by
// hashing weights and activations into binary signatures and measuring
// match-line discharge timing (a Hamming-distance readout) on large
// (512×1024) CAM arrays with variable hash lengths.
//
// The paper compares against DeepCAM only at whole-network granularity and
// notes two caveats it reproduces here: (a) extremely low energy on small
// VGG-style networks, and (b) poor scaling — both accuracy and energy
// efficiency — on deeper networks like ResNet-18, because the
// random-projection approximation error compounds with depth and larger
// fan-ins demand longer hashes.
package deepcam
