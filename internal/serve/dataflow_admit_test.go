package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/verify"
	"rtmap/internal/workload"
)

// A model the dataflow verifier refutes must never be admitted: HTTP
// 400 with the located diagnostics, no resident entry, and the failure
// counted on /metrics as rtmap_dataflow_verify_failures_total.
func TestAdmitRejectsDataflowFailure(t *testing.T) {
	s, ts := testServer(t, Options{MaxBatch: 2, Window: time.Millisecond})
	planted := verify.Diagnostic{
		Model: "tinycnn", Layer: 2, LayerName: "q1", Strip: -1, Tile: -1,
		Op: -1, Invariant: "dataflow-overflow", Detail: "injected for test",
	}
	s.reg.dataflowVerify = func(*core.Compiled) (bool, error) {
		return false, &verify.Error{Diags: []verify.Diagnostic{planted}}
	}

	sh, _ := ZooShape("tinycnn")
	body, _ := json.Marshal(InferRequest{Model: "tinycnn", Inputs: workload.InputData(sh, 1, 3)})
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "verifying") {
		t.Fatalf("error %q does not mention verification", er.Error)
	}
	if len(er.Diagnostics) != 1 || er.Diagnostics[0] != planted {
		t.Fatalf("diagnostics %+v, want the planted one", er.Diagnostics)
	}
	if n := s.reg.Len(); n != 0 {
		t.Fatalf("%d resident entries after a rejected admission, want 0", n)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mb), "rtmap_dataflow_verify_failures_total 1") {
		t.Fatalf("/metrics missing rtmap_dataflow_verify_failures_total 1:\n%s", mb)
	}
}

// The first admission of an artifact pays the full dataflow
// verification and persists a certificate; a later admission of the
// identical artifact (here: a second server sharing the artifact cache)
// trusts the stored certificate instead of re-verifying. The cache's
// own hit/miss counters are the proof that verification was skipped.
func TestAdmitCertificateHitSkipsReverification(t *testing.T) {
	cache := core.NewCache()
	opts := Options{MaxBatch: 2, Window: time.Millisecond, Cache: cache}

	_, ts1 := testServer(t, opts)
	sh, _ := ZooShape("tinycnn")
	req := InferRequest{Model: "tinycnn", Inputs: workload.InputData(sh, 1, 3)}
	if _, resp := postInfer(t, ts1.URL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	if st := cache.Stats(); st.CertMisses != 1 || st.CertHits != 0 {
		t.Fatalf("after first admission: %d cert misses, %d hits, want 1/0", st.CertMisses, st.CertHits)
	}
	mb := getMetrics(t, ts1.URL)
	if !strings.Contains(mb, "rtmap_certificate_misses_total 1") {
		t.Fatalf("first server /metrics missing rtmap_certificate_misses_total 1:\n%s", mb)
	}

	_, ts2 := testServer(t, opts)
	if _, resp := postInfer(t, ts2.URL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	st := cache.Stats()
	if st.CertHits != 1 {
		t.Fatalf("after re-admission: %d cert hits, want 1 (re-verified instead of trusting the certificate)", st.CertHits)
	}
	if st.CertMisses != 1 {
		t.Fatalf("after re-admission: %d cert misses, want still 1", st.CertMisses)
	}
	mb = getMetrics(t, ts2.URL)
	if !strings.Contains(mb, "rtmap_certificate_hits_total 1") {
		t.Fatalf("second server /metrics missing rtmap_certificate_hits_total 1:\n%s", mb)
	}
	if !strings.Contains(mb, "rtmap_certificate_misses_total 0") {
		t.Fatalf("second server /metrics missing rtmap_certificate_misses_total 0:\n%s", mb)
	}
}

// getMetrics fetches the /metrics exposition body.
func getMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
