package serve

import (
	"errors"
	"fmt"
	"strconv"
	"time"
)

// errNoReplica reports a batch that found no live replica (or, for
// unpinned models, no live device) to run on. The HTTP layer maps it to
// 503: the model is resident but its capacity is gone.
var errNoReplica = errors.New("serve: no live replica for model")

// errExpired reports an item cancelled because its deadline passed
// before execution (in the formation queue, on a device queue, or
// across a failover detour). The HTTP layer maps it to 503 with kind
// "expired": the server was too slow for the request's budget, and the
// work was shed rather than executed late.
var errExpired = errors.New("serve: deadline expired before execution")

// maxFailoverAttempts bounds how many device failures one batch may
// survive before its items fail: a batch is requeued at most this many
// times.
const maxFailoverAttempts = 3

// FailDevice marks a fleet device dead, simulating a device loss. The
// device's goroutine stays up to drain its queue: every batch queued or
// arriving on the dead device — including sharded batches mid-pipeline —
// is requeued onto a surviving replica instead of executing, so no
// admitted work is lost as long as a live replica remains. (The one
// batch already executing at the failure instant completes on the dead
// device; the mark is observed at each dequeue.) Re-execution is
// deterministic, so failover preserves bit-exact results. Failing an
// already-dead device is a no-op.
func (f *Fleet) FailDevice(id int) error {
	f.mu.Lock()
	if id < 0 || id >= len(f.devices) {
		f.mu.Unlock()
		return fmt.Errorf("serve: no device %d in a fleet of %d", id, len(f.devices))
	}
	already := f.devices[id].dead
	f.devices[id].dead = true
	f.mu.Unlock()
	if !already && f.metrics != nil {
		f.metrics.ObserveDeviceFailure()
	}
	return nil
}

// requeue re-dispatches a batch that reached a dead device. Sharded
// batches restart from stage 0 on the new replica: partial pipeline state
// is discarded and recomputed (deterministically, so logits stay
// bit-exact), and items that already received a result are skipped via
// apBatch.done. The pending bump for the new dispatch lands before the
// dead device retires the current receive, so a drain never races past a
// requeue in flight; the send runs off this goroutine so the dead device
// keeps draining even when the target queue is full.
func (f *Fleet) requeue(from *device, b *apBatch) {
	now := time.Now()
	b.stage, b.runs, b.path = 0, nil, nil
	b.simNS, b.simPJ, b.execNS = 0, 0, 0
	b.hop = time.Time{}
	b.attempts++
	if b.attempts > maxFailoverAttempts {
		fail(b, fmt.Errorf("serve: batch lost device %d and exhausted %d failover attempts",
			from.id, maxFailoverAttempts))
		return
	}
	// Deadlines don't survive the detour for free: items that expired
	// while the batch sat on the dead device's queue are cancelled here,
	// never re-executed. A batch with nothing left alive retires.
	if f.expireDue(b, now, "on failover from device "+strconv.Itoa(from.id)) == 0 {
		return
	}
	// A rescale may have replaced the entry's placement while this batch
	// was queued; re-read it so the retry lands on current replicas.
	b.pl = b.e.placed()
	f.mu.Lock()
	d, ok := f.placeLocked(b)
	if !ok {
		f.mu.Unlock()
		fail(b, errNoReplica)
		return
	}
	d.queued++
	f.pending++
	f.mu.Unlock()
	if f.metrics != nil {
		f.metrics.ObserveRequeue()
	}
	// Cold path: the batch just lost its device, so span formatting cost
	// is irrelevant. Device records the DEAD device the batch bounced
	// off; the new placement shows up in the retry's queue/stage spans.
	for i, it := range b.items {
		if !b.done[i] && b.firstTraced(i) {
			f.itemSpan(it, b, "requeue", from.id, -1, now, 0,
				"attempt "+strconv.Itoa(b.attempts))
		}
	}
	go func() { d.ch <- b }()
}
