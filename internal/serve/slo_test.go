package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"rtmap/internal/dispatch"
	"rtmap/internal/sim"
	"rtmap/internal/workload"
)

// TestFailoverMixedSLO is the race between the fault layer and the SLO
// layer: a batch with mixed deadline classes queued on a device that
// dies. Live items must requeue onto the surviving replica and stay
// bit-exact, keeping their trace identity across the detour; the item
// whose deadline passed on the dead device's queue must be cancelled
// with errExpired — dropped, never re-executed. Run under -race in CI.
func TestFailoverMixedSLO(t *testing.T) {
	s := New(Options{Devices: 2, Replicas: 2, MaxBatch: 4, Window: time.Millisecond, Logf: t.Logf})
	defer func() {
		if err := s.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	e, err := s.Registry().Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadDev := e.placed().replicas[0].devs[0]
	if err := s.FailDevice(deadDev); err != nil {
		t.Fatal(err)
	}

	// Three classes, three fates: an interactive item with headroom and a
	// bulk item with no deadline survive the failover; the standard item's
	// deadline already passed while "queued" on the dead device.
	sh, _ := ZooShape("tinycnn")
	ins := workload.Inputs(sh, 3, 23)
	now := time.Now()
	items := []*item{
		{in: ins[0], enq: now, res: make(chan itemResult, 1),
			class: dispatch.ClassInteractive, deadline: now.Add(time.Hour),
			trace: "trace-live", bitExact: true},
		{in: ins[1], enq: now, res: make(chan itemResult, 1),
			class: dispatch.ClassStandard, deadline: now.Add(-time.Millisecond),
			trace: "trace-dead"},
		{in: ins[2], enq: now, res: make(chan itemResult, 1),
			class: dispatch.ClassBulk},
	}
	b := newAPBatch(e, items)
	f := s.fleet
	f.mu.Lock()
	d := f.devices[deadDev]
	d.queued++
	f.pending++
	f.mu.Unlock()
	d.ch <- b

	comp := compiledRef(t, "tinycnn")
	for i, it := range items {
		res := <-it.res
		if i == 1 {
			if res.err == nil {
				t.Fatal("expired item re-executed across failover; want errExpired")
			}
			if res.err != errExpired {
				t.Fatalf("expired item failed with %v, want errExpired", res.err)
			}
			continue
		}
		if res.err != nil {
			t.Fatalf("live item %d failed across failover: %v", i, res.err)
		}
		if res.info.Requeues != 1 {
			t.Errorf("live item %d: %d requeues recorded, want 1", i, res.info.Requeues)
		}
		if res.info.Device == deadDev {
			t.Errorf("live item %d executed on the dead device %d", i, deadDev)
		}
		tr, err := sim.ForwardAP(comp, it.in)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Logits().Data
		for j := range want {
			if res.logits[j] != want[j] {
				t.Fatalf("live item %d logit %d: failover served %d, RunFunctional %d",
					i, j, res.logits[j], want[j])
			}
		}
	}

	// Trace identity survives the detour: the surviving item's requeue
	// span and the cancelled item's expired span each carry the trace ID
	// the request arrived with.
	spans := map[string][]string{}
	for _, sp := range s.Tracer().Snapshot() {
		spans[sp.TraceID] = append(spans[sp.TraceID], sp.Name)
	}
	if !containsString(spans["trace-live"], "requeue") {
		t.Errorf("surviving item's trace %v lost its requeue span", spans["trace-live"])
	}
	if !containsString(spans["trace-live"], "exec") {
		t.Errorf("surviving item's trace %v never executed", spans["trace-live"])
	}
	if !containsString(spans["trace-dead"], "expired") {
		t.Errorf("cancelled item's trace %v has no expired span", spans["trace-dead"])
	}
	if containsString(spans["trace-dead"], "exec") {
		t.Errorf("cancelled item's trace %v shows execution after expiry", spans["trace-dead"])
	}
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// FuzzInferAdmission is the robustness gate for the SLO admission
// surface: arbitrary class/deadline header combinations must never
// panic the server and must always classify — HTTP 200, 400, 429, or
// 503, with every non-200 carrying a structured error body. CI runs
// the seed corpus as a deterministic smoke test (go test -run
// FuzzInferAdmission); open-ended fuzzing stays a local tool
// (go test -fuzz FuzzInferAdmission).
func FuzzInferAdmission(f *testing.F) {
	s := New(Options{Devices: 1, MaxBatch: 2, Window: time.Millisecond,
		MaxQueueDelay: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			f.Errorf("shutdown: %v", err)
		}
	})
	sh, _ := ZooShape("tinycnn")
	in := workload.InputData(sh, 1, 7)
	body, err := json.Marshal(&InferRequest{Model: "tinycnn", Inputs: in})
	if err != nil {
		f.Fatal(err)
	}

	// Seeds: each pair is a distinct admission class — valid combos,
	// unknown classes, malformed/extreme/degenerate deadlines.
	for _, seed := range [][2]string{
		{"", ""},                    // pre-SLO request shape
		{"interactive", "50"},       // canonical tight-deadline combo
		{"standard", "200"},         //
		{"bulk", "0"},               // explicit "no deadline"
		{"batch", "10"},             // unknown class name
		{"INTERACTIVE", "50"},       // case sensitivity
		{"interactive", "-5"},       // negative budget
		{"interactive", "NaN"},      // non-finite parses as float
		{"bulk", "Inf"},             //
		{"", "abc"},                 // unparsable deadline
		{"interactive", "0.0001"},   // budget below any feasible service time
		{"bulk", "1e-300"},          // denormal budget
		{"standard", "1e300"},       // overflow: must clamp, not wrap negative
		{"standard", "86400000000"}, // far future
		{"interactive", "1.5e2"},    // scientific notation, valid
		{"bulk", " 50"},             // leading whitespace
	} {
		f.Add(seed[0], seed[1])
	}

	f.Fuzz(func(t *testing.T, class, deadline string) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if class != "" {
			req.Header.Set(ClassHeader, class)
		}
		if deadline != "" {
			req.Header.Set(DeadlineHeader, deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return
		case http.StatusBadRequest, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("class=%q deadline=%q: HTTP %d, want 200/400/429/503", class, deadline, resp.StatusCode)
		}
		var eresp errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
			t.Fatalf("class=%q deadline=%q: HTTP %d with unparsable error body: %v",
				class, deadline, resp.StatusCode, err)
		}
		if eresp.Error == "" || eresp.Kind == "" {
			t.Fatalf("class=%q deadline=%q: HTTP %d error body lacks classification: %+v",
				class, deadline, resp.StatusCode, eresp)
		}
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Fatalf("class=%q deadline=%q: 429 without Retry-After", class, deadline)
		}
	})
}

// TestSLOAccountingAudit checks the conservation law of the SLO ledger
// against an independent client-side tally: every submitted request
// lands in exactly one of accepted/shed/expired/failed, the per-class
// /metrics counters match the client's own counts exactly, and the
// derived submitted total equals their sum. Any double- or
// missed-count shows up as an off-by-one here.
func TestSLOAccountingAudit(t *testing.T) {
	// One slow device and a microscopic queue-delay bound: a concurrent
	// burst must split between accepted, shed, and expired outcomes.
	_, ts := testServer(t, Options{Devices: 1, MaxBatch: 2, Window: time.Millisecond,
		MaxQueueDelay: 3 * time.Millisecond})
	sh, _ := ZooShape("tinycnn")
	in := workload.InputData(sh, 1, 9)
	body, err := json.Marshal(&InferRequest{Model: "tinycnn", Inputs: in})
	if err != nil {
		t.Fatal(err)
	}

	type probe struct {
		class    string // header value; "" = standard by default
		deadline string // header value; "" = none
	}
	// Warm the model first (counts toward standard/accepted like any
	// other request — the ledger has no warm-up exemption).
	probes := []probe{{"", ""}}
	for i := 0; i < 20; i++ {
		probes = append(probes,
			probe{"interactive", "1"}, // nearly-impossible budget: shed or expired
			probe{"standard", ""},     // no deadline: accepted unless shed by load
			probe{"bulk", "30000"},    // generous budget
		)
	}

	// want[class][outcome] is the client-side ledger.
	want := map[string]map[string]int64{}
	tally := func(class, outcome string) {
		if class == "" {
			class = "standard"
		}
		if want[class] == nil {
			want[class] = map[string]int64{}
		}
		want[class][outcome]++
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	run := func(p probe) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if p.class != "" {
			req.Header.Set(ClassHeader, p.class)
		}
		if p.deadline != "" {
			req.Header.Set(DeadlineHeader, p.deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		outcome := "failed"
		switch resp.StatusCode {
		case http.StatusOK:
			outcome = "accepted"
		case http.StatusTooManyRequests:
			outcome = "shed"
		case http.StatusServiceUnavailable:
			var eresp errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
				t.Errorf("503 with unparsable body: %v", err)
				return
			}
			if eresp.Kind == "expired" {
				outcome = "expired"
			}
		}
		mu.Lock()
		tally(p.class, outcome)
		mu.Unlock()
	}
	run(probes[0]) // warm-up completes before the burst
	for _, p := range probes[1:] {
		wg.Add(1)
		go func(p probe) {
			defer wg.Done()
			run(p)
		}(p)
	}
	wg.Wait()

	// Scrape the ledger. Every handler observes its outcome before
	// writing the response, so once all responses are read the counters
	// are settled.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	resp.Body.Close()

	got := map[string]map[string]int64{}
	submitted := map[string]int64{}
	reqRE := regexp.MustCompile(`rtmap_slo_requests_total\{class="([^"]+)",outcome="([^"]+)"\} (\d+)`)
	subRE := regexp.MustCompile(`rtmap_slo_submitted_total\{class="([^"]+)"\} (\d+)`)
	for _, m := range reqRE.FindAllStringSubmatch(metrics, -1) {
		v, _ := strconv.ParseInt(m[3], 10, 64)
		if got[m[1]] == nil {
			got[m[1]] = map[string]int64{}
		}
		got[m[1]][m[2]] = v
	}
	for _, m := range subRE.FindAllStringSubmatch(metrics, -1) {
		submitted[m[1]], _ = strconv.ParseInt(m[2], 10, 64)
	}

	var clientTotal, serverSubmitted int64
	for _, class := range []string{"interactive", "standard", "bulk"} {
		var classSum int64
		for _, outcome := range []string{"accepted", "shed", "expired", "failed"} {
			w := want[class][outcome]
			g := got[class][outcome]
			if g != w {
				t.Errorf("%s/%s: server counted %d, client counted %d", class, outcome, g, w)
			}
			classSum += g
			clientTotal += w
		}
		if submitted[class] != classSum {
			t.Errorf("%s: submitted %d != outcome sum %d (conservation violated)",
				class, submitted[class], classSum)
		}
		serverSubmitted += submitted[class]
	}
	if serverSubmitted != clientTotal {
		t.Errorf("server submitted %d requests total, client sent %d", serverSubmitted, clientTotal)
	}
	if clientTotal != int64(len(probes)) {
		t.Fatalf("client ledger recorded %d probes, sent %d (test bug)", clientTotal, len(probes))
	}
	// The audit needs contention to mean anything: the burst must not
	// have collapsed into a single outcome.
	outcomes := 0
	for _, class := range got {
		for _, n := range class {
			if n > 0 {
				outcomes++
			}
		}
	}
	if outcomes < 2 {
		t.Logf("metrics:\n%s", metrics)
		t.Errorf("burst produced %d distinct outcome cells; want >= 2 for a meaningful audit", outcomes)
	}
}
