package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/dispatch"
	"rtmap/internal/workload"
)

// Rescale publishes a fresh placement while admissions and in-flight
// Submits are reading the old one. This test races all three under the
// race detector: workers pump items through one entry's batcher,
// admitters pull fresh entries in and out of the registry (including
// re-admissions of the entry being rescaled), and a rescaler flips the
// entry's replica/stage config every few hundred microseconds. The
// invariants: no data race, no panic, and every submitted item gets an
// answer — in-flight batches finish on the placement they dispatched
// with, so a mid-flight flip never strands or corrupts them.
func TestRescaleRacesAdmitsAndSubmits(t *testing.T) {
	fleet := NewFleet(4, 64, nil)
	t.Cleanup(fleet.Close)
	reg := NewRegistry(core.DefaultConfig(), 3, fleet, BatchOptions{MaxBatch: 2, Window: time.Millisecond}, 0, 1)
	t.Cleanup(reg.Close)

	spec := Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1}
	e, err := reg.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The admit churn below legitimately evicts this entry (LRU); every
	// participant re-Gets through cur and treats errClosed as the
	// eviction signal, exactly like the HTTP handler's retry contract.
	var cur atomic.Pointer[entry]
	cur.Store(e)
	readmit := func() (*entry, error) {
		ne, err := reg.Get(spec)
		if err != nil {
			return nil, err
		}
		cur.Store(ne)
		return ne, nil
	}

	sh, _ := ZooShape("tinycnn")
	inputs := workload.Inputs(sh, 8, 5)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Submitters: closed-loop items through the entry's batcher.
	var served int64
	var servedMu sync.Mutex
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				it := &item{in: inputs[(w+i)%len(inputs)], enq: time.Now(), res: make(chan itemResult, 1)}
				if err := cur.Load().batcher.submit(it); err != nil {
					if errors.Is(err, errClosed) {
						if _, err := readmit(); err != nil {
							t.Errorf("re-admit: %v", err)
							return
						}
						continue
					}
					t.Errorf("submit: %v", err)
					return
				}
				res := <-it.res
				if res.err != nil {
					if errors.Is(res.err, errClosed) {
						continue // evicted with the item queued: clean refusal
					}
					t.Errorf("item failed mid-rescale: %v", res.err)
					return
				}
				servedMu.Lock()
				served++
				servedMu.Unlock()
			}
		}(w)
	}

	// Admitters: churn other entries through the registry (evictions
	// included — maxModels is 3) and keep re-Get-ing the rescaled spec.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			specs := []Spec{
				spec,
				{Model: "tinyresnet", ActBits: 4, Sparsity: 0.8, Seed: 1},
				{Model: "tinycnn", ActBits: 2, Sparsity: 0.8, Seed: uint64(2 + w)},
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := reg.Get(specs[i%len(specs)]); err != nil {
					t.Errorf("admit: %v", err)
					return
				}
			}
		}(w)
	}

	// Rescaler: flip the entry between 1 and 2 replicas, and through a
	// 2-stage pipeline, while everything above is running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		configs := []dispatch.Config{
			{Replicas: 1, Stages: 1},
			{Replicas: 2, Stages: 1},
			{Replicas: 1, Stages: 2},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := reg.Rescale(cur.Load(), configs[i%len(configs)]); err != nil {
				t.Errorf("rescale: %v", err)
				return
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if served == 0 {
		t.Fatal("no item was served during the race window")
	}
	t.Logf("served %d items across continuous rescales", served)
}
