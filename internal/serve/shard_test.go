package serve

import (
	"net/http"
	"testing"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/workload"
)

// Sharded serving is only worth having if it stays bit-exact: logits
// streamed through the stage pipeline must equal the single-device
// RunFunctional path, in both execution modes, and the batch accounting
// must show the batch actually traversed distinct pinned devices.
func TestShardedInferBitExact(t *testing.T) {
	_, ts := testServer(t, Options{Devices: 3, ShardStages: 3, MaxBatch: 4, Window: 5 * time.Millisecond})

	net := model.TinyResNet(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	comp, err := core.Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	inputs := workload.Inputs(net.InputShape, n, 9)

	req := InferRequest{Model: "tinyresnet", BitExact: true}
	for _, in := range inputs {
		req.Inputs = append(req.Inputs, in.Data)
	}
	out, resp := postInfer(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	for i, in := range inputs {
		tr, err := sim.ForwardAP(comp, in)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Logits()
		got := out.Results[i].Logits
		if len(got) != len(want.Data) {
			t.Fatalf("input %d: %d logits, want %d", i, len(got), len(want.Data))
		}
		for j := range got {
			if got[j] != want.Data[j] {
				t.Fatalf("input %d logit %d: sharded serve %d, RunFunctional %d", i, j, got[j], want.Data[j])
			}
		}
		b := out.Results[i].Batch
		if b.Stages != 3 {
			t.Fatalf("input %d: %d stages, want 3", i, b.Stages)
		}
		if len(b.Path) != 3 {
			t.Fatalf("input %d: device path %v, want 3 hops", i, b.Path)
		}
		seen := map[int]bool{}
		for _, d := range b.Path {
			if seen[d] {
				t.Fatalf("input %d: device %d repeated in path %v (stages must pin to distinct devices)", i, d, b.Path)
			}
			seen[d] = true
		}
		if b.SimLatencyNS <= 0 || b.SimEnergyPJ <= 0 {
			t.Fatalf("input %d: implausible pipeline pricing %+v", i, b)
		}
	}

	// Reference mode through the same pipeline serves identical logits.
	req.BitExact = false
	ref, resp := postInfer(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	for i := range ref.Results {
		for j, v := range ref.Results[i].Logits {
			if v != out.Results[i].Logits[j] {
				t.Fatalf("input %d logit %d: reference %d != bit-exact %d", i, j, v, out.Results[i].Logits[j])
			}
		}
	}
}

// ShardStages clamps to the fleet size: a single-device fleet falls back
// to whole-model dispatch (no stages reported), and /v1/models reports
// the pipeline layout of sharded residents.
func TestShardStagesClampAndModelListing(t *testing.T) {
	_, ts1 := testServer(t, Options{Devices: 1, ShardStages: 4})
	sh, _ := ZooShape("tinycnn")
	in := workload.InputData(sh, 1, 3)
	out, resp := postInfer(t, ts1.URL, InferRequest{Model: "tinycnn", Inputs: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if b := out.Results[0].Batch; b.Stages != 0 || len(b.Path) != 0 {
		t.Fatalf("single-device fleet must not shard, got %+v", b)
	}

	srv, ts2 := testServer(t, Options{Devices: 4, ShardStages: 2})
	if _, resp = postInfer(t, ts2.URL, InferRequest{Model: "tinycnn", Inputs: in}); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	loaded := srv.Registry().Loaded()
	if len(loaded) != 1 {
		t.Fatalf("%d resident models, want 1", len(loaded))
	}
	li := loaded[0]
	if li.Stages != 2 || len(li.StageDevices) != 2 || li.BottleneckNS <= 0 {
		t.Fatalf("loaded info %+v, want 2 pinned stages with a bottleneck price", li)
	}
	if li.StageDevices[0] == li.StageDevices[1] {
		t.Fatalf("stages pinned to the same device: %v", li.StageDevices)
	}
}

// A drain must retire batches that are mid-pipeline (between stages), not
// orphan them: every submitted item gets a result before Shutdown returns.
func TestShardedDrainCompletesInFlight(t *testing.T) {
	s := New(Options{Devices: 3, ShardStages: 3, MaxBatch: 2, Window: time.Millisecond,
		Logf: t.Logf})
	spec := Spec{Model: "tinyresnet", ActBits: 4, Sparsity: 0.8, Seed: 1}
	e, err := s.Registry().Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := ZooShape("tinyresnet")
	ins := workload.Inputs(sh, 6, 21)
	items := make([]*item, len(ins))
	for i, in := range ins {
		items[i] = &item{in: in, enq: time.Now(), res: make(chan itemResult, 1)}
		if err := e.batcher.submit(items[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		select {
		case res := <-it.res:
			if res.err != nil {
				t.Errorf("item %d failed during drain: %v", i, res.err)
			} else if res.info.Stages != 3 {
				t.Errorf("item %d: %d stages, want 3", i, res.info.Stages)
			}
		default:
			t.Fatalf("item %d has no result after drain", i)
		}
	}
}
