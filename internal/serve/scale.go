package serve

import (
	"time"

	"rtmap/internal/dispatch"
	"rtmap/internal/sim"
)

// scalerState is the autoscale loop's per-entry bookkeeping: the
// hysteresis scaler plus the arrival-counter baseline its rate signal
// is differentiated from.
type scalerState struct {
	sc           *dispatch.Scaler
	lastArrivals int64
	lastTick     time.Time
}

// scaleLoop is the autoscaler: every AutoscaleInterval it derives each
// resident model's arrival rate and queue-delay signal, asks its
// dispatch.Scaler for a configuration (candidates priced by the
// simulator's replicated-batch and pipeline cost models, calibrated
// against the measured per-item interval), and applies resizes through
// Registry.Rescale. Runs until Shutdown closes scaleStop.
func (s *Server) scaleLoop() {
	defer close(s.scaleDone)
	t := time.NewTicker(s.opts.AutoscaleInterval)
	defer t.Stop()
	states := map[*entry]*scalerState{}
	for {
		select {
		case <-s.scaleStop:
			return
		case now := <-t.C:
			live := map[*entry]bool{}
			for _, e := range s.reg.Entries() {
				live[e] = true
				s.scaleEntry(states, e, now)
			}
			for e := range states {
				if !live[e] {
					delete(states, e) // evicted entries drop their scaler
				}
			}
		}
	}
}

// scaleEntry runs one scaler tick for one model entry.
func (s *Server) scaleEntry(states map[*entry]*scalerState, e *entry, now time.Time) {
	st := states[e]
	if st == nil {
		// First sight: baseline the arrival counter; rates start next tick.
		states[e] = &scalerState{
			sc:           dispatch.NewScaler(dispatch.ScalerOptions{HoldTicks: 2, CooldownTicks: 3}, e.placed().config()),
			lastArrivals: e.batcher.arrivals.Load(),
			lastTick:     now,
		}
		return
	}
	arr := e.batcher.arrivals.Load()
	dt := now.Sub(st.lastTick).Seconds()
	if dt <= 0 {
		return
	}
	rate := float64(arr-st.lastArrivals) / dt
	st.lastArrivals, st.lastTick = arr, now

	depth := int(e.batcher.depth.Load())
	maxStages := s.opts.ShardStages
	if maxStages < 1 {
		maxStages = 1
	}
	if n := len(e.comp.Layers); maxStages > n {
		maxStages = n
	}
	prev := st.sc.Current()
	cfg, changed, reason := st.sc.Evaluate(dispatch.Signal{
		ArrivalPerSec: rate,
		QueueDepth:    depth,
		QueueDelay:    e.est.Estimate(depth),
		MaxDevices:    s.fleet.NumLive(),
		MaxStages:     maxStages,
		Throughput:    s.throughputModel(e),
	})
	if !changed {
		return
	}
	applied, err := s.reg.Rescale(e, cfg)
	if err != nil {
		s.opts.Logf("autoscale %s: %v -> %v failed: %v", e.key, prev, cfg, err)
		return
	}
	// The fleet may have clamped the ask; track what actually happened so
	// the scaler never re-asks for capacity that does not exist.
	st.sc.SetCurrent(applied)
	s.metrics.ObserveScale(applied.Devices() > prev.Devices())
	s.opts.Logf("autoscale %s: %v -> %v (%s)", e.key, prev, applied, reason)
}

// throughputModel prices candidate configurations for one entry in
// requests per second. The shape comes from the simulator — replicas
// divide the steady-state marginal interval (sim.AnalyzeReplicatedBatch),
// stages are bounded by the pipeline bottleneck (sim.AnalyzePipeline) —
// and the absolute scale is calibrated by the measured per-item interval
// of the current deployment, so the simulated ns axis never has to match
// wall time. Returns nil until a measurement exists: the scaler stays
// quiet rather than acting on an uncalibrated model.
func (s *Server) throughputModel(e *entry) func(dispatch.Config) float64 {
	per := e.est.PerItem()
	if per <= 0 {
		return nil
	}
	simTP := func(c dispatch.Config) float64 {
		if c.Stages <= 1 {
			rb := sim.AnalyzeReplicatedBatch(e.report, s.opts.MaxBatch, c.Replicas)
			if rb.SteadyNS <= 0 {
				return 0
			}
			return 1e9 / rb.SteadyNS
		}
		pp, err := e.pipePlanFor(c.Stages)
		if err != nil || pp.pipeline.BottleneckNS <= 0 {
			return 0
		}
		return float64(c.Replicas) * 1e9 / pp.pipeline.BottleneckNS
	}
	cur := simTP(e.placed().config())
	if cur <= 0 {
		return nil
	}
	// measured capacity of the current deployment, items/s
	measured := float64(time.Second) / float64(per)
	calib := measured / cur
	return func(c dispatch.Config) float64 { return simTP(c) * calib }
}
