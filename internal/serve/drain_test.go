package serve

import (
	"context"
	"strings"
	"testing"
	"time"
)

// A drain whose context expires must return promptly with the stranded
// count instead of waiting for the pipeline forever — the bound behind
// rtmap-serve's -drain-timeout guarantee that SIGTERM never hangs.
func TestFleetCloseCtxBoundedByContext(t *testing.T) {
	fleet := NewFleet(1, 16, nil)
	// Dilate the single device hard enough that the submitted batch is
	// still executing when the drain bound fires. tinycnn's simulated
	// batch latency is microseconds; 1e6 stretches it to seconds.
	fleet.WallScale = 1e6
	e := testEntry(t, fleet, BatchOptions{MaxBatch: 1})

	items := submitN(t, e, 1)
	e.batcher.close() // hand the batch to the fleet

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := fleet.CloseCtx(ctx)
	waited := time.Since(start)
	if err == nil {
		t.Fatal("CloseCtx returned nil with a batch in flight")
	}
	if !strings.Contains(err.Error(), "drain timed out") {
		t.Fatalf("CloseCtx error %q, want a drain-timeout report", err)
	}
	if waited > 2*time.Second {
		t.Fatalf("CloseCtx took %v, want ~the 100ms bound", waited)
	}
	// The stranded batch still retires (channels stay open past a timed-
	// out drain precisely so in-flight work can finish delivering).
	res := <-items[0].res
	if res.err != nil {
		t.Fatalf("stranded batch failed: %v", res.err)
	}
}

// An idle fleet drains immediately and a second close is a no-op.
func TestFleetCloseCtxIdempotent(t *testing.T) {
	fleet := NewFleet(2, 16, nil)
	if err := fleet.CloseCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fleet.CloseCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// Once Shutdown begins, new /v1/infer requests are refused with a clean
// retryable rejection (503 + Retry-After) rather than queued behind the
// drain — the router's failover relies on this to move traffic off a
// draining node without dropping anything.
func TestDrainingServerRejectsNewInfers(t *testing.T) {
	s, ts := testServer(t, Options{MaxBatch: 2, Window: time.Millisecond})

	// Prime: the server works before the drain.
	sh, _ := ZooShape("tinycnn")
	req := InferRequest{Model: "tinycnn", Inputs: [][]float32{make([]float32, sh.C*sh.H*sh.W)}}
	if _, resp := postInfer(t, ts.URL, req); resp.StatusCode != 200 {
		t.Fatalf("pre-drain infer: HTTP %d", resp.StatusCode)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, resp := postInfer(t, ts.URL, req)
	if resp.StatusCode != 503 {
		t.Fatalf("infer during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 is missing Retry-After")
	}
}
