package serve

import (
	"context"
	"testing"
	"time"

	"rtmap/internal/workload"
)

// makeItems builds n queued inference items over random inputs; every
// other item runs in bit-exact mode so one coalesced batch exercises
// both executor groups of the device loop.
func makeItems(t *testing.T, model string, n int, seed uint64) []*item {
	t.Helper()
	sh, ok := ZooShape(model)
	if !ok {
		t.Fatalf("no zoo shape for %s", model)
	}
	ins := workload.Inputs(sh, n, seed)
	items := make([]*item, n)
	for i, in := range ins {
		items[i] = &item{in: in, bitExact: i%2 == 0, enq: time.Now(), res: make(chan itemResult, 1)}
	}
	return items
}

// The device executor now hands whole batches to sim.ForwardAPBatch; a
// mixed bit-exact/reference batch of 8 must come back bit-identical to
// per-item RunFunctional (reference items produce the same logits by the
// software-accuracy property).
func TestBatchedExecBitExact(t *testing.T) {
	s := New(Options{Devices: 2, MaxBatch: 8, Window: time.Millisecond, Logf: t.Logf})
	defer func() {
		if err := s.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	e, err := s.Registry().Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	items := makeItems(t, "tinycnn", 8, 77)
	s.fleet.Submit(newAPBatch(e, items))
	assertBitExact(t, compiledRef(t, "tinycnn"), items)
}

// Same property across a failover requeue: a full batch queued on a dead
// device must fail over to the surviving replica and still deliver
// bit-exact logits through the batched engine.
func TestBatchedFailoverRequeueBitExact(t *testing.T) {
	s := New(Options{Devices: 2, Replicas: 2, MaxBatch: 8, Window: time.Millisecond, Logf: t.Logf})
	defer func() {
		if err := s.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	e, err := s.Registry().Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.placed().replicas) != 2 {
		t.Fatalf("%d replicas placed, want 2", len(e.placed().replicas))
	}
	deadDev := e.placed().replicas[0].devs[0]
	if err := s.FailDevice(deadDev); err != nil {
		t.Fatal(err)
	}
	items := makeItems(t, "tinycnn", 8, 78)
	b := newAPBatch(e, items)
	f := s.fleet
	f.mu.Lock()
	d := f.devices[deadDev]
	d.queued++
	f.pending++
	f.mu.Unlock()
	d.ch <- b

	assertBitExact(t, compiledRef(t, "tinycnn"), items)
}

// A sharded entry's batch advances stage by stage through StepBatch; an
// 8-item mixed-mode batch must stay bit-exact end to end.
func TestBatchedShardedExecBitExact(t *testing.T) {
	s := New(Options{Devices: 2, ShardStages: 2, MaxBatch: 8, Window: time.Millisecond, Logf: t.Logf})
	defer func() {
		if err := s.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	e, err := s.Registry().Get(Spec{Model: "tinyresnet", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.placed().shard == nil {
		t.Fatal("entry not sharded")
	}
	items := makeItems(t, "tinyresnet", 8, 79)
	s.fleet.Submit(newAPBatch(e, items))
	assertBitExact(t, compiledRef(t, "tinyresnet"), items)
}

// BenchmarkServeSubmit measures the fleet submit → batched execution →
// result delivery path on coalesced batches of 8 (the serving layer's
// steady-state unit of work).
func BenchmarkServeSubmit(b *testing.B) {
	s := New(Options{Devices: 1, MaxBatch: 8, Window: time.Millisecond})
	defer s.Shutdown(context.Background())
	e, err := s.Registry().Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sh, _ := ZooShape("tinycnn")
	ins := workload.Inputs(sh, 8, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := make([]*item, len(ins))
		for j, in := range ins {
			items[j] = &item{in: in, bitExact: true, enq: time.Now(), res: make(chan itemResult, 1)}
		}
		s.fleet.Submit(newAPBatch(e, items))
		for _, it := range items {
			if res := <-it.res; res.err != nil {
				b.Fatal(res.err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ins)), "ns/infer")
}
