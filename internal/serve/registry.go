package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/tensor"
)

// Spec identifies one model variant: a zoo entry plus the build
// parameters that change its weights or activation grid.
type Spec struct {
	Model    string
	ActBits  int
	Sparsity float64
	Seed     uint64
}

// Key is the canonical registry key of the spec.
func (s Spec) Key() string {
	return fmt.Sprintf("%s?bits=%d&sparsity=%g&seed=%d", s.Model, s.ActBits, s.Sparsity, s.Seed)
}

// zooEntry is one servable model architecture. Input shapes are recorded
// statically so /v1/models can report them without building weights.
type zooEntry struct {
	build func(model.Config) *model.Network
	shape tensor.Shape
}

// zoo lists the servable architectures (the paper's model zoo plus the
// small test networks).
var zoo = map[string]zooEntry{
	"tinycnn":    {model.TinyCNN, tensor.Shape{N: 1, C: 2, H: 8, W: 8}},
	"tinyresnet": {model.TinyResNet, tensor.Shape{N: 1, C: 3, H: 8, W: 8}},
	"vgg9":       {model.VGG9, tensor.Shape{N: 1, C: 3, H: 32, W: 32}},
	"vgg11":      {model.VGG11, tensor.Shape{N: 1, C: 3, H: 32, W: 32}},
	"resnet18":   {model.ResNet18, tensor.Shape{N: 1, C: 3, H: 224, W: 224}},
	"miniresnet18": {func(c model.Config) *model.Network { return model.MiniResNet18(c, 32, 32) },
		tensor.Shape{N: 1, C: 3, H: 32, W: 32}},
}

// ZooModels returns the servable architecture names, sorted.
func ZooModels() []string {
	out := make([]string, 0, len(zoo))
	for name := range zoo {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ZooShape returns the input shape of a zoo architecture.
func ZooShape(name string) (tensor.Shape, bool) {
	z, ok := zoo[name]
	return z.shape, ok
}

// entry is one resident registry slot: a model variant, its compiled
// artifact, the analytic per-inference report the batch cost model prices
// from, and the micro-batcher feeding the device fleet.
type entry struct {
	spec Spec
	key  string

	// Written once inside Registry.admit and read by Get callers through
	// the sync.Once happens-before edge. Loaded/evictLocked, which race
	// with an in-progress admit, read comp/report/batcher only under the
	// owning registry's mu (admit publishes them under the same lock).
	once   sync.Once
	net    *model.Network
	comp   *core.Compiled
	report *sim.Report
	err    error

	// Pipeline sharding (Registry.shardStages > 1 and a multi-device
	// fleet): the layer-range shard plan, its pipeline pricing, and the
	// fleet device each stage is pinned to. nil/empty for unsharded
	// entries.
	shard     *core.ShardPlan
	pipeline  *sim.PipelineReport
	stageDevs []int

	batcher *batcher

	// Guarded by the owning registry's mu.
	lastUsed int64
	evicted  bool
}

// Registry resolves Specs to compiled models. Compilation happens on
// demand (deduplicated per key by sync.Once) through the configured
// core.Config — with the shared artifact cache wired in, re-admitting an
// evicted model reuses its lowered layers. Resident entries beyond
// MaxModels are evicted least-recently-used; an evicted entry's batcher
// drains its queued work before shutting down, so in-flight requests
// complete.
type Registry struct {
	compile     core.Config
	maxModels   int
	fleet       *Fleet
	batch       BatchOptions
	shardStages int

	mu      sync.Mutex
	seq     int64
	entries map[string]*entry
	closed  bool
}

// BatchOptions are the micro-batcher knobs shared by every model entry.
type BatchOptions struct {
	MaxBatch int           // batch size cap (1 disables coalescing)
	Window   time.Duration // max wait for follow-up requests after the first
	Queue    int           // per-model pending-request queue capacity
}

// NewRegistry returns an empty registry. The compile config is forced to
// retain programs (bit-exact mode replays them). shardStages > 1 admits
// every model as a layer-range pipeline of that many stages (clamped to
// the fleet size and the model's layer count), each stage pinned to a
// fleet device; <= 1 keeps whole-model dispatch.
func NewRegistry(compile core.Config, maxModels int, fleet *Fleet, batch BatchOptions, shardStages int) *Registry {
	compile.KeepPrograms = true
	if maxModels <= 0 {
		maxModels = 4
	}
	return &Registry{
		compile:     compile,
		maxModels:   maxModels,
		fleet:       fleet,
		batch:       batch,
		shardStages: shardStages,
		entries:     map[string]*entry{},
	}
}

// Get resolves spec to a ready entry, compiling it on first use and
// bumping its LRU stamp. The compile itself runs outside the registry
// lock, so a slow model admission does not stall traffic to resident
// models.
func (r *Registry) Get(spec Spec) (*entry, error) {
	if _, ok := zoo[spec.Model]; !ok {
		return nil, fmt.Errorf("serve: unknown model %q (available: %v)", spec.Model, ZooModels())
	}
	key := spec.Key()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errClosed
	}
	e, ok := r.entries[key]
	if !ok {
		e = &entry{spec: spec, key: key}
		r.entries[key] = e
		r.evictLocked(e)
	}
	r.seq++
	e.lastUsed = r.seq
	r.mu.Unlock()

	e.once.Do(func() { r.admit(e) })
	if e.err != nil {
		r.mu.Lock()
		if r.entries[key] == e {
			delete(r.entries, key) // failed admissions don't occupy a slot
		}
		r.mu.Unlock()
		return nil, e.err
	}
	return e, nil
}

// admit builds and compiles the entry's network and attaches its batcher.
func (r *Registry) admit(e *entry) {
	cfg := model.Config{ActBits: e.spec.ActBits, Sparsity: e.spec.Sparsity, Seed: e.spec.Seed}
	net := zoo[e.spec.Model].build(cfg)
	comp, err := core.Compile(net, r.compile)
	if err != nil {
		e.err = fmt.Errorf("serve: compiling %s: %w", e.key, err)
		return
	}
	e.net = net
	e.comp = comp
	e.report = sim.Analyze(comp)
	if err := r.shardEntry(e); err != nil {
		e.err = fmt.Errorf("serve: sharding %s: %w", e.key, err)
		return
	}
	b := newBatcher(e, r.fleet, r.batch)

	// Publish the batcher under the lock (Loaded/evictLocked may be
	// looking at this entry concurrently). An eviction that raced with
	// this compile leaves the entry out of the map; close the batcher so
	// queued submits fail fast and callers retry into a fresh slot.
	r.mu.Lock()
	e.batcher = b
	evicted := e.evicted || r.closed
	r.mu.Unlock()
	if evicted {
		b.close()
	}
}

// shardEntry partitions a freshly compiled entry into pipeline stages
// when the registry runs in sharded mode. The stage count clamps to the
// fleet size (distinct devices keep the stage graph acyclic) and to the
// layer count; a clamp down to one stage leaves the entry on the plain
// whole-model dispatch path.
func (r *Registry) shardEntry(e *entry) error {
	k := r.shardStages
	if k > r.fleet.NumDevices() {
		k = r.fleet.NumDevices()
	}
	if k > len(e.comp.Layers) {
		k = len(e.comp.Layers)
	}
	if k <= 1 {
		return nil
	}
	costs := make([]float64, len(e.report.Layers))
	for i, lr := range e.report.Layers {
		costs[i] = lr.LatencyNS
	}
	sp, err := core.Partition(e.comp, k, costs)
	if err != nil {
		return err
	}
	pr, err := sim.AnalyzePipeline(e.comp, e.report, sp)
	if err != nil {
		return err
	}
	e.shard = sp
	e.pipeline = pr
	e.stageDevs = r.fleet.PinStages(len(sp.Stages))
	return nil
}

// evictLocked drops least-recently-used entries (never `keep`) until the
// registry fits maxModels. Called with r.mu held.
func (r *Registry) evictLocked(keep *entry) {
	for len(r.entries) > r.maxModels {
		var victim *entry
		for _, e := range r.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(r.entries, victim.key)
		victim.evicted = true
		if victim.batcher != nil {
			// Close off-lock: close drains the victim's queue, which can
			// block until its in-flight batches dispatch.
			go victim.batcher.close()
		}
	}
}

// LoadedInfo describes one resident model for /v1/models.
type LoadedInfo struct {
	Key      string  `json:"key"`
	Model    string  `json:"model"`
	ActBits  int     `json:"act_bits"`
	Sparsity float64 `json:"sparsity"`
	Seed     uint64  `json:"seed"`
	Arrays   int     `json:"arrays"`
	// PerInferNS is the analytic single-inference latency (ns) of the
	// model on the simulated device.
	PerInferNS float64 `json:"sim_latency_ns"`
	// Stages, StageDevices and BottleneckNS report pipeline sharding:
	// stage count, the device each stage is pinned to, and the simulated
	// steady-state inter-sample interval. Absent for unsharded models.
	Stages       int     `json:"stages,omitempty"`
	StageDevices []int   `json:"stage_devices,omitempty"`
	BottleneckNS float64 `json:"sim_bottleneck_ns,omitempty"`
}

// Loaded snapshots the resident entries, most recently used first. The
// compiled fields are read under r.mu: admit publishes the batcher under
// the same lock after writing them, so a non-nil batcher means comp and
// report are visible.
func (r *Registry) Loaded() []LoadedInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []LoadedInfo
	var used []int64
	for _, e := range r.entries {
		if e.batcher == nil { // still compiling
			continue
		}
		info := LoadedInfo{
			Key: e.key, Model: e.spec.Model, ActBits: e.spec.ActBits,
			Sparsity: e.spec.Sparsity, Seed: e.spec.Seed,
			Arrays: e.comp.PoolArrays, PerInferNS: e.report.TotalLatencyNS,
		}
		if e.shard != nil {
			info.Stages = len(e.shard.Stages)
			info.StageDevices = append([]int(nil), e.stageDevs...)
			info.BottleneckNS = e.pipeline.BottleneckNS
		}
		out = append(out, info)
		used = append(used, e.lastUsed)
	}
	sort.Sort(&byRecency{out, used})
	return out
}

// byRecency sorts LoadedInfo rows by descending lastUsed stamp.
type byRecency struct {
	info []LoadedInfo
	used []int64
}

func (s *byRecency) Len() int           { return len(s.info) }
func (s *byRecency) Less(i, j int) bool { return s.used[i] > s.used[j] }
func (s *byRecency) Swap(i, j int) {
	s.info[i], s.info[j] = s.info[j], s.info[i]
	s.used[i], s.used[j] = s.used[j], s.used[i]
}

// Len returns the number of resident entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Close marks the registry draining and closes every batcher, blocking
// until all queued work has been handed to the fleet. Batcher pointers
// are snapshotted under r.mu; an admission still compiling has a nil
// batcher here and self-closes when it observes r.closed.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	bs := make([]*batcher, 0, len(r.entries))
	for _, e := range r.entries {
		if e.batcher != nil {
			bs = append(bs, e.batcher)
		}
	}
	r.mu.Unlock()
	for _, b := range bs {
		b.close()
	}
}
