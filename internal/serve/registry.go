package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/dataflow"
	"rtmap/internal/dispatch"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/tensor"
)

// Spec identifies one model variant: a zoo entry plus the build
// parameters that change its weights or activation grid. For file-backed
// models the build parameters are recorded but inert — the weights and
// quantizers come from the file.
type Spec struct {
	Model    string
	ActBits  int
	Sparsity float64
	Seed     uint64
}

// Key is the canonical registry key of the spec.
func (s Spec) Key() string {
	return fmt.Sprintf("%s?bits=%d&sparsity=%g&seed=%d", s.Model, s.ActBits, s.Sparsity, s.Seed)
}

// zooEntry is one servable model architecture. Input shapes are recorded
// statically so /v1/models can report them without building weights.
type zooEntry struct {
	build func(model.Config) *model.Network
	shape tensor.Shape
}

// zoo lists the servable architectures (the paper's model zoo plus the
// small test networks).
var zoo = map[string]zooEntry{
	"tinycnn":    {model.TinyCNN, tensor.Shape{N: 1, C: 2, H: 8, W: 8}},
	"tinyresnet": {model.TinyResNet, tensor.Shape{N: 1, C: 3, H: 8, W: 8}},
	"vgg9":       {model.VGG9, tensor.Shape{N: 1, C: 3, H: 32, W: 32}},
	"vgg11":      {model.VGG11, tensor.Shape{N: 1, C: 3, H: 32, W: 32}},
	"resnet18":   {model.ResNet18, tensor.Shape{N: 1, C: 3, H: 224, W: 224}},
	"miniresnet18": {func(c model.Config) *model.Network { return model.MiniResNet18(c, 32, 32) },
		tensor.Shape{N: 1, C: 3, H: 32, W: 32}},
}

// ZooModels returns the servable architecture names, sorted.
func ZooModels() []string {
	out := make([]string, 0, len(zoo))
	for name := range zoo {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ZooShape returns the input shape of a zoo architecture.
func ZooShape(name string) (tensor.Shape, bool) {
	z, ok := zoo[name]
	return z.shape, ok
}

// badModelError marks an admission failure the client caused — a
// malformed model file, an invalid network definition — as opposed to an
// internal compiler fault. The HTTP layer maps it to 400.
type badModelError struct{ err error }

func (e *badModelError) Error() string { return e.err.Error() }
func (e *badModelError) Unwrap() error { return e.err }

// IsBadModel reports whether err stems from a client-supplied model
// definition (HTTP 400) rather than an internal failure (HTTP 500).
func IsBadModel(err error) bool {
	var bm *badModelError
	return errors.As(err, &bm)
}

// entry is one resident registry slot: a model variant, its compiled
// artifact, the analytic per-inference report the batch cost model prices
// from, and the micro-batcher feeding the device fleet.
type entry struct {
	spec Spec
	key  string

	// Written once inside Registry.admit and read by Get callers through
	// the sync.Once happens-before edge. Loaded/evictLocked, which race
	// with an in-progress admit, read comp/report/batcher only under the
	// owning registry's mu (admit publishes them under the same lock).
	once   sync.Once
	net    *model.Network
	comp   *core.Compiled
	report *sim.Report
	err    error

	// place is the entry's current fleet placement, published atomically
	// so the autoscaler can swap it under live traffic: a batch captures
	// the pointer at dispatch and keeps one consistent view (shard plan,
	// replicas, wear costs) for its whole flight, while failover re-reads
	// the current pointer so requeues land on post-rescale replicas.
	place atomic.Pointer[placement]

	// est tracks the measured per-item execution interval of this
	// entry's deployment (fed by the fleet after every batch). Admission
	// control prices queue delay from it; the autoscaler calibrates the
	// analytic cost model against it.
	est dispatch.DelayEstimator

	// layerWrites caches sim.LayerWrites(comp) so rescaling can rebuild
	// per-stage wear costs without re-deriving the endurance model.
	layerWrites []float64

	// pipes memoizes the layer partition and pipeline pricing per stage
	// count: the autoscaler flips between stage counts repeatedly and
	// core.Partition is quadratic in layers.
	pipeMu sync.Mutex
	pipes  map[int]*pipePlan

	batcher *batcher

	// Guarded by the owning registry's mu.
	lastUsed int64
	evicted  bool
}

// placement is one immutable snapshot of how an entry occupies the
// fleet: the pipeline shard plan and its pricing (nil for unsharded),
// the data-parallel replica placements (nil for unpinned whole-fleet
// dispatch), and the per-stage wear costs. Registry.Rescale builds a
// fresh placement and swaps the entry's pointer; the structs themselves
// are never mutated after publication.
type placement struct {
	shard       *core.ShardPlan
	pipeline    *sim.PipelineReport
	replicas    []*replica
	stageWrites []float64
}

// unplaced is the shared zero placement hand-built test entries (which
// never run admit) observe: unpinned, unsharded, zero wear.
var unplaced placement

// placed returns the entry's current placement, never nil.
func (e *entry) placed() *placement {
	if pl := e.place.Load(); pl != nil {
		return pl
	}
	return &unplaced
}

// stages returns the pipeline depth of the placement (1 when unsharded).
func (pl *placement) stages() int {
	if pl.shard != nil {
		return len(pl.shard.Stages)
	}
	return 1
}

// config reports the placement as a scaler configuration.
func (pl *placement) config() dispatch.Config {
	c := dispatch.Config{Replicas: 1, Stages: pl.stages()}
	if len(pl.replicas) > 0 {
		c.Replicas = len(pl.replicas)
	}
	return c
}

// writesPerSample returns the stage's per-sample write wear (stage 0
// for unsharded dispatch). Entries placed before the wear model was
// computed (hand-built test entries) report 0.
func (pl *placement) writesPerSample(stage int) float64 {
	if stage < 0 || stage >= len(pl.stageWrites) {
		return 0
	}
	return pl.stageWrites[stage]
}

// pipePlan is one memoized stage partition: the layer-range shard plan
// for a stage count plus its pipeline pricing.
type pipePlan struct {
	shard    *core.ShardPlan
	pipeline *sim.PipelineReport
}

// pipePlanFor returns the entry's memoized partition for k stages,
// computing it on first use. Requires a compiled entry (admit ran).
func (e *entry) pipePlanFor(k int) (*pipePlan, error) {
	e.pipeMu.Lock()
	defer e.pipeMu.Unlock()
	if pp, ok := e.pipes[k]; ok {
		return pp, nil
	}
	costs := make([]float64, len(e.report.Layers))
	for i, lr := range e.report.Layers {
		costs[i] = lr.LatencyNS
	}
	sp, err := core.Partition(e.comp, k, costs)
	if err != nil {
		return nil, err
	}
	pr, err := sim.AnalyzePipeline(e.comp, e.report, sp)
	if err != nil {
		return nil, err
	}
	pp := &pipePlan{shard: sp, pipeline: pr}
	if e.pipes == nil {
		e.pipes = map[int]*pipePlan{}
	}
	e.pipes[k] = pp
	return pp, nil
}

// Registry resolves Specs to compiled models. Compilation happens on
// demand (deduplicated per key by sync.Once) through the configured
// core.Config — with the shared artifact cache wired in, re-admitting an
// evicted model reuses its lowered layers. Resident entries beyond
// MaxModels are evicted least-recently-used; an evicted entry's batcher
// drains its queued work before shutting down, so in-flight requests
// complete.
type Registry struct {
	compile     core.Config
	maxModels   int
	fleet       *Fleet
	batch       BatchOptions
	shardStages int
	replicas    int

	// pinned forces every admission onto pinned replica placements even
	// at one replica and one stage (where dispatch would otherwise go
	// unpinned across the whole fleet). The autoscaler needs it: replica
	// scaling only means something when the baseline is a placement it
	// can grow. Set by serve.New when Options.Autoscale is on.
	pinned bool

	// files maps file-backed model names to their JSON paths (the zoo
	// extension). Decoding happens at admit time, so a malformed file
	// surfaces as a badModelError on the request that admits it, never a
	// crash.
	files map[string]string

	// planVerify statically audits every compiled artifact before it is
	// placed on the fleet; nil selects core.VerifyCompiled. A failing
	// plan is a badModelError (HTTP 400) and the model is never loaded.
	// Tests inject failing verifiers here.
	planVerify func(*core.Compiled) error
	// dataflowVerify runs the whole-artifact dataflow verifier over an
	// admitted artifact, returning whether a stored PlanCertificate was
	// trusted (hit) instead of re-verifying. nil selects
	// dataflow.VerifyOrCertify against the registry's compile cache, so
	// re-admitting an evicted model skips the verification pass
	// entirely. Tests inject failing or counting verifiers here.
	dataflowVerify func(*core.Compiled) (bool, error)
	// metrics, when non-nil, receives the verification-failure counter
	// (wired by serve.New; a bare Registry works without it).
	metrics *Metrics

	mu         sync.Mutex
	seq        int64
	entries    map[string]*entry
	fileShapes map[string]tensor.Shape // discovered on first successful admit
	closed     bool
}

// BatchOptions are the micro-batcher knobs shared by every model entry.
type BatchOptions struct {
	MaxBatch int           // batch size cap (1 disables coalescing)
	Window   time.Duration // max wait for follow-up requests after the first
	Queue    int           // per-model pending-request queue capacity
}

// NewRegistry returns an empty registry. The compile config is forced to
// retain programs (bit-exact mode replays them). shardStages > 1 admits
// every model as a layer-range pipeline of that many stages (clamped to
// the live fleet size and the model's layer count), each stage pinned to
// a fleet device; <= 1 keeps whole-model dispatch. replicas > 1 places
// that many independent copies of every model across the fleet (clamped
// to fleet capacity); batches balance across live replicas and fail over
// on device loss.
func NewRegistry(compile core.Config, maxModels int, fleet *Fleet, batch BatchOptions, shardStages, replicas int) *Registry {
	compile.KeepPrograms = true
	if maxModels <= 0 {
		maxModels = 4
	}
	if replicas < 1 {
		replicas = 1
	}
	return &Registry{
		compile:     compile,
		maxModels:   maxModels,
		fleet:       fleet,
		batch:       batch,
		shardStages: shardStages,
		replicas:    replicas,
		files:       map[string]string{},
		entries:     map[string]*entry{},
		fileShapes:  map[string]tensor.Shape{},
	}
}

// RegisterModelFile extends the servable zoo with a JSON model file
// (model.WriteJSON format). The file is decoded lazily at admission, so
// registration never fails — a malformed file fails the admitting
// request with a client error instead. Zoo names cannot be shadowed.
func (r *Registry) RegisterModelFile(name, path string) error {
	if _, ok := zoo[name]; ok {
		return fmt.Errorf("serve: model name %q shadows a built-in zoo entry", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.files[name] = path
	return nil
}

// Knows reports whether name is servable: a zoo architecture or a
// registered model file.
func (r *Registry) Knows(name string) bool {
	if _, ok := zoo[name]; ok {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.files[name]
	return ok
}

// servable lists every admissible model name: the zoo plus the
// registered file-backed models.
func (r *Registry) servable() []string {
	out := ZooModels()
	r.mu.Lock()
	for name := range r.files {
		out = append(out, name)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// FileModelInfo describes one registered file-backed model. Shape is the
// input shape discovered at the first successful admission (zero before).
type FileModelInfo struct {
	Name  string
	Path  string
	Shape tensor.Shape
}

// FileModels lists the registered file-backed models, sorted by name.
func (r *Registry) FileModels() []FileModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FileModelInfo, 0, len(r.files))
	for name, path := range r.files {
		out = append(out, FileModelInfo{Name: name, Path: path, Shape: r.fileShapes[name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get resolves spec to a ready entry, compiling it on first use and
// bumping its LRU stamp. The compile itself runs outside the registry
// lock, so a slow model admission does not stall traffic to resident
// models.
func (r *Registry) Get(spec Spec) (*entry, error) {
	if _, ok := zoo[spec.Model]; !ok {
		if !r.Knows(spec.Model) {
			return nil, fmt.Errorf("serve: unknown model %q (available: %v)", spec.Model, r.servable())
		}
		// File-backed weights are fixed, so the build parameters are
		// inert; normalize them to keep one file in one registry slot
		// regardless of what the request carried.
		spec.ActBits, spec.Sparsity, spec.Seed = 0, 0, 0
	}
	key := spec.Key()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errClosed
	}
	e, ok := r.entries[key]
	if !ok {
		e = &entry{spec: spec, key: key}
		r.entries[key] = e
		r.evictLocked(e)
	}
	r.seq++
	e.lastUsed = r.seq
	r.mu.Unlock()

	e.once.Do(func() { r.admit(e) })
	if e.err != nil {
		r.mu.Lock()
		if r.entries[key] == e {
			delete(r.entries, key) // failed admissions don't occupy a slot
		}
		r.mu.Unlock()
		return nil, e.err
	}
	return e, nil
}

// admit builds and compiles the entry's network, places its replicas on
// the fleet, and attaches its batcher.
func (r *Registry) admit(e *entry) {
	// Cheap capacity gate before the expensive build+compile: with zero
	// live devices every placement (and every batch) is doomed, and
	// failed admissions are retried from scratch on the next request —
	// compiling first would amplify CPU exactly during an outage.
	if r.fleet.NumLive() == 0 {
		e.err = fmt.Errorf("serve: admitting %s: %w", e.key, errNoReplica)
		return
	}
	net, err := r.buildNet(e.spec)
	if err != nil {
		e.err = err
		return
	}
	comp, err := core.Compile(net, r.compile)
	if err != nil {
		e.err = fmt.Errorf("serve: compiling %s: %w", e.key, err)
		return
	}
	// Static plan verification gates admission: an artifact whose
	// execution plans fail the independent audit never reaches the fleet.
	// The failure classifies as a client-caused model problem (the model
	// definition lowered to an unsound plan), so the HTTP layer answers
	// 400 with the structured diagnostics rather than serving wrong bits.
	verifyPlans := r.planVerify
	if verifyPlans == nil {
		verifyPlans = core.VerifyCompiled
	}
	if err := verifyPlans(comp); err != nil {
		if r.metrics != nil {
			r.metrics.ObservePlanVerifyFailure()
		}
		e.err = &badModelError{fmt.Errorf("serve: verifying %s: %w", e.key, err)}
		return
	}
	// Whole-artifact dataflow verification gates admission the same way,
	// but through the certificate cache: a content-addressed certificate
	// from an earlier admission of the identical artifact is trusted as
	// the proof, so only first-time admissions pay the verification pass.
	verifyDataflow := r.dataflowVerify
	if verifyDataflow == nil {
		verifyDataflow = func(c *core.Compiled) (bool, error) {
			_, hit, err := dataflow.VerifyOrCertify(c, r.compile.Cache)
			return hit, err
		}
	}
	hit, err := verifyDataflow(comp)
	if err != nil {
		if r.metrics != nil {
			r.metrics.ObserveDataflowVerifyFailure()
		}
		e.err = &badModelError{fmt.Errorf("serve: verifying %s dataflow: %w", e.key, err)}
		return
	}
	if r.metrics != nil {
		r.metrics.ObserveCertificate(hit)
	}
	e.net = net
	e.comp = comp
	e.report = sim.Analyze(comp)
	e.layerWrites = sim.LayerWrites(comp)
	pl, err := r.buildPlacement(e, dispatch.Config{Replicas: r.replicas, Stages: r.shardStages})
	if err != nil {
		e.err = fmt.Errorf("serve: placing %s: %w", e.key, err)
		return
	}
	e.place.Store(pl)
	b := newBatcher(e, r.fleet, r.batch)

	// Publish the batcher under the lock (Loaded/evictLocked may be
	// looking at this entry concurrently). An eviction that raced with
	// this compile leaves the entry out of the map; close the batcher so
	// queued submits fail fast and callers retry into a fresh slot.
	r.mu.Lock()
	e.batcher = b
	evicted := e.evicted || r.closed
	r.mu.Unlock()
	if evicted {
		b.close()
	}
}

// buildNet materializes the network for a spec: zoo entries build from
// the spec's parameters; file-backed entries decode their JSON file. A
// malformed file is a client error (HTTP 400), never a panic; an
// unreadable path is an operator-side fault and stays an internal error.
func (r *Registry) buildNet(spec Spec) (*model.Network, error) {
	if z, ok := zoo[spec.Model]; ok {
		cfg := model.Config{ActBits: spec.ActBits, Sparsity: spec.Sparsity, Seed: spec.Seed}
		return z.build(cfg), nil
	}
	r.mu.Lock()
	path, ok := r.files[spec.Model]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", spec.Model)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading model %q: %w", spec.Model, err)
	}
	net, err := model.ReadJSON(bytes.NewReader(data))
	if err != nil {
		return nil, &badModelError{fmt.Errorf("serve: decoding model %q from %s: %w", spec.Model, path, err)}
	}
	r.mu.Lock()
	r.fileShapes[spec.Model] = net.InputShape
	r.mu.Unlock()
	return net, nil
}

// buildPlacement realizes a (replicas, stages) configuration for a
// compiled entry: the pipeline shard plan (memoized per stage count)
// and the data-parallel replica placements. The stage count clamps to
// the live fleet size and the layer count; the replica count clamps to
// live-devices/stages so placements stay device-disjoint. A clamp down
// to one stage and one replica leaves the entry on the plain unpinned
// whole-model dispatch path — unless the registry runs pinned
// (autoscale mode), where even 1r×1s is a placement the scaler can grow.
func (r *Registry) buildPlacement(e *entry, cfg dispatch.Config) (*placement, error) {
	pl := &placement{}
	k := cfg.Stages
	if live := r.fleet.NumLive(); k > live {
		k = live
	}
	if k > len(e.comp.Layers) {
		k = len(e.comp.Layers)
	}
	if k > 1 {
		pp, err := e.pipePlanFor(k)
		if err != nil {
			return nil, err
		}
		pl.shard, pl.pipeline = pp.shard, pp.pipeline
	}

	stages := pl.stages()
	reps := cfg.Replicas
	if reps < 1 {
		reps = 1
	}
	if pl.shard != nil || reps > 1 || r.pinned {
		placed := r.fleet.PinReplicas(reps, stages)
		if len(placed) == 0 {
			// Same condition as a resident model with every replica dead, so
			// it classifies the same way (HTTP 503, not 500).
			return nil, fmt.Errorf("%w: fewer than %d live devices for one %d-stage placement",
				errNoReplica, stages, stages)
		}
		pl.replicas = placed
	}

	// Per-stage wear costs from the cached endurance model: the fleet
	// meters cumulative device writes from these at each dispatch.
	if pl.shard != nil {
		pl.stageWrites = make([]float64, len(pl.shard.Stages))
		for si, st := range pl.shard.Stages {
			for i := st.Lo; i < st.Hi; i++ {
				pl.stageWrites[si] += e.layerWrites[i]
			}
		}
	} else {
		total := 0.0
		for _, wv := range e.layerWrites {
			total += wv
		}
		pl.stageWrites = []float64{total}
	}
	return pl, nil
}

// Rescale rebuilds the entry's placement for cfg and publishes it
// atomically. In-flight batches finish on the placement they dispatched
// with; new dispatches and failover requeues pick up the fresh one.
// Returns the configuration actually applied, which may be smaller than
// asked — PinReplicas clamps to live fleet capacity.
func (r *Registry) Rescale(e *entry, cfg dispatch.Config) (dispatch.Config, error) {
	pl, err := r.buildPlacement(e, cfg)
	if err != nil {
		return dispatch.Config{}, err
	}
	e.place.Store(pl)
	return pl.config(), nil
}

// Entries snapshots the resident entries that are ready to serve
// (batcher published). The autoscaler iterates this each tick.
func (r *Registry) Entries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		if e.batcher != nil {
			out = append(out, e)
		}
	}
	return out
}

// evictLocked drops least-recently-used entries (never `keep`) until the
// registry fits maxModels. Called with r.mu held.
func (r *Registry) evictLocked(keep *entry) {
	for len(r.entries) > r.maxModels {
		var victim *entry
		for _, e := range r.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(r.entries, victim.key)
		victim.evicted = true
		if victim.batcher != nil {
			// Close off-lock: close drains the victim's queue, which can
			// block until its in-flight batches dispatch.
			go victim.batcher.close()
		}
	}
}

// LoadedInfo describes one resident model for /v1/models.
type LoadedInfo struct {
	Key      string  `json:"key"`
	Model    string  `json:"model"`
	ActBits  int     `json:"act_bits"`
	Sparsity float64 `json:"sparsity"`
	Seed     uint64  `json:"seed"`
	Arrays   int     `json:"arrays"`
	// PerInferNS is the analytic single-inference latency (ns) of the
	// model on the simulated device.
	PerInferNS float64 `json:"sim_latency_ns"`
	// Stages, StageDevices and BottleneckNS report pipeline sharding:
	// stage count, the device each stage of the first replica is pinned
	// to, and the simulated steady-state inter-sample interval. Absent
	// for unsharded models.
	Stages       int     `json:"stages,omitempty"`
	StageDevices []int   `json:"stage_devices,omitempty"`
	BottleneckNS float64 `json:"sim_bottleneck_ns,omitempty"`
	// Replicas describes the data-parallel placements: the device list of
	// each replica, its liveness, and how many batches it served. Absent
	// for unpinned models.
	Replicas       int     `json:"replicas,omitempty"`
	ReplicaDevices [][]int `json:"replica_devices,omitempty"`
	ReplicaLive    []bool  `json:"replica_live,omitempty"`
	ReplicaBatches []int64 `json:"replica_batches,omitempty"`
	// LiveReplicas is a pointer so replicated entries always emit it —
	// 0 is the all-replicas-dead state the health surface exists to
	// report — while unpinned models (which have no replicas to count)
	// omit it entirely.
	LiveReplicas *int `json:"live_replicas,omitempty"`
	// QueueDepth is the batcher's live backlog (items admitted but not
	// yet dispatched); QueueDelayEstMS prices that backlog with the
	// measured per-item interval — the figure admission control sheds on.
	QueueDepth      int64   `json:"queue_depth"`
	QueueDelayEstMS float64 `json:"queue_delay_est_ms"`
}

// Loaded snapshots the resident entries, most recently used first. The
// compiled fields are read under r.mu: admit publishes the batcher under
// the same lock after writing them, so a non-nil batcher means comp,
// report, and replicas are visible.
func (r *Registry) Loaded() []LoadedInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []LoadedInfo
	var used []int64
	for _, e := range r.entries {
		if e.batcher == nil { // still compiling
			continue
		}
		info := LoadedInfo{
			Key: e.key, Model: e.spec.Model, ActBits: e.spec.ActBits,
			Sparsity: e.spec.Sparsity, Seed: e.spec.Seed,
			Arrays: e.comp.PoolArrays, PerInferNS: e.report.TotalLatencyNS,
		}
		pl := e.placed()
		if pl.shard != nil {
			info.Stages = len(pl.shard.Stages)
			info.BottleneckNS = pl.pipeline.BottleneckNS
		}
		if len(pl.replicas) > 0 {
			if pl.shard != nil {
				info.StageDevices = append([]int(nil), pl.replicas[0].devs...)
			}
			info.Replicas = len(pl.replicas)
			live, batches := r.fleet.ReplicaStats(pl.replicas)
			info.ReplicaLive = live
			info.ReplicaBatches = batches
			for _, rep := range pl.replicas {
				info.ReplicaDevices = append(info.ReplicaDevices, append([]int(nil), rep.devs...))
			}
			n := 0
			for _, l := range live {
				if l {
					n++
				}
			}
			info.LiveReplicas = &n
		}
		info.QueueDepth = e.batcher.depth.Load()
		info.QueueDelayEstMS = float64(e.est.Estimate(int(info.QueueDepth)).Nanoseconds()) / 1e6
		out = append(out, info)
		used = append(used, e.lastUsed)
	}
	sort.Sort(&byRecency{out, used})
	return out
}

// byRecency sorts LoadedInfo rows by descending lastUsed stamp.
type byRecency struct {
	info []LoadedInfo
	used []int64
}

func (s *byRecency) Len() int           { return len(s.info) }
func (s *byRecency) Less(i, j int) bool { return s.used[i] > s.used[j] }
func (s *byRecency) Swap(i, j int) {
	s.info[i], s.info[j] = s.info[j], s.info[i]
	s.used[i], s.used[j] = s.used[j], s.used[i]
}

// Len returns the number of resident entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Close marks the registry draining and closes every batcher, blocking
// until all queued work has been handed to the fleet. Batcher pointers
// are snapshotted under r.mu; an admission still compiling has a nil
// batcher here and self-closes when it observes r.closed.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	bs := make([]*batcher, 0, len(r.entries))
	for _, e := range r.entries {
		if e.batcher != nil {
			bs = append(bs, e.batcher)
		}
	}
	r.mu.Unlock()
	for _, b := range bs {
		b.close()
	}
}
