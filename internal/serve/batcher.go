package serve

import (
	"errors"
	"sync"
	"time"

	"rtmap/internal/tensor"
)

// errClosed reports a submit against a batcher whose model was evicted or
// whose server is draining; callers re-resolve the model and retry.
var errClosed = errors.New("serve: model evicted or server draining")

// item is one queued inference: a single input sample plus the channel
// its result is delivered on (buffered, so the executor never blocks on a
// departed caller).
type item struct {
	in       *tensor.Float
	bitExact bool
	enq      time.Time
	res      chan itemResult

	// dispatch is stamped by the batcher when the item's micro-batch is
	// handed to the fleet; enq→dispatch is the "wait" phase. Work
	// submitted to the fleet directly (tests, benchmarks) leaves it zero
	// and the fleet falls back to enq.
	dispatch time.Time
	// trace, when non-empty, is the request's trace ID: the fleet emits
	// spans for this item's phases. layers additionally samples per-layer
	// execution spans.
	trace  string
	layers bool
}

type itemResult struct {
	logits []int32
	argmax int
	info   BatchInfo
	err    error
}

// batcher coalesces queued items for one model into micro-batches. The
// first item of a batch opens a coalescing window; the batch dispatches
// when it reaches MaxBatch items or the window expires, whichever comes
// first — so an idle server adds at most Window of latency and a loaded
// server batches at line rate (a backlogged queue fills batches without
// ever arming the timer).
//
// The window is adaptive: dispatching a full batch halves the wait (down
// to Window/8) because traffic is dense enough that waiting longer only
// adds latency, while any batch that dispatched on window expiry doubles
// the wait back (up to the configured Window) to recover batching
// opportunity. The restore must trigger on every non-full batch, not
// just singletons: under moderate traffic that fills 2..MaxBatch-1 items
// per window, a singleton may never occur, and a once-halved window
// would otherwise stay small forever.
type batcher struct {
	e     *entry
	fleet *Fleet
	opts  BatchOptions

	mu     sync.RWMutex // guards closed vs in-flight sends
	closed bool
	ch     chan *item
	done   chan struct{}
}

func newBatcher(e *entry, fleet *Fleet, opts BatchOptions) *batcher {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 8
	}
	if opts.Window <= 0 {
		opts.Window = 2 * time.Millisecond
	}
	if opts.Queue <= 0 {
		opts.Queue = 64
	}
	b := &batcher{
		e:     e,
		fleet: fleet,
		opts:  opts,
		ch:    make(chan *item, opts.Queue),
		done:  make(chan struct{}),
	}
	go b.run()
	return b
}

// submit enqueues one item, blocking when the queue is full
// (backpressure). The read lock is held across the send so close() cannot
// close the channel under an in-flight sender.
func (b *batcher) submit(it *item) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return errClosed
	}
	b.ch <- it
	return nil
}

// close stops intake and waits for the dispatcher to hand every queued
// item to the fleet. Safe to call more than once.
func (b *batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.ch)
	}
	b.mu.Unlock()
	<-b.done
}

func (b *batcher) run() {
	defer close(b.done)
	wait := b.opts.Window
	for {
		first, ok := <-b.ch
		if !ok {
			return
		}
		batch := []*item{first}
		if b.opts.MaxBatch > 1 {
			timer := time.NewTimer(wait)
		fill:
			for len(batch) < b.opts.MaxBatch {
				select {
				case it, ok := <-b.ch:
					if !ok {
						break fill // draining: dispatch what we have
					}
					batch = append(batch, it)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		}
		wait = nextWindow(wait, len(batch), b.opts)
		now := time.Now()
		for _, it := range batch {
			it.dispatch = now
		}
		b.fleet.Submit(newAPBatch(b.e, batch))
	}
}

// nextWindow is the adaptive coalescing-window update: full batches
// halve the wait (floored at Window/8), everything else doubles it back
// (capped at the configured Window).
func nextWindow(wait time.Duration, size int, opts BatchOptions) time.Duration {
	if size >= opts.MaxBatch {
		return max(wait/2, opts.Window/8)
	}
	return min(wait*2, opts.Window)
}
