package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rtmap/internal/dispatch"
	"rtmap/internal/tensor"
)

// errClosed reports a submit against a batcher whose model was evicted or
// whose server is draining; callers re-resolve the model and retry.
var errClosed = errors.New("serve: model evicted or server draining")

// item is one queued inference: a single input sample plus the channel
// its result is delivered on (buffered, so the executor never blocks on a
// departed caller).
type item struct {
	in       *tensor.Float
	bitExact bool
	enq      time.Time
	res      chan itemResult

	// class and deadline are the request's SLO metadata: formation
	// orders batches by class, the early-close rule prices deadlines,
	// and an item whose deadline passes anywhere before execution is
	// cancelled with errExpired instead of run. Zero values mean
	// standard class with no deadline — exactly the pre-SLO behavior.
	class    dispatch.Class
	deadline time.Time

	// dispatch is stamped by the batcher when the item's micro-batch is
	// handed to the fleet; enq→dispatch is the "wait" phase. Work
	// submitted to the fleet directly (tests, benchmarks) leaves it zero
	// and the fleet falls back to enq.
	dispatch time.Time
	// trace, when non-empty, is the request's trace ID: the fleet emits
	// spans for this item's phases. layers additionally samples per-layer
	// execution spans.
	trace  string
	layers bool
}

type itemResult struct {
	logits []int32
	argmax int
	info   BatchInfo
	err    error
}

// batcher coalesces queued items for one model into micro-batches. The
// formation policy — priority classes, deadline early-close, adaptive
// coalescing window, bulk anti-starvation — lives in dispatch.Former;
// this goroutine owns only the clock, the channel, and the handoff to
// the fleet. The first item of a batch opens a coalescing window; the
// batch dispatches when it reaches MaxBatch items, the (adaptive)
// window expires, or a pending deadline forces an early close —
// whichever comes first. Items whose deadline passes while they wait
// are cancelled with errExpired, never dispatched.
type batcher struct {
	e     *entry
	fleet *Fleet
	opts  BatchOptions

	// depth counts items admitted but not yet dispatched or cancelled —
	// the backlog admission control prices with the entry's delay
	// estimator. arrivals counts admissions monotonically; the
	// autoscaler differentiates it into an arrival rate.
	depth    atomic.Int64
	arrivals atomic.Int64

	mu     sync.RWMutex // guards closed vs in-flight sends
	closed bool
	ch     chan *item
	done   chan struct{}
}

func newBatcher(e *entry, fleet *Fleet, opts BatchOptions) *batcher {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 8
	}
	if opts.Window <= 0 {
		opts.Window = 2 * time.Millisecond
	}
	if opts.Queue <= 0 {
		opts.Queue = 64
	}
	b := &batcher{
		e:     e,
		fleet: fleet,
		opts:  opts,
		ch:    make(chan *item, opts.Queue),
		done:  make(chan struct{}),
	}
	go b.run()
	return b
}

// submit enqueues one item, blocking when the queue is full
// (backpressure). The read lock is held across the send so close() cannot
// close the channel under an in-flight sender.
func (b *batcher) submit(it *item) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return errClosed
	}
	b.depth.Add(1)
	b.arrivals.Add(1)
	b.ch <- it
	return nil
}

// close stops intake and waits for the dispatcher to hand every queued
// item to the fleet. Safe to call more than once.
func (b *batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.ch)
	}
	b.mu.Unlock()
	<-b.done
}

func (b *batcher) run() {
	defer close(b.done)
	f := dispatch.NewFormer(dispatch.FormerOptions{MaxBatch: b.opts.MaxBatch, Window: b.opts.Window})
	for {
		it, ok := <-b.ch
		if !ok {
			b.drain(f)
			return
		}
		f.Push(ticketOf(it))
		// Form until the Former wants to wait for arrivals that haven't
		// happened yet, then sleep until its wake time or the next item.
		for f.Pending() > 0 {
			f.SetPerItemEstimate(b.e.est.PerItem())
			batch, expired, wake := f.Form(time.Now(), false)
			b.retire(expired)
			if len(batch) > 0 {
				b.dispatch(batch)
				continue
			}
			if f.Pending() == 0 {
				break
			}
			timer := time.NewTimer(time.Until(wake))
			select {
			case it, ok := <-b.ch:
				timer.Stop()
				if !ok {
					b.drain(f)
					return
				}
				f.Push(ticketOf(it))
			case <-timer.C:
			}
		}
	}
}

// drain force-forms everything pending and hands it to the fleet: the
// shutdown path dispatches queued work rather than dropping it (items
// whose deadline already passed still cancel).
func (b *batcher) drain(f *dispatch.Former) {
	for f.Pending() > 0 {
		batch, expired, _ := f.Form(time.Now(), true)
		b.retire(expired)
		if len(batch) > 0 {
			b.dispatch(batch)
		}
	}
}

func ticketOf(it *item) dispatch.Ticket {
	return dispatch.Ticket{Class: it.class, Deadline: it.deadline, Enqueued: it.enq, Payload: it}
}

// dispatch stamps one formed batch and submits it to the fleet.
func (b *batcher) dispatch(batch []dispatch.Ticket) {
	items := make([]*item, len(batch))
	now := time.Now()
	for i, tk := range batch {
		it := tk.Payload.(*item)
		it.dispatch = now
		items[i] = it
	}
	b.depth.Add(-int64(len(items)))
	b.fleet.Submit(newAPBatch(b.e, items))
}

// retire cancels tickets whose deadline passed while they waited in
// formation.
func (b *batcher) retire(expired []dispatch.Ticket) {
	if len(expired) == 0 {
		return
	}
	b.depth.Add(-int64(len(expired)))
	for _, tk := range expired {
		b.fleet.expireItem(b.e, tk.Payload.(*item), "in formation queue")
	}
}
