package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/workload"
)

// compiledRef compiles the zoo model outside the server for bit-exact
// comparison against served logits.
func compiledRef(t *testing.T, name string) *core.Compiled {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	var net *model.Network
	switch name {
	case "tinycnn":
		net = model.TinyCNN(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	case "tinyresnet":
		net = model.TinyResNet(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	default:
		t.Fatalf("no reference builder for %s", name)
	}
	comp, err := core.Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func assertBitExact(t *testing.T, comp *core.Compiled, items []*item) {
	t.Helper()
	for i, it := range items {
		res := <-it.res
		if res.err != nil {
			t.Fatalf("item %d failed: %v", i, res.err)
		}
		tr, err := sim.ForwardAP(comp, it.in)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Logits().Data
		if len(res.logits) != len(want) {
			t.Fatalf("item %d: %d logits, want %d", i, len(res.logits), len(want))
		}
		for j := range want {
			if res.logits[j] != want[j] {
				t.Fatalf("item %d logit %d: served %d, RunFunctional %d", i, j, res.logits[j], want[j])
			}
		}
	}
}

// TestFailoverRequeueBitExact is the deterministic core of the fault
// layer: a batch delivered to a dead device must requeue onto the
// surviving replica, execute there, and produce logits bit-exact vs the
// RunFunctional path — with the batch accounting recording the failover.
func TestFailoverRequeueBitExact(t *testing.T) {
	s := New(Options{Devices: 2, Replicas: 2, MaxBatch: 4, Window: time.Millisecond, Logf: t.Logf})
	defer func() {
		if err := s.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	e, err := s.Registry().Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.placed().replicas) != 2 {
		t.Fatalf("%d replicas placed, want 2", len(e.placed().replicas))
	}
	deadDev := e.placed().replicas[0].devs[0]
	if err := s.FailDevice(deadDev); err != nil {
		t.Fatal(err)
	}

	// Hand a batch straight to the dead device's queue — exactly the
	// state of work queued there when the device died.
	sh, _ := ZooShape("tinycnn")
	ins := workload.Inputs(sh, 3, 11)
	items := make([]*item, len(ins))
	for i, in := range ins {
		items[i] = &item{in: in, bitExact: i == 0, enq: time.Now(), res: make(chan itemResult, 1)}
	}
	b := newAPBatch(e, items)
	f := s.fleet
	f.mu.Lock()
	d := f.devices[deadDev]
	d.queued++
	f.pending++
	f.mu.Unlock()
	d.ch <- b

	comp := compiledRef(t, "tinycnn")
	for i, it := range items {
		res := <-it.res
		if res.err != nil {
			t.Fatalf("item %d failed across failover: %v", i, res.err)
		}
		if res.info.Requeues != 1 {
			t.Errorf("item %d: %d requeues recorded, want 1", i, res.info.Requeues)
		}
		if res.info.Device == deadDev {
			t.Errorf("item %d executed on the dead device %d", i, deadDev)
		}
		if res.info.Replica != e.placed().replicas[1].id {
			t.Errorf("item %d served by replica %d, want surviving replica %d",
				i, res.info.Replica, e.placed().replicas[1].id)
		}
		tr, err := sim.ForwardAP(comp, it.in)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Logits().Data
		for j := range want {
			if res.logits[j] != want[j] {
				t.Fatalf("item %d logit %d: failover served %d, RunFunctional %d", i, j, res.logits[j], want[j])
			}
		}
	}
}

// Killing a device mid-run with queued and in-flight batches (the
// ISSUE's failover acceptance): every submitted item completes, logits
// stay bit-exact vs RunFunctional, and the drained fleet's accounting
// returns to zero. Run under -race in CI.
func TestFailoverUnderLoadBitExact(t *testing.T) {
	s := New(Options{Devices: 4, Replicas: 2, MaxBatch: 2, Window: time.Millisecond, Logf: t.Logf})
	e, err := s.Registry().Get(Spec{Model: "tinyresnet", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 24
	if testing.Short() {
		n = 12
	}
	sh, _ := ZooShape("tinyresnet")
	ins := workload.Inputs(sh, n, 31)
	items := make([]*item, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, in := range ins {
			items[i] = &item{in: in, enq: time.Now(), res: make(chan itemResult, 1)}
			if err := e.batcher.submit(items[i]); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if i == n/2 { // kill replica 0's device with work queued and in flight
				if err := s.FailDevice(e.placed().replicas[0].devs[0]); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}

	assertBitExact(t, compiledRef(t, "tinyresnet"), items)
	if p := s.fleet.Pending(); p != 0 {
		t.Fatalf("drained fleet reports %d pending batches, want 0", p)
	}
	for _, d := range s.fleet.Stats() {
		if d.Queued != 0 {
			t.Fatalf("drained device %d reports Queued %d, want 0", d.ID, d.Queued)
		}
	}
}

// Sharded + replicated: losing one stage device of one replica restarts
// affected batches from stage 0 on the surviving replica, bit-exactly.
func TestShardedFailoverBitExact(t *testing.T) {
	s := New(Options{Devices: 4, ShardStages: 2, Replicas: 2, MaxBatch: 2,
		Window: time.Millisecond, Logf: t.Logf})
	e, err := s.Registry().Get(Spec{Model: "tinyresnet", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.placed().replicas) != 2 || len(e.placed().replicas[0].devs) != 2 {
		t.Fatalf("placement %+v, want 2 replicas × 2 stages", e.placed().replicas)
	}
	seen := map[int]bool{}
	for _, rep := range e.placed().replicas {
		for _, d := range rep.devs {
			if seen[d] {
				t.Fatalf("device %d appears in two placements (must be disjoint)", d)
			}
			seen[d] = true
		}
	}

	n := 12
	if testing.Short() {
		n = 6
	}
	sh, _ := ZooShape("tinyresnet")
	ins := workload.Inputs(sh, n, 17)
	items := make([]*item, n)
	for i, in := range ins {
		items[i] = &item{in: in, enq: time.Now(), res: make(chan itemResult, 1)}
		if err := e.batcher.submit(items[i]); err != nil {
			t.Fatal(err)
		}
		if i == n/2 { // kill the second stage of replica 0 mid-pipeline
			if err := s.FailDevice(e.placed().replicas[0].devs[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, compiledRef(t, "tinyresnet"), items)
}

// When every replica is gone the batch must fail cleanly with
// errNoReplica after bounded attempts — not spin or deadlock.
func TestFailoverExhaustionFailsCleanly(t *testing.T) {
	s := New(Options{Devices: 2, Replicas: 2, MaxBatch: 2, Window: time.Millisecond, Logf: t.Logf})
	defer func() {
		if err := s.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	e, err := s.Registry().Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.FailDevice(i); err != nil {
			t.Fatal(err)
		}
	}
	sh, _ := ZooShape("tinycnn")
	it := &item{in: workload.Inputs(sh, 1, 3)[0], enq: time.Now(), res: make(chan itemResult, 1)}
	if err := e.batcher.submit(it); err != nil {
		t.Fatal(err)
	}
	res := <-it.res
	if res.err == nil {
		t.Fatal("batch succeeded with every replica dead")
	}
	if !strings.Contains(res.err.Error(), "no live replica") {
		t.Fatalf("error %v, want no-live-replica", res.err)
	}
}

// Admitting a model with no live capacity must answer 503 — the same
// classification as a resident model whose replicas all died, since the
// condition is the same.
func TestAdmitWithoutCapacityIs503(t *testing.T) {
	s, ts := testServer(t, Options{Devices: 1, Replicas: 2, MaxBatch: 2, Window: time.Millisecond})
	if err := s.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	sh, _ := ZooShape("tinycnn")
	in := workload.InputData(sh, 1, 3)
	_, resp := postInfer(t, ts.URL, InferRequest{Model: "tinycnn", Inputs: in})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission with zero live devices: HTTP %d, want 503", resp.StatusCode)
	}
}

// The HTTP surface of replication: /v1/models reports placements and
// liveness, /metrics exposes the health gauges, and inference keeps
// succeeding after a device failure.
func TestReplicaHealthEndpoints(t *testing.T) {
	s, ts := testServer(t, Options{Devices: 3, Replicas: 2, MaxBatch: 2, Window: time.Millisecond})
	sh, _ := ZooShape("tinycnn")
	in := workload.InputData(sh, 1, 5)
	if _, resp := postInfer(t, ts.URL, InferRequest{Model: "tinycnn", Inputs: in}); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: HTTP %d", resp.StatusCode)
	}

	loaded := s.Registry().Loaded()
	if len(loaded) != 1 {
		t.Fatalf("%d resident models, want 1", len(loaded))
	}
	li := loaded[0]
	if li.Replicas != 2 || li.LiveReplicas == nil || *li.LiveReplicas != 2 || len(li.ReplicaDevices) != 2 {
		t.Fatalf("loaded info %+v, want 2 live replicas with devices", li)
	}

	if err := s.FailDevice(li.ReplicaDevices[0][0]); err != nil {
		t.Fatal(err)
	}
	li = s.Registry().Loaded()[0]
	if *li.LiveReplicas != 1 || li.ReplicaLive[0] || !li.ReplicaLive[1] {
		t.Fatalf("after failure: %+v, want exactly replica 1 live", li)
	}
	if _, resp := postInfer(t, ts.URL, InferRequest{Model: "tinycnn", Inputs: in}); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer after device loss: HTTP %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	for _, want := range []string{
		"rtmap_device_up", "rtmap_device_failures_total 1",
		"rtmap_model_replicas{", "rtmap_model_replicas_live{",
		"rtmap_requeued_batches_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var models modelsResponse
	mr, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mr.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if len(models.Loaded) != 1 || models.Loaded[0].LiveReplicas == nil || *models.Loaded[0].LiveReplicas != 1 {
		t.Fatalf("/v1/models loaded %+v, want live_replicas 1", models.Loaded)
	}
}

// File-backed models: a valid model file serves bit-exactly under its
// registered name; a malformed one maps to HTTP 400 through the admit
// path (never a panic or a 500).
func TestFileModelAdmitAndBadFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	net := model.TinyCNN(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err := net.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"format":"rtmap-twn-v1","name":"x","input_nchw":[1,1,1,1],`), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := testServer(t, Options{
		MaxBatch: 2, Window: time.Millisecond,
		ModelFiles: map[string]string{
			"filecnn": good, "badcnn": bad,
			"gonecnn": filepath.Join(dir, "missing.json"),
		},
	})

	in := workload.Inputs(net.InputShape, 2, 13)
	req := InferRequest{Model: "filecnn", BitExact: true}
	for _, x := range in {
		req.Inputs = append(req.Inputs, x.Data)
	}
	out, resp := postInfer(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("file model: HTTP %d", resp.StatusCode)
	}
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	comp, err := core.Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range in {
		tr, err := sim.ForwardAP(comp, x)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Logits().Data
		for j := range want {
			if out.Results[i].Logits[j] != want[j] {
				t.Fatalf("file model input %d logit %d: %d != %d", i, j, out.Results[i].Logits[j], want[j])
			}
		}
	}

	// Build parameters are inert for file models: different seeds/bits
	// must share one registry slot, not multiply residents.
	req.Seed = 7
	req.ActBits = 6
	if _, resp := postInfer(t, ts.URL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("file model with different build params: HTTP %d", resp.StatusCode)
	}
	if n := s.Registry().Len(); n != 1 {
		t.Fatalf("file model occupies %d registry slots across build params, want 1", n)
	}

	_, resp = postInfer(t, ts.URL, InferRequest{Model: "badcnn",
		Inputs: [][]float32{make([]float32, 1)}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed model file: HTTP %d, want 400", resp.StatusCode)
	}
	// An unreadable path is the operator's fault, not the client's.
	_, resp = postInfer(t, ts.URL, InferRequest{Model: "gonecnn",
		Inputs: [][]float32{make([]float32, 1)}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("unreadable model file: HTTP %d, want 500", resp.StatusCode)
	}
	_, resp = postInfer(t, ts.URL, InferRequest{Model: "missing",
		Inputs: [][]float32{make([]float32, 1)}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: HTTP %d, want 404", resp.StatusCode)
	}
}
