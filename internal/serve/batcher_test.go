package serve

import (
	"sync"
	"testing"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/tensor"
	"rtmap/internal/workload"
)

// testEntry admits tinycnn through a private registry/fleet pair sized by
// the given batch options.
func testEntry(t *testing.T, fleet *Fleet, batch BatchOptions) *entry {
	t.Helper()
	reg := NewRegistry(core.DefaultConfig(), 2, fleet, batch, 0, 1)
	t.Cleanup(reg.Close)
	e, err := reg.Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func submitN(t *testing.T, e *entry, n int) []*item {
	t.Helper()
	sh, _ := ZooShape("tinycnn")
	inputs := workload.Inputs(sh, n, 5)
	items := make([]*item, n)
	for i := range items {
		items[i] = &item{in: inputs[i], enq: time.Now(), res: make(chan itemResult, 1)}
		if err := e.batcher.submit(items[i]); err != nil {
			t.Fatal(err)
		}
	}
	return items
}

// A burst submitted faster than the window must coalesce into one batch.
func TestBatcherCoalescesBurst(t *testing.T) {
	fleet := NewFleet(1, 16, nil)
	t.Cleanup(fleet.Close)
	e := testEntry(t, fleet, BatchOptions{MaxBatch: 8, Window: 200 * time.Millisecond})

	items := submitN(t, e, 4)
	for i, it := range items {
		res := <-it.res
		if res.err != nil {
			t.Fatalf("item %d: %v", i, res.err)
		}
		if res.info.Size != 4 {
			t.Fatalf("item %d ran in a batch of %d, want 4 (coalesced)", i, res.info.Size)
		}
	}
}

// MaxBatch splits an oversized burst; nothing waits for the window once
// the batch is full.
func TestBatcherRespectsMaxBatch(t *testing.T) {
	fleet := NewFleet(1, 16, nil)
	t.Cleanup(fleet.Close)
	e := testEntry(t, fleet, BatchOptions{MaxBatch: 2, Window: time.Hour})

	start := time.Now()
	items := submitN(t, e, 4)
	for i, it := range items {
		res := <-it.res
		if res.err != nil {
			t.Fatalf("item %d: %v", i, res.err)
		}
		if res.info.Size != 2 {
			t.Fatalf("item %d: batch size %d, want 2", i, res.info.Size)
		}
	}
	// With a 1h window, completion proves full batches dispatch eagerly.
	if time.Since(start) > 30*time.Second {
		t.Fatal("full batches waited for the window")
	}
}

// Closing a batcher drains queued items rather than dropping them, and
// subsequent submits fail with errClosed.
func TestBatcherCloseDrains(t *testing.T) {
	fleet := NewFleet(1, 16, nil)
	t.Cleanup(fleet.Close)
	e := testEntry(t, fleet, BatchOptions{MaxBatch: 4, Window: time.Millisecond})

	items := submitN(t, e, 3)
	e.batcher.close()
	for i, it := range items {
		if res := <-it.res; res.err != nil {
			t.Fatalf("drained item %d: %v", i, res.err)
		}
	}
	sh, _ := ZooShape("tinycnn")
	late := &item{in: tensor.NewFloat(sh), res: make(chan itemResult, 1)}
	if err := e.batcher.submit(late); err != errClosed {
		t.Fatalf("submit after close: %v, want errClosed", err)
	}
}

// Concurrent submits against concurrent close must neither panic (send
// on closed channel) nor deadlock — the RWMutex protocol under race.
func TestBatcherCloseRace(t *testing.T) {
	fleet := NewFleet(2, 64, nil)
	t.Cleanup(fleet.Close)
	e := testEntry(t, fleet, BatchOptions{MaxBatch: 4, Window: time.Millisecond, Queue: 8})

	sh, _ := ZooShape("tinycnn")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				it := &item{in: tensor.NewFloat(sh), enq: time.Now(), res: make(chan itemResult, 1)}
				if err := e.batcher.submit(it); err != nil {
					return // closed underneath us: expected
				}
				<-it.res
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	e.batcher.close()
	wg.Wait()
}

// Batches spread across devices by queue depth.
func TestFleetSpreadsLoad(t *testing.T) {
	fleet := NewFleet(3, 16, nil)
	t.Cleanup(fleet.Close)
	// MaxBatch 1: every item is its own batch, so 9 batches hit the fleet.
	e := testEntry(t, fleet, BatchOptions{MaxBatch: 1})

	items := submitN(t, e, 9)
	devices := map[int]bool{}
	for _, it := range items {
		res := <-it.res
		if res.err != nil {
			t.Fatal(res.err)
		}
		devices[res.info.Device] = true
	}
	if len(devices) < 2 {
		t.Fatalf("9 single-item batches all ran on one device; want spread (got %v)", devices)
	}
	var total int64
	for _, d := range fleet.Stats() {
		total += d.Batches
	}
	if total != 9 {
		t.Fatalf("fleet executed %d batches, want 9", total)
	}
}

// The adaptive-window policy itself (halve on full batches, restore on
// any non-full batch) moved to dispatch.NextWindow; its unit test lives
// there as TestNextWindowRestores.

func TestRegistryUnknownModel(t *testing.T) {
	fleet := NewFleet(1, 4, nil)
	t.Cleanup(fleet.Close)
	reg := NewRegistry(core.DefaultConfig(), 2, fleet, BatchOptions{}, 0, 1)
	t.Cleanup(reg.Close)
	if _, err := reg.Get(Spec{Model: "missing"}); err == nil {
		t.Fatal("unknown model admitted")
	}
}
