package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/verify"
	"rtmap/internal/workload"
)

// A model whose plans fail static verification must never be admitted:
// the request gets HTTP 400 with the located diagnostics in the body,
// the registry keeps no resident entry, and the failure is counted on
// /metrics as rtmap_plan_verify_failures_total.
func TestAdmitRejectsVerifierFailure(t *testing.T) {
	s, ts := testServer(t, Options{MaxBatch: 2, Window: time.Millisecond})
	planted := verify.Diagnostic{
		Model: "tinycnn", Layer: 1, LayerName: "conv1", Strip: 0, Tile: 2,
		Op: 7, Invariant: "mask-elision", Detail: "injected for test",
	}
	s.reg.planVerify = func(*core.Compiled) error {
		return &verify.Error{Diags: []verify.Diagnostic{planted}}
	}

	sh, _ := ZooShape("tinycnn")
	body, _ := json.Marshal(InferRequest{Model: "tinycnn", Inputs: workload.InputData(sh, 1, 3)})
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "verifying") {
		t.Fatalf("error %q does not mention verification", er.Error)
	}
	if len(er.Diagnostics) != 1 || er.Diagnostics[0] != planted {
		t.Fatalf("diagnostics %+v, want the planted one", er.Diagnostics)
	}
	if n := s.reg.Len(); n != 0 {
		t.Fatalf("%d resident entries after a rejected admission, want 0", n)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mb), "rtmap_plan_verify_failures_total 1") {
		t.Fatalf("/metrics missing rtmap_plan_verify_failures_total 1:\n%s", mb)
	}
}

// The default admission path runs the real verifier over every compiled
// artifact: a clean zoo model still admits, and the failure counter
// stays at zero.
func TestAdmitRunsRealVerifier(t *testing.T) {
	_, ts := testServer(t, Options{MaxBatch: 2, Window: time.Millisecond})
	sh, _ := ZooShape("tinycnn")
	_, resp := postInfer(t, ts.URL, InferRequest{Model: "tinycnn", Inputs: workload.InputData(sh, 1, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mb), "rtmap_plan_verify_failures_total 0") {
		t.Fatalf("/metrics missing rtmap_plan_verify_failures_total 0:\n%s", mb)
	}
}
