package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rtmap/internal/dispatch"
	"rtmap/internal/energy"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/tensor"
	"rtmap/internal/trace"
)

// BatchInfo is the per-batch accounting attached to every result: which
// simulated device ran the batch, how large it was, how long the item
// waited in queues (wall time), and what the batch cost on the simulated
// hardware (sim.AnalyzeBatch pipelined-load pricing; for sharded models,
// the sum of the per-stage sim.AnalyzeStageBatch prices).
type BatchInfo struct {
	Device int `json:"device"`
	Size   int `json:"size"`
	// Replica is the data-parallel replica that served the batch; -1 for
	// models dispatched unpinned across the whole fleet.
	Replica int `json:"replica"`
	// Requeues counts device-failure failovers this batch survived before
	// completing. Zero on the happy path.
	Requeues int `json:"requeues,omitempty"`
	// QueueWallNS is the wall-clock time from enqueue to execution start
	// (for sharded models: to the start of the first stage).
	QueueWallNS int64 `json:"queue_wall_ns"`
	// SimLatencyNS is the simulated device latency of the whole batch;
	// SimPerSampleNS is the amortized per-sample share.
	SimLatencyNS   float64 `json:"sim_latency_ns"`
	SimPerSampleNS float64 `json:"sim_per_sample_ns"`
	SimEnergyPJ    float64 `json:"sim_energy_pj"`
	// Stages and Path report pipeline-sharded execution: the stage count
	// and the device each stage ran on. Absent for unsharded models.
	Stages int   `json:"stages,omitempty"`
	Path   []int `json:"path,omitempty"`
}

// replica is one independent placement of a model across the fleet: one
// device per pipeline stage (a single device for unsharded models).
// Placements of the same entry are device-disjoint, so one device failure
// kills at most one replica. devs is immutable after admission; batches is
// guarded by Fleet.mu.
type replica struct {
	id      int
	devs    []int
	batches int64
}

// apBatch is one dispatched unit of work: a model entry plus the items
// coalesced for it. Sharded batches traverse the fleet stage by stage,
// carrying their per-item pipeline state. A batch that reaches a dead
// device is requeued onto a surviving replica (bounded attempts); done
// tracks which items already received a result so a restart never
// delivers twice.
type apBatch struct {
	e     *entry
	items []*item
	done  []bool
	// cancelled marks items retired by the deadline gate (expireDue):
	// they are done without having executed, so the post-execution span
	// and phase-metric loops must skip them. Allocated lazily — the
	// no-deadline hot path never pays for it.
	cancelled []bool

	// pl is the entry placement captured at dispatch: the batch keeps
	// one consistent view of shard plan, replicas, and wear costs even
	// if the autoscaler swaps the entry's placement mid-flight. Failover
	// refreshes it (see requeue), so retries land on current replicas.
	pl *placement

	// Placement: the replica serving this attempt and its device list
	// (one per stage). replica is -1 and devs nil for unpinned dispatch.
	replica  int
	devs     []int
	attempts int

	// Pipeline state (sharded entries only).
	stage   int
	runs    []*sim.ShardRun
	path    []int
	simNS   float64
	simPJ   float64
	started time.Time // execution start of stage 0

	// hop is stamped by forward so the next stage can attribute the
	// inter-stage transfer wall time; execNS accumulates execution wall
	// time across stages for the per-item phase decomposition.
	hop    time.Time
	execNS int64
}

// newAPBatch wraps coalesced items into a dispatchable batch,
// capturing the entry's current placement.
func newAPBatch(e *entry, items []*item) *apBatch {
	return &apBatch{e: e, items: items, done: make([]bool, len(items)), replica: -1, pl: e.placed()}
}

// firstTraced reports whether item i is the first item carrying its
// trace ID in the batch. Span emission dedupes on it: a multi-sample
// request contributes one span per event rather than one per sample, so
// a trace's phase durations stay comparable to its wall time. Batches
// are small (MaxBatch-bounded), so the scan beats a map.
func (b *apBatch) firstTraced(i int) bool {
	it := b.items[i]
	if it.trace == "" {
		return false
	}
	for j := 0; j < i; j++ {
		if b.items[j].trace == it.trace {
			return false
		}
	}
	return true
}

// device is one simulated AP array pool. Batches assigned to it execute
// serially on its goroutine (genuine queueing), and its simulated clock
// accumulates the priced latency of everything it ran. A dead device's
// goroutine stays up to drain its queue: every batch it receives after
// the failure mark is requeued instead of executed.
type device struct {
	id      int
	ch      chan *apBatch
	queued  int          // guarded by Fleet.mu
	busyNS  float64      // guarded by Fleet.mu
	batches int64        // guarded by Fleet.mu
	meter   energy.Meter // modeled energy/wear spent; guarded by Fleet.mu
	dead    bool         // guarded by Fleet.mu; set by FailDevice
}

// Fleet is the device-fleet scheduler: N simulated AP devices with
// per-device queues. Submit places a batch on a device, blocking when
// that device's queue is full:
//
//   - replicated entries pick the least-loaded live replica and go to its
//     first (or only) device;
//   - sharded batches then hop device to device through the replica's
//     stage pipeline;
//   - unpinned entries go to the live device with the fewest outstanding
//     batches (ties to the least simulated busy time).
type Fleet struct {
	metrics *Metrics
	// tracer, when non-nil, receives spans for items carrying a trace ID
	// (set once by serve.New before traffic; a bare Fleet works without).
	tracer *trace.Tracer

	// WallScale dilates simulated device latency into wall time (set
	// once before traffic, like tracer): each batch or pipeline stage
	// occupies its device for at least WallScale × the cost model's
	// latency estimate. Zero disables dilation. See Options.WallScale.
	WallScale float64

	mu      sync.Mutex // guards device counters, replica counters, pending
	cond    *sync.Cond // signalled when pending drops
	pending int        // batches admitted but not yet retired
	devices []*device
	wg      sync.WaitGroup

	// devScratch and repScratch are reusable load-snapshot buffers for
	// the dispatch policy functions, guarded by mu like the counters
	// they snapshot, so the per-batch placement path stays allocation-
	// free.
	devScratch []dispatch.DeviceLoad
	repScratch []dispatch.ReplicaLoad

	// closeMu orders Submit's channel sends against Close closing the
	// device channels: senders hold the read side across the send, so
	// Close (write side) cannot observe a drained fleet under an
	// in-flight send.
	closeMu sync.RWMutex
	closed  bool
}

// NewFleet starts n device goroutines with per-device queues of depth
// queueCap.
func NewFleet(n, queueCap int, m *Metrics) *Fleet {
	if n <= 0 {
		n = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	f := &Fleet{metrics: m}
	f.cond = sync.NewCond(&f.mu)
	for i := 0; i < n; i++ {
		d := &device{id: i, ch: make(chan *apBatch, queueCap)}
		f.devices = append(f.devices, d)
		f.wg.Add(1)
		go f.run(d)
	}
	return f
}

// NumDevices returns the fleet size (dead devices included).
func (f *Fleet) NumDevices() int { return len(f.devices) }

// NumLive returns the number of devices not marked dead.
func (f *Fleet) NumLive() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, d := range f.devices {
		if !d.dead {
			n++
		}
	}
	return n
}

// PinReplicas assigns up to r device-disjoint placements of s devices
// each, least-loaded live devices first. Disjointness makes failover
// meaningful (one device failure kills at most one replica) and, within a
// placement, keeps a sharded model's stage graph acyclic. r clamps to
// NumLive/s; nil is returned when fewer than s devices are alive.
func (f *Fleet) PinReplicas(r, s int) []*replica {
	if r < 1 {
		r = 1
	}
	if s < 1 {
		s = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	order := dispatch.PlacementOrder(f.deviceLoadsLocked())
	if maxR := len(order) / s; r > maxR {
		r = maxR
	}
	reps := make([]*replica, 0, r)
	for i := 0; i < r; i++ {
		reps = append(reps, &replica{id: i, devs: append([]int(nil), order[i*s:(i+1)*s]...)})
	}
	return reps
}

// replicaLiveLocked reports whether every device of the placement is
// alive. Called with f.mu held.
func (f *Fleet) replicaLiveLocked(rep *replica) bool {
	for _, id := range rep.devs {
		if f.devices[id].dead {
			return false
		}
	}
	return true
}

// ReplicaStats snapshots liveness and dispatch counts of an entry's
// placements (/v1/models health reporting).
func (f *Fleet) ReplicaStats(reps []*replica) (live []bool, batches []int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rep := range reps {
		live = append(live, f.replicaLiveLocked(rep))
		batches = append(batches, rep.batches)
	}
	return live, batches
}

// deviceLoadsLocked snapshots per-device load for the dispatch policy
// functions, reusing the fleet's scratch buffer. Called with f.mu held.
func (f *Fleet) deviceLoadsLocked() []dispatch.DeviceLoad {
	if cap(f.devScratch) < len(f.devices) {
		f.devScratch = make([]dispatch.DeviceLoad, len(f.devices))
	}
	loads := f.devScratch[:len(f.devices)]
	for i, d := range f.devices {
		loads[i] = dispatch.DeviceLoad{Queued: d.queued, BusyNS: d.busyNS, Dead: d.dead}
	}
	return loads
}

// placeLocked routes a batch to its target device and records the
// chosen replica on the batch, delegating the policy to the dispatch
// package: replicated entries via dispatch.PickReplica (least head-load
// with a round-robin tilt), unpinned entries via dispatch.LeastLoaded.
// Returns false when nothing is alive to run the batch. Called with
// f.mu held.
func (f *Fleet) placeLocked(b *apBatch) (*device, bool) {
	if reps := b.pl.replicas; len(reps) > 0 {
		if cap(f.repScratch) < len(reps) {
			f.repScratch = make([]dispatch.ReplicaLoad, len(reps))
		}
		loads := f.repScratch[:len(reps)]
		for i, rep := range reps {
			head := f.devices[rep.devs[0]]
			loads[i] = dispatch.ReplicaLoad{
				Head:    dispatch.DeviceLoad{Queued: head.queued, BusyNS: head.busyNS, Dead: head.dead},
				Batches: rep.batches,
				Live:    f.replicaLiveLocked(rep),
			}
		}
		pick := dispatch.PickReplica(loads)
		if pick < 0 {
			return nil, false
		}
		best := reps[pick]
		best.batches++
		b.replica = best.id
		b.devs = best.devs
		return f.devices[best.devs[0]], true
	}
	pick := dispatch.LeastLoaded(f.deviceLoadsLocked())
	if pick < 0 {
		return nil, false
	}
	b.replica, b.devs = -1, nil
	return f.devices[pick], true
}

// Submit schedules the batch onto the fleet. Batches arriving after Close
// (an evicted model's batcher draining late) fail their items with
// errClosed instead of executing; batches with no live replica fail with
// errNoReplica.
func (f *Fleet) Submit(b *apBatch) {
	f.closeMu.RLock()
	defer f.closeMu.RUnlock()
	if f.closed {
		fail(b, errClosed)
		return
	}
	f.mu.Lock()
	d, ok := f.placeLocked(b)
	if !ok {
		f.mu.Unlock()
		fail(b, errNoReplica)
		return
	}
	d.queued++
	f.pending++
	f.mu.Unlock()
	d.ch <- b
}

// forward hands a sharded batch to its next stage's device. The pending
// count is bumped before this batch's current execution retires, so the
// fleet never looks drained with a hop in flight; the send runs on its
// own goroutine so a device goroutine never blocks on another device's
// full queue (queues of different models may point at each other).
func (f *Fleet) forward(dev int, b *apBatch) {
	d := f.devices[dev]
	b.hop = time.Now()
	f.mu.Lock()
	d.queued++
	f.pending++
	f.mu.Unlock()
	go func() { d.ch <- b }()
}

// dispatchOf returns when the item's batch was handed to the fleet,
// falling back to the enqueue stamp for work submitted directly
// (benchmarks and tests that bypass the batcher).
func dispatchOf(it *item) time.Time {
	if it.dispatch.IsZero() {
		return it.enq
	}
	return it.dispatch
}

// itemSpan emits one span for a traced item; a nil tracer or an
// untraced item costs one branch.
func (f *Fleet) itemSpan(it *item, b *apBatch, name string, dev, stage int, start time.Time, dur time.Duration, detail string) {
	if f.tracer == nil || it.trace == "" {
		return
	}
	f.tracer.Record(trace.Span{
		TraceID: it.trace, Name: name, Model: b.e.spec.Model,
		Device: dev, Replica: b.replica, Stage: stage, Batch: len(b.items),
		Start: start.UnixNano(), Dur: dur.Nanoseconds(), Detail: detail,
	})
}

// waitQueueSpans emits the wait (enqueue→dispatch) and queue
// (dispatch→execution start) spans for every live traced item of a
// batch about to execute. A requeued batch re-enters the queue, so its
// second queue span overlaps the first attempt's execution — the
// overlap is the failover cost, worth seeing.
func (f *Fleet) waitQueueSpans(b *apBatch, dev int, start time.Time) {
	if f.tracer == nil {
		return
	}
	for i, it := range b.items {
		if b.done[i] || !b.firstTraced(i) {
			continue
		}
		disp := dispatchOf(it)
		f.itemSpan(it, b, "wait", -1, -1, it.enq, disp.Sub(it.enq), "")
		f.itemSpan(it, b, "queue", dev, -1, disp, start.Sub(disp), "")
	}
}

// layerHook builds the sampled per-layer span hook for a batch when a
// live item asked for layer attribution; nil otherwise, which the
// engine turns into zero overhead.
func (f *Fleet) layerHook(b *apBatch, dev, stage int) sim.LayerHook {
	if f.tracer == nil {
		return nil
	}
	for i, it := range b.items {
		if !b.done[i] && it.trace != "" && it.layers {
			tid := it.trace
			return func(layer int, name string, startNS, durNS int64) {
				f.tracer.Record(trace.Span{
					TraceID: tid, Name: "layer", Model: b.e.spec.Model,
					Device: dev, Replica: b.replica, Stage: stage, Batch: len(b.items),
					Start: startNS, Dur: durNS, Detail: name,
				})
			}
		}
	}
	return nil
}

// fail delivers err to every item that does not have a result yet.
func fail(b *apBatch, err error) {
	for i, it := range b.items {
		if b.done[i] {
			continue
		}
		b.done[i] = true
		it.res <- itemResult{err: err}
	}
}

// expireDue cancels every undelivered item of the batch whose deadline
// has passed: a request its client already gave up on is not worth
// device time. Returns the number of live items remaining; a zero
// return means the whole batch can be skipped. Traced cancellations
// leave an "expired" span behind so latency attribution sees them.
func (f *Fleet) expireDue(b *apBatch, now time.Time, where string) int {
	live := 0
	for i, it := range b.items {
		if b.done[i] {
			continue
		}
		if it.deadline.IsZero() || it.deadline.After(now) {
			live++
			continue
		}
		if b.firstTraced(i) {
			f.itemSpan(it, b, "expired", -1, -1, now, 0, where)
		}
		if b.cancelled == nil {
			b.cancelled = make([]bool, len(b.items))
		}
		b.cancelled[i] = true
		b.done[i] = true
		it.res <- itemResult{err: errExpired}
	}
	return live
}

// wasCancelled reports whether item i was retired by the deadline gate.
func (b *apBatch) wasCancelled(i int) bool {
	return b.cancelled != nil && b.cancelled[i]
}

// expireItem cancels one item that expired before ever reaching the
// fleet (formation-queue cancellation by the batcher) — there is no
// batch context, so the span carries only the trace identity.
func (f *Fleet) expireItem(e *entry, it *item, where string) {
	if f.tracer != nil && it.trace != "" {
		f.tracer.Record(trace.Span{
			TraceID: it.trace, Name: "expired", Model: e.spec.Model,
			Device: -1, Replica: -1, Stage: -1,
			Start: time.Now().UnixNano(), Detail: where,
		})
	}
	it.res <- itemResult{err: errExpired}
}

// parallelism is how many batches the batch's deployment can execute
// concurrently: its replica count, or the whole live fleet for
// unpinned entries. Scales the entry's per-item interval estimate.
func (f *Fleet) parallelism(b *apBatch) int {
	if n := len(b.pl.replicas); n > 0 {
		return n
	}
	return f.NumLive()
}

func (f *Fleet) run(d *device) {
	defer f.wg.Done()
	for b := range d.ch {
		f.mu.Lock()
		dead := d.dead
		f.mu.Unlock()
		if dead {
			f.requeue(d, b)
		} else {
			f.execBatch(d, b)
		}
		f.mu.Lock()
		d.queued--
		f.pending--
		if d.queued < 0 || f.pending < 0 {
			panic(fmt.Sprintf("serve: fleet accounting underflow (device %d queued %d, pending %d)",
				d.id, d.queued, f.pending))
		}
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}

// dilate holds the device until WallScale × the simulated latency of the
// work it just priced has elapsed on the wall clock, counting from start
// (engine compute already spent is credited, never doubled). The sleep
// happens before results are delivered, so clients, the delay estimator,
// and the autoscaler all observe cost-model-governed service times.
func (f *Fleet) dilate(simNS float64, start time.Time) {
	if f.WallScale <= 0 {
		return
	}
	target := time.Duration(simNS * f.WallScale)
	if spent := time.Since(start); spent < target {
		time.Sleep(target - spent)
	}
}

// execBatch runs every item of the batch on this device and prices the
// batch on the simulated hardware. Bit-exact items replay the compiled AP
// programs (sim.ForwardAP); reference items run the quantized software
// reference — both paths produce identical logits.
func (f *Fleet) execBatch(d *device, b *apBatch) {
	if b.pl.shard != nil {
		f.execStage(d, b)
		return
	}
	start := time.Now()
	// Deadline gate: items that expired while queued are cancelled, not
	// executed. A fully expired batch never touches the device.
	if f.expireDue(b, start, "before execution") == 0 {
		return
	}
	br := sim.AnalyzeBatch(b.e.report, len(b.items))
	f.mu.Lock()
	d.busyNS += br.LatencyNS
	d.batches++
	d.meter.Spend(br.EnergyPJ, b.pl.writesPerSample(0)*float64(len(b.items)))
	f.mu.Unlock()
	f.waitQueueSpans(b, d.id, start)

	// The whole batch executes in one engine pass: bit-exact items run
	// through sim.ForwardAPBatch (one program interpretation per (strip,
	// tile, row-group) for all of them — bit-identical to per-item
	// ForwardAP, enforced by TestBatchedExecBitExact), reference items
	// through the per-item software reference.
	var exactIns []*tensor.Float
	for i, it := range b.items {
		if !b.done[i] && it.bitExact {
			exactIns = append(exactIns, it.in)
		}
	}
	var exactTrs []*model.IntTrace
	var exactErr error
	if len(exactIns) > 0 {
		exactTrs, exactErr = sim.ForwardAPBatchHook(b.e.comp, exactIns, f.layerHook(b, d.id, -1))
	}
	f.dilate(br.LatencyNS, start)

	next := 0
	for i, it := range b.items {
		if b.done[i] {
			continue
		}
		res := itemResult{info: BatchInfo{
			Device:         d.id,
			Size:           len(b.items),
			Replica:        b.replica,
			Requeues:       b.attempts,
			QueueWallNS:    start.Sub(it.enq).Nanoseconds(),
			SimLatencyNS:   br.LatencyNS,
			SimPerSampleNS: br.PerSampleNS(),
			SimEnergyPJ:    br.EnergyPJ,
		}}
		var tr *model.IntTrace
		var err error
		if it.bitExact {
			tr, err = nil, exactErr
			if exactErr == nil {
				tr = exactTrs[next]
			}
			next++
		} else {
			tr, err = b.e.net.ForwardInt(it.in)
		}
		if err != nil {
			res.err = err
		} else {
			lg := tr.Logits()
			res.logits = append([]int32(nil), lg.Data...)
			res.argmax = lg.ArgmaxInt()[0]
		}
		b.done[i] = true
		it.res <- res
	}
	execDur := time.Since(start)
	b.e.est.Observe(len(b.items), execDur, f.parallelism(b))
	if f.metrics != nil {
		f.metrics.ObserveBatch(len(b.items), br.LatencyNS, br.EnergyPJ)
		f.metrics.ObserveExec(0, execDur)
		for i, it := range b.items {
			if b.wasCancelled(i) {
				continue // never executed: no phases to attribute
			}
			disp := dispatchOf(it)
			f.metrics.ObserveItemPhases(disp.Sub(it.enq), start.Sub(disp), execDur)
		}
	}
	for i, it := range b.items {
		if b.wasCancelled(i) || !b.firstTraced(i) {
			continue
		}
		f.itemSpan(it, b, "exec", d.id, -1, start, execDur, "")
	}
}

// execStage runs one pipeline stage of a sharded batch on this device:
// every item advances one stage of its ShardRun, the stage is priced by
// the pipeline cost model, and the batch either hops to the next stage's
// device or delivers its results.
func (f *Fleet) execStage(d *device, b *apBatch) {
	stageStart := time.Now()
	if b.stage == 0 {
		// Deadline gate, stage 0 only: once a batch has bought pipeline
		// work, finishing beats discarding it partway through.
		if f.expireDue(b, stageStart, "before stage 0") == 0 {
			return
		}
		b.started = stageStart
		b.runs = make([]*sim.ShardRun, len(b.items))
		for i, it := range b.items {
			if b.done[i] {
				continue
			}
			run, err := sim.NewShardRun(b.e.comp, b.pl.shard, it.in)
			if err != nil {
				b.done[i] = true
				it.res <- itemResult{err: err}
				continue
			}
			b.runs[i] = run
		}
		f.waitQueueSpans(b, d.id, stageStart)
	} else if f.tracer != nil && !b.hop.IsZero() {
		for i, it := range b.items {
			if !b.done[i] && b.firstTraced(i) {
				f.itemSpan(it, b, "hop", d.id, b.stage, b.hop, stageStart.Sub(b.hop), "")
			}
		}
	}

	br := sim.AnalyzeStageBatch(b.pl.pipeline, b.stage, len(b.items))
	f.mu.Lock()
	d.busyNS += br.LatencyNS
	d.batches++
	d.meter.Spend(br.EnergyPJ, b.pl.writesPerSample(b.stage)*float64(len(b.items)))
	f.mu.Unlock()
	b.simNS += br.LatencyNS
	b.simPJ += br.EnergyPJ
	b.path = append(b.path, d.id)

	// Advance every live run one stage in one batched engine pass per
	// bit-exactness mode (a coalesced batch can mix modes; each group's
	// runs share their stage's program interpretations).
	hook := f.layerHook(b, d.id, b.stage)
	for _, exact := range []bool{true, false} {
		var group []*sim.ShardRun
		var idx []int
		for i, it := range b.items {
			if b.runs[i] == nil || it.bitExact != exact {
				continue // failed or already delivered at an earlier stage
			}
			group = append(group, b.runs[i])
			idx = append(idx, i)
		}
		for k, err := range sim.StepBatchHook(group, exact, hook) {
			if err != nil {
				i := idx[k]
				b.done[i] = true
				b.items[i].res <- itemResult{err: err}
				b.runs[i] = nil
			}
		}
	}

	f.dilate(br.LatencyNS, stageStart)

	stageDur := time.Since(stageStart)
	b.execNS += stageDur.Nanoseconds()
	if f.metrics != nil {
		f.metrics.ObserveExec(b.stage, stageDur)
	}
	for i, it := range b.items {
		if !b.done[i] && b.firstTraced(i) {
			f.itemSpan(it, b, "stage", d.id, b.stage, stageStart, stageDur, "")
		}
	}

	if b.stage < len(b.pl.shard.Stages)-1 {
		b.stage++
		f.forward(b.devs[b.stage], b)
		return
	}

	for i, it := range b.items {
		if b.runs[i] == nil {
			continue
		}
		lg := b.runs[i].Logits()
		b.done[i] = true
		it.res <- itemResult{
			logits: append([]int32(nil), lg.Data...),
			argmax: lg.ArgmaxInt()[0],
			info: BatchInfo{
				Device:         d.id,
				Size:           len(b.items),
				Replica:        b.replica,
				Requeues:       b.attempts,
				QueueWallNS:    b.started.Sub(it.enq).Nanoseconds(),
				SimLatencyNS:   b.simNS,
				SimPerSampleNS: b.simNS / float64(len(b.items)),
				SimEnergyPJ:    b.simPJ,
				Stages:         len(b.pl.shard.Stages),
				Path:           b.path,
			},
		}
		if f.metrics != nil {
			disp := dispatchOf(it)
			f.metrics.ObserveItemPhases(disp.Sub(it.enq), b.started.Sub(disp), time.Duration(b.execNS))
		}
	}
	if f.metrics != nil {
		f.metrics.ObserveBatch(len(b.items), b.simNS, b.simPJ)
	}
	b.e.est.Observe(len(b.items), time.Duration(b.execNS), f.parallelism(b))
}

// DeviceStat is a snapshot of one simulated device for /metrics.
type DeviceStat struct {
	ID        int
	Up        bool
	Queued    int
	Batches   int64
	SimBusyNS float64
	// EnergyPJ and Writes are the device's cumulative modeled energy and
	// busiest-cell write wear (energy.Meter, fed from the batch cost and
	// endurance models at each dispatch).
	EnergyPJ float64
	Writes   float64
}

// Stats snapshots every device. Negative counters would mean the
// queued++/queued-- pairing broke somewhere in the dispatch, stage-hop,
// or requeue paths, so Stats panics on them — an internal invariant,
// per the panic-vs-error boundary in docs/ARCHITECTURE.md.
func (f *Fleet) Stats() []DeviceStat {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DeviceStat, len(f.devices))
	for i, d := range f.devices {
		if d.queued < 0 {
			panic(fmt.Sprintf("serve: device %d queued count %d < 0", d.id, d.queued))
		}
		out[i] = DeviceStat{
			ID: d.id, Up: !d.dead, Queued: d.queued, Batches: d.batches, SimBusyNS: d.busyNS,
			EnergyPJ: d.meter.EnergyPJ, Writes: d.meter.Writes,
		}
	}
	return out
}

// Pending returns the number of batches admitted but not yet retired
// (including sharded batches between stage hops and failover requeues in
// flight). A drained fleet reports 0.
func (f *Fleet) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pending
}

// Close stops intake, fails late submits, waits for every admitted batch
// (including in-flight pipeline hops and requeues) to retire, then stops
// the device goroutines. Call after all batchers are closed; taking the
// write lock waits out any Submit still blocked on a full device queue.
func (f *Fleet) Close() { _ = f.CloseCtx(context.Background()) }

// CloseCtx is Close with a bound: when ctx ends before the pipeline
// drains, it returns an error with the in-flight count instead of
// waiting forever. The device goroutines and their channels are left
// alive in that case — closing channels under in-flight stage hops
// would panic the hop — which leaks them, but CloseCtx timing out means
// the process is being torn down anyway.
func (f *Fleet) CloseCtx(ctx context.Context) error {
	f.closeMu.Lock()
	if f.closed {
		f.closeMu.Unlock()
		return nil
	}
	f.closed = true
	f.closeMu.Unlock()

	// The cond has no native context support: a watcher broadcasts it
	// when ctx ends so the wait below can observe the expiry.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			f.mu.Lock()
			f.cond.Broadcast()
			f.mu.Unlock()
		case <-watchDone:
		}
	}()

	// Device loops stay alive until the pipeline is empty: a sharded
	// batch between stages (or a batch being requeued off a dead device)
	// holds pending > 0, so its next hop still finds an open channel.
	f.mu.Lock()
	for f.pending > 0 && ctx.Err() == nil {
		f.cond.Wait()
	}
	stranded := f.pending
	f.mu.Unlock()
	if stranded > 0 {
		return fmt.Errorf("serve: drain timed out with %d batches in flight", stranded)
	}

	for _, d := range f.devices {
		close(d.ch)
	}
	f.wg.Wait()
	return nil
}
