package serve

import (
	"sync"
	"time"

	"rtmap/internal/model"
	"rtmap/internal/sim"
)

// BatchInfo is the per-batch accounting attached to every result: which
// simulated device ran the batch, how large it was, how long the item
// waited in queues (wall time), and what the batch cost on the simulated
// hardware (sim.AnalyzeBatch pipelined-load pricing).
type BatchInfo struct {
	Device int `json:"device"`
	Size   int `json:"size"`
	// QueueWallNS is the wall-clock time from enqueue to execution start.
	QueueWallNS int64 `json:"queue_wall_ns"`
	// SimLatencyNS is the simulated device latency of the whole batch;
	// SimPerSampleNS is the amortized per-sample share.
	SimLatencyNS   float64 `json:"sim_latency_ns"`
	SimPerSampleNS float64 `json:"sim_per_sample_ns"`
	SimEnergyPJ    float64 `json:"sim_energy_pj"`
}

// apBatch is one dispatched unit of work: a model entry plus the items
// coalesced for it.
type apBatch struct {
	e     *entry
	items []*item
}

// device is one simulated AP array pool. Batches assigned to it execute
// serially on its goroutine (genuine queueing), and its simulated clock
// accumulates the priced latency of everything it ran.
type device struct {
	id      int
	ch      chan *apBatch
	queued  int     // guarded by Fleet.mu
	busyNS  float64 // guarded by Fleet.mu
	batches int64   // guarded by Fleet.mu
}

// Fleet is the device-fleet scheduler: N simulated AP devices with
// per-device queues. Submit places a batch on the device with the fewest
// outstanding batches (ties to the least simulated busy time), blocking
// when that device's queue is full.
type Fleet struct {
	metrics *Metrics

	mu      sync.Mutex // guards device counters
	devices []*device
	wg      sync.WaitGroup

	// closeMu orders Submit's channel sends against Close closing the
	// device channels: senders hold the read side across the send, so
	// Close (write side) cannot close a channel under an in-flight send.
	closeMu sync.RWMutex
	closed  bool
}

// NewFleet starts n device goroutines with per-device queues of depth
// queueCap.
func NewFleet(n, queueCap int, m *Metrics) *Fleet {
	if n <= 0 {
		n = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	f := &Fleet{metrics: m}
	for i := 0; i < n; i++ {
		d := &device{id: i, ch: make(chan *apBatch, queueCap)}
		f.devices = append(f.devices, d)
		f.wg.Add(1)
		go f.run(d)
	}
	return f
}

// Submit schedules the batch on the least-loaded device. Batches
// arriving after Close (an evicted model's batcher draining late) fail
// their items with errClosed instead of executing.
func (f *Fleet) Submit(b *apBatch) {
	f.closeMu.RLock()
	defer f.closeMu.RUnlock()
	if f.closed {
		fail(b, errClosed)
		return
	}
	f.mu.Lock()
	d := f.devices[0]
	for _, c := range f.devices[1:] {
		// Fewest outstanding batches; ties go to the device with the
		// least accumulated simulated busy time, so the simulated load
		// spreads across the fleet even when real execution outpaces
		// arrivals and queues never form.
		if c.queued < d.queued || (c.queued == d.queued && c.busyNS < d.busyNS) {
			d = c
		}
	}
	d.queued++
	f.mu.Unlock()
	d.ch <- b
}

func fail(b *apBatch, err error) {
	for _, it := range b.items {
		it.res <- itemResult{err: err}
	}
}

func (f *Fleet) run(d *device) {
	defer f.wg.Done()
	for b := range d.ch {
		f.execBatch(d, b)
		f.mu.Lock()
		d.queued--
		f.mu.Unlock()
	}
}

// execBatch runs every item of the batch on this device and prices the
// batch on the simulated hardware. Bit-exact items replay the compiled AP
// programs (sim.ForwardAP); reference items run the quantized software
// reference — both paths produce identical logits.
func (f *Fleet) execBatch(d *device, b *apBatch) {
	start := time.Now()
	br := sim.AnalyzeBatch(b.e.report, len(b.items))
	f.mu.Lock()
	d.busyNS += br.LatencyNS
	d.batches++
	f.mu.Unlock()

	for _, it := range b.items {
		res := itemResult{info: BatchInfo{
			Device:         d.id,
			Size:           len(b.items),
			QueueWallNS:    start.Sub(it.enq).Nanoseconds(),
			SimLatencyNS:   br.LatencyNS,
			SimPerSampleNS: br.PerSampleNS(),
			SimEnergyPJ:    br.EnergyPJ,
		}}
		tr, err := forwardItem(b.e, it)
		if err != nil {
			res.err = err
		} else {
			lg := tr.Logits()
			res.logits = append([]int32(nil), lg.Data...)
			res.argmax = lg.ArgmaxInt()[0]
		}
		it.res <- res
	}
	if f.metrics != nil {
		f.metrics.ObserveBatch(len(b.items), br.LatencyNS, br.EnergyPJ)
	}
}

func forwardItem(e *entry, it *item) (*model.IntTrace, error) {
	if it.bitExact {
		return sim.ForwardAP(e.comp, it.in)
	}
	return e.net.ForwardInt(it.in)
}

// DeviceStat is a snapshot of one simulated device for /metrics.
type DeviceStat struct {
	ID        int
	Queued    int
	Batches   int64
	SimBusyNS float64
}

// Stats snapshots every device.
func (f *Fleet) Stats() []DeviceStat {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DeviceStat, len(f.devices))
	for i, d := range f.devices {
		out[i] = DeviceStat{ID: d.id, Queued: d.queued, Batches: d.batches, SimBusyNS: d.busyNS}
	}
	return out
}

// Close stops intake, fails late submits, and waits for every device to
// drain its queue. Call after all batchers are closed; taking the write
// lock waits out any Submit still blocked on a full device queue.
func (f *Fleet) Close() {
	f.closeMu.Lock()
	if f.closed {
		f.closeMu.Unlock()
		return
	}
	f.closed = true
	for _, d := range f.devices {
		close(d.ch)
	}
	f.closeMu.Unlock()
	f.wg.Wait()
}
