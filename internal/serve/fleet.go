package serve

import (
	"sort"
	"sync"
	"time"

	"rtmap/internal/model"
	"rtmap/internal/sim"
)

// BatchInfo is the per-batch accounting attached to every result: which
// simulated device ran the batch, how large it was, how long the item
// waited in queues (wall time), and what the batch cost on the simulated
// hardware (sim.AnalyzeBatch pipelined-load pricing; for sharded models,
// the sum of the per-stage sim.AnalyzeStageBatch prices).
type BatchInfo struct {
	Device int `json:"device"`
	Size   int `json:"size"`
	// QueueWallNS is the wall-clock time from enqueue to execution start
	// (for sharded models: to the start of the first stage).
	QueueWallNS int64 `json:"queue_wall_ns"`
	// SimLatencyNS is the simulated device latency of the whole batch;
	// SimPerSampleNS is the amortized per-sample share.
	SimLatencyNS   float64 `json:"sim_latency_ns"`
	SimPerSampleNS float64 `json:"sim_per_sample_ns"`
	SimEnergyPJ    float64 `json:"sim_energy_pj"`
	// Stages and Path report pipeline-sharded execution: the stage count
	// and the device each stage ran on. Absent for unsharded models.
	Stages int   `json:"stages,omitempty"`
	Path   []int `json:"path,omitempty"`
}

// apBatch is one dispatched unit of work: a model entry plus the items
// coalesced for it. Sharded batches traverse the fleet stage by stage,
// carrying their per-item pipeline state.
type apBatch struct {
	e     *entry
	items []*item

	// Pipeline state (sharded entries only).
	stage   int
	runs    []*sim.ShardRun
	path    []int
	simNS   float64
	simPJ   float64
	started time.Time // execution start of stage 0
}

// device is one simulated AP array pool. Batches assigned to it execute
// serially on its goroutine (genuine queueing), and its simulated clock
// accumulates the priced latency of everything it ran.
type device struct {
	id      int
	ch      chan *apBatch
	queued  int     // guarded by Fleet.mu
	busyNS  float64 // guarded by Fleet.mu
	batches int64   // guarded by Fleet.mu
}

// Fleet is the device-fleet scheduler: N simulated AP devices with
// per-device queues. Submit places a batch on the device with the fewest
// outstanding batches (ties to the least simulated busy time), blocking
// when that device's queue is full — except for sharded models, whose
// batches go to the device their first stage is pinned to and then hop
// device to device through the stage pipeline.
type Fleet struct {
	metrics *Metrics

	mu      sync.Mutex // guards device counters and pending
	cond    *sync.Cond // signalled when pending drops
	pending int        // batches admitted but not yet retired
	devices []*device
	wg      sync.WaitGroup

	// closeMu orders Submit's channel sends against Close closing the
	// device channels: senders hold the read side across the send, so
	// Close (write side) cannot observe a drained fleet under an
	// in-flight send.
	closeMu sync.RWMutex
	closed  bool
}

// NewFleet starts n device goroutines with per-device queues of depth
// queueCap.
func NewFleet(n, queueCap int, m *Metrics) *Fleet {
	if n <= 0 {
		n = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	f := &Fleet{metrics: m}
	f.cond = sync.NewCond(&f.mu)
	for i := 0; i < n; i++ {
		d := &device{id: i, ch: make(chan *apBatch, queueCap)}
		f.devices = append(f.devices, d)
		f.wg.Add(1)
		go f.run(d)
	}
	return f
}

// NumDevices returns the fleet size.
func (f *Fleet) NumDevices() int { return len(f.devices) }

// PinStages assigns k pipeline stages to k distinct devices, least
// loaded first (requires k <= NumDevices; the registry clamps). Distinct
// devices keep each model's stage graph acyclic, so a stage never
// forwards to a device earlier in its own pipeline.
func (f *Fleet) PinStages(k int) []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	order := make([]int, len(f.devices))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := f.devices[order[a]], f.devices[order[b]]
		if da.queued != db.queued {
			return da.queued < db.queued
		}
		return da.busyNS < db.busyNS
	})
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

// Submit schedules the batch: sharded models go to their stage-0 pinned
// device, everything else to the least-loaded device. Batches arriving
// after Close (an evicted model's batcher draining late) fail their
// items with errClosed instead of executing.
func (f *Fleet) Submit(b *apBatch) {
	f.closeMu.RLock()
	defer f.closeMu.RUnlock()
	if f.closed {
		fail(b, errClosed)
		return
	}
	f.mu.Lock()
	d := f.devices[0]
	if b.e.shard != nil {
		d = f.devices[b.e.stageDevs[0]]
	} else {
		for _, c := range f.devices[1:] {
			// Fewest outstanding batches; ties go to the device with the
			// least accumulated simulated busy time, so the simulated load
			// spreads across the fleet even when real execution outpaces
			// arrivals and queues never form.
			if c.queued < d.queued || (c.queued == d.queued && c.busyNS < d.busyNS) {
				d = c
			}
		}
	}
	d.queued++
	f.pending++
	f.mu.Unlock()
	d.ch <- b
}

// forward hands a sharded batch to its next stage's device. The pending
// count is bumped before this batch's current execution retires, so the
// fleet never looks drained with a hop in flight; the send runs on its
// own goroutine so a device goroutine never blocks on another device's
// full queue (queues of different models may point at each other).
func (f *Fleet) forward(dev int, b *apBatch) {
	d := f.devices[dev]
	f.mu.Lock()
	d.queued++
	f.pending++
	f.mu.Unlock()
	go func() { d.ch <- b }()
}

func fail(b *apBatch, err error) {
	for _, it := range b.items {
		it.res <- itemResult{err: err}
	}
}

func (f *Fleet) run(d *device) {
	defer f.wg.Done()
	for b := range d.ch {
		f.execBatch(d, b)
		f.mu.Lock()
		d.queued--
		f.pending--
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}

// execBatch runs every item of the batch on this device and prices the
// batch on the simulated hardware. Bit-exact items replay the compiled AP
// programs (sim.ForwardAP); reference items run the quantized software
// reference — both paths produce identical logits.
func (f *Fleet) execBatch(d *device, b *apBatch) {
	if b.e.shard != nil {
		f.execStage(d, b)
		return
	}
	start := time.Now()
	br := sim.AnalyzeBatch(b.e.report, len(b.items))
	f.mu.Lock()
	d.busyNS += br.LatencyNS
	d.batches++
	f.mu.Unlock()

	for _, it := range b.items {
		res := itemResult{info: BatchInfo{
			Device:         d.id,
			Size:           len(b.items),
			QueueWallNS:    start.Sub(it.enq).Nanoseconds(),
			SimLatencyNS:   br.LatencyNS,
			SimPerSampleNS: br.PerSampleNS(),
			SimEnergyPJ:    br.EnergyPJ,
		}}
		tr, err := forwardItem(b.e, it)
		if err != nil {
			res.err = err
		} else {
			lg := tr.Logits()
			res.logits = append([]int32(nil), lg.Data...)
			res.argmax = lg.ArgmaxInt()[0]
		}
		it.res <- res
	}
	if f.metrics != nil {
		f.metrics.ObserveBatch(len(b.items), br.LatencyNS, br.EnergyPJ)
	}
}

// execStage runs one pipeline stage of a sharded batch on this device:
// every item advances one stage of its ShardRun, the stage is priced by
// the pipeline cost model, and the batch either hops to the next stage's
// device or delivers its results.
func (f *Fleet) execStage(d *device, b *apBatch) {
	if b.stage == 0 {
		b.started = time.Now()
		b.runs = make([]*sim.ShardRun, len(b.items))
		for i, it := range b.items {
			run, err := sim.NewShardRun(b.e.comp, b.e.shard, it.in)
			if err != nil {
				it.res <- itemResult{err: err}
				continue
			}
			b.runs[i] = run
		}
	}

	br := sim.AnalyzeStageBatch(b.e.pipeline, b.stage, len(b.items))
	f.mu.Lock()
	d.busyNS += br.LatencyNS
	d.batches++
	f.mu.Unlock()
	b.simNS += br.LatencyNS
	b.simPJ += br.EnergyPJ
	b.path = append(b.path, d.id)

	for i, it := range b.items {
		if b.runs[i] == nil {
			continue // failed at an earlier stage; result already delivered
		}
		if err := b.runs[i].Step(it.bitExact); err != nil {
			it.res <- itemResult{err: err}
			b.runs[i] = nil
		}
	}

	if b.stage < len(b.e.shard.Stages)-1 {
		b.stage++
		f.forward(b.e.stageDevs[b.stage], b)
		return
	}

	for i, it := range b.items {
		if b.runs[i] == nil {
			continue
		}
		lg := b.runs[i].Logits()
		it.res <- itemResult{
			logits: append([]int32(nil), lg.Data...),
			argmax: lg.ArgmaxInt()[0],
			info: BatchInfo{
				Device:         d.id,
				Size:           len(b.items),
				QueueWallNS:    b.started.Sub(it.enq).Nanoseconds(),
				SimLatencyNS:   b.simNS,
				SimPerSampleNS: b.simNS / float64(len(b.items)),
				SimEnergyPJ:    b.simPJ,
				Stages:         len(b.e.shard.Stages),
				Path:           b.path,
			},
		}
	}
	if f.metrics != nil {
		f.metrics.ObserveBatch(len(b.items), b.simNS, b.simPJ)
	}
}

func forwardItem(e *entry, it *item) (*model.IntTrace, error) {
	if it.bitExact {
		return sim.ForwardAP(e.comp, it.in)
	}
	return e.net.ForwardInt(it.in)
}

// DeviceStat is a snapshot of one simulated device for /metrics.
type DeviceStat struct {
	ID        int
	Queued    int
	Batches   int64
	SimBusyNS float64
}

// Stats snapshots every device.
func (f *Fleet) Stats() []DeviceStat {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DeviceStat, len(f.devices))
	for i, d := range f.devices {
		out[i] = DeviceStat{ID: d.id, Queued: d.queued, Batches: d.batches, SimBusyNS: d.busyNS}
	}
	return out
}

// Close stops intake, fails late submits, waits for every admitted batch
// (including in-flight pipeline hops) to retire, then stops the device
// goroutines. Call after all batchers are closed; taking the write lock
// waits out any Submit still blocked on a full device queue.
func (f *Fleet) Close() {
	f.closeMu.Lock()
	if f.closed {
		f.closeMu.Unlock()
		return
	}
	f.closed = true
	f.closeMu.Unlock()

	// Device loops stay alive until the pipeline is empty: a sharded
	// batch between stages holds pending > 0, so its next hop still finds
	// an open channel.
	f.mu.Lock()
	for f.pending > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()

	for _, d := range f.devices {
		close(d.ch)
	}
	f.wg.Wait()
}
