package serve

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request wall-time
// histogram — Prometheus classic-histogram layout, le="+Inf" implied.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Metrics accumulates the serving counters exposed at /metrics in
// Prometheus text exposition format. Hand-rolled: the module carries no
// dependencies, and the format is a few lines of text.
type Metrics struct {
	mu sync.Mutex

	requests   int64 // HTTP inference requests
	inferences int64 // individual samples served
	errors     int64 // failed requests

	batches      int64
	batchSizeSum int64
	simLatencyNS float64
	simEnergyPJ  float64

	requeues       int64 // batches requeued off dead devices
	deviceFailures int64 // devices marked dead

	planVerifyFails int64 // model admissions rejected by the plan verifier

	latCounts []int64 // cumulative-style on render; stored per-bucket
	latSum    float64
	latCount  int64
}

func NewMetrics() *Metrics {
	return &Metrics{latCounts: make([]int64, len(latencyBuckets)+1)}
}

// ObserveRequest records one finished /v1/infer request.
func (m *Metrics) ObserveRequest(wall time.Duration, samples int, failed bool) {
	s := wall.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	m.inferences += int64(samples)
	if failed {
		m.errors++
	}
	i := len(latencyBuckets)
	for j, ub := range latencyBuckets {
		if s <= ub {
			i = j
			break
		}
	}
	m.latCounts[i]++
	m.latSum += s
	m.latCount++
}

// ObserveBatch records one batch dispatched to a device.
func (m *Metrics) ObserveBatch(size int, simNS, simPJ float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchSizeSum += int64(size)
	m.simLatencyNS += simNS
	m.simEnergyPJ += simPJ
}

// ObserveRequeue records one batch requeued off a dead device onto a
// surviving replica.
func (m *Metrics) ObserveRequeue() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requeues++
}

// ObserveDeviceFailure records one device marked dead.
func (m *Metrics) ObserveDeviceFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deviceFailures++
}

// ObservePlanVerifyFailure records one model admission rejected because
// its compiled plans failed static verification.
func (m *Metrics) ObservePlanVerifyFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.planVerifyFails++
}

// WritePrometheus renders the counters. extra, when non-nil, appends
// caller-owned series (gauges that live outside Metrics).
func (m *Metrics) WritePrometheus(w io.Writer, extra func(io.Writer)) {
	m.mu.Lock()
	snap := struct {
		requests, inferences, errors, batches, batchSizeSum int64
		requeues, deviceFailures, planVerifyFails           int64
		simLatencyNS, simEnergyPJ                           float64
		latSum                                              float64
		latCount                                            int64
	}{m.requests, m.inferences, m.errors, m.batches, m.batchSizeSum,
		m.requeues, m.deviceFailures, m.planVerifyFails,
		m.simLatencyNS, m.simEnergyPJ, m.latSum, m.latCount}
	counts := append([]int64(nil), m.latCounts...)
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE rtmap_requests_total counter\nrtmap_requests_total %d\n", snap.requests)
	fmt.Fprintf(w, "# TYPE rtmap_inferences_total counter\nrtmap_inferences_total %d\n", snap.inferences)
	fmt.Fprintf(w, "# TYPE rtmap_request_errors_total counter\nrtmap_request_errors_total %d\n", snap.errors)
	fmt.Fprintf(w, "# TYPE rtmap_batches_total counter\nrtmap_batches_total %d\n", snap.batches)
	fmt.Fprintf(w, "# TYPE rtmap_batched_samples_total counter\nrtmap_batched_samples_total %d\n", snap.batchSizeSum)
	fmt.Fprintf(w, "# TYPE rtmap_sim_device_ns_total counter\nrtmap_sim_device_ns_total %g\n", snap.simLatencyNS)
	fmt.Fprintf(w, "# TYPE rtmap_sim_energy_pj_total counter\nrtmap_sim_energy_pj_total %g\n", snap.simEnergyPJ)
	fmt.Fprintf(w, "# TYPE rtmap_requeued_batches_total counter\nrtmap_requeued_batches_total %d\n", snap.requeues)
	fmt.Fprintf(w, "# TYPE rtmap_device_failures_total counter\nrtmap_device_failures_total %d\n", snap.deviceFailures)
	fmt.Fprintf(w, "# TYPE rtmap_plan_verify_failures_total counter\nrtmap_plan_verify_failures_total %d\n", snap.planVerifyFails)

	fmt.Fprintf(w, "# TYPE rtmap_request_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "rtmap_request_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), cum)
	}
	cum += counts[len(latencyBuckets)]
	fmt.Fprintf(w, "rtmap_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "rtmap_request_seconds_sum %g\n", snap.latSum)
	fmt.Fprintf(w, "rtmap_request_seconds_count %d\n", snap.latCount)

	if extra != nil {
		extra(w)
	}
}
