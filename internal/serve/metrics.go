package serve

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rtmap/internal/dispatch"
)

// latencyBuckets are the upper bounds (seconds) of every latency
// histogram — Prometheus classic-histogram layout, le="+Inf" implied.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// hist is one classic Prometheus histogram over latencyBuckets.
// Observations are stored per-bucket and accumulated into cumulative
// counts at render time; the +Inf line is cross-checked against the
// observation count so a storage/render mismatch can never ship a
// histogram whose buckets disagree with its _count.
type hist struct {
	counts []int64 // per-bucket; counts[len(latencyBuckets)] is the overflow
	sum    float64
	count  int64
}

func newHist() hist {
	return hist{counts: make([]int64, len(latencyBuckets)+1)}
}

// observe records one measurement in seconds.
func (h *hist) observe(s float64) {
	i := len(latencyBuckets)
	for j, ub := range latencyBuckets {
		if s <= ub {
			i = j
			break
		}
	}
	h.counts[i]++
	h.sum += s
	h.count++
}

// clone snapshots the histogram for render outside the metrics lock.
func (h *hist) clone() hist {
	return hist{counts: append([]int64(nil), h.counts...), sum: h.sum, count: h.count}
}

// write renders the histogram's bucket/sum/count series. name is the
// metric family; labels, when non-empty, is a comma-terminated label
// prefix (e.g. `phase="wait",`) composed with the le label. The
// cumulative +Inf count must equal the observation count — a mismatch
// means the bucket accounting broke, an internal invariant per the
// panic-vs-error boundary in docs/ARCHITECTURE.md.
func (h *hist) write(w io.Writer, name, labels string) {
	var cum int64
	for i, ub := range latencyBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, fmt.Sprintf("%g", ub), cum)
	}
	cum += h.counts[len(latencyBuckets)]
	if cum != h.count {
		panic(fmt.Sprintf("serve: histogram %s{%s} +Inf count %d != observation count %d",
			name, labels, cum, h.count))
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels[:len(labels)-1], h.sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels[:len(labels)-1], h.count)
}

// phaseNames orders the request-phase decomposition: wait (enqueue to
// batch dispatch), queue (dispatch to execution start), exec (execution
// proper; summed over stages for sharded models).
var phaseNames = [...]string{"wait", "queue", "exec"}

// SLOOutcome classifies one /v1/infer request for the per-class SLO
// accounting: every submitted request lands in exactly one outcome, so
// the per-class outcome counts always sum to the submitted count — the
// invariant TestSLOAccountingAudit holds the server to.
type SLOOutcome int

const (
	// OutcomeAccepted: the request was served (HTTP 200).
	OutcomeAccepted SLOOutcome = iota
	// OutcomeShed: admission control refused it (HTTP 429).
	OutcomeShed
	// OutcomeExpired: admitted, but its deadline passed before execution
	// and it was cancelled (HTTP 503, kind "expired").
	OutcomeExpired
	// OutcomeFailed: any other error (4xx/5xx).
	OutcomeFailed

	numOutcomes = 4
)

// outcomeNames index by SLOOutcome for the exposition labels.
var outcomeNames = [numOutcomes]string{"accepted", "shed", "expired", "failed"}

// classIndex clamps a class to a valid metrics row (classes come from
// ParseClass, but the accounting must never index out of bounds).
func classIndex(c dispatch.Class) int {
	if c < 0 || int(c) >= dispatch.NumClasses {
		return int(dispatch.ClassStandard)
	}
	return int(c)
}

// className returns the exposition label of a class row.
func className(i int) string { return dispatch.Class(i).String() }

// Metrics accumulates the serving counters exposed at /metrics in
// Prometheus text exposition format. Hand-rolled: the module carries no
// dependencies, and the format is a few lines of text.
type Metrics struct {
	mu sync.Mutex

	requests   int64 // HTTP inference requests
	inferences int64 // individual samples served
	errors     int64 // failed requests

	batches      int64
	batchSizeSum int64
	simLatencyNS float64
	simEnergyPJ  float64

	requeues       int64 // batches requeued off dead devices
	deviceFailures int64 // devices marked dead

	planVerifyFails int64 // model admissions rejected by the plan verifier

	dataflowVerifyFails int64 // admissions rejected by the dataflow verifier
	certHits            int64 // admissions proved by a stored plan certificate
	certMisses          int64 // admissions that paid a full dataflow verification

	// slo is the per-class request ledger, [class][outcome]; deadline
	// counts met/missed results among accepted requests that carried a
	// deadline. scaleUps/scaleDowns count autoscaler resizes.
	slo            [dispatch.NumClasses][numOutcomes]int64
	deadlineMet    [dispatch.NumClasses]int64
	deadlineMissed [dispatch.NumClasses]int64
	scaleUps       int64
	scaleDowns     int64

	lat hist // whole-request wall time

	// phases decomposes request wall time per delivered item, indexed
	// like phaseNames; stageExec attributes execution wall time to
	// pipeline stages (index 0 doubles as the unsharded exec histogram),
	// grown on demand to the deepest stage observed.
	phases    [len(phaseNames)]hist
	stageExec []hist
}

func NewMetrics() *Metrics {
	m := &Metrics{lat: newHist()}
	for i := range m.phases {
		m.phases[i] = newHist()
	}
	return m
}

// ObserveRequest records one finished /v1/infer request.
func (m *Metrics) ObserveRequest(wall time.Duration, samples int, failed bool) {
	s := wall.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	m.inferences += int64(samples)
	if failed {
		m.errors++
	}
	m.lat.observe(s)
}

// ObserveItemPhases records one delivered item's wall-time
// decomposition: batcher wait, fleet queue, and execution (summed over
// pipeline stages for sharded models).
func (m *Metrics) ObserveItemPhases(wait, queue, exec time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.phases[0].observe(wait.Seconds())
	m.phases[1].observe(queue.Seconds())
	m.phases[2].observe(exec.Seconds())
}

// ObserveExec attributes one batch's execution wall time to a pipeline
// stage (stage 0 for unsharded dispatch).
func (m *Metrics) ObserveExec(stage int, wall time.Duration) {
	if stage < 0 {
		stage = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.stageExec) <= stage {
		m.stageExec = append(m.stageExec, newHist())
	}
	m.stageExec[stage].observe(wall.Seconds())
}

// ObserveBatch records one batch dispatched to a device.
func (m *Metrics) ObserveBatch(size int, simNS, simPJ float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchSizeSum += int64(size)
	m.simLatencyNS += simNS
	m.simEnergyPJ += simPJ
}

// ObserveRequeue records one batch requeued off a dead device onto a
// surviving replica.
func (m *Metrics) ObserveRequeue() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requeues++
}

// ObserveDeviceFailure records one device marked dead.
func (m *Metrics) ObserveDeviceFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deviceFailures++
}

// ObservePlanVerifyFailure records one model admission rejected because
// its compiled plans failed static verification.
func (m *Metrics) ObservePlanVerifyFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.planVerifyFails++
}

// ObserveDataflowVerifyFailure records one model admission rejected
// because the whole-artifact dataflow verifier refuted it.
func (m *Metrics) ObserveDataflowVerifyFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dataflowVerifyFails++
}

// ObserveCertificate records one clean dataflow admission: a hit means
// a stored plan certificate was trusted in place of re-verification, a
// miss means the artifact was verified from scratch (and certified).
func (m *Metrics) ObserveCertificate(hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.certHits++
	} else {
		m.certMisses++
	}
}

// ObserveSLO records one finished request in the per-class ledger.
// Callers classify every request exactly once.
func (m *Metrics) ObserveSLO(class dispatch.Class, outcome SLOOutcome) {
	if outcome < 0 || int(outcome) >= numOutcomes {
		outcome = OutcomeFailed
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.slo[classIndex(class)][outcome]++
}

// ObserveDeadline records whether an accepted, deadline-bearing request
// was served within its budget.
func (m *Metrics) ObserveDeadline(class dispatch.Class, met bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if met {
		m.deadlineMet[classIndex(class)]++
	} else {
		m.deadlineMissed[classIndex(class)]++
	}
}

// ObserveScale records one applied autoscaler resize.
func (m *Metrics) ObserveScale(up bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if up {
		m.scaleUps++
	} else {
		m.scaleDowns++
	}
}

// WritePrometheus renders the counters. extra, when non-nil, appends
// caller-owned series (gauges that live outside Metrics).
func (m *Metrics) WritePrometheus(w io.Writer, extra func(io.Writer)) {
	m.mu.Lock()
	snap := struct {
		requests, inferences, errors, batches, batchSizeSum int64
		requeues, deviceFailures, planVerifyFails           int64
		dataflowVerifyFails, certHits, certMisses           int64
		simLatencyNS, simEnergyPJ                           float64
	}{m.requests, m.inferences, m.errors, m.batches, m.batchSizeSum,
		m.requeues, m.deviceFailures, m.planVerifyFails,
		m.dataflowVerifyFails, m.certHits, m.certMisses,
		m.simLatencyNS, m.simEnergyPJ}
	slo := m.slo
	deadlineMet, deadlineMissed := m.deadlineMet, m.deadlineMissed
	scaleUps, scaleDowns := m.scaleUps, m.scaleDowns
	lat := m.lat.clone()
	var phases [len(phaseNames)]hist
	for i := range m.phases {
		phases[i] = m.phases[i].clone()
	}
	stageExec := make([]hist, len(m.stageExec))
	for i := range m.stageExec {
		stageExec[i] = m.stageExec[i].clone()
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE rtmap_requests_total counter\nrtmap_requests_total %d\n", snap.requests)
	fmt.Fprintf(w, "# TYPE rtmap_inferences_total counter\nrtmap_inferences_total %d\n", snap.inferences)
	fmt.Fprintf(w, "# TYPE rtmap_request_errors_total counter\nrtmap_request_errors_total %d\n", snap.errors)
	fmt.Fprintf(w, "# TYPE rtmap_batches_total counter\nrtmap_batches_total %d\n", snap.batches)
	fmt.Fprintf(w, "# TYPE rtmap_batched_samples_total counter\nrtmap_batched_samples_total %d\n", snap.batchSizeSum)
	fmt.Fprintf(w, "# TYPE rtmap_sim_device_ns_total counter\nrtmap_sim_device_ns_total %g\n", snap.simLatencyNS)
	fmt.Fprintf(w, "# TYPE rtmap_sim_energy_pj_total counter\nrtmap_sim_energy_pj_total %g\n", snap.simEnergyPJ)
	fmt.Fprintf(w, "# TYPE rtmap_requeued_batches_total counter\nrtmap_requeued_batches_total %d\n", snap.requeues)
	fmt.Fprintf(w, "# TYPE rtmap_device_failures_total counter\nrtmap_device_failures_total %d\n", snap.deviceFailures)
	fmt.Fprintf(w, "# TYPE rtmap_plan_verify_failures_total counter\nrtmap_plan_verify_failures_total %d\n", snap.planVerifyFails)
	fmt.Fprintf(w, "# TYPE rtmap_dataflow_verify_failures_total counter\nrtmap_dataflow_verify_failures_total %d\n", snap.dataflowVerifyFails)
	fmt.Fprintf(w, "# TYPE rtmap_certificate_hits_total counter\nrtmap_certificate_hits_total %d\n", snap.certHits)
	fmt.Fprintf(w, "# TYPE rtmap_certificate_misses_total counter\nrtmap_certificate_misses_total %d\n", snap.certMisses)

	// The SLO ledger emits every (class, outcome) cell — zeros included —
	// so audits can assert exact equalities without guessing at absent
	// series, and submitted is derived from the same snapshot so the
	// accounting identity (sum of outcomes == submitted) holds exactly.
	fmt.Fprintf(w, "# TYPE rtmap_slo_requests_total counter\n")
	for c := range slo {
		for o, n := range slo[c] {
			fmt.Fprintf(w, "rtmap_slo_requests_total{class=%q,outcome=%q} %d\n",
				className(c), outcomeNames[o], n)
		}
	}
	fmt.Fprintf(w, "# TYPE rtmap_slo_submitted_total counter\n")
	for c := range slo {
		var sum int64
		for _, n := range slo[c] {
			sum += n
		}
		fmt.Fprintf(w, "rtmap_slo_submitted_total{class=%q} %d\n", className(c), sum)
	}
	fmt.Fprintf(w, "# TYPE rtmap_slo_deadline_total counter\n")
	for c := range deadlineMet {
		fmt.Fprintf(w, "rtmap_slo_deadline_total{class=%q,result=\"met\"} %d\n", className(c), deadlineMet[c])
		fmt.Fprintf(w, "rtmap_slo_deadline_total{class=%q,result=\"missed\"} %d\n", className(c), deadlineMissed[c])
	}
	fmt.Fprintf(w, "# TYPE rtmap_scaler_decisions_total counter\n")
	fmt.Fprintf(w, "rtmap_scaler_decisions_total{direction=\"up\"} %d\n", scaleUps)
	fmt.Fprintf(w, "rtmap_scaler_decisions_total{direction=\"down\"} %d\n", scaleDowns)

	fmt.Fprintf(w, "# TYPE rtmap_request_seconds histogram\n")
	lat.write(w, "rtmap_request_seconds", "")

	fmt.Fprintf(w, "# TYPE rtmap_request_phase_seconds histogram\n")
	for i, name := range phaseNames {
		phases[i].write(w, "rtmap_request_phase_seconds", fmt.Sprintf("phase=%q,", name))
	}

	if len(stageExec) > 0 {
		fmt.Fprintf(w, "# TYPE rtmap_stage_exec_seconds histogram\n")
		for i := range stageExec {
			stageExec[i].write(w, "rtmap_stage_exec_seconds", fmt.Sprintf("stage=\"%d\",", i))
		}
	}

	if extra != nil {
		extra(w)
	}
}
