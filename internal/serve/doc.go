// Package serve is the traffic-facing layer of the stack: a concurrent
// HTTP/JSON inference server over the compiler and simulator. It keeps a
// registry of compiled models (compiled on demand through the
// content-addressed artifact cache, evicted by LRU), coalesces queued
// requests per model in an adaptive micro-batcher, and dispatches batches
// onto a simulated fleet of AP devices whose per-batch cost is priced by
// the internal/sim cost model. Inference itself runs either bit-exactly
// (sim.ForwardAP replays the emitted AP programs) or on the quantized
// software reference (model.ForwardInt) — the two are proved
// bit-identical, so the mode trades verification strength for speed, not
// accuracy.
//
// With Options.ShardStages > 1 the scheduler switches from whole-model
// dispatch to pipeline-parallel sharding: each admitted model is split
// into contiguous layer-range stages (core.Partition, balanced on the
// analytic per-layer latency), every stage is pinned to a distinct fleet
// device, and micro-batches stream device to device through the stages —
// so one large model occupies several simulated APs concurrently instead
// of serializing on one. Stage costs (including inter-stage activation
// transfers) are priced by sim.AnalyzePipeline, and the sharded
// functional path stays bit-identical to single-device execution.
//
// Options.Replicas > 1 adds the data-parallel ("wide") axis: every
// admitted model gets R device-disjoint placements, batches balance
// across live replicas, and the fault layer (FailDevice) requeues work
// from a dead device onto a surviving replica with bounded retries —
// re-execution is deterministic, so failover preserves bit-exact
// results. Per-replica health is exposed on /v1/models and /metrics.
// Admission failures a client can cause (a malformed model file behind
// Options.ModelFiles) are errors mapped to HTTP 400; panics are reserved
// for internal invariant violations (see docs/ARCHITECTURE.md).
package serve
