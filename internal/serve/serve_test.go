package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/workload"
)

func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Devices == 0 {
		opts.Devices = 2
	}
	if opts.MaxModels == 0 {
		opts.MaxModels = 3
	}
	opts.Logf = t.Logf
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postInfer(t *testing.T, url string, req InferRequest) (*InferResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return &out, resp
}

// TestInferBitExactEndToEnd is the subsystem's acceptance test: a batch
// of synthetic inputs posted to /v1/infer in bit-exact mode returns
// exactly the logits sim.ForwardAP (the rtmap.RunFunctional path)
// produces on the same compiled network and inputs.
func TestInferBitExactEndToEnd(t *testing.T) {
	_, ts := testServer(t, Options{MaxBatch: 4, Window: 5 * time.Millisecond})

	net := model.TinyCNN(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	comp, err := core.Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	inputs := workload.Inputs(net.InputShape, n, 42)

	req := InferRequest{Model: "tinycnn", BitExact: true}
	for _, in := range inputs {
		req.Inputs = append(req.Inputs, in.Data)
	}
	out, resp := postInfer(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if len(out.Results) != n {
		t.Fatalf("got %d results, want %d", len(out.Results), n)
	}
	for i, in := range inputs {
		tr, err := sim.ForwardAP(comp, in)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Logits()
		got := out.Results[i].Logits
		if len(got) != len(want.Data) {
			t.Fatalf("input %d: %d logits, want %d", i, len(got), len(want.Data))
		}
		for j := range got {
			if got[j] != want.Data[j] {
				t.Fatalf("input %d logit %d: served %d, RunFunctional %d", i, j, got[j], want.Data[j])
			}
		}
		if out.Results[i].Argmax != want.ArgmaxInt()[0] {
			t.Fatalf("input %d: argmax %d, want %d", i, out.Results[i].Argmax, want.ArgmaxInt()[0])
		}
		if out.Results[i].Batch.Size < 1 || out.Results[i].Batch.SimLatencyNS <= 0 {
			t.Fatalf("input %d: implausible batch accounting %+v", i, out.Results[i].Batch)
		}
	}
}

// The reference path must serve the same logits as the bit-exact path
// (the proved equivalence the mode switch relies on).
func TestReferenceModeMatchesBitExact(t *testing.T) {
	_, ts := testServer(t, Options{})
	sh, _ := ZooShape("tinyresnet")
	in := workload.InputData(sh, 2, 7)
	exact, resp := postInfer(t, ts.URL, InferRequest{Model: "tinyresnet", BitExact: true, Inputs: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	ref, resp := postInfer(t, ts.URL, InferRequest{Model: "tinyresnet", Inputs: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	for i := range exact.Results {
		if fmt.Sprint(exact.Results[i].Logits) != fmt.Sprint(ref.Results[i].Logits) {
			t.Fatalf("input %d: bit-exact %v != reference %v", i, exact.Results[i].Logits, ref.Results[i].Logits)
		}
	}
}

func TestInferValidation(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []struct {
		name string
		req  InferRequest
		code int
	}{
		{"unknown model", InferRequest{Model: "nope", Inputs: [][]float32{{1}}}, http.StatusNotFound},
		{"no inputs", InferRequest{Model: "tinycnn"}, http.StatusBadRequest},
		{"wrong length", InferRequest{Model: "tinycnn", Inputs: [][]float32{{1, 2, 3}}}, http.StatusBadRequest},
		{"bad bits", InferRequest{Model: "tinycnn", ActBits: 99, Inputs: [][]float32{make([]float32, 128)}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, resp := postInfer(t, ts.URL, tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
}

func TestHealthModelsMetrics(t *testing.T) {
	_, ts := testServer(t, Options{})
	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, readAll(t, resp)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/v1/models"); code != http.StatusOK || !strings.Contains(body, "tinycnn") {
		t.Fatalf("/v1/models: %d %q", code, body)
	}

	// One served request must show up in the counters.
	sh, _ := ZooShape("tinycnn")
	in := workload.InputData(sh, 1, 9)
	if _, resp := postInfer(t, ts.URL, InferRequest{Model: "tinycnn", Inputs: in}); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: HTTP %d", resp.StatusCode)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"rtmap_requests_total 1", "rtmap_inferences_total 1",
		"rtmap_batches_total", "rtmap_models_loaded 1",
		"rtmap_request_seconds_bucket", "rtmap_device_sim_busy_ns_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestConcurrentTraffic hammers the server from many goroutines across
// two models — the race-detector target for the batcher/fleet/registry
// interplay.
func TestConcurrentTraffic(t *testing.T) {
	_, ts := testServer(t, Options{Devices: 3, MaxBatch: 4, Window: time.Millisecond})
	models := []string{"tinycnn", "tinyresnet"}
	const workers = 8
	reqs := 6
	if testing.Short() {
		reqs = 3
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := models[w%len(models)]
			sh, _ := ZooShape(name)
			data := workload.InputData(sh, 2, uint64(w))
			for i := 0; i < reqs; i++ {
				out, resp := postInfer(t, ts.URL, InferRequest{Model: name, Inputs: data})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: HTTP %d", w, resp.StatusCode)
					return
				}
				if len(out.Results) != 2 {
					t.Errorf("worker %d: %d results", w, len(out.Results))
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRegistryEviction forces LRU thrash with MaxModels=1 and checks that
// requests for both models keep succeeding through re-admission.
func TestRegistryEviction(t *testing.T) {
	s, ts := testServer(t, Options{MaxModels: 1, MaxBatch: 2, Window: time.Millisecond})
	for i := 0; i < 3; i++ {
		for _, name := range []string{"tinycnn", "tinyresnet"} {
			sh, _ := ZooShape(name)
			data := workload.InputData(sh, 1, uint64(i))
			_, resp := postInfer(t, ts.URL, InferRequest{Model: name, Inputs: data})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d %s: HTTP %d", i, name, resp.StatusCode)
			}
		}
	}
	if n := s.Registry().Len(); n != 1 {
		t.Fatalf("registry holds %d entries, want 1 (LRU)", n)
	}
}
