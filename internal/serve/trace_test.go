package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rtmap/internal/trace"
	"rtmap/internal/workload"
)

// TestHistogramExpositionCumulative parses the rendered Prometheus text
// and checks every histogram family the hard way: bucket counts must be
// monotone nondecreasing in le order, the +Inf bucket must equal the
// series' _count, and _sum/_count lines must exist — the invariants a
// scraper's quantile math silently depends on.
func TestHistogramExpositionCumulative(t *testing.T) {
	m := NewMetrics()
	// Spread observations across buckets, including one past the largest
	// finite bound (overflow lands only in +Inf).
	for _, s := range []float64{0.0001, 0.0007, 0.003, 0.02, 0.3, 5.0} {
		m.ObserveRequest(time.Duration(s*float64(time.Second)), 2, false)
	}
	for i := 0; i < 4; i++ {
		m.ObserveItemPhases(time.Millisecond, 100*time.Microsecond, 3*time.Millisecond)
	}
	m.ObserveExec(0, 2*time.Millisecond)
	m.ObserveExec(1, 40*time.Millisecond)
	m.ObserveExec(1, 4*time.Second) // overflow in a labeled series

	var buf bytes.Buffer
	m.WritePrometheus(&buf, nil)

	bucketRE := regexp.MustCompile(`^(\w+)_bucket\{(.*)le="([^"]+)"\} (\d+)$`)
	countRE := regexp.MustCompile(`^(\w+)_count(?:\{(.+)\})? (\d+)$`)
	sumRE := regexp.MustCompile(`^(\w+)_sum(?:\{(.+)\})? `)

	type state struct {
		last    int64
		buckets int
		infVal  int64
		infSeen bool
	}
	series := map[string]*state{} // family + non-le labels
	counts := map[string]int64{}
	sums := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if mm := bucketRE.FindStringSubmatch(line); mm != nil {
			key := mm[1] + "{" + strings.TrimSuffix(mm[2], ",") + "}"
			v, err := strconv.ParseInt(mm[4], 10, 64)
			if err != nil {
				t.Fatalf("unparsable bucket count in %q: %v", line, err)
			}
			st := series[key]
			if st == nil {
				st = &state{}
				series[key] = st
			}
			if v < st.last {
				t.Errorf("%s: bucket le=%q count %d < previous %d (not cumulative)", key, mm[3], v, st.last)
			}
			st.last = v
			st.buckets++
			if mm[3] == "+Inf" {
				st.infSeen, st.infVal = true, v
			}
			continue
		}
		if mm := countRE.FindStringSubmatch(line); mm != nil {
			v, _ := strconv.ParseInt(mm[3], 10, 64)
			key := mm[1] + "{" + mm[2] + "}"
			counts[key] = v
			continue
		}
		if mm := sumRE.FindStringSubmatch(line); mm != nil {
			sums[mm[1]+"{"+mm[2]+"}"] = true
		}
	}

	wantSeries := []string{
		`rtmap_request_seconds{}`,
		`rtmap_request_phase_seconds{phase="wait"}`,
		`rtmap_request_phase_seconds{phase="queue"}`,
		`rtmap_request_phase_seconds{phase="exec"}`,
		`rtmap_stage_exec_seconds{stage="0"}`,
		`rtmap_stage_exec_seconds{stage="1"}`,
	}
	for _, key := range wantSeries {
		st := series[key]
		if st == nil {
			t.Fatalf("exposition has no bucket series %s:\n%s", key, buf.String())
		}
		if st.buckets != len(latencyBuckets)+1 {
			t.Errorf("%s: %d bucket lines, want %d", key, st.buckets, len(latencyBuckets)+1)
		}
		if !st.infSeen {
			t.Errorf("%s: no le=\"+Inf\" bucket", key)
		}
		cnt, ok := counts[key]
		if !ok {
			t.Errorf("%s: no _count line", key)
		} else if st.infVal != cnt {
			t.Errorf("%s: +Inf bucket %d != _count %d", key, st.infVal, cnt)
		}
		if !sums[key] {
			t.Errorf("%s: no _sum line", key)
		}
	}
	if got := series[`rtmap_request_seconds{}`].infVal; got != 6 {
		t.Errorf("rtmap_request_seconds +Inf = %d, want 6 observations", got)
	}
	if got := series[`rtmap_stage_exec_seconds{stage="1"}`].infVal; got != 2 {
		t.Errorf("stage 1 +Inf = %d, want 2 (including the overflow observation)", got)
	}
}

// getTraces fetches /debug/traces with the given query string.
func getTraces(t *testing.T, url, query string) tracesResponse {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: HTTP %d", resp.StatusCode)
	}
	var out tracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTracedShardedRequestEndToEnd is the tentpole's acceptance test: a
// request carrying an X-Rtmap-Trace header through a sharded + replicated
// server yields spans whose phase durations tile the reported http wall
// time, visible via /debug/traces.
func TestTracedShardedRequestEndToEnd(t *testing.T) {
	_, ts := testServer(t, Options{Devices: 4, ShardStages: 2, Replicas: 2,
		MaxBatch: 4, Window: time.Millisecond, TraceLayerSample: 1})

	sh, _ := ZooShape("tinycnn")
	// Warm up untraced so the traced request's wait span measures batching,
	// not model admission (compilation happens inside the first handler).
	if _, resp := postInfer(t, ts.URL, InferRequest{Model: "tinycnn", BitExact: true,
		Inputs: workload.InputData(sh, 1, 20)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: HTTP %d", resp.StatusCode)
	}

	const id = "e2e-trace-1"
	body, err := json.Marshal(&InferRequest{Model: "tinycnn", BitExact: true,
		Inputs: workload.InputData(sh, 2, 21)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced infer: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != id {
		t.Fatalf("response echoes trace ID %q, want %q", got, id)
	}

	got := getTraces(t, ts.URL, "?trace="+id)
	byName := map[string][]trace.Span{}
	for _, sp := range got.Spans {
		if sp.Model != "tinycnn" {
			t.Errorf("span %s carries model %q, want tinycnn", sp.Name, sp.Model)
		}
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for name, want := range map[string]int{"http": 1, "wait": 1, "queue": 1, "hop": 1, "stage": 2} {
		if len(byName[name]) != want {
			t.Fatalf("%d %q spans, want %d (multi-sample requests must dedupe): %+v",
				len(byName[name]), name, want, got.Spans)
		}
	}
	if len(byName["layer"]) == 0 {
		t.Fatal("no layer spans despite TraceLayerSample=1")
	}
	for _, sp := range byName["layer"] {
		if sp.Detail == "" {
			t.Errorf("layer span without a layer name: %+v", sp)
		}
	}
	s0, s1 := byName["stage"][0], byName["stage"][1]
	if s0.Stage+s1.Stage != 1 || s0.Stage == s1.Stage {
		t.Fatalf("stage spans cover stages %d and %d, want 0 and 1", s0.Stage, s1.Stage)
	}
	if s0.Device == s1.Device {
		t.Errorf("both stages ran on device %d; pipeline stages must be pinned to distinct devices", s0.Device)
	}
	if s0.Replica != s1.Replica || s0.Replica < 0 {
		t.Errorf("stage spans on replicas %d/%d, want one non-negative replica", s0.Replica, s1.Replica)
	}

	// The phase spans decompose the request's server-side wall time: their
	// sum must not exceed the http span (they nest inside the handler) and
	// must account for most of it — the rest is JSON decode/encode.
	httpDur := time.Duration(byName["http"][0].Dur)
	var phaseSum time.Duration
	for _, name := range []string{"wait", "queue", "hop", "stage"} {
		for _, sp := range byName[name] {
			phaseSum += time.Duration(sp.Dur)
		}
	}
	if phaseSum > httpDur+time.Millisecond {
		t.Errorf("phase spans sum to %v, exceeding the http span %v", phaseSum, httpDur)
	}
	if phaseSum < httpDur/2 {
		t.Errorf("phase spans sum to %v, under half the http span %v — the decomposition lost a phase", phaseSum, httpDur)
	}

	// Filters: the model filter keeps these spans, an unknown trace drops
	// everything.
	if byModel := getTraces(t, ts.URL, "?model=tinycnn"); len(byModel.Spans) == 0 {
		t.Error("model filter dropped every span")
	}
	if none := getTraces(t, ts.URL, "?trace=absent"); len(none.Spans) != 0 {
		t.Errorf("unknown trace filter returned %d spans, want 0", len(none.Spans))
	}
}

// A server with TraceSample=1 traces header-less requests and reports the
// generated ID back to the client so it can find its spans.
func TestSampledRequestGetsGeneratedID(t *testing.T) {
	s, ts := testServer(t, Options{MaxBatch: 2, Window: time.Millisecond, TraceSample: 1})
	sh, _ := ZooShape("tinycnn")
	_, resp := postInfer(t, ts.URL, InferRequest{Model: "tinycnn",
		Inputs: workload.InputData(sh, 1, 5)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: HTTP %d", resp.StatusCode)
	}
	id := resp.Header.Get(TraceHeader)
	if id == "" {
		t.Fatal("sampled request's response carries no trace ID header")
	}
	found := false
	for _, sp := range s.Tracer().Snapshot() {
		if sp.TraceID == id && sp.Name == "http" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no http span recorded for sampled trace %q", id)
	}
}

// An over-long client trace ID must be ignored, not recorded (bounded
// label cardinality against hostile headers).
func TestOversizedTraceHeaderIgnored(t *testing.T) {
	_, ts := testServer(t, Options{MaxBatch: 2, Window: time.Millisecond})
	sh, _ := ZooShape("tinycnn")
	body, err := json.Marshal(&InferRequest{Model: "tinycnn",
		Inputs: workload.InputData(sh, 1, 6)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, strings.Repeat("x", 65))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "" {
		t.Fatalf("oversized trace ID echoed back as %q, want dropped", got)
	}
}

// TestFailoverRequeueKeepsTrace extends the failover suite: a traced
// batch bounced off a dead device must keep its trace ID through the
// requeue, emit exactly one requeue span recording the dead device, and
// finish with an exec span on the surviving replica.
func TestFailoverRequeueKeepsTrace(t *testing.T) {
	s := New(Options{Devices: 2, Replicas: 2, MaxBatch: 4, Window: time.Millisecond, Logf: t.Logf})
	defer func() {
		if err := s.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	e, err := s.Registry().Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadDev := e.placed().replicas[0].devs[0]
	if err := s.FailDevice(deadDev); err != nil {
		t.Fatal(err)
	}

	const id = "failover-trace"
	sh, _ := ZooShape("tinycnn")
	ins := workload.Inputs(sh, 3, 11)
	items := make([]*item, len(ins))
	for i, in := range ins {
		items[i] = &item{in: in, bitExact: i == 0, enq: time.Now(),
			res: make(chan itemResult, 1), trace: id}
	}
	b := newAPBatch(e, items)
	f := s.fleet
	f.mu.Lock()
	d := f.devices[deadDev]
	d.queued++
	f.pending++
	f.mu.Unlock()
	d.ch <- b

	for i, it := range items {
		res := <-it.res
		if res.err != nil {
			t.Fatalf("item %d failed across failover: %v", i, res.err)
		}
		if res.info.Requeues != 1 {
			t.Errorf("item %d: %d requeues, want 1", i, res.info.Requeues)
		}
	}

	var requeues, execs []trace.Span
	for _, sp := range s.Tracer().Snapshot() {
		if sp.TraceID != id {
			continue
		}
		switch sp.Name {
		case "requeue":
			requeues = append(requeues, sp)
		case "exec":
			execs = append(execs, sp)
		}
	}
	if len(requeues) != 1 {
		t.Fatalf("%d requeue spans, want exactly 1 (deduped per batch)", len(requeues))
	}
	rq := requeues[0]
	if rq.Device != deadDev {
		t.Errorf("requeue span records device %d, want the dead device %d", rq.Device, deadDev)
	}
	if rq.Detail != "attempt 1" {
		t.Errorf("requeue span detail %q, want \"attempt 1\"", rq.Detail)
	}
	if len(execs) != 1 {
		t.Fatalf("%d exec spans, want 1", len(execs))
	}
	if execs[0].Device == deadDev {
		t.Errorf("exec span on the dead device %d", deadDev)
	}
	if execs[0].Replica != e.placed().replicas[1].id {
		t.Errorf("exec span on replica %d, want surviving replica %d", execs[0].Replica, e.placed().replicas[1].id)
	}
}

// BenchmarkServeSubmitTraced is BenchmarkServeSubmit with one traced
// item per batch — the steady-state cost of span recording on the
// submit→execute→deliver path (compare the two in bench output; the CI
// smoke tracks the same ratio via rtmap-bench -trace-overhead).
func BenchmarkServeSubmitTraced(b *testing.B) {
	s := New(Options{Devices: 1, MaxBatch: 8, Window: time.Millisecond})
	defer s.Shutdown(context.Background())
	e, err := s.Registry().Get(Spec{Model: "tinycnn", ActBits: 4, Sparsity: 0.8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sh, _ := ZooShape("tinycnn")
	ins := workload.Inputs(sh, 8, 7)
	ids := make([]string, 64)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := make([]*item, len(ins))
		for j, in := range ins {
			items[j] = &item{in: in, bitExact: true, enq: time.Now(), res: make(chan itemResult, 1)}
		}
		items[0].trace = ids[i%len(ids)]
		s.fleet.Submit(newAPBatch(e, items))
		for _, it := range items {
			if res := <-it.res; res.err != nil {
				b.Fatal(res.err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ins)), "ns/infer")
}
