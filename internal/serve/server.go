package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rtmap/internal/core"
	"rtmap/internal/dispatch"
	"rtmap/internal/tensor"
	"rtmap/internal/trace"
	"rtmap/internal/verify"
)

// Options configures a Server. Zero values select the documented
// defaults.
type Options struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Devices is the size of the simulated AP device fleet.
	Devices int
	// MaxBatch caps micro-batch size; Window bounds how long the batcher
	// waits for follow-up requests after the first (see batcher docs for
	// the adaptive shrink rule).
	MaxBatch int
	Window   time.Duration
	// MaxModels bounds the compiled-model registry (LRU eviction beyond).
	MaxModels int
	// ShardStages > 1 serves every model as a layer-range pipeline of
	// that many stages (clamped to Devices and the model's layer count):
	// each stage is pinned to a fleet device and micro-batches stream
	// through the stages instead of whole batches dispatching to one
	// device. <= 1 keeps whole-model dispatch.
	ShardStages int
	// Replicas > 1 places that many independent copies of every admitted
	// model across the fleet (device-disjoint placements, clamped to
	// Devices/stages). Batches balance across live replicas, and work on
	// a failed device fails over to a surviving replica.
	Replicas int
	// FailAfter > 0 arms fault injection: device FailDevice is marked
	// dead FailAfter after the server starts serving (the failover demo
	// behind rtmap-serve -fail-device). The zero value disables it.
	FailDevice int
	FailAfter  time.Duration
	// ModelFiles extends the servable zoo with JSON model files
	// (model.WriteJSON format), keyed by serving name. Files decode at
	// admission; a malformed file fails that request with HTTP 400.
	ModelFiles map[string]string
	// Queue is the per-model and per-device queue capacity.
	Queue int
	// Cache overrides the compiled-artifact cache consulted by model
	// admissions; nil uses the process-wide shared cache, and NoCache
	// disables artifact caching outright.
	Cache   *core.Cache
	NoCache bool
	// MaxInputs caps the number of samples one /v1/infer request may
	// carry (default 64).
	MaxInputs int
	// TraceBuf is the span ring-buffer capacity behind /debug/traces
	// (default trace.DefaultCapacity). TraceSample traces 1-in-N requests
	// that carry no X-Rtmap-Trace header (0 honors only explicit
	// headers); TraceLayerSample additionally records per-layer execution
	// spans for 1-in-N traced requests (0 disables layer spans).
	TraceBuf         int
	TraceSample      int
	TraceLayerSample int
	// TraceOut, when non-nil, receives every span as JSONL (the
	// rtmap-serve -trace-out sink; cmd/rtmap-trace reads it).
	TraceOut io.Writer
	// EnablePprof mounts the stdlib net/http/pprof handlers under
	// /debug/pprof/ (off by default: profiling endpoints are an
	// operational opt-in).
	EnablePprof bool
	// Logf receives serving log lines; nil uses the standard logger.
	Logf func(format string, args ...any)

	// MaxQueueDelay arms load shedding: a request whose estimated queue
	// delay exceeds this bound is refused with HTTP 429 and a Retry-After
	// derived from the excess (bulk requests shed at half the bound).
	// Zero disables the operator bound; deadline-driven shedding — a
	// request that provably cannot meet its own deadline — is always on.
	MaxQueueDelay time.Duration
	// Autoscale starts the scheduler that grows and shrinks every
	// model's replica/stage placement from live queue signals, pricing
	// candidate configurations with the simulator's batch and pipeline
	// cost models. Implies pinned placements (replica scaling needs a
	// placement to grow, so even 1-replica models are pinned).
	Autoscale bool
	// AutoscaleInterval is the scaler's evaluation tick (default 250ms).
	AutoscaleInterval time.Duration
	// DisableSLO ignores per-request class/deadline metadata and
	// disables shedding — the static, throughput-only configuration the
	// SLO benchmark compares against.
	DisableSLO bool
	// DrainTimeout bounds Shutdown's graceful drain (default 10s): past
	// it, lingering connections are force-closed and the fleet wind-down
	// is abandoned rather than hung. Requests arriving during the drain
	// are answered 503 + Retry-After. Negative disables the bound (wait
	// forever, the pre-PR-10 behavior).
	DrainTimeout time.Duration
	// WallScale dilates simulated device latency into wall time: each
	// batch (or pipeline stage) holds its device for at least
	// WallScale × the cost model's latency estimate. Zero disables
	// dilation (devices run as fast as the functional engine allows).
	// With dilation on, service time — and therefore queueing, deadline,
	// and autoscaling behaviour — is governed by the paper's cost model
	// rather than by host CPU speed, which is what the SLO benchmark and
	// capacity demos need.
	WallScale float64
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8080"
	}
	if o.Devices <= 0 {
		o.Devices = 4
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Millisecond
	}
	if o.MaxModels <= 0 {
		o.MaxModels = 4
	}
	if o.Queue <= 0 {
		o.Queue = 64
	}
	if o.MaxInputs <= 0 {
		o.MaxInputs = 64
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.AutoscaleInterval <= 0 {
		o.AutoscaleInterval = 250 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Server is the batched multi-tenant inference server: HTTP handlers on
// top of the model registry, the per-model micro-batchers, and the
// simulated device fleet.
type Server struct {
	opts     Options
	metrics  *Metrics
	tracer   *trace.Tracer
	fleet    *Fleet
	reg      *Registry
	mux      *http.ServeMux
	http     *http.Server
	ln       net.Listener
	draining atomic.Bool

	// shed is the admission policy /v1/infer consults before accepting
	// work (pure decision logic; the live delay estimate comes from the
	// target model's entry).
	shed dispatch.ShedPolicy
	// scaleStop terminates the autoscale loop; scaleDone is closed when
	// it exits. Both nil when Options.Autoscale is off.
	scaleStop chan struct{}
	scaleDone chan struct{}
	scaleOnce sync.Once

	// faultMu orders Serve's timer arm against Shutdown's stop (the two
	// run on different goroutines under rtmap.Serve).
	faultMu    sync.Mutex
	faultTimer *time.Timer
}

// New constructs a Server (not yet listening).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	m := NewMetrics()
	fleet := NewFleet(opts.Devices, opts.Queue, m)
	compile := core.DefaultConfig()
	if opts.Cache != nil {
		compile.Cache = opts.Cache
	}
	if opts.NoCache {
		compile.Cache = nil
	}
	reg := NewRegistry(compile, opts.MaxModels, fleet,
		BatchOptions{MaxBatch: opts.MaxBatch, Window: opts.Window, Queue: opts.Queue},
		opts.ShardStages, opts.Replicas)
	reg.metrics = m
	reg.pinned = opts.Autoscale
	for name, path := range opts.ModelFiles {
		if err := reg.RegisterModelFile(name, path); err != nil {
			opts.Logf("ignoring model file %s: %v", path, err)
		}
	}

	tr := trace.New(opts.TraceBuf, opts.TraceSample, opts.TraceLayerSample)
	if opts.TraceOut != nil {
		tr.SetSink(opts.TraceOut)
	}
	fleet.tracer = tr
	fleet.WallScale = opts.WallScale

	s := &Server{opts: opts, metrics: m, tracer: tr, fleet: fleet, reg: reg, mux: http.NewServeMux()}
	s.shed = dispatch.ShedPolicy{MaxQueueDelay: opts.MaxQueueDelay}
	if opts.Autoscale {
		// Started here rather than in Serve: httptest and benchmark
		// embedders drive the mux directly and never call Serve.
		s.scaleStop = make(chan struct{})
		s.scaleDone = make(chan struct{})
		go s.scaleLoop()
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/infer", s.handleInfer)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Tracer exposes the span collector (tests; embedding servers that want
// to record their own spans).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Handler exposes the route table (httptest servers, embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model registry (load generators warm models up
// front; tests inspect residency).
func (s *Server) Registry() *Registry { return s.reg }

// Listen binds the configured address and returns the resolved one.
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve blocks serving HTTP on the bound listener until Shutdown. When
// Options.FailAfter is set, the configured fault injection is armed here.
func (s *Server) Serve() error {
	if s.ln == nil {
		if _, err := s.Listen(); err != nil {
			return err
		}
	}
	if s.opts.FailAfter > 0 {
		dev := s.opts.FailDevice
		s.faultMu.Lock()
		if !s.draining.Load() { // don't arm under a concurrent Shutdown
			s.faultTimer = time.AfterFunc(s.opts.FailAfter, func() {
				if err := s.FailDevice(dev); err != nil {
					s.opts.Logf("fault injection: %v", err)
				} else {
					s.opts.Logf("fault injection: device %d marked dead after %s", dev, s.opts.FailAfter)
				}
			})
		}
		s.faultMu.Unlock()
	}
	s.opts.Logf("listening on %s", s.ln.Addr())
	if err := s.http.Serve(s.ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// FailDevice marks a fleet device dead immediately: batches queued on it
// (and sharded batches hopping to it mid-pipeline) requeue onto surviving
// replicas; the batch executing at the failure instant completes where it
// is. Exposed for tests and operational tooling; rtmap-serve's
// -fail-device arms it on a timer via Options.
func (s *Server) FailDevice(id int) error { return s.fleet.FailDevice(id) }

// Shutdown drains gracefully: new work is refused (in-flight HTTP
// requests finish; late arrivals get 503 + Retry-After), then the
// batchers and the device fleet wind down. The whole drain is bounded
// by Options.DrainTimeout (when ctx carries no earlier deadline): past
// the bound, lingering connections are force-closed and the fleet
// wind-down abandoned — a SIGTERM always terminates the process.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.scaleStop != nil {
		s.scaleOnce.Do(func() { close(s.scaleStop) })
		<-s.scaleDone
	}
	s.faultMu.Lock()
	if s.faultTimer != nil {
		s.faultTimer.Stop()
	}
	s.faultMu.Unlock()
	if s.opts.DrainTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.DrainTimeout)
			defer cancel()
		}
	}
	err := s.http.Shutdown(ctx)
	if err != nil {
		// The drain bound expired with connections still open: close them
		// hard. Their handlers' writes fail, but the process can exit.
		s.http.Close()
		err = fmt.Errorf("serve: drain timeout, connections force-closed: %w", err)
	}
	s.reg.Close()
	if cerr := s.fleet.CloseCtx(ctx); err == nil && cerr != nil {
		err = cerr
	}
	if ferr := s.tracer.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("serve: flushing trace sink: %w", ferr)
	}
	return err
}

// Abort hard-stops the server: every listener and connection closes
// immediately and nothing drains — the closest in-process stand-in for
// a process crash. The fleet and registry goroutines are deliberately
// left running (a crash does not unwind state either); the chaos
// harness uses Abort to kill cluster nodes mid-load.
func (s *Server) Abort() error {
	s.draining.Store(true)
	if s.scaleStop != nil {
		s.scaleOnce.Do(func() { close(s.scaleStop) })
		<-s.scaleDone
	}
	s.faultMu.Lock()
	if s.faultTimer != nil {
		s.faultTimer.Stop()
	}
	s.faultMu.Unlock()
	return s.http.Close()
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	httpJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// modelsResponse lists the servable zoo and the resident compiled models.
type modelsResponse struct {
	Available []availableModel `json:"available"`
	Loaded    []LoadedInfo     `json:"loaded"`
}

type availableModel struct {
	Model     string `json:"model"`
	InputNCHW [4]int `json:"input_nchw"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	resp := modelsResponse{Loaded: s.reg.Loaded()}
	for _, name := range ZooModels() {
		sh, _ := ZooShape(name)
		resp.Available = append(resp.Available, availableModel{
			Model: name, InputNCHW: [4]int{sh.N, sh.C, sh.H, sh.W},
		})
	}
	// File-backed models report the shape discovered at their first
	// admission (zeros before).
	for _, fm := range s.reg.FileModels() {
		resp.Available = append(resp.Available, availableModel{
			Model: fm.Name, InputNCHW: [4]int{fm.Shape.N, fm.Shape.C, fm.Shape.H, fm.Shape.W},
		})
	}
	httpJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w, func(w io.Writer) {
		fmt.Fprintf(w, "# TYPE rtmap_models_loaded gauge\nrtmap_models_loaded %d\n", s.reg.Len())
		stats := s.fleet.Stats() // one snapshot: the series stay consistent
		fmt.Fprintf(w, "# TYPE rtmap_device_up gauge\n")
		for _, d := range stats {
			up := 0
			if d.Up {
				up = 1
			}
			fmt.Fprintf(w, "rtmap_device_up{device=\"%d\"} %d\n", d.ID, up)
		}
		fmt.Fprintf(w, "# TYPE rtmap_device_queue_depth gauge\n")
		for _, d := range stats {
			fmt.Fprintf(w, "rtmap_device_queue_depth{device=\"%d\"} %d\n", d.ID, d.Queued)
		}
		fmt.Fprintf(w, "# TYPE rtmap_device_batches_total counter\n")
		for _, d := range stats {
			fmt.Fprintf(w, "rtmap_device_batches_total{device=\"%d\"} %d\n", d.ID, d.Batches)
		}
		fmt.Fprintf(w, "# TYPE rtmap_device_sim_busy_ns_total counter\n")
		for _, d := range stats {
			fmt.Fprintf(w, "rtmap_device_sim_busy_ns_total{device=\"%d\"} %g\n", d.ID, d.SimBusyNS)
		}
		fmt.Fprintf(w, "# TYPE rtmap_device_energy_pj_total counter\n")
		for _, d := range stats {
			fmt.Fprintf(w, "rtmap_device_energy_pj_total{device=\"%d\"} %g\n", d.ID, d.EnergyPJ)
		}
		fmt.Fprintf(w, "# TYPE rtmap_device_writes_total counter\n")
		for _, d := range stats {
			fmt.Fprintf(w, "rtmap_device_writes_total{device=\"%d\"} %g\n", d.ID, d.Writes)
		}
		loaded := s.reg.Loaded()
		fmt.Fprintf(w, "# TYPE rtmap_model_stages gauge\n")
		for _, m := range loaded {
			stages := m.Stages
			if stages == 0 {
				stages = 1
			}
			fmt.Fprintf(w, "rtmap_model_stages{model=%q} %d\n", m.Key, stages)
		}
		fmt.Fprintf(w, "# TYPE rtmap_model_sim_bottleneck_ns gauge\n")
		for _, m := range loaded {
			if m.Stages > 0 {
				fmt.Fprintf(w, "rtmap_model_sim_bottleneck_ns{model=%q} %g\n", m.Key, m.BottleneckNS)
			}
		}
		fmt.Fprintf(w, "# TYPE rtmap_model_replicas gauge\n")
		for _, m := range loaded {
			if m.Replicas > 0 {
				fmt.Fprintf(w, "rtmap_model_replicas{model=%q} %d\n", m.Key, m.Replicas)
			}
		}
		fmt.Fprintf(w, "# TYPE rtmap_model_replicas_live gauge\n")
		for _, m := range loaded {
			if m.Replicas > 0 {
				fmt.Fprintf(w, "rtmap_model_replicas_live{model=%q} %d\n", m.Key, *m.LiveReplicas)
			}
		}
		fmt.Fprintf(w, "# TYPE rtmap_model_queue_depth gauge\n")
		for _, m := range loaded {
			fmt.Fprintf(w, "rtmap_model_queue_depth{model=%q} %d\n", m.Key, m.QueueDepth)
		}
		fmt.Fprintf(w, "# TYPE rtmap_model_queue_delay_est_seconds gauge\n")
		for _, m := range loaded {
			fmt.Fprintf(w, "rtmap_model_queue_delay_est_seconds{model=%q} %g\n", m.Key, m.QueueDelayEstMS/1e3)
		}
	})
}

// InferRequest is the /v1/infer wire format. Each element of Inputs is
// one sample: the input tensor flattened in NCHW order (N=1). Omitted
// build parameters take the paper's defaults (4-bit activations, 0.8
// sparsity, seed 1).
type InferRequest struct {
	Model    string   `json:"model"`
	ActBits  int      `json:"act_bits,omitempty"`
	Sparsity *float64 `json:"sparsity,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	// BitExact replays the compiled AP programs on the word-level machine
	// (slow, bit-exact); otherwise the quantized software reference runs
	// (fast, proved bit-identical).
	BitExact bool        `json:"bit_exact,omitempty"`
	Inputs   [][]float32 `json:"inputs"`
	// Class is the request's priority class ("interactive", "standard",
	// "bulk"; empty means standard). DeadlineMS is a soft deadline in
	// milliseconds from server receipt: a request that provably cannot
	// meet it is shed at admission (429), and one whose deadline passes
	// while queued is cancelled (503 kind "expired") rather than run
	// late. Zero means no deadline. The ClassHeader/DeadlineHeader HTTP
	// headers override these body fields.
	Class      string  `json:"class,omitempty"`
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
}

// InferResult is the per-sample response entry.
type InferResult struct {
	Logits []int32   `json:"logits"`
	Argmax int       `json:"argmax"`
	Batch  BatchInfo `json:"batch"`
}

// InferResponse is the /v1/infer response body.
type InferResponse struct {
	Model   string        `json:"model"`
	Key     string        `json:"key"`
	Results []InferResult `json:"results"`
	WallMS  float64       `json:"wall_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure for programmatic clients:
	// "bad_request", "not_found", "bad_model", "shed", "expired",
	// "unavailable", or "internal".
	Kind string `json:"kind,omitempty"`
	// Diagnostics carries the located static-verifier findings when a
	// model admission was rejected because its plans failed the audit.
	Diagnostics []verify.Diagnostic `json:"diagnostics,omitempty"`
}

// Error kinds, as carried in errorResponse.Kind.
const (
	kindBadRequest  = "bad_request"
	kindNotFound    = "not_found"
	kindBadModel    = "bad_model"
	kindShed        = "shed"
	kindExpired     = "expired"
	kindUnavailable = "unavailable"
	kindInternal    = "internal"
)

// TraceHeader is the HTTP header carrying a client-chosen trace ID:
// requests bearing it are always traced (IDs longer than 64 bytes are
// ignored); requests without it are traced 1-in-Options.TraceSample.
// Traced responses echo the ID back in the same header.
const TraceHeader = "X-Rtmap-Trace"

// ClassHeader and DeadlineHeader carry a request's SLO metadata as HTTP
// headers, overriding the body fields of the same meaning — load
// balancers and sidecars can set policy without touching the payload.
const (
	ClassHeader    = "X-Rtmap-Class"
	DeadlineHeader = "X-Rtmap-Deadline-Ms"
)

// maxDeadlineMS caps client deadlines at 24h: beyond that the value is
// operationally meaningless, and the clamp keeps extreme floats (1e300)
// out of the float→Duration conversion, whose out-of-range behavior is
// implementation-defined.
const maxDeadlineMS = 24 * 60 * 60 * 1000

// parseSLO resolves a request's priority class and absolute deadline
// (zero when none). Headers win over body fields. Errors are client
// errors (HTTP 400).
func parseSLO(r *http.Request, req *InferRequest, now time.Time) (dispatch.Class, time.Time, error) {
	cs := req.Class
	if h := r.Header.Get(ClassHeader); h != "" {
		cs = h
	}
	cls, err := dispatch.ParseClass(cs)
	if err != nil {
		return dispatch.ClassStandard, time.Time{}, err
	}
	ms := req.DeadlineMS
	if h := r.Header.Get(DeadlineHeader); h != "" {
		v, err := strconv.ParseFloat(h, 64)
		if err != nil {
			return dispatch.ClassStandard, time.Time{},
				fmt.Errorf("malformed %s header %q: %w", DeadlineHeader, h, err)
		}
		ms = v
	}
	if math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 {
		return dispatch.ClassStandard, time.Time{},
			fmt.Errorf("deadline_ms %v out of range (want a finite, non-negative budget)", ms)
	}
	if ms == 0 {
		return cls, time.Time{}, nil
	}
	if ms > maxDeadlineMS {
		ms = maxDeadlineMS
	}
	return cls, now.Add(time.Duration(ms * float64(time.Millisecond))), nil
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()

	// Resolve the request's trace identity up front so even failed
	// requests leave an http span behind.
	traceID := r.Header.Get(TraceHeader)
	if len(traceID) > 64 {
		traceID = ""
	}
	if traceID == "" && s.tracer.SampleRequest() {
		traceID = trace.NewID()
	}
	traceLayers := traceID != "" && s.tracer.SampleLayers()
	model := ""
	httpSpan := func(detail string) {
		if traceID == "" {
			return
		}
		w.Header().Set(TraceHeader, traceID)
		s.tracer.Record(trace.Span{
			TraceID: traceID, Name: "http", Model: model,
			Device: -1, Replica: -1, Stage: -1,
			Start: start.UnixNano(), Dur: time.Since(start).Nanoseconds(), Detail: detail,
		})
	}

	// SLO identity of the request: resolved after decode; failures before
	// that classify as standard class (the server cannot know better).
	cls := dispatch.ClassStandard
	var deadline time.Time

	// fail answers one classified error and settles the request's SLO
	// ledger row — every request lands in exactly one outcome, so
	// accepted + shed + expired + failed always equals submitted.
	fail := func(code int, kind string, format string, args ...any) {
		out := OutcomeFailed
		switch kind {
		case kindShed:
			out = OutcomeShed
		case kindExpired:
			out = OutcomeExpired
		}
		s.metrics.ObserveSLO(cls, out)
		s.metrics.ObserveRequest(time.Since(start), 0, true)
		httpSpan(fmt.Sprintf("error %d", code))
		httpJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...), Kind: kind})
	}
	if s.draining.Load() {
		// Drain window: the listener is closing but this keep-alive
		// connection raced one more request in. Refuse it retryably
		// instead of queueing work the fleet wind-down would strand.
		w.Header().Set("Retry-After", "1")
		fail(http.StatusServiceUnavailable, kindUnavailable, "server draining")
		return
	}
	var req InferRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		fail(http.StatusBadRequest, kindBadRequest, "decoding request: %v", err)
		return
	}
	if !s.opts.DisableSLO {
		c, d, err := parseSLO(r, &req, start)
		if err != nil {
			fail(http.StatusBadRequest, kindBadRequest, "%v", err)
			return
		}
		cls, deadline = c, d
	}
	if len(req.Inputs) == 0 {
		fail(http.StatusBadRequest, kindBadRequest, "no inputs")
		return
	}
	if len(req.Inputs) > s.opts.MaxInputs {
		fail(http.StatusBadRequest, kindBadRequest, "request carries %d inputs, limit %d", len(req.Inputs), s.opts.MaxInputs)
		return
	}
	spec := Spec{Model: req.Model, ActBits: req.ActBits, Sparsity: 0.8, Seed: req.Seed}
	model = spec.Model
	if spec.ActBits == 0 {
		spec.ActBits = 4
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if req.Sparsity != nil {
		spec.Sparsity = *req.Sparsity
	}
	if spec.ActBits < 2 || spec.ActBits > 8 || spec.Sparsity < 0 || spec.Sparsity >= 1 {
		fail(http.StatusBadRequest, kindBadRequest, "build parameters out of range (act_bits 2..8, sparsity [0,1))")
		return
	}

	e, err := s.reg.Get(spec)
	if err != nil {
		// Panic-vs-error boundary: anything a client can cause is a 4xx.
		// Unknown names are 404; a model definition the client supplied
		// (malformed model file, or one whose plans fail static
		// verification) is 400; internal faults stay 500.
		code, kind := http.StatusInternalServerError, kindInternal
		switch {
		case !s.reg.Knows(spec.Model):
			code, kind = http.StatusNotFound, kindNotFound
		case IsBadModel(err):
			code, kind = http.StatusBadRequest, kindBadModel
		case errors.Is(err, errNoReplica):
			code, kind = http.StatusServiceUnavailable, kindUnavailable // no live capacity to place it
		}
		var ve *verify.Error
		if errors.As(err, &ve) {
			// Verifier rejections return the full located diagnostics so
			// the client sees exactly which plan op violated what.
			s.metrics.ObserveSLO(cls, OutcomeFailed)
			s.metrics.ObserveRequest(time.Since(start), 0, true)
			httpSpan(fmt.Sprintf("error %d", code))
			httpJSON(w, code, errorResponse{Error: err.Error(), Kind: kind, Diagnostics: ve.Diags})
			return
		}
		fail(code, kind, "%v", err)
		return
	}

	// Admission control: price the request's queue delay from the
	// model's live backlog and the measured per-item interval, and shed
	// (HTTP 429 + Retry-After) rather than queue work that would blow
	// the operator bound or provably miss its own deadline.
	if !s.opts.DisableSLO {
		depth := int(e.batcher.depth.Load()) + len(req.Inputs)
		if v := s.shed.Admit(cls, deadline, time.Now(), e.est.Estimate(depth)); !v.Accept {
			retry := int(math.Ceil(v.RetryAfter.Seconds()))
			if retry < 1 {
				retry = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			if traceID != "" {
				s.tracer.Record(trace.Span{
					TraceID: traceID, Name: "shed", Model: model,
					Device: -1, Replica: -1, Stage: -1,
					Start: start.UnixNano(), Dur: time.Since(start).Nanoseconds(), Detail: v.Reason,
				})
			}
			fail(http.StatusTooManyRequests, kindShed, "shed: %s (retry after %ds)", v.Reason, retry)
			return
		}
	}

	shape := e.net.InputShape
	items := make([]*item, len(req.Inputs))
	for i, vals := range req.Inputs {
		if len(vals) != shape.Elems() {
			fail(http.StatusBadRequest, kindBadRequest, "input %d: %d values, %s wants %d (NCHW %v)",
				i, len(vals), spec.Model, shape.Elems(), shape)
			return
		}
		t := tensor.NewFloat(shape)
		copy(t.Data, vals)
		items[i] = &item{
			in: t, bitExact: req.BitExact, enq: time.Now(), res: make(chan itemResult, 1),
			class: cls, deadline: deadline,
			trace: traceID, layers: traceLayers,
		}
	}

	// Submit with eviction retry: a concurrently evicted entry refuses
	// intake, so re-resolve the model (recompiling if needed) and go on
	// from the first unsubmitted item.
	const maxReadmits = 4
	for i, readmits := 0, 0; i < len(items); {
		err := e.batcher.submit(items[i])
		if err == nil {
			i++
			continue
		}
		if readmits++; readmits > maxReadmits {
			fail(http.StatusServiceUnavailable, kindUnavailable, "model thrashing: evicted %d times during one request", readmits)
			return
		}
		if e, err = s.reg.Get(spec); err != nil {
			fail(http.StatusServiceUnavailable, kindUnavailable, "model evicted and re-admission failed: %v", err)
			return
		}
	}

	resp := InferResponse{Model: spec.Model, Key: e.key, Results: make([]InferResult, len(items))}
	for i, it := range items {
		res := <-it.res
		if res.err != nil {
			code, kind := http.StatusInternalServerError, kindInternal
			switch {
			case errors.Is(res.err, errNoReplica):
				code, kind = http.StatusServiceUnavailable, kindUnavailable // resident but its capacity is gone
			case errors.Is(res.err, errExpired):
				code, kind = http.StatusServiceUnavailable, kindExpired // cancelled, not executed late
			}
			fail(code, kind, "input %d: %v", i, res.err)
			return
		}
		resp.Results[i] = InferResult{Logits: res.logits, Argmax: res.argmax, Batch: res.info}
	}
	resp.WallMS = float64(time.Since(start).Nanoseconds()) / 1e6
	s.metrics.ObserveSLO(cls, OutcomeAccepted)
	if !deadline.IsZero() {
		// Deadline accounting uses the same clock domain the deadline was
		// minted in: a request is "met" when it finished inside its budget.
		s.metrics.ObserveDeadline(cls, !time.Now().After(deadline))
	}
	s.metrics.ObserveRequest(time.Since(start), len(items), false)
	httpSpan("")
	httpJSON(w, http.StatusOK, resp)
}

// tracesResponse is the /debug/traces wire format: the retained spans
// (oldest first, after filters), how many spans were ever recorded, and
// how many the bounded ring has dropped.
type tracesResponse struct {
	Spans         []trace.Span `json:"spans"`
	TotalRecorded uint64       `json:"total_recorded"`
	Dropped       uint64       `json:"dropped"`
}

// handleTraces serves the span ring buffer as JSON. Query parameters
// trace= and model= filter to one trace ID / one model name.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	wantTrace, wantModel := q.Get("trace"), q.Get("model")
	spans := s.tracer.Snapshot()
	total := s.tracer.Total()
	dropped := total - uint64(len(spans))
	if wantTrace != "" || wantModel != "" {
		kept := spans[:0]
		for _, sp := range spans {
			if wantTrace != "" && sp.TraceID != wantTrace {
				continue
			}
			if wantModel != "" && sp.Model != wantModel {
				continue
			}
			kept = append(kept, sp)
		}
		spans = kept
	}
	if spans == nil {
		spans = []trace.Span{}
	}
	httpJSON(w, http.StatusOK, tracesResponse{Spans: spans, TotalRecorded: total, Dropped: dropped})
}

func httpJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
