package sim

// ReplicatedBatchReport prices a batch load-balanced across R
// device-disjoint replicas of one model — the serving layer's
// data-parallel ("wide") axis, complementing the pipeline-sharded
// ("deep") axis priced by AnalyzePipeline.
type ReplicatedBatchReport struct {
	Batch    int
	Replicas int
	// LatencyNS is the completion time of the whole batch: the samples
	// split as evenly as possible across the replicas, which run
	// concurrently, so the batch finishes when the largest share does
	// (AnalyzeBatch pricing of ceil(Batch/Replicas) samples).
	LatencyNS float64
	// SteadyNS is the aggregate steady-state inter-sample interval of the
	// replica group: each replica retires one sample per MarginalNS, so R
	// replicas retire one per MarginalNS/R.
	SteadyNS float64
	// EnergyPJ scales with the sample count, not the replica count:
	// replication buys throughput and availability, never energy.
	EnergyPJ float64
}

// AggregateInfersPerSec is the steady-state throughput of the replica
// group.
func (r ReplicatedBatchReport) AggregateInfersPerSec() float64 {
	if r.SteadyNS <= 0 {
		return 0
	}
	return 1e9 / r.SteadyNS
}

// AnalyzeReplicatedBatch prices b samples dispatched across r replicas of
// an analyzed network, each replica on its own device with the weights
// resident. b < 1 and r < 1 are treated as 1.
func AnalyzeReplicatedBatch(rep *Report, b, r int) ReplicatedBatchReport {
	if b < 1 {
		b = 1
	}
	if r < 1 {
		r = 1
	}
	share := AnalyzeBatch(rep, (b+r-1)/r)
	return ReplicatedBatchReport{
		Batch:     b,
		Replicas:  r,
		LatencyNS: share.LatencyNS,
		SteadyNS:  share.MarginalNS / float64(r),
		EnergyPJ:  float64(b) * rep.Total.TotalPJ(),
	}
}
