package sim

import (
	"math"

	"rtmap/internal/core"
	"rtmap/internal/energy"
)

// Expected fraction of rows tagged (and therefore written) per LUT pass.
// Each pass of Table I matches one of the 2^3 row states; across random
// operand bits roughly a quarter of the rows take each of the four passes.
const tagFraction = 0.25

// LayerReport carries the per-layer cost results (one bar of Fig. 4).
type LayerReport struct {
	Plan *core.LayerPlan

	Energy    energy.Breakdown
	LatencyNS float64

	// Latency components (ns).
	ComputeNS float64
	ReduceNS  float64
	LoadNS    float64
	RequantNS float64
}

// Report aggregates a whole-network analysis.
type Report struct {
	Layers []LayerReport

	Total          energy.Breakdown
	TotalLatencyNS float64
}

// EnergyUJ returns total energy in microjoules (Table II units).
func (r *Report) EnergyUJ() float64 { return r.Total.TotalPJ() / 1e6 }

// LatencyMS returns total latency in milliseconds (Table II units).
func (r *Report) LatencyMS() float64 { return r.TotalLatencyNS / 1e6 }

// MovementShare returns the fraction of total energy spent moving data —
// the §V-C claim is ≈3% for RTM-AP vs 41% for the crossbar baseline.
func (r *Report) MovementShare() float64 {
	t := r.Total.TotalPJ()
	if t == 0 {
		return 0
	}
	return r.Total.MovementPJ / t
}

// ConvReports returns reports of conv/linear layers only (Fig. 4 axis).
func (r *Report) ConvReports() []LayerReport {
	var out []LayerReport
	for _, lr := range r.Layers {
		if lr.Plan.Class == core.ClassConv {
			out = append(out, lr)
		}
	}
	return out
}

// Analyze estimates energy and latency for every layer of the compiled
// network under the figures of merit in c.Cfg.Par.
func Analyze(c *core.Compiled) *Report {
	rep := &Report{}
	for _, plan := range c.Layers {
		lr := analyzeLayer(c, plan)
		rep.Layers = append(rep.Layers, lr)
		rep.Total.Add(lr.Energy)
		rep.TotalLatencyNS += lr.LatencyNS
	}
	return rep
}

// Per-row-per-bit energy of one in-place LUT step: 4 passes, each a
// 3-column masked search plus a 2-column tagged write.
func inPlaceBitPJ(p energy.Params) float64 {
	return 4*3*p.SearchPJPerBit + 4*2*tagFraction*p.WritePJPerBit
}

// Out-of-place step: 5 passes of 3-column searches and 2-column writes,
// plus the fresh-destination clear write.
func outPlaceBitPJ(p energy.Params) float64 {
	return 5*3*p.SearchPJPerBit + 5*2*tagFraction*p.WritePJPerBit + p.WritePJPerBit
}

func analyzeLayer(c *core.Compiled, plan *core.LayerPlan) LayerReport {
	p := c.Cfg.Par
	lr := LayerReport{Plan: plan}
	rowsF := float64(plan.P)
	cIn := inPlaceBitPJ(p)
	cOut := outPlaceBitPJ(p)

	switch plan.Class {
	case core.ClassConv:
		cg := plan.CG
		// Channel-wise DFG phase (AP LUT passes; search-dominated).
		lr.Energy.DFGPJ = rowsF * (float64(cg.DFGBitsIn)*cIn + float64(cg.DFGBitsOut)*cOut)
		lr.Energy.DFGPJ += rowsF * float64(cg.DFGOps) * p.WritePJPerBit // carry clears
		// Accumulation phase: digital accumulation units at the AP
		// periphery (readout + narrow add), accumulator clears, and the
		// inter-strip adder tree.
		lr.Energy.AccumPJ = rowsF * (float64(cg.AccumOps+plan.ReduceOps)*p.AccumUnitPJ +
			float64(cg.AccumBits+plan.ReduceBits)*p.AccumReadPJPerBit +
			float64(cg.ClearBits)*p.WritePJPerBit)
		// Shifts (sequential bit access is RTM's cheap operation).
		lr.Energy.ShiftPJ = rowsF * float64(cg.ShiftSteps) * p.ShiftPJPerBit
		// Movement: boundary-crossing activations plus partial-result
		// reduction traffic (feature maps are computed in place).
		lr.Energy.MovementPJ = float64(plan.LoadMoveBits)*p.ActivationMoveFrac*p.MovePJPerBit +
			float64(plan.ReduceMoveBits)*p.MovePJPerBit
		// Peripherals: instruction issue/decode per participating array,
		// plus im2col staging writes.
		instrs := float64(cg.DFGOps + cg.AccumOps + cg.Clears + plan.ReduceOps)
		lr.Energy.PeripheralsPJ = instrs*float64(plan.RowGroups)*p.InstrOverheadPJ +
			float64(plan.LoadWriteBits)*p.WritePJPerBit

		// Latency: strips run in parallel (LoadRounds serialize inside
		// Strips/Replicas); row groups execute the same stream in lockstep.
		// Strips and output-tile groups run in parallel; LoadRounds
		// serialize inside Strips/Replicas, and ceil(Tiles/OutGroups)
		// sequential tile passes remain per group.
		og := max(1, plan.OutGroups)
		tilePasses := float64((plan.Tiles + og - 1) / og)
		par := float64(plan.Replicas) * float64(plan.Tiles) / tilePasses
		cycles := float64(cg.DFGBitsIn)*8 + float64(cg.DFGBitsOut)*11 +
			float64(cg.ClearBits) + float64(cg.DFGOps) // carry clears
		lr.ComputeNS = cycles/par*p.CycleNS + float64(cg.ShiftSteps)/par*p.ShiftNS
		// Digital accumulates issue pipelined alongside the DFG stream.
		lr.ComputeNS += float64(cg.AccumOps) / par * p.AccumLatNS

		rowsPerArray := math.Min(float64(plan.P), float64(p.CAMRows))
		for _, ts := range plan.TileSizes {
			levels := math.Ceil(math.Log2(float64(plan.Replicas)))
			if plan.Replicas == 1 {
				levels = 0
			}
			perMerge := float64(ts) * (rowsPerArray*float64(plan.AccWidth)*p.MoveNSPerBit +
				float64(plan.AccWidth)*8*p.CycleNS)
			lr.ReduceNS += levels * perMerge
		}
		lr.LoadNS = float64(plan.LoadWriteBits) * p.MoveNSPerBit /
			float64(plan.RowGroups*plan.Replicas)

	case core.ClassQuant:
		lr.Energy.PeripheralsPJ = float64(plan.RequantElems) * p.RequantPJPerElem
		lr.RequantNS = p.RequantNSPerOp * float64(plan.OutC)

	case core.ClassAdd, core.ClassGAP:
		lr.Energy.DFGPJ = rowsF * float64(plan.ElemBits) * cIn
		lr.Energy.MovementPJ = float64(plan.LoadMoveBits) * p.ActivationMoveFrac * p.MovePJPerBit
		lr.Energy.PeripheralsPJ = float64(plan.LoadWriteBits)*p.WritePJPerBit +
			float64(plan.RequantElems)*p.RequantPJPerElem
		lr.ComputeNS = float64(plan.ElemBits) * 8 * p.CycleNS
		lr.LoadNS = float64(plan.LoadWriteBits) * p.MoveNSPerBit / float64(max(1, plan.RowGroups))
		lr.RequantNS = p.RequantNSPerOp * float64(plan.RequantElems) / math.Max(1, rowsF)

	case core.ClassPool:
		lr.Energy.DFGPJ = rowsF * float64(plan.PoolCmpBits) * cOut
		lr.Energy.MovementPJ = float64(plan.LoadMoveBits) * p.ActivationMoveFrac * p.MovePJPerBit
		lr.Energy.PeripheralsPJ = float64(plan.LoadWriteBits) * p.WritePJPerBit
		lr.ComputeNS = float64(plan.PoolCmpBits) * 10 * p.CycleNS
		lr.LoadNS = float64(plan.LoadWriteBits) * p.MoveNSPerBit / float64(max(1, plan.RowGroups))

	case core.ClassFree:
	}

	lr.LatencyNS = lr.ComputeNS + lr.ReduceNS + lr.LoadNS + lr.RequantNS
	return lr
}
