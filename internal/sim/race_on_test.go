//go:build race

package sim

// raceEnabled reports whether the race detector instruments this build;
// the allocation-free gate skips under it (instrumentation allocates).
const raceEnabled = true
