package sim

import (
	"fmt"

	"rtmap/internal/core"
)

// StageReport prices one pipeline stage of a sharded plan.
type StageReport struct {
	// Lo, Hi is the stage's layer range [Lo, Hi).
	Lo, Hi int
	// FillNS is the first-sample latency through the stage (the sum of
	// its layers' full latencies).
	FillNS float64
	// MarginalNS is the stage's steady-state per-sample busy time under
	// the pipelined-load model (each layer contributes max(compute, load),
	// exactly as in AnalyzeBatch).
	MarginalNS float64
	// EnergyPJ is the per-sample energy of the stage's layers.
	EnergyPJ float64
	// XferBits/XferNS/XferPJ price shipping the outgoing boundary
	// activations to the next stage's device on the movement model. Zero
	// for the last stage.
	XferBits int64
	XferNS   float64
	XferPJ   float64
}

// OccupancyNS is the stage's steady-state cadence: per-sample compute
// plus shipping its boundary activations out. The slowest stage's
// occupancy is the pipeline's bottleneck — its steady-state inter-sample
// interval.
func (s StageReport) OccupancyNS() float64 { return s.MarginalNS + s.XferNS }

// PipelineReport prices a sharded plan as a software pipeline over the
// device fleet: each stage on its own device, micro-batches streaming
// through the stages.
type PipelineReport struct {
	Stages []StageReport
	// FillNS is the first sample's end-to-end latency: every stage fill
	// plus every inter-stage transfer.
	FillNS float64
	// BottleneckNS is the largest stage occupancy — steady-state
	// throughput is one sample per BottleneckNS.
	BottleneckNS float64
	// PerSampleEnergyPJ is the per-sample energy including inter-stage
	// transfer energy (pipelining hides time, not switching activity).
	PerSampleEnergyPJ float64
}

// SteadyInfersPerSec is the steady-state pipeline throughput.
func (p *PipelineReport) SteadyInfersPerSec() float64 {
	if p.BottleneckNS <= 0 {
		return 0
	}
	return 1e9 / p.BottleneckNS
}

// AnalyzePipeline prices a sharded batch pipeline from a single-device
// analysis: per-stage fill and marginal latencies, inter-stage activation
// transfer cost from the movement model, and the steady-state bottleneck.
// For a one-stage plan the result degenerates to AnalyzeBatch's pricing:
// FillNS equals rep.TotalLatencyNS and BottleneckNS equals the batch
// model's MarginalNS (no transfers).
func AnalyzePipeline(c *core.Compiled, rep *Report, sp *core.ShardPlan) (*PipelineReport, error) {
	if len(rep.Layers) != len(c.Layers) {
		return nil, fmt.Errorf("sim: report covers %d layers, plan has %d", len(rep.Layers), len(c.Layers))
	}
	if len(sp.Stages) == 0 || sp.Stages[len(sp.Stages)-1].Hi != len(c.Layers) {
		return nil, fmt.Errorf("sim: shard plan does not cover the %d-layer network", len(c.Layers))
	}
	p := c.Cfg.Par
	pr := &PipelineReport{}
	for si, st := range sp.Stages {
		sr := StageReport{Lo: st.Lo, Hi: st.Hi}
		for _, lr := range rep.Layers[st.Lo:st.Hi] {
			sr.FillNS += lr.LatencyNS
			busy := lr.ComputeNS + lr.ReduceNS + lr.RequantNS
			sr.MarginalNS += max(busy, lr.LoadNS)
			sr.EnergyPJ += lr.Energy.TotalPJ()
		}
		if si < len(sp.Stages)-1 {
			sr.XferBits = st.XferBits
			sr.XferNS = float64(st.XferBits) * p.MoveNSPerBit
			sr.XferPJ = float64(st.XferBits) * p.MovePJPerBit
		}
		pr.Stages = append(pr.Stages, sr)
		pr.FillNS += sr.FillNS + sr.XferNS
		pr.PerSampleEnergyPJ += sr.EnergyPJ + sr.XferPJ
		if occ := sr.OccupancyNS(); occ > pr.BottleneckNS {
			pr.BottleneckNS = occ
		}
	}
	return pr, nil
}

// AnalyzeStageBatch prices a micro-batch of b samples traversing one
// stage of the pipeline, in the same pipelined-load convention as
// AnalyzeBatch: the first sample pays the stage fill, each further sample
// the stage marginal, and every sample pays the outgoing transfer.
func AnalyzeStageBatch(pr *PipelineReport, stage, b int) BatchReport {
	if b < 1 {
		b = 1
	}
	sr := pr.Stages[stage]
	br := BatchReport{
		Batch:      b,
		FirstNS:    sr.FillNS + sr.XferNS,
		MarginalNS: sr.OccupancyNS(),
	}
	br.LatencyNS = br.FirstNS + float64(b-1)*br.MarginalNS
	br.EnergyPJ = float64(b) * (sr.EnergyPJ + sr.XferPJ)
	return br
}

// AnalyzePipelineBatch prices a batch of b samples streamed through the
// whole pipeline: fill once, then one sample per bottleneck interval.
func AnalyzePipelineBatch(pr *PipelineReport, b int) BatchReport {
	if b < 1 {
		b = 1
	}
	br := BatchReport{
		Batch:      b,
		FirstNS:    pr.FillNS,
		MarginalNS: pr.BottleneckNS,
	}
	br.LatencyNS = br.FirstNS + float64(b-1)*br.MarginalNS
	br.EnergyPJ = float64(b) * pr.PerSampleEnergyPJ
	return br
}
