package sim

import (
	"math"
	"testing"

	"rtmap/internal/core"
	"rtmap/internal/model"
)

func analyzedTinyCNN(t *testing.T) *Report {
	t.Helper()
	net := model.TinyCNN(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	comp, err := core.Compile(net, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(comp)
}

// One replica must price exactly like a plain batch: replication is the
// identity at R=1, the same way a one-stage pipeline matches AnalyzeBatch.
func TestReplicatedBatchSingleReplicaMatchesBatch(t *testing.T) {
	rep := analyzedTinyCNN(t)
	for _, b := range []int{1, 2, 7, 32} {
		br := AnalyzeBatch(rep, b)
		rr := AnalyzeReplicatedBatch(rep, b, 1)
		if rr.LatencyNS != br.LatencyNS {
			t.Fatalf("b=%d: replicated latency %g != batch latency %g", b, rr.LatencyNS, br.LatencyNS)
		}
		if rr.SteadyNS != br.MarginalNS {
			t.Fatalf("b=%d: steady %g != marginal %g", b, rr.SteadyNS, br.MarginalNS)
		}
		if rr.EnergyPJ != br.EnergyPJ {
			t.Fatalf("b=%d: energy %g != %g", b, rr.EnergyPJ, br.EnergyPJ)
		}
	}
}

// Replication splits the batch: latency tracks the largest share, the
// aggregate steady-state interval divides by R, and energy stays a
// function of the sample count alone.
func TestReplicatedBatchScaling(t *testing.T) {
	rep := analyzedTinyCNN(t)
	const b = 32
	base := AnalyzeReplicatedBatch(rep, b, 1)
	for _, r := range []int{2, 4, 8} {
		rr := AnalyzeReplicatedBatch(rep, b, r)
		want := AnalyzeBatch(rep, (b+r-1)/r).LatencyNS
		if rr.LatencyNS != want {
			t.Fatalf("r=%d: latency %g, want ceil-share pricing %g", r, rr.LatencyNS, want)
		}
		if got, want := rr.SteadyNS, base.SteadyNS/float64(r); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("r=%d: steady %g, want %g", r, got, want)
		}
		if rr.EnergyPJ != base.EnergyPJ {
			t.Fatalf("r=%d: energy %g changed with replica count (want %g)", r, rr.EnergyPJ, base.EnergyPJ)
		}
		if sp := rr.AggregateInfersPerSec(); math.Abs(sp-float64(r)*base.AggregateInfersPerSec()) > 1e-6*sp {
			t.Fatalf("r=%d: aggregate throughput %g is not %d× the single-replica %g",
				r, sp, r, base.AggregateInfersPerSec())
		}
	}
}

// Degenerate inputs clamp instead of dividing by zero or indexing out of
// range.
func TestReplicatedBatchClamps(t *testing.T) {
	rep := analyzedTinyCNN(t)
	rr := AnalyzeReplicatedBatch(rep, 0, 0)
	if rr.Batch != 1 || rr.Replicas != 1 || rr.LatencyNS <= 0 {
		t.Fatalf("clamped report %+v", rr)
	}
	// More replicas than samples: idle replicas don't speed up the batch.
	one := AnalyzeReplicatedBatch(rep, 1, 8)
	if one.LatencyNS != AnalyzeBatch(rep, 1).LatencyNS {
		t.Fatalf("1 sample on 8 replicas priced %g, want single-sample latency", one.LatencyNS)
	}
}
