package sim

// BatchReport prices a batch of b identical inferences dispatched
// back-to-back to one device (the serving layer's unit of work).
type BatchReport struct {
	Batch int
	// FirstNS is the full fill+compute latency of the first sample —
	// identical to Report.TotalLatencyNS.
	FirstNS float64
	// MarginalNS is the steady-state latency each further sample adds.
	// With the network's weights resident in the arrays, the only
	// per-sample work is streaming activations in and computing; the next
	// sample's input loading overlaps the current sample's compute layer
	// by layer, so each layer contributes max(compute, load) rather than
	// compute+load.
	MarginalNS float64
	// LatencyNS is the simulated completion time of the whole batch:
	// FirstNS + (Batch-1)·MarginalNS.
	LatencyNS float64
	// EnergyPJ scales linearly: pipelining hides time, not switching
	// activity.
	EnergyPJ float64
}

// PerSampleNS returns the amortized per-sample latency of the batch.
func (b BatchReport) PerSampleNS() float64 {
	if b.Batch <= 0 {
		return 0
	}
	return b.LatencyNS / float64(b.Batch)
}

// AnalyzeBatch extends a single-inference Report to a batch of b samples
// under the pipelined-load model above. b < 1 is treated as 1.
func AnalyzeBatch(rep *Report, b int) BatchReport {
	if b < 1 {
		b = 1
	}
	br := BatchReport{Batch: b, FirstNS: rep.TotalLatencyNS}
	for _, lr := range rep.Layers {
		busy := lr.ComputeNS + lr.ReduceNS + lr.RequantNS
		br.MarginalNS += max(busy, lr.LoadNS)
	}
	br.LatencyNS = br.FirstNS + float64(b-1)*br.MarginalNS
	br.EnergyPJ = float64(b) * rep.Total.TotalPJ()
	return br
}
