package sim

import (
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// ShardRun is the stage-wise functional execution of one input through a
// sharded plan: the unit of work the serving pipeline streams from device
// to device. Each Step executes the next stage against a working store
// seeded ONLY with the tensors the previous stage shipped (the plan's
// XferRefs), so a completed run proves the partition's boundary transfer
// sets were sufficient — a missing tensor fails the step instead of
// silently reading state a real device would not hold.
type ShardRun struct {
	c  *core.Compiled
	sp *core.ShardPlan

	stage int
	// Boundary context carried between stages, keyed by producer layer
	// index (model.InputRef for the quantized network input).
	ctxT map[int]*tensor.Int
	ctxS map[int]float64

	// trace accumulates every layer output when the run was created with
	// tracing on (ForwardAPSharded); nil otherwise.
	trace  *model.IntTrace
	logits *tensor.Int
}

// NewShardRun quantizes the input and prepares a run positioned before
// stage 0.
func NewShardRun(c *core.Compiled, sp *core.ShardPlan, in *tensor.Float) (*ShardRun, error) {
	if len(sp.Stages) == 0 || sp.Stages[len(sp.Stages)-1].Hi != len(c.Layers) {
		return nil, fmt.Errorf("sim: shard plan does not cover the %d-layer network", len(c.Layers))
	}
	tr := quantizeInput(c, in)
	return &ShardRun{
		c: c, sp: sp,
		ctxT: map[int]*tensor.Int{model.InputRef: tr.InputCodes},
		ctxS: map[int]float64{model.InputRef: float64(c.Net.InputQ.Step)},
	}, nil
}

// Done reports whether every stage has executed.
func (r *ShardRun) Done() bool { return r.stage >= len(r.sp.Stages) }

// Stage returns the index of the next stage to execute.
func (r *ShardRun) Stage() int { return r.stage }

// Logits returns the final layer output codes; nil until Done.
func (r *ShardRun) Logits() *tensor.Int { return r.logits }

// Step executes the next stage. bitExact selects the word-level AP
// machine for conv/linear layers; false runs the (bit-identical) integer
// software reference.
func (r *ShardRun) Step(bitExact bool) error {
	if r.Done() {
		return fmt.Errorf("sim: shard run already complete")
	}
	st := r.sp.Stages[r.stage]
	tr := r.buildStore()
	if err := execLayers(r.c, tr, st.Lo, st.Hi, bitExact, nil); err != nil {
		return fmt.Errorf("sim: stage %d [%d,%d): %w", r.stage, st.Lo, st.Hi, err)
	}
	return r.finishStage(tr)
}

// StepBatch advances a set of runs positioned at the same stage of the
// same compiled plan by one stage, executing their conv layers through
// the batched engine (one program interpretation per (strip, tile,
// row-group) for all runs). Results are bit-identical to stepping each
// run alone. The returned slice has one entry per run; a batch-wide
// execution failure is attributed to every run it aborted (the runs are
// structurally identical, so it would have failed each of them alone
// too). Runs that are mismatched or already complete fall back to
// individual Steps.
func StepBatch(runs []*ShardRun, bitExact bool) []error {
	return StepBatchHook(runs, bitExact, nil)
}

// StepBatchHook is StepBatch with a per-layer observation hook (nil
// behaves exactly like StepBatch). The non-uniform fallback path steps
// runs individually and drops the hook — mixed batches are a recovery
// corner, not an attribution target.
func StepBatchHook(runs []*ShardRun, bitExact bool, hook LayerHook) []error {
	errs := make([]error, len(runs))
	if len(runs) == 0 {
		return errs
	}
	uniform := true
	for _, r := range runs {
		if r.c != runs[0].c || r.sp != runs[0].sp || r.stage != runs[0].stage || r.Done() {
			uniform = false
			break
		}
	}
	if !uniform {
		for i, r := range runs {
			errs[i] = r.Step(bitExact)
		}
		return errs
	}
	st := runs[0].sp.Stages[runs[0].stage]
	trs := make([]*model.IntTrace, len(runs))
	for i, r := range runs {
		trs[i] = r.buildStore()
	}
	if err := execLayersBatch(runs[0].c, trs, st.Lo, st.Hi, bitExact, hook); err != nil {
		err = fmt.Errorf("sim: stage %d [%d,%d): %w", runs[0].stage, st.Lo, st.Hi, err)
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	for i, r := range runs {
		errs[i] = r.finishStage(trs[i])
	}
	return errs
}

// buildStore assembles the stage's working store, holding exactly the
// carried boundary tensors.
func (r *ShardRun) buildStore() *model.IntTrace {
	n := len(r.c.Net.Layers)
	tr := &model.IntTrace{
		Outputs: make([]*tensor.Int, n),
		Scales:  make([]float64, n),
	}
	for ref, t := range r.ctxT {
		if ref == model.InputRef {
			tr.InputCodes = t
		} else {
			tr.Outputs[ref] = t
			tr.Scales[ref] = r.ctxS[ref]
		}
	}
	return tr
}

// finishStage records the executed stage's results and ships the
// boundary live set to the next stage (or captures the logits on the
// last one).
func (r *ShardRun) finishStage(tr *model.IntTrace) error {
	st := r.sp.Stages[r.stage]
	n := len(r.c.Net.Layers)
	if r.trace != nil {
		if r.stage == 0 {
			r.trace.InputCodes = tr.InputCodes
		}
		for i := st.Lo; i < st.Hi; i++ {
			r.trace.Outputs[i] = tr.Outputs[i]
			r.trace.Scales[i] = tr.Scales[i]
		}
	}

	if r.stage == len(r.sp.Stages)-1 {
		r.logits = tr.Outputs[n-1]
		r.ctxT, r.ctxS = nil, nil
		r.stage++
		return nil
	}
	// Ship exactly the boundary live set to the next stage.
	nextT := make(map[int]*tensor.Int, len(st.XferRefs))
	nextS := make(map[int]float64, len(st.XferRefs))
	for _, ref := range st.XferRefs {
		if ref == model.InputRef {
			nextT[ref] = tr.InputCodes
			nextS[ref] = float64(r.c.Net.InputQ.Step)
			continue
		}
		t := tr.Outputs[ref]
		if t == nil {
			return fmt.Errorf("sim: stage %d boundary ref %d not produced", r.stage, ref)
		}
		nextT[ref] = t
		nextS[ref] = tr.Scales[ref]
	}
	r.ctxT, r.ctxS = nextT, nextS
	r.stage++
	return nil
}

// ForwardAPSharded replays the network stage by stage under the shard
// plan, each stage isolated to its boundary context, and returns the full
// integer trace. It must be bit-identical to ForwardAP for every plan —
// the sharding analogue of the paper's "retaining software accuracy"
// property.
func ForwardAPSharded(c *core.Compiled, sp *core.ShardPlan, in *tensor.Float) (*model.IntTrace, error) {
	run, err := NewShardRun(c, sp, in)
	if err != nil {
		return nil, err
	}
	run.trace = &model.IntTrace{
		Outputs: make([]*tensor.Int, len(c.Net.Layers)),
		Scales:  make([]float64, len(c.Net.Layers)),
	}
	for !run.Done() {
		if err := run.Step(true); err != nil {
			return nil, err
		}
	}
	return run.trace, nil
}
