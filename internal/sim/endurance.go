package sim

import (
	"math"

	"rtmap/internal/core"
)

// EnduranceReport is the §V-C write-endurance analysis: RTM sustains ~10^16
// write cycles; the paper estimates that the busiest column is rewritten
// roughly every 100 ns, for a lifetime of ≈31 years.
type EnduranceReport struct {
	// WorstLayer is the layer whose accumulator cells see the highest
	// write pressure.
	WorstLayer string
	// WritesPerInference is the per-inference write count of the busiest
	// cell (an accumulator bit domain).
	WritesPerInference float64
	// MeanRewriteIntervalNS is the average time between rewrites of that
	// cell during continuous inference.
	MeanRewriteIntervalNS float64
	// LifetimeYears = endurance × interval.
	LifetimeYears float64
}

const nsPerYear = 365.25 * 24 * 3600 * 1e9

// LayerWrites returns the per-inference write count of the busiest cell
// of each layer — the §V-C wear pressure model, exposed per layer so
// the serving stack can meter cumulative writes per device (the
// rtmap_device_writes_total gauge and, eventually, wear-aware
// placement). Non-conv layers write nothing (0).
func LayerWrites(c *core.Compiled) []float64 {
	writes := make([]float64, len(c.Layers))
	for i, plan := range c.Layers {
		if plan.Class != core.ClassConv {
			continue
		}
		// The busiest cells are accumulator bit domains: one expected
		// write per accumulate pass that tags the row, plus the per-tile
		// clear. Each strip accumulates its resident channels into the
		// same physical accumulator columns across all tiles.
		chansPerStrip := (plan.InCEffective() + plan.Strips - 1) / max(1, plan.Strips)
		writes[i] = float64(plan.Tiles) * (float64(chansPerStrip)*4*tagFraction + 1)
	}
	return writes
}

// Endurance estimates device lifetime under continuous inference.
func Endurance(c *core.Compiled, rep *Report) EnduranceReport {
	out := EnduranceReport{}
	var worst float64
	for i, writes := range LayerWrites(c) {
		if writes > worst {
			worst = writes
			out.WorstLayer = c.Layers[i].Name
			out.WritesPerInference = writes
		}
	}
	if worst == 0 || rep.TotalLatencyNS == 0 {
		return out
	}
	out.MeanRewriteIntervalNS = rep.TotalLatencyNS / worst
	out.LifetimeYears = c.Cfg.Par.EnduranceCycles * out.MeanRewriteIntervalNS / nsPerYear
	if math.IsInf(out.LifetimeYears, 0) {
		out.LifetimeYears = math.MaxFloat64
	}
	return out
}
