package sim

import (
	"testing"

	"rtmap/internal/core"
	"rtmap/internal/model"
)

func analyzedTiny(t *testing.T) *Report {
	t.Helper()
	net := model.TinyCNN(model.Config{ActBits: 4, Sparsity: 0.5, Seed: 3})
	comp, err := core.Compile(net, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(comp)
}

func TestAnalyzeBatch(t *testing.T) {
	rep := analyzedTiny(t)

	one := AnalyzeBatch(rep, 1)
	if one.LatencyNS != rep.TotalLatencyNS {
		t.Fatalf("batch of 1 costs %g ns, single-inference report says %g", one.LatencyNS, rep.TotalLatencyNS)
	}
	if one.EnergyPJ != rep.Total.TotalPJ() {
		t.Fatalf("batch of 1 energy %g, report %g", one.EnergyPJ, rep.Total.TotalPJ())
	}

	// Marginal latency must be positive but no more than a full
	// serialized inference (pipelining can only help).
	if one.MarginalNS <= 0 || one.MarginalNS > rep.TotalLatencyNS {
		t.Fatalf("marginal %g ns outside (0, %g]", one.MarginalNS, rep.TotalLatencyNS)
	}

	// Linearity in the marginal term, and strict monotonicity.
	prev := one
	for _, b := range []int{2, 4, 16} {
		br := AnalyzeBatch(rep, b)
		want := one.FirstNS + float64(b-1)*one.MarginalNS
		if diff := br.LatencyNS - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("batch %d latency %g, want %g", b, br.LatencyNS, want)
		}
		if br.LatencyNS <= prev.LatencyNS {
			t.Fatalf("batch %d not slower than batch %d", b, prev.Batch)
		}
		if br.EnergyPJ != float64(b)*one.EnergyPJ {
			t.Fatalf("batch %d energy %g, want linear %g", b, br.EnergyPJ, float64(b)*one.EnergyPJ)
		}
		// Amortized per-sample latency must improve with batch size.
		if br.PerSampleNS() >= prev.PerSampleNS() {
			t.Fatalf("batch %d per-sample %g ns did not improve on %g", b, br.PerSampleNS(), prev.PerSampleNS())
		}
		prev = br
	}

	if got := AnalyzeBatch(rep, 0); got.LatencyNS != one.LatencyNS {
		t.Fatalf("batch 0 should clamp to 1")
	}
}
