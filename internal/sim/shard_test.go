package sim

import (
	"math"
	"testing"

	"rtmap/internal/core"
	"rtmap/internal/model"
)

func partitionEven(t *testing.T, c *core.Compiled, rep *Report, k int) *core.ShardPlan {
	t.Helper()
	costs := make([]float64, len(rep.Layers))
	for i, lr := range rep.Layers {
		costs[i] = lr.LatencyNS
	}
	sp, err := core.Partition(c, k, costs)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// Sharded replay — each stage isolated to the tensors its predecessor
// shipped — must stay bit-identical to the single-device functional path
// on every stage count, including K=1, K=layer-count and over-asked K.
func TestForwardAPShardedBitExact(t *testing.T) {
	nets := map[string]*model.Network{
		"tinycnn":    model.TinyCNN(model.DefaultConfig()),
		"tinyresnet": model.TinyResNet(model.DefaultConfig()),
	}
	for name, net := range nets {
		c := compileNet(t, net, true)
		rep := Analyze(c)
		for seed := uint64(0); seed < 2; seed++ {
			in := randInput(seed, net.InputShape)
			want, err := ForwardAP(c, in)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 3, len(c.Layers), len(c.Layers) + 99} {
				sp := partitionEven(t, c, rep, k)
				got, err := ForwardAPSharded(c, sp, in)
				if err != nil {
					t.Fatalf("%s k=%d: %v", name, k, err)
				}
				for i := range want.Outputs {
					if !got.Outputs[i].Equal(want.Outputs[i]) {
						t.Fatalf("%s k=%d seed=%d: layer %d diverges from ForwardAP", name, k, seed, i)
					}
					if math.Abs(got.Scales[i]-want.Scales[i]) > 1e-12*math.Abs(want.Scales[i]) {
						t.Fatalf("%s k=%d: layer %d scale %g, want %g", name, k, i, got.Scales[i], want.Scales[i])
					}
				}
			}
		}
	}
}

// The reference-mode (software) stage executor must agree with
// model.ForwardInt logits the same way the bit-exact path does.
func TestShardRunReferenceModeMatchesForwardInt(t *testing.T) {
	net := model.TinyResNet(model.DefaultConfig())
	c := compileNet(t, net, true)
	rep := Analyze(c)
	sp := partitionEven(t, c, rep, 3)
	in := randInput(11, net.InputShape)
	ref, err := net.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewShardRun(c, sp, in)
	if err != nil {
		t.Fatal(err)
	}
	for !run.Done() {
		if err := run.Step(false); err != nil {
			t.Fatal(err)
		}
	}
	if !run.Logits().Equal(ref.Logits()) {
		t.Fatalf("reference-mode sharded logits %v, ForwardInt %v", run.Logits().Data, ref.Logits().Data)
	}
	if err := run.Step(false); err == nil {
		t.Error("Step after Done must error")
	}
}

// The "small ResNet slice": MiniResNet18 keeps ResNet-18's layer graph at
// a reduced resolution. Bit-exact sharded replay across a residual
// boundary is the acceptance bar for serving the real model sharded.
func TestForwardAPShardedMiniResNet(t *testing.T) {
	if testing.Short() {
		t.Skip("mini-ResNet functional replay")
	}
	net := model.MiniResNet18(model.DefaultConfig(), 16, 16)
	c := compileNet(t, net, true)
	rep := Analyze(c)
	in := randInput(3, net.InputShape)
	want, err := ForwardAP(c, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 7} {
		sp := partitionEven(t, c, rep, k)
		got, err := ForwardAPSharded(c, sp, in)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !got.Logits().Equal(want.Logits()) {
			t.Fatalf("k=%d: sharded logits diverge", k)
		}
		for i := range want.Outputs {
			if !got.Outputs[i].Equal(want.Outputs[i]) {
				t.Fatalf("k=%d: layer %d diverges", k, i)
			}
		}
	}
}

// K=1 degeneracy: the pipeline cost model must collapse to the
// single-device batch model within rounding.
func TestAnalyzePipelineK1MatchesAnalyzeBatch(t *testing.T) {
	net := model.TinyCNN(model.DefaultConfig())
	c := compileNet(t, net, false)
	rep := Analyze(c)
	sp := partitionEven(t, c, rep, 1)
	pr, err := AnalyzePipeline(c, rep, sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 4, 32} {
		want := AnalyzeBatch(rep, b)
		got := AnalyzePipelineBatch(pr, b)
		if math.Abs(got.FirstNS-want.FirstNS) > 1e-9*want.FirstNS {
			t.Errorf("b=%d: FirstNS %g, AnalyzeBatch %g", b, got.FirstNS, want.FirstNS)
		}
		if math.Abs(got.MarginalNS-want.MarginalNS) > 1e-9*want.MarginalNS {
			t.Errorf("b=%d: MarginalNS %g, AnalyzeBatch %g", b, got.MarginalNS, want.MarginalNS)
		}
		if math.Abs(got.LatencyNS-want.LatencyNS) > 1e-9*want.LatencyNS {
			t.Errorf("b=%d: LatencyNS %g, AnalyzeBatch %g", b, got.LatencyNS, want.LatencyNS)
		}
		if math.Abs(got.EnergyPJ-want.EnergyPJ) > 1e-9*want.EnergyPJ {
			t.Errorf("b=%d: EnergyPJ %g, AnalyzeBatch %g", b, got.EnergyPJ, want.EnergyPJ)
		}
	}
}

func TestAnalyzePipelineAccounting(t *testing.T) {
	net := model.TinyResNet(model.DefaultConfig())
	c := compileNet(t, net, false)
	rep := Analyze(c)
	sp := partitionEven(t, c, rep, 3)
	pr, err := AnalyzePipeline(c, rep, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Stages) != len(sp.Stages) {
		t.Fatalf("%d stage reports for %d stages", len(pr.Stages), len(sp.Stages))
	}
	var fill, energy, bottleneck float64
	for si, sr := range pr.Stages {
		if sr.Lo != sp.Stages[si].Lo || sr.Hi != sp.Stages[si].Hi {
			t.Errorf("stage %d: range [%d,%d) != plan [%d,%d)", si, sr.Lo, sr.Hi, sp.Stages[si].Lo, sp.Stages[si].Hi)
		}
		last := si == len(pr.Stages)-1
		if last && (sr.XferBits != 0 || sr.XferNS != 0) {
			t.Errorf("last stage has transfer cost %d bits / %g ns", sr.XferBits, sr.XferNS)
		}
		if !last && sr.XferNS <= 0 {
			t.Errorf("stage %d: no transfer cost for %d boundary bits", si, sr.XferBits)
		}
		if sr.MarginalNS > sr.FillNS {
			t.Errorf("stage %d: marginal %g exceeds fill %g", si, sr.MarginalNS, sr.FillNS)
		}
		fill += sr.FillNS + sr.XferNS
		energy += sr.EnergyPJ + sr.XferPJ
		if occ := sr.OccupancyNS(); occ > bottleneck {
			bottleneck = occ
		}
	}
	if math.Abs(pr.FillNS-fill) > 1e-9*fill {
		t.Errorf("FillNS %g, stage sum %g", pr.FillNS, fill)
	}
	if math.Abs(pr.PerSampleEnergyPJ-energy) > 1e-9*energy {
		t.Errorf("PerSampleEnergyPJ %g, stage sum %g", pr.PerSampleEnergyPJ, energy)
	}
	if math.Abs(pr.BottleneckNS-bottleneck) > 1e-12 {
		t.Errorf("BottleneckNS %g, max occupancy %g", pr.BottleneckNS, bottleneck)
	}
	if pr.SteadyInfersPerSec() <= 0 {
		t.Error("non-positive steady-state throughput")
	}
	// Per-stage batch pricing sums to more than the whole-pipeline batch
	// only through fills; marginals must never exceed the bottleneck.
	for si := range pr.Stages {
		br := AnalyzeStageBatch(pr, si, 8)
		if br.MarginalNS > pr.BottleneckNS+1e-12 {
			t.Errorf("stage %d: marginal %g exceeds bottleneck %g", si, br.MarginalNS, pr.BottleneckNS)
		}
	}
}
