package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rtmap/internal/ap"
	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// This file is the batched, pooled functional execution engine: the hot
// path that replays compiled AP programs. The CAM array's whole economy
// is amortizing one program over many rows, and the engine mirrors that
// in software — a batch of N inputs lays its im2col rows side by side
// and every (strip, tile, row-group) program is interpreted once for all
// of them, through precompiled ap.ExecPlans, pooled arenas, and a
// persistent worker pool across (tile, row-group) tasks. Results are
// bit-identical to the retained single-input interpreter
// (ForwardAPBaseline); TestForwardAPBatchMatchesSerial proves it.

// i32Pool recycles im2col scratch buffers; machinePool recycles the
// column arenas of inline (non-worker) execution. Both reach an
// allocation-free steady state once the shapes of a workload have been
// seen — TestRunConvBatchIntoAllocFree gates it.
var (
	i32Pool     sync.Pool // *[]int32
	machinePool = sync.Pool{New: func() any { return new(ap.Machine) }}
	ctxPool     = sync.Pool{New: func() any { return new(convCtx) }}
)

func getI32(n int) *[]int32 {
	if p, ok := i32Pool.Get().(*[]int32); ok && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]int32, n)
	return &s
}

// convCtx is the shared state of one batched conv execution; tasks index
// into it. Pooled so the steady-state path allocates nothing.
type convCtx struct {
	plan  *core.LayerPlan
	cols  []int32 // im2col scratch: [item][channel][k·P+pos]
	cin   int
	kp    int // K·P per (item, channel) segment
	p     int
	batch int
	outs  []*tensor.Int
	tile  []int // tile row offsets

	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// colSeg returns item b's im2col matrix for global input channel ci.
func (ctx *convCtx) colSeg(b, ci int) []int32 {
	off := (b*ctx.cin + ci) * ctx.kp
	return ctx.cols[off : off+ctx.kp]
}

func (ctx *convCtx) fail(err error) {
	ctx.mu.Lock()
	if ctx.err == nil {
		ctx.err = err
	}
	ctx.mu.Unlock()
}

func (ctx *convCtx) failed() bool {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	return ctx.err != nil
}

// convTask is one (tile, row-group) unit of work: it owns a disjoint
// output region (tile → output channels, row group → output positions)
// and serially accumulates every strip's partial sums into it, so tasks
// never contend and the inter-strip reduction stays exact (int32 adds
// commute bit-exactly regardless of task order).
type convTask struct {
	ctx    *convCtx
	tile   int
	r0, r1 int
}

// The persistent worker pool. Workers own a Machine each (its arena
// grows to the largest shape it has replayed and is then reused), so
// task execution allocates nothing. submitConv never blocks on a
// saturated pool: the submitter runs the task inline instead, which
// keeps progress even when many batched executions overlap (the serving
// fleet runs one per device goroutine).
var (
	workersOnce sync.Once
	workCh      chan convTask
)

func startWorkers() {
	n := runtime.GOMAXPROCS(0)
	workCh = make(chan convTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			m := new(ap.Machine)
			for t := range workCh {
				runConvTask(t, m)
			}
		}()
	}
}

func submitConv(t convTask) {
	select {
	case workCh <- t:
	default:
		m := machinePool.Get().(*ap.Machine)
		runConvTask(t, m)
		machinePool.Put(m)
	}
}

// runConvTask executes one (tile, row-group) across every strip and all
// batch items: the machine holds n·batch rows (item b's row group lives
// at rows [b·n, (b+1)·n)) and each strip's program runs once for the
// whole batch.
//
//rtmap:noalloc
func runConvTask(t convTask, m *ap.Machine) {
	ctx := t.ctx
	defer ctx.wg.Done()
	if ctx.failed() {
		return
	}
	n := t.r1 - t.r0
	rows := n * ctx.batch
	for _, sp := range ctx.plan.StripPlans {
		tp := sp.Programs[t.tile]
		plan, err := tp.ExecPlan()
		if err != nil {
			ctx.fail(err)
			return
		}
		m.Reset(plan, rows)
		for virt, bind := range tp.InputBindings {
			chLocal, k := bind[0], bind[1]
			if chLocal >= len(sp.Channels) {
				continue // plane slot unused by this strip's tail
			}
			global := sp.Channels[chLocal]
			for b := 0; b < ctx.batch; b++ {
				src := ctx.colSeg(b, global)[k*ctx.p+t.r0 : k*ctx.p+t.r1]
				m.SetColumnInt32(virt, b*n, src)
			}
		}
		m.Run()
		for o, accV := range tp.AccVirt {
			co := ctx.tile[t.tile] + o
			for b := 0; b < ctx.batch; b++ {
				out := ctx.outs[b]
				base := out.Shape.Index(0, co, 0, 0)
				m.AccumulateColumn(accV, b*n, out.Data[base+t.r0:base+t.r1])
			}
		}
	}
}

// taskChunk picks the row range each task simulates in one machine
// pass. Rows are independent in the word-level semantics, so the camRows
// hardware granularity is not a semantic boundary: fusing row groups
// into one pass amortizes program interpretation over many more rows
// (results stay bit-identical — physically it is several row groups side
// by side). The chunk still splits enough to feed the worker pool and
// caps the machine arena so the column working set stays cache-resident.
func taskChunk(p, tiles, batch, cols, camRows int) int {
	chunk := p
	if w := runtime.GOMAXPROCS(0); tiles < 2*w {
		if c := (p*tiles + 2*w - 1) / (2 * w); c < chunk {
			chunk = c
		}
	}
	if cols > 0 {
		// ~2 MiB of int64 columns per machine.
		if c := (2 << 20) / 8 / (cols * batch); c < chunk {
			chunk = c
		}
	}
	if chunk < min(camRows, p) {
		chunk = min(camRows, p)
	}
	return chunk
}

// RunConvBatchInto executes one compiled conv/linear layer for a batch
// of inputs, accumulating the pre-requantization OFMs into caller-owned
// output tensors (zeroed here; shapes must match the layer output).
// Scratch comes from pools and programs run as precompiled ExecPlans, so
// the steady-state call allocates nothing. Requires Config.KeepPrograms.
func RunConvBatchInto(c *core.Compiled, layerIdx int, ins, outs []*tensor.Int) error {
	plan := c.Layers[layerIdx]
	if plan.Class != core.ClassConv {
		return fmt.Errorf("sim: layer %d (%s) is not conv-like", layerIdx, plan.Name)
	}
	if len(plan.StripPlans) == 0 {
		return fmt.Errorf("sim: layer %d compiled without KeepPrograms", layerIdx)
	}
	if len(ins) == 0 || len(ins) != len(outs) {
		return fmt.Errorf("sim: batch of %d inputs with %d outputs", len(ins), len(outs))
	}
	lay := &c.Net.Layers[layerIdx]
	spec := lay.ConvSpec()
	outShape := spec.OutShape(ins[0].Shape)
	for b, in := range ins {
		if in.Shape.N != 1 {
			return fmt.Errorf("sim: functional simulation runs batch-of-1 tensors, got N=%d", in.Shape.N)
		}
		if in.Shape != ins[0].Shape {
			return fmt.Errorf("sim: batch item %d shape %v != %v", b, in.Shape, ins[0].Shape)
		}
		if outs[b].Shape != outShape {
			return fmt.Errorf("sim: batch output %d shape %v, want %v", b, outs[b].Shape, outShape)
		}
		clear(outs[b].Data)
	}
	for _, sp := range plan.StripPlans {
		if len(sp.Programs) != len(plan.TileSizes) {
			return fmt.Errorf("sim: layer %d: strip has %d programs, want %d",
				layerIdx, len(sp.Programs), len(plan.TileSizes))
		}
	}

	p := plan.P
	camRows := c.Cfg.Par.CAMRows
	kp := spec.Fh * spec.Fw * p

	// im2col every (item, channel) into one pooled scratch buffer.
	scratch := getI32(len(ins) * spec.Cin * kp)
	ctx := ctxPool.Get().(*convCtx)
	ctx.plan, ctx.cols, ctx.cin, ctx.kp, ctx.p = plan, *scratch, spec.Cin, kp, p
	ctx.batch, ctx.outs, ctx.err = len(ins), outs, nil
	for b, in := range ins {
		for ci := 0; ci < spec.Cin; ci++ {
			tensor.Im2ColChannelInto(ctx.colSeg(b, ci), in, 0, ci, spec)
		}
	}
	if cap(ctx.tile) < len(plan.TileSizes) {
		ctx.tile = make([]int, len(plan.TileSizes))
	} else {
		ctx.tile = ctx.tile[:len(plan.TileSizes)]
	}
	off := 0
	for t, ts := range plan.TileSizes {
		ctx.tile[t] = off
		off += ts
	}

	workersOnce.Do(startWorkers)
	maxCols := 0
	for _, tp := range plan.StripPlans[0].Programs {
		if n := len(tp.Prog.Cols); n > maxCols {
			maxCols = n
		}
	}
	chunk := taskChunk(p, len(plan.TileSizes), len(ins), maxCols, camRows)
	for t := range plan.TileSizes {
		for r0 := 0; r0 < p; r0 += chunk {
			r1 := min(r0+chunk, p)
			ctx.wg.Add(1)
			submitConv(convTask{ctx: ctx, tile: t, r0: r0, r1: r1})
		}
	}
	ctx.wg.Wait()
	err := ctx.err
	ctx.plan, ctx.cols, ctx.outs, ctx.err = nil, nil, nil, nil
	ctxPool.Put(ctx)
	i32Pool.Put(scratch)
	return err
}

// RunConvBatch is RunConvBatchInto with freshly allocated outputs: one
// accumulated OFM per batch item, bit-identical to calling RunConv per
// item.
func RunConvBatch(c *core.Compiled, layerIdx int, ins []*tensor.Int) ([]*tensor.Int, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("sim: empty batch")
	}
	plan := c.Layers[layerIdx]
	if plan.Class != core.ClassConv {
		return nil, fmt.Errorf("sim: layer %d (%s) is not conv-like", layerIdx, plan.Name)
	}
	spec := c.Net.Layers[layerIdx].ConvSpec()
	outs := make([]*tensor.Int, len(ins))
	for b := range ins {
		outs[b] = tensor.NewInt(spec.OutShape(ins[b].Shape))
	}
	if err := RunConvBatchInto(c, layerIdx, ins, outs); err != nil {
		return nil, err
	}
	return outs, nil
}

// LayerHook observes one layer's execution on the functional engine:
// its index and name, the wall-clock start (UnixNano) and duration of
// the interpretation. Hooks feed the sampled per-layer tracing spans of
// the serving stack; a nil hook costs one branch per layer and no clock
// reads, so the untraced hot path is unchanged.
type LayerHook func(layer int, name string, startUnixNS, durNS int64)

// ForwardAPBatch runs the full network functionally for a batch of
// inputs, every conv/linear layer executed once per (strip, tile,
// row-group) across the whole batch. Each returned trace is bit-identical
// to ForwardAP on the corresponding input.
func ForwardAPBatch(c *core.Compiled, ins []*tensor.Float) ([]*model.IntTrace, error) {
	return ForwardAPBatchHook(c, ins, nil)
}

// ForwardAPBatchHook is ForwardAPBatch with a per-layer observation
// hook (nil behaves exactly like ForwardAPBatch).
func ForwardAPBatchHook(c *core.Compiled, ins []*tensor.Float, hook LayerHook) ([]*model.IntTrace, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	trs := make([]*model.IntTrace, len(ins))
	for i, in := range ins {
		trs[i] = quantizeInput(c, in)
	}
	if err := execLayersBatch(c, trs, 0, len(c.Net.Layers), true, hook); err != nil {
		return nil, err
	}
	return trs, nil
}

// execLayers executes the layer range [lo, hi) of the compiled network on
// one trace — the single-item view of execLayersBatch, kept as the entry
// point of the sharded stage runner.
func execLayers(c *core.Compiled, tr *model.IntTrace, lo, hi int, bitExact bool, hook LayerHook) error {
	return execLayersBatch(c, []*model.IntTrace{tr}, lo, hi, bitExact, hook)
}

// execLayersBatch executes the layer range [lo, hi) on every trace,
// reading inputs from and writing outputs back to each. bitExact selects
// the executor for conv/linear layers: the batched AP engine (one
// program interpretation per (strip, tile, row-group) for the whole
// batch) or the integer software reference — the two are proved
// bit-identical. An input tensor a trace does not hold is an error, so a
// sharded stage run proves its boundary transfer set is sufficient.
// hook, when non-nil, observes every layer's wall-clock interpretation
// time (one call per layer for the whole batch, not per item).
func execLayersBatch(c *core.Compiled, trs []*model.IntTrace, lo, hi int, bitExact bool, hook LayerHook) error {
	n := c.Net
	getT := func(tr *model.IntTrace, idx int) (*tensor.Int, error) {
		if idx == model.InputRef {
			if tr.InputCodes == nil {
				return nil, fmt.Errorf("sim: network input not resident")
			}
			return tr.InputCodes, nil
		}
		if tr.Outputs[idx] == nil {
			return nil, fmt.Errorf("sim: layer %d output not resident", idx)
		}
		return tr.Outputs[idx], nil
	}
	getS := func(tr *model.IntTrace, idx int) float64 {
		if idx == model.InputRef {
			return float64(n.InputQ.Step)
		}
		return tr.Scales[idx]
	}
	convIns := make([]*tensor.Int, len(trs))
	convOuts := make([]*tensor.Int, len(trs))
	for i := lo; i < hi; i++ {
		l := &n.Layers[i]
		var layerStart time.Time
		if hook != nil {
			layerStart = time.Now()
		}
		if (l.Kind == model.KindConv || l.Kind == model.KindLinear) && bitExact {
			for j, tr := range trs {
				x, err := getT(tr, l.Inputs[0])
				if err != nil {
					return fmt.Errorf("sim: layer %d (%s): %w", i, l.Name, err)
				}
				convIns[j] = x
				convOuts[j] = tensor.NewInt(l.ConvSpec().OutShape(x.Shape))
			}
			if err := RunConvBatchInto(c, i, convIns, convOuts); err != nil {
				return err
			}
			for j, tr := range trs {
				tr.Outputs[i] = convOuts[j]
				tr.Scales[i] = getS(tr, l.Inputs[0]) * float64(l.WScale)
			}
			if hook != nil {
				hook(i, l.Name, layerStart.UnixNano(), time.Since(layerStart).Nanoseconds())
			}
			continue
		}
		for _, tr := range trs {
			x, err := getT(tr, l.Inputs[0])
			if err != nil {
				return fmt.Errorf("sim: layer %d (%s): %w", i, l.Name, err)
			}
			s := getS(tr, l.Inputs[0])
			switch l.Kind {
			case model.KindConv, model.KindLinear:
				tr.Outputs[i] = tensor.ConvIntTernarySparse(x, l.W.W, l.ConvSpec())
				tr.Scales[i] = s * float64(l.WScale)
			case model.KindMaxPool:
				tr.Outputs[i] = tensor.MaxPoolInt(x, l.Pool)
				tr.Scales[i] = s
			case model.KindGlobalAvgPool:
				tr.Outputs[i] = tensor.GlobalAvgPoolInt(x)
				tr.Scales[i] = s
			case model.KindActQuant:
				out := tensor.NewInt(x.Shape)
				scale := s / float64(l.Q.Step)
				for j, cv := range x.Data {
					out.Data[j] = model.RequantCode(cv, scale, l.Q, l.ReLU)
				}
				tr.Outputs[i] = out
				tr.Scales[i] = float64(l.Q.Step)
			case model.KindAdd:
				y, err := getT(tr, l.Inputs[1])
				if err != nil {
					return fmt.Errorf("sim: layer %d (%s): %w", i, l.Name, err)
				}
				out := x.Clone()
				out.AddInt(y)
				tr.Outputs[i] = out
				tr.Scales[i] = s
			case model.KindFlatten:
				tr.Outputs[i] = &tensor.Int{
					Shape: tensor.Shape{N: x.Shape.N, C: x.Shape.C * x.Shape.H * x.Shape.W, H: 1, W: 1},
					Data:  x.Data,
				}
				tr.Scales[i] = s
			default:
				return fmt.Errorf("sim: unknown layer kind %v", l.Kind)
			}
		}
		if hook != nil {
			hook(i, l.Name, layerStart.UnixNano(), time.Since(layerStart).Nanoseconds())
		}
	}
	return nil
}
