package sim

import (
	"fmt"
	"testing"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// assertTraceEqual fails on the first layer whose output codes differ.
func assertTraceEqual(t *testing.T, net *model.Network, got, want *model.IntTrace, label string) {
	t.Helper()
	for i := range net.Layers {
		if !got.Outputs[i].Equal(want.Outputs[i]) {
			t.Fatalf("%s: layer %d (%s) diverges", label, i, net.Layers[i].Name)
		}
	}
}

// The batched engine's core property: ForwardAPBatch is bit-identical to
// per-item ForwardAP AND to the retained pre-ExecPlan interpreter
// (ForwardAPBaseline) for N ∈ {1, 3, 8}, on both a sequential and a
// residual network.
func TestForwardAPBatchMatchesSerial(t *testing.T) {
	nets := map[string]*model.Network{
		"tinycnn":    model.TinyCNN(model.DefaultConfig()),
		"tinyresnet": model.TinyResNet(model.DefaultConfig()),
	}
	for name, net := range nets {
		c := compileNet(t, net, true)
		for _, n := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/N=%d", name, n), func(t *testing.T) {
				ins := make([]*tensor.Float, n)
				for i := range ins {
					ins[i] = randInput(uint64(100*n+i), net.InputShape)
				}
				got, err := ForwardAPBatch(c, ins)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != n {
					t.Fatalf("%d traces for %d inputs", len(got), n)
				}
				for i, in := range ins {
					serial, err := ForwardAP(c, in)
					if err != nil {
						t.Fatal(err)
					}
					assertTraceEqual(t, net, got[i], serial, fmt.Sprintf("item %d vs serial", i))
					base, err := ForwardAPBaseline(c, in)
					if err != nil {
						t.Fatal(err)
					}
					assertTraceEqual(t, net, got[i], base, fmt.Sprintf("item %d vs baseline", i))
				}
			})
		}
	}
}

// Randomized single conv layers across strides, pads, kernel shapes and
// channel counts: the batched engine must equal the pre-ExecPlan
// interpreter (and through it, the direct integer convolution) item by
// item.
func TestRunConvBatchMatchesBaseline(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		cin := 1 + trial%5
		k := 1 + trial%3
		stride := 1 + trial%2
		h := k + 3 + trial
		net := singleConvNet(uint64(trial+21), cin, 2+trial, k, stride, k/2, h, 0.5)
		c := compileNet(t, net, true)

		const n = 5
		ins := make([]*tensor.Int, n)
		for b := range ins {
			in := randInput(uint64(trial*10+b), net.InputShape)
			tr, err := net.ForwardInt(in)
			if err != nil {
				t.Fatal(err)
			}
			ins[b] = tr.InputCodes
		}
		outs, err := RunConvBatch(c, 0, ins)
		if err != nil {
			t.Fatal(err)
		}
		for b, in := range ins {
			want, err := runConvBaseline(c, 0, in)
			if err != nil {
				t.Fatal(err)
			}
			if !outs[b].Equal(want) {
				t.Fatalf("trial %d item %d: batched conv != baseline", trial, b)
			}
		}
	}
}

// StepBatch under a shard plan: a batch of runs advanced stage by stage
// must end bit-identical to ForwardAP, and mismatched-stage batches must
// fall back to individual stepping rather than corrupt state.
func TestStepBatchMatchesStep(t *testing.T) {
	net := model.TinyResNet(model.DefaultConfig())
	c := compileNet(t, net, true)
	rep := Analyze(c)
	costs := make([]float64, len(rep.Layers))
	for i, lr := range rep.Layers {
		costs[i] = lr.LatencyNS
	}
	sp, err := core.Partition(c, 3, costs)
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	ins := make([]*tensor.Float, n)
	runs := make([]*ShardRun, n)
	for i := range ins {
		ins[i] = randInput(uint64(i+500), net.InputShape)
		runs[i], err = NewShardRun(c, sp, ins[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	for !runs[0].Done() {
		for i, err := range StepBatch(runs, true) {
			if err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
		}
	}
	for i, in := range ins {
		ref, err := ForwardAP(c, in)
		if err != nil {
			t.Fatal(err)
		}
		if !runs[i].Logits().Equal(ref.Logits()) {
			t.Fatalf("run %d: sharded batch logits diverge from ForwardAP", i)
		}
	}

	// Mismatched stages: one fresh run alongside finished ones falls back
	// to per-run stepping; the finished runs report completion errors and
	// the fresh one still advances correctly.
	fresh, err := NewShardRun(c, sp, ins[0])
	if err != nil {
		t.Fatal(err)
	}
	mixed := []*ShardRun{runs[0], fresh}
	for !fresh.Done() {
		errs := StepBatch(mixed, true)
		if errs[0] == nil {
			t.Fatal("completed run must error on further steps")
		}
		if errs[1] != nil {
			t.Fatalf("fresh run: %v", errs[1])
		}
	}
	ref, err := ForwardAP(c, ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Logits().Equal(ref.Logits()) {
		t.Fatal("fallback-stepped run diverges from ForwardAP")
	}
}

// The pooled steady-state path is allocation-free per call: once the
// pools have seen the workload's shapes, RunConvBatchInto performs a
// whole batched layer execution without a single heap allocation.
// testing.AllocsPerRun divides total allocations by the run count, so
// stray pool refills (a GC emptying a sync.Pool mid-measurement) wash
// out instead of flaking the gate.
func TestRunConvBatchIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	net := model.TinyCNN(model.DefaultConfig())
	c := compileNet(t, net, true)

	const n = 4
	ins := make([]*tensor.Int, n)
	outs := make([]*tensor.Int, n)
	spec := c.Net.Layers[0].ConvSpec()
	for b := range ins {
		in := randInput(uint64(b+900), net.InputShape)
		tr, err := net.ForwardInt(in)
		if err != nil {
			t.Fatal(err)
		}
		ins[b] = tr.InputCodes
		outs[b] = tensor.NewInt(spec.OutShape(tr.InputCodes.Shape))
	}
	run := func() {
		if err := RunConvBatchInto(c, 0, ins, outs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		run() // warm the pools, the worker fleet, and every ExecPlan
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("steady-state RunConvBatchInto allocates %.1f times per call, want 0", avg)
	}
}

// benchNet compiles a zoo network with programs retained for the
// functional-execution benchmarks.
func benchNet(b *testing.B, name string) (*model.Network, *core.Compiled) {
	b.Helper()
	var net *model.Network
	switch name {
	case "tinycnn":
		net = model.TinyCNN(model.DefaultConfig())
	case "miniresnet18":
		net = model.MiniResNet18(model.DefaultConfig(), 32, 32)
	case "resnet18":
		net = model.ResNet18(model.DefaultConfig())
	default:
		b.Fatalf("unknown bench network %q", name)
	}
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	c, err := core.Compile(net, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return net, c
}

// BenchmarkRunFunctional measures single-stream functional execution on
// the batched ExecPlan engine (batch = 1). The resnet18 case is the
// ISSUE's headline metric and runs only without -short (it simulates a
// full ImageNet-scale inference per iteration).
func BenchmarkRunFunctional(b *testing.B) {
	for _, name := range []string{"tinycnn", "miniresnet18", "resnet18"} {
		b.Run(name, func(b *testing.B) {
			if testing.Short() && name == "resnet18" {
				b.Skip("full ImageNet-scale functional simulation")
			}
			net, c := benchNet(b, name)
			in := randInput(7, net.InputShape)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ForwardAP(c, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunFunctionalBaseline is the same workload on the retained
// pre-ExecPlan interpreter — the A/B partner of BenchmarkRunFunctional.
func BenchmarkRunFunctionalBaseline(b *testing.B) {
	for _, name := range []string{"tinycnn", "miniresnet18"} {
		b.Run(name, func(b *testing.B) {
			net, c := benchNet(b, name)
			in := randInput(7, net.InputShape)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ForwardAPBaseline(c, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunConvBatch measures one conv layer at increasing batch
// sizes; ns/op is divided by the batch so the per-inference amortization
// is directly visible.
func BenchmarkRunConvBatch(b *testing.B) {
	for _, name := range []string{"tinycnn", "miniresnet18"} {
		net, c := benchNet(b, name)
		for _, batch := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/batch%d", name, batch), func(b *testing.B) {
				ins := make([]*tensor.Int, batch)
				outs := make([]*tensor.Int, batch)
				spec := c.Net.Layers[0].ConvSpec()
				for i := range ins {
					tr, err := net.ForwardInt(randInput(uint64(i), net.InputShape))
					if err != nil {
						b.Fatal(err)
					}
					ins[i] = tr.InputCodes
					outs[i] = tensor.NewInt(spec.OutShape(tr.InputCodes.Shape))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := RunConvBatchInto(c, 0, ins, outs); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/infer")
			})
		}
	}
}
