package sim

import (
	"fmt"

	"rtmap/internal/ap"
	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// RunConv executes one compiled conv/linear layer functionally: every
// (strip, tile, row-group) program runs on the word-level AP machine with
// its im2col inputs, strip partials are reduced, and the accumulated OFM
// (pre-requantization) is returned. Requires Config.KeepPrograms.
//
// The word-level machine is bit-exact with the pass-level CAM execution
// (proved by the ap package's randomized equivalence tests), so this
// output is exactly what the physical array would produce.
func RunConv(c *core.Compiled, layerIdx int, in *tensor.Int) (*tensor.Int, error) {
	plan := c.Layers[layerIdx]
	if plan.Class != core.ClassConv {
		return nil, fmt.Errorf("sim: layer %d (%s) is not conv-like", layerIdx, plan.Name)
	}
	if len(plan.StripPlans) == 0 {
		return nil, fmt.Errorf("sim: layer %d compiled without KeepPrograms", layerIdx)
	}
	if in.Shape.N != 1 {
		return nil, fmt.Errorf("sim: functional simulation runs batch 1, got %d", in.Shape.N)
	}
	lay := &c.Net.Layers[layerIdx]
	spec := lay.ConvSpec()
	out := tensor.NewInt(spec.OutShape(in.Shape))
	p := plan.P
	camRows := c.Cfg.Par.CAMRows

	// im2col per input channel (K×P, row-major).
	cols := make([][]int32, spec.Cin)
	for ci := 0; ci < spec.Cin; ci++ {
		cols[ci] = tensor.Im2ColChannel(in, 0, ci, spec)
	}

	// Tile row offsets.
	tileLo := make([]int, len(plan.TileSizes))
	off := 0
	for t, ts := range plan.TileSizes {
		tileLo[t] = off
		off += ts
	}

	for _, sp := range plan.StripPlans {
		if len(sp.Programs) != len(plan.TileSizes) {
			return nil, fmt.Errorf("sim: layer %d: strip has %d programs, want %d",
				layerIdx, len(sp.Programs), len(plan.TileSizes))
		}
		for t, tp := range sp.Programs {
			for r0 := 0; r0 < p; r0 += camRows {
				r1 := r0 + camRows
				if r1 > p {
					r1 = p
				}
				n := r1 - r0
				m, err := ap.NewWordMachine(tp.Prog, n)
				if err != nil {
					return nil, err
				}
				vals := make([]int64, n)
				for virt, bind := range tp.InputBindings {
					chLocal, k := bind[0], bind[1]
					if chLocal >= len(sp.Channels) {
						continue // plane slot unused by this strip's tail
					}
					global := sp.Channels[chLocal]
					src := cols[global][k*p+r0 : k*p+r1]
					for i, v := range src {
						vals[i] = int64(v)
					}
					m.SetColumn(virt, vals)
				}
				if err := m.Run(); err != nil {
					return nil, err
				}
				for o, accV := range tp.AccVirt {
					co := tileLo[t] + o
					acc := m.Column(accV)
					base := out.Shape.Index(0, co, 0, 0)
					for i := 0; i < n; i++ {
						out.Data[base+r0+i] += int32(acc[i]) // inter-strip reduction
					}
				}
			}
		}
	}
	return out, nil
}

// ForwardAP runs the full network functionally with every conv/linear
// layer executed on the AP (RunConv) and all other layers on their exact
// integer semantics — the same fused requantization the hardware applies.
// The result must be bit-identical to model.ForwardInt; TestForwardAPExact
// asserts this on randomized networks.
func ForwardAP(c *core.Compiled, in *tensor.Float) (*model.IntTrace, error) {
	tr := quantizeInput(c, in)
	if err := execLayers(c, tr, 0, len(c.Net.Layers), true); err != nil {
		return nil, err
	}
	return tr, nil
}

// quantizeInput builds an empty trace seeded with the quantized network
// input codes.
func quantizeInput(c *core.Compiled, in *tensor.Float) *model.IntTrace {
	n := c.Net
	codes := tensor.NewInt(tensor.Shape{N: 1, C: n.InputShape.C, H: n.InputShape.H, W: n.InputShape.W})
	for i, v := range in.Data {
		codes.Data[i] = n.InputQ.Quantize(v)
	}
	return &model.IntTrace{
		Outputs:    make([]*tensor.Int, len(n.Layers)),
		Scales:     make([]float64, len(n.Layers)),
		InputCodes: codes,
	}
}

// execLayers executes the layer range [lo, hi) of the compiled network on
// the trace, reading inputs from it and writing outputs back. bitExact
// selects the executor for conv/linear layers: the word-level AP machine
// (RunConv) or the integer software reference — the two are proved
// bit-identical. An input tensor the trace does not hold is an error, so
// a sharded stage run proves its boundary transfer set is sufficient.
func execLayers(c *core.Compiled, tr *model.IntTrace, lo, hi int, bitExact bool) error {
	n := c.Net
	getT := func(idx int) (*tensor.Int, error) {
		if idx == model.InputRef {
			if tr.InputCodes == nil {
				return nil, fmt.Errorf("sim: network input not resident")
			}
			return tr.InputCodes, nil
		}
		if tr.Outputs[idx] == nil {
			return nil, fmt.Errorf("sim: layer %d output not resident", idx)
		}
		return tr.Outputs[idx], nil
	}
	getS := func(idx int) float64 {
		if idx == model.InputRef {
			return float64(n.InputQ.Step)
		}
		return tr.Scales[idx]
	}
	for i := lo; i < hi; i++ {
		l := &n.Layers[i]
		x, err := getT(l.Inputs[0])
		if err != nil {
			return fmt.Errorf("sim: layer %d (%s): %w", i, l.Name, err)
		}
		s := getS(l.Inputs[0])
		switch l.Kind {
		case model.KindConv, model.KindLinear:
			var out *tensor.Int
			if bitExact {
				out, err = RunConv(c, i, x)
				if err != nil {
					return err
				}
			} else {
				out = tensor.ConvIntTernarySparse(x, l.W.W, l.ConvSpec())
			}
			tr.Outputs[i] = out
			tr.Scales[i] = s * float64(l.WScale)
		case model.KindMaxPool:
			tr.Outputs[i] = tensor.MaxPoolInt(x, l.Pool)
			tr.Scales[i] = s
		case model.KindGlobalAvgPool:
			tr.Outputs[i] = tensor.GlobalAvgPoolInt(x)
			tr.Scales[i] = s
		case model.KindActQuant:
			out := tensor.NewInt(x.Shape)
			scale := s / float64(l.Q.Step)
			for j, cv := range x.Data {
				out.Data[j] = model.RequantCode(cv, scale, l.Q, l.ReLU)
			}
			tr.Outputs[i] = out
			tr.Scales[i] = float64(l.Q.Step)
		case model.KindAdd:
			y, err := getT(l.Inputs[1])
			if err != nil {
				return fmt.Errorf("sim: layer %d (%s): %w", i, l.Name, err)
			}
			out := x.Clone()
			out.AddInt(y)
			tr.Outputs[i] = out
			tr.Scales[i] = s
		case model.KindFlatten:
			tr.Outputs[i] = &tensor.Int{
				Shape: tensor.Shape{N: x.Shape.N, C: x.Shape.C * x.Shape.H * x.Shape.W, H: 1, W: 1},
				Data:  x.Data,
			}
			tr.Scales[i] = s
		default:
			return fmt.Errorf("sim: unknown layer kind %v", l.Kind)
		}
	}
	return nil
}
