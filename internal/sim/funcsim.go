package sim

import (
	"fmt"

	"rtmap/internal/ap"
	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// RunConv executes one compiled conv/linear layer functionally: every
// (strip, tile, row-group) program runs on the word-level AP machine with
// its im2col inputs, strip partials are reduced, and the accumulated OFM
// (pre-requantization) is returned. Requires Config.KeepPrograms.
//
// The word-level machine is bit-exact with the pass-level CAM execution
// (proved by the ap package's randomized equivalence tests), so this
// output is exactly what the physical array would produce. Execution runs
// on the batched ExecPlan engine (exec.go) with a batch of one.
func RunConv(c *core.Compiled, layerIdx int, in *tensor.Int) (*tensor.Int, error) {
	if in.Shape.N != 1 {
		return nil, fmt.Errorf("sim: functional simulation runs batch 1, got %d", in.Shape.N)
	}
	outs, err := RunConvBatch(c, layerIdx, []*tensor.Int{in})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// ForwardAP runs the full network functionally with every conv/linear
// layer executed on the AP (RunConv) and all other layers on their exact
// integer semantics — the same fused requantization the hardware applies.
// The result must be bit-identical to model.ForwardInt; TestForwardAPExact
// asserts this on randomized networks.
func ForwardAP(c *core.Compiled, in *tensor.Float) (*model.IntTrace, error) {
	trs, err := ForwardAPBatch(c, []*tensor.Float{in})
	if err != nil {
		return nil, err
	}
	return trs[0], nil
}

// quantizeInput builds an empty trace seeded with the quantized network
// input codes.
func quantizeInput(c *core.Compiled, in *tensor.Float) *model.IntTrace {
	n := c.Net
	codes := tensor.NewInt(tensor.Shape{N: 1, C: n.InputShape.C, H: n.InputShape.H, W: n.InputShape.W})
	for i, v := range in.Data {
		codes.Data[i] = n.InputQ.Quantize(v)
	}
	return &model.IntTrace{
		Outputs:    make([]*tensor.Int, len(n.Layers)),
		Scales:     make([]float64, len(n.Layers)),
		InputCodes: codes,
	}
}

// ForwardAPBaseline is the pre-ExecPlan functional executor: one freshly
// allocated WordMachine per (strip, tile, row-group), serial layer by
// layer. It is retained deliberately — as the measured baseline of the
// rtmap-bench -exec engine sweep, and as an independent oracle the
// batched engine is tested against (two interpreters of the same
// programs must agree bit for bit).
func ForwardAPBaseline(c *core.Compiled, in *tensor.Float) (*model.IntTrace, error) {
	tr := quantizeInput(c, in)
	if err := execLayersBaseline(c, tr, 0, len(c.Net.Layers)); err != nil {
		return nil, err
	}
	return tr, nil
}

// runConvBaseline is the original single-input interpreter behind
// ForwardAPBaseline.
func runConvBaseline(c *core.Compiled, layerIdx int, in *tensor.Int) (*tensor.Int, error) {
	plan := c.Layers[layerIdx]
	if plan.Class != core.ClassConv {
		return nil, fmt.Errorf("sim: layer %d (%s) is not conv-like", layerIdx, plan.Name)
	}
	if len(plan.StripPlans) == 0 {
		return nil, fmt.Errorf("sim: layer %d compiled without KeepPrograms", layerIdx)
	}
	if in.Shape.N != 1 {
		return nil, fmt.Errorf("sim: functional simulation runs batch 1, got %d", in.Shape.N)
	}
	lay := &c.Net.Layers[layerIdx]
	spec := lay.ConvSpec()
	out := tensor.NewInt(spec.OutShape(in.Shape))
	p := plan.P
	camRows := c.Cfg.Par.CAMRows

	// im2col per input channel (K×P, row-major).
	cols := make([][]int32, spec.Cin)
	for ci := 0; ci < spec.Cin; ci++ {
		cols[ci] = tensor.Im2ColChannel(in, 0, ci, spec)
	}

	// Tile row offsets.
	tileLo := make([]int, len(plan.TileSizes))
	off := 0
	for t, ts := range plan.TileSizes {
		tileLo[t] = off
		off += ts
	}

	for _, sp := range plan.StripPlans {
		if len(sp.Programs) != len(plan.TileSizes) {
			return nil, fmt.Errorf("sim: layer %d: strip has %d programs, want %d",
				layerIdx, len(sp.Programs), len(plan.TileSizes))
		}
		for t, tp := range sp.Programs {
			for r0 := 0; r0 < p; r0 += camRows {
				r1 := r0 + camRows
				if r1 > p {
					r1 = p
				}
				n := r1 - r0
				m, err := ap.NewWordMachine(tp.Prog, n)
				if err != nil {
					return nil, err
				}
				vals := make([]int64, n)
				for virt, bind := range tp.InputBindings {
					chLocal, k := bind[0], bind[1]
					if chLocal >= len(sp.Channels) {
						continue // plane slot unused by this strip's tail
					}
					global := sp.Channels[chLocal]
					src := cols[global][k*p+r0 : k*p+r1]
					for i, v := range src {
						vals[i] = int64(v)
					}
					m.SetColumn(virt, vals)
				}
				if err := m.Run(); err != nil {
					return nil, err
				}
				for o, accV := range tp.AccVirt {
					co := tileLo[t] + o
					acc := m.Column(accV)
					base := out.Shape.Index(0, co, 0, 0)
					for i := 0; i < n; i++ {
						out.Data[base+r0+i] += int32(acc[i]) // inter-strip reduction
					}
				}
			}
		}
	}
	return out, nil
}

// execLayersBaseline is the serial layer loop of the baseline executor
// (conv/linear layers via runConvBaseline, everything else on the exact
// integer semantics shared with the batched engine).
func execLayersBaseline(c *core.Compiled, tr *model.IntTrace, lo, hi int) error {
	n := c.Net
	for i := lo; i < hi; i++ {
		l := &n.Layers[i]
		if l.Kind == model.KindConv || l.Kind == model.KindLinear {
			x := tr.InputOf(n, i, 0)
			if x == nil {
				return fmt.Errorf("sim: layer %d (%s): input not resident", i, l.Name)
			}
			out, err := runConvBaseline(c, i, x)
			if err != nil {
				return err
			}
			s := float64(n.InputQ.Step)
			if ref := l.Inputs[0]; ref != model.InputRef {
				s = tr.Scales[ref]
			}
			tr.Outputs[i] = out
			tr.Scales[i] = s * float64(l.WScale)
			continue
		}
		if err := execLayersBatch(c, []*model.IntTrace{tr}, i, i+1, false, nil); err != nil {
			return err
		}
	}
	return nil
}
