package sim

import (
	"math"
	"math/rand/v2"
	"testing"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/quant"
	"rtmap/internal/tensor"
	"rtmap/internal/ternary"
)

func randInput(seed uint64, s tensor.Shape) *tensor.Float {
	rng := rand.New(rand.NewPCG(seed, seed^0xf00d))
	in := tensor.NewFloat(s)
	for i := range in.Data {
		in.Data[i] = float32(math.Abs(rng.NormFloat64())) * 0.5
	}
	return in
}

func compileNet(t *testing.T, net *model.Network, keep bool) *core.Compiled {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = keep
	c, err := core.Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The headline correctness claim of the paper ("retaining software
// accuracy"): AP execution is bit-exact with the integer software
// reference, end to end.
func TestForwardAPExactTinyCNN(t *testing.T) {
	net := model.TinyCNN(model.DefaultConfig())
	c := compileNet(t, net, true)
	for seed := uint64(0); seed < 5; seed++ {
		in := randInput(seed, net.InputShape)
		ref, err := net.ForwardInt(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ForwardAP(c, in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range net.Layers {
			if !got.Outputs[i].Equal(ref.Outputs[i]) {
				t.Fatalf("seed %d: layer %d (%s) diverges from software reference",
					seed, i, net.Layers[i].Name)
			}
		}
	}
}

func TestForwardAPExactTinyResNet(t *testing.T) {
	net := model.TinyResNet(model.DefaultConfig())
	c := compileNet(t, net, true)
	in := randInput(42, net.InputShape)
	ref, err := net.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ForwardAP(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Logits().Equal(ref.Logits()) {
		t.Fatal("residual network diverges from software reference")
	}
}

// Randomized single conv layers across strides, pads, kernel shapes and
// channel counts: RunConv must equal the direct integer convolution.
func TestRunConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	for trial := 0; trial < 12; trial++ {
		cin := 1 + rng.IntN(6)
		cout := 1 + rng.IntN(10)
		k := 1 + rng.IntN(3)
		stride := 1 + rng.IntN(2)
		h := k + 2 + rng.IntN(6)
		sp := 0.3 + 0.5*rng.Float64()

		net := singleConvNet(uint64(trial+1), cin, cout, k, stride, k/2, h, sp)
		c := compileNet(t, net, true)

		in := randInput(uint64(trial+7), net.InputShape)
		tr, err := net.ForwardInt(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunConv(c, 0, tr.InputCodes)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(tr.Outputs[0]) {
			t.Fatalf("trial %d: conv cin=%d cout=%d k=%d s=%d: AP != reference",
				trial, cin, cout, k, stride)
		}
	}
}

// singleConvNet builds a minimal network with exactly one conv layer.
func singleConvNet(seed uint64, cin, cout, k, stride, pad, h int, sparsity float64) *model.Network {
	rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
	net := &model.Network{
		Name:       "single-conv",
		InputShape: tensor.Shape{N: 1, C: cin, H: h, W: h},
		InputQ:     quant.Quantizer{Bits: 4, Step: 0.25},
	}
	net.Layers = append(net.Layers, model.Layer{
		Kind: model.KindConv, Name: "conv", Inputs: []int{model.InputRef},
		W: ternary.Random(rng, cout, cin, k, k, sparsity), WScale: 1, Stride: stride, Pad: pad,
	})
	return net
}

func TestAnalyzeProducesPositiveCosts(t *testing.T) {
	net := model.TinyResNet(model.DefaultConfig())
	c := compileNet(t, net, false)
	rep := Analyze(c)
	if rep.Total.TotalPJ() <= 0 {
		t.Fatal("zero total energy")
	}
	if rep.TotalLatencyNS <= 0 {
		t.Fatal("zero total latency")
	}
	for _, lr := range rep.Layers {
		if lr.Plan.Class == core.ClassConv {
			// 1×1 convs and FC layers may compile to pure accumulation
			// (every row is a single signed term), so DFG energy alone
			// can legitimately be zero.
			if lr.Energy.DFGPJ+lr.Energy.AccumPJ <= 0 || lr.LatencyNS <= 0 {
				t.Errorf("layer %s: empty conv cost %+v", lr.Plan.Name, lr.Energy)
			}
		}
	}
	// Components sum to total.
	var sum float64
	for _, lr := range rep.Layers {
		sum += lr.Energy.TotalPJ()
	}
	if math.Abs(sum-rep.Total.TotalPJ()) > 1e-6*sum {
		t.Errorf("component sum %g != total %g", sum, rep.Total.TotalPJ())
	}
}

func TestEightBitCostsMore(t *testing.T) {
	mk := func(bits int) *Report {
		net := model.TinyCNN(model.Config{ActBits: bits, Sparsity: 0.5, Seed: 3})
		return Analyze(compileNet(t, net, false))
	}
	r4, r8 := mk(4), mk(8)
	if r8.Total.TotalPJ() <= r4.Total.TotalPJ() {
		t.Errorf("8-bit energy %g should exceed 4-bit %g", r8.Total.TotalPJ(), r4.Total.TotalPJ())
	}
	if r8.TotalLatencyNS <= r4.TotalLatencyNS {
		t.Errorf("8-bit latency %g should exceed 4-bit %g", r8.TotalLatencyNS, r4.TotalLatencyNS)
	}
}

func TestEnduranceReport(t *testing.T) {
	net := model.TinyResNet(model.DefaultConfig())
	c := compileNet(t, net, false)
	rep := Analyze(c)
	e := Endurance(c, rep)
	if e.LifetimeYears <= 0 {
		t.Fatalf("non-positive lifetime: %+v", e)
	}
	if e.MeanRewriteIntervalNS <= 0 {
		t.Fatalf("non-positive rewrite interval: %+v", e)
	}
}

// A mid-size sequential network (multiple row groups, strips and planes)
// exercises the full mapping machinery functionally.
func TestForwardAPExactMediumNet(t *testing.T) {
	if testing.Short() {
		t.Skip("medium functional simulation")
	}
	net := mediumNet()
	c := compileNet(t, net, true)
	in := randInput(77, net.InputShape)
	ref, err := net.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ForwardAP(c, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Layers {
		if !got.Outputs[i].Equal(ref.Outputs[i]) {
			t.Fatalf("layer %d (%s) diverges", i, net.Layers[i].Name)
		}
	}
	// This configuration must actually exercise multi-row-group and
	// multi-strip mapping, or the test is vacuous.
	sawMultiRG, sawMultiStrip := false, false
	for _, p := range c.Layers {
		if p.RowGroups > 1 {
			sawMultiRG = true
		}
		if p.Strips > 1 {
			sawMultiStrip = true
		}
	}
	if !sawMultiRG {
		t.Error("medium net never used multiple row groups")
	}
	if !sawMultiStrip {
		t.Error("medium net never used multiple strips")
	}
}

// mediumNet: 24×24 input (3 row groups), 40 input channels in the second
// conv (3 strips at 4-bit with 1 plane), pooling and a classifier.
func mediumNet() *model.Network {
	rng := rand.New(rand.NewPCG(21, 22))
	net := &model.Network{
		Name:       "medium",
		InputShape: tensor.Shape{N: 1, C: 3, H: 24, W: 24},
		InputQ:     quant.Quantizer{Bits: 4, Step: 0.25},
	}
	add := func(l model.Layer) int {
		net.Layers = append(net.Layers, l)
		return len(net.Layers) - 1
	}
	c1 := add(model.Layer{Kind: model.KindConv, Name: "c1", Inputs: []int{model.InputRef},
		W: ternary.Random(rng, 40, 3, 3, 3, 0.6), WScale: 1, Stride: 1, Pad: 1})
	q1 := add(model.Layer{Kind: model.KindActQuant, Name: "q1", Inputs: []int{c1},
		Q: quant.Quantizer{Bits: 4, Step: 2}, ReLU: true})
	c2 := add(model.Layer{Kind: model.KindConv, Name: "c2", Inputs: []int{q1},
		W: ternary.Random(rng, 24, 40, 3, 3, 0.6), WScale: 1, Stride: 2, Pad: 1})
	q2 := add(model.Layer{Kind: model.KindActQuant, Name: "q2", Inputs: []int{c2},
		Q: quant.Quantizer{Bits: 4, Step: 8}, ReLU: true})
	g := add(model.Layer{Kind: model.KindGlobalAvgPool, Name: "gap", Inputs: []int{q2}})
	f := add(model.Layer{Kind: model.KindFlatten, Name: "flat", Inputs: []int{g}})
	add(model.Layer{Kind: model.KindLinear, Name: "fc", Inputs: []int{f},
		W: ternary.Random(rng, 5, 24, 1, 1, 0.5), WScale: 1, Stride: 1})
	return net
}
