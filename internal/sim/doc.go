// Package sim evaluates compiled networks on the RTM-AP model: an
// analytic performance/energy estimator driven by the figures of merit of
// §V (the same methodology as the paper's functional simulator), an exact
// functional executor that replays emitted AP programs on the word-level
// machine and proves bit-exactness against the software reference, and
// the §V-C write-endurance analysis.
//
// The batch and pipeline cost models extend the per-inference analysis
// to the serving layer: AnalyzeBatch prices back-to-back samples on one
// device under the pipelined-load model, and AnalyzePipeline prices a
// core.ShardPlan as a software pipeline across devices (stage fill and
// marginal latencies, inter-stage activation transfer cost, bottleneck
// throughput). ShardRun/ForwardAPSharded execute a sharded plan stage by
// stage, each stage isolated to the activations its predecessor shipped,
// bit-identically to single-device execution.
//
// Functional execution runs on the batched, pooled engine of exec.go:
// ForwardAPBatch/RunConvBatch lay a batch's im2col rows side by side so
// every (strip, tile, row-range) program is interpreted once per batch
// through precompiled ap.ExecPlans, with sync.Pool-backed scratch and a
// persistent worker pool. ForwardAP is the batch-of-one wrapper, and
// ForwardAPBaseline retains the pre-ExecPlan interpreter as the
// rtmap-bench -exec A/B baseline and as an independent oracle.
package sim
