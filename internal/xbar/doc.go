// Package xbar is the DNN+NeuroSim-style crossbar baseline of the paper's
// evaluation (§V, [14]): an RRAM compute-in-memory accelerator with
// 256×256 analog arrays, 8-bit weights, bit-serial activation streaming
// through DACs and 5-bit ADC readout, plus digital shift-add accumulation,
// buffers and an interconnect whose traffic dominates data-movement energy
// (the paper quotes communication at 41% of total crossbar energy).
//
// Like NeuroSim itself, this is an analytic estimator: per-layer energy
// and latency follow from operation counts times per-event figures of
// merit. The constants are calibrated so the whole-network totals land in
// the range Table II reports for DNN+NeuroSim, and the *ratios* to RTM-AP
// are what the reproduction tracks.
package xbar
