package xbar

import (
	"math"
	"math/rand/v2"
	"testing"

	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

func TestAnalyzeVGG9Shape(t *testing.T) {
	net := model.VGG9(model.Config{ActBits: 4, Sparsity: 0.85, Seed: 1})
	r4 := Analyze(net, Default(), 4)
	r8 := Analyze(net, Default(), 8)
	if r4.EnergyUJ() <= 0 || r4.LatencyMS() <= 0 {
		t.Fatal("empty crossbar analysis")
	}
	// 8-bit streaming costs more energy and slightly more time.
	if r8.EnergyUJ() <= r4.EnergyUJ() {
		t.Errorf("8-bit energy %.2f <= 4-bit %.2f", r8.EnergyUJ(), r4.EnergyUJ())
	}
	if r8.TotalLatencyNS <= r4.TotalLatencyNS {
		t.Error("8-bit latency must exceed 4-bit")
	}
	// The paper quotes NeuroSim latency growing mildly with bits
	// (9.56→12.2 ms is ×1.28 for ResNet-18); check sub-linear growth.
	if ratio := r8.TotalLatencyNS / r4.TotalLatencyNS; ratio > 1.6 {
		t.Errorf("latency ratio %.2f too steep (weakly bit-dependent pipeline)", ratio)
	}
}

func TestMovementShareNearPaper(t *testing.T) {
	// §V-C: communication is 41% of crossbar energy.
	net := model.ResNet18(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	r := Analyze(net, Default(), 4)
	if s := r.MovementShare(); s < 0.25 || s > 0.55 {
		t.Errorf("crossbar movement share %.2f outside [0.25, 0.55] (paper: 0.41)", s)
	}
}

func TestArraysMetric(t *testing.T) {
	net := model.ResNet18(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	r := Analyze(net, Default(), 4)
	// Paper Table II: 41 arrays for DNN+NeuroSim on ResNet-18; the
	// largest-layer tile count lands in the same range.
	if r.Arrays < 25 || r.Arrays > 55 {
		t.Errorf("arrays %d outside plausible range of paper's 41", r.Arrays)
	}
}

func TestForwardADCDegradesExactness(t *testing.T) {
	net := model.TinyCNN(model.Config{ActBits: 8, Sparsity: 0.5, Seed: 2})
	rng := rand.New(rand.NewPCG(5, 6))
	var cal []*tensor.Float
	for j := 0; j < 3; j++ {
		c := tensor.NewFloat(net.InputShape)
		for i := range c.Data {
			c.Data[i] = float32(math.Abs(rng.NormFloat64()))
		}
		cal = append(cal, c)
	}
	if err := model.Calibrate(net, cal); err != nil {
		t.Fatal(err)
	}
	in := tensor.NewFloat(net.InputShape)
	for i := range in.Data {
		in.Data[i] = float32(math.Abs(rng.NormFloat64()))
	}
	ref, err := net.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	adc, err := ForwardADC(net, in, Default())
	if err != nil {
		t.Fatal(err)
	}
	// The ADC path must differ from the exact path somewhere (5-bit
	// partial-sum quantization) but remain correlated (same argmax scale).
	diff := 0
	for i, v := range ref.Logits().Data {
		if adc.Logits().Data[i] != v {
			diff++
		}
	}
	if diff == 0 {
		t.Error("ADC quantization left every logit bit-exact; noise model inactive")
	}
}

func TestForwardADCDeterministic(t *testing.T) {
	net := model.TinyCNN(model.Config{ActBits: 4, Sparsity: 0.5, Seed: 3})
	in := tensor.NewFloat(net.InputShape)
	for i := range in.Data {
		in.Data[i] = float32(i%7) * 0.1
	}
	a, err := ForwardADC(net, in, Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForwardADC(net, in, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Logits().Equal(b.Logits()) {
		t.Error("ADC forward must be deterministic")
	}
}

func TestBreakdownAdds(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{ADCPJ: 1, CrossbarPJ: 2, AccumPJ: 3, PeriphPJ: 4, MovePJ: 5})
	if b.TotalPJ() != 15 {
		t.Errorf("total %v, want 15", b.TotalPJ())
	}
}
