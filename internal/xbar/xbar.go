package xbar

import (
	"math"

	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// Params are the crossbar figures of merit (energies in pJ, times in ns).
type Params struct {
	ArrayRows, ArrayCols int
	WeightBits           int
	ADCBits              int

	// Energy per event.
	ADCPJ       float64 // one 5-bit conversion
	MACRowPJ    float64 // one row's analog contribution during one cycle
	AccumPJ     float64 // shift-add of one converted partial sum
	BufferPJBit float64 // SRAM buffer read+write per activation bit
	MovePJBit   float64 // interconnect per bit (NoC hop included)
	PeriphPJCol float64 // mux/switch-matrix per column access
	// PSumMoveFrac is the fraction of converted partial-sum bits that
	// traverse the global interconnect (the rest accumulate inside the
	// tile hierarchy before moving).
	PSumMoveFrac float64

	// Timing: per output position the pipeline needs a base read plus a
	// small per-activation-bit increment (NeuroSim's latency grows only
	// mildly from 4- to 8-bit inputs: Table II shows 9.56→12.2 ms).
	ReadBaseNS float64
	ReadBitNS  float64
}

// Default returns the calibrated NeuroSim-flavored configuration
// (256×256 arrays, 8-bit weights, 5-bit ADCs as in §V).
func Default() Params {
	return Params{
		ArrayRows: 256, ArrayCols: 256,
		WeightBits: 8, ADCBits: 5,

		ADCPJ:        1.45, // 5-bit SAR ADC per conversion
		MACRowPJ:     0.04, // bitline/cell read per active row-cycle
		AccumPJ:      0.12,
		BufferPJBit:  0.12,
		MovePJBit:    1.0,
		PeriphPJCol:  0.2,
		PSumMoveFrac: 0.3,

		ReadBaseNS: 300,
		ReadBitNS:  11,
	}
}

// Breakdown splits crossbar energy by component, mirroring the paper's
// Fig. 4 stacking for the baseline (ADC, crossbar, accumulation,
// peripherals/buffers, interconnect).
type Breakdown struct {
	ADCPJ      float64
	CrossbarPJ float64
	AccumPJ    float64
	PeriphPJ   float64
	MovePJ     float64
}

// TotalPJ sums the components.
func (b Breakdown) TotalPJ() float64 {
	return b.ADCPJ + b.CrossbarPJ + b.AccumPJ + b.PeriphPJ + b.MovePJ
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.ADCPJ += o.ADCPJ
	b.CrossbarPJ += o.CrossbarPJ
	b.AccumPJ += o.AccumPJ
	b.PeriphPJ += o.PeriphPJ
	b.MovePJ += o.MovePJ
}

// LayerReport is the per-layer crossbar cost.
type LayerReport struct {
	Name      string
	Index     int
	Energy    Breakdown
	LatencyNS float64
	Arrays    int
}

// Report is the whole-network crossbar analysis.
type Report struct {
	Layers         []LayerReport
	Total          Breakdown
	TotalLatencyNS float64
	// Arrays is the Table II "#Arrays" metric: the largest layer's tile
	// count (weights are reloaded per layer onto a fixed array pool).
	Arrays int
}

// EnergyUJ returns total energy in µJ.
func (r *Report) EnergyUJ() float64 { return r.Total.TotalPJ() / 1e6 }

// LatencyMS returns total latency in ms.
func (r *Report) LatencyMS() float64 { return r.TotalLatencyNS / 1e6 }

// MovementShare returns interconnect energy over total (the paper: 41%).
func (r *Report) MovementShare() float64 {
	t := r.Total.TotalPJ()
	if t == 0 {
		return 0
	}
	return r.Total.MovePJ / t
}

// Analyze estimates the crossbar cost of running the network with
// activations quantized to actBits.
func Analyze(net *model.Network, par Params, actBits int) *Report {
	rep := &Report{}
	shapes := net.OutShapes(1)
	inShape := func(i int) tensor.Shape {
		idx := net.Layers[i].Inputs[0]
		if idx == model.InputRef {
			return net.InputShape
		}
		return shapes[idx]
	}
	for i := range net.Layers {
		l := &net.Layers[i]
		if l.Kind != model.KindConv && l.Kind != model.KindLinear {
			continue
		}
		is, os := inShape(i), shapes[i]
		lr := analyzeConv(l, par, actBits, is, os, i)
		rep.Layers = append(rep.Layers, lr)
		rep.Total.Add(lr.Energy)
		rep.TotalLatencyNS += lr.LatencyNS
		if lr.Arrays > rep.Arrays {
			rep.Arrays = lr.Arrays
		}
	}
	return rep
}

func analyzeConv(l *model.Layer, par Params, actBits int, is, os tensor.Shape, idx int) LayerReport {
	w := l.W
	kTotal := w.Cin * w.Fh * w.Fw
	p := os.H * os.W
	rowTiles := ceilDiv(kTotal, par.ArrayRows)
	colTiles := ceilDiv(w.Cout, par.ArrayCols)
	arrays := rowTiles * colTiles

	// Input vectors stream bit-serially: actBits cycles per output
	// position per row tile; every active column converts once per cycle.
	cyclesPerPos := float64(actBits)
	positions := float64(p)
	activeRowsLast := kTotal - (rowTiles-1)*par.ArrayRows
	avgRows := (float64(par.ArrayRows)*float64(rowTiles-1) + float64(activeRowsLast)) / float64(rowTiles)

	conversions := positions * cyclesPerPos * float64(rowTiles) * float64(w.Cout)
	rowCycles := positions * cyclesPerPos * float64(rowTiles) * avgRows * float64(colTiles)

	var e Breakdown
	e.ADCPJ = conversions * par.ADCPJ
	e.CrossbarPJ = rowCycles * par.MACRowPJ
	e.AccumPJ = conversions * par.AccumPJ
	e.PeriphPJ = conversions*par.PeriphPJCol + positions*float64(kTotal*actBits)*par.BufferPJBit
	// Interconnect: input feature maps fan out to every column tile and a
	// fraction of the converted partial-sum bits traverses the global
	// interconnect (the rest accumulates within the tile hierarchy).
	inBits := float64(is.C*is.H*is.W*actBits) * float64(colTiles)
	psBits := positions * float64(w.Cout) * float64(par.ADCBits+8) * float64(rowTiles) * par.PSumMoveFrac
	e.MovePJ = (inBits + psBits) * par.MovePJBit

	// Latency: tiles are spatially parallel; output positions stream
	// through the pipeline with a weak dependence on activation width.
	lat := positions * (par.ReadBaseNS + float64(actBits)*par.ReadBitNS)

	return LayerReport{
		Name: l.Name, Index: idx,
		Energy: e, LatencyNS: lat, Arrays: arrays,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ForwardADC runs the integer forward pass with the crossbar's 5-bit ADC
// quantization injected into every row-tile partial sum — the mechanism
// behind the baseline's accuracy loss in Table II (e.g. VGG-9: 93.2% FP →
// 90.2% on DNN+NeuroSim). Partial sums of each 256-row chunk are clipped
// and re-quantized to ADCBits before digital accumulation.
func ForwardADC(net *model.Network, in *tensor.Float, par Params) (*model.IntTrace, error) {
	return net.ForwardIntQuantized(in, func(x *tensor.Int, l *model.Layer) *tensor.Int {
		return convWithADC(x, l, par)
	})
}

// convWithADC computes a conv/linear layer with per-row-chunk ADC
// requantization, iterating nonzero weights only.
func convWithADC(x *tensor.Int, l *model.Layer, par Params) *tensor.Int {
	spec := l.ConvSpec()
	out := tensor.NewInt(spec.OutShape(x.Shape))
	kTotal := spec.Cin * spec.Fh * spec.Fw
	rowTiles := ceilDiv(kTotal, par.ArrayRows)
	chunk := par.ArrayRows
	levels := int32(1) << uint(par.ADCBits-1)

	// Nonzero taps of every (output, row-tile) pair.
	type tap struct {
		ki   int
		sign int64
	}
	taps := make([][]tap, spec.Cout*rowTiles)
	var fullScale int64 = 1
	for co := 0; co < spec.Cout; co++ {
		wRow := l.W.W[co*kTotal : (co+1)*kTotal]
		for t := 0; t < rowTiles; t++ {
			lo, hi := t*chunk, min((t+1)*chunk, kTotal)
			var ts []tap
			for ki := lo; ki < hi; ki++ {
				switch wRow[ki] {
				case 1:
					ts = append(ts, tap{ki, 1})
				case -1:
					ts = append(ts, tap{ki, -1})
				}
			}
			taps[co*rowTiles+t] = ts
			// ADC full scale: the largest magnitude a chunk sum reaches
			// (NeuroSim calibrates its ADC ranges per layer).
			if sc := int64(len(ts)) * 15; sc > fullScale {
				fullScale = sc
			}
		}
	}
	step := float64(fullScale) / float64(levels)
	if step < 1 {
		step = 1
	}

	for n := 0; n < x.Shape.N; n++ {
		col := tensor.Im2Col(x, n, spec)
		p := out.Shape.H * out.Shape.W
		for co := 0; co < spec.Cout; co++ {
			outBase := out.Shape.Index(n, co, 0, 0)
			for pos := 0; pos < p; pos++ {
				var acc int64
				for t := 0; t < rowTiles; t++ {
					var ps int64
					for _, tp := range taps[co*rowTiles+t] {
						ps += tp.sign * int64(col[tp.ki*p+pos])
					}
					// 5-bit ADC: clip and quantize the analog partial sum.
					q := math.RoundToEven(float64(ps) / step)
					if q > float64(levels-1) {
						q = float64(levels - 1)
					}
					if q < -float64(levels) {
						q = -float64(levels)
					}
					acc += int64(q * step)
				}
				out.Data[outBase+pos] = int32(acc)
			}
		}
	}
	return out
}
