// Package verify statically audits compiled execution plans.
//
// The ExecPlan engine elides almost all wrap masks on the strength of a
// compile-time value-range analysis and skips Reset work via a zero-set
// analysis; a bug in either corrupts inference results silently. This
// package re-checks every retained tile program with an independent
// abstract interpreter (ap.AuditPlan) and reports structured, fully
// located diagnostics — model, layer, strip, tile, op index, violated
// invariant — so a bad plan is rejected at compile or admit time instead
// of serving wrong bits.
//
// The package sits below internal/core: core.VerifyCompiled sweeps a
// compiled artifact through CheckTileProgram, serve runs the same sweep
// at model admit (failures become HTTP 400s), and `rtmap-vet -plans`
// runs it over the builtin model zoo in CI.
package verify
