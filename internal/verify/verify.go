package verify

import (
	"fmt"
	"sort"
	"strings"

	"rtmap/internal/ap"
	"rtmap/internal/codegen"
)

// Ref locates a tile program inside a compiled artifact so a diagnostic
// can name exactly which plan failed.
type Ref struct {
	Model     string
	Layer     int
	LayerName string
	Strip     int
	Tile      int
}

// Diagnostic is one verifier finding, fully located: which model, layer,
// strip, tile, plan op, and which invariant it violates. It marshals to
// JSON so serve can return it in an HTTP 400 body.
type Diagnostic struct {
	Model     string `json:"model,omitempty"`
	Layer     int    `json:"layer"`
	LayerName string `json:"layer_name,omitempty"`
	Strip     int    `json:"strip"`
	Tile      int    `json:"tile"`
	Op        int    `json:"op"` // plan op index; -1 = plan-level
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Model != "" {
		fmt.Fprintf(&b, "model %s: ", d.Model)
	}
	fmt.Fprintf(&b, "layer %d", d.Layer)
	if d.LayerName != "" {
		fmt.Fprintf(&b, " (%s)", d.LayerName)
	}
	fmt.Fprintf(&b, " strip %d tile %d op %d: %s: %s", d.Strip, d.Tile, d.Op, d.Invariant, d.Detail)
	return b.String()
}

// Error aggregates every diagnostic of one verification sweep. Callers
// use errors.As to recover the structured findings from a failed
// compile or admit.
type Error struct {
	Diags []Diagnostic
}

// Sort puts the error's diagnostics into the canonical location order.
// Verification sweeps call it before returning, so two runs over the
// same artifact always report violations in the same order no matter
// what map-iteration or goroutine interleaving produced them.
func (e *Error) Sort() { SortDiagnostics(e.Diags) }

// SortDiagnostics orders diagnostics by location — model, layer, strip,
// tile, op — then by invariant and detail, so any diagnostic list has
// exactly one canonical order (the ordering CI annotations and the
// -json output rely on).
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		switch {
		case a.Model != b.Model:
			return a.Model < b.Model
		case a.Layer != b.Layer:
			return a.Layer < b.Layer
		case a.Strip != b.Strip:
			return a.Strip < b.Strip
		case a.Tile != b.Tile:
			return a.Tile < b.Tile
		case a.Op != b.Op:
			return a.Op < b.Op
		case a.Invariant != b.Invariant:
			return a.Invariant < b.Invariant
		}
		return a.Detail < b.Detail
	})
}

func (e *Error) Error() string {
	if len(e.Diags) == 0 {
		return "verify: plan verification failed"
	}
	msg := fmt.Sprintf("verify: %s", e.Diags[0])
	if n := len(e.Diags) - 1; n > 0 {
		msg += fmt.Sprintf(" (and %d more)", n)
	}
	return msg
}

// CheckTileProgram audits one tile program's execution plan against its
// source AP program (see ap.AuditPlan for the proved invariants) and
// returns the findings located under ref. A program whose plan cannot
// even be built is itself a finding: serving would hit the same error
// on first execution.
func CheckTileProgram(ref Ref, tp *codegen.TileProgram) []Diagnostic {
	located := func(op int, invariant, detail string) Diagnostic {
		return Diagnostic{
			Model: ref.Model, Layer: ref.Layer, LayerName: ref.LayerName,
			Strip: ref.Strip, Tile: ref.Tile,
			Op: op, Invariant: invariant, Detail: detail,
		}
	}
	if tp == nil || tp.Prog == nil {
		return []Diagnostic{located(-1, ap.InvProgram, "tile has no program")}
	}
	plan, err := tp.ExecPlan()
	if err != nil {
		return []Diagnostic{located(-1, ap.InvProgram, err.Error())}
	}
	var out []Diagnostic
	for _, v := range ap.AuditPlan(tp.Prog, plan) {
		out = append(out, located(v.Op, v.Invariant, v.Detail))
	}
	return out
}
