package verify_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"rtmap/internal/ap"
	"rtmap/internal/codegen"
	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/verify"
)

func compileKept(t *testing.T, net *model.Network) *core.Compiled {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	comp, err := core.Compile(net, cfg)
	if err != nil {
		t.Fatalf("compile %s: %v", net.Name, err)
	}
	return comp
}

// The acceptance bar of the verifier: every builtin model's plans are
// independently confirmed with zero diagnostics. A failure here means
// either the compiler emits an unsound plan or the verifier reports
// false positives — both ship-blockers.
func TestBuiltinModelPlansVerifyClean(t *testing.T) {
	nets := []*model.Network{
		model.TinyCNN(model.DefaultConfig()),
		model.TinyResNet(model.DefaultConfig()),
	}
	if !testing.Short() {
		nets = append(nets, model.MiniResNet18(model.DefaultConfig(), 16, 16))
	}
	for _, net := range nets {
		comp := compileKept(t, net)
		programs := 0
		for _, lp := range comp.Layers {
			for _, sp := range lp.StripPlans {
				programs += len(sp.Programs)
			}
		}
		if programs == 0 {
			t.Fatalf("%s: no tile programs retained; sweep is vacuous", net.Name)
		}
		if err := core.VerifyCompiled(comp); err != nil {
			t.Fatalf("%s: %v", net.Name, err)
		}
	}
}

// Config.VerifyPlans makes Compile itself run the sweep (the debug/CI
// mode serve and rtmap-vet build on).
func TestCompileVerifyPlansFlag(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	cfg.VerifyPlans = true
	if _, err := core.Compile(model.TinyCNN(model.DefaultConfig()), cfg); err != nil {
		t.Fatalf("verified compile: %v", err)
	}
}

// Diagnostics are fully located and survive the error-wrapping path the
// serving layer relies on (errors.As to *verify.Error).
func TestCheckTileProgramDiagnostics(t *testing.T) {
	ref := verify.Ref{Model: "m", Layer: 3, LayerName: "conv2", Strip: 1, Tile: 2}
	diags := verify.CheckTileProgram(ref, &codegen.TileProgram{})
	if len(diags) != 1 || diags[0].Invariant != ap.InvProgram || diags[0].Op != -1 {
		t.Fatalf("nil program: %v", diags)
	}
	s := diags[0].String()
	for _, part := range []string{"model m", "layer 3", "conv2", "strip 1", "tile 2"} {
		if !strings.Contains(s, part) {
			t.Fatalf("diagnostic %q missing %q", s, part)
		}
	}

	// A structurally invalid program must fail the sweep, not execution.
	badProg := &ap.Program{
		Cols:   []ap.Col{{Name: "carry", Width: 1}, {Name: "c", Width: 4}},
		Instrs: []ap.Instr{{Op: ap.OpClear, Dst: 99, Width: 4}},
	}
	diags = verify.CheckTileProgram(ref, &codegen.TileProgram{Prog: badProg})
	if len(diags) != 1 || diags[0].Invariant != ap.InvProgram {
		t.Fatalf("invalid program: %v", diags)
	}

	verr := &verify.Error{Diags: diags}
	var wrapped error = verr
	var got *verify.Error
	if !errors.As(wrapped, &got) || len(got.Diags) != 1 {
		t.Fatalf("errors.As failed to recover diagnostics")
	}
	if msg := verr.Error(); !strings.Contains(msg, "layer 3") {
		t.Fatalf("error message %q not located", msg)
	}
	two := &verify.Error{Diags: append(diags, diags[0])}
	if msg := two.Error(); !strings.Contains(msg, "and 1 more") {
		t.Fatalf("multi-diagnostic message %q missing count", msg)
	}
}

// Violation lists sort into one canonical order regardless of the order
// the sweep discovered them in — rtmap-vet -json output and golden-file
// comparisons depend on it.
func TestSortDiagnosticsDeterministic(t *testing.T) {
	canonical := []verify.Diagnostic{
		{Model: "a", Layer: 0, Strip: 0, Tile: 0, Op: -1, Invariant: "x", Detail: "d1"},
		{Model: "a", Layer: 0, Strip: 0, Tile: 0, Op: -1, Invariant: "x", Detail: "d2"},
		{Model: "a", Layer: 0, Strip: 0, Tile: 0, Op: 3, Invariant: "x", Detail: "d"},
		{Model: "a", Layer: 0, Strip: 0, Tile: 1, Op: -1, Invariant: "y", Detail: "d"},
		{Model: "a", Layer: 0, Strip: 2, Tile: 0, Op: -1, Invariant: "x", Detail: "d"},
		{Model: "a", Layer: 5, Strip: -1, Tile: -1, Op: -1, Invariant: "x", Detail: "d"},
		{Model: "b", Layer: 0, Strip: 0, Tile: 0, Op: -1, Invariant: "w", Detail: "d"},
	}
	// Two different arrival orders must both sort to the canonical one.
	shuffles := [][]int{
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 2, 5, 1, 4},
	}
	for _, perm := range shuffles {
		got := make([]verify.Diagnostic, len(canonical))
		for i, j := range perm {
			got[i] = canonical[j]
		}
		verify.SortDiagnostics(got)
		if !reflect.DeepEqual(got, canonical) {
			t.Fatalf("sort of permutation %v is not canonical:\n%v", perm, got)
		}
	}
	e := &verify.Error{Diags: []verify.Diagnostic{canonical[3], canonical[0]}}
	e.Sort()
	if e.Diags[0] != canonical[0] {
		t.Fatalf("Error.Sort did not order diagnostics: %v", e.Diags)
	}
}

// Located diagnostics round-trip through JSON unchanged — the contract
// of the serve error body and rtmap-vet -json.
func TestDiagnosticJSONRoundTrip(t *testing.T) {
	d := verify.Diagnostic{
		Model: "tinyresnet", Layer: 4, LayerName: "conv3", Strip: 1, Tile: 2,
		Op: -1, Invariant: "dataflow-liveness", Detail: "(channel 3, patch 0) dead",
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"model"`, `"layer"`, `"layer_name"`, `"strip"`, `"tile"`, `"op"`, `"invariant"`, `"detail"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("encoding %s missing key %s", data, key)
		}
	}
	var back verify.Diagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip changed the diagnostic: %+v != %+v", back, d)
	}
}
