// Package quant implements activation quantization in the style of learned
// step size quantization (LSQ, Esser et al. 2019), which the paper uses to
// quantize activations to 8 and 4 bits while retaining accuracy.
//
// LSQ learns a step size s by gradient descent; the quantized value is
//
//	q = clamp(round(x/s), Qn, Qp),   x̂ = q·s.
//
// Training infrastructure is out of scope for this reproduction, so the
// step is fitted by minimizing the mean squared reconstruction error over a
// calibration sample (a standard post-training surrogate that converges to
// the same fixed point LSQ reaches for these grids). The integer codes q
// are exactly what the RTM-AP stores in its nanowires and computes on.
package quant
