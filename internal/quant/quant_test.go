package quant

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCodeRanges(t *testing.T) {
	u4 := Quantizer{Bits: 4, Step: 1}
	if u4.Qn() != 0 || u4.Qp() != 15 {
		t.Errorf("u4 range [%d,%d], want [0,15]", u4.Qn(), u4.Qp())
	}
	u8 := Quantizer{Bits: 8, Step: 1}
	if u8.Qn() != 0 || u8.Qp() != 255 {
		t.Errorf("u8 range [%d,%d], want [0,255]", u8.Qn(), u8.Qp())
	}
	s8 := Quantizer{Bits: 8, Step: 1, Signed: true}
	if s8.Qn() != -128 || s8.Qp() != 127 {
		t.Errorf("s8 range [%d,%d], want [-128,127]", s8.Qn(), s8.Qp())
	}
}

func TestQuantizeClamps(t *testing.T) {
	q := Quantizer{Bits: 4, Step: 0.5}
	if got := q.Quantize(100); got != 15 {
		t.Errorf("over-range code = %d, want 15", got)
	}
	if got := q.Quantize(-100); got != 0 {
		t.Errorf("under-range code = %d, want 0 (unsigned)", got)
	}
	if got := q.Quantize(1.0); got != 2 {
		t.Errorf("1.0/0.5 = code %d, want 2", got)
	}
}

func TestQuantizeZeroStep(t *testing.T) {
	var q Quantizer
	if q.Quantize(3) != 0 {
		t.Error("zero-step quantizer must return code 0")
	}
}

func TestCalibrateReconstructionError(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	sample := make([]float32, 4096)
	for i := range sample {
		// Half-normal-ish post-ReLU distribution.
		v := float32(math.Abs(rng.NormFloat64()))
		sample[i] = v
	}
	for _, bits := range []int{4, 8} {
		q := Calibrate(sample, bits, false)
		if !q.Valid() {
			t.Fatalf("calibrated quantizer invalid: %v", q)
		}
		var mse, energy float64
		for _, v := range sample {
			d := float64(v - q.FakeQuant(v))
			mse += d * d
			energy += float64(v) * float64(v)
		}
		rel := mse / energy
		// 4-bit should reconstruct to within a few percent relative error,
		// 8-bit much better.
		limit := 0.02
		if bits == 8 {
			limit = 0.0005
		}
		if rel > limit {
			t.Errorf("bits=%d relative MSE %.5f exceeds %.5f", bits, rel, limit)
		}
	}
}

func TestCalibrate8BitBeats4Bit(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	sample := make([]float32, 2048)
	for i := range sample {
		sample[i] = float32(math.Abs(rng.NormFloat64())) * 3
	}
	errFor := func(bits int) float64 {
		q := Calibrate(sample, bits, false)
		var mse float64
		for _, v := range sample {
			d := float64(v - q.FakeQuant(v))
			mse += d * d
		}
		return mse
	}
	if e8, e4 := errFor(8), errFor(4); e8 >= e4 {
		t.Errorf("8-bit MSE %.6f should be below 4-bit MSE %.6f", e8, e4)
	}
}

// Property: codes always stay within [Qn, Qp] and dequantize-quantize is a
// fixed point.
func TestQuickQuantizerInvariants(t *testing.T) {
	f := func(x float32, stepRaw float32, signed bool) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		step := float32(math.Abs(float64(stepRaw)))
		if step < 1e-6 || step > 1e6 {
			step = 0.25
		}
		q := Quantizer{Bits: 4, Step: step, Signed: signed}
		c := q.Quantize(x)
		if c < q.Qn() || c > q.Qp() {
			return false
		}
		// Quantizing an on-grid value must be exact.
		return q.Quantize(q.Dequantize(c)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRequantize(t *testing.T) {
	in := Quantizer{Bits: 8, Step: 0.5}
	out := Quantizer{Bits: 4, Step: 2}
	scale := RequantScale(in, 1.0, out) // 0.5/2 = 0.25
	if math.Abs(scale-0.25) > 1e-9 {
		t.Fatalf("scale = %v, want 0.25", scale)
	}
	if got := Requantize(8, scale, out); got != 2 {
		t.Errorf("requant(8) = %d, want 2", got)
	}
	if got := Requantize(-4, scale, out); got != 0 {
		t.Errorf("requant(-4) = %d, want 0 (ReLU clamp)", got)
	}
	if got := Requantize(1000, scale, out); got != 15 {
		t.Errorf("requant(1000) = %d, want 15 (saturate)", got)
	}
}

func TestRoundToEvenBehaviour(t *testing.T) {
	q := Quantizer{Bits: 8, Step: 1}
	if got := q.Quantize(2.5); got != 2 {
		t.Errorf("round-to-even(2.5) = %d, want 2", got)
	}
	if got := q.Quantize(3.5); got != 4 {
		t.Errorf("round-to-even(3.5) = %d, want 4", got)
	}
}
