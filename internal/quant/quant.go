package quant

import (
	"fmt"
	"math"
)

// Quantizer maps float activations to integer codes on a uniform grid.
// The zero point is always 0: activations are quantized after ReLU
// (unsigned) and weights are ternary, so affine offsets are unnecessary.
type Quantizer struct {
	Bits   int     // code width in bits (4 or 8 in the paper)
	Step   float32 // grid step size s
	Signed bool    // signed codes use [-(2^(b-1)), 2^(b-1)-1]
}

// Qn returns the most negative representable code.
func (q Quantizer) Qn() int32 {
	if q.Signed {
		return -(int32(1) << (q.Bits - 1))
	}
	return 0
}

// Qp returns the most positive representable code.
func (q Quantizer) Qp() int32 {
	if q.Signed {
		return int32(1)<<(q.Bits-1) - 1
	}
	return int32(1)<<q.Bits - 1
}

// Quantize returns the integer code for x.
func (q Quantizer) Quantize(x float32) int32 {
	if q.Step == 0 {
		return 0
	}
	c := int32(math.RoundToEven(float64(x) / float64(q.Step)))
	if c < q.Qn() {
		c = q.Qn()
	}
	if c > q.Qp() {
		c = q.Qp()
	}
	return c
}

// Dequantize maps a code back to its real value.
func (q Quantizer) Dequantize(c int32) float32 { return float32(c) * q.Step }

// FakeQuant quantizes and dequantizes x (the straight-through value used by
// the float reference path).
func (q Quantizer) FakeQuant(x float32) float32 { return q.Dequantize(q.Quantize(x)) }

// Valid reports whether the quantizer is usable.
func (q Quantizer) Valid() bool { return q.Bits >= 1 && q.Bits <= 16 && q.Step > 0 }

func (q Quantizer) String() string {
	kind := "u"
	if q.Signed {
		kind = "s"
	}
	return fmt.Sprintf("%s%d(step=%g)", kind, q.Bits, q.Step)
}

// Calibrate fits the step size on a calibration sample by scanning a
// geometric grid of candidate steps around max|x|/Qp and picking the
// minimum-MSE step. This is the standard post-training surrogate for LSQ's
// learned step.
func Calibrate(sample []float32, bits int, signed bool) Quantizer {
	if bits < 1 {
		panic("quant: bits must be >= 1")
	}
	q := Quantizer{Bits: bits, Signed: signed}
	var maxAbs float64
	for _, v := range sample {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		q.Step = 1
		return q
	}
	base := maxAbs / float64(q.Qp())
	bestStep, bestErr := base, math.Inf(1)
	// Scan steps from base/8 to 2·base: clipping a small tail of the
	// distribution usually reduces MSE for bell-shaped activations.
	for i := 0; i < 64; i++ {
		s := base * math.Pow(2, -3+4*float64(i)/63)
		cand := Quantizer{Bits: bits, Signed: signed, Step: float32(s)}
		var mse float64
		for _, v := range sample {
			d := float64(v - cand.FakeQuant(v))
			mse += d * d
		}
		if mse < bestErr {
			bestErr, bestStep = mse, s
		}
	}
	q.Step = float32(bestStep)
	return q
}

// RequantScale returns the combined scale factor used when the accumulated
// integer partial sums of a layer (inputs quantized with in, weights scaled
// by wScale) are re-quantized onto the next layer's grid out:
//
//	next_code = clamp(round(acc · RequantScale), 0, out.Qp())
//
// The AP applies this in the fused activation step of the accumulation
// phase (§IV-B); the crossbar baseline applies it in its ADC/shift-add
// peripherals.
func RequantScale(in Quantizer, wScale float32, out Quantizer) float64 {
	return float64(in.Step) * float64(wScale) / float64(out.Step)
}

// Requantize applies RequantScale with ReLU semantics (codes below zero
// clamp to zero), returning the next layer's activation code.
func Requantize(acc int32, scale float64, out Quantizer) int32 {
	c := int32(math.RoundToEven(float64(acc) * scale))
	if c < 0 {
		c = 0
	}
	if c > out.Qp() {
		c = out.Qp()
	}
	return c
}
