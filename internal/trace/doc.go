// Package trace is the serving stack's zero-dependency request-tracing
// layer: every traced /v1/infer request (an X-Rtmap-Trace header, or a
// 1-in-N sample) emits Spans for each phase of its life — HTTP
// handling, micro-batcher wait, fleet queueing, per-device execution,
// pipeline-stage hops, sampled per-layer ExecPlan interpretation, and
// failover requeues. Spans land in a bounded in-memory ring buffer
// (exported at /debug/traces) and, optionally, a JSONL sink
// (rtmap-serve -trace-out), which cmd/rtmap-trace turns into per-model
// breakdowns, critical-path analysis and per-phase percentile tables.
//
// The layer is allocation-conscious by construction: recording a span
// is one fixed-size struct copy into a preallocated ring slot (the
// Record fast path is //rtmap:noalloc-gated), and an untraced request
// pays a single string comparison per phase, so the 0-alloc batch hot
// path stays 0-alloc when tracing is off.
package trace
