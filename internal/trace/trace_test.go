package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestRingWrapOldestFirst(t *testing.T) {
	tr := New(4, 0, 0)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "exec", Stage: i, Device: -1, Replica: -1})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	for i, sp := range got {
		if want := 6 + i; sp.Stage != want {
			t.Errorf("snapshot[%d].Stage = %d, want %d (oldest-first)", i, sp.Stage, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
}

func TestSnapshotBeforeWrap(t *testing.T) {
	tr := New(8, 0, 0)
	tr.Record(Span{Name: "http"})
	tr.Record(Span{Name: "wait"})
	got := tr.Snapshot()
	if len(got) != 2 || got[0].Name != "http" || got[1].Name != "wait" {
		t.Fatalf("snapshot = %+v, want [http wait]", got)
	}
}

func TestSampling(t *testing.T) {
	tr := New(0, 3, 2)
	var reqs, layers int
	for i := 0; i < 12; i++ {
		if tr.SampleRequest() {
			reqs++
		}
	}
	if reqs != 4 {
		t.Errorf("SampleRequest hit %d of 12 with 1-in-3, want 4", reqs)
	}
	for i := 0; i < 10; i++ {
		if tr.SampleLayers() {
			layers++
		}
	}
	if layers != 5 {
		t.Errorf("SampleLayers hit %d of 10 with 1-in-2, want 5", layers)
	}

	off := New(0, 0, 0)
	if off.SampleRequest() || off.SampleLayers() {
		t.Error("sampling disabled (0) must never sample")
	}
}

func TestSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := New(0, 0, 0)
	tr.SetSink(&buf)
	want := []Span{
		{TraceID: "abc", Name: "http", Model: "tinycnn", Device: -1, Replica: -1, Stage: -1, Dur: 100},
		{TraceID: "abc", Name: "stage", Device: 1, Replica: 0, Stage: 2, Batch: 8, Dur: 50, Detail: "x"},
	}
	for _, sp := range want {
		tr.Record(sp)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var got []Span
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, sp)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d round-trip = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("NewID() = %q, want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestFlushWithoutSink(t *testing.T) {
	tr := New(0, 0, 0)
	tr.Record(Span{Name: "exec"})
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush without sink: %v", err)
	}
}
