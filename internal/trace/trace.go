package trace

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Span is one timed phase of a request's path through the serving
// stack. The taxonomy (docs/ARCHITECTURE.md "Observability"):
//
//	http     whole /v1/infer handler, wall time (the request's root span)
//	wait     micro-batcher coalescing: item enqueue → batch dispatch
//	queue    fleet queue: batch dispatch → execution start on a device
//	hop      inter-stage transfer of a sharded batch: forward → next stage start
//	exec     whole-model execution of one batch on one device
//	stage    one pipeline stage of a sharded batch (Stage is the index)
//	layer    one layer's ExecPlan interpretation (sampled; Detail names the layer)
//	requeue  failover: the batch reached a dead device (Device) and was requeued
//	shed     admission refused the request (HTTP 429); Detail is the
//	         rejection cause with the live queue-delay estimate
//	expired  the request's deadline passed before execution — at admission,
//	         in the formation queue, on the device queue, or during a
//	         failover requeue; Detail names where
//
// shed and expired are terminal spans: a trace carrying one has no exec
// or stage span, which is how rtmap-trace attributes scheduler rejections
// separately from served work.
//
// Device, Replica and Stage are -1 when the dimension does not apply.
// Spans are plain values with no per-field indirection so recording one
// copies a fixed-size struct and allocates nothing.
type Span struct {
	TraceID string `json:"trace_id"`
	Name    string `json:"name"`
	Model   string `json:"model,omitempty"`
	Device  int    `json:"device"`
	Replica int    `json:"replica"`
	Stage   int    `json:"stage"`
	// Batch is the coalesced batch size the spanned work ran in (0 when
	// not batch-bound).
	Batch int `json:"batch,omitempty"`
	// Start is the span's wall-clock start (UnixNano); Dur its duration.
	Start int64 `json:"start_unix_ns"`
	Dur   int64 `json:"dur_ns"`
	// Detail carries span-specific context: the layer name of a layer
	// span, the failover attempt of a requeue span.
	Detail string `json:"detail,omitempty"`
}

// DefaultCapacity is the span ring size used when a Tracer is built
// with capacity <= 0.
const DefaultCapacity = 4096

// Tracer collects spans into a bounded in-memory ring buffer (newest
// spans overwrite the oldest once full) and, optionally, streams every
// span to a JSONL sink. The record path is allocation-free and a
// single mutex-guarded struct copy, so tracing a sampled request costs
// nanoseconds and tracing nothing costs one branch.
type Tracer struct {
	sampleEvery int // trace 1-in-N headerless requests; 0 = header-only
	layerEvery  int // record layer spans for 1-in-N traced requests; 0 = never

	reqN   atomic.Uint64
	layerN atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	total uint64 // spans ever recorded; ring holds the last len(ring)
	sink  *bufio.Writer
	enc   *json.Encoder
}

// New returns a Tracer with the given ring capacity (<= 0 selects
// DefaultCapacity). sampleEvery traces 1-in-N requests that carry no
// trace header (0 honors only explicit headers); layerEvery records
// per-layer spans for 1-in-N traced requests (0 disables layer spans).
func New(capacity, sampleEvery, layerEvery int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		sampleEvery: sampleEvery,
		layerEvery:  layerEvery,
		ring:        make([]Span, capacity),
	}
}

// SetSink streams every subsequently recorded span to w as one JSON
// object per line (the rtmap-serve -trace-out format). The writer is
// buffered; call Flush before reading what it produced.
func (t *Tracer) SetSink(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = bufio.NewWriter(w)
	t.enc = json.NewEncoder(t.sink)
}

// Record stores one span. The hot path is a ring-slot copy under the
// mutex; the JSONL sink (when configured) is written inside the same
// critical section so lines never interleave.
//
//rtmap:noalloc
func (t *Tracer) Record(sp Span) {
	t.mu.Lock()
	t.ring[int(t.total%uint64(len(t.ring)))] = sp
	t.total++
	if t.enc != nil {
		t.sinkLocked(sp)
	}
	t.mu.Unlock()
}

// sinkLocked encodes one span onto the JSONL sink. Kept out of Record
// so the ring fast path stays allocation-free (encoding allocates, but
// only runs when a sink is configured). Called with t.mu held.
func (t *Tracer) sinkLocked(sp Span) {
	_ = t.enc.Encode(sp)
}

// SampleRequest reports whether the next headerless request should be
// traced (1-in-sampleEvery; false when sampling is off).
func (t *Tracer) SampleRequest() bool {
	if t.sampleEvery <= 0 {
		return false
	}
	return t.reqN.Add(1)%uint64(t.sampleEvery) == 0
}

// SampleLayers reports whether the next traced request should also
// record per-layer spans (1-in-layerEvery; false when disabled).
func (t *Tracer) SampleLayers() bool {
	if t.layerEvery <= 0 {
		return false
	}
	return t.layerN.Add(1)%uint64(t.layerEvery) == 0
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	if t.total <= n {
		return append([]Span(nil), t.ring[:t.total]...)
	}
	out := make([]Span, 0, n)
	head := int(t.total % n)
	out = append(out, t.ring[head:]...)
	return append(out, t.ring[:head]...)
}

// Total returns how many spans were ever recorded; Total minus the
// snapshot length is how many the bounded ring dropped.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Flush drains the JSONL sink's buffer (no-op without a sink).
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink == nil {
		return nil
	}
	return t.sink.Flush()
}

// idCounter disambiguates IDs if the random source ever fails.
var idCounter atomic.Uint64

// NewID returns a fresh 16-hex-character trace ID. IDs are random so
// concurrent clients and servers never collide; the generator is off
// every hot path (one call per traced request).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}
