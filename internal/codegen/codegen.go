package codegen

import (
	"fmt"
	"sync"

	"rtmap/internal/ap"
	"rtmap/internal/dfg"
	"rtmap/internal/sched"
)

// Layout fixes the physical column map of one AP strip for one layer tile.
// Computed by the compiler driver (internal/core) from the layer shape and
// the array geometry.
type Layout struct {
	K       int // patch size Fh·Fw (input columns per plane)
	ActBits int // activation code width
	// Unsigned activations (post-ReLU codes). Signed activations (the
	// residual alignment grids) store ActBits two's-complement bits.
	ActUnsigned bool
	AccWidth    int // accumulator (partial sum over all channels) width
	TileSize    int // accumulators in this tile
	// AccSlots is how many accumulators stack along one column's domains
	// (⌊domains/AccWidth⌋ — the "true multi-bit storage" of §III). The
	// accumulator of tile row o lives in column AccCols[o/AccSlots] at
	// domain base (o mod AccSlots)·AccWidth.
	AccSlots int

	Planes        int // input column sets
	ChansPerPlane int // channel slots stacked along each input cell's domains

	InputCols [][]int // [plane][K] physical columns
	AccCols   []int   // [⌈TileSize/AccSlots⌉] physical columns
	CarryCol  int     // physical carry/borrow column
	TempCols  []int   // physical temp pool

	InputBase int // domain of channel slot 0 in input cells
	AccBase   int // domain of accumulator LSBs
	CarryBase int // carry domain
}

// Validate checks the layout's internal consistency.
func (l Layout) Validate() error {
	if l.K <= 0 || l.ActBits <= 0 || l.AccWidth <= 0 || l.TileSize <= 0 {
		return fmt.Errorf("codegen: non-positive layout fields %+v", l)
	}
	if len(l.InputCols) != l.Planes {
		return fmt.Errorf("codegen: %d input plane column sets, want %d", len(l.InputCols), l.Planes)
	}
	for p, cols := range l.InputCols {
		if len(cols) != l.K {
			return fmt.Errorf("codegen: plane %d has %d columns, want %d", p, len(cols), l.K)
		}
	}
	if l.AccSlots < 1 {
		return fmt.Errorf("codegen: non-positive accumulator slots")
	}
	if want := (l.TileSize + l.AccSlots - 1) / l.AccSlots; len(l.AccCols) != want {
		return fmt.Errorf("codegen: %d accumulator columns, want %d", len(l.AccCols), want)
	}
	if l.ChansPerPlane <= 0 {
		return fmt.Errorf("codegen: non-positive channel slots per plane")
	}
	return nil
}

// ChannelCapacity returns how many channels one strip holds resident.
func (l Layout) ChannelCapacity() int { return l.Planes * l.ChansPerPlane }

// Stats aggregates emission statistics; all Σ-weighted by bit width so the
// analytic cost model can price passes without retaining programs.
type Stats struct {
	DFGOps        int // add/sub instructions of the channel-wise DFG phase
	DFGInPlace    int
	DFGBitsIn     int // Σ widths of in-place DFG ops
	DFGBitsOut    int // Σ widths of out-of-place DFG ops
	AccumOps      int // accumulate instructions (accumulation phase)
	AccumBits     int
	Clears        int
	ClearBits     int
	ShiftSteps    int // estimated DBC steps (sequential bit access + channel advance)
	TempHighWater int
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.DFGOps += o.DFGOps
	s.DFGInPlace += o.DFGInPlace
	s.DFGBitsIn += o.DFGBitsIn
	s.DFGBitsOut += o.DFGBitsOut
	s.AccumOps += o.AccumOps
	s.AccumBits += o.AccumBits
	s.Clears += o.Clears
	s.ClearBits += o.ClearBits
	s.ShiftSteps += o.ShiftSteps
	if o.TempHighWater > s.TempHighWater {
		s.TempHighWater = o.TempHighWater
	}
}

// TileProgram is the emitted program of one tile on one strip, with the
// bindings the functional simulator needs to load inputs and read results.
type TileProgram struct {
	Prog *ap.Program
	Phys []int // virtual → physical column map
	// InputBinding lists, per virtual input column, the (resident channel
	// index, patch position) it carries.
	InputBindings map[int][2]int
	AccVirt       []int // virtual accumulator columns, tile-row order
	Stats         Stats

	planOnce sync.Once
	plan     *ap.ExecPlan
	planErr  error
}

// ExecPlan returns Prog lowered for repeated execution, built on first
// use and memoized on the tile program — every strip replica, row group,
// batch item and (through the compiled-artifact cache, which shares tile
// programs by reference) every compile replays the same plan without
// re-validating or re-resolving the instruction stream.
func (tp *TileProgram) ExecPlan() (*ap.ExecPlan, error) {
	tp.planOnce.Do(func() { tp.plan, tp.planErr = ap.NewExecPlan(tp.Prog) })
	return tp.plan, tp.planErr
}

// TileBuilder incrementally emits the program of one tile: accumulator
// clears first, then one channel fragment per resident channel.
type TileBuilder struct {
	lay  Layout
	prog *ap.Program
	phys []int
	pool *sched.ColumnPool

	accVirt  []int
	inBind   map[int][2]int
	stats    Stats
	finished bool
}

// NewTileBuilder lays out carry and accumulators and emits the initial
// accumulator clears.
func NewTileBuilder(lay Layout) (*TileBuilder, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	b := &TileBuilder{
		lay:    lay,
		prog:   &ap.Program{},
		pool:   sched.NewColumnPool(lay.TempCols),
		inBind: make(map[int][2]int),
	}
	// Virtual column 0: carry.
	b.prog.Carry = b.newVirt(ap.Col{Name: "carry", Base: lay.CarryBase, Width: 1}, lay.CarryCol)
	for i := 0; i < lay.TileSize; i++ {
		v := b.newVirt(ap.Col{
			Name:  fmt.Sprintf("acc%d", i),
			Base:  lay.AccBase + (i%lay.AccSlots)*lay.AccWidth,
			Width: lay.AccWidth,
		}, lay.AccCols[i/lay.AccSlots])
		b.accVirt = append(b.accVirt, v)
		b.prog.Instrs = append(b.prog.Instrs, ap.Instr{Op: ap.OpClear, Dst: v, Width: lay.AccWidth})
		b.stats.Clears++
		b.stats.ClearBits += lay.AccWidth
	}
	return b, nil
}

func (b *TileBuilder) newVirt(c ap.Col, phys int) int {
	b.prog.Cols = append(b.prog.Cols, c)
	b.phys = append(b.phys, phys)
	return len(b.prog.Cols) - 1
}

// inputVirt returns (creating lazily) the virtual column of patch position
// k for resident channel ch.
func (b *TileBuilder) inputVirt(ch, k int) int {
	key := [2]int{ch, k}
	for v, bind := range b.inBind {
		if bind == key {
			return v
		}
	}
	plane := ch / b.lay.ChansPerPlane
	slot := ch % b.lay.ChansPerPlane
	v := b.newVirt(ap.Col{
		Name:     fmt.Sprintf("x[ch%d][%d]", ch, k),
		Base:     b.lay.InputBase + slot*b.lay.ActBits,
		Width:    b.lay.ActBits,
		Unsigned: b.lay.ActUnsigned,
	}, b.lay.InputCols[plane][k])
	b.inBind[v] = key
	return v
}

// AddChannel emits the channel-wise DFG fragment of one resident channel:
// the slice DFG g (outputs = this tile's rows, widths annotated) followed
// by the accumulate step of every nonzero row. ch is the channel's
// resident index within the strip (selects plane and domain slot).
func (b *TileBuilder) AddChannel(ch int, g *dfg.Graph) error {
	if b.finished {
		return fmt.Errorf("codegen: builder already finished")
	}
	if ch < 0 || ch >= b.lay.ChannelCapacity() {
		return fmt.Errorf("codegen: channel index %d beyond capacity %d", ch, b.lay.ChannelCapacity())
	}
	if len(g.Outputs) != b.lay.TileSize {
		return fmt.Errorf("codegen: graph has %d outputs, tile has %d accumulators",
			len(g.Outputs), b.lay.TileSize)
	}
	if err := g.Validate(); err != nil {
		return err
	}

	last := sched.Liveness(g)
	uses := g.UseCounts()

	// Chain grouping: node n joins its left operand's group when that
	// operand is a single-use op node — those ops run in place on one
	// shared column at the chain's maximum width.
	group := make([]int, len(g.Nodes))
	groupWidth := map[int]int{}
	groupFinal := map[int]int{}
	nGroups := 0
	isOp := func(i int) bool {
		k := g.Nodes[i].Kind
		return k == dfg.OpAdd || k == dfg.OpSub
	}
	for i := range g.Nodes {
		group[i] = -1
	}
	for i, nd := range g.Nodes {
		if !isOp(i) || last[i] < 0 {
			continue
		}
		if isOp(nd.A) && uses[nd.A] == 1 && group[nd.A] >= 0 {
			group[i] = group[nd.A]
		} else {
			group[i] = nGroups
			nGroups++
		}
		if g.Nodes[i].Bits > groupWidth[group[i]] {
			groupWidth[group[i]] = g.Nodes[i].Bits
		}
		groupFinal[group[i]] = i
	}

	groupVirt := map[int]int{}
	groupPhys := map[int]int{}
	refcount := make([]int, len(g.Nodes))
	copy(refcount, uses)

	inputIdx := make(map[int]int) // node id → patch position
	for k, id := range g.Inputs {
		inputIdx[id] = k
	}

	// loc returns the virtual column holding node id's value.
	loc := func(id int) int {
		if g.Nodes[id].Kind == dfg.OpInput {
			return b.inputVirt(ch, inputIdx[id])
		}
		v, ok := groupVirt[group[id]]
		if !ok {
			panic(fmt.Sprintf("codegen: node %d consumed before definition", id))
		}
		return v
	}
	// consume decrements a node's refcount and frees its group column
	// when the group's final value is fully consumed.
	consume := func(id int) {
		refcount[id]--
		if g.Nodes[id].Kind == dfg.OpInput {
			return
		}
		gid := group[id]
		if groupFinal[gid] == id && refcount[id] == 0 {
			b.pool.Put(groupPhys[gid])
			delete(groupVirt, gid)
			delete(groupPhys, gid)
		}
	}

	// Outputs indexed by defining node, so each row's accumulate step is
	// emitted as soon as its value exists — releasing the row chain's
	// column before the next row starts (otherwise every row of the tile
	// would hold a live temp column until the end of the fragment).
	outsByNode := make(map[int][]int)
	for o, ref := range g.Outputs {
		if !ref.Zero {
			outsByNode[ref.Node] = append(outsByNode[ref.Node], o)
		}
	}
	emitAccum := func(nodeID int) {
		for _, o := range outsByNode[nodeID] {
			ref := g.Outputs[o]
			opc := ap.OpAdd
			if ref.Neg {
				opc = ap.OpSub
			}
			src := loc(nodeID)
			acc := b.accVirt[o]
			b.prog.Instrs = append(b.prog.Instrs, ap.Instr{
				Op: opc, Dst: acc, A: src, B: acc, InPlace: true, Width: b.lay.AccWidth,
			})
			b.stats.AccumOps++
			b.stats.AccumBits += b.lay.AccWidth
			b.stats.ShiftSteps += 2 * b.lay.AccWidth
			consume(nodeID)
		}
	}

	// Emit DFG ops, draining each value's accumulates eagerly.
	for i, nd := range g.Nodes {
		if !isOp(i) || last[i] < 0 {
			continue
		}
		gid := group[i]
		w := groupWidth[gid]
		opc := ap.OpAdd
		if nd.Kind == dfg.OpSub {
			opc = ap.OpSub
		}
		if v, inPlace := groupVirt[gid]; inPlace {
			// Chain continuation: left operand already lives in the
			// group column; operate in place.
			aV := loc(nd.B)
			b.prog.Instrs = append(b.prog.Instrs, ap.Instr{
				Op: opc, Dst: v, A: aV, B: v, InPlace: true, Width: w,
			})
			b.stats.DFGInPlace++
			b.stats.DFGBitsIn += w
			consume(nd.B)
			refcount[nd.A]-- // chain value consumed structurally
		} else {
			phys, err := b.pool.Get()
			if err != nil {
				return fmt.Errorf("codegen: channel %d node %d: %w", ch, i, err)
			}
			v := b.newVirt(ap.Col{Name: fmt.Sprintf("t%d.%d", ch, i), Base: 0, Width: w}, phys)
			groupVirt[gid] = v
			groupPhys[gid] = phys
			bV := loc(nd.A)
			aV := loc(nd.B)
			b.prog.Instrs = append(b.prog.Instrs, ap.Instr{
				Op: opc, Dst: v, A: aV, B: bV, Width: w,
			})
			b.stats.DFGBitsOut += w
			consume(nd.A)
			consume(nd.B)
		}
		b.stats.DFGOps++
		b.stats.ShiftSteps += 3 * w // sequential bit advance of ~3 involved columns
		emitAccum(i)
	}

	// Accumulates of alias rows: outputs that reference an input column
	// directly (single-term rows of the slice).
	for id := range g.Nodes {
		if g.Nodes[id].Kind == dfg.OpInput {
			emitAccum(id)
		}
	}

	// Advancing to the next channel slot shifts every input plane column
	// by ActBits domains.
	b.stats.ShiftSteps += b.lay.K * b.lay.ActBits
	if hw := b.pool.HighWater(); hw > b.stats.TempHighWater {
		b.stats.TempHighWater = hw
	}
	return nil
}

// Finish validates and returns the tile program.
func (b *TileBuilder) Finish() (*TileProgram, error) {
	if b.finished {
		return nil, fmt.Errorf("codegen: builder already finished")
	}
	b.finished = true
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return &TileProgram{
		Prog:          b.prog,
		Phys:          b.phys,
		InputBindings: b.inBind,
		AccVirt:       b.accVirt,
		Stats:         b.stats,
	}, nil
}
