// Package codegen lowers annotated slice DFGs onto the AP ISA: it lays
// out input planes, accumulators, carry and temporaries over the 256 CAM
// columns, selects in-place vs out-of-place operation forms (§IV-C —
// chains of temporaries run in place at a shared chain width, which keeps
// stored values sign-extended and every LUT step sound), fuses negated
// outputs into accumulate-with-subtract, and emits one straight-line AP
// program per (output tile × resident channel set).
package codegen
