package codegen

import (
	"math/rand/v2"
	"testing"

	"rtmap/internal/ap"
	"rtmap/internal/dfg"
	"rtmap/internal/ternary"
)

// testLayout builds a small layout for K patch inputs and T accumulators.
func testLayout(k, actBits, accW, tileSize, slots int) Layout {
	lay := Layout{
		K: k, ActBits: actBits, ActUnsigned: true,
		AccWidth: accW, TileSize: tileSize, AccSlots: slots,
		Planes: 1, ChansPerPlane: 4,
		CarryCol: 0,
	}
	next := 1
	cols := make([]int, k)
	for i := range cols {
		cols[i] = next
		next++
	}
	lay.InputCols = [][]int{cols}
	nAcc := (tileSize + slots - 1) / slots
	for i := 0; i < nAcc; i++ {
		lay.AccCols = append(lay.AccCols, next)
		next++
	}
	for i := 0; i < 24; i++ {
		lay.TempCols = append(lay.TempCols, next)
		next++
	}
	return lay
}

func buildGraph(t *testing.T, seed uint64, cout, k int, sparsity float64, cse bool) *dfg.Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^55))
	w := ternary.Random(rng, cout, 1, 1, k, sparsity)
	g := dfg.Build(w.Slice(0), dfg.Options{CSE: cse})
	g.AnnotateWidths(0, 15)
	return g
}

// Emitting a channel fragment and executing it on the word machine must
// reproduce the DFG semantics accumulated over channels.
func TestEmitAndExecuteMatchesEval(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		k := 4 + trial%6
		cout := 3 + trial%8
		g1 := buildGraph(t, uint64(trial), cout, k, 0.4, trial%2 == 0)
		g2 := buildGraph(t, uint64(trial+100), cout, k, 0.6, trial%2 == 0)

		lay := testLayout(k, 4, 16, cout, 2)
		b, err := NewTileBuilder(lay)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddChannel(0, g1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddChannel(1, g2); err != nil {
			t.Fatal(err)
		}
		tp, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}

		rows := 5
		m, err := ap.NewWordMachine(tp.Prog, rows)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(trial), 0x77))
		in1 := make([][]int64, k)
		in2 := make([][]int64, k)
		for ki := 0; ki < k; ki++ {
			in1[ki] = make([]int64, rows)
			in2[ki] = make([]int64, rows)
			for r := 0; r < rows; r++ {
				in1[ki][r] = rng.Int64N(16)
				in2[ki][r] = rng.Int64N(16)
			}
		}
		for virt, bind := range tp.InputBindings {
			ch, ki := bind[0], bind[1]
			if ch == 0 {
				m.SetColumn(virt, in1[ki])
			} else {
				m.SetColumn(virt, in2[ki])
			}
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			x1 := make([]int64, k)
			x2 := make([]int64, k)
			for ki := 0; ki < k; ki++ {
				x1[ki] = in1[ki][r]
				x2[ki] = in2[ki][r]
			}
			want1 := g1.Eval(x1)
			want2 := g2.Eval(x2)
			for o := 0; o < cout; o++ {
				acc := m.Column(tp.AccVirt[o])[r]
				if acc != want1[o]+want2[o] {
					t.Fatalf("trial %d row %d out %d: acc %d, want %d",
						trial, r, o, acc, want1[o]+want2[o])
				}
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	g := buildGraph(t, 5, 8, 9, 0.5, true)
	lay := testLayout(9, 4, 14, 8, 4)
	b, err := NewTileBuilder(lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddChannel(0, g); err != nil {
		t.Fatal(err)
	}
	tp, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	st := tp.Stats
	if st.DFGOps != g.NumOps() {
		t.Errorf("DFG ops %d, want %d (graph op count)", st.DFGOps, g.NumOps())
	}
	nonZero := 0
	for _, ref := range g.Outputs {
		if !ref.Zero {
			nonZero++
		}
	}
	if st.AccumOps != nonZero {
		t.Errorf("accumulates %d, want %d (nonzero rows)", st.AccumOps, nonZero)
	}
	if st.Clears != 8 {
		t.Errorf("clears %d, want 8 (one per accumulator)", st.Clears)
	}
	if st.DFGBitsIn+st.DFGBitsOut == 0 && g.NumOps() > 0 {
		t.Error("no DFG bits accounted")
	}
	if st.TempHighWater <= 0 && g.NumOps() > 0 {
		t.Error("no temp columns used")
	}
}

func TestDomainPackedAccumulators(t *testing.T) {
	// 8 accumulators in 2 columns (4 slots each): virtual columns must use
	// distinct domain bases per slot.
	g := buildGraph(t, 9, 8, 4, 0.3, false)
	lay := testLayout(4, 4, 10, 8, 4)
	b, err := NewTileBuilder(lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddChannel(0, g); err != nil {
		t.Fatal(err)
	}
	tp, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, v := range tp.AccVirt {
		key := [2]int{tp.Phys[v], tp.Prog.Cols[v].Base}
		if seen[key] {
			t.Fatalf("two accumulators share column %d domain %d", key[0], key[1])
		}
		seen[key] = true
	}
}

func TestChannelCapacityRejected(t *testing.T) {
	g := buildGraph(t, 11, 4, 4, 0.5, false)
	lay := testLayout(4, 4, 10, 4, 4) // capacity = 1 plane × 4 slots = 4
	b, err := NewTileBuilder(lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddChannel(4, g); err == nil {
		t.Error("channel index beyond capacity must fail")
	}
}

func TestInPlaceShareOfChains(t *testing.T) {
	// Long unshared rows (no CSE) produce chains that mostly run in place.
	g := buildGraph(t, 13, 6, 12, 0.1, false)
	lay := testLayout(12, 4, 16, 6, 2)
	b, err := NewTileBuilder(lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddChannel(0, g); err != nil {
		t.Fatal(err)
	}
	tp, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	st := tp.Stats
	if st.DFGOps < 10 {
		t.Skip("degenerate slice")
	}
	if float64(st.DFGInPlace) < 0.5*float64(st.DFGOps) {
		t.Errorf("in-place share %d/%d too low for chain-heavy DFGs", st.DFGInPlace, st.DFGOps)
	}
}
