package energy

import "testing"

func TestDefaultMatchesPaperFiguresOfMerit(t *testing.T) {
	p := Default()
	// §V pins these: 256×256 arrays, 64 domains per nanowire, 3 fJ/bit
	// search, 1 pJ/bit movement, 100 ps cycle (8 cycles = 0.8 ns in-place),
	// 10^16 endurance cycles.
	if p.CAMRows != 256 || p.CAMCols != 256 {
		t.Errorf("array geometry %dx%d, want 256x256", p.CAMRows, p.CAMCols)
	}
	if p.DomainsPerTrack != 64 {
		t.Errorf("domains %d, want 64", p.DomainsPerTrack)
	}
	if p.SearchPJPerBit != 0.003 {
		t.Errorf("search energy %g pJ/bit, want 0.003 (3 fJ)", p.SearchPJPerBit)
	}
	if p.MovePJPerBit != 1.0 {
		t.Errorf("movement %g pJ/bit, want 1.0", p.MovePJPerBit)
	}
	if p.CycleNS != 0.1 {
		t.Errorf("cycle %g ns, want 0.1 (8 cycles = 0.8 ns in-place op)", p.CycleNS)
	}
	if p.EnduranceCycles != 1e16 {
		t.Errorf("endurance %g, want 1e16", p.EnduranceCycles)
	}
	if !p.Validate() {
		t.Error("default params must validate")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{DFGPJ: 1, AccumPJ: 2, ShiftPJ: 3, MovementPJ: 4, PeripheralsPJ: 5}
	if a.TotalPJ() != 15 {
		t.Errorf("total %g, want 15", a.TotalPJ())
	}
	var b Breakdown
	b.Add(a)
	b.Add(a)
	if b.TotalPJ() != 30 {
		t.Errorf("sum %g, want 30", b.TotalPJ())
	}
	s := a.Scale(2)
	if s.DFGPJ != 2 || s.TotalPJ() != 30 {
		t.Errorf("scale wrong: %+v", s)
	}
}

func TestValidateRejectsZero(t *testing.T) {
	var p Params
	if p.Validate() {
		t.Error("zero params must not validate")
	}
}
