// Package energy centralizes the figures of merit that drive the analytic
// performance/energy model, taken from the paper's experimental setup
// (§V): the 45 nm 256×256 RTM TCAM of Gnawali et al. [12] (search delay
// under 200 ps, ≈3 fJ per bit searched), 64 domains per nanowire [9],
// 1 pJ/bit for internal data movement at tile/bank/global level [14], and
// the 8-cycle in-place / 10-cycle out-of-place LUT operations whose 0.8 ns
// and 1 ns durations (§V-C) pin the cycle time at 100 ps.
//
// All energies are expressed in picojoules and all times in nanoseconds.
package energy
