package energy

// Params holds every constant of the cost model. Zero values are invalid;
// use Default (paper configuration) and override selectively.
type Params struct {
	// Geometry.
	CAMRows         int // rows per AP array (256)
	CAMCols         int // columns per AP array (256)
	DomainsPerTrack int // racetrack domains per nanowire cell (64)

	// Timing.
	CycleNS      float64 // one search or write phase (0.1 ns = 100 ps)
	ShiftNS      float64 // one domain-wall shift step of a DBC
	MoveNSPerBit float64 // serialization latency of interconnect transfers

	// Energy.
	SearchPJPerBit float64 // per cell compared during a masked search (3e-3 pJ = 3 fJ)
	WritePJPerBit  float64 // per cell written during a tagged parallel write
	ShiftPJPerBit  float64 // per domain step per track shifted
	MovePJPerBit   float64 // tile/bank/global interconnect (1 pJ/bit)

	// Control overheads (instruction fetch/decode, tag management).
	InstrOverheadPJ float64 // per AP macro-instruction
	InstrOverheadNS float64 // per AP macro-instruction

	// Accumulation units: the paper's accumulation phase runs on digital
	// accumulators at the AP periphery ("our design relies on additional
	// accumulation units", §V-B). Each accumulate costs one readout of the
	// row value plus one narrow digital add.
	AccumUnitPJ       float64 // digital add of one partial sum element
	AccumReadPJPerBit float64 // sensing one stored bit for accumulation
	AccumLatNS        float64 // pipelined accumulate issue interval per strip

	// ActivationMoveFrac is the fraction of activation bits that crosses
	// the interconnect between layers: feature maps are computed in place
	// (§IV: "data-centric approach"), so only patches spanning row-group
	// boundaries and layout changes travel (the paper keeps total data
	// movement near 3%).
	ActivationMoveFrac float64
	// MoveAllowancePJ is the per-layer reduction-traffic allowance the
	// planner may always spend when splitting channels across strips.
	MoveAllowancePJ float64

	// Peripheral requantization (fused ReLU+requantize per OFM element).
	RequantPJPerElem float64
	RequantNSPerOp   float64 // per SIMD requantize pass over one AP

	// Write endurance of RTM cells in write cycles (§V-C quotes 10^16 [9]).
	EnduranceCycles float64
}

// Default returns the paper's configuration.
func Default() Params {
	return Params{
		CAMRows:         256,
		CAMCols:         256,
		DomainsPerTrack: 64,

		CycleNS:      0.1,
		ShiftNS:      0.1,       // overlapped with compute phases; see DESIGN.md
		MoveNSPerBit: 0.0078125, // 128-bit links at 1 GHz

		SearchPJPerBit: 0.003, // 3 fJ/bit [12]
		WritePJPerBit:  0.002, // RTM domain-wall write, few-fJ class [12]
		ShiftPJPerBit:  0.0005,
		MovePJPerBit:   1.0, // [14]

		InstrOverheadPJ: 0.3,
		InstrOverheadNS: 0.0,

		AccumUnitPJ:       0.03,
		AccumReadPJPerBit: 0.002,
		AccumLatNS:        0.8,

		ActivationMoveFrac: 0.05,
		MoveAllowancePJ:    1e5, // 0.1 µJ

		RequantPJPerElem: 0.15,
		RequantNSPerOp:   1.0,

		EnduranceCycles: 1e16,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() bool {
	return p.CAMRows > 0 && p.CAMCols > 0 && p.DomainsPerTrack > 0 &&
		p.CycleNS > 0 && p.SearchPJPerBit > 0 && p.WritePJPerBit > 0 &&
		p.MovePJPerBit > 0
}

// Breakdown is the per-component energy decomposition used in Fig. 4:
// the channel-wise DFG phase, the accumulation phase (local + inter-AP
// adder tree), RTM shifts, data movement over the interconnect, and
// peripheral/control overheads.
type Breakdown struct {
	DFGPJ         float64
	AccumPJ       float64
	ShiftPJ       float64
	MovementPJ    float64
	PeripheralsPJ float64
}

// TotalPJ returns the sum of all components.
func (b Breakdown) TotalPJ() float64 {
	return b.DFGPJ + b.AccumPJ + b.ShiftPJ + b.MovementPJ + b.PeripheralsPJ
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.DFGPJ += o.DFGPJ
	b.AccumPJ += o.AccumPJ
	b.ShiftPJ += o.ShiftPJ
	b.MovementPJ += o.MovementPJ
	b.PeripheralsPJ += o.PeripheralsPJ
}

// Scale multiplies every component by f and returns the result.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		DFGPJ:         b.DFGPJ * f,
		AccumPJ:       b.AccumPJ * f,
		ShiftPJ:       b.ShiftPJ * f,
		MovementPJ:    b.MovementPJ * f,
		PeripheralsPJ: b.PeripheralsPJ * f,
	}
}
