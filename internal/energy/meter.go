package energy

// Meter accumulates the modeled energy and wear a device has spent over
// its lifetime of dispatches: the telemetry counterpart of Breakdown
// (which prices one inference) feeding the per-device
// rtmap_device_energy_pj_total and rtmap_device_writes_total series.
// Meter is a plain value; callers guard it with whatever lock already
// protects the device it describes.
type Meter struct {
	// EnergyPJ is the cumulative modeled energy in picojoules.
	EnergyPJ float64
	// Writes is the cumulative busiest-cell write count (the §V-C
	// endurance currency; see sim.LayerWrites).
	Writes float64
}

// Spend adds one dispatch's modeled cost: energyPJ picojoules and
// writes busiest-cell writes, each already multiplied by batch size
// where the model says so.
func (m *Meter) Spend(energyPJ, writes float64) {
	m.EnergyPJ += energyPJ
	m.Writes += writes
}
