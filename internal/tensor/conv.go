package tensor

import "fmt"

// ConvSpec describes a 2-D convolution. Weights are supplied by the caller
// in OIHW order (Cout, Cin, Fh, Fw); this package is agnostic to whether
// they are ternary codes or dequantized floats.
type ConvSpec struct {
	Cin, Cout int
	Fh, Fw    int
	Stride    int
	Pad       int
}

// OutShape returns the output shape of the convolution for input shape in.
func (c ConvSpec) OutShape(in Shape) Shape {
	return Shape{
		N: in.N,
		C: c.Cout,
		H: ConvOutDim(in.H, c.Fh, c.Stride, c.Pad),
		W: ConvOutDim(in.W, c.Fw, c.Stride, c.Pad),
	}
}

func (c ConvSpec) check(in Shape) {
	if in.C != c.Cin {
		panic(fmt.Sprintf("tensor: conv expects %d input channels, got %d", c.Cin, in.C))
	}
	if c.Stride <= 0 {
		panic("tensor: conv stride must be positive")
	}
}

// ConvInt performs a direct integer convolution with int8 weights (OIHW,
// length Cout·Cin·Fh·Fw). With ternary weights this is the pure
// addition/subtraction computation that the AP executes; no multiplier is
// semantically required. Zero padding is used.
func ConvInt(in *Int, w []int8, spec ConvSpec) *Int {
	spec.check(in.Shape)
	if len(w) != spec.Cout*spec.Cin*spec.Fh*spec.Fw {
		panic(fmt.Sprintf("tensor: weight length %d does not match spec %+v", len(w), spec))
	}
	out := NewInt(spec.OutShape(in.Shape))
	is, os := in.Shape, out.Shape
	for n := 0; n < is.N; n++ {
		for co := 0; co < spec.Cout; co++ {
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					var acc int32
					for ci := 0; ci < spec.Cin; ci++ {
						wBase := ((co*spec.Cin + ci) * spec.Fh) * spec.Fw
						for kh := 0; kh < spec.Fh; kh++ {
							ih := oh*spec.Stride + kh - spec.Pad
							if ih < 0 || ih >= is.H {
								continue
							}
							for kw := 0; kw < spec.Fw; kw++ {
								iw := ow*spec.Stride + kw - spec.Pad
								if iw < 0 || iw >= is.W {
									continue
								}
								wv := w[wBase+kh*spec.Fw+kw]
								if wv == 0 {
									continue
								}
								x := in.Data[is.Index(n, ci, ih, iw)]
								if wv > 0 {
									acc += x
								} else {
									acc -= x
								}
							}
						}
					}
					out.Data[os.Index(n, co, oh, ow)] = acc
				}
			}
		}
	}
	return out
}

// ConvFloat performs a direct float convolution with float32 weights (OIHW).
// Zero padding is used.
func ConvFloat(in *Float, w []float32, spec ConvSpec) *Float {
	spec.check(in.Shape)
	if len(w) != spec.Cout*spec.Cin*spec.Fh*spec.Fw {
		panic(fmt.Sprintf("tensor: weight length %d does not match spec %+v", len(w), spec))
	}
	out := NewFloat(spec.OutShape(in.Shape))
	is, os := in.Shape, out.Shape
	for n := 0; n < is.N; n++ {
		for co := 0; co < spec.Cout; co++ {
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					var acc float32
					for ci := 0; ci < spec.Cin; ci++ {
						wBase := ((co*spec.Cin + ci) * spec.Fh) * spec.Fw
						for kh := 0; kh < spec.Fh; kh++ {
							ih := oh*spec.Stride + kh - spec.Pad
							if ih < 0 || ih >= is.H {
								continue
							}
							for kw := 0; kw < spec.Fw; kw++ {
								iw := ow*spec.Stride + kw - spec.Pad
								if iw < 0 || iw >= is.W {
									continue
								}
								acc += w[wBase+kh*spec.Fw+kw] * in.Data[is.Index(n, ci, ih, iw)]
							}
						}
					}
					out.Data[os.Index(n, co, oh, ow)] = acc
				}
			}
		}
	}
	return out
}

// ConvFloatTernary performs a float convolution whose weights are ternary
// codes scaled by alpha: w = alpha·t with t ∈ {−1,0,1}. It exploits
// sparsity by iterating nonzero taps only and is the fast float reference
// path for TWNs: out = alpha·(Σ_{t=+1} x − Σ_{t=−1} x).
func ConvFloatTernary(in *Float, t []int8, alpha float32, spec ConvSpec) *Float {
	spec.check(in.Shape)
	out := NewFloat(spec.OutShape(in.Shape))
	is, os := in.Shape, out.Shape
	type tap struct {
		kh, kw int
		neg    bool
	}
	taps := make([][]tap, spec.Cout*spec.Cin)
	for co := 0; co < spec.Cout; co++ {
		for ci := 0; ci < spec.Cin; ci++ {
			var ts []tap
			wBase := ((co*spec.Cin + ci) * spec.Fh) * spec.Fw
			for kh := 0; kh < spec.Fh; kh++ {
				for kw := 0; kw < spec.Fw; kw++ {
					switch t[wBase+kh*spec.Fw+kw] {
					case 1:
						ts = append(ts, tap{kh, kw, false})
					case -1:
						ts = append(ts, tap{kh, kw, true})
					}
				}
			}
			taps[co*spec.Cin+ci] = ts
		}
	}
	for n := 0; n < is.N; n++ {
		for co := 0; co < spec.Cout; co++ {
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					var acc float32
					for ci := 0; ci < spec.Cin; ci++ {
						for _, tp := range taps[co*spec.Cin+ci] {
							ih := oh*spec.Stride + tp.kh - spec.Pad
							iw := ow*spec.Stride + tp.kw - spec.Pad
							if ih < 0 || ih >= is.H || iw < 0 || iw >= is.W {
								continue
							}
							v := in.Data[is.Index(n, ci, ih, iw)]
							if tp.neg {
								acc -= v
							} else {
								acc += v
							}
						}
					}
					out.Data[os.Index(n, co, oh, ow)] = acc * alpha
				}
			}
		}
	}
	return out
}

// ConvIntTernarySparse is a sparsity-aware variant of ConvInt used by the
// reference path for large networks: it iterates only over the nonzero
// weights of each filter. Results are identical to ConvInt.
func ConvIntTernarySparse(in *Int, w []int8, spec ConvSpec) *Int {
	spec.check(in.Shape)
	out := NewInt(spec.OutShape(in.Shape))
	is, os := in.Shape, out.Shape

	// Pre-extract the nonzero taps of every (co, ci) filter slice.
	type tap struct {
		kh, kw int
		sign   int32
	}
	taps := make([][]tap, spec.Cout*spec.Cin)
	for co := 0; co < spec.Cout; co++ {
		for ci := 0; ci < spec.Cin; ci++ {
			var ts []tap
			wBase := ((co*spec.Cin + ci) * spec.Fh) * spec.Fw
			for kh := 0; kh < spec.Fh; kh++ {
				for kw := 0; kw < spec.Fw; kw++ {
					switch w[wBase+kh*spec.Fw+kw] {
					case 1:
						ts = append(ts, tap{kh, kw, 1})
					case -1:
						ts = append(ts, tap{kh, kw, -1})
					}
				}
			}
			taps[co*spec.Cin+ci] = ts
		}
	}

	for n := 0; n < is.N; n++ {
		for co := 0; co < spec.Cout; co++ {
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					var acc int32
					for ci := 0; ci < spec.Cin; ci++ {
						for _, t := range taps[co*spec.Cin+ci] {
							ih := oh*spec.Stride + t.kh - spec.Pad
							iw := ow*spec.Stride + t.kw - spec.Pad
							if ih < 0 || ih >= is.H || iw < 0 || iw >= is.W {
								continue
							}
							acc += t.sign * in.Data[is.Index(n, ci, ih, iw)]
						}
					}
					out.Data[os.Index(n, co, oh, ow)] = acc
				}
			}
		}
	}
	return out
}
