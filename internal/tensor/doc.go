// Package tensor provides the dense integer and floating-point tensor
// substrate used throughout the RTM-AP stack: NCHW tensors, padding,
// direct and im2col-based convolution, pooling and elementwise kernels.
//
// Two element types are supported. Float tensors carry the full-precision
// reference path (used to validate that quantized AP execution "retains
// software accuracy"); Int tensors carry integer activation codes, which is
// what the associative processor actually stores and computes on.
package tensor
