package tensor

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randInt(rng *rand.Rand, s Shape, lo, hi int32) *Int {
	t := NewInt(s)
	for i := range t.Data {
		t.Data[i] = lo + rng.Int32N(hi-lo+1)
	}
	return t
}

func randTernary(rng *rand.Rand, n int) []int8 {
	w := make([]int8, n)
	for i := range w {
		w[i] = int8(rng.IntN(3) - 1)
	}
	return w
}

func TestShapeIndexRoundTrip(t *testing.T) {
	s := Shape{N: 2, C: 3, H: 4, W: 5}
	seen := make(map[int]bool)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					i := s.Index(n, c, h, w)
					if i < 0 || i >= s.Elems() {
						t.Fatalf("index out of range: %d", i)
					}
					if seen[i] {
						t.Fatalf("duplicate index %d", i)
					}
					seen[i] = true
				}
			}
		}
	}
	if len(seen) != s.Elems() {
		t.Fatalf("expected %d unique indices, got %d", s.Elems(), len(seen))
	}
}

func TestConvOutDim(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{224, 7, 2, 3, 112},
		{56, 3, 2, 1, 28},
		{8, 1, 1, 0, 8},
		{5, 3, 1, 0, 3},
	}
	for _, c := range cases {
		if got := ConvOutDim(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutDim(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestConvIntKnownValues(t *testing.T) {
	// 1x1x3x3 input, single 2x2 filter of all +1, stride 1, no pad.
	in := NewInt(Shape{1, 1, 3, 3})
	for i := range in.Data {
		in.Data[i] = int32(i + 1) // 1..9
	}
	w := []int8{1, 1, 1, 1}
	spec := ConvSpec{Cin: 1, Cout: 1, Fh: 2, Fw: 2, Stride: 1, Pad: 0}
	out := ConvInt(in, w, spec)
	want := []int32{1 + 2 + 4 + 5, 2 + 3 + 5 + 6, 4 + 5 + 7 + 8, 5 + 6 + 8 + 9}
	for i, v := range want {
		if out.Data[i] != v {
			t.Errorf("out[%d] = %d, want %d", i, out.Data[i], v)
		}
	}
}

func TestConvIntSubtraction(t *testing.T) {
	in := NewInt(Shape{1, 1, 2, 2})
	copy(in.Data, []int32{10, 20, 30, 40})
	w := []int8{1, -1, -1, 1} // 10-20-30+40 = 0
	spec := ConvSpec{Cin: 1, Cout: 1, Fh: 2, Fw: 2, Stride: 1}
	out := ConvInt(in, w, spec)
	if out.Data[0] != 0 {
		t.Errorf("got %d, want 0", out.Data[0])
	}
}

func TestConvIntPadding(t *testing.T) {
	in := NewInt(Shape{1, 1, 1, 1})
	in.Data[0] = 7
	w := []int8{1, 1, 1, 1, 1, 1, 1, 1, 1}
	spec := ConvSpec{Cin: 1, Cout: 1, Fh: 3, Fw: 3, Stride: 1, Pad: 1}
	out := ConvInt(in, w, spec)
	if out.Shape.H != 1 || out.Shape.W != 1 {
		t.Fatalf("unexpected out shape %v", out.Shape)
	}
	if out.Data[0] != 7 {
		t.Errorf("padded conv = %d, want 7 (only center tap sees data)", out.Data[0])
	}
}

// Property: the three convolution implementations agree on random inputs.
func TestConvImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 60; trial++ {
		spec := ConvSpec{
			Cin:    1 + rng.IntN(4),
			Cout:   1 + rng.IntN(5),
			Fh:     1 + rng.IntN(3),
			Fw:     1 + rng.IntN(3),
			Stride: 1 + rng.IntN(2),
		}
		spec.Pad = rng.IntN(spec.Fh)
		h := spec.Fh + rng.IntN(6)
		w := spec.Fw + rng.IntN(6)
		in := randInt(rng, Shape{1 + rng.IntN(2), spec.Cin, h, w}, -8, 15)
		weights := randTernary(rng, spec.Cout*spec.Cin*spec.Fh*spec.Fw)

		direct := ConvInt(in, weights, spec)
		gemm := ConvIntGEMM(in, weights, spec)
		sparse := ConvIntTernarySparse(in, weights, spec)
		if !direct.Equal(gemm) {
			t.Fatalf("trial %d: direct != GEMM for spec %+v", trial, spec)
		}
		if !direct.Equal(sparse) {
			t.Fatalf("trial %d: direct != sparse for spec %+v", trial, spec)
		}
	}
}

// Property: float conv with ±1/0 weights equals int conv on integral data.
func TestConvFloatMatchesIntOnTernary(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 30; trial++ {
		spec := ConvSpec{
			Cin: 1 + rng.IntN(3), Cout: 1 + rng.IntN(3),
			Fh: 1 + rng.IntN(3), Fw: 1 + rng.IntN(3), Stride: 1,
		}
		in := randInt(rng, Shape{1, spec.Cin, spec.Fh + 3, spec.Fw + 3}, 0, 15)
		wi := randTernary(rng, spec.Cout*spec.Cin*spec.Fh*spec.Fw)
		wf := make([]float32, len(wi))
		fin := NewFloat(in.Shape)
		for i, v := range in.Data {
			fin.Data[i] = float32(v)
		}
		for i, v := range wi {
			wf[i] = float32(v)
		}
		got := ConvFloat(fin, wf, spec)
		want := ConvInt(in, wi, spec)
		for i := range want.Data {
			if int32(got.Data[i]) != want.Data[i] {
				t.Fatalf("trial %d: mismatch at %d: %v vs %d", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestIm2ColChannelShapeAndZeros(t *testing.T) {
	in := randInt(rand.New(rand.NewPCG(5, 6)), Shape{1, 2, 4, 4}, 1, 9)
	spec := ConvSpec{Cin: 2, Cout: 1, Fh: 3, Fw: 3, Stride: 1, Pad: 1}
	m := Im2ColChannel(in, 0, 0, spec)
	p := 16 // 4x4 output
	if len(m) != 9*p {
		t.Fatalf("len = %d, want %d", len(m), 9*p)
	}
	// Top-left output point, top-left patch tap is padding → zero.
	if m[0] != 0 {
		t.Errorf("expected padding zero, got %d", m[0])
	}
	// Center tap of output point (1,1) must be in[1][1]... center tap row 4.
	if got, want := m[4*p+5], in.At(0, 0, 1, 1); got != want {
		t.Errorf("center tap = %d, want %d", got, want)
	}
}

func TestMaxPoolInt(t *testing.T) {
	in := NewInt(Shape{1, 1, 4, 4})
	for i := range in.Data {
		in.Data[i] = int32(i)
	}
	out := MaxPoolInt(in, PoolSpec{K: 2, Stride: 2})
	want := []int32{5, 7, 13, 15}
	for i, v := range want {
		if out.Data[i] != v {
			t.Errorf("pool[%d] = %d, want %d", i, out.Data[i], v)
		}
	}
}

func TestMaxPoolResNetStem(t *testing.T) {
	in := randInt(rand.New(rand.NewPCG(9, 9)), Shape{1, 2, 8, 8}, -5, 20)
	out := MaxPoolInt(in, PoolSpec{K: 3, Stride: 2, Pad: 1})
	if out.Shape.H != 4 || out.Shape.W != 4 {
		t.Fatalf("shape %v, want 1x2x4x4", out.Shape)
	}
	// Spot-check (0,0): window covers in[-1..1][-1..1] → max of in[0..1][0..1].
	want := in.At(0, 0, 0, 0)
	for _, v := range []int32{in.At(0, 0, 0, 1), in.At(0, 0, 1, 0), in.At(0, 0, 1, 1)} {
		if v > want {
			want = v
		}
	}
	if out.At(0, 0, 0, 0) != want {
		t.Errorf("corner pool = %d, want %d", out.At(0, 0, 0, 0), want)
	}
}

func TestGlobalAvgPoolIntRounding(t *testing.T) {
	in := NewInt(Shape{1, 2, 2, 2})
	copy(in.Data, []int32{1, 2, 2, 2, -1, -2, -2, -2}) // means 1.75, -1.75
	out := GlobalAvgPoolInt(in)
	if out.Data[0] != 2 {
		t.Errorf("avg ch0 = %d, want 2 (round half away from zero)", out.Data[0])
	}
	if out.Data[1] != -2 {
		t.Errorf("avg ch1 = %d, want -2", out.Data[1])
	}
}

func TestArgmax(t *testing.T) {
	x := NewInt(Shape{2, 3, 1, 1})
	copy(x.Data, []int32{1, 9, 3, 7, 2, 7})
	got := x.ArgmaxInt()
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("argmax = %v, want [1 0] (ties to lowest)", got)
	}
}

func TestReLUAndAdd(t *testing.T) {
	x := NewInt(Shape{1, 1, 1, 4})
	copy(x.Data, []int32{-3, 0, 2, -1})
	y := x.Clone()
	y.ReLUInt()
	want := []int32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("relu[%d] = %d, want %d", i, y.Data[i], want[i])
		}
	}
	x.AddInt(y)
	if x.Data[2] != 4 {
		t.Errorf("add failed: %v", x.Data)
	}
}

// quick-check: GEMM conv equals direct conv over generated configs.
func TestQuickConvEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		spec := ConvSpec{
			Cin: 1 + rng.IntN(3), Cout: 1 + rng.IntN(3),
			Fh: 1 + rng.IntN(3), Fw: 1 + rng.IntN(3),
			Stride: 1 + rng.IntN(2),
		}
		spec.Pad = rng.IntN(2)
		in := randInt(rng, Shape{1, spec.Cin, spec.Fh + rng.IntN(4), spec.Fw + rng.IntN(4)}, -16, 16)
		w := randTernary(rng, spec.Cout*spec.Cin*spec.Fh*spec.Fw)
		return ConvInt(in, w, spec).Equal(ConvIntGEMM(in, w, spec))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
