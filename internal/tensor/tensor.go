package tensor

import "fmt"

// Shape describes an NCHW tensor layout. N is the batch dimension, C the
// channel count, H and W the spatial extents. Fully-connected activations
// are represented with H = W = 1.
type Shape struct {
	N, C, H, W int
}

// Elems returns the total number of elements of the shape.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Valid reports whether all dimensions are strictly positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

// Index returns the flat offset of (n, c, h, w) in row-major NCHW order.
func (s Shape) Index(n, c, h, w int) int {
	return ((n*s.C+c)*s.H+h)*s.W + w
}

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// Int is a dense int32 tensor in NCHW layout. int32 comfortably holds any
// partial sum arising from ternary convolutions over 8-bit activations
// (worst case |sum| ≤ Cin·Fh·Fw·255 < 2^31 for every network in the paper).
type Int struct {
	Shape Shape
	Data  []int32
}

// NewInt allocates a zero-initialized integer tensor.
func NewInt(s Shape) *Int {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Int{Shape: s, Data: make([]int32, s.Elems())}
}

// At returns the element at (n, c, h, w).
func (t *Int) At(n, c, h, w int) int32 { return t.Data[t.Shape.Index(n, c, h, w)] }

// Set stores v at (n, c, h, w).
func (t *Int) Set(n, c, h, w int, v int32) { t.Data[t.Shape.Index(n, c, h, w)] = v }

// Clone returns a deep copy of the tensor.
func (t *Int) Clone() *Int {
	c := NewInt(t.Shape)
	copy(c.Data, t.Data)
	return c
}

// Equal reports whether two integer tensors have identical shape and data.
func (t *Int) Equal(o *Int) bool {
	if t.Shape != o.Shape {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Int) MaxAbs() int32 {
	var m int32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Float is a dense float32 tensor in NCHW layout.
type Float struct {
	Shape Shape
	Data  []float32
}

// NewFloat allocates a zero-initialized float tensor.
func NewFloat(s Shape) *Float {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Float{Shape: s, Data: make([]float32, s.Elems())}
}

// At returns the element at (n, c, h, w).
func (t *Float) At(n, c, h, w int) float32 { return t.Data[t.Shape.Index(n, c, h, w)] }

// Set stores v at (n, c, h, w).
func (t *Float) Set(n, c, h, w int, v float32) { t.Data[t.Shape.Index(n, c, h, w)] = v }

// Clone returns a deep copy of the tensor.
func (t *Float) Clone() *Float {
	c := NewFloat(t.Shape)
	copy(c.Data, t.Data)
	return c
}

// Scale multiplies every element by f in place and returns the receiver.
func (t *Float) Scale(f float32) *Float {
	for i := range t.Data {
		t.Data[i] *= f
	}
	return t
}

// AddInt accumulates o (elementwise) into t. Shapes must match.
func (t *Int) AddInt(o *Int) {
	if t.Shape != o.Shape {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// AddFloat accumulates o (elementwise) into t. Shapes must match.
func (t *Float) AddFloat(o *Float) {
	if t.Shape != o.Shape {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// ReLUInt clamps negative elements to zero in place.
func (t *Int) ReLUInt() {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// ReLUFloat clamps negative elements to zero in place.
func (t *Float) ReLUFloat() {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// ArgmaxInt returns, for each batch element, the flat index (over C·H·W) of
// the maximum value. Ties resolve to the lowest index.
func (t *Int) ArgmaxInt() []int {
	return argmax(t.Shape, func(i int) float64 { return float64(t.Data[i]) })
}

// ArgmaxFloat returns, for each batch element, the flat index (over C·H·W)
// of the maximum value. Ties resolve to the lowest index.
func (t *Float) ArgmaxFloat() []int {
	return argmax(t.Shape, func(i int) float64 { return float64(t.Data[i]) })
}

func argmax(s Shape, at func(int) float64) []int {
	per := s.C * s.H * s.W
	out := make([]int, s.N)
	for n := 0; n < s.N; n++ {
		base := n * per
		best, bestIdx := at(base), 0
		for i := 1; i < per; i++ {
			if v := at(base + i); v > best {
				best, bestIdx = v, i
			}
		}
		out[n] = bestIdx
	}
	return out
}

// ConvOutDim returns the output extent of a convolution along one axis.
func ConvOutDim(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
