package tensor

import "fmt"

// PoolSpec describes a 2-D pooling window.
type PoolSpec struct {
	K      int // window size (K×K)
	Stride int
	Pad    int
}

// OutShape returns the pooled output shape for input shape in.
func (p PoolSpec) OutShape(in Shape) Shape {
	return Shape{
		N: in.N,
		C: in.C,
		H: ConvOutDim(in.H, p.K, p.Stride, p.Pad),
		W: ConvOutDim(in.W, p.K, p.Stride, p.Pad),
	}
}

func (p PoolSpec) check() {
	if p.K <= 0 || p.Stride <= 0 {
		panic(fmt.Sprintf("tensor: invalid pool spec %+v", p))
	}
}

// MaxPoolInt applies K×K max pooling. Padded positions are ignored (they
// never win the max), matching framework semantics for ReLU-positive codes.
func MaxPoolInt(in *Int, spec PoolSpec) *Int {
	spec.check()
	out := NewInt(spec.OutShape(in.Shape))
	is, os := in.Shape, out.Shape
	for n := 0; n < is.N; n++ {
		for c := 0; c < is.C; c++ {
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					first := true
					var best int32
					for kh := 0; kh < spec.K; kh++ {
						ih := oh*spec.Stride + kh - spec.Pad
						if ih < 0 || ih >= is.H {
							continue
						}
						for kw := 0; kw < spec.K; kw++ {
							iw := ow*spec.Stride + kw - spec.Pad
							if iw < 0 || iw >= is.W {
								continue
							}
							v := in.Data[is.Index(n, c, ih, iw)]
							if first || v > best {
								best, first = v, false
							}
						}
					}
					out.Data[os.Index(n, c, oh, ow)] = best
				}
			}
		}
	}
	return out
}

// MaxPoolFloat applies K×K max pooling on a float tensor.
func MaxPoolFloat(in *Float, spec PoolSpec) *Float {
	spec.check()
	out := NewFloat(spec.OutShape(in.Shape))
	is, os := in.Shape, out.Shape
	for n := 0; n < is.N; n++ {
		for c := 0; c < is.C; c++ {
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					first := true
					var best float32
					for kh := 0; kh < spec.K; kh++ {
						ih := oh*spec.Stride + kh - spec.Pad
						if ih < 0 || ih >= is.H {
							continue
						}
						for kw := 0; kw < spec.K; kw++ {
							iw := ow*spec.Stride + kw - spec.Pad
							if iw < 0 || iw >= is.W {
								continue
							}
							v := in.Data[is.Index(n, c, ih, iw)]
							if first || v > best {
								best, first = v, false
							}
						}
					}
					out.Data[os.Index(n, c, oh, ow)] = best
				}
			}
		}
	}
	return out
}

// GlobalAvgPoolInt reduces each channel to its mean, rounded to nearest
// (ties away from zero). The AP realizes this as a sum in the accumulation
// phase followed by a peripheral divide; rounding keeps the integer and
// float paths aligned.
func GlobalAvgPoolInt(in *Int) *Int {
	is := in.Shape
	out := NewInt(Shape{N: is.N, C: is.C, H: 1, W: 1})
	area := int64(is.H * is.W)
	for n := 0; n < is.N; n++ {
		for c := 0; c < is.C; c++ {
			var sum int64
			for h := 0; h < is.H; h++ {
				for w := 0; w < is.W; w++ {
					sum += int64(in.Data[is.Index(n, c, h, w)])
				}
			}
			// Round half away from zero.
			var v int64
			if sum >= 0 {
				v = (sum + area/2) / area
			} else {
				v = (sum - area/2) / area
			}
			out.Data[out.Shape.Index(n, c, 0, 0)] = int32(v)
		}
	}
	return out
}

// GlobalAvgPoolFloat reduces each channel to its mean.
func GlobalAvgPoolFloat(in *Float) *Float {
	is := in.Shape
	out := NewFloat(Shape{N: is.N, C: is.C, H: 1, W: 1})
	area := float32(is.H * is.W)
	for n := 0; n < is.N; n++ {
		for c := 0; c < is.C; c++ {
			var sum float32
			for h := 0; h < is.H; h++ {
				for w := 0; w < is.W; w++ {
					sum += in.Data[is.Index(n, c, h, w)]
				}
			}
			out.Data[out.Shape.Index(n, c, 0, 0)] = sum / area
		}
	}
	return out
}
