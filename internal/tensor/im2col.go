package tensor

// Im2ColChannel lowers one input channel of one batch element into the
// column matrix consumed by the RTM-AP mapping (Fig. 1 / Fig. 2 of the
// paper): the result M has Fh·Fw rows (the patch positions that become CAM
// columns) and Hout·Wout columns (the output positions that become CAM
// rows). Out-of-bounds taps read as zero (zero padding).
//
// M is returned row-major: M[k*P + p] is patch element k of output point p,
// with P = Hout·Wout.
func Im2ColChannel(in *Int, n, c int, spec ConvSpec) []int32 {
	k := spec.Fh * spec.Fw
	p := ConvOutDim(in.Shape.H, spec.Fh, spec.Stride, spec.Pad) *
		ConvOutDim(in.Shape.W, spec.Fw, spec.Stride, spec.Pad)
	m := make([]int32, k*p)
	Im2ColChannelInto(m, in, n, c, spec)
	return m
}

// Im2ColChannelInto is Im2ColChannel writing into caller-owned storage
// (len(m) must be Fh·Fw·Hout·Wout), so batched execution can lower many
// inputs through pooled scratch without allocating.
func Im2ColChannelInto(m []int32, in *Int, n, c int, spec ConvSpec) {
	is := in.Shape
	hout := ConvOutDim(is.H, spec.Fh, spec.Stride, spec.Pad)
	wout := ConvOutDim(is.W, spec.Fw, spec.Stride, spec.Pad)
	p := hout * wout
	for kh := 0; kh < spec.Fh; kh++ {
		for kw := 0; kw < spec.Fw; kw++ {
			row := kh*spec.Fw + kw
			for oh := 0; oh < hout; oh++ {
				ih := oh*spec.Stride + kh - spec.Pad
				for ow := 0; ow < wout; ow++ {
					iw := ow*spec.Stride + kw - spec.Pad
					var v int32
					if ih >= 0 && ih < is.H && iw >= 0 && iw < is.W {
						v = in.Data[is.Index(n, c, ih, iw)]
					}
					m[row*p+oh*wout+ow] = v
				}
			}
		}
	}
}

// Im2Col lowers the full input (one batch element) into a (Cin·Fh·Fw) ×
// (Hout·Wout) matrix, channel-major over rows, matching the classical GEMM
// formulation of convolution. Used to cross-validate the direct kernels.
func Im2Col(in *Int, n int, spec ConvSpec) []int32 {
	k := spec.Fh * spec.Fw
	p := ConvOutDim(in.Shape.H, spec.Fh, spec.Stride, spec.Pad) *
		ConvOutDim(in.Shape.W, spec.Fw, spec.Stride, spec.Pad)
	m := make([]int32, spec.Cin*k*p)
	for c := 0; c < spec.Cin; c++ {
		ch := Im2ColChannel(in, n, c, spec)
		copy(m[c*k*p:(c+1)*k*p], ch)
	}
	return m
}

// ConvIntGEMM computes the convolution as W_mat × im2col(in) where W_mat is
// the Cout × (Cin·Fh·Fw) reshaped weight matrix. Semantically identical to
// ConvInt; used as an independent oracle in tests.
func ConvIntGEMM(in *Int, w []int8, spec ConvSpec) *Int {
	spec.check(in.Shape)
	out := NewInt(spec.OutShape(in.Shape))
	os := out.Shape
	k := spec.Cin * spec.Fh * spec.Fw
	p := os.H * os.W
	for n := 0; n < in.Shape.N; n++ {
		col := Im2Col(in, n, spec)
		for co := 0; co < spec.Cout; co++ {
			wRow := w[co*k : (co+1)*k]
			outBase := os.Index(n, co, 0, 0)
			for i, wv := range wRow {
				if wv == 0 {
					continue
				}
				colRow := col[i*p : (i+1)*p]
				if wv > 0 {
					for j, x := range colRow {
						out.Data[outBase+j] += x
					}
				} else {
					for j, x := range colRow {
						out.Data[outBase+j] -= x
					}
				}
			}
		}
	}
	return out
}
