package ap

import (
	"math/rand/v2"
	"testing"
)

// randomProgram generates a valid program over nData columns with random
// widths/signedness, biased to emit the copy → in-place add/sub chains
// the code generator produces (the ExecPlan fusion path). wide adds
// 63/64-bit columns to exercise the no-wrap fast paths.
func randomProgram(rng *rand.Rand, wide bool) *Program {
	nData := 3 + rng.IntN(4)
	widths := make([]int, nData)
	unsigned := make([]bool, nData)
	for i := range widths {
		widths[i] = 3 + rng.IntN(6)
		if wide && rng.IntN(3) == 0 {
			widths[i] = 61 + rng.IntN(4) // straddle the wrap-identity threshold (63)
		}
		unsigned[i] = rng.IntN(3) == 0
	}
	p := buildProgram(widths, unsigned)

	var signedCols, allCols []int
	for c := 1; c <= nData; c++ {
		allCols = append(allCols, c)
		if !p.Cols[c].Unsigned {
			signedCols = append(signedCols, c)
		}
	}
	if len(signedCols) == 0 {
		return nil
	}
	sameWidth := func(dst int) []int {
		var out []int
		for _, c := range allCols {
			if c != dst && p.Cols[c].Width == p.Cols[dst].Width {
				out = append(out, c)
			}
		}
		return out
	}
	nInstr := 5 + rng.IntN(10)
	for len(p.Instrs) < nInstr {
		dst := signedCols[rng.IntN(len(signedCols))]
		w := p.Cols[dst].Width
		pick := func() int { return allCols[rng.IntN(len(allCols))] }
		switch rng.IntN(6) {
		case 0: // in-place add/sub
			op := OpAdd
			if rng.IntN(2) == 0 {
				op = OpSub
			}
			a := pick()
			if a == dst {
				continue
			}
			p.Instrs = append(p.Instrs, Instr{Op: op, Dst: dst, A: a, B: dst, InPlace: true, Width: w})
		case 1: // out-of-place add/sub
			op := OpAdd
			if rng.IntN(2) == 0 {
				op = OpSub
			}
			a, b := pick(), pick()
			if a == dst || b == dst {
				continue
			}
			p.Instrs = append(p.Instrs, Instr{Op: op, Dst: dst, A: a, B: b, Width: w})
		case 2: // neg
			a := pick()
			if a == dst {
				continue
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpNeg, Dst: dst, A: a, Width: w})
		case 3: // clear
			p.Instrs = append(p.Instrs, Instr{Op: OpClear, Dst: dst, Width: w})
		case 4: // copy, possibly multi-destination with mixed signedness
			a := pick()
			if a == dst {
				continue
			}
			ins := Instr{Op: OpCopy, Dst: dst, A: a, Width: w}
			for _, d := range sameWidth(dst) {
				if d != a && rng.IntN(3) == 0 {
					ins.Dsts = append(ins.Dsts, d)
				}
			}
			p.Instrs = append(p.Instrs, ins)
		case 5: // copy followed by an accumulation chain (fusion shape)
			a := pick()
			if a == dst {
				continue
			}
			p.Instrs = append(p.Instrs, Instr{Op: OpCopy, Dst: dst, A: a, Width: w})
			for n := rng.IntN(3); n > 0; n-- {
				op := OpAdd
				if rng.IntN(2) == 0 {
					op = OpSub
				}
				x := pick()
				if x == dst {
					break
				}
				p.Instrs = append(p.Instrs, Instr{Op: op, Dst: dst, A: x, B: dst, InPlace: true, Width: w})
			}
		}
	}
	return p
}

func loadRandom(rng *rand.Rand, p *Program, rows int) [][]int64 {
	vals := make([][]int64, len(p.Cols))
	for c := range vals {
		vals[c] = make([]int64, rows)
	}
	for c := 1; c < len(p.Cols); c++ {
		meta := p.Cols[c]
		w := meta.Width
		if w > 31 {
			w = 31 // keep wide columns representable as int32 loads
		}
		for r := 0; r < rows; r++ {
			if meta.Unsigned && meta.Width < 63 {
				vals[c][r] = rng.Int64N(1 << uint(w))
			} else {
				// Signed columns — and nominally unsigned columns of
				// width ≥ 63, where wrap is the identity and loads can
				// legally deposit negative values.
				half := int64(1) << uint(w-1)
				vals[c][r] = rng.Int64N(2*half) - half
			}
		}
	}
	return vals
}

// Property: ExecPlan Machine execution is bit-identical to the word-level
// reference on randomized programs, including multi-destination copies,
// fused accumulation chains, reused machines (Reset) and wide columns.
func TestMachineMatchesWordRandomPrograms(t *testing.T) {
	var m Machine // reused across trials: Reset must fully rebind state
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xa11ec))
		p := randomProgram(rng, trial%2 == 0)
		if p == nil {
			continue
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		rows := 2 + rng.IntN(9)
		wm, err := NewWordMachine(p, rows)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewExecPlan(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m.Reset(plan, rows)

		vals := loadRandom(rng, p, rows)
		v32 := make([]int32, rows)
		for c := 1; c < len(p.Cols); c++ {
			wm.SetColumn(c, vals[c])
			for r, v := range vals[c] {
				v32[r] = int32(v)
			}
			m.SetColumnInt32(c, 0, v32)
		}
		if err := wm.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m.Run()
		for c := 1; c < len(p.Cols); c++ {
			want := wm.Column(c)
			got := m.Column(c)
			for r := 0; r < rows; r++ {
				if got[r] != want[r] {
					t.Fatalf("trial %d: col %d row %d: plan %d != word %d\nprogram: %v",
						trial, c, r, got[r], want[r], p.Instrs)
				}
			}
		}
	}
}

// A multi-destination copy with mixed destination signedness: the bit
// machine writes the same bits everywhere and each column reads them back
// per its own metadata, so the word machine (and the ExecPlan machine)
// must wrap per destination. Negative sources make an unsigned
// destination read the raw bit pattern, not the signed value.
func TestExecMatchesWordMixedSignCopy(t *testing.T) {
	// carry, src (6b signed), d1 (6b signed), d2 (6b unsigned).
	p := buildProgram([]int{6, 6, 6}, []bool{false, false, true})
	const src, d1, d2 = 1, 2, 3
	p.Instrs = []Instr{
		{Op: OpCopy, Dst: d1, Dsts: []int{d2}, A: src, Width: 6},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	srcVals := []int64{-32, -17, -1, 0, 1, 13, 31, -5}
	rows := len(srcVals)

	arr := newArray(t, rows, len(p.Cols))
	vals := make([][]int64, len(p.Cols))
	for c := range vals {
		vals[c] = make([]int64, rows)
	}
	copy(vals[src], srcVals)
	loadCam(arr, p, vals)
	if err := Exec(arr, p, nil); err != nil {
		t.Fatal(err)
	}

	wm, err := NewWordMachine(p, rows)
	if err != nil {
		t.Fatal(err)
	}
	wm.SetColumn(src, srcVals)
	if err := wm.Run(); err != nil {
		t.Fatal(err)
	}

	plan, err := NewExecPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	var m Machine
	m.Reset(plan, rows)
	v32 := make([]int32, rows)
	for r, v := range srcVals {
		v32[r] = int32(v)
	}
	m.SetColumnInt32(src, 0, v32)
	m.Run()

	for _, col := range []int{d1, d2} {
		bit := readCam(arr, p, col, rows)
		word := wm.Column(col)
		pl := m.Column(col)
		for r := 0; r < rows; r++ {
			if word[r] != bit[r] {
				t.Errorf("col %d row %d (src %d): word %d != bit-level %d",
					col, r, srcVals[r], word[r], bit[r])
			}
			if pl[r] != bit[r] {
				t.Errorf("col %d row %d (src %d): plan %d != bit-level %d",
					col, r, srcVals[r], pl[r], bit[r])
			}
		}
	}
	// The unsigned destination of a negative source must hold the raw
	// 6-bit pattern (v + 64), or the whole test is vacuous.
	if got := m.Column(d2)[0]; got != srcVals[0]+64 {
		t.Fatalf("unsigned destination read %d, want %d", got, srcVals[0]+64)
	}
}

// Fusion collapses copy → in-place chains into fewer resolved ops while
// preserving exact results (covered by the randomized property above).
func TestExecPlanFusesCopyChains(t *testing.T) {
	p := buildProgram([]int{5, 5, 5}, []bool{false, false, false})
	p.Instrs = []Instr{
		{Op: OpCopy, Dst: 2, A: 1, Width: 5},
		{Op: OpAdd, Dst: 2, A: 3, B: 2, InPlace: true, Width: 5},
		{Op: OpSub, Dst: 2, A: 1, B: 2, InPlace: true, Width: 5},
		{Op: OpNeg, Dst: 3, A: 2, Width: 5},
	}
	plan, err := NewExecPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ops() != 2 {
		t.Fatalf("expected copy+add+sub to fuse into 1 op (2 total), got %d", plan.Ops())
	}
}

// Width-62 destinations DO wrap (wrap() is the identity only from 63
// up), and the range analysis must not shortcut them: doubling 2^30 up
// to 2^62 in wide columns and copying into a 62-bit column must truncate
// to zero on both machines. Regression for an off-by-one where the
// analysis treated width ≥ 62 as unconditionally safe.
func TestWidth62CopyWraps(t *testing.T) {
	p := buildProgram([]int{64, 64, 62}, []bool{false, false, false})
	const colA, colB, colD = 1, 2, 3
	// 32 alternating doublings: 2^30 → 2^62 (lands in colA).
	for k := 0; k < 32; k++ {
		src, dst := colA, colB
		if k%2 == 1 {
			src, dst = colB, colA
		}
		p.Instrs = append(p.Instrs, Instr{Op: OpAdd, Dst: dst, A: src, B: src, Width: 64})
	}
	p.Instrs = append(p.Instrs, Instr{Op: OpCopy, Dst: colD, A: colA, Width: 62})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	const rows = 2
	wm, err := NewWordMachine(p, rows)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewExecPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	var m Machine
	m.Reset(plan, rows)
	wm.SetColumn(colA, []int64{1 << 30, 1 << 30})
	m.SetColumnInt32(colA, 0, []int32{1 << 30, 1 << 30})
	if err := wm.Run(); err != nil {
		t.Fatal(err)
	}
	m.Run()
	for r := 0; r < rows; r++ {
		if got := wm.Column(colD)[r]; got != 0 {
			t.Fatalf("word machine row %d: 2^62 wrapped at width 62 to %d, want 0", r, got)
		}
		if got := m.Column(colD)[r]; got != 0 {
			t.Fatalf("plan machine row %d: 2^62 wrapped at width 62 to %d, want 0", r, got)
		}
	}
}

// SetColumnInt32 wraps to the stored format and AccumulateColumn adds in
// place over a row segment — the batched load/reduce primitives.
func TestSetColumnInt32AndAccumulate(t *testing.T) {
	p := buildProgram([]int{4, 8}, []bool{true, false})
	plan, err := NewExecPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	var m Machine
	m.Reset(plan, 6)
	m.SetColumnInt32(1, 0, []int32{15, 16, 17})  // 4-bit unsigned: wraps mod 16
	m.SetColumnInt32(1, 3, []int32{-1, 255, 31}) // segment load at row 3
	want := []int64{15, 0, 1, 15, 15, 15}
	for r, w := range m.Column(1) {
		if w != want[r] {
			t.Fatalf("row %d: %d, want %d", r, w, want[r])
		}
	}
	acc := []int32{100, 100, 100}
	m.AccumulateColumn(1, 3, acc)
	for i, v := range acc {
		if v != 115 {
			t.Fatalf("acc[%d] = %d, want 115", i, v)
		}
	}
}
