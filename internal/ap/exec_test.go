package ap

import (
	"math/rand/v2"
	"testing"

	"rtmap/internal/cam"
	"rtmap/internal/energy"
)

// buildProgram lays out columns on the nanowire (carry first, then data
// columns back to back) and returns the program skeleton.
func buildProgram(widths []int, unsigned []bool) *Program {
	p := &Program{Carry: 0}
	p.Cols = append(p.Cols, Col{Name: "carry", Base: 0, Width: 1})
	base := 1
	for i, w := range widths {
		p.Cols = append(p.Cols, Col{Name: "c", Base: base, Width: w, Unsigned: unsigned[i]})
		base += w
	}
	return p
}

func newArray(t *testing.T, rows, cols int) *cam.Array {
	t.Helper()
	par := energy.Default()
	return cam.New(rows, cols, par)
}

// loadCam writes per-column row values into the array nanowires.
func loadCam(a *cam.Array, p *Program, vals [][]int64) {
	for c := 1; c < len(p.Cols); c++ {
		meta := p.Cols[c]
		for r, v := range vals[c] {
			a.LoadWord(r, c, meta.Base, meta.Width, v)
		}
	}
}

// readCam reads a column back, honoring unsignedness.
func readCam(a *cam.Array, p *Program, col, rows int) []int64 {
	meta := p.Cols[col]
	out := make([]int64, rows)
	for r := 0; r < rows; r++ {
		v := a.ReadWord(r, col, meta.Base, meta.Width)
		if meta.Unsigned && v < 0 {
			v += 1 << uint(meta.Width)
		}
		out[r] = v
	}
	return out
}

func TestExecAddSubExhaustive(t *testing.T) {
	// Columns: carry, A (4-bit unsigned), B (6-bit signed), R (7-bit).
	p := buildProgram([]int{4, 6, 7}, []bool{true, false, false})
	const colA, colB, colR = 1, 2, 3
	p.Instrs = []Instr{
		{Op: OpAdd, Dst: colR, A: colA, B: colB, Width: 7},
		{Op: OpSub, Dst: colB, A: colA, B: colB, InPlace: true, Width: 6},
	}
	rows := 16
	var cases [][2]int64
	for a := int64(0); a < 16; a += 3 {
		for b := int64(-32); b < 32; b += 5 {
			cases = append(cases, [2]int64{a, b})
		}
	}
	for start := 0; start < len(cases); start += rows {
		end := min(start+rows, len(cases))
		n := end - start
		arr := newArray(t, rows, len(p.Cols))
		arr.SetUsedRows(n)
		vals := make([][]int64, len(p.Cols))
		for c := range vals {
			vals[c] = make([]int64, rows)
		}
		for i := 0; i < n; i++ {
			vals[colA][i] = cases[start+i][0]
			vals[colB][i] = cases[start+i][1]
		}
		loadCam(arr, p, vals)
		if err := Exec(arr, p, nil); err != nil {
			t.Fatal(err)
		}
		gotR := readCam(arr, p, colR, n)
		gotB := readCam(arr, p, colB, n)
		for i := 0; i < n; i++ {
			a0, b0 := cases[start+i][0], cases[start+i][1]
			if want := a0 + b0; gotR[i] != want {
				t.Fatalf("add: %d+%d = %d, want %d", a0, b0, gotR[i], want)
			}
			want := b0 - a0
			// 6-bit two's complement wrap of the in-place result.
			want = ((want+32)%64+64)%64 - 32
			if gotB[i] != want {
				t.Fatalf("sub in-place: %d-%d = %d, want %d", b0, a0, gotB[i], want)
			}
		}
	}
}

func TestExecNegAndCopy(t *testing.T) {
	p := buildProgram([]int{5, 6, 6, 6}, []bool{false, false, false, false})
	const colA, colN, colC1, colC2 = 1, 2, 3, 4
	p.Instrs = []Instr{
		{Op: OpNeg, Dst: colN, A: colA, Width: 6},
		{Op: OpCopy, Dst: colC1, Dsts: []int{colC2}, A: colA, Width: 6},
	}
	rows := 9
	arr := newArray(t, rows, len(p.Cols))
	vals := make([][]int64, len(p.Cols))
	for c := range vals {
		vals[c] = make([]int64, rows)
	}
	src := []int64{-16, -7, -1, 0, 1, 5, 9, 15, 12}
	copy(vals[colA], src)
	loadCam(arr, p, vals)
	if err := Exec(arr, p, nil); err != nil {
		t.Fatal(err)
	}
	gotN := readCam(arr, p, colN, rows)
	gotC1 := readCam(arr, p, colC1, rows)
	gotC2 := readCam(arr, p, colC2, rows)
	for i, v := range src {
		if gotN[i] != -v {
			t.Errorf("neg(%d) = %d", v, gotN[i])
		}
		if gotC1[i] != v || gotC2[i] != v {
			t.Errorf("copy(%d) = %d/%d (multi-destination write)", v, gotC1[i], gotC2[i])
		}
	}
}

// Property: the bit-level CAM execution agrees with the word-level
// reference on randomized programs (random widths, signedness, in/out of
// place ops, operand reuse).
func TestExecMatchesWordRandomPrograms(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0x5eed))
		nData := 3 + rng.IntN(4)
		widths := make([]int, nData)
		unsigned := make([]bool, nData)
		for i := range widths {
			widths[i] = 3 + rng.IntN(6)
			unsigned[i] = rng.IntN(3) == 0
		}
		p := buildProgram(widths, unsigned)

		signedCols := []int{}
		allCols := []int{}
		for c := 1; c <= nData; c++ {
			allCols = append(allCols, c)
			if !p.Cols[c].Unsigned {
				signedCols = append(signedCols, c)
			}
		}
		if len(signedCols) == 0 {
			continue
		}
		nInstr := 4 + rng.IntN(8)
		for len(p.Instrs) < nInstr {
			dst := signedCols[rng.IntN(len(signedCols))]
			w := p.Cols[dst].Width
			pick := func() int { return allCols[rng.IntN(len(allCols))] }
			switch rng.IntN(4) {
			case 0: // in-place add/sub: B == dst must be signed
				op := OpAdd
				if rng.IntN(2) == 0 {
					op = OpSub
				}
				a := pick()
				if a == dst {
					continue
				}
				p.Instrs = append(p.Instrs, Instr{Op: op, Dst: dst, A: a, B: dst, InPlace: true, Width: w})
			case 1: // out-of-place add/sub
				op := OpAdd
				if rng.IntN(2) == 0 {
					op = OpSub
				}
				a, b := pick(), pick()
				if a == dst || b == dst {
					continue
				}
				p.Instrs = append(p.Instrs, Instr{Op: op, Dst: dst, A: a, B: b, Width: w})
			case 2: // neg
				a := pick()
				if a == dst {
					continue
				}
				p.Instrs = append(p.Instrs, Instr{Op: OpNeg, Dst: dst, A: a, Width: w})
			case 3: // copy
				a := pick()
				if a == dst {
					continue
				}
				p.Instrs = append(p.Instrs, Instr{Op: OpCopy, Dst: dst, A: a, Width: w})
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}

		rows := 4 + rng.IntN(8)
		arr := newArray(t, rows, len(p.Cols))
		wm, err := NewWordMachine(p, rows)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([][]int64, len(p.Cols))
		for c := range vals {
			vals[c] = make([]int64, rows)
		}
		for c := 1; c <= nData; c++ {
			meta := p.Cols[c]
			for r := 0; r < rows; r++ {
				if meta.Unsigned {
					vals[c][r] = rng.Int64N(1 << uint(meta.Width))
				} else {
					half := int64(1) << uint(meta.Width-1)
					vals[c][r] = rng.Int64N(2*half) - half
				}
			}
			wm.SetColumn(c, vals[c])
		}
		loadCam(arr, p, vals)

		if err := Exec(arr, p, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := wm.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for c := 1; c <= nData; c++ {
			want := wm.Column(c)
			got := readCam(arr, p, c, rows)
			for r := 0; r < rows; r++ {
				if got[r] != want[r] {
					t.Fatalf("trial %d: col %d row %d: bit-level %d != word-level %d\nprogram: %v",
						trial, c, r, got[r], want[r], p.Instrs)
				}
			}
		}
	}
}

func TestExecClear(t *testing.T) {
	p := buildProgram([]int{4}, []bool{false})
	p.Instrs = []Instr{{Op: OpClear, Dst: 1, Width: 4}}
	arr := newArray(t, 4, 2)
	vals := [][]int64{nil, {7, -8, 3, -1}}
	loadCam(arr, p, vals)
	if err := Exec(arr, p, nil); err != nil {
		t.Fatal(err)
	}
	for r, v := range readCam(arr, p, 1, 4) {
		if v != 0 {
			t.Errorf("row %d not cleared: %d", r, v)
		}
	}
}

func TestCostSummary(t *testing.T) {
	p := buildProgram([]int{4, 4, 5}, []bool{false, false, false})
	p.Instrs = []Instr{
		{Op: OpAdd, Dst: 2, A: 1, B: 2, InPlace: true, Width: 4},
		{Op: OpAdd, Dst: 3, A: 1, B: 2, Width: 5},
	}
	c := p.Cost()
	if c.AddSub != 2 || c.Instrs != 2 {
		t.Fatalf("cost %+v", c)
	}
	// In-place: 4 bits × 4 passes; out-of-place: 5 bits × 5 passes.
	if c.SearchPasses != 4*4+5*5 {
		t.Errorf("search passes %d, want %d", c.SearchPasses, 4*4+5*5)
	}
	if c.Cycles <= 0 {
		t.Error("cycles must be positive")
	}
}

func TestValidateRejections(t *testing.T) {
	p := buildProgram([]int{4, 4}, []bool{false, false})
	bad := []Instr{
		{Op: OpAdd, Dst: 1, A: 2, B: 2, InPlace: true, Width: 4}, // in-place dst != B
		{Op: OpAdd, Dst: 1, A: 1, B: 2, Width: 4},                // dst aliases operand
		{Op: OpAdd, Dst: 1, A: 2, B: 2, Width: 3},                // width != dst width
		{Op: OpAdd, Dst: 0, A: 1, B: 2, Width: 1},                // carry as dst
		{Op: OpCopy, Dst: 2, A: 2, Width: 4},                     // copy onto itself
	}
	for i, ins := range bad {
		p.Instrs = []Instr{ins}
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%v): expected validation error", i, ins)
		}
	}
}
