package ap

import "fmt"

// This file is the static plan verifier: an independent audit of the
// guarantees NewExecPlan's lowering and analyses claim. The execution
// engine is fast precisely because those analyses elide work — ~99% of
// ops run without wrap masks on the strength of the value-range
// analysis, and Machine.Reset clears only the zero set — so a compiler
// bug here corrupts inference results silently instead of failing. The
// auditor re-derives every claim from the source program with separately
// written analyses and reports structured violations, so a bad plan is
// rejected at compile/admit time, never served.
//
// The audit models the *machine*, not the compiler: it propagates the
// value intervals Machine.Run actually produces (wide ops keep their
// exact interval, truncating ops collapse to their destination's stored
// format) and checks each claimed elision against them. It deliberately
// shares no code with analyzeRanges/findZeroCols beyond the plan layout
// itself.

// Invariant classes reported by AuditPlan.
const (
	// InvProgram: the source program fails structural validation.
	InvProgram = "program"
	// InvBounds: a column or side-table reference is out of range.
	InvBounds = "bounds"
	// InvWidth: an op's width disagrees with its destination column.
	InvWidth = "width"
	// InvFlags: an op's flags are inconsistent with its destination
	// metadata (signedness flag, or a ≥63-bit op missing the wide flag,
	// whose mask math would corrupt bits 63..64).
	InvFlags = "flags"
	// InvCoverage: an op kind falls outside the interpreter's opcode
	// set — the exhaustiveness guarantee of the dispatch switch.
	InvCoverage = "coverage"
	// InvAliasing: a destination aliases a column the same op still
	// reads, so the one-pass execution diverges from the sequential
	// semantics.
	InvAliasing = "aliasing"
	// InvCorrespondence: the op stream does not correspond to the
	// source program under the documented lowering (fusion included).
	InvCorrespondence = "correspondence"
	// InvMaskElision: an op claims wrapping is the identity but the
	// re-derived value intervals cannot prove it.
	InvMaskElision = "mask-elision"
	// InvZeroSet: a column is read before any op writes it but is
	// missing from the reset set, so arena reuse leaks stale rows.
	InvZeroSet = "zero-set"
)

// Violation is one invariant failure found by AuditPlan. Op is the plan
// op index the violation anchors to (-1 for plan-level failures).
type Violation struct {
	Op        int
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("op %d: %s: %s", v.Op, v.Invariant, v.Detail)
}

// AuditPlan independently re-checks plan against its source program.
// It proves, without trusting the lowering that built the plan:
//
//   - structural soundness: every column, side-table and width reference
//     is in bounds and consistent with the column table (InvBounds,
//     InvWidth, InvFlags), op kinds are within the interpreter's
//     dispatch set (InvCoverage), and no op's destination aliases a
//     column it still reads in the same pass (InvAliasing);
//   - correspondence: the op stream is exactly what the documented
//     lowering (including copy/accumulate fusion) produces from p
//     (InvCorrespondence);
//   - mask elision: every op flagged wide provably never wraps, by a
//     re-derived interval analysis over the machine's semantics
//     (InvMaskElision);
//   - zero-set soundness: every column read before it is written is in
//     the plan's reset set (InvZeroSet).
//
// A nil return means the plan is proved consistent with p under all four
// invariant families. Structural violations abort the audit early (the
// later analyses would index out of bounds); the remaining families are
// all checked so one pass reports every independent failure.
func AuditPlan(p *Program, plan *ExecPlan) []Violation {
	if plan == nil {
		return []Violation{{Op: -1, Invariant: InvProgram, Detail: "nil plan"}}
	}
	if err := p.Validate(); err != nil {
		return []Violation{{Op: -1, Invariant: InvProgram, Detail: err.Error()}}
	}
	if vs := plan.auditStructure(p); len(vs) > 0 {
		return vs
	}
	var out []Violation
	out = append(out, plan.auditCorrespondence(p)...)
	out = append(out, plan.auditRanges()...)
	out = append(out, plan.auditZeroSet()...)
	return out
}

// auditStructure checks bounds, widths, flags, side tables, opcode
// coverage and intra-op aliasing. Everything later phases index through
// is validated here, so they can run without defensive checks.
func (plan *ExecPlan) auditStructure(p *Program) []Violation {
	var out []Violation
	bad := func(op int, inv, format string, args ...any) {
		out = append(out, Violation{Op: op, Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}

	if len(plan.cols) != len(p.Cols) {
		bad(-1, InvBounds, "plan has %d columns, program has %d", len(plan.cols), len(p.Cols))
		return out
	}
	for c := range plan.cols {
		if plan.cols[c] != p.Cols[c] {
			bad(-1, InvBounds, "column %d metadata %+v differs from program %+v", c, plan.cols[c], p.Cols[c])
			return out
		}
	}
	ncols := int32(len(plan.cols))
	colOK := func(c int32) bool { return c >= 0 && c < ncols }
	for _, z := range plan.zero {
		if !colOK(z) {
			bad(-1, InvBounds, "zero-set column %d outside 0..%d", z, ncols-1)
		}
	}

	for i := range plan.ops {
		op := &plan.ops[i]
		if !colOK(op.dst) {
			bad(i, InvBounds, "destination column %d outside 0..%d", op.dst, ncols-1)
			continue
		}
		// The destination's declared width, clamped the way the
		// lowering clamps it into the op encoding.
		wantW := plan.cols[op.dst].Width
		if wantW > 64 {
			wantW = 64
		}
		if int(op.width) != wantW {
			bad(i, InvWidth, "op width %d != destination column width %d", op.width, wantW)
		}
		// A ≥63-bit op must be wide: wrap() is the identity there, but
		// the mask/sign constants of the truncating path are only
		// meaningful below 63 bits.
		if plan.cols[op.dst].Width >= 63 && !op.wide() {
			bad(i, InvFlags, "%d-bit op is not flagged wide; its wrap constants corrupt the top bits", plan.cols[op.dst].Width)
		}

		readsA := true
		switch op.kind {
		case planClear:
			readsA = false
		case planCopy, planNeg:
		case planAdd, planSub:
			if !colOK(op.b) {
				bad(i, InvBounds, "operand B column %d outside 0..%d", op.b, ncols-1)
			}
		case planCopyMulti:
			if op.ext < 0 || int(op.ext) >= len(plan.multi) {
				bad(i, InvBounds, "multi-copy side table index %d outside 0..%d", op.ext, len(plan.multi)-1)
				continue
			}
			for _, cd := range plan.multi[op.ext] {
				if !colOK(cd.col) {
					bad(i, InvBounds, "multi-copy destination %d outside 0..%d", cd.col, ncols-1)
					continue
				}
				w := plan.cols[cd.col].Width
				if w > 64 {
					w = 64
				}
				if w != int(op.width) {
					bad(i, InvWidth, "multi-copy destination %d has width %d, op width %d", cd.col, w, op.width)
				}
				if cd.unsigned != plan.cols[cd.col].Unsigned {
					bad(i, InvFlags, "multi-copy destination %d signedness %v != column metadata %v", cd.col, cd.unsigned, plan.cols[cd.col].Unsigned)
				}
				if colOK(op.a) && cd.col == op.a {
					bad(i, InvAliasing, "multi-copy destination %d aliases the source", cd.col)
				}
			}
		case planFused:
			if op.ext < 0 || int(op.ext) >= len(plan.chains) {
				bad(i, InvBounds, "fused-chain side table index %d outside 0..%d", op.ext, len(plan.chains)-1)
				continue
			}
			for k, ln := range plan.chains[op.ext] {
				if !colOK(ln.a) {
					bad(i, InvBounds, "chain link %d column %d outside 0..%d", k, ln.a, ncols-1)
					continue
				}
				if ln.sgn != 1 && ln.sgn != -1 {
					bad(i, InvCorrespondence, "chain link %d sign %d is not ±1", k, ln.sgn)
				}
				if ln.a == op.dst {
					// The one-pass chain reads the link column before the
					// destination row is written; sequential semantics
					// would observe the freshly copied value.
					bad(i, InvAliasing, "chain link %d reads the destination column %d", k, op.dst)
				}
			}
		default:
			// Exhaustive opcode coverage: a kind the interpreter's
			// dispatch switch does not know silently executes as a no-op.
			bad(i, InvCoverage, "op kind %d outside the interpreter's dispatch set", op.kind)
			continue
		}

		if readsA && !colOK(op.a) {
			bad(i, InvBounds, "operand A column %d outside 0..%d", op.a, ncols-1)
			continue
		}
		// Signedness flag: copies (and their fused form) wrap with the
		// destination's declared signedness; everything else wraps
		// signed and must not carry the flag.
		switch op.kind {
		case planCopy, planCopyMulti, planFused:
			if op.unsigned() != plan.cols[op.dst].Unsigned {
				bad(i, InvFlags, "copy signedness flag %v != destination column metadata %v", op.unsigned(), plan.cols[op.dst].Unsigned)
			}
		case planClear, planAdd, planSub, planNeg:
			if op.unsigned() {
				bad(i, InvFlags, "non-copy op carries the unsigned-copy flag")
			}
		}
		if op.kind == planCopy && op.dst == op.a {
			bad(i, InvAliasing, "copy destination aliases its source")
		}
	}
	return out
}

// xop is one op of the independently re-derived lowering the
// correspondence audit compares the plan against.
type xop struct {
	kind  planKind
	dst   int32
	a, b  int32
	width uint8
	dsts  []copyDst
	chain []chainLink
}

// expectedLowering re-derives the op stream the documented lowering
// produces from p: one op per instruction, multi-destination copies
// carrying their destination list, and a plain copy absorbing the
// in-place add/sub chain that follows it on the same destination.
func expectedLowering(p *Program) []xop {
	var out []xop
	instrs := p.Instrs
	for i := 0; i < len(instrs); i++ {
		ins := instrs[i]
		w := ins.Width
		if w > 64 {
			w = 64
		}
		x := xop{dst: int32(ins.Dst), a: int32(ins.A), b: int32(ins.B), width: uint8(w)}
		switch ins.Op {
		case OpClear:
			x.kind = planClear
		case OpAdd:
			x.kind = planAdd
		case OpSub:
			x.kind = planSub
		case OpNeg:
			x.kind = planNeg
		case OpCopy:
			if len(ins.Dsts) > 0 {
				x.kind = planCopyMulti
				x.dsts = append(x.dsts, copyDst{int32(ins.Dst), p.Cols[ins.Dst].Unsigned})
				for _, d := range ins.Dsts {
					x.dsts = append(x.dsts, copyDst{int32(d), p.Cols[d].Unsigned})
				}
				break
			}
			x.kind = planCopy
			for j := i + 1; j < len(instrs); j++ {
				nxt := instrs[j]
				if !nxt.InPlace || nxt.Dst != ins.Dst || (nxt.Op != OpAdd && nxt.Op != OpSub) {
					break
				}
				sgn := int64(1)
				if nxt.Op == OpSub {
					sgn = -1
				}
				x.chain = append(x.chain, chainLink{a: int32(nxt.A), sgn: sgn})
				i = j
			}
			if len(x.chain) > 0 {
				x.kind = planFused
			}
		}
		out = append(out, x)
	}
	return out
}

// auditCorrespondence proves the plan's op stream is exactly the
// expected lowering of p: every field the machine dispatches on must
// match (operand columns, widths, kinds, destination lists, fused
// chains). A flipped opcode, a perturbed column index, or a corrupted
// side table all surface here with the offending op index.
func (plan *ExecPlan) auditCorrespondence(p *Program) []Violation {
	var out []Violation
	bad := func(op int, format string, args ...any) {
		out = append(out, Violation{Op: op, Invariant: InvCorrespondence, Detail: fmt.Sprintf(format, args...)})
	}
	want := expectedLowering(p)
	if len(want) != len(plan.ops) {
		bad(-1, "plan has %d ops, lowering of the program produces %d", len(plan.ops), len(want))
		return out
	}
	for i := range plan.ops {
		op, x := &plan.ops[i], &want[i]
		if op.kind != x.kind {
			bad(i, "op kind %d, program instruction lowers to %d", op.kind, x.kind)
			continue
		}
		if op.width != x.width {
			bad(i, "op width %d, program width %d", op.width, x.width)
		}
		switch op.kind {
		case planClear, planCopy, planNeg:
			if op.dst != x.dst {
				bad(i, "destination %d, program destination %d", op.dst, x.dst)
			}
			if op.kind != planClear && op.a != x.a {
				bad(i, "operand A %d, program operand %d", op.a, x.a)
			}
		case planAdd, planSub:
			if op.dst != x.dst || op.a != x.a || op.b != x.b {
				bad(i, "operands (dst %d, a %d, b %d), program (dst %d, a %d, b %d)",
					op.dst, op.a, op.b, x.dst, x.a, x.b)
			}
		case planCopyMulti:
			if op.a != x.a {
				bad(i, "operand A %d, program operand %d", op.a, x.a)
			}
			dsts := plan.multi[op.ext]
			if len(dsts) != len(x.dsts) {
				bad(i, "%d multi-copy destinations, program has %d", len(dsts), len(x.dsts))
				continue
			}
			for k := range dsts {
				if dsts[k] != x.dsts[k] {
					bad(i, "multi-copy destination %d is %+v, program has %+v", k, dsts[k], x.dsts[k])
				}
			}
		case planFused:
			if op.dst != x.dst || op.a != x.a {
				bad(i, "fused (dst %d, a %d), program (dst %d, a %d)", op.dst, op.a, x.dst, x.a)
			}
			chain := plan.chains[op.ext]
			if len(chain) != len(x.chain) {
				bad(i, "%d fused chain links, program has %d", len(chain), len(x.chain))
				continue
			}
			for k := range chain {
				if chain[k] != x.chain[k] {
					bad(i, "chain link %d is %+v, program has %+v", k, chain[k], x.chain[k])
				}
			}
		}
	}
	return out
}

// --- independent interval analysis -----------------------------------
//
// The helpers below re-derive, from column widths alone, the exact
// facts the wrap-elision proof needs. They intentionally do not call
// formatRange/fitsFormat/addSat: the audit must not inherit a bug from
// the analysis it checks.

// auditSatBound mirrors the saturation band of the compile-time
// analysis: endpoints beyond it are "unknown", and saturated arithmetic
// below it can never overflow int64.
const auditSatBound = int64(1) << 61

func auditSatAdd(a, b int64) int64 {
	switch s := a + b; {
	case s > auditSatBound:
		return auditSatBound
	case s < -auditSatBound:
		return -auditSatBound
	default:
		return s
	}
}

// auditBand is the value interval a w-bit stored column can hold. From
// 63 bits up wrap() is the identity, so the column holds anything the
// analysis can represent (including negatives in nominally unsigned
// columns).
func auditBand(w int, unsigned bool) (int64, int64) {
	if w >= 63 {
		return -auditSatBound, auditSatBound
	}
	if unsigned {
		hi := int64(1)<<uint(w) - 1
		if hi > auditSatBound {
			hi = auditSatBound
		}
		return 0, hi
	}
	half := int64(1) << uint(w-1)
	return -half, half - 1
}

// auditNoWrap reports whether [l, h] provably survives a w-bit wrap of
// the given signedness unchanged. Saturated endpoints prove nothing.
func auditNoWrap(l, h int64, w int, unsigned bool) bool {
	if w >= 63 {
		return true
	}
	if l <= -auditSatBound || h >= auditSatBound {
		return false
	}
	bl, bh := auditBand(w, unsigned)
	return l >= bl && h <= bh
}

// auditRanges re-derives the value interval of every column under the
// machine's execution semantics and checks each claimed wrap elision
// against it. Entry state: loads wrap to each column's stored format
// and unwritten columns read zero, so every column starts inside its
// format band. A wide op keeps its exact result interval (that is what
// the machine computes); a truncating op collapses its destination to
// the stored format band, which soundly over-approximates any wrap.
func (plan *ExecPlan) auditRanges() []Violation {
	var out []Violation
	bad := func(op int, format string, args ...any) {
		out = append(out, Violation{Op: op, Invariant: InvMaskElision, Detail: fmt.Sprintf(format, args...)})
	}
	n := len(plan.cols)
	lo := make([]int64, n)
	hi := make([]int64, n)
	for c, col := range plan.cols {
		lo[c], hi[c] = auditBand(col.Width, col.Unsigned)
	}
	for i := range plan.ops {
		op := &plan.ops[i]
		w := int(op.width)
		switch op.kind {
		case planClear:
			lo[op.dst], hi[op.dst] = 0, 0
		case planCopy:
			l, h := lo[op.a], hi[op.a]
			if op.wide() {
				if !auditNoWrap(l, h, w, op.unsigned()) {
					bad(i, "mask-free copy of [%d, %d] into a %d-bit column is not provably wrap-free", l, h, w)
				}
				lo[op.dst], hi[op.dst] = l, h
			} else {
				lo[op.dst], hi[op.dst] = auditBand(w, op.unsigned())
			}
		case planCopyMulti:
			l, h := lo[op.a], hi[op.a]
			for _, cd := range plan.multi[op.ext] {
				switch {
				case op.wide():
					if !auditNoWrap(l, h, w, cd.unsigned) {
						bad(i, "mask-free multi-copy of [%d, %d] into %d-bit column %d is not provably wrap-free", l, h, w, cd.col)
					}
					lo[cd.col], hi[cd.col] = l, h
				case auditNoWrap(l, h, w, cd.unsigned):
					// The truncating copy is provably the identity here, so
					// the destination keeps the exact source interval — the
					// fact later elision proofs may rest on.
					lo[cd.col], hi[cd.col] = l, h
				default:
					lo[cd.col], hi[cd.col] = auditBand(w, cd.unsigned)
				}
			}
		case planAdd, planSub, planNeg:
			var l, h int64
			switch op.kind {
			case planAdd:
				l, h = auditSatAdd(lo[op.b], lo[op.a]), auditSatAdd(hi[op.b], hi[op.a])
			case planSub:
				l, h = auditSatAdd(lo[op.b], -hi[op.a]), auditSatAdd(hi[op.b], -lo[op.a])
			default:
				l, h = -hi[op.a], -lo[op.a]
			}
			if op.wide() {
				if !auditNoWrap(l, h, w, false) {
					bad(i, "mask-free arithmetic result [%d, %d] in a %d-bit column is not provably wrap-free", l, h, w)
				}
				lo[op.dst], hi[op.dst] = l, h
			} else {
				lo[op.dst], hi[op.dst] = auditBand(w, false)
			}
		case planFused:
			l, h := lo[op.a], hi[op.a]
			if op.wide() {
				if !auditNoWrap(l, h, w, op.unsigned()) {
					bad(i, "mask-free fused copy of [%d, %d] into a %d-bit column is not provably wrap-free", l, h, w)
				}
				for k, ln := range plan.chains[op.ext] {
					if ln.sgn > 0 {
						l, h = auditSatAdd(l, lo[ln.a]), auditSatAdd(h, hi[ln.a])
					} else {
						l, h = auditSatAdd(l, -hi[ln.a]), auditSatAdd(h, -lo[ln.a])
					}
					if !auditNoWrap(l, h, w, false) {
						bad(i, "mask-free fused chain link %d result [%d, %d] in a %d-bit column is not provably wrap-free", k, l, h, w)
					}
				}
			} else {
				if !auditNoWrap(l, h, w, op.unsigned()) {
					l, h = auditBand(w, op.unsigned())
				}
				for _, ln := range plan.chains[op.ext] {
					if ln.sgn > 0 {
						l, h = auditSatAdd(l, lo[ln.a]), auditSatAdd(h, hi[ln.a])
					} else {
						l, h = auditSatAdd(l, -hi[ln.a]), auditSatAdd(h, -lo[ln.a])
					}
					if !auditNoWrap(l, h, w, false) {
						l, h = auditBand(w, false)
					}
				}
			}
			lo[op.dst], hi[op.dst] = l, h
		}
	}
	return out
}

// auditZeroSet re-derives the columns the machine reads before any op
// writes them — exactly the rows Machine.Reset must clear on arena
// reuse — and requires every one of them in the plan's reset set. A
// superset is sound (clearing more than necessary wastes a little
// work); a missing column leaks stale values from the previous shape.
func (plan *ExecPlan) auditZeroSet() []Violation {
	var out []Violation
	zeroed := make(map[int32]bool, len(plan.zero))
	for _, z := range plan.zero {
		zeroed[z] = true
	}
	written := make([]bool, len(plan.cols))
	read := func(op int, c int32) {
		if !written[c] && !zeroed[c] {
			out = append(out, Violation{Op: op, Invariant: InvZeroSet,
				Detail: fmt.Sprintf("column %d is read before any write but missing from the reset set", c)})
			zeroed[c] = true // report each leaked column once
		}
	}
	for i := range plan.ops {
		op := &plan.ops[i]
		switch op.kind {
		case planClear:
			written[op.dst] = true
		case planCopy, planNeg:
			read(i, op.a)
			written[op.dst] = true
		case planCopyMulti:
			read(i, op.a)
			for _, cd := range plan.multi[op.ext] {
				written[cd.col] = true
			}
		case planAdd, planSub:
			read(i, op.a)
			read(i, op.b)
			written[op.dst] = true
		case planFused:
			read(i, op.a)
			for _, ln := range plan.chains[op.ext] {
				read(i, ln.a)
			}
			written[op.dst] = true
		}
	}
	return out
}
