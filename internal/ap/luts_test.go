package ap

import (
	"fmt"
	"testing"
)

func passMap(l *LUT) map[string][]uint8 {
	m := make(map[string][]uint8)
	for _, p := range l.Passes {
		m[fmt.Sprint(p.Key)] = p.Out
	}
	return m
}

func keyOrder(l *LUT) []string {
	var out []string
	for _, p := range l.Passes {
		out = append(out, fmt.Sprint(p.Key))
	}
	return out
}

// Table I, left half: the in-place 1-bit adder. Four passes (8 cycles) in
// the paper's run order 1st..4th.
func TestInPlaceAdderMatchesPaperTableI(t *testing.T) {
	if got := len(AddIn.Passes); got != 4 {
		t.Fatalf("in-place adder has %d passes, want 4", got)
	}
	if AddIn.Cycles() != 8 {
		t.Fatalf("in-place adder cycles %d, want 8", AddIn.Cycles())
	}
	wantOrder := []string{
		fmt.Sprint([]uint8{0, 1, 1}), // 1st: (Cr,B,A)=011 → (1,0)
		fmt.Sprint([]uint8{0, 0, 1}), // 2nd: 001 → (0,1)
		fmt.Sprint([]uint8{1, 0, 0}), // 3rd: 100 → (0,1)
		fmt.Sprint([]uint8{1, 1, 0}), // 4th: 110 → (1,0)
	}
	got := keyOrder(AddIn)
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Errorf("pass %d key %s, want %s (paper run order)", i+1, got[i], wantOrder[i])
		}
	}
	m := passMap(AddIn)
	checks := map[string][]uint8{
		fmt.Sprint([]uint8{0, 1, 1}): {1, 0},
		fmt.Sprint([]uint8{0, 0, 1}): {0, 1},
		fmt.Sprint([]uint8{1, 0, 0}): {0, 1},
		fmt.Sprint([]uint8{1, 1, 0}): {1, 0},
	}
	for k, want := range checks {
		if fmt.Sprint(m[k]) != fmt.Sprint(want) {
			t.Errorf("key %s writes %v, want %v", k, m[k], want)
		}
	}
}

// Table I, right half of the subtractor rows: both subtractors match the
// paper exactly, including run order.
func TestSubtractorsMatchPaperTableI(t *testing.T) {
	if len(SubIn.Passes) != 4 || SubIn.Cycles() != 8 {
		t.Fatalf("in-place sub: %d passes/%d cycles, want 4/8", len(SubIn.Passes), SubIn.Cycles())
	}
	wantIn := []string{
		fmt.Sprint([]uint8{0, 0, 1}), // 1st: 001 → (1,1)
		fmt.Sprint([]uint8{0, 1, 1}), // 2nd: 011 → (0,0)
		fmt.Sprint([]uint8{1, 1, 0}), // 3rd: 110 → (0,0)
		fmt.Sprint([]uint8{1, 0, 0}), // 4th: 100 → (1,1)
	}
	got := keyOrder(SubIn)
	for i := range wantIn {
		if got[i] != wantIn[i] {
			t.Errorf("in-place sub pass %d = %s, want %s", i+1, got[i], wantIn[i])
		}
	}

	if len(SubOut.Passes) != 5 || SubOut.Cycles() != 10 {
		t.Fatalf("out-of-place sub: %d passes/%d cycles, want 5/10", len(SubOut.Passes), SubOut.Cycles())
	}
	wantOut := []string{
		fmt.Sprint([]uint8{0, 0, 1}), // 1st
		fmt.Sprint([]uint8{0, 1, 0}), // 2nd
		fmt.Sprint([]uint8{1, 0, 0}), // 3rd
		fmt.Sprint([]uint8{1, 1, 0}), // 4th
		fmt.Sprint([]uint8{1, 1, 1}), // 5th
	}
	got = keyOrder(SubOut)
	for i := range wantOut {
		if got[i] != wantOut[i] {
			t.Errorf("out-of-place sub pass %d = %s, want %s", i+1, got[i], wantOut[i])
		}
	}
}

// The paper's printed out-of-place adder marks row 011 as NC and row 110
// as a pass; simulating the truth table shows those two comments must be
// swapped (row 110 leaves carry=1 and fresh R=0 untouched, while row 011
// must raise the carry). Our generated table carries the corrected rows —
// same pass count (5) and cycle count (10) as the paper.
func TestPaperTableIAdderErratum(t *testing.T) {
	if len(AddOut.Passes) != 5 || AddOut.Cycles() != 10 {
		t.Fatalf("out-of-place add: %d passes/%d cycles, want 5/10", len(AddOut.Passes), AddOut.Cycles())
	}
	m := passMap(AddOut)
	if _, has110 := m[fmt.Sprint([]uint8{1, 1, 0})]; has110 {
		t.Error("row 110 should be NC for out-of-place add (Cr stays 1, R stays 0)")
	}
	out011, has011 := m[fmt.Sprint([]uint8{0, 1, 1})]
	if !has011 {
		t.Fatal("row 011 must be a pass (carry must be raised)")
	}
	if fmt.Sprint(out011) != fmt.Sprint([]uint8{1, 0}) {
		t.Errorf("row 011 writes %v, want [1 0]", out011)
	}
	// Ordering correctness: 111 must run before 011, otherwise rows
	// processed by 011 (which become Cr=1,B=1,A=1) would be re-matched.
	order := keyOrder(AddOut)
	pos := map[string]int{}
	for i, k := range order {
		pos[k] = i
	}
	if pos[fmt.Sprint([]uint8{1, 1, 1})] > pos[fmt.Sprint([]uint8{0, 1, 1})] {
		t.Errorf("pass 111 must precede 011; got order %v", order)
	}
}

// Degenerate (operand-exhausted) LUT variants keep the expected sizes.
func TestDegenerateLUTSizes(t *testing.T) {
	cases := []struct {
		lut  *LUT
		want int
	}{
		{AddInNoA, 2}, {AddOutNoA, 2}, {SubInNoA, 2}, {SubOutNoA, 3},
		{NegOut, 2}, {AddOutCarryOnly, 1}, {SubOutBorrowOnly, 1}, {CopyOut, 1},
	}
	for _, c := range cases {
		if got := len(c.lut.Passes); got != c.want {
			t.Errorf("%s: %d passes, want %d", c.lut.Name, got, c.want)
		}
	}
}

// Every generated LUT must, when simulated pass-by-pass on all possible
// row states, produce exactly its truth function.
func TestLUTPassSimulation(t *testing.T) {
	type tf struct {
		lut *LUT
		f   func(in []uint8) []uint8
	}
	cases := []tf{
		{AddIn, addTruth}, {AddOut, addTruth},
		{AddInNoA, addTruth}, {AddOutNoA, addTruth}, {AddOutCarryOnly, addTruth},
		{SubIn, subTruth}, {SubOut, subTruth},
		{SubInNoA, subNoATruth}, {NegOut, negTruth},
	}
	for _, c := range cases {
		l := c.lut
		for v := 0; v < 1<<uint(l.NIn); v++ {
			// Row state over search roles (plus an implicit fresh output 0).
			state := make([]uint8, l.NIn)
			for i := range state {
				state[i] = uint8(v>>uint(l.NIn-1-i)) & 1
			}
			fresh := uint8(0)
			matchedOnce := false
			for _, p := range l.Passes {
				match := true
				for i := range p.Key {
					if state[i] != p.Key[i] {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				if matchedOnce {
					t.Errorf("%s: state %d matched two passes", l.Name, v)
				}
				matchedOnce = true
				for j, role := range l.Persistent {
					if role >= 0 {
						state[role] = p.Out[j]
					} else {
						fresh = p.Out[j]
					}
				}
			}
			// Recompute expected outputs from the original input.
			in := make([]uint8, l.NIn)
			for i := range in {
				in[i] = uint8(v>>uint(l.NIn-1-i)) & 1
			}
			want := c.f(in)
			for j, role := range l.Persistent {
				got := fresh
				if role >= 0 {
					got = state[role]
				}
				if got != want[j]&1 {
					t.Errorf("%s: input %v: output role %d = %d, want %d",
						l.Name, in, j, got, want[j]&1)
				}
			}
		}
	}
}

func TestLUTString(t *testing.T) {
	s := AddIn.String()
	if s == "" {
		t.Error("empty LUT rendering")
	}
}
