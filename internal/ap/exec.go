package ap

import (
	"fmt"

	"rtmap/internal/cam"
)

// Exec runs program p bit-serially on the CAM array, issuing the exact
// masked-search and tagged-write passes of the generated LUTs. phys maps
// program column ids to physical CAM columns (nil = identity). This is the
// cycle-faithful execution path used to validate the fast word-level
// simulator and to ground the cost model; large-scale simulation uses
// ExecWord instead.
func Exec(a *cam.Array, p *Program, phys []int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	pc := func(c int) int {
		if phys == nil {
			return c
		}
		return phys[c]
	}
	if len(p.Cols) > a.Cols() {
		return fmt.Errorf("ap: program uses %d columns, array has %d", len(p.Cols), a.Cols())
	}

	carryCol := pc(p.Carry)
	carryBase := p.Cols[p.Carry].Base

	for idx, ins := range p.Instrs {
		if err := execInstr(a, p, ins, pc, carryCol, carryBase); err != nil {
			return fmt.Errorf("ap: instr %d (%v): %w", idx, ins, err)
		}
	}
	return nil
}

// operand describes one source column during bit-serial execution.
type operand struct {
	col  int // physical column
	meta Col
}

// domainAt returns the domain to align for bit k and whether the operand
// still contributes (false once an unsigned operand is exhausted).
func (o operand) domainAt(k int) (int, bool) {
	if k < o.meta.Width {
		return o.meta.Base + k, true
	}
	if o.meta.Unsigned {
		return 0, false
	}
	return o.meta.Base + o.meta.Width - 1, true // hold at sign bit
}

func execInstr(a *cam.Array, p *Program, ins Instr, pc func(int) int, carryCol, carryBase int) error {
	switch ins.Op {
	case OpClear:
		d := p.Cols[ins.Dst]
		for k := 0; k < ins.Width; k++ {
			a.Align(pc(ins.Dst), d.Base+k)
			a.WriteAll([]cam.KeyBit{{Col: pc(ins.Dst), Bit: 0}})
		}
		return nil

	case OpCopy:
		src := operand{pc(ins.A), p.Cols[ins.A]}
		dests := append([]int{ins.Dst}, ins.Dsts...)
		for k := 0; k < ins.Width; k++ {
			clear := make([]cam.KeyBit, 0, len(dests))
			for _, d := range dests {
				a.Align(pc(d), p.Cols[d].Base+k)
				clear = append(clear, cam.KeyBit{Col: pc(d), Bit: 0})
			}
			a.WriteAll(clear)
			dom, present := src.domainAt(k)
			if !present {
				continue // exhausted unsigned source: bits stay zero
			}
			a.Align(src.col, dom)
			for _, pass := range CopyOut.Passes {
				a.Search([]cam.KeyBit{{Col: src.col, Bit: pass.Key[0]}})
				w := make([]cam.KeyBit, 0, len(dests))
				for _, d := range dests {
					w = append(w, cam.KeyBit{Col: pc(d), Bit: pass.Out[0]})
				}
				a.WriteTagged(w)
			}
		}
		return nil

	case OpAdd, OpSub, OpNeg:
		return execArith(a, p, ins, pc, carryCol, carryBase)
	default:
		return errUnknownOpcode(ins.Op)
	}
}

func execArith(a *cam.Array, p *Program, ins Instr, pc func(int) int, carryCol, carryBase int) error {
	// Clear the carry/borrow column once per instruction.
	a.Align(carryCol, carryBase)
	a.WriteAll([]cam.KeyBit{{Col: carryCol, Bit: 0}})

	var opA, opB operand
	hasB := ins.Op != OpNeg
	opA = operand{pc(ins.A), p.Cols[ins.A]}
	if hasB {
		opB = operand{pc(ins.B), p.Cols[ins.B]}
	}
	dstPhys := pc(ins.Dst)
	dstMeta := p.Cols[ins.Dst]

	for k := 0; k < ins.Width; k++ {
		aDom, aOK := opA.domainAt(k)
		if aOK {
			a.Align(opA.col, aDom)
		}
		bOK := false
		if hasB {
			var bDom int
			bDom, bOK = opB.domainAt(k)
			if bOK {
				a.Align(opB.col, bDom)
			}
		}
		if !ins.InPlace {
			a.Align(dstPhys, dstMeta.Base+k)
			a.WriteAll([]cam.KeyBit{{Col: dstPhys, Bit: 0}})
		}

		lut, search, write := selectLUT(ins, carryCol, opA.col, opB.col, dstPhys, aOK, bOK)
		for _, pass := range lut.Passes {
			key := make([]cam.KeyBit, len(search))
			for i, c := range search {
				key[i] = cam.KeyBit{Col: c, Bit: pass.Key[i]}
			}
			a.Search(key)
			out := make([]cam.KeyBit, len(write))
			for i, c := range write {
				out[i] = cam.KeyBit{Col: c, Bit: pass.Out[i]}
			}
			a.WriteTagged(out)
		}
	}
	return nil
}

// selectLUT picks the LUT variant for one bit position given operand
// availability, returning the physical search and write column lists in
// role order. Exhausted unsigned operands degrade the op to its
// carry/borrow-ripple variant, which is both physically accurate and
// cheaper — the "custom integer types" optimization of §IV-A.
func selectLUT(ins Instr, carry, colA, colB, dst int, aOK, bOK bool) (*LUT, []int, []int) {
	res := dst
	if ins.InPlace {
		res = colB
	}
	switch ins.Op {
	case OpAdd:
		if ins.InPlace {
			if aOK {
				return AddIn, []int{carry, colB, colA}, []int{carry, colB}
			}
			return AddInNoA, []int{carry, colB}, []int{carry, colB}
		}
		switch {
		case aOK && bOK:
			return AddOut, []int{carry, colB, colA}, []int{carry, res}
		case bOK:
			return AddOutNoA, []int{carry, colB}, []int{carry, res}
		case aOK:
			return AddOutNoA, []int{carry, colA}, []int{carry, res}
		default:
			return AddOutCarryOnly, []int{carry}, []int{carry, res}
		}
	case OpSub:
		if ins.InPlace {
			if aOK {
				return SubIn, []int{carry, colB, colA}, []int{carry, colB}
			}
			return SubInNoA, []int{carry, colB}, []int{carry, colB}
		}
		switch {
		case aOK && bOK:
			return SubOut, []int{carry, colB, colA}, []int{carry, res}
		case bOK:
			return SubOutNoA, []int{carry, colB}, []int{carry, res}
		case aOK:
			return NegOut, []int{carry, colA}, []int{carry, res}
		default:
			return SubOutBorrowOnly, []int{carry}, []int{carry, res}
		}
	case OpNeg:
		if aOK {
			return NegOut, []int{carry, colA}, []int{carry, res}
		}
		return SubOutBorrowOnly, []int{carry}, []int{carry, res}
	default:
		panic("ap: selectLUT on non-arithmetic op")
	}
}
