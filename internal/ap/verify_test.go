package ap

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// Opcode.String must be total (diagnostics format arbitrary byte values),
// and every consumer of an invalid opcode must report the same message.
func TestUnknownOpcodeUniformDiagnostics(t *testing.T) {
	if got := OpCopy.String(); got != "copy" {
		t.Fatalf("OpCopy.String() = %q, want \"copy\"", got)
	}
	bad := Opcode(97)
	if got := bad.String(); got != "op(97)" {
		t.Fatalf("Opcode(97).String() = %q, want \"op(97)\"", got)
	}

	const want = "unknown opcode op(97)"
	if got := errUnknownOpcode(bad).Error(); got != want {
		t.Fatalf("errUnknownOpcode = %q, want %q", got, want)
	}
	p := buildProgram([]int{4}, []bool{false})
	p.Instrs = []Instr{{Op: bad, Dst: 1, Width: 4}}
	errV := p.Validate()
	if errV == nil || !strings.HasSuffix(errV.Error(), want) {
		t.Fatalf("Validate() = %v, want suffix %q", errV, want)
	}
	if _, errP := NewExecPlan(p); errP == nil || !strings.HasSuffix(errP.Error(), want) {
		t.Fatalf("NewExecPlan() = %v, want suffix %q", errP, want)
	}
}

// AuditPlan must confirm every plan the real lowering produces: a clean
// compile is the verifier's zero-false-positive contract. Randomized
// programs cover fusion, multi-destination copies and wide columns.
func TestAuditPlanCleanOnRandomPrograms(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0x5eed))
		p := randomProgram(rng, trial%2 == 0)
		if p == nil {
			continue
		}
		plan, err := NewExecPlan(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if vs := AuditPlan(p, plan); len(vs) != 0 {
			t.Fatalf("trial %d: audit of a freshly compiled plan reported %d violations, first: %v\nprogram: %v",
				trial, len(vs), vs[0], p.Instrs)
		}
	}
}

// AuditPlan plan-level failures: nil plans and invalid source programs
// are rejected before any structural phase runs.
func TestAuditPlanRejectsBadInputs(t *testing.T) {
	p := buildProgram([]int{4}, []bool{false})
	if vs := AuditPlan(p, nil); len(vs) != 1 || vs[0].Invariant != InvProgram {
		t.Fatalf("nil plan: %v", vs)
	}
	plan, err := NewExecPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := buildProgram([]int{4}, []bool{false})
	bad.Instrs = []Instr{{Op: OpClear, Dst: 99, Width: 4}}
	vs := AuditPlan(bad, plan)
	if len(vs) != 1 || vs[0].Invariant != InvProgram || vs[0].Op != -1 {
		t.Fatalf("invalid program: %v", vs)
	}
	if !strings.Contains(vs[0].String(), InvProgram) {
		t.Fatalf("violation string %q does not name its invariant", vs[0].String())
	}
}

// clonePlan deep-copies a plan so a mutation cannot leak into the
// original (plans are shared, immutable artifacts).
func clonePlan(p *ExecPlan) *ExecPlan {
	q := &ExecPlan{
		cols: append([]Col(nil), p.cols...),
		ops:  append([]planOp(nil), p.ops...),
		zero: append([]int32(nil), p.zero...),
	}
	for _, m := range p.multi {
		q.multi = append(q.multi, append([]copyDst(nil), m...))
	}
	for _, c := range p.chains {
		q.chains = append(q.chains, append([]chainLink(nil), c...))
	}
	return q
}

// planMutation is one single-op corruption operator. apply mutates plan
// in place and reports whether the operator was applicable; rng picks
// the target op.
type planMutation struct {
	name  string
	apply func(rng *rand.Rand, plan *ExecPlan) bool
}

// pickOp returns the index of a random op satisfying ok, or -1.
func pickOp(rng *rand.Rand, plan *ExecPlan, ok func(*planOp) bool) int {
	var cand []int
	for i := range plan.ops {
		if ok(&plan.ops[i]) {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	return cand[rng.IntN(len(cand))]
}

// planMutations are the corruption operators of the mutation harness —
// each models a distinct compiler-bug class the verifier must catch:
// mis-lowered opcodes, perturbed operand wiring, unsound wrap-elision
// claims, corrupted flags/side tables, and dropped reset tracking.
var planMutations = []planMutation{
	{"flip-kind", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(*planOp) bool { return true })
		if i < 0 {
			return false
		}
		op := &plan.ops[i]
		op.kind = planKind((uint8(op.kind) + 1 + uint8(rng.IntN(6))) % 7)
		return true
	}},
	{"invalid-kind", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(*planOp) bool { return true })
		if i < 0 {
			return false
		}
		plan.ops[i].kind = planKind(7 + rng.IntN(8))
		return true
	}},
	{"perturb-dst", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(*planOp) bool { return true })
		if i < 0 {
			return false
		}
		op := &plan.ops[i]
		op.dst = (op.dst + 1) % int32(len(plan.cols))
		return true
	}},
	{"perturb-a", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(op *planOp) bool { return op.kind != planClear })
		if i < 0 {
			return false
		}
		op := &plan.ops[i]
		op.a = (op.a + 1) % int32(len(plan.cols))
		return true
	}},
	{"perturb-b", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(op *planOp) bool { return op.kind == planAdd || op.kind == planSub })
		if i < 0 {
			return false
		}
		op := &plan.ops[i]
		op.b = (op.b + 1) % int32(len(plan.cols))
		return true
	}},
	{"perturb-width", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(op *planOp) bool { return op.width > 1 })
		if i < 0 {
			return false
		}
		plan.ops[i].width--
		return true
	}},
	// Widen a claimed range: assert wrap-elision on an op the compiler's
	// own analysis could not prove wrap-free.
	{"claim-wide", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(op *planOp) bool { return !op.wide() && op.kind != planClear })
		if i < 0 {
			return false
		}
		plan.ops[i].flags |= flagWide
		return true
	}},
	// Drop the mandatory wide flag of a ≥63-bit op, whose truncating
	// wrap constants corrupt the top bits.
	{"drop-wide", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(op *planOp) bool {
			return op.wide() && plan.cols[op.dst].Width >= 63
		})
		if i < 0 {
			return false
		}
		plan.ops[i].flags &^= flagWide
		return true
	}},
	{"flip-sign-flag", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(*planOp) bool { return true })
		if i < 0 {
			return false
		}
		plan.ops[i].flags ^= flagUnsigned
		return true
	}},
	{"flip-chain-sign", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(op *planOp) bool { return op.kind == planFused })
		if i < 0 {
			return false
		}
		chain := plan.chains[plan.ops[i].ext]
		chain[rng.IntN(len(chain))].sgn *= -1
		return true
	}},
	{"perturb-multi-dst", func(rng *rand.Rand, plan *ExecPlan) bool {
		i := pickOp(rng, plan, func(op *planOp) bool { return op.kind == planCopyMulti })
		if i < 0 {
			return false
		}
		dsts := plan.multi[plan.ops[i].ext]
		k := rng.IntN(len(dsts))
		dsts[k].col = (dsts[k].col + 1) % int32(len(plan.cols))
		return true
	}},
	{"drop-op", func(rng *rand.Rand, plan *ExecPlan) bool {
		if len(plan.ops) == 0 {
			return false
		}
		i := rng.IntN(len(plan.ops))
		plan.ops = append(plan.ops[:i], plan.ops[i+1:]...)
		return true
	}},
	// Drop a reset: remove one column from the zero set, leaking stale
	// arena rows into the next execution.
	{"drop-zero", func(rng *rand.Rand, plan *ExecPlan) bool {
		if len(plan.zero) == 0 {
			return false
		}
		i := rng.IntN(len(plan.zero))
		plan.zero = append(plan.zero[:i], plan.zero[i+1:]...)
		return true
	}},
}

// plansEquivalent proves a mutant that passed the audit is semantically
// harmless: both plans, executed over identical random loads on fresh
// machines, must produce bit-identical values in every column. An
// audit-clean mutant is guaranteed structurally sound, so running it
// cannot fault.
func plansEquivalent(t *testing.T, rng *rand.Rand, p *Program, orig, mut *ExecPlan) bool {
	t.Helper()
	const rows = 5
	var mo, mm Machine
	mo.Reset(orig, rows)
	mm.Reset(mut, rows)
	vals := loadRandom(rng, p, rows)
	v32 := make([]int32, rows)
	for c := 1; c < len(p.Cols); c++ {
		for r, v := range vals[c] {
			v32[r] = int32(v)
		}
		mo.SetColumnInt32(c, 0, v32)
		mm.SetColumnInt32(c, 0, v32)
	}
	mo.Run()
	mm.Run()
	for c := range p.Cols {
		want, got := mo.Column(c), mm.Column(c)
		for r := 0; r < rows; r++ {
			if want[r] != got[r] {
				return false
			}
		}
	}
	return true
}

// Mutation test of the verifier: inject single-op corruptions into
// known-good plans and require AuditPlan to catch ≥95% of them. The few
// escapees must each be proved semantically harmless (bit-identical
// execution against the original plan) and are logged with their
// operator, so every survivor is enumerated and justified.
func TestAuditPlanCatchesMutations(t *testing.T) {
	total, caught := 0, 0
	escapees := map[string]int{}
	for trial := 0; trial < 120; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xbadc0de))
		p := randomProgram(rng, trial%2 == 0)
		if p == nil {
			continue
		}
		orig, err := NewExecPlan(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, mu := range planMutations {
			mut := clonePlan(orig)
			if !mu.apply(rng, mut) {
				continue
			}
			total++
			if vs := AuditPlan(p, mut); len(vs) > 0 {
				caught++
				continue
			}
			// Escapee: only a provably harmless mutation may survive.
			escapees[mu.name]++
			if !plansEquivalent(t, rng, p, orig, mut) {
				t.Fatalf("trial %d: %s mutant passed the audit but diverges from the original plan\nprogram: %v",
					trial, mu.name, p.Instrs)
			}
		}
	}
	if total < 500 {
		t.Fatalf("mutation harness generated only %d mutants; generator regressed", total)
	}
	rate := float64(caught) / float64(total)
	t.Logf("caught %d/%d mutants (%.1f%%); harmless escapees by operator: %v",
		caught, total, 100*rate, escapees)
	for name := range escapees {
		// Operators whose corruption can fall in the machine's dead space
		// (op.dst of a multi-copy is ignored by Run; a wide claim the
		// audit can independently re-prove is a true no-op). Anything
		// else escaping means a verifier hole.
		if name != "perturb-dst" && name != "claim-wide" {
			t.Fatalf("operator %s produced an unexpected escapee class", name)
		}
	}
	if rate < 0.95 {
		t.Fatalf("mutation catch rate %.1f%% < 95%% (%d/%d)", 100*rate, caught, total)
	}
}
