package ap

import "fmt"

// ExecPlan is a Program lowered for repeated execution. The WordMachine
// re-validates and re-interprets the instruction list on every run and
// re-derives each destination's wrap parameters per row; an ExecPlan does
// all of that exactly once, at build time:
//
//   - the program is validated once, so execution has no error paths;
//   - every instruction becomes a dense, 20-byte planOp with resolved
//     column indices (large networks stream millions of ops per
//     inference, so op size IS interpreter memory traffic);
//   - a static value-range analysis marks every op whose result provably
//     fits its destination format — including all of a sound compiler
//     emission — so its row loop skips masking entirely (the width ≥ 63
//     case falls out of the same flag);
//   - a Copy immediately followed by in-place Add/Sub instructions on the
//     copied column fuses into one row pass;
//   - the columns that must read as zero at entry (read before written)
//     are recorded, so machine reuse clears only those instead of the
//     whole arena.
//
// An ExecPlan is immutable and safe to share: the functional simulator
// builds one per TileProgram (memoized, and shared further through the
// compiled-artifact cache) and replays it from many goroutines at once
// through per-worker Machines. Machine execution is bit-identical to
// WordMachine.Run — TestMachineMatchesWordRandomPrograms proves it over
// randomized programs.
type ExecPlan struct {
	cols []Col
	ops  []planOp
	// Side tables for the rare variable-length op variants.
	multi  [][]copyDst
	chains [][]chainLink
	// zero lists the columns that must read as zero at entry: every
	// column some op reads before any op writes it. Reset clears exactly
	// these on arena reuse — programs fully write everything else before
	// looking at it, so stale rows from a previous plan are unobservable.
	zero []int32
}

// planKind discriminates the resolved operation variants of a planOp.
type planKind uint8

const (
	planClear     planKind = iota
	planCopy               // single-destination copy
	planCopyMulti          // multi-destination copy (per-destination wrap)
	planAdd
	planSub
	planNeg
	planFused // copy + in-place add/sub chain, one row pass
)

// copyDst is one destination of a multi-destination copy with its own
// signedness: the hardware writes the same Width bits into every
// destination column, and each column's metadata decides how those bits
// read back as an integer.
type copyDst struct {
	col      int32
	unsigned bool
}

// chainLink is one fused in-place accumulation step: acc = wrap(acc + sgn·vals[a][r]).
type chainLink struct {
	a   int32
	sgn int64 // +1 for add, -1 for sub
}

// planOp flags.
const (
	flagWide     = 1 << iota // wrapping is provably the identity
	flagUnsigned             // destination signedness (copy wrap only)
)

// planOp is one resolved operation, deliberately compact: large networks
// stream millions of ops per inference, so the op array's footprint is
// the interpreter's front-end memory traffic. Wrap masks derive from
// width with two shifts at dispatch; the rare multi-destination and
// fused variants park their variable-length tails in the plan's side
// tables, indexed by ext.
type planOp struct {
	kind  planKind
	flags uint8
	width uint8
	dst   int32
	a     int32
	b     int32
	ext   int32 // side-table index (planCopyMulti, planFused)
}

func (op *planOp) wide() bool     { return op.flags&flagWide != 0 }
func (op *planOp) unsigned() bool { return op.flags&flagUnsigned != 0 }

// NewExecPlan validates p and lowers it into a dense op list, then runs
// the range analysis and zero-set computation described on ExecPlan. The
// returned plan references p's column table but never mutates it.
func NewExecPlan(p *Program) (*ExecPlan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Cols) > 1<<31-1 {
		return nil, fmt.Errorf("ap: exec plan: %d columns overflow the op encoding", len(p.Cols))
	}
	plan := &ExecPlan{cols: p.Cols, ops: make([]planOp, 0, len(p.Instrs))}
	instrs := p.Instrs
	for i := 0; i < len(instrs); i++ {
		ins := instrs[i]
		w := ins.Width
		if w > 64 {
			w = 64 // wrap is the identity from 63 up; clamp into uint8 range
		}
		op := planOp{dst: int32(ins.Dst), a: int32(ins.A), b: int32(ins.B), width: uint8(w)}
		if ins.Width >= 63 {
			op.flags |= flagWide
		}
		switch ins.Op {
		case OpClear:
			op.kind = planClear
		case OpCopy:
			if p.Cols[ins.Dst].Unsigned {
				op.flags |= flagUnsigned
			}
			if len(ins.Dsts) > 0 {
				op.kind = planCopyMulti
				dsts := []copyDst{{int32(ins.Dst), p.Cols[ins.Dst].Unsigned}}
				for _, d := range ins.Dsts {
					dsts = append(dsts, copyDst{int32(d), p.Cols[d].Unsigned})
				}
				op.ext = int32(len(plan.multi))
				plan.multi = append(plan.multi, dsts)
				plan.ops = append(plan.ops, op)
				continue
			}
			// Fuse the in-place accumulation chain that follows a plain
			// copy onto the same column. Validation guarantees every chain
			// instruction has the destination's width and never reads it
			// as A, so one pass per row reproduces the sequential wraps
			// exactly.
			var chain []chainLink
			for j := i + 1; j < len(instrs); j++ {
				nxt := instrs[j]
				if !nxt.InPlace || nxt.Dst != ins.Dst || (nxt.Op != OpAdd && nxt.Op != OpSub) {
					break
				}
				sgn := int64(1)
				if nxt.Op == OpSub {
					sgn = -1
				}
				chain = append(chain, chainLink{a: int32(nxt.A), sgn: sgn})
				i = j
			}
			if len(chain) > 0 {
				op.kind = planFused
				op.ext = int32(len(plan.chains))
				plan.chains = append(plan.chains, chain)
			} else {
				op.kind = planCopy
			}
		case OpAdd:
			op.kind = planAdd
		case OpSub:
			op.kind = planSub
		case OpNeg:
			op.kind = planNeg
		default:
			return nil, fmt.Errorf("ap: exec plan: %w", errUnknownOpcode(ins.Op))
		}
		plan.ops = append(plan.ops, op)
	}
	plan.analyzeRanges()
	plan.findZeroCols()
	return plan, nil
}

// Columns returns the number of columns the plan's programs operate on.
func (p *ExecPlan) Columns() int { return len(p.cols) }

// Ops returns the resolved operation count (fusion can make it smaller
// than the source program's instruction count).
func (p *ExecPlan) Ops() int { return len(p.ops) }

// rangeSat bounds the interval analysis so interval arithmetic can never
// overflow int64 (sums of two in-bound endpoints stay below 2^62).
const rangeSat = int64(1) << 61

func addSat(a, b int64) int64 {
	s := a + b
	if s > rangeSat {
		return rangeSat
	}
	if s < -rangeSat {
		return -rangeSat
	}
	return s
}

// formatRange is the value interval a column's stored format can hold.
// Columns of width ≥ 63 never wrap (wrap() is the identity there —
// including nominally unsigned ones, which can therefore hold negative
// values), so their interval is the saturated "unknown" band; a 62-bit
// unsigned column's upper bound exceeds the saturation band and clamps
// to it, which fitsFormat treats as unprovable.
func formatRange(w int, unsigned bool) (int64, int64) {
	if w >= 63 {
		return -rangeSat, rangeSat
	}
	if unsigned {
		if hi := int64(1)<<uint(w) - 1; hi < rangeSat {
			return 0, hi
		}
		return 0, rangeSat
	}
	half := int64(1) << uint(w-1)
	return -half, half - 1
}

// fitsFormat reports whether the interval [l, h] provably stays inside a
// w-bit column of the given signedness without wrapping. The threshold
// mirrors wrap() exactly: only widths ≥ 63 are unconditionally safe.
// Saturated endpoints mean the true interval may extend beyond the
// analysis band, so they prove nothing.
func fitsFormat(l, h int64, w int, unsigned bool) bool {
	if w >= 63 {
		return true
	}
	if l <= -rangeSat || h >= rangeSat {
		return false
	}
	fl, fh := formatRange(w, unsigned)
	return l >= fl && h <= fh
}

// analyzeRanges propagates value intervals through the op list and marks
// every op whose result provably fits its destination format as wide
// (wrap is the identity there). Soundness rests on the entry state:
// loads wrap to each column's format before Run, and unwritten columns
// are zero, so every column starts inside its format range. An op that
// may wrap resets its destination to the full format interval, exactly
// matching the truncating execution path.
func (plan *ExecPlan) analyzeRanges() {
	n := len(plan.cols)
	lo := make([]int64, n)
	hi := make([]int64, n)
	for c, col := range plan.cols {
		lo[c], hi[c] = formatRange(col.Width, col.Unsigned)
	}
	for i := range plan.ops {
		op := &plan.ops[i]
		w := int(op.width)
		switch op.kind {
		case planClear:
			lo[op.dst], hi[op.dst] = 0, 0
		case planCopy:
			if op.wide() || fitsFormat(lo[op.a], hi[op.a], w, op.unsigned()) {
				op.flags |= flagWide
				lo[op.dst], hi[op.dst] = lo[op.a], hi[op.a]
			} else {
				lo[op.dst], hi[op.dst] = formatRange(w, op.unsigned())
			}
		case planCopyMulti:
			for _, cd := range plan.multi[op.ext] {
				if op.wide() || fitsFormat(lo[op.a], hi[op.a], w, cd.unsigned) {
					lo[cd.col], hi[cd.col] = lo[op.a], hi[op.a]
				} else {
					lo[cd.col], hi[cd.col] = formatRange(w, cd.unsigned)
				}
			}
		case planAdd, planSub, planNeg:
			var l, h int64
			switch op.kind {
			case planAdd:
				l, h = addSat(lo[op.b], lo[op.a]), addSat(hi[op.b], hi[op.a])
			case planSub:
				l, h = addSat(lo[op.b], -hi[op.a]), addSat(hi[op.b], -lo[op.a])
			default:
				l, h = -hi[op.a], -lo[op.a]
			}
			if op.wide() || fitsFormat(l, h, w, false) {
				op.flags |= flagWide
				lo[op.dst], hi[op.dst] = l, h
			} else {
				lo[op.dst], hi[op.dst] = formatRange(w, false)
			}
		case planFused:
			l, h := lo[op.a], hi[op.a]
			ok := op.wide() || fitsFormat(l, h, w, op.unsigned())
			if !ok {
				l, h = formatRange(w, op.unsigned())
			}
			for _, ln := range plan.chains[op.ext] {
				if ln.sgn > 0 {
					l, h = addSat(l, lo[ln.a]), addSat(h, hi[ln.a])
				} else {
					l, h = addSat(l, -hi[ln.a]), addSat(h, -lo[ln.a])
				}
				if !op.wide() && !fitsFormat(l, h, w, false) {
					ok = false
					l, h = formatRange(w, false)
				}
			}
			if ok {
				op.flags |= flagWide
			}
			lo[op.dst], hi[op.dst] = l, h
		}
	}
}

// findZeroCols records every column read before it is written (in op
// order); loads may overwrite them afterwards, but an unloaded slot — a
// strip tail's unused plane, say — must read as zero.
func (plan *ExecPlan) findZeroCols() {
	written := make([]bool, len(plan.cols))
	queued := make([]bool, len(plan.cols))
	read := func(c int32) {
		if !written[c] && !queued[c] {
			queued[c] = true
			plan.zero = append(plan.zero, c)
		}
	}
	for i := range plan.ops {
		op := &plan.ops[i]
		switch op.kind {
		case planClear:
			written[op.dst] = true
		case planCopy:
			read(op.a)
			written[op.dst] = true
		case planCopyMulti:
			read(op.a)
			for _, cd := range plan.multi[op.ext] {
				written[cd.col] = true
			}
		case planAdd, planSub:
			read(op.a)
			read(op.b)
			written[op.dst] = true
		case planNeg:
			read(op.a)
			written[op.dst] = true
		case planFused:
			read(op.a)
			for _, ln := range plan.chains[op.ext] {
				read(ln.a)
			}
			written[op.dst] = true
		}
	}
}

// maskSign derives the wrap constants of a non-wide op.
func (op *planOp) maskSign() (mask, sign int64) {
	return int64(1)<<op.width - 1, int64(1) << (op.width - 1)
}

// Machine executes an ExecPlan over reusable column storage. Unlike
// WordMachine it allocates nothing per execution: Reset rebinds the same
// flat arena to a (plan, rows) pair, growing the backing slices only when
// a larger shape arrives, so a worker that replays many programs reaches
// an allocation-free steady state. A Machine is not safe for concurrent
// use; share plans, not machines.
type Machine struct {
	plan  *ExecPlan
	rows  int
	flat  []int64
	vals  [][]int64
	links [][]int64 // scratch: fused-chain operand slices
	sgns  []int64   // scratch: fused-chain signs
}

// Reset binds m to plan with the given active row count. Only the
// columns the plan reads before writing are zeroed on arena reuse (the
// rest are fully written before any op looks at them), so a reused
// machine behaves exactly like a freshly allocated WordMachine for every
// observable column; columns the plan neither writes nor zeroes are
// undefined after reuse.
func (m *Machine) Reset(plan *ExecPlan, rows int) {
	if rows <= 0 {
		panic(fmt.Sprintf("ap: machine reset with %d rows", rows))
	}
	nc := len(plan.cols)
	need := nc * rows
	fresh := cap(m.flat) < need
	if fresh {
		m.flat = make([]int64, need)
	} else {
		m.flat = m.flat[:need]
	}
	if cap(m.vals) < nc {
		m.vals = make([][]int64, nc)
	} else {
		m.vals = m.vals[:nc]
	}
	for c := 0; c < nc; c++ {
		m.vals[c] = m.flat[c*rows : (c+1)*rows : (c+1)*rows]
	}
	if !fresh {
		for _, c := range plan.zero {
			clear(m.vals[c])
		}
	}
	m.plan, m.rows = plan, rows
}

// Rows returns the active row count.
func (m *Machine) Rows() int { return m.rows }

// SetColumnInt32 stores vals into rows [row0, row0+len(vals)) of col,
// wrapped to the column's stored format — the in-place counterpart of
// WordMachine.SetColumn for batched loads that address one row segment
// per batch item.
//
//rtmap:noalloc
func (m *Machine) SetColumnInt32(col, row0 int, vals []int32) {
	if row0 < 0 || row0+len(vals) > m.rows {
		panic(fmt.Sprintf("ap: SetColumnInt32 rows [%d,%d) outside machine rows %d",
			row0, row0+len(vals), m.rows))
	}
	meta := m.plan.cols[col]
	dst := m.vals[col][row0 : row0+len(vals)]
	if meta.Width >= 63 {
		for i, v := range vals {
			dst[i] = int64(v)
		}
		return
	}
	mask := int64(1)<<uint(meta.Width) - 1
	if meta.Unsigned {
		for i, v := range vals {
			dst[i] = int64(v) & mask
		}
		return
	}
	sign := int64(1) << uint(meta.Width-1)
	for i, v := range vals {
		w := int64(v) & mask
		dst[i] = w - (w&sign)<<1
	}
}

// AccumulateColumn adds rows [row0, row0+len(dst)) of col into dst
// without allocating — the inter-strip reduction of the functional
// simulator, which previously copied every column before accumulating.
//
//rtmap:noalloc
func (m *Machine) AccumulateColumn(col, row0 int, dst []int32) {
	if row0 < 0 || row0+len(dst) > m.rows {
		panic(fmt.Sprintf("ap: AccumulateColumn rows [%d,%d) outside machine rows %d",
			row0, row0+len(dst), m.rows))
	}
	src := m.vals[col][row0 : row0+len(dst)]
	for i, v := range src {
		dst[i] += int32(v)
	}
}

// Column returns a copy of a column's values (tests and debugging; the
// hot path uses AccumulateColumn).
func (m *Machine) Column(col int) []int64 {
	out := make([]int64, m.rows)
	copy(out, m.vals[col])
	return out
}

// Run executes the plan over all active rows. It cannot fail and does not
// allocate: every structural error was rejected when the plan was built.
//
//rtmap:noalloc
func (m *Machine) Run() {
	vals := m.vals
	for i := range m.plan.ops {
		op := &m.plan.ops[i]
		switch op.kind {
		case planAdd:
			d := vals[op.dst]
			a, b := vals[op.a][:len(d)], vals[op.b][:len(d)]
			if op.wide() {
				for r := range d {
					d[r] = b[r] + a[r]
				}
			} else {
				mask, sign := op.maskSign()
				for r := range d {
					v := (b[r] + a[r]) & mask
					d[r] = v - (v&sign)<<1
				}
			}
		case planSub:
			d := vals[op.dst]
			a, b := vals[op.a][:len(d)], vals[op.b][:len(d)]
			if op.wide() {
				for r := range d {
					d[r] = b[r] - a[r]
				}
			} else {
				mask, sign := op.maskSign()
				for r := range d {
					v := (b[r] - a[r]) & mask
					d[r] = v - (v&sign)<<1
				}
			}
		case planCopy:
			m.runCopy(op, op.dst, op.unsigned())
		case planCopyMulti:
			for _, cd := range m.plan.multi[op.ext] {
				m.runCopy(op, cd.col, cd.unsigned)
			}
		case planNeg:
			d := vals[op.dst]
			a := vals[op.a][:len(d)]
			if op.wide() {
				for r := range d {
					d[r] = -a[r]
				}
			} else {
				mask, sign := op.maskSign()
				for r := range d {
					v := (-a[r]) & mask
					d[r] = v - (v&sign)<<1
				}
			}
		case planClear:
			clear(vals[op.dst])
		case planFused:
			m.runFused(op)
		}
	}
}

// runCopy writes wrap(a, width, unsigned) into one destination column.
// The wrap is branchless: v − ((v & sign) << 1) subtracts 2·sign exactly
// when the sign bit of the masked value is set.
//
//rtmap:noalloc
func (m *Machine) runCopy(op *planOp, dst int32, unsigned bool) {
	d := m.vals[dst]
	a := m.vals[op.a][:len(d)]
	switch {
	case op.wide():
		copy(d, a)
	case unsigned:
		mask, _ := op.maskSign()
		for r := range d {
			d[r] = a[r] & mask
		}
	default:
		mask, sign := op.maskSign()
		for r := range d {
			v := a[r] & mask
			d[r] = v - (v&sign)<<1
		}
	}
}

// runFused executes a copy plus its in-place accumulation chain in one
// row pass, reproducing the per-instruction wraps of the sequential
// semantics step by step (an unsigned destination zeroes the copy's
// sign-extension mask instead of branching per row).
//
//rtmap:noalloc
func (m *Machine) runFused(op *planOp) {
	chain := m.plan.chains[op.ext]
	links := m.links[:0]
	sgns := m.sgns[:0]
	for _, l := range chain {
		links = append(links, m.vals[l.a]) //rtmap:alloc-ok — scratch reuses capacity at steady state
		sgns = append(sgns, l.sgn)         //rtmap:alloc-ok — scratch reuses capacity at steady state
	}
	m.links, m.sgns = links, sgns

	d := m.vals[op.dst]
	a := m.vals[op.a][:len(d)]
	if op.wide() {
		for r := range d {
			acc := a[r]
			for k, col := range links {
				acc += sgns[k] * col[r]
			}
			d[r] = acc
		}
		return
	}
	mask, sign := op.maskSign()
	copySign := sign
	if op.unsigned() {
		copySign = 0
	}
	for r := range d {
		acc := a[r] & mask
		acc -= (acc & copySign) << 1
		for k, col := range links {
			acc = (acc + sgns[k]*col[r]) & mask
			acc -= (acc & sign) << 1
		}
		d[r] = acc
	}
}
