package ap

import "fmt"

// Opcode enumerates AP macro-instructions. Arithmetic opcodes expand into
// Width bit-serial LUT steps; Clear expands into Width write-all passes.
type Opcode uint8

const (
	// OpAdd computes Dst = B + A (out-of-place) or B += A when InPlace.
	OpAdd Opcode = iota
	// OpSub computes Dst = B − A (out-of-place) or B −= A when InPlace.
	OpSub
	// OpNeg computes Dst = −A (negated copy into a fresh column).
	OpNeg
	// OpCopy copies A into Dst and every column in Dsts simultaneously
	// (multi-destination write), so later consumers can run in place.
	OpCopy
	// OpClear zeroes Dst across all active rows.
	OpClear
)

var opcodeNames = [...]string{"add", "sub", "neg", "copy", "clear"}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// errUnknownOpcode is the one "unknown opcode" failure every consumer of
// an Opcode reports — validation, bit-serial execution and plan lowering
// wrap this same error so callers and logs see identical text.
func errUnknownOpcode(o Opcode) error {
	return fmt.Errorf("unknown opcode %v", o)
}

// Col describes one operand column of a program: where its LSB lives on
// the nanowire (Base domain), how many bits it stores, and whether values
// are unsigned (bits beyond Width read as 0) or signed (bit Width−1 is
// replicated by holding the DBC at the MSB domain).
type Col struct {
	Name     string
	Base     int
	Width    int
	Unsigned bool
}

// Instr is one AP macro-instruction.
type Instr struct {
	Op      Opcode
	Dst     int   // destination column id
	Dsts    []int // extra destinations (OpCopy only)
	A       int   // right operand (OpAdd/OpSub/OpNeg/OpCopy)
	B       int   // left operand (OpAdd/OpSub); equals Dst when InPlace
	InPlace bool
	Width   int // bit positions processed (destination width)
}

func (i Instr) String() string {
	switch i.Op {
	case OpAdd, OpSub:
		mode := "out"
		if i.InPlace {
			mode = "in"
		}
		sign := "+"
		if i.Op == OpSub {
			sign = "-"
		}
		return fmt.Sprintf("%s.%s c%d = c%d %s c%d (w%d)", i.Op, mode, i.Dst, i.B, sign, i.A, i.Width)
	case OpNeg:
		return fmt.Sprintf("neg c%d = -c%d (w%d)", i.Dst, i.A, i.Width)
	case OpCopy:
		return fmt.Sprintf("copy c%d%v = c%d (w%d)", i.Dst, i.Dsts, i.A, i.Width)
	case OpClear:
		return fmt.Sprintf("clear c%d (w%d)", i.Dst, i.Width)
	}
	return fmt.Sprintf("%v dst=c%d a=c%d b=c%d w=%d", i.Op, i.Dst, i.A, i.B, i.Width)
}

// Program is a straight-line AP instruction sequence over a column table.
// Column ids index Cols; Carry names the dedicated carry/borrow column
// (single domain, shared by all arithmetic instructions).
type Program struct {
	Cols   []Col
	Carry  int
	Instrs []Instr
}

// Validate checks structural well-formedness of the program.
func (p *Program) Validate() error {
	colOK := func(c int) bool { return c >= 0 && c < len(p.Cols) }
	if !colOK(p.Carry) {
		return fmt.Errorf("ap: carry column %d out of range", p.Carry)
	}
	for i, ins := range p.Instrs {
		if ins.Width < 1 {
			return fmt.Errorf("ap: instr %d (%v): width %d", i, ins, ins.Width)
		}
		// Every write covers its destination column exactly: values are
		// stored sign-extended to their column width, so partial writes
		// would leave stale upper bits in the nanowire.
		if colOK(ins.Dst) && p.Cols[ins.Dst].Width != ins.Width {
			return fmt.Errorf("ap: instr %d (%v): width %d != dst column width %d",
				i, ins, ins.Width, p.Cols[ins.Dst].Width)
		}
		for _, d := range ins.Dsts {
			if colOK(d) && p.Cols[d].Width != ins.Width {
				return fmt.Errorf("ap: instr %d (%v): width %d != dest column width %d",
					i, ins, ins.Width, p.Cols[d].Width)
			}
		}
		switch ins.Op {
		case OpAdd, OpSub:
			if !colOK(ins.Dst) || !colOK(ins.A) || !colOK(ins.B) {
				return fmt.Errorf("ap: instr %d (%v): column out of range", i, ins)
			}
			if ins.InPlace && ins.Dst != ins.B {
				return fmt.Errorf("ap: instr %d (%v): in-place dst must be B", i, ins)
			}
			if ins.InPlace && ins.A == ins.B {
				// Reading and rewriting one column within a pass breaks
				// the LUT post-state analysis; double a value by copying
				// first instead.
				return fmt.Errorf("ap: instr %d (%v): in-place op cannot read its own destination", i, ins)
			}
			if !ins.InPlace && (ins.Dst == ins.A || ins.Dst == ins.B) {
				return fmt.Errorf("ap: instr %d (%v): out-of-place dst aliases operand", i, ins)
			}
			if ins.Dst == p.Carry || ins.A == p.Carry || ins.B == p.Carry {
				return fmt.Errorf("ap: instr %d (%v): carry column used as operand", i, ins)
			}
		case OpNeg:
			if !colOK(ins.Dst) || !colOK(ins.A) || ins.Dst == ins.A {
				return fmt.Errorf("ap: instr %d (%v): bad neg operands", i, ins)
			}
		case OpCopy:
			if !colOK(ins.Dst) || !colOK(ins.A) || ins.Dst == ins.A {
				return fmt.Errorf("ap: instr %d (%v): bad copy operands", i, ins)
			}
			for _, d := range ins.Dsts {
				if !colOK(d) || d == ins.A {
					return fmt.Errorf("ap: instr %d (%v): bad extra dest %d", i, ins, d)
				}
			}
		case OpClear:
			if !colOK(ins.Dst) {
				return fmt.Errorf("ap: instr %d (%v): bad clear dest", i, ins)
			}
		default:
			return fmt.Errorf("ap: instr %d: %w", i, errUnknownOpcode(ins.Op))
		}
	}
	return nil
}

// CostSummary aggregates the pass/cycle cost of a program under the
// paper's accounting: arithmetic ops cost Width LUT steps (8 cycles
// in-place, 10 out-of-place) plus clears of fresh destinations and the
// initial carry clear; copies cost one search+write pass per bit.
type CostSummary struct {
	Instrs       int
	AddSub       int // arithmetic instruction count (the Table II metric)
	SearchPasses int
	WritePasses  int
	Cycles       int
}

// Cost computes the static cost summary of the program.
func (p *Program) Cost() CostSummary {
	var c CostSummary
	for _, ins := range p.Instrs {
		c.Instrs++
		w := ins.Width
		switch ins.Op {
		case OpAdd, OpSub:
			c.AddSub++
			passes := len(AddOut.Passes)
			if ins.InPlace {
				passes = len(AddIn.Passes)
			}
			c.SearchPasses += w * passes
			c.WritePasses += w * passes
			// carry clear
			c.WritePasses++
			if !ins.InPlace {
				c.WritePasses += w // fresh destination clear
			}
		case OpNeg:
			c.SearchPasses += w * len(NegOut.Passes)
			c.WritePasses += w*len(NegOut.Passes) + w + 1
		case OpCopy:
			c.SearchPasses += w
			c.WritePasses += w + w // copy writes + fresh dest clears
		case OpClear:
			c.WritePasses += w
		}
	}
	c.Cycles = c.SearchPasses + c.WritePasses
	return c
}
