package ap

import "fmt"

// WordMachine executes AP programs at word granularity: every column holds
// one integer per row and each macro-instruction becomes a vector
// operation. It defines the reference semantics of the ISA — the bit-level
// executor (Exec) must agree with it exactly, which TestExecMatchesWord
// checks over randomized programs — and is what the large-scale functional
// simulator runs, since simulating ResNet-18 pass-by-pass would be
// needlessly slow without changing any result.
type WordMachine struct {
	prog *Program
	rows int
	vals [][]int64 // [column][row]
}

// NewWordMachine allocates a machine for p with the given active rows.
func NewWordMachine(p *Program, rows int) (*WordMachine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 {
		return nil, fmt.Errorf("ap: word machine needs positive rows, got %d", rows)
	}
	m := &WordMachine{prog: p, rows: rows, vals: make([][]int64, len(p.Cols))}
	for c := range m.vals {
		m.vals[c] = make([]int64, rows)
	}
	return m, nil
}

// Rows returns the active row count.
func (m *WordMachine) Rows() int { return m.rows }

// SetColumn initializes a column with values (wrapped to the column's
// stored width, mirroring what LoadWord would put in the nanowires).
func (m *WordMachine) SetColumn(col int, vals []int64) {
	if len(vals) != m.rows {
		panic(fmt.Sprintf("ap: SetColumn got %d values for %d rows", len(vals), m.rows))
	}
	meta := m.prog.Cols[col]
	for r, v := range vals {
		m.vals[col][r] = wrap(v, meta.Width, meta.Unsigned)
	}
}

// Column returns a copy of a column's values.
func (m *WordMachine) Column(col int) []int64 {
	out := make([]int64, m.rows)
	copy(out, m.vals[col])
	return out
}

// Run executes the whole program.
func (m *WordMachine) Run() error {
	for idx, ins := range m.prog.Instrs {
		if err := m.step(ins); err != nil {
			return fmt.Errorf("ap: instr %d (%v): %w", idx, ins, err)
		}
	}
	return nil
}

func (m *WordMachine) step(ins Instr) error {
	w := ins.Width
	switch ins.Op {
	case OpClear:
		for r := 0; r < m.rows; r++ {
			m.vals[ins.Dst][r] = 0
		}
	case OpCopy:
		// The hardware writes the same Width bits into every destination;
		// each destination column's own signedness decides how those bits
		// read back, so the wrap is per destination, not the primary
		// Dst's (mixed-signedness multi-destination copies diverge
		// otherwise — TestExecMatchesWordMixedSignCopy).
		dm := m.prog.Cols[ins.Dst]
		for r := 0; r < m.rows; r++ {
			m.vals[ins.Dst][r] = wrap(m.vals[ins.A][r], w, dm.Unsigned)
		}
		for _, d := range ins.Dsts {
			em := m.prog.Cols[d]
			for r := 0; r < m.rows; r++ {
				m.vals[d][r] = wrap(m.vals[ins.A][r], w, em.Unsigned)
			}
		}
	case OpAdd:
		for r := 0; r < m.rows; r++ {
			m.vals[ins.Dst][r] = wrap(m.vals[ins.B][r]+m.vals[ins.A][r], w, false)
		}
	case OpSub:
		for r := 0; r < m.rows; r++ {
			m.vals[ins.Dst][r] = wrap(m.vals[ins.B][r]-m.vals[ins.A][r], w, false)
		}
	case OpNeg:
		for r := 0; r < m.rows; r++ {
			m.vals[ins.Dst][r] = wrap(-m.vals[ins.A][r], w, false)
		}
	default:
		return fmt.Errorf("unknown opcode %v", ins.Op)
	}
	return nil
}

// wrap truncates v to an n-bit value: two's complement for signed columns,
// modulo 2^n for unsigned ones. Programs produced by the compiler never
// actually wrap (bitwidth annotation is sound — tested); wrapping here
// mirrors the physical truncation of the nanowire so that any annotation
// bug shows up as a word/bit-level divergence instead of silent +∞ growth.
func wrap(v int64, n int, unsigned bool) int64 {
	if n >= 63 {
		return v
	}
	mask := int64(1)<<uint(n) - 1
	v &= mask
	if !unsigned && v&(1<<uint(n-1)) != 0 {
		v -= 1 << uint(n)
	}
	return v
}
