package ap

import (
	"fmt"
	"strings"
)

// Pass is one (search, write) pair of a LUT: rows matching Key on the
// operation's search columns receive Out on its write columns.
type Pass struct {
	Key []uint8
	Out []uint8
}

// LUT is an ordered pass table implementing one 1-bit step of an AP
// operation.
type LUT struct {
	Name string
	// NIn is the number of search roles (columns in the key).
	NIn int
	// NOut is the number of write roles.
	NOut int
	// Persistent maps each write role to the search role stored in the
	// same physical column, or -1 when the role is written into a fresh
	// (pre-zeroed) column.
	Persistent []int
	Passes     []Pass
}

// Cycles returns the number of search/write cycles of one 1-bit step
// (two per pass, matching the paper's 8 for in-place and 10 for
// out-of-place operations).
func (l *LUT) Cycles() int { return 2 * len(l.Passes) }

// String renders the pass table for debugging and documentation.
func (l *LUT) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d passes, %d cycles)\n", l.Name, len(l.Passes), l.Cycles())
	for i, p := range l.Passes {
		fmt.Fprintf(&b, "  %d: search %v -> write %v\n", i+1, p.Key, p.Out)
	}
	return b.String()
}

// Generate derives an ordered LUT from a truth table.
//
// nIn is the search-key width; f maps each input combination to the output
// values; persistent declares, per output role, the search role aliased by
// the same column (or -1 for fresh pre-zeroed columns). A pass is needed
// whenever some output differs from the column's pre-state (the aliased
// input bit, or 0 for fresh columns). Ordering: if applying pass Q leaves
// its rows in a state that matches pass P's key, P must run before Q;
// Generate topologically sorts under these constraints (preferring
// truth-table enumeration order) and panics if they are cyclic, which
// would mean the operation cannot be implemented with single-visit passes.
func Generate(name string, nIn int, persistent []int, f func(in []uint8) []uint8) *LUT {
	if nIn < 1 || nIn > 8 {
		panic(fmt.Sprintf("ap: LUT input width %d unsupported", nIn))
	}
	type cand struct {
		pass Pass
		idx  int
	}
	var cands []cand
	for v := 0; v < 1<<uint(nIn); v++ {
		in := make([]uint8, nIn)
		for i := range in {
			in[i] = uint8(v>>uint(nIn-1-i)) & 1 // role 0 is the MSB of v for readability
		}
		out := f(in)
		if len(out) != len(persistent) {
			panic(fmt.Sprintf("ap: %s: f returned %d outputs, want %d", name, len(out), len(persistent)))
		}
		needed := false
		for j, o := range out {
			pre := uint8(0)
			if persistent[j] >= 0 {
				pre = in[persistent[j]]
			}
			if o&1 != pre {
				needed = true
				break
			}
		}
		if needed {
			key := make([]uint8, nIn)
			copy(key, in)
			ov := make([]uint8, len(out))
			for j, o := range out {
				ov[j] = o & 1
			}
			cands = append(cands, cand{Pass{Key: key, Out: ov}, v})
		}
	}

	// Post-state of a pass over the search roles.
	post := func(p Pass) []uint8 {
		s := make([]uint8, nIn)
		copy(s, p.Key)
		for j, role := range persistent {
			if role >= 0 {
				s[role] = p.Out[j]
			}
		}
		return s
	}
	eq := func(a, b []uint8) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	// before[q] lists candidate indices that must precede q.
	n := len(cands)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for q := 0; q < n; q++ {
		// A pass whose persistent outputs equal its key leaves rows in
		// their matched state; that is harmless (each pass runs once) and
		// common when only a fresh column is written.
		ps := post(cands[q].pass)
		for p := 0; p < n; p++ {
			if p == q {
				continue
			}
			if eq(ps, cands[p].pass.Key) {
				// p must run before q.
				succ[p] = append(succ[p], q)
				indeg[q]++
			}
		}
	}
	order := make([]int, 0, n)
	for len(order) < n {
		pick := -1
		for i := 0; i < n; i++ {
			used := false
			for _, o := range order {
				if o == i {
					used = true
					break
				}
			}
			if used || indeg[i] != 0 {
				continue
			}
			if pick == -1 || cands[i].idx < cands[pick].idx {
				pick = i
			}
		}
		if pick == -1 {
			panic(fmt.Sprintf("ap: %s: cyclic pass ordering constraints", name))
		}
		order = append(order, pick)
		for _, s := range succ[pick] {
			indeg[s]--
		}
	}

	lut := &LUT{Name: name, NIn: nIn, NOut: len(persistent), Persistent: persistent}
	for _, i := range order {
		lut.Passes = append(lut.Passes, cands[i].pass)
	}
	return lut
}

// Truth functions. Role order follows Table I: (carry/borrow, B, A).

func addTruth(in []uint8) []uint8 { // in = (Cr, B, A) possibly shorter
	var s uint8
	for _, b := range in {
		s += b
	}
	return []uint8{s >> 1, s & 1} // (carry', sum)
}

func subTruth(in []uint8) []uint8 { // in = (Br, B, A): B - A - Br
	br, b, a := in[0], in[1], in[2]
	d := int(b) - int(a) - int(br)
	r := uint8(d & 1)
	var bo uint8
	if d < 0 {
		bo = 1
	}
	return []uint8{bo, r}
}

func subNoATruth(in []uint8) []uint8 { // (Br, B): B - Br
	br, b := in[0], in[1]
	d := int(b) - int(br)
	r := uint8(d & 1)
	var bo uint8
	if d < 0 {
		bo = 1
	}
	return []uint8{bo, r}
}

func negTruth(in []uint8) []uint8 { // (Br, A): 0 - A - Br
	br, a := in[0], in[1]
	d := -int(a) - int(br)
	r := uint8(d & 1)
	var bo uint8
	if d < 0 {
		bo = 1
	}
	return []uint8{bo, r}
}

// Standard LUT set (generated once at init). Names and pass counts match
// Table I of the paper: in-place ops need 4 passes (8 cycles), out-of-place
// 5 passes (10 cycles).
var (
	// AddIn: B ← B + A. Search roles (Cr, B, A); writes (Cr, B).
	AddIn = Generate("add.inplace", 3, []int{0, 1}, addTruth)
	// AddOut: R ← B + A into a fresh column. Writes (Cr, R).
	AddOut = Generate("add.outofplace", 3, []int{0, -1}, addTruth)
	// AddInNoA: carry ripple when operand A is exhausted (B ← B + Cr).
	AddInNoA = Generate("add.inplace.carry", 2, []int{0, 1}, addTruth)
	// AddOutNoA: R ← B + Cr when operand A is exhausted.
	AddOutNoA = Generate("add.outofplace.carry", 2, []int{0, -1}, addTruth)

	// SubIn: B ← B − A. Search roles (Br, B, A); writes (Br, B).
	SubIn = Generate("sub.inplace", 3, []int{0, 1}, subTruth)
	// SubOut: R ← B − A into a fresh column. Writes (Br, R).
	SubOut = Generate("sub.outofplace", 3, []int{0, -1}, subTruth)
	// SubInNoA: borrow ripple when A is exhausted (B ← B − Br).
	SubInNoA = Generate("sub.inplace.borrow", 2, []int{0, 1}, subNoATruth)
	// SubOutNoA: R ← B − Br when A is exhausted.
	SubOutNoA = Generate("sub.outofplace.borrow", 2, []int{0, -1}, subNoATruth)
	// NegOut: R ← 0 − A (negated copy, §IV-C "negative output").
	NegOut = Generate("neg.outofplace", 2, []int{0, -1}, negTruth)
	// AddOutCarryOnly: R ← Cr when both operands are exhausted.
	AddOutCarryOnly = Generate("add.outofplace.carryonly", 1, []int{0, -1}, addTruth)
	// SubOutBorrowOnly: R ← 0 − Br when both operands are exhausted.
	SubOutBorrowOnly = Generate("sub.outofplace.borrowonly", 1, []int{0, -1},
		func(in []uint8) []uint8 {
			d := -int(in[0])
			r := uint8(d & 1)
			var bo uint8
			if d < 0 {
				bo = 1
			}
			return []uint8{bo, r}
		})
	// CopyOut: R ← A, possibly into several destination columns at once
	// (the multi-destination write of §IV-C).
	CopyOut = Generate("copy", 1, []int{-1}, func(in []uint8) []uint8 {
		return []uint8{in[0]}
	})
)
