// Package ap implements the associative processor: the LUT-driven
// bulk-bitwise execution model of §II-B/III of the paper. Every arithmetic
// operation is decomposed into ordered (masked search, tagged write) pass
// pairs per bit position; Table I of the paper lists the pass tables for
// 1-bit in-place and out-of-place addition and subtraction.
//
// Rather than hard-coding the tables, this package *generates* them from
// boolean functions (the paper's §IV-C "LUT generation" step): given a
// truth table and a declaration of which output roles persist in searched
// columns, Generate derives the needed passes (rows whose outputs differ
// from the pre-state) and orders them so that no tagged-and-written row can
// be re-matched by a later pass. The generated tables reproduce Table I,
// including its run order, for the in-place adder and both subtractors;
// for the out-of-place adder the paper's printed table has two rows'
// comments swapped (011/110 — see TestPaperTableIAdderErratum).
//
// Three executors interpret the same programs: Exec replays the exact
// bit-serial pass structure on the CAM array model, WordMachine is the
// word-level reference semantics, and ExecPlan/Machine is the
// production engine — programs lowered once into dense ops with a
// value-range analysis that removes provably-identity wraps, replayed
// over reusable arenas. All three are proved bit-identical on
// randomized programs.
package ap
