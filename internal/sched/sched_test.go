package sched

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rtmap/internal/dfg"
	"rtmap/internal/ternary"
)

func TestLivenessChain(t *testing.T) {
	// ((x0+x1)+x2) → node ids: 0,1,2 inputs; 3=add(0,1); 4=add(3,2).
	s := ternary.Slice{Cout: 1, K: 3, M: []int8{1, 1, 1}}
	g := dfg.Build(s, dfg.Options{})
	last := Liveness(g)
	if last[3] != 4 {
		t.Errorf("intermediate last use %d, want 4", last[3])
	}
	if last[4] != len(g.Nodes) {
		t.Errorf("output last use %d, want %d (accumulation)", last[4], len(g.Nodes))
	}
}

func TestColumnPoolReuse(t *testing.T) {
	p := NewColumnPool([]int{10, 11, 12})
	a, _ := p.Get()
	b, _ := p.Get()
	if a == b {
		t.Fatal("pool returned duplicate column")
	}
	p.Put(a)
	c, _ := p.Get()
	if c != a {
		t.Errorf("expected reuse of %d, got %d", a, c)
	}
	if p.HighWater() != 2 {
		t.Errorf("high water %d, want 2", p.HighWater())
	}
}

func TestColumnPoolExhaustion(t *testing.T) {
	p := NewColumnPool([]int{1})
	if _, err := p.Get(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); err == nil {
		t.Error("expected exhaustion error")
	}
}

func TestColumnPoolDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double free must panic")
		}
	}()
	p := NewColumnPool([]int{1})
	c, _ := p.Get()
	p.Put(c)
	p.Put(c)
}

func TestColoringChainUsesOneColor(t *testing.T) {
	// A pure chain can live in one column.
	s := ternary.Slice{Cout: 1, K: 5, M: []int8{1, 1, 1, 1, 1}}
	g := dfg.Build(s, dfg.Options{})
	colors, n := ColorDFG(g)
	if n != 1 {
		t.Errorf("chain coloring used %d colors, want 1", n)
	}
	if err := VerifyColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestColoringSharedSubexpressionsNeedMore(t *testing.T) {
	// Two rows sharing a subexpression keep it live across both folds.
	rng := rand.New(rand.NewPCG(3, 4))
	w := ternary.Random(rng, 16, 1, 3, 3, 0.5)
	g := dfg.Build(w.Slice(0), dfg.Options{CSE: true})
	colors, n := ColorDFG(g)
	if n < 1 {
		t.Fatalf("no colors used")
	}
	if err := VerifyColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy interval coloring is always valid, over random slices.
func TestQuickColoringValid(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+7))
		w := ternary.Random(rng, 1+rng.IntN(20), 1, 1+rng.IntN(3), 1+rng.IntN(3), rng.Float64())
		g := dfg.Build(w.Slice(0), dfg.Options{CSE: rng.IntN(2) == 0})
		colors, _ := ColorDFG(g)
		return VerifyColoring(g, colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
