package sched

import (
	"fmt"
	"sort"

	"rtmap/internal/dfg"
)

// Liveness computes, for every node of g, the index of its last consumer
// in node order. Outputs (and negated aliases) are consumed by the
// accumulation phase after all nodes, encoded as len(Nodes).
func Liveness(g *dfg.Graph) []int {
	last := make([]int, len(g.Nodes))
	for i := range last {
		last[i] = -1
	}
	for i, nd := range g.Nodes {
		if nd.Kind == dfg.OpAdd || nd.Kind == dfg.OpSub {
			last[nd.A] = i
			last[nd.B] = i
		}
	}
	for _, ref := range g.Outputs {
		if !ref.Zero {
			last[ref.Node] = len(g.Nodes)
		}
	}
	return last
}

// ColumnPool hands out physical CAM columns and tracks the high-water
// mark, which bounds the column budget a tile needs.
type ColumnPool struct {
	free      []int
	inUse     map[int]bool
	highWater int
}

// NewColumnPool returns a pool over the given physical column ids.
func NewColumnPool(cols []int) *ColumnPool {
	p := &ColumnPool{inUse: make(map[int]bool)}
	p.free = append(p.free, cols...)
	// Deterministic allocation order: lowest id first.
	sort.Sort(sort.Reverse(sort.IntSlice(p.free)))
	return p
}

// Get allocates a column.
func (p *ColumnPool) Get() (int, error) {
	if len(p.free) == 0 {
		return 0, fmt.Errorf("sched: column pool exhausted (%d in use)", len(p.inUse))
	}
	c := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[c] = true
	if len(p.inUse) > p.highWater {
		p.highWater = len(p.inUse)
	}
	return c, nil
}

// Put releases a column back to the pool.
func (p *ColumnPool) Put(c int) {
	if !p.inUse[c] {
		panic(fmt.Sprintf("sched: releasing column %d that is not in use", c))
	}
	delete(p.inUse, c)
	p.free = append(p.free, c)
}

// InUse returns the number of currently allocated columns.
func (p *ColumnPool) InUse() int { return len(p.inUse) }

// HighWater returns the peak simultaneous allocation.
func (p *ColumnPool) HighWater() int { return p.highWater }

// ColorDFG performs greedy interference-graph coloring of the op nodes of
// g (inputs live in dedicated patch columns and are excluded): two op
// values interfere when their live ranges overlap. It returns the color of
// every op node (−1 for inputs) and the number of colors used — the
// minimum temp-column estimate the paper's register-allocation step
// produces.
func ColorDFG(g *dfg.Graph) ([]int, int) {
	last := Liveness(g)
	n := len(g.Nodes)
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	// Live range of op node i: [i, last[i]]. Greedy assignment in
	// definition order (linear-scan flavored coloring; optimal on
	// interval graphs, which these live ranges form).
	type interval struct{ def, end, node int }
	var ivs []interval
	for i, nd := range g.Nodes {
		if nd.Kind != dfg.OpAdd && nd.Kind != dfg.OpSub {
			continue
		}
		if last[i] < 0 {
			continue // dead code: no column needed
		}
		ivs = append(ivs, interval{def: i, end: last[i], node: i})
	}
	active := make(map[int]interval) // color → interval
	maxColor := 0
	for _, iv := range ivs {
		// Expire intervals that ended strictly before this def.
		for c, a := range active {
			if a.end <= iv.def {
				delete(active, c)
			}
		}
		// Lowest free color.
		color := 0
		for {
			if _, taken := active[color]; !taken {
				break
			}
			color++
		}
		active[color] = iv
		colors[iv.node] = color
		if color+1 > maxColor {
			maxColor = color + 1
		}
	}
	return colors, maxColor
}

// VerifyColoring checks that no two op nodes with overlapping live ranges
// share a color (used by property tests).
func VerifyColoring(g *dfg.Graph, colors []int) error {
	last := Liveness(g)
	for i := range g.Nodes {
		if colors[i] < 0 {
			continue
		}
		for j := i + 1; j < len(g.Nodes); j++ {
			if colors[j] < 0 || colors[i] != colors[j] {
				continue
			}
			// i defined before j: overlap iff i still live past j's def.
			if last[i] > j {
				return fmt.Errorf("sched: nodes %d and %d share color %d but overlap", i, j, colors[i])
			}
		}
	}
	return nil
}
