// Package sched provides the register-allocation layer of the compiler:
// liveness analysis over slice DFGs, a physical column pool with reuse
// (the operational allocator), and an explicit interference-graph greedy
// coloring that mirrors the paper's framing of operand-to-column
// assignment as a graph-coloring register-allocation problem (§IV-B). The
// pool's high-water mark and the coloring's chromatic estimate agree on
// chain-structured DFGs and are cross-checked in tests.
package sched
