package dfg

import "fmt"

// OpKind enumerates DFG node kinds.
type OpKind uint8

const (
	// OpInput is one element of the Fh·Fw im2col patch (a CAM column).
	OpInput OpKind = iota
	// OpAdd computes A + B.
	OpAdd
	// OpSub computes A − B.
	OpSub
)

func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Node is one DFG vertex. Lo/Hi/Bits are filled by AnnotateWidths.
type Node struct {
	Kind OpKind
	A, B int // operand node ids (unused for OpInput)

	Lo, Hi int64 // inclusive value interval
	Bits   int   // minimum two's-complement width for [Lo, Hi]
	// Unsigned marks inputs whose codes are non-negative; their stored
	// width can omit the sign bit (activation codes after ReLU).
	Unsigned bool
}

// OutRef binds one output row of the weight slice to a DFG node. Neg marks
// negated aliases (y = −node), which cost nothing: the negation folds into
// the accumulation phase by accumulating with subtraction instead of
// addition (§IV-C "negative output" LUTs). Zero marks all-zero rows.
type OutRef struct {
	Node int
	Neg  bool
	Zero bool
}

// Graph is the DFG of one weight-slice MVM: Cout linear combinations of
// the K = Fh·Fw patch inputs.
type Graph struct {
	Nodes   []Node
	Inputs  []int // node ids of the K patch inputs, in patch order
	Outputs []OutRef
}

// NumOps returns the number of add/sub nodes (the paper's "#Adds/Subs"
// metric counts these, in MVM convention: building each output expression,
// with negated aliases free).
func (g *Graph) NumOps() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == OpAdd || nd.Kind == OpSub {
			n++
		}
	}
	return n
}

// Validate checks topological ordering and operand validity.
func (g *Graph) Validate() error {
	for i, nd := range g.Nodes {
		switch nd.Kind {
		case OpInput:
		case OpAdd, OpSub:
			if nd.A < 0 || nd.A >= i || nd.B < 0 || nd.B >= i {
				return fmt.Errorf("dfg: node %d operands (%d,%d) not topologically earlier", i, nd.A, nd.B)
			}
		default:
			return fmt.Errorf("dfg: node %d has unknown kind %v", i, nd.Kind)
		}
	}
	for k, in := range g.Inputs {
		if in < 0 || in >= len(g.Nodes) || g.Nodes[in].Kind != OpInput {
			return fmt.Errorf("dfg: input %d maps to invalid node %d", k, in)
		}
	}
	for o, ref := range g.Outputs {
		if ref.Zero {
			continue
		}
		if ref.Node < 0 || ref.Node >= len(g.Nodes) {
			return fmt.Errorf("dfg: output %d references invalid node %d", o, ref.Node)
		}
	}
	return nil
}

// UseCounts returns, per node, how many times it is consumed (by other
// nodes or as an output; negated aliases count as uses).
func (g *Graph) UseCounts() []int {
	uses := make([]int, len(g.Nodes))
	for _, nd := range g.Nodes {
		if nd.Kind == OpAdd || nd.Kind == OpSub {
			uses[nd.A]++
			uses[nd.B]++
		}
	}
	for _, ref := range g.Outputs {
		if !ref.Zero {
			uses[ref.Node]++
		}
	}
	return uses
}

// Eval evaluates the graph on one input vector (length = len(Inputs)) and
// returns the output values. It is the semantic oracle used by tests and
// by the functional simulator's cross-checks.
func (g *Graph) Eval(inputs []int64) []int64 {
	if len(inputs) != len(g.Inputs) {
		panic(fmt.Sprintf("dfg: got %d inputs, want %d", len(inputs), len(g.Inputs)))
	}
	vals := make([]int64, len(g.Nodes))
	inputOf := make(map[int]int, len(g.Inputs))
	for k, id := range g.Inputs {
		inputOf[id] = k
	}
	for i, nd := range g.Nodes {
		switch nd.Kind {
		case OpInput:
			vals[i] = inputs[inputOf[i]]
		case OpAdd:
			vals[i] = vals[nd.A] + vals[nd.B]
		case OpSub:
			vals[i] = vals[nd.A] - vals[nd.B]
		}
	}
	out := make([]int64, len(g.Outputs))
	for o, ref := range g.Outputs {
		if ref.Zero {
			continue
		}
		v := vals[ref.Node]
		if ref.Neg {
			v = -v
		}
		out[o] = v
	}
	return out
}

// AnnotateWidths computes per-node value intervals and minimum signed
// bitwidths, assuming every input lies in [inLo, inHi] (for b-bit unsigned
// activation codes: [0, 2^b−1]). Interval arithmetic is exact for this
// graph family, so the widths are sound: no AP instruction emitted at its
// annotated width can overflow.
func (g *Graph) AnnotateWidths(inLo, inHi int64) {
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		switch nd.Kind {
		case OpInput:
			nd.Lo, nd.Hi = inLo, inHi
			nd.Unsigned = inLo >= 0
		case OpAdd:
			nd.Lo = g.Nodes[nd.A].Lo + g.Nodes[nd.B].Lo
			nd.Hi = g.Nodes[nd.A].Hi + g.Nodes[nd.B].Hi
		case OpSub:
			nd.Lo = g.Nodes[nd.A].Lo - g.Nodes[nd.B].Hi
			nd.Hi = g.Nodes[nd.A].Hi - g.Nodes[nd.B].Lo
		}
		nd.Bits = SignedBits(nd.Lo, nd.Hi)
	}
}

// SignedBits returns the minimum two's-complement width holding every
// value in [lo, hi].
func SignedBits(lo, hi int64) int {
	bits := 1
	for ; bits < 63; bits++ {
		min := -(int64(1) << uint(bits-1))
		max := int64(1)<<uint(bits-1) - 1
		if lo >= min && hi <= max {
			return bits
		}
	}
	return 63
}

// MaxBits returns the largest annotated node width (the partial-sum width
// of the slice).
func (g *Graph) MaxBits() int {
	m := 1
	for _, nd := range g.Nodes {
		if nd.Bits > m {
			m = nd.Bits
		}
	}
	return m
}
