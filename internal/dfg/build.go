package dfg

import (
	"fmt"
	"sort"

	"rtmap/internal/ternary"
)

// Options selects which optimizations Build applies, mirroring the two
// evaluated configurations of the paper: `unroll` (loop unrolling +
// constant weight folding + custom integer types) and `unroll+CSE` (all
// optimizations of Fig. 3a).
type Options struct {
	// CSE enables signed-pair common-subexpression elimination across the
	// weight slice, plus structural sharing of identical rows.
	CSE bool
	// MaxDefs caps the number of CSE definitions (0 = unlimited). The
	// compiler sets it from the temp-column budget: definitions stay live
	// across the whole slice evaluation, so each one occupies a CAM
	// column for the duration of the channel fragment.
	MaxDefs int
}

// term is one signed occurrence of a variable in a linear combination.
// Variables 0..K−1 are patch inputs; K.. are CSE definitions.
type term struct {
	v   int
	neg bool
}

// lincomb is a sorted sum of distinct signed variables.
type lincomb []term

func (lc lincomb) sort() { sort.Slice(lc, func(i, j int) bool { return lc[i].v < lc[j].v }) }

// pairKey canonicalizes an unordered signed pair up to global negation:
// the smaller variable comes first with a positive sign; flip reports
// whether the canonical pair is the negation of the original.
type pairKey struct {
	v1, v2 int
	s2     bool // sign of second term relative to positive first term
}

func canonPair(a, b term) (pairKey, bool) {
	if a.v > b.v {
		a, b = b, a
	}
	if !a.neg {
		return pairKey{a.v, b.v, b.neg}, false
	}
	return pairKey{a.v, b.v, !b.neg}, true
}

// Build constructs the DFG of one weight slice (the Cout × Fh·Fw ternary
// matrix convolved on a single input channel).
func Build(s ternary.Slice, opt Options) *Graph {
	if s.Cout <= 0 || s.K <= 0 {
		panic(fmt.Sprintf("dfg: empty slice %dx%d", s.Cout, s.K))
	}
	// Rows as linear combinations over input variables.
	rows := make([]lincomb, s.Cout)
	for o := 0; o < s.Cout; o++ {
		for k := 0; k < s.K; k++ {
			switch s.At(o, k) {
			case 1:
				rows[o] = append(rows[o], term{v: k, neg: false})
			case -1:
				rows[o] = append(rows[o], term{v: k, neg: true})
			}
		}
	}

	var defs []lincomb // definitions of variables K, K+1, ...
	if opt.CSE {
		defs = extractPairs(rows, s.K, opt.MaxDefs)
	}
	return materialize(rows, defs, s.K, opt.CSE)
}

// extractPairs runs the greedy signed-pair extraction: while some signed
// pair of variables occurs (up to global negation) in at least two rows,
// define it as a new variable and substitute. This is the CSE step of
// §IV-A; on the paper's Equation (1) it finds exactly the x6/x7/x8
// decomposition (7 ops).
//
// The pair-occurrence counts are maintained incrementally: substituting a
// definition touches only the rows that contain the chosen pair, so only
// those rows' pair contributions are retracted and re-added, instead of
// recounting every row on every iteration. The greedy selection (highest
// count, ties broken toward the lexicographically smallest key) sees
// exactly the counts a full recount would produce, so the extraction
// order — and therefore the emitted DFG — is unchanged.
func extractPairs(rows []lincomb, nextVar int, maxDefs int) []lincomb {
	counts := make(map[pairKey]int)
	count := func(row lincomb, delta int) {
		for i := 0; i < len(row); i++ {
			for j := i + 1; j < len(row); j++ {
				key, _ := canonPair(row[i], row[j])
				if c := counts[key] + delta; c > 0 {
					counts[key] = c
				} else {
					delete(counts, key)
				}
			}
		}
	}
	for _, row := range rows {
		count(row, 1)
	}

	var defs []lincomb
	for {
		if maxDefs > 0 && len(defs) >= maxDefs {
			return defs
		}
		best := pairKey{}
		bestCount := 1
		for k, c := range counts {
			if c > bestCount ||
				(c == bestCount && (k.v1 < best.v1 || (k.v1 == best.v1 && (k.v2 < best.v2 ||
					(k.v2 == best.v2 && !k.s2 && best.s2))))) {
				if c >= 2 {
					best, bestCount = k, c
				}
			}
		}
		if bestCount < 2 {
			return defs
		}

		// Define d = v1 + (±v2) and substitute ±d into every row that
		// contains the pair or its negation.
		def := lincomb{{v: best.v1, neg: false}, {v: best.v2, neg: best.s2}}
		dv := nextVar
		nextVar++
		defs = append(defs, def)

		for r, row := range rows {
			i1, i2 := -1, -1
			var flip bool
			for i := 0; i < len(row) && i2 == -1; i++ {
				for j := i + 1; j < len(row); j++ {
					key, fl := canonPair(row[i], row[j])
					if key == best {
						i1, i2, flip = i, j, fl
						break
					}
				}
			}
			if i2 == -1 {
				continue
			}
			count(row, -1)
			var nr lincomb
			for i, t := range row {
				if i != i1 && i != i2 {
					nr = append(nr, t)
				}
			}
			nr = append(nr, term{v: dv, neg: flip})
			nr.sort()
			rows[r] = nr
			count(nr, 1)
		}
	}
}

// materialize folds definitions and rows into DFG nodes. Rows fold their
// terms positive-first so leading negations are avoided; rows that are a
// single signed term become (negated) aliases, and all-negative rows
// compute the negated sum and set the output's Neg flag (free via the
// accumulate-with-subtract folding).
func materialize(rows []lincomb, defs []lincomb, k int, share bool) *Graph {
	g := &Graph{}
	varNode := make([]int, k+len(defs))
	for i := 0; i < k; i++ {
		g.Nodes = append(g.Nodes, Node{Kind: OpInput})
		g.Inputs = append(g.Inputs, i)
		varNode[i] = i
	}

	// Structural sharing (hash-consing) of identical subexpressions.
	memo := make(map[[3]int]int)
	mk := func(kind OpKind, a, b int) int {
		if kind == OpAdd && a > b {
			a, b = b, a // addition is commutative; canonicalize
		}
		key := [3]int{int(kind), a, b}
		if share {
			if id, ok := memo[key]; ok {
				return id
			}
		}
		g.Nodes = append(g.Nodes, Node{Kind: kind, A: a, B: b})
		id := len(g.Nodes) - 1
		if share {
			memo[key] = id
		}
		return id
	}

	// fold builds a node computing lc (or its negation, returned as flag).
	fold := func(lc lincomb) (int, bool) {
		pos := make([]int, 0, len(lc))
		neg := make([]int, 0, len(lc))
		for _, t := range lc {
			if t.neg {
				neg = append(neg, varNode[t.v])
			} else {
				pos = append(pos, varNode[t.v])
			}
		}
		if len(pos) == 0 {
			// All-negative: build the positive sum, flag negation.
			acc := neg[0]
			for _, n := range neg[1:] {
				acc = mk(OpAdd, acc, n)
			}
			return acc, true
		}
		acc := pos[0]
		for _, n := range pos[1:] {
			acc = mk(OpAdd, acc, n)
		}
		for _, n := range neg {
			acc = mk(OpSub, acc, n)
		}
		return acc, false
	}

	for i, def := range defs {
		// Definitions are canonical pairs: first term positive.
		id, negFlag := fold(def)
		if negFlag {
			panic("dfg: canonical definition folded negative")
		}
		varNode[k+i] = id
	}

	for _, row := range rows {
		if len(row) == 0 {
			g.Outputs = append(g.Outputs, OutRef{Zero: true})
			continue
		}
		if len(row) == 1 {
			g.Outputs = append(g.Outputs, OutRef{Node: varNode[row[0].v], Neg: row[0].neg})
			continue
		}
		id, negFlag := fold(row)
		g.Outputs = append(g.Outputs, OutRef{Node: id, Neg: negFlag})
	}
	return g
}

// NaiveAccumulateOps returns the operation count of the fully unrolled,
// constant-folded loop *before* expression building: one accumulate per
// nonzero weight (the convention under which the paper's Equation (1)
// "originally involves 19 operations" — Σnnz minus the first assignment).
func NaiveAccumulateOps(s ternary.Slice) int {
	nnz := s.NNZ()
	if nnz == 0 {
		return 0
	}
	return nnz - 1
}
