package dfg

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"rtmap/internal/ternary"
)

// referenceExtractPairs is the original full-recount implementation of the
// greedy signed-pair extraction, kept verbatim as a specification oracle:
// the shipping incremental-count version must choose the exact same
// definition sequence.
func referenceExtractPairs(rows []lincomb, nextVar int, maxDefs int) []lincomb {
	var defs []lincomb
	for {
		if maxDefs > 0 && len(defs) >= maxDefs {
			return defs
		}
		counts := make(map[pairKey]int)
		for _, row := range rows {
			for i := 0; i < len(row); i++ {
				for j := i + 1; j < len(row); j++ {
					key, _ := canonPair(row[i], row[j])
					counts[key]++
				}
			}
		}
		best := pairKey{}
		bestCount := 1
		for k, c := range counts {
			if c > bestCount ||
				(c == bestCount && (k.v1 < best.v1 || (k.v1 == best.v1 && (k.v2 < best.v2 ||
					(k.v2 == best.v2 && !k.s2 && best.s2))))) {
				if c >= 2 {
					best, bestCount = k, c
				}
			}
		}
		if bestCount < 2 {
			return defs
		}
		def := lincomb{{v: best.v1, neg: false}, {v: best.v2, neg: best.s2}}
		dv := nextVar
		nextVar++
		defs = append(defs, def)
		for r, row := range rows {
			i1, i2 := -1, -1
			var flip bool
			for i := 0; i < len(row) && i2 == -1; i++ {
				for j := i + 1; j < len(row); j++ {
					key, fl := canonPair(row[i], row[j])
					if key == best {
						i1, i2, flip = i, j, fl
						break
					}
				}
			}
			if i2 == -1 {
				continue
			}
			var nr lincomb
			for i, t := range row {
				if i != i1 && i != i2 {
					nr = append(nr, t)
				}
			}
			nr = append(nr, term{v: dv, neg: flip})
			nr.sort()
			rows[r] = nr
		}
	}
}

// sliceRows duplicates Build's row construction for the oracle test.
func sliceRows(s ternary.Slice) []lincomb {
	rows := make([]lincomb, s.Cout)
	for o := 0; o < s.Cout; o++ {
		for k := 0; k < s.K; k++ {
			switch s.At(o, k) {
			case 1:
				rows[o] = append(rows[o], term{v: k, neg: false})
			case -1:
				rows[o] = append(rows[o], term{v: k, neg: true})
			}
		}
	}
	return rows
}

func copyRows(rows []lincomb) []lincomb {
	out := make([]lincomb, len(rows))
	for i, r := range rows {
		out[i] = append(lincomb(nil), r...)
	}
	return out
}

func TestExtractPairsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 40; trial++ {
		cout := 8 + rng.IntN(56)
		sparsity := 0.3 + 0.6*rng.Float64()
		w := ternary.Random(rng, cout, 1, 3, 3, sparsity)
		s := w.Slice(0)
		maxDefs := 0
		if trial%3 == 1 {
			maxDefs = 1 + rng.IntN(8)
		}
		rowsInc, rowsRef := sliceRows(s), sliceRows(s)
		gotDefs := extractPairs(rowsInc, s.K, maxDefs)
		wantDefs := referenceExtractPairs(rowsRef, s.K, maxDefs)
		if !reflect.DeepEqual(gotDefs, wantDefs) {
			t.Fatalf("trial %d (cout=%d sp=%.2f maxDefs=%d): defs diverge\n got %v\nwant %v",
				trial, cout, sparsity, maxDefs, gotDefs, wantDefs)
		}
		if !reflect.DeepEqual(rowsInc, rowsRef) {
			t.Fatalf("trial %d: substituted rows diverge\n got %v\nwant %v",
				trial, rowsInc, rowsRef)
		}
	}
}
