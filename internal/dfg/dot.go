package dfg

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz format (Fig. 3e of the paper shows
// such a DFG for Equation (1)). Negated-alias outputs are drawn with
// dashed edges, matching the paper's "red operator" convention for
// negative outputs.
func (g *Graph) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n", name)
	inputOf := make(map[int]int)
	for k, id := range g.Inputs {
		inputOf[id] = k
	}
	for i, nd := range g.Nodes {
		switch nd.Kind {
		case OpInput:
			fmt.Fprintf(&b, "  n%d [shape=box,label=\"x%d\"];\n", i, inputOf[i])
		case OpAdd:
			fmt.Fprintf(&b, "  n%d [shape=circle,label=\"+\\n%db\"];\n", i, nd.Bits)
		case OpSub:
			fmt.Fprintf(&b, "  n%d [shape=circle,label=\"-\\n%db\"];\n", i, nd.Bits)
		}
		if nd.Kind == OpAdd || nd.Kind == OpSub {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", nd.A, i)
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"r\"];\n", nd.B, i)
		}
	}
	for o, ref := range g.Outputs {
		if ref.Zero {
			fmt.Fprintf(&b, "  y%d [shape=plaintext,label=\"y%d=0\"];\n", o, o)
			continue
		}
		fmt.Fprintf(&b, "  y%d [shape=plaintext,label=\"y%d\"];\n", o, o)
		style := ""
		if ref.Neg {
			style = " [style=dashed,label=\"neg\"]"
		}
		fmt.Fprintf(&b, "  n%d -> y%d%s;\n", ref.Node, o, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a slice DFG for reporting.
type Stats struct {
	Inputs     int
	AddSubOps  int // MVM-convention op count (the Table II metric)
	NegAliases int
	ZeroRows   int
	MaxBits    int
	Depth      int // longest op chain (latency-relevant)
}

// Statistics computes summary statistics (widths must be annotated first
// for MaxBits to be meaningful).
func (g *Graph) Statistics() Stats {
	s := Stats{Inputs: len(g.Inputs), AddSubOps: g.NumOps(), MaxBits: g.MaxBits()}
	depth := make([]int, len(g.Nodes))
	for i, nd := range g.Nodes {
		if nd.Kind == OpAdd || nd.Kind == OpSub {
			d := depth[nd.A]
			if depth[nd.B] > d {
				d = depth[nd.B]
			}
			depth[i] = d + 1
			if depth[i] > s.Depth {
				s.Depth = depth[i]
			}
		}
	}
	for _, ref := range g.Outputs {
		switch {
		case ref.Zero:
			s.ZeroRows++
		case ref.Neg:
			s.NegAliases++
		}
	}
	return s
}
