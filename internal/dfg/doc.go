// Package dfg implements the data-flow-graph level of the compilation flow
// (Fig. 3 of the paper): ternary weight slices are unrolled and
// constant-folded into add/subtract expression DAGs, redundant additions
// are removed by common-subexpression elimination over signed input pairs
// (reproducing the paper's Equation (1): 19 accumulate operations reduced
// to 7 adds/subs), and every node is annotated with the minimum integer
// bitwidth that provably avoids overflow ("custom integer types").
package dfg
