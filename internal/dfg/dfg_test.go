package dfg

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"rtmap/internal/ternary"
)

// equation1 is the 6×6 ternary matrix of the paper's Equation (1), with
// the two sign typos of the printed matrix corrected so that the paper's
// own x6/x7/x8 substitution is consistent (x8 = x0 − x1; see DESIGN.md §2).
func equation1() ternary.Slice {
	m := []int8{
		1, -1, 0, 1, 0, -1,
		0, 0, -1, 1, 0, -1,
		0, 0, 0, -1, 0, 1,
		0, -1, 0, -1, 0, 1,
		1, -1, 0, -1, 0, 0,
		1, -1, -1, 1, 0, -1,
	}
	return ternary.Slice{Cout: 6, K: 6, M: m}
}

func refMVM(s ternary.Slice, x []int64) []int64 {
	y := make([]int64, s.Cout)
	for o := 0; o < s.Cout; o++ {
		for k := 0; k < s.K; k++ {
			switch s.At(o, k) {
			case 1:
				y[o] += x[k]
			case -1:
				y[o] -= x[k]
			}
		}
	}
	return y
}

func TestEquation1CSE(t *testing.T) {
	s := equation1()
	// The paper: "The MVM operation in Eq. 1 originally involves 19
	// operations and can be reduced to 7 when removing redundant
	// expressions."
	if got := NaiveAccumulateOps(s); got != 19 {
		t.Errorf("naive accumulate ops = %d, want 19 (paper's unoptimized count)", got)
	}
	g := Build(s, Options{CSE: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumOps(); got != 7 {
		t.Errorf("CSE ops = %d, want 7 (paper's optimized count)", got)
	}
	// y2 = −x7 must be realized as a free negated alias.
	st := g.Statistics()
	if st.NegAliases < 1 {
		t.Errorf("expected at least one negated alias output, got %d", st.NegAliases)
	}
	// Semantics preserved.
	rng := rand.New(rand.NewPCG(2024, 1))
	for trial := 0; trial < 50; trial++ {
		x := make([]int64, 6)
		for i := range x {
			x[i] = rng.Int64N(31)
		}
		want := refMVM(s, x)
		got := g.Eval(x)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("output %d: got %d, want %d (x=%v)", o, got[o], want[o], x)
			}
		}
	}
}

func TestEquation1UnrollCount(t *testing.T) {
	g := Build(equation1(), Options{})
	// MVM convention without sharing: Σ max(nnz−1, 0) = 14.
	if got := g.NumOps(); got != 14 {
		t.Errorf("unroll ops = %d, want 14", got)
	}
}

func TestCSENeverWorseAndPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 60; trial++ {
		cout := 1 + rng.IntN(24)
		k := 1 + rng.IntN(12)
		sp := 0.3 + 0.6*rng.Float64()
		w := ternary.Random(rng, cout, 1, 1, k, sp)
		s := w.Slice(0)

		plain := Build(s, Options{})
		opt := Build(s, Options{CSE: true})
		if err := opt.Validate(); err != nil {
			t.Fatal(err)
		}
		if opt.NumOps() > plain.NumOps() {
			t.Fatalf("trial %d: CSE increased ops %d → %d", trial, plain.NumOps(), opt.NumOps())
		}
		for e := 0; e < 10; e++ {
			x := make([]int64, k)
			for i := range x {
				x[i] = rng.Int64N(255)
			}
			want := refMVM(s, x)
			gp, go_ := plain.Eval(x), opt.Eval(x)
			for o := range want {
				if gp[o] != want[o] || go_[o] != want[o] {
					t.Fatalf("trial %d: semantics broken at output %d", trial, o)
				}
			}
		}
	}
}

func TestCSEReductionOnRealisticSlices(t *testing.T) {
	// 3×3 slices with many output channels — the dominant shape in the
	// evaluated networks — must show a clear CSE reduction (paper: 31% on
	// average across networks).
	rng := rand.New(rand.NewPCG(11, 13))
	totPlain, totOpt := 0, 0
	for trial := 0; trial < 20; trial++ {
		w := ternary.Random(rng, 256, 1, 3, 3, 0.8)
		s := w.Slice(0)
		totPlain += Build(s, Options{}).NumOps()
		totOpt += Build(s, Options{CSE: true}).NumOps()
	}
	red := 1 - float64(totOpt)/float64(totPlain)
	if red < 0.15 {
		t.Errorf("CSE reduction %.1f%% too small for 256-channel 3×3 slices", red*100)
	}
}

func TestWidthAnnotationSound(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 40; trial++ {
		w := ternary.Random(rng, 8, 1, 3, 3, 0.5)
		s := w.Slice(0)
		g := Build(s, Options{CSE: true})
		bits := 4 + rng.IntN(5)
		hi := int64(1)<<uint(bits) - 1
		g.AnnotateWidths(0, hi)
		// Every node's annotated interval must contain its value on
		// random extreme-ish inputs, and the width must hold the interval.
		for e := 0; e < 20; e++ {
			x := make([]int64, s.K)
			for i := range x {
				switch rng.IntN(3) {
				case 0:
					x[i] = 0
				case 1:
					x[i] = hi
				default:
					x[i] = rng.Int64N(hi + 1)
				}
			}
			vals := make([]int64, len(g.Nodes))
			inputOf := make(map[int]int)
			for k, id := range g.Inputs {
				inputOf[id] = k
			}
			for i, nd := range g.Nodes {
				switch nd.Kind {
				case OpInput:
					vals[i] = x[inputOf[i]]
				case OpAdd:
					vals[i] = vals[nd.A] + vals[nd.B]
				case OpSub:
					vals[i] = vals[nd.A] - vals[nd.B]
				}
				if vals[i] < nd.Lo || vals[i] > nd.Hi {
					t.Fatalf("node %d value %d outside annotated [%d,%d]", i, vals[i], nd.Lo, nd.Hi)
				}
				min := -(int64(1) << uint(nd.Bits-1))
				max := int64(1)<<uint(nd.Bits-1) - 1
				if nd.Lo < min || nd.Hi > max {
					t.Fatalf("node %d interval [%d,%d] exceeds %d bits", i, nd.Lo, nd.Hi, nd.Bits)
				}
			}
		}
	}
}

func TestWidthTightForSingleAdd(t *testing.T) {
	// x0 + x1 with 4-bit unsigned inputs: range [0,30] → 6 signed bits.
	s := ternary.Slice{Cout: 1, K: 2, M: []int8{1, 1}}
	g := Build(s, Options{})
	g.AnnotateWidths(0, 15)
	if g.MaxBits() != 6 {
		t.Errorf("max bits %d, want 6", g.MaxBits())
	}
	// x0 − x1: range [−15,15] → 5 signed bits.
	s2 := ternary.Slice{Cout: 1, K: 2, M: []int8{1, -1}}
	g2 := Build(s2, Options{})
	g2.AnnotateWidths(0, 15)
	if g2.MaxBits() != 5 {
		t.Errorf("sub bits %d, want 5", g2.MaxBits())
	}
}

func TestZeroAndAliasRows(t *testing.T) {
	s := ternary.Slice{Cout: 4, K: 3, M: []int8{
		0, 0, 0, // zero row
		0, 1, 0, // alias of x1
		0, -1, 0, // negated alias
		1, 1, 0,
	}}
	g := Build(s, Options{CSE: true})
	if !g.Outputs[0].Zero {
		t.Error("row 0 must be zero")
	}
	if g.Outputs[1].Zero || g.Outputs[1].Neg {
		t.Error("row 1 must be a plain alias")
	}
	if !g.Outputs[2].Neg {
		t.Error("row 2 must be a negated alias")
	}
	if g.NumOps() != 1 {
		t.Errorf("ops = %d, want 1", g.NumOps())
	}
	out := g.Eval([]int64{5, 7, 9})
	want := []int64{0, 7, -7, 12}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestHashConsingSharesIdenticalRows(t *testing.T) {
	s := ternary.Slice{Cout: 2, K: 2, M: []int8{
		1, 1,
		1, 1, // identical filter
	}}
	g := Build(s, Options{CSE: true})
	if g.NumOps() != 1 {
		t.Errorf("identical rows should share one add, got %d ops", g.NumOps())
	}
	if g.Outputs[0].Node != g.Outputs[1].Node {
		t.Error("outputs must alias the same node")
	}
}

func TestQuickCSESemantics(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xcafe))
		w := ternary.Random(rng, 1+rng.IntN(10), 1, 1, 1+rng.IntN(9), rng.Float64())
		s := w.Slice(0)
		g := Build(s, Options{CSE: true})
		if g.Validate() != nil {
			return false
		}
		x := make([]int64, s.K)
		for i := range x {
			x[i] = rng.Int64N(1 << 10)
		}
		want := refMVM(s, x)
		got := g.Eval(x)
		for o := range want {
			if got[o] != want[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDotOutput(t *testing.T) {
	g := Build(equation1(), Options{CSE: true})
	g.AnnotateWidths(0, 15)
	dot := g.Dot("eq1")
	for _, want := range []string{"digraph", "x0", "y5", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestStatisticsDepth(t *testing.T) {
	// Chain: ((x0+x1)+x2)+x3 → depth 3.
	s := ternary.Slice{Cout: 1, K: 4, M: []int8{1, 1, 1, 1}}
	g := Build(s, Options{})
	if d := g.Statistics().Depth; d != 3 {
		t.Errorf("depth %d, want 3", d)
	}
}
