package model

import (
	"fmt"

	"rtmap/internal/quant"
	"rtmap/internal/tensor"
)

// maxCalibSamplesPerSite bounds how many activation values each
// quantization site contributes per calibration input (strided
// subsampling keeps calibration linear in network size, not tensor size).
const maxCalibSamplesPerSite = 8192

// Calibrate fits every activation quantizer (and the input quantizer) on
// the given calibration inputs by running the float reference path without
// fake quantization and minimizing per-site reconstruction MSE — the
// post-training surrogate for LSQ described in internal/quant.
// Quantizers sharing a ShareID are fitted jointly on their pooled samples
// so residual branches land on a common grid.
func Calibrate(n *Network, inputs []*tensor.Float) error {
	if len(inputs) == 0 {
		return fmt.Errorf("model: calibration requires at least one input")
	}

	// Input quantizer: fit on raw input values.
	var inSample []float32
	for _, in := range inputs {
		inSample = appendStrided(inSample, in.Data, maxCalibSamplesPerSite)
	}
	n.InputQ = quant.Calibrate(inSample, n.InputQ.Bits, n.InputQ.Signed)

	// Gather pre-quantization samples per site (after ReLU when fused).
	siteSamples := make(map[int][]float32) // layer index → samples
	for _, in := range inputs {
		outs, err := n.ForwardFloat(in, false)
		if err != nil {
			return err
		}
		for i := range n.Layers {
			l := &n.Layers[i]
			if l.Kind != KindActQuant {
				continue
			}
			src := outs[l.Inputs[0]]
			if l.Inputs[0] == InputRef {
				src = in
			}
			vals := src.Data
			if l.ReLU {
				clipped := make([]float32, 0, min(len(vals), maxCalibSamplesPerSite))
				step := 1 + len(vals)/maxCalibSamplesPerSite
				for j := 0; j < len(vals); j += step {
					v := vals[j]
					if v < 0 {
						v = 0
					}
					clipped = append(clipped, v)
				}
				siteSamples[i] = append(siteSamples[i], clipped...)
			} else {
				siteSamples[i] = appendStrided(siteSamples[i], vals, maxCalibSamplesPerSite)
			}
		}
	}

	// Pool samples for shared sites.
	shared := make(map[int][]float32)
	for i := range n.Layers {
		l := &n.Layers[i]
		if l.Kind == KindActQuant && l.ShareID > 0 {
			shared[l.ShareID] = append(shared[l.ShareID], siteSamples[i]...)
		}
	}

	for i := range n.Layers {
		l := &n.Layers[i]
		if l.Kind != KindActQuant {
			continue
		}
		sample := siteSamples[i]
		if l.ShareID > 0 {
			sample = shared[l.ShareID]
		}
		if len(sample) == 0 {
			return fmt.Errorf("model: no calibration samples for layer %d (%s)", i, l.Name)
		}
		l.Q = quant.Calibrate(sample, l.Q.Bits, l.Q.Signed)
	}
	return nil
}

func appendStrided(dst []float32, src []float32, maxN int) []float32 {
	step := 1 + len(src)/maxN
	for i := 0; i < len(src); i += step {
		dst = append(dst, src[i])
	}
	return dst
}
