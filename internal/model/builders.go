package model

import (
	"fmt"
	"math"
	"math/rand/v2"

	"rtmap/internal/quant"
	"rtmap/internal/tensor"
	"rtmap/internal/ternary"
)

// Config parameterizes the model zoo builders.
type Config struct {
	ActBits  int     // activation precision (4 or 8 in the paper)
	Sparsity float64 // target ternary weight sparsity (Table II: 0.8/0.85/0.9)
	Seed     uint64  // weight generation seed (deterministic)
}

// DefaultConfig returns the headline configuration of the paper:
// 4-bit activations and 0.8 sparsity.
func DefaultConfig() Config { return Config{ActBits: 4, Sparsity: 0.8, Seed: 1} }

func (c Config) validate() {
	if c.ActBits < 2 || c.ActBits > 8 {
		panic(fmt.Sprintf("model: activation bits %d out of range", c.ActBits))
	}
	if c.Sparsity < 0 || c.Sparsity >= 1 {
		panic(fmt.Sprintf("model: sparsity %v out of range", c.Sparsity))
	}
}

// builder incrementally assembles a Network DAG.
type builder struct {
	net      *Network
	rng      *rand.Rand
	cfg      Config
	last     int // index of the most recent layer; InputRef initially
	shareSeq int
}

func newBuilder(name string, input tensor.Shape, cfg Config) *builder {
	cfg.validate()
	return &builder{
		net: &Network{
			Name:       name,
			InputShape: input,
			InputQ:     quant.Quantizer{Bits: cfg.ActBits, Step: 1},
		},
		rng:  rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda7a5eed)),
		cfg:  cfg,
		last: InputRef,
	}
}

func (b *builder) push(l Layer) int {
	b.net.Layers = append(b.net.Layers, l)
	b.last = len(b.net.Layers) - 1
	return b.last
}

// wscale returns the TWN scale α for a filter with the given fan-in. The
// 1/sqrt(expected nonzero fan-in) rule keeps activation variance roughly
// unit across layers, standing in for the learned α of a trained TWN.
func (b *builder) wscale(cin, fh, fw int) float32 {
	nnz := (1 - b.cfg.Sparsity) * float64(cin*fh*fw)
	if nnz < 1 {
		nnz = 1
	}
	return float32(1 / math.Sqrt(nnz))
}

func (b *builder) conv(name string, from, cin, cout, k, stride, pad int) int {
	w := ternary.Random(b.rng, cout, cin, k, k, b.cfg.Sparsity)
	return b.push(Layer{
		Kind: KindConv, Name: name, Inputs: []int{from},
		W: w, WScale: b.wscale(cin, k, k), Stride: stride, Pad: pad,
	})
}

func (b *builder) linear(name string, from, cin, cout int) int {
	w := ternary.Random(b.rng, cout, cin, 1, 1, b.cfg.Sparsity)
	return b.push(Layer{
		Kind: KindLinear, Name: name, Inputs: []int{from},
		W: w, WScale: b.wscale(cin, 1, 1), Stride: 1,
	})
}

// qrelu adds the standard fused ReLU+quantize activation layer.
func (b *builder) qrelu(name string, from int) int {
	return b.push(Layer{
		Kind: KindActQuant, Name: name, Inputs: []int{from},
		Q: quant.Quantizer{Bits: b.cfg.ActBits, Step: 1}, ReLU: true,
	})
}

// qsigned adds a signed, non-ReLU requantization used to align the two
// branches of a residual add on one shared grid (share ties their steps).
func (b *builder) qsigned(name string, from, share int) int {
	return b.push(Layer{
		Kind: KindActQuant, Name: name, Inputs: []int{from},
		Q:       quant.Quantizer{Bits: b.cfg.ActBits + 1, Step: 1, Signed: true},
		ShareID: share,
	})
}

func (b *builder) maxpool(name string, from, k, stride, pad int) int {
	return b.push(Layer{
		Kind: KindMaxPool, Name: name, Inputs: []int{from},
		Pool: tensor.PoolSpec{K: k, Stride: stride, Pad: pad},
	})
}

func (b *builder) gavg(name string, from int) int {
	return b.push(Layer{Kind: KindGlobalAvgPool, Name: name, Inputs: []int{from}})
}

func (b *builder) flatten(name string, from int) int {
	return b.push(Layer{Kind: KindFlatten, Name: name, Inputs: []int{from}})
}

func (b *builder) add(name string, a, c int) int {
	return b.push(Layer{Kind: KindAdd, Name: name, Inputs: []int{a, c}})
}

// basicBlock appends a ResNet basic block: two 3×3 convolutions plus a
// residual connection (with a 1×1 stride-s downsample conv when the shape
// changes), all on quantized grids.
func (b *builder) basicBlock(prefix string, from, cin, cout, stride int) int {
	b.shareSeq++
	share := b.shareSeq

	c1 := b.conv(prefix+".conv1", from, cin, cout, 3, stride, 1)
	q1 := b.qrelu(prefix+".q1", c1)
	c2 := b.conv(prefix+".conv2", q1, cout, cout, 3, 1, 1)
	main := b.qsigned(prefix+".qmain", c2, share)

	skipFrom := from
	if stride != 1 || cin != cout {
		d := b.conv(prefix+".downsample", from, cin, cout, 1, stride, 0)
		skipFrom = d
	}
	skip := b.qsigned(prefix+".qskip", skipFrom, share)

	sum := b.add(prefix+".add", main, skip)
	return b.qrelu(prefix+".qout", sum)
}

// ResNet18 builds the ImageNet-scale ResNet-18 evaluated in Table II and
// Fig. 4 (20 convolutional layers: stem + 16 block convs + 3 downsamples,
// then global average pooling and a 1000-way classifier).
func ResNet18(cfg Config) *Network {
	b := newBuilder("resnet18-imagenet", tensor.Shape{N: 1, C: 3, H: 224, W: 224}, cfg)
	x := b.conv("conv1", InputRef, 3, 64, 7, 2, 3)
	x = b.qrelu("conv1.q", x)
	x = b.maxpool("maxpool", x, 3, 2, 1)

	widths := []int{64, 128, 256, 512}
	cin := 64
	for stage, w := range widths {
		for blk := 0; blk < 2; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			x = b.basicBlock(fmt.Sprintf("layer%d.%d", stage+1, blk), x, cin, w, stride)
			cin = w
		}
	}
	x = b.gavg("gavgpool", x)
	x = b.flatten("flatten", x)
	b.linear("fc", x, 512, 1000)
	return b.net
}

// MiniResNet18 is the same topology as ResNet18 at reduced input
// resolution (inH×inW), used where full ImageNet resolution would make
// functional simulation needlessly slow. Layer structure, channel widths
// and sparsity are unchanged, so per-layer compiler statistics match the
// full model exactly (DFGs depend only on weights).
func MiniResNet18(cfg Config, inH, inW int) *Network {
	full := ResNet18(cfg)
	full.Name = fmt.Sprintf("resnet18-mini%dx%d", inH, inW)
	full.InputShape = tensor.Shape{N: 1, C: 3, H: inH, W: inW}
	return full
}

// VGG9 builds the CIFAR10-scale VGG-9 (6 conv + 3 FC layers) of Table II.
func VGG9(cfg Config) *Network {
	b := newBuilder("vgg9-cifar10", tensor.Shape{N: 1, C: 3, H: 32, W: 32}, cfg)
	x := InputRef
	cin := 3
	block := func(stage, n, cout int) {
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("conv%d_%d", stage, i+1)
			x = b.conv(name, x, cin, cout, 3, 1, 1)
			x = b.qrelu(name+".q", x)
			cin = cout
		}
		x = b.maxpool(fmt.Sprintf("pool%d", stage), x, 2, 2, 0)
	}
	block(1, 2, 64)
	block(2, 2, 128)
	block(3, 2, 256)
	x = b.flatten("flatten", x) // 256×4×4 → 4096
	x = b.linear("fc1", x, 4096, 256)
	x = b.qrelu("fc1.q", x)
	x = b.linear("fc2", x, 256, 256)
	x = b.qrelu("fc2.q", x)
	b.linear("fc3", x, 256, 10)
	return b.net
}

// VGG11 builds the CIFAR10-scale VGG-11 (8 conv + 3 FC layers) of Table II.
func VGG11(cfg Config) *Network {
	b := newBuilder("vgg11-cifar10", tensor.Shape{N: 1, C: 3, H: 32, W: 32}, cfg)
	x := InputRef
	cin := 3
	stage := 0
	block := func(n, cout int) {
		stage++
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("conv%d_%d", stage, i+1)
			x = b.conv(name, x, cin, cout, 3, 1, 1)
			x = b.qrelu(name+".q", x)
			cin = cout
		}
		x = b.maxpool(fmt.Sprintf("pool%d", stage), x, 2, 2, 0)
	}
	block(1, 64)
	block(1, 128)
	block(2, 256)
	block(2, 512)
	block(2, 512) // feature map 512×1×1
	x = b.flatten("flatten", x)
	x = b.linear("fc1", x, 512, 512)
	x = b.qrelu("fc1.q", x)
	x = b.linear("fc2", x, 512, 512)
	x = b.qrelu("fc2.q", x)
	b.linear("fc3", x, 512, 10)
	return b.net
}

// TinyCNN is a small sequential network for fast functional tests.
func TinyCNN(cfg Config) *Network {
	b := newBuilder("tinycnn", tensor.Shape{N: 1, C: 2, H: 8, W: 8}, cfg)
	x := b.conv("conv1", InputRef, 2, 4, 3, 1, 1)
	x = b.qrelu("conv1.q", x)
	x = b.maxpool("pool1", x, 2, 2, 0)
	x = b.conv("conv2", x, 4, 6, 3, 1, 1)
	x = b.qrelu("conv2.q", x)
	x = b.gavg("gap", x)
	x = b.flatten("flatten", x)
	b.linear("fc", x, 6, 4)
	return b.net
}

// TinyResNet is a small residual network exercising Add/downsample paths in
// tests.
func TinyResNet(cfg Config) *Network {
	b := newBuilder("tinyresnet", tensor.Shape{N: 1, C: 3, H: 8, W: 8}, cfg)
	x := b.conv("conv1", InputRef, 3, 4, 3, 1, 1)
	x = b.qrelu("conv1.q", x)
	x = b.basicBlock("block1", x, 4, 4, 1)
	x = b.basicBlock("block2", x, 4, 8, 2)
	x = b.gavg("gap", x)
	x = b.flatten("flatten", x)
	b.linear("fc", x, 8, 4)
	return b.net
}
