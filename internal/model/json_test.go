package model

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rtmap/internal/tensor"
)

// Round-trip through the JSON model format must preserve the network
// exactly: identical structure and, decisively, identical integer
// inference on the same input — field-level, unlike the logits-only
// TestJSONRoundTrip in model_test.go.
func TestJSONRoundTripExact(t *testing.T) {
	nets := []*Network{
		TinyCNN(Config{ActBits: 4, Sparsity: 0.5, Seed: 3}),
		TinyResNet(Config{ActBits: 8, Sparsity: 0.8, Seed: 9}),
	}
	for _, orig := range nets {
		var buf bytes.Buffer
		if err := orig.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: write: %v", orig.Name, err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", orig.Name, err)
		}

		if got.Name != orig.Name || got.InputShape != orig.InputShape || got.InputQ != orig.InputQ {
			t.Fatalf("%s: header mismatch", orig.Name)
		}
		if len(got.Layers) != len(orig.Layers) {
			t.Fatalf("%s: %d layers, want %d", orig.Name, len(got.Layers), len(orig.Layers))
		}
		for i := range orig.Layers {
			a, b := &orig.Layers[i], &got.Layers[i]
			if a.Kind != b.Kind || a.Name != b.Name || !reflect.DeepEqual(a.Inputs, b.Inputs) {
				t.Fatalf("%s layer %d: identity mismatch", orig.Name, i)
			}
			if (a.W == nil) != (b.W == nil) || (a.W != nil && !reflect.DeepEqual(a.W, b.W)) {
				t.Fatalf("%s layer %d: weights mismatch", orig.Name, i)
			}
			if a.Q != b.Q || a.ReLU != b.ReLU || a.ShareID != b.ShareID ||
				a.Pool != b.Pool || a.Stride != b.Stride || a.Pad != b.Pad || a.WScale != b.WScale {
				t.Fatalf("%s layer %d: attribute mismatch", orig.Name, i)
			}
		}

		in := rampInput(orig.InputShape)
		trA, err := orig.ForwardInt(in)
		if err != nil {
			t.Fatal(err)
		}
		trB, err := got.ForwardInt(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range trA.Outputs {
			if !trA.Outputs[i].Equal(trB.Outputs[i]) {
				t.Fatalf("%s: layer %d integer outputs diverge after round-trip", orig.Name, i)
			}
		}
	}
}

// rampInput fills a deterministic non-trivial input covering the
// quantizer range.
func rampInput(s tensor.Shape) *tensor.Float {
	in := tensor.NewFloat(s)
	for i := range in.Data {
		in.Data[i] = float32(i%13) * 0.17
	}
	return in
}

// SaveFile/LoadFile round-trip through the filesystem.
func TestJSONFileRoundTrip(t *testing.T) {
	net := TinyCNN(Config{ActBits: 4, Sparsity: 0.5, Seed: 3})
	path := filepath.Join(t.TempDir(), "tiny.json")
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != net.Name || len(got.Layers) != len(net.Layers) {
		t.Fatalf("file round-trip lost structure: %s/%d layers", got.Name, len(got.Layers))
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"unknown format": `{"format":"something-else","name":"x","input_nchw":[1,1,1,1],"input_quant":{"bits":4,"step":1}}`,
		"unknown kind":   `{"format":"rtmap-twn-v1","name":"x","input_nchw":[1,1,1,1],"input_quant":{"bits":4,"step":1},"layers":[{"kind":"warp","name":"l0","inputs":[-1]}]}`,
	}
	for name, body := range cases {
		if _, err := ReadJSON(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTernaryCoding(t *testing.T) {
	w := []int8{0, 1, -1, 1, 0}
	enc, err := encodeTernary(w)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := decodeTernary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, rt) {
		t.Fatalf("ternary coding round-trip: %v -> %v", w, rt)
	}
	if _, err := decodeTernary([]byte{0, 1, 2, 3}); err == nil {
		t.Error("invalid ternary byte 3 accepted")
	}
	if _, err := encodeTernary([]int8{0, 5}); err == nil {
		t.Error("non-ternary weight 5 encoded without error")
	}
}

// A network holding corrupted (non-ternary) weights must fail WriteJSON
// with a wrapped error — never panic: serialization is reachable from
// data (rtmap-compile -save on a loaded model), so it sits on the error
// side of the panic-vs-error boundary.
func TestWriteJSONCorruptWeightsErrors(t *testing.T) {
	net := TinyCNN(Config{ActBits: 4, Sparsity: 0.5, Seed: 3})
	for i := range net.Layers {
		if net.Layers[i].W != nil {
			net.Layers[i].W.W[0] = 7
			break
		}
	}
	var buf bytes.Buffer
	err := net.WriteJSON(&buf)
	if err == nil {
		t.Fatal("corrupt weights serialized without error")
	}
	if !strings.Contains(err.Error(), "non-ternary") {
		t.Fatalf("error %v does not identify the non-ternary weight", err)
	}
}
