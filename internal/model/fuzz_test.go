package model

import (
	"bytes"
	"testing"
)

// FuzzModelJSON is the decode-robustness gate for the JSON model format:
// ReadJSON on arbitrary bytes must either return a clean error or a
// network that validates and re-encodes — it must never panic. CI runs
// the seed corpus as a deterministic smoke test
// (go test -run FuzzModelJSON); open-ended fuzzing stays a local tool
// (go test -fuzz FuzzModelJSON).
func FuzzModelJSON(f *testing.F) {
	// A well-formed network, so mutations explore the accept path too.
	var buf bytes.Buffer
	if err := TinyCNN(Config{ActBits: 4, Sparsity: 0.5, Seed: 3}).WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Malformed seeds: each one is a distinct historical failure class.
	for _, s := range []string{
		``,
		`{`,
		`null`,
		`{"format":"something-else","name":"x","input_nchw":[1,1,1,1],"input_quant":{"bits":4,"step":1}}`,
		// Unknown layer kind.
		`{"format":"rtmap-twn-v1","name":"x","input_nchw":[1,1,1,1],"input_quant":{"bits":4,"step":1},"layers":[{"kind":"warp","name":"l0","inputs":[-1]}]}`,
		// Non-ternary weight byte (3) in a conv layer.
		`{"format":"rtmap-twn-v1","name":"x","input_nchw":[1,1,1,1],"input_quant":{"bits":4,"step":1},"layers":[{"kind":"conv","name":"c","inputs":[-1],"cout":1,"cin":1,"fh":1,"fw":1,"weights":"Aw==","wscale":1,"stride":1}]}`,
		// Weight count disagrees with the cout*cin*fh*fw geometry.
		`{"format":"rtmap-twn-v1","name":"x","input_nchw":[1,1,1,1],"input_quant":{"bits":4,"step":1},"layers":[{"kind":"conv","name":"c","inputs":[-1],"cout":2,"cin":2,"fh":3,"fw":3,"weights":"AAE=","wscale":1,"stride":1}]}`,
		// Negative geometry.
		`{"format":"rtmap-twn-v1","name":"x","input_nchw":[1,-1,1,1],"input_quant":{"bits":4,"step":1},"layers":[]}`,
		// Forward reference breaks topological order.
		`{"format":"rtmap-twn-v1","name":"x","input_nchw":[1,1,1,1],"input_quant":{"bits":4,"step":1},"layers":[{"kind":"actquant","name":"q","inputs":[5],"quant":{"bits":4,"step":1}}]}`,
		// ActQuant without its quantizer.
		`{"format":"rtmap-twn-v1","name":"x","input_nchw":[1,1,1,1],"input_quant":{"bits":4,"step":1},"layers":[{"kind":"actquant","name":"q","inputs":[-1]}]}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Accepted networks are validated, so they must re-encode.
		var out bytes.Buffer
		if err := net.WriteJSON(&out); err != nil {
			t.Fatalf("decoded network does not re-encode: %v", err)
		}
	})
}
