package model

import (
	"fmt"

	"rtmap/internal/quant"
	"rtmap/internal/tensor"
	"rtmap/internal/ternary"
)

// Kind enumerates layer types.
type Kind int

const (
	// KindConv is a 2-D convolution with ternary weights.
	KindConv Kind = iota
	// KindLinear is a fully-connected layer (ternary 1×1 conv on C×1×1).
	KindLinear
	// KindMaxPool is K×K max pooling.
	KindMaxPool
	// KindGlobalAvgPool reduces each channel map to its mean.
	KindGlobalAvgPool
	// KindActQuant re-quantizes accumulated partial sums onto an activation
	// grid, optionally applying ReLU first (the fused activation step of
	// the accumulation phase, §IV-B).
	KindActQuant
	// KindAdd is an elementwise residual addition of two earlier outputs,
	// which must be on identical activation grids.
	KindAdd
	// KindFlatten reshapes C×H×W to (C·H·W)×1×1.
	KindFlatten
)

var kindNames = map[Kind]string{
	KindConv:          "conv",
	KindLinear:        "linear",
	KindMaxPool:       "maxpool",
	KindGlobalAvgPool: "gavgpool",
	KindActQuant:      "actquant",
	KindAdd:           "add",
	KindFlatten:       "flatten",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// InputRef is the pseudo-index referring to the network input tensor.
const InputRef = -1

// Layer is one node of the network DAG. Exactly the fields relevant to its
// Kind are populated.
type Layer struct {
	Kind   Kind
	Name   string
	Inputs []int // producing layer indices; InputRef = network input

	// KindConv / KindLinear.
	W      *ternary.Weights
	WScale float32 // TWN scale α (float reference path only)
	Stride int
	Pad    int

	// KindMaxPool.
	Pool tensor.PoolSpec

	// KindActQuant.
	Q       quant.Quantizer
	ReLU    bool
	ShareID int // >0: quantizers with equal ShareID share one calibrated step
}

// Network is an executable layer DAG. Layers are stored in topological
// order (every input index precedes its consumer).
type Network struct {
	Name       string
	InputShape tensor.Shape // with N = 1; batch is set at execution time
	InputQ     quant.Quantizer
	Layers     []Layer
}

// Validate checks structural invariants: topological input ordering, arity
// per kind, ternary weight validity, and Add-grid compatibility.
func (n *Network) Validate() error {
	if !n.InputShape.Valid() {
		return fmt.Errorf("model %s: invalid input shape %v", n.Name, n.InputShape)
	}
	for i, l := range n.Layers {
		arity := 1
		if l.Kind == KindAdd {
			arity = 2
		}
		if len(l.Inputs) != arity {
			return fmt.Errorf("layer %d (%s): got %d inputs, want %d", i, l.Name, len(l.Inputs), arity)
		}
		for _, in := range l.Inputs {
			if in != InputRef && (in < 0 || in >= i) {
				return fmt.Errorf("layer %d (%s): input %d not topologically earlier", i, l.Name, in)
			}
		}
		switch l.Kind {
		case KindConv, KindLinear:
			if l.W == nil {
				return fmt.Errorf("layer %d (%s): missing weights", i, l.Name)
			}
			if err := l.W.Validate(); err != nil {
				return fmt.Errorf("layer %d (%s): %w", i, l.Name, err)
			}
			if l.Kind == KindConv && l.Stride <= 0 {
				return fmt.Errorf("layer %d (%s): stride %d", i, l.Name, l.Stride)
			}
		case KindMaxPool:
			if l.Pool.K <= 0 || l.Pool.Stride <= 0 {
				return fmt.Errorf("layer %d (%s): bad pool %+v", i, l.Name, l.Pool)
			}
		case KindActQuant:
			if l.Q.Bits < 1 {
				return fmt.Errorf("layer %d (%s): quantizer bits %d", i, l.Name, l.Q.Bits)
			}
		}
	}
	return nil
}

// ConvSpec returns the tensor.ConvSpec of a conv/linear layer.
func (l *Layer) ConvSpec() tensor.ConvSpec {
	switch l.Kind {
	case KindConv:
		return tensor.ConvSpec{
			Cin: l.W.Cin, Cout: l.W.Cout, Fh: l.W.Fh, Fw: l.W.Fw,
			Stride: l.Stride, Pad: l.Pad,
		}
	case KindLinear:
		return tensor.ConvSpec{Cin: l.W.Cin, Cout: l.W.Cout, Fh: 1, Fw: 1, Stride: 1}
	}
	panic(fmt.Sprintf("model: ConvSpec on %v layer", l.Kind))
}

// OutShapes computes the static output shape of every layer for batch size
// batchN.
func (n *Network) OutShapes(batchN int) []tensor.Shape {
	shapes := make([]tensor.Shape, len(n.Layers))
	at := func(idx int) tensor.Shape {
		if idx == InputRef {
			s := n.InputShape
			s.N = batchN
			return s
		}
		return shapes[idx]
	}
	for i, l := range n.Layers {
		in := at(l.Inputs[0])
		switch l.Kind {
		case KindConv, KindLinear:
			shapes[i] = l.ConvSpec().OutShape(in)
		case KindMaxPool:
			shapes[i] = l.Pool.OutShape(in)
		case KindGlobalAvgPool:
			shapes[i] = tensor.Shape{N: in.N, C: in.C, H: 1, W: 1}
		case KindActQuant, KindAdd:
			shapes[i] = in
		case KindFlatten:
			shapes[i] = tensor.Shape{N: in.N, C: in.C * in.H * in.W, H: 1, W: 1}
		default:
			panic(fmt.Sprintf("model: unknown kind %v", l.Kind))
		}
	}
	return shapes
}

// Output returns the index of the final layer.
func (n *Network) Output() int { return len(n.Layers) - 1 }

// ConvLayers returns the indices of all conv and linear layers in
// definition order — the per-layer axis of the paper's Fig. 4.
func (n *Network) ConvLayers() []int {
	var idx []int
	for i, l := range n.Layers {
		if l.Kind == KindConv || l.Kind == KindLinear {
			idx = append(idx, i)
		}
	}
	return idx
}

// LayerByName returns the index of the first layer with the given name, or
// -1 when absent.
func (n *Network) LayerByName(name string) int {
	for i, l := range n.Layers {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// TotalWeights returns the number of ternary weights in the network.
func (n *Network) TotalWeights() int {
	total := 0
	for _, l := range n.Layers {
		if l.W != nil {
			total += l.W.Elems()
		}
	}
	return total
}

// WeightSparsity returns the overall fraction of zero weights.
func (n *Network) WeightSparsity() float64 {
	nnz, total := 0, 0
	for _, l := range n.Layers {
		if l.W != nil {
			nnz += l.W.NNZ()
			total += l.W.Elems()
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(nnz)/float64(total)
}
