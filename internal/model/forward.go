package model

import (
	"fmt"

	"rtmap/internal/quant"
	"rtmap/internal/tensor"
)

// IntTrace captures the integer execution of a network: per-layer output
// code tensors and the real-valued scale attached to each (value ≈
// code·scale). The functional AP simulator replays conv layers against
// this trace to prove bit-exactness with the software reference.
type IntTrace struct {
	Outputs []*tensor.Int
	Scales  []float64
	// InputCodes is the quantized network input presented to layer 0.
	InputCodes *tensor.Int
}

// Logits returns the final layer output codes.
func (t *IntTrace) Logits() *tensor.Int { return t.Outputs[len(t.Outputs)-1] }

// InputOf returns the code tensor feeding layer i (resolving InputRef).
func (t *IntTrace) InputOf(n *Network, i int, arg int) *tensor.Int {
	idx := n.Layers[i].Inputs[arg]
	if idx == InputRef {
		return t.InputCodes
	}
	return t.Outputs[idx]
}

// ForwardInt runs the integer reference path: activations are integer codes
// exactly as stored in the AP's nanowires, convolutions are pure ternary
// add/sub accumulations, and KindActQuant layers apply the fused
// ReLU+requantize step. This is the "software accuracy" baseline the AP
// must match bit-for-bit.
func (n *Network) ForwardInt(in *tensor.Float) (*IntTrace, error) {
	return n.ForwardIntQuantized(in, func(x *tensor.Int, l *Layer) *tensor.Int {
		return tensor.ConvIntTernarySparse(x, l.W.W, l.ConvSpec())
	})
}

// ForwardIntQuantized runs the integer path with a custom conv/linear
// executor. Baseline models use it to inject their analog imperfections
// (e.g. the crossbar's per-tile ADC requantization) while keeping every
// other layer bit-identical to the reference, so accuracy comparisons
// isolate exactly the compute-substrate difference.
func (n *Network) ForwardIntQuantized(in *tensor.Float,
	conv func(x *tensor.Int, l *Layer) *tensor.Int) (*IntTrace, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	want := n.InputShape
	if in.Shape.C != want.C || in.Shape.H != want.H || in.Shape.W != want.W {
		return nil, fmt.Errorf("model %s: input shape %v, want CxHxW %dx%dx%d",
			n.Name, in.Shape, want.C, want.H, want.W)
	}
	codes := tensor.NewInt(in.Shape)
	for i, v := range in.Data {
		codes.Data[i] = n.InputQ.Quantize(v)
	}
	tr := &IntTrace{
		Outputs:    make([]*tensor.Int, len(n.Layers)),
		Scales:     make([]float64, len(n.Layers)),
		InputCodes: codes,
	}
	getT := func(idx int) *tensor.Int {
		if idx == InputRef {
			return codes
		}
		return tr.Outputs[idx]
	}
	getS := func(idx int) float64 {
		if idx == InputRef {
			return float64(n.InputQ.Step)
		}
		return tr.Scales[idx]
	}

	for i := range n.Layers {
		l := &n.Layers[i]
		x := getT(l.Inputs[0])
		s := getS(l.Inputs[0])
		switch l.Kind {
		case KindConv, KindLinear:
			tr.Outputs[i] = conv(x, l)
			tr.Scales[i] = s * float64(l.WScale)
		case KindMaxPool:
			tr.Outputs[i] = tensor.MaxPoolInt(x, l.Pool)
			tr.Scales[i] = s
		case KindGlobalAvgPool:
			tr.Outputs[i] = tensor.GlobalAvgPoolInt(x)
			tr.Scales[i] = s
		case KindActQuant:
			out := tensor.NewInt(x.Shape)
			scale := s / float64(l.Q.Step)
			for j, c := range x.Data {
				out.Data[j] = RequantCode(c, scale, l.Q, l.ReLU)
			}
			tr.Outputs[i] = out
			tr.Scales[i] = float64(l.Q.Step)
		case KindAdd:
			y := getT(l.Inputs[1])
			sy := getS(l.Inputs[1])
			if !scalesClose(s, sy) {
				return nil, fmt.Errorf("layer %d (%s): residual scales differ (%g vs %g)",
					i, l.Name, s, sy)
			}
			out := x.Clone()
			out.AddInt(y)
			tr.Outputs[i] = out
			tr.Scales[i] = s
		case KindFlatten:
			out := &tensor.Int{
				Shape: tensor.Shape{N: x.Shape.N, C: x.Shape.C * x.Shape.H * x.Shape.W, H: 1, W: 1},
				Data:  x.Data,
			}
			tr.Outputs[i] = out
			tr.Scales[i] = s
		default:
			return nil, fmt.Errorf("layer %d: unknown kind %v", i, l.Kind)
		}
	}
	return tr, nil
}

// RequantCode applies the fused activation/requantization step to one
// accumulated partial sum: ReLU+requantize for hidden activations, or a
// plain clamp onto a (possibly signed) grid for residual alignment. The
// functional AP simulator applies exactly this function in its peripheral
// requantize step so the integer paths stay bit-identical.
func RequantCode(c int32, scale float64, q quant.Quantizer, relu bool) int32 {
	if relu {
		return quant.Requantize(c, scale, q)
	}
	v := int32(roundToEven(float64(c) * scale))
	if v < q.Qn() {
		v = q.Qn()
	}
	if v > q.Qp() {
		v = q.Qp()
	}
	return v
}

func roundToEven(x float64) float64 {
	f := float64(int64(x))
	d := x - f
	switch {
	case d > 0.5 || (d == 0.5 && int64(f)%2 != 0):
		return f + 1
	case d < -0.5 || (d == -0.5 && int64(f)%2 != 0):
		return f - 1
	}
	return f
}

func scalesClose(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= 1e-9*m
}

// ForwardFloat runs the full-precision reference path: float activations,
// dequantized ternary weights (±α), ReLU, and fake-quantization at the
// KindActQuant sites (straight-through estimate of the integer path). With
// quantizers disabled (Step == 0 is not allowed, so callers pass
// fakeQuant=false) this is the FP teacher used by the accuracy harness.
func (n *Network) ForwardFloat(in *tensor.Float, fakeQuant bool) ([]*tensor.Float, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	outs := make([]*tensor.Float, len(n.Layers))
	get := func(idx int) *tensor.Float {
		if idx == InputRef {
			return in
		}
		return outs[idx]
	}
	for i := range n.Layers {
		l := &n.Layers[i]
		x := get(l.Inputs[0])
		switch l.Kind {
		case KindConv, KindLinear:
			outs[i] = tensor.ConvFloatTernary(x, l.W.W, l.WScale, l.ConvSpec())
		case KindMaxPool:
			outs[i] = tensor.MaxPoolFloat(x, l.Pool)
		case KindGlobalAvgPool:
			outs[i] = tensor.GlobalAvgPoolFloat(x)
		case KindActQuant:
			out := x.Clone()
			if l.ReLU {
				out.ReLUFloat()
			}
			if fakeQuant {
				for j, v := range out.Data {
					out.Data[j] = l.Q.FakeQuant(v)
				}
			}
			outs[i] = out
		case KindAdd:
			out := x.Clone()
			out.AddFloat(get(l.Inputs[1]))
			outs[i] = out
		case KindFlatten:
			outs[i] = &tensor.Float{
				Shape: tensor.Shape{N: x.Shape.N, C: x.Shape.C * x.Shape.H * x.Shape.W, H: 1, W: 1},
				Data:  x.Data,
			}
		default:
			return nil, fmt.Errorf("layer %d: unknown kind %v", i, l.Kind)
		}
	}
	return outs, nil
}
