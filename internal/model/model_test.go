package model

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"rtmap/internal/tensor"
)

func randInput(seed uint64, s tensor.Shape) *tensor.Float {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	in := tensor.NewFloat(s)
	for i := range in.Data {
		in.Data[i] = float32(math.Abs(rng.NormFloat64())) * 0.5
	}
	return in
}

func TestBuildersValidate(t *testing.T) {
	cfg := DefaultConfig()
	for _, n := range []*Network{VGG9(cfg), VGG11(cfg), ResNet18(cfg), TinyCNN(cfg), TinyResNet(cfg)} {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestWeightLayerCounts(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		net        *Network
		weightLyrs int // "VGG-N" counts conv+FC layers
		convOnly   int
	}{
		{VGG9(cfg), 9, 6},
		{VGG11(cfg), 11, 8},
		{ResNet18(cfg), 21, 20}, // 20 convs (Fig. 4 x-axis) + final FC
	}
	for _, c := range cases {
		all := c.net.ConvLayers()
		convs := 0
		for _, i := range all {
			if c.net.Layers[i].Kind == KindConv {
				convs++
			}
		}
		if len(all) != c.weightLyrs {
			t.Errorf("%s: %d weight layers, want %d", c.net.Name, len(all), c.weightLyrs)
		}
		if convs != c.convOnly {
			t.Errorf("%s: %d conv layers, want %d", c.net.Name, convs, c.convOnly)
		}
	}
}

func TestResNet18Shapes(t *testing.T) {
	n := ResNet18(DefaultConfig())
	shapes := n.OutShapes(1)
	// Stem: 64×112×112 after conv1, 64×56×56 after maxpool.
	conv1 := n.LayerByName("conv1")
	if s := shapes[conv1]; s.C != 64 || s.H != 112 || s.W != 112 {
		t.Errorf("conv1 out %v, want 64x112x112", s)
	}
	mp := n.LayerByName("maxpool")
	if s := shapes[mp]; s.H != 56 {
		t.Errorf("maxpool out %v, want H=56", s)
	}
	// Final stage block output 512×7×7.
	q := n.LayerByName("layer4.1.qout")
	if s := shapes[q]; s.C != 512 || s.H != 7 || s.W != 7 {
		t.Errorf("layer4 out %v, want 512x7x7", s)
	}
	// Classifier 1000-way.
	if s := shapes[n.Output()]; s.C != 1000 || s.H != 1 || s.W != 1 {
		t.Errorf("logits %v, want 1000x1x1", s)
	}
}

func TestVGGShapes(t *testing.T) {
	n := VGG9(DefaultConfig())
	shapes := n.OutShapes(1)
	if s := shapes[n.LayerByName("flatten")]; s.C != 4096 {
		t.Errorf("VGG9 flatten C=%d, want 4096 (256*4*4)", s.C)
	}
	if s := shapes[n.Output()]; s.C != 10 {
		t.Errorf("VGG9 classes %d, want 10", s.C)
	}
	n11 := VGG11(DefaultConfig())
	shapes11 := n11.OutShapes(1)
	if s := shapes11[n11.LayerByName("flatten")]; s.C != 512 {
		t.Errorf("VGG11 flatten C=%d, want 512 (512*1*1)", s.C)
	}
}

func TestSparsityNearTarget(t *testing.T) {
	for _, sp := range []float64{0.8, 0.85, 0.9} {
		cfg := Config{ActBits: 4, Sparsity: sp, Seed: 3}
		n := VGG9(cfg)
		if got := n.WeightSparsity(); math.Abs(got-sp) > 0.02 {
			t.Errorf("sparsity %.3f, want ~%.2f", got, sp)
		}
	}
}

func TestForwardIntTinyCNN(t *testing.T) {
	n := TinyCNN(DefaultConfig())
	in := randInput(7, n.InputShape)
	tr, err := n.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	logits := tr.Logits()
	if logits.Shape.C != 4 {
		t.Fatalf("logit shape %v", logits.Shape)
	}
	// Codes at quant sites stay within their grids.
	for i := range n.Layers {
		l := &n.Layers[i]
		if l.Kind != KindActQuant {
			continue
		}
		for _, c := range tr.Outputs[i].Data {
			if c < l.Q.Qn() || c > l.Q.Qp() {
				t.Fatalf("layer %s code %d outside [%d,%d]", l.Name, c, l.Q.Qn(), l.Q.Qp())
			}
		}
	}
}

func TestForwardIntTinyResNetResidual(t *testing.T) {
	n := TinyResNet(DefaultConfig())
	in := randInput(11, n.InputShape)
	if _, err := n.ForwardInt(in); err != nil {
		t.Fatalf("residual int forward: %v", err)
	}
}

func TestForwardDeterminism(t *testing.T) {
	n := TinyCNN(DefaultConfig())
	in := randInput(13, n.InputShape)
	a, err := n.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Logits().Equal(b.Logits()) {
		t.Error("ForwardInt must be deterministic")
	}
}

func TestCalibrateTinyAndAgreement(t *testing.T) {
	n := TinyCNN(Config{ActBits: 8, Sparsity: 0.5, Seed: 5})
	var cal []*tensor.Float
	for s := uint64(0); s < 4; s++ {
		cal = append(cal, randInput(100+s, n.InputShape))
	}
	if err := Calibrate(n, cal); err != nil {
		t.Fatal(err)
	}
	// After calibration, the int path should agree with the FP teacher on
	// argmax for most inputs (8-bit activations).
	agree, total := 0, 20
	for s := 0; s < total; s++ {
		in := randInput(uint64(200+s), n.InputShape)
		fl, err := n.ForwardFloat(in, false)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := n.ForwardInt(in)
		if err != nil {
			t.Fatal(err)
		}
		fArg := fl[n.Output()].ArgmaxFloat()[0]
		iArg := tr.Logits().ArgmaxInt()[0]
		if fArg == iArg {
			agree++
		}
	}
	if agree < total*7/10 {
		t.Errorf("8-bit int path agrees on %d/%d argmax; want >= 70%%", agree, total)
	}
}

func TestCalibrateSharedGrids(t *testing.T) {
	n := TinyResNet(Config{ActBits: 6, Sparsity: 0.5, Seed: 9})
	cal := []*tensor.Float{randInput(31, n.InputShape), randInput(32, n.InputShape)}
	if err := Calibrate(n, cal); err != nil {
		t.Fatal(err)
	}
	// qmain and qskip of each block must share a step.
	for _, blk := range []string{"block1", "block2"} {
		m := n.Layers[n.LayerByName(blk+".qmain")].Q.Step
		s := n.Layers[n.LayerByName(blk+".qskip")].Q.Step
		if m != s {
			t.Errorf("%s: qmain step %g != qskip step %g", blk, m, s)
		}
	}
	if _, err := n.ForwardInt(randInput(33, n.InputShape)); err != nil {
		t.Fatalf("int forward after calibration: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	n := TinyResNet(DefaultConfig())
	cal := []*tensor.Float{randInput(41, n.InputShape)}
	if err := Calibrate(n, cal); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(42, n.InputShape)
	a, err := n.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ForwardInt(in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Logits().Equal(b.Logits()) {
		t.Error("JSON round-trip changed network behaviour")
	}
}

func TestOutShapesAddAndFlatten(t *testing.T) {
	n := TinyResNet(DefaultConfig())
	shapes := n.OutShapes(2)
	for i, l := range n.Layers {
		if l.Kind == KindAdd {
			a := l.Inputs[0]
			if shapes[i] != shapes[a] {
				t.Errorf("add shape %v != input shape %v", shapes[i], shapes[a])
			}
		}
		if shapes[i].N != 2 {
			t.Errorf("layer %d batch %d, want 2", i, shapes[i].N)
		}
	}
}

func TestValidateCatchesBadGraph(t *testing.T) {
	n := TinyCNN(DefaultConfig())
	n.Layers[2].Inputs = []int{5} // forward reference
	if err := n.Validate(); err == nil {
		t.Error("Validate must reject forward references")
	}
}
