package model

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rtmap/internal/quant"
	"rtmap/internal/tensor"
	"rtmap/internal/ternary"
)

// The JSON model format is the repository's stand-in for the ONNX import
// in Fig. 3a of the paper: a self-contained serialization of a trained,
// ternarized, quantization-annotated network. Weights are stored as
// base64-encoded bytes with the mapping {0→0, 1→+1, 2→−1}.

type jsonQuant struct {
	Bits   int     `json:"bits"`
	Step   float32 `json:"step"`
	Signed bool    `json:"signed,omitempty"`
}

type jsonLayer struct {
	Kind    string     `json:"kind"`
	Name    string     `json:"name"`
	Inputs  []int      `json:"inputs"`
	Cout    int        `json:"cout,omitempty"`
	Cin     int        `json:"cin,omitempty"`
	Fh      int        `json:"fh,omitempty"`
	Fw      int        `json:"fw,omitempty"`
	Weights []byte     `json:"weights,omitempty"`
	WScale  float32    `json:"wscale,omitempty"`
	Stride  int        `json:"stride,omitempty"`
	Pad     int        `json:"pad,omitempty"`
	PoolK   int        `json:"pool_k,omitempty"`
	PoolS   int        `json:"pool_stride,omitempty"`
	PoolP   int        `json:"pool_pad,omitempty"`
	Quant   *jsonQuant `json:"quant,omitempty"`
	ReLU    bool       `json:"relu,omitempty"`
	ShareID int        `json:"share_id,omitempty"`
}

type jsonNetwork struct {
	Format string      `json:"format"`
	Name   string      `json:"name"`
	Input  [4]int      `json:"input_nchw"`
	InputQ jsonQuant   `json:"input_quant"`
	Layers []jsonLayer `json:"layers"`
}

const formatTag = "rtmap-twn-v1"

// encodeTernary packs ternary weights into the {0→0, +1→1, −1→2} byte
// coding. A non-ternary value is an error, not a panic: corrupted weights
// reach this path through data (a model loaded from disk, a buggy
// builder), and serialization must fail cleanly rather than crash a
// serving process.
func encodeTernary(w []int8) ([]byte, error) {
	b := make([]byte, len(w))
	for i, v := range w {
		switch v {
		case 0:
			b[i] = 0
		case 1:
			b[i] = 1
		case -1:
			b[i] = 2
		default:
			return nil, fmt.Errorf("model: non-ternary weight %d at %d", v, i)
		}
	}
	return b, nil
}

func decodeTernary(b []byte) ([]int8, error) {
	w := make([]int8, len(b))
	for i, v := range b {
		switch v {
		case 0:
			w[i] = 0
		case 1:
			w[i] = 1
		case 2:
			w[i] = -1
		default:
			return nil, fmt.Errorf("model: invalid ternary byte %d at %d", v, i)
		}
	}
	return w, nil
}

// WriteJSON serializes the network.
func (n *Network) WriteJSON(w io.Writer) error {
	jn := jsonNetwork{
		Format: formatTag,
		Name:   n.Name,
		Input:  [4]int{n.InputShape.N, n.InputShape.C, n.InputShape.H, n.InputShape.W},
		InputQ: jsonQuant{Bits: n.InputQ.Bits, Step: n.InputQ.Step, Signed: n.InputQ.Signed},
	}
	for i := range n.Layers {
		l := &n.Layers[i]
		jl := jsonLayer{Kind: l.Kind.String(), Name: l.Name, Inputs: l.Inputs}
		switch l.Kind {
		case KindConv, KindLinear:
			jl.Cout, jl.Cin, jl.Fh, jl.Fw = l.W.Cout, l.W.Cin, l.W.Fh, l.W.Fw
			wb, err := encodeTernary(l.W.W)
			if err != nil {
				return fmt.Errorf("model: layer %d (%s): %w", i, l.Name, err)
			}
			jl.Weights = wb
			jl.WScale = l.WScale
			jl.Stride, jl.Pad = l.Stride, l.Pad
		case KindMaxPool:
			jl.PoolK, jl.PoolS, jl.PoolP = l.Pool.K, l.Pool.Stride, l.Pool.Pad
		case KindActQuant:
			jl.Quant = &jsonQuant{Bits: l.Q.Bits, Step: l.Q.Step, Signed: l.Q.Signed}
			jl.ReLU = l.ReLU
			jl.ShareID = l.ShareID
		}
		jn.Layers = append(jn.Layers, jl)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jn)
}

// ReadJSON deserializes a network written by WriteJSON.
func ReadJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	if err := json.NewDecoder(r).Decode(&jn); err != nil {
		return nil, fmt.Errorf("model: decoding: %w", err)
	}
	if jn.Format != formatTag {
		return nil, fmt.Errorf("model: unknown format %q", jn.Format)
	}
	n := &Network{
		Name:       jn.Name,
		InputShape: tensor.Shape{N: jn.Input[0], C: jn.Input[1], H: jn.Input[2], W: jn.Input[3]},
		InputQ:     quant.Quantizer{Bits: jn.InputQ.Bits, Step: jn.InputQ.Step, Signed: jn.InputQ.Signed},
	}
	kinds := map[string]Kind{}
	for k, s := range kindNames {
		kinds[s] = k
	}
	for i, jl := range jn.Layers {
		k, ok := kinds[jl.Kind]
		if !ok {
			return nil, fmt.Errorf("model: layer %d: unknown kind %q", i, jl.Kind)
		}
		l := Layer{Kind: k, Name: jl.Name, Inputs: jl.Inputs}
		switch k {
		case KindConv, KindLinear:
			wvals, err := decodeTernary(jl.Weights)
			if err != nil {
				return nil, fmt.Errorf("model: layer %d: %w", i, err)
			}
			l.W = &ternary.Weights{Cout: jl.Cout, Cin: jl.Cin, Fh: jl.Fh, Fw: jl.Fw, W: wvals}
			l.WScale = jl.WScale
			l.Stride, l.Pad = jl.Stride, jl.Pad
		case KindMaxPool:
			l.Pool = tensor.PoolSpec{K: jl.PoolK, Stride: jl.PoolS, Pad: jl.PoolP}
		case KindActQuant:
			if jl.Quant == nil {
				return nil, fmt.Errorf("model: layer %d: actquant without quantizer", i)
			}
			l.Q = quant.Quantizer{Bits: jl.Quant.Bits, Step: jl.Quant.Step, Signed: jl.Quant.Signed}
			l.ReLU = jl.ReLU
			l.ShareID = jl.ShareID
		}
		n.Layers = append(n.Layers, l)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// SaveFile writes the network to path as JSON.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.WriteJSON(f)
}

// LoadFile reads a network from a JSON file.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
