// Package model defines the network intermediate representation consumed by
// the RTM-AP compiler: a DAG of layers with ternary weights and explicit
// activation-quantization points, plus reference float and integer
// inference paths, the paper's model zoo (VGG-9, VGG-11, ResNet-18) and a
// compact JSON serialization standing in for the ONNX import of Fig. 3a.
package model
