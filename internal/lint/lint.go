package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one lint violation, anchored to a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// srcFile is one parsed source file plus the facts the analyzers need:
// its package name and the lines carrying per-rule suppression markers.
type srcFile struct {
	path         string
	pkg          string
	ast          *ast.File
	fset         *token.FileSet
	allocOK      map[int]bool // //rtmap:alloc-ok
	wallclockOK  map[int]bool // //rtmap:wallclock-ok
	lockedSendOK map[int]bool // //rtmap:locked-send-ok
}

// Run lints every Go package under the given patterns (a directory, or
// `dir/...` for a recursive walk; `./...` covers the whole tree) and
// returns the findings sorted by position. Test files are not linted:
// the rules protect production invariants (hot-path allocation, panic
// conventions, dispatch exhaustiveness), and tests legitimately violate
// all three.
func Run(patterns []string) ([]Finding, error) {
	dirs, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*srcFile
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, &srcFile{
				path: path, pkg: f.Name.Name, ast: f, fset: fset,
				allocOK:      markedLines(fset, f, "rtmap:alloc-ok"),
				wallclockOK:  markedLines(fset, f, "rtmap:wallclock-ok"),
				lockedSendOK: markedLines(fset, f, "rtmap:locked-send-ok"),
			})
		}
	}

	enums := collectEnums(files)
	var out []Finding
	report := func(pos token.Pos, rule, format string, args ...any) {
		out = append(out, Finding{
			Pos: fset.Position(pos), Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		checkExhaustive(f, enums, report)
		checkNoAlloc(f, report)
		checkConventions(f, report)
		checkClockDiscipline(f, report)
		checkLockedSends(f, report)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// expand resolves the package patterns to the set of directories to
// lint. Hidden directories, testdata trees and underscore-prefixed
// directories are skipped, matching the go tool's ./... semantics.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if clean := filepath.Clean(dir); !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			root = strings.TrimSuffix(pat, "...")
			root = strings.TrimSuffix(root, string(filepath.Separator))
			root = strings.TrimSuffix(root, "/")
			if root == "" || root == "." {
				root = "."
			}
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// markedLines returns the source lines carrying the given //rtmap:...
// suppression marker (the line of the comment itself; a trailing
// comment shares the line of the code it excuses).
func markedLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//"+marker) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
