package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// checkConventions enforces the panic-vs-wrapped-error convention from
// ARCHITECTURE.md:
//
//   - panics are internal invariant failures and their message must
//     carry the "<pkg>: " prefix so a crash names its subsystem
//     (package main is exempt: its panics surface through the CLI);
//   - input errors wrap their cause — fmt.Errorf formatting an `err`
//     value must use %w, not %v, so errors.Is/As keep working across
//     the layer boundary.
func checkConventions(f *srcFile, report func(token.Pos, string, string, ...any)) {
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && len(call.Args) == 1 {
			checkPanicMessage(f, call, report)
			return true
		}
		if isPkgCall(call, "fmt", "Errorf") {
			checkErrorfWrap(call, report)
		}
		return true
	})
}

// checkPanicMessage verifies the panic message (a string literal, or
// the format of an fmt.Sprintf argument) starts with "<pkg>: ".
func checkPanicMessage(f *srcFile, call *ast.CallExpr, report func(token.Pos, string, string, ...any)) {
	if f.pkg == "main" {
		return
	}
	msg, ok := literalString(call.Args[0])
	if !ok {
		if inner, isCall := call.Args[0].(*ast.CallExpr); isCall && isPkgCall(inner, "fmt", "Sprintf") && len(inner.Args) > 0 {
			msg, ok = literalString(inner.Args[0])
		}
	}
	if !ok {
		return // non-literal panic value (rethrown error, sentinel)
	}
	if !strings.HasPrefix(msg, f.pkg+": ") {
		report(call.Pos(), "panic-prefix",
			"panic message %q must start with %q (internal invariants name their subsystem)",
			msg, f.pkg+": ")
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format an error value
// without %w: the cause becomes opaque text and errors.Is/As stop
// seeing it. The error operand is recognized syntactically — an
// identifier named err/xxxErr, or a selector/index of one.
func checkErrorfWrap(call *ast.CallExpr, report func(token.Pos, string, string, ...any)) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := literalString(call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrValue(arg) {
			report(call.Pos(), "errorf-wrap",
				"fmt.Errorf formats an error value without %%w; wrap it so errors.Is/As see the cause")
			return
		}
	}
}

// isErrValue reports whether an expression syntactically names an error
// value: `err`, `fooErr`, `e.err`, `errs[i]`.
func isErrValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "err" || strings.HasSuffix(x.Name, "Err")
	case *ast.SelectorExpr:
		return isErrValue(x.Sel)
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name == "errs"
		}
	}
	return false
}

// isPkgCall reports whether call is pkg.Name(...).
func isPkgCall(call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// literalString returns the value of a string literal expression.
func literalString(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
