package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// enforcedEnumTypes are the enum type names whose switches must be
// exhaustive. These are the interpreter dispatch enums: a member added
// to one of them without updating every switch silently executes as a
// no-op, which is exactly the bug class the plan verifier's coverage
// invariant guards at runtime — this rule guards it at lint time.
var enforcedEnumTypes = map[string]bool{
	"Opcode":   true, // ap.Opcode
	"planKind": true, // ap plan op kinds
}

// enumSet is one enforced enumeration: its type name and declared
// members, in declaration order.
type enumSet struct {
	typeName string
	members  []string
	member   map[string]bool
}

// collectEnums finds the const groups declaring enforced enum types
// (`Name Type = iota` followed by bare members) across every parsed
// file and returns them keyed by member name, so a switch's case labels
// identify the enum they dispatch on without type information.
func collectEnums(files []*srcFile) map[string]*enumSet {
	byMember := map[string]*enumSet{}
	for _, f := range files {
		for _, decl := range f.ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			var cur *enumSet
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if vs.Type != nil {
					id, ok := vs.Type.(*ast.Ident)
					if ok && enforcedEnumTypes[id.Name] {
						if cur == nil || cur.typeName != id.Name {
							cur = &enumSet{typeName: id.Name, member: map[string]bool{}}
						}
					} else {
						cur = nil
						continue
					}
				}
				if cur == nil {
					continue
				}
				for _, n := range vs.Names {
					if n.Name == "_" {
						continue
					}
					cur.members = append(cur.members, n.Name)
					cur.member[n.Name] = true
					byMember[n.Name] = cur
				}
			}
		}
	}
	return byMember
}

// caseBaseName resolves a case label to the member name it references:
// a plain identifier (same-package member) or the selector of a
// qualified one (ap.OpAdd).
func caseBaseName(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		return x.Sel.Name, true
	}
	return "", false
}

// checkExhaustive flags switch statements dispatching on an enforced
// enum (every case label is a member of the same enum) that neither
// cover all members nor declare a default case.
func checkExhaustive(f *srcFile, enums map[string]*enumSet, report func(token.Pos, string, string, ...any)) {
	ast.Inspect(f.ast, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		var enum *enumSet
		covered := map[string]bool{}
		hasDefault := false
		labels := 0
		for _, stmt := range sw.Body.List {
			cc := stmt.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range cc.List {
				name, ok := caseBaseName(e)
				if !ok {
					return true // computed label: not an enum dispatch
				}
				es, ok := enums[name]
				if !ok || (enum != nil && es != enum) {
					return true // labels outside one enforced enum
				}
				enum = es
				covered[name] = true
				labels++
			}
		}
		if enum == nil || labels == 0 || hasDefault {
			return true
		}
		var missing []string
		for _, m := range enum.members {
			if !covered[m] {
				missing = append(missing, m)
			}
		}
		if len(missing) > 0 {
			report(sw.Switch, "exhaustive",
				"switch over %s is not exhaustive: missing %s (cover them or add a default case)",
				enum.typeName, strings.Join(missing, ", "))
		}
		return true
	})
}
