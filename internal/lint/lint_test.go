package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSrc writes src as a single-file package in a temp dir and lints it.
func lintSrc(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func wantRules(t *testing.T, findings []Finding, rules ...string) {
	t.Helper()
	if len(findings) != len(rules) {
		t.Fatalf("got %d findings %v, want rules %v", len(findings), findings, rules)
	}
	for i, r := range rules {
		if findings[i].Rule != r {
			t.Errorf("finding %d = %v, want rule %s", i, findings[i], r)
		}
	}
}

const enumDecl = `
type Opcode uint8
const (
	OpA Opcode = iota
	OpB
	OpC
)
`

func TestExhaustiveSwitch(t *testing.T) {
	missing := lintSrc(t, "package p\n"+enumDecl+`
func f(o Opcode) int {
	switch o {
	case OpA:
		return 1
	case OpB:
		return 2
	}
	return 0
}
`)
	wantRules(t, missing, "exhaustive")
	if !strings.Contains(missing[0].Msg, "OpC") {
		t.Errorf("message should name the missing member: %v", missing[0])
	}

	covered := lintSrc(t, "package p\n"+enumDecl+`
func f(o Opcode) int {
	switch o {
	case OpA, OpB:
		return 1
	case OpC:
		return 2
	}
	return 0
}
`)
	wantRules(t, covered)

	defaulted := lintSrc(t, "package p\n"+enumDecl+`
func f(o Opcode) int {
	switch o {
	case OpA:
		return 1
	default:
		return 0
	}
}
`)
	wantRules(t, defaulted)

	// A switch over an unenforced type is never flagged.
	other := lintSrc(t, `package p
type Kind uint8
const (
	KindA Kind = iota
	KindB
)
func f(k Kind) int {
	switch k {
	case KindA:
		return 1
	}
	return 0
}
`)
	wantRules(t, other)
}

func TestExhaustiveQualifiedLabels(t *testing.T) {
	// The switch lives in another package and references members through
	// a selector; the enum is identified by case-label membership.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "enum.go"),
		[]byte("package p\n"+enumDecl), 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "q")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "use.go"), []byte(`package q
import "x/p"
func f(o p.Opcode) int {
	switch o {
	case p.OpA, p.OpB:
		return 1
	}
	return 0
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]string{dir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	wantRules(t, findings, "exhaustive")
	if !strings.Contains(findings[0].Msg, "OpC") {
		t.Errorf("message should name the missing member: %v", findings[0])
	}
}

func TestNoAlloc(t *testing.T) {
	flagged := lintSrc(t, `package p
//rtmap:noalloc
func hot(xs []int) []int {
	ys := make([]int, len(xs))
	ys = append(ys, 1)
	m := map[int]int{}
	_ = m
	go func() {}()
	return ys
}
`)
	// make, append, composite literal, go statement (its own rule), func
	// literal.
	wantRules(t, flagged, "noalloc", "noalloc", "noalloc", "noalloc-go", "noalloc")

	suppressed := lintSrc(t, `package p
//rtmap:noalloc
func hot(xs []int) []int {
	xs = append(xs, 1) //rtmap:alloc-ok — reuses capacity
	return xs
}
`)
	wantRules(t, suppressed)

	panicOK := lintSrc(t, `package p
import "fmt"
//rtmap:noalloc
func hot(n int) {
	if n < 0 {
		panic(fmt.Sprintf("p: bad n %d", n))
	}
}
`)
	wantRules(t, panicOK)

	// Without the directive nothing is enforced; prose mentioning the
	// annotation is not a directive.
	unmarked := lintSrc(t, `package p
// cold allocates; see //rtmap:noalloc elsewhere.
func cold() []int { return make([]int, 8) }
`)
	wantRules(t, unmarked)
}

// The goroutine-spawn rule has no suppression marker: //rtmap:alloc-ok
// excuses the closure allocation but never the go statement itself.
func TestNoAllocGoNotSuppressible(t *testing.T) {
	findings := lintSrc(t, `package p
func work() {}
//rtmap:noalloc
func hot() {
	go work() //rtmap:alloc-ok — does not apply to goroutine spawns
}
`)
	wantRules(t, findings, "noalloc-go")
}

func TestClockDiscipline(t *testing.T) {
	flagged := lintSrc(t, `package dispatch
import "time"
func f() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
`)
	wantRules(t, flagged, "wallclock", "wallclock")
	if !strings.Contains(flagged[0].Msg, "time.Sleep") || !strings.Contains(flagged[1].Msg, "time.Now") {
		t.Errorf("messages should name the call: %v", flagged)
	}

	suppressed := lintSrc(t, `package dispatch
import "time"
func f() time.Time { return time.Now() } //rtmap:wallclock-ok
`)
	wantRules(t, suppressed)

	// Clock arithmetic and constants are fine; only wall-clock reads and
	// timers are gated. Other packages are out of scope.
	clean := lintSrc(t, `package dispatch
import "time"
func f(t time.Time, d time.Duration) time.Time { return t.Add(d * time.Millisecond) }
`)
	wantRules(t, clean)
	elsewhere := lintSrc(t, `package serve
import "time"
func f() time.Time { return time.Now() }
`)
	wantRules(t, elsewhere)
}

func TestLockedSends(t *testing.T) {
	flagged := lintSrc(t, `package serve
import "sync"
type s struct {
	mu sync.Mutex
	ch chan int
}
func (x *s) f() {
	x.mu.Lock()
	x.ch <- 1
	x.mu.Unlock()
}
`)
	wantRules(t, flagged, "locked-send")
	if !strings.Contains(flagged[0].Msg, "x.mu") {
		t.Errorf("message should name the held mutex: %v", flagged[0])
	}

	// Unlocking before the send, read locks, goroutine bodies, and
	// deliberate suppressions are all clean.
	clean := lintSrc(t, `package serve
import "sync"
type s struct {
	mu      sync.Mutex
	closeMu sync.RWMutex
	ch      chan int
}
func (x *s) unlockFirst() {
	x.mu.Lock()
	n := 1
	x.mu.Unlock()
	x.ch <- n
}
func (x *s) readLocked() {
	x.closeMu.RLock()
	defer x.closeMu.RUnlock()
	x.ch <- 1
}
func (x *s) ownGoroutine() {
	x.mu.Lock()
	go func() { x.ch <- 1 }()
	x.mu.Unlock()
}
func (x *s) deliberate() {
	x.mu.Lock()
	x.ch <- 1 //rtmap:locked-send-ok — buffered, capacity proven elsewhere
	x.mu.Unlock()
}
`)
	wantRules(t, clean)

	// Submit calls send internally; branch bodies inherit the held set,
	// select sends are sends.
	nested := lintSrc(t, `package serve
import "sync"
type fleet struct{}
func (*fleet) Submit(int) {}
type s struct {
	mu sync.Mutex
	fl *fleet
	ch chan int
}
func (x *s) f(cond bool) {
	x.mu.Lock()
	if cond {
		x.fl.Submit(1)
	}
	select {
	case x.ch <- 2:
	default:
	}
	x.mu.Unlock()
}
`)
	wantRules(t, nested, "locked-send", "locked-send")

	// A deferred Unlock keeps the lock held for the whole body.
	deferred := lintSrc(t, `package serve
import "sync"
type s struct {
	mu sync.Mutex
	ch chan int
}
func (x *s) f() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ch <- 1
}
`)
	wantRules(t, deferred, "locked-send")
}

func TestConventions(t *testing.T) {
	badPanic := lintSrc(t, `package p
func f() { panic("wrong prefix") }
`)
	wantRules(t, badPanic, "panic-prefix")

	goodPanic := lintSrc(t, `package p
import "fmt"
func f() { panic("p: broken invariant") }
func g(n int) { panic(fmt.Sprintf("p: bad n %d", n)) }
func h(err error) { panic(err) }
`)
	wantRules(t, goodPanic)

	mainExempt := lintSrc(t, `package main
func f() { panic("anything goes") }
`)
	wantRules(t, mainExempt)

	badWrap := lintSrc(t, `package p
import "fmt"
func f(err error) error { return fmt.Errorf("doing x: %v", err) }
`)
	wantRules(t, badWrap, "errorf-wrap")

	goodWrap := lintSrc(t, `package p
import "fmt"
func f(err error) error { return fmt.Errorf("doing x: %w", err) }
func g(name string) error { return fmt.Errorf("no model %q", name) }
`)
	wantRules(t, goodWrap)
}

func TestTestFilesSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f_test.go"), []byte(`package p
func f() { panic("no prefix, but tests are exempt") }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	wantRules(t, findings)
}

// TestRepoIsClean is the CI gate in test form: the tree must lint clean.
func TestRepoIsClean(t *testing.T) {
	findings, err := Run([]string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
