package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// wallclockCalls are the time-package entry points that read or arm the
// process wall clock. internal/dispatch must not call them: the
// scheduler's deadline and pacing logic runs on an injectable Clock so
// tests can drive it deterministically, and one stray time.Now turns a
// reproducible schedule into a flaky one.
var wallclockCalls = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// checkClockDiscipline enforces the injectable-clock rule in package
// dispatch: no direct time-package wall-clock calls. The one legitimate
// site — the RealClock adapter itself — carries //rtmap:wallclock-ok.
func checkClockDiscipline(f *srcFile, report func(token.Pos, string, string, ...any)) {
	if f.pkg != "dispatch" {
		return
	}
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "time" || !wallclockCalls[sel.Sel.Name] {
			return true
		}
		if f.wallclockOK[f.fset.Position(call.Pos()).Line] {
			return true
		}
		report(call.Pos(), "wallclock",
			"time.%s in package dispatch: use the injectable Clock (suppress the clock adapter itself with //rtmap:wallclock-ok)",
			sel.Sel.Name)
		return true
	})
}

// checkLockedSends enforces the no-send-under-mutex rule in package
// serve: a channel send (or a Submit call, which sends internally) while
// an exclusive mutex is held can deadlock the server — the receiver may
// need the same lock to drain. The analysis is a statement-order scan of
// each function body tracking `x.mu.Lock()` / `x.mu.Unlock()` pairs on
// receivers whose final selector names a mutex ("mu" or a "...Mu"
// suffix). Read locks are deliberately ignored: the batcher and fleet
// send under RLock on purpose (the read side only fences close()).
// Branch bodies scan a copy of the held set; go/defer function literals
// start empty (they run on another goroutine / after the unlocks).
// Deliberate exceptions carry //rtmap:locked-send-ok.
func checkLockedSends(f *srcFile, report func(token.Pos, string, string, ...any)) {
	if f.pkg != "serve" {
		return
	}
	for _, decl := range f.ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		scanStmts(f, fd.Body.List, map[string]bool{}, report)
	}
}

// scanStmts walks a statement list in order, maintaining the set of
// exclusively held mutexes.
func scanStmts(f *srcFile, stmts []ast.Stmt, held map[string]bool, report func(token.Pos, string, string, ...any)) {
	for _, s := range stmts {
		scanStmt(f, s, held, report)
	}
}

// copyHeld snapshots the held set for a branch body.
func copyHeld(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func scanStmt(f *srcFile, s ast.Stmt, held map[string]bool, report func(token.Pos, string, string, ...any)) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		scanStmts(f, x.List, held, report)
	case *ast.LabeledStmt:
		scanStmt(f, x.Stmt, held, report)
	case *ast.IfStmt:
		if x.Init != nil {
			scanStmt(f, x.Init, held, report)
		}
		scanStmt(f, x.Body, copyHeld(held), report)
		if x.Else != nil {
			scanStmt(f, x.Else, copyHeld(held), report)
		}
	case *ast.ForStmt:
		scanStmt(f, x.Body, copyHeld(held), report)
	case *ast.RangeStmt:
		scanStmt(f, x.Body, copyHeld(held), report)
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			h := copyHeld(held)
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				flagIfHeld(f, send.Pos(), h, report)
			}
			scanStmts(f, cc.Body, h, report)
		}
	case *ast.GoStmt:
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			scanStmts(f, lit.Body.List, map[string]bool{}, report)
		}
	case *ast.DeferStmt:
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			scanStmts(f, lit.Body.List, map[string]bool{}, report)
		}
		// Deferred Lock/Unlock calls run at function exit, not here.
	case *ast.ExprStmt:
		if recv, locking, ok := mutexCall(x.X); ok {
			if locking {
				held[recv] = true
			} else {
				delete(held, recv)
			}
			return
		}
		scanLeaf(f, s, held, report)
	default:
		scanLeaf(f, s, held, report)
	}
}

// scanLeaf inspects one non-control-flow statement for sends and Submit
// calls, without descending into nested function literals (their bodies
// run with their own lock context and are scanned separately where the
// goroutine is spawned).
func scanLeaf(f *srcFile, s ast.Stmt, held map[string]bool, report func(token.Pos, string, string, ...any)) {
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			scanStmt(f, x.Init, held, report)
		}
		for _, c := range x.Body.List {
			scanStmts(f, c.(*ast.CaseClause).Body, copyHeld(held), report)
		}
		return
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			scanStmts(f, c.(*ast.CaseClause).Body, copyHeld(held), report)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			flagIfHeld(f, x.Pos(), held, report)
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Submit" {
				flagIfHeld(f, x.Pos(), held, report)
			}
		}
		return true
	})
}

// flagIfHeld reports a send executed with exclusive mutexes held.
func flagIfHeld(f *srcFile, pos token.Pos, held map[string]bool, report func(token.Pos, string, string, ...any)) {
	if len(held) == 0 || f.lockedSendOK[f.fset.Position(pos).Line] {
		return
	}
	names := make([]string, 0, len(held))
	for m := range held {
		names = append(names, m)
	}
	sort.Strings(names)
	report(pos, "locked-send",
		"channel send while holding %s: sending under an exclusive lock can deadlock the drain path (suppress a provably non-blocking case with //rtmap:locked-send-ok)",
		strings.Join(names, ", "))
}

// mutexCall decodes `recv.Lock()` / `recv.Unlock()` calls on mutex-named
// receivers, returning the receiver expression's source form and whether
// it acquires. RLock/RUnlock are not mutex calls here (see
// checkLockedSends).
func mutexCall(e ast.Expr) (recv string, locking, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		locking = true
	case "Unlock":
	default:
		return "", false, false
	}
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel || !mutexName(inner.Sel.Name) {
		return "", false, false
	}
	return exprString(inner), locking, true
}

// mutexName reports whether an identifier names a mutex by the
// project's convention: "mu" exactly, or a "...Mu" suffix.
func mutexName(name string) bool {
	return name == "mu" || strings.HasSuffix(name, "Mu")
}

// exprString renders a selector chain (`f.mu`, `b.e.pipeMu`) for held-set
// keys and messages; non-selector shapes degrade to a fixed token.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	default:
		return "?"
	}
}
