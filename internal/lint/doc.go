// Package lint implements rtmap's project-specific static analyzers,
// run by cmd/rtmap-vet as a CI gate. It is purely syntactic (go/ast on
// stdlib only — the module stays dependency-free) and enforces three
// invariants the compiler and runtime rely on:
//
//   - exhaustive: switches dispatching on the interpreter enums
//     (ap.Opcode, plan op kinds) must cover every member or declare a
//     default case, so adding an opcode cannot silently no-op;
//   - noalloc: functions annotated //rtmap:noalloc (the batch hot
//     path) must not contain allocating constructs; provably amortized
//     lines opt out with //rtmap:alloc-ok, and panic arguments are
//     exempt as cold paths;
//   - noalloc-go: //rtmap:noalloc bodies must not spawn goroutines —
//     no suppression marker exists for this one;
//   - conventions: panic messages carry their "<pkg>: " subsystem
//     prefix, and fmt.Errorf wraps error values with %w, matching the
//     panic-vs-wrapped-error boundary documented in ARCHITECTURE.md;
//   - wallclock: package dispatch must not read the process wall clock
//     directly (time.Now, time.Sleep, timers) — scheduling runs on an
//     injectable Clock so tests are deterministic; the RealClock
//     adapter itself is marked //rtmap:wallclock-ok;
//   - locked-send: package serve must not send on a channel (or call
//     Submit, which sends internally) while holding an exclusive
//     mutex — the receiver may need the same lock to drain. Read locks
//     are exempt by design; deliberate cases carry
//     //rtmap:locked-send-ok.
//
// Test files are not linted: the rules protect production invariants
// that tests legitimately violate.
package lint
