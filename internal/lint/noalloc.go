package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// checkNoAlloc enforces the //rtmap:noalloc annotation: a function so
// marked is on the batch hot path and must not allocate per call. The
// rule is syntactic and deliberately conservative about what it flags —
// constructs that always or usually allocate:
//
//   - append, make, new calls
//   - composite literals (slice/map/struct values built per call)
//   - function literals (closures capture and escape)
//   - go statements (goroutine stacks) — reported under the separate,
//     non-suppressible noalloc-go rule
//
// Escape hatches: expressions feeding a panic are cold by definition
// and are skipped wholesale (panic(fmt.Sprintf(...)) is fine), and a
// line carrying //rtmap:alloc-ok is excused — for amortized cases like
// scratch slices that reuse capacity at steady state. Go statements
// have no escape hatch: a hot path that spawns goroutines has lost its
// latency guarantee regardless of amortization.
func checkNoAlloc(f *srcFile, report func(token.Pos, string, string, ...any)) {
	for _, decl := range f.ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !hasDirective(fd.Doc, "rtmap:noalloc") {
			continue
		}
		name := fd.Name.Name
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			flag := func(what string) {
				if f.allocOK[f.fset.Position(n.Pos()).Line] {
					return
				}
				report(n.Pos(), "noalloc",
					"%s in //rtmap:noalloc function %s (suppress a provably amortized case with //rtmap:alloc-ok)",
					what, name)
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "panic":
						return false // cold path: the argument may allocate
					case "append", "make", "new":
						flag(id.Name + " allocates")
					}
				}
			case *ast.CompositeLit:
				flag("composite literal allocates")
			case *ast.FuncLit:
				flag("function literal (closure) allocates")
				return false
			case *ast.GoStmt:
				// Not suppressible: spawning a goroutine per call is never
				// amortized, and a hot-path function that hands work to
				// another goroutine has lost its latency guarantee outright.
				report(n.Pos(), "noalloc-go",
					"go statement in //rtmap:noalloc function %s: hot-path functions must not spawn goroutines", name)
			}
			return true
		}
		ast.Inspect(fd.Body, walk)
	}
}

// hasDirective reports whether a doc comment group carries the given
// machine directive: a line in the exact `//rtmap:...` form (no space
// after the slashes), so prose that merely mentions the annotation
// does not count.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//"+directive) {
			return true
		}
	}
	return false
}
