package dataflow

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/verify"
)

// CertVersion is the PlanCertificate format version. Bump on any change
// to the facts a certificate records; stored certificates of another
// version never validate, so stale formats re-verify instead of being
// trusted.
const CertVersion = 1

// LayerFact is one certified cross-layer fact: the value interval and
// storage format of a layer's output activations, plus the proved-safe
// accumulator width for conv/linear layers. These are the strengthened
// ranges downstream consumers (serve admission today, the bit-sliced
// JIT interpreter tomorrow) may assume without re-deriving.
type LayerFact struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	Class    string `json:"class"`
	Lo       int64  `json:"lo"`
	Hi       int64  `json:"hi"`
	Bits     int    `json:"bits"`
	Unsigned bool   `json:"unsigned"`
	AccWidth int    `json:"acc_width,omitempty"`
}

// Certificate is the machine-readable proof a clean Check emits: the
// artifact it certifies (content-addressed through core.ArtifactHash),
// how many tile programs the audit covered, and the per-layer facts.
// A certificate is only ever produced for an artifact the full
// verification passed on, so holding one is holding the proof.
type Certificate struct {
	Version  int         `json:"version"`
	Artifact string      `json:"artifact"`
	Model    string      `json:"model"`
	Programs int         `json:"programs"`
	Layers   []LayerFact `json:"layers"`
}

// newCertificate records the derived facts of a clean artifact.
func newCertificate(comp *core.Compiled, bands []band) *Certificate {
	cert := &Certificate{
		Version:  CertVersion,
		Artifact: hex.EncodeToString(artifactKey(comp)),
		Model:    modelName(comp),
	}
	for i, plan := range comp.Layers {
		fact := LayerFact{
			Index: i, Name: plan.Name, Class: plan.Class.String(),
			Lo: bands[i].Lo, Hi: bands[i].Hi,
			Bits: bands[i].Bits, Unsigned: bands[i].Unsigned,
		}
		if plan.Class == core.ClassConv {
			fact.AccWidth = plan.AccWidth
		}
		cert.Layers = append(cert.Layers, fact)
		for s := range plan.StripPlans {
			cert.Programs += len(plan.StripPlans[s].Programs)
		}
	}
	return cert
}

// artifactKey returns the artifact hash as a byte slice.
func artifactKey(comp *core.Compiled) []byte {
	key := core.ArtifactHash(comp)
	return key[:]
}

// Encode serializes the certificate as indented JSON — the format
// rtmap-vet -certs-out writes and CI uploads.
func (c *Certificate) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dataflow: encoding certificate: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeCertificate parses an encoded certificate. Decoding performs
// only structural validation; call Validate against the compiled
// artifact to check the facts.
func DecodeCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("dataflow: decoding certificate: %w", err)
	}
	if c.Version <= 0 || c.Artifact == "" {
		return nil, fmt.Errorf("dataflow: certificate missing version or artifact hash")
	}
	return &c, nil
}

// Validate re-runs the full verification over comp and proves the
// certificate matches: same format version, same artifact hash, and
// fact-for-fact identical derived ranges. Any disagreement — a
// corrupted certificate, or one that certifies a different artifact —
// is a *verify.Error under the dataflow-certificate invariant.
func (c *Certificate) Validate(comp *core.Compiled) error {
	fresh, err := Check(comp)
	if err != nil {
		return err
	}
	var diags []verify.Diagnostic
	flag := func(layer int, format string, args ...any) {
		diags = append(diags, verify.Diagnostic{
			Model: modelName(comp), Layer: layer, Strip: -1, Tile: -1, Op: -1,
			Invariant: InvCertificate, Detail: fmt.Sprintf(format, args...),
		})
	}
	if c.Version != fresh.Version {
		flag(-1, "certificate version %d, verifier emits %d", c.Version, fresh.Version)
	}
	if c.Artifact != fresh.Artifact {
		flag(-1, "certificate is for artifact %s, compiled artifact is %s", c.Artifact, fresh.Artifact)
	}
	if c.Model != fresh.Model {
		flag(-1, "certificate names model %q, artifact is %q", c.Model, fresh.Model)
	}
	if c.Programs != fresh.Programs {
		flag(-1, "certificate covers %d programs, artifact has %d", c.Programs, fresh.Programs)
	}
	if len(c.Layers) != len(fresh.Layers) {
		flag(-1, "certificate records %d layer facts, artifact has %d layers", len(c.Layers), len(fresh.Layers))
	} else {
		for i := range c.Layers {
			if c.Layers[i] != fresh.Layers[i] {
				flag(i, "layer fact %+v disagrees with derived %+v", c.Layers[i], fresh.Layers[i])
			}
		}
	}
	if len(diags) == 0 {
		return nil
	}
	e := &verify.Error{Diags: diags}
	e.Sort()
	return e
}

// VerifyOrCertify is the admission entry point: a stored certificate
// for the artifact's content hash is trusted as the proof (hit=true,
// no re-verification); otherwise the artifact is verified from scratch
// and, when clean, its fresh certificate persisted for the next
// admission. A nil cache degrades to plain verification.
func VerifyOrCertify(comp *core.Compiled, cache *core.Cache) (*Certificate, bool, error) {
	var key [32]byte
	if cache != nil {
		key = core.ArtifactHash(comp)
		if stored, ok := cache.GetCertificate(key); ok {
			if cert, ok := stored.(*Certificate); ok && cert.Version == CertVersion {
				return cert, true, nil
			}
		}
	}
	cert, err := Check(comp)
	if err != nil {
		return nil, false, err
	}
	if cache != nil {
		cache.PutCertificate(key, cert)
	}
	return cert, false, nil
}
