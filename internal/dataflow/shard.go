package dataflow

import (
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/verify"
)

// AuditShard certifies a shard plan against the compiled artifact it
// partitions: stages must be non-empty, disjoint and exhaustive over
// the layer range, and every stage boundary's declared transfer set
// must equal the live set computed statically from the layer DAG —
// skip connections included — with exactly the payload bits the
// producers' output widths imply. Returns nil when the plan is proved
// sound, or a *verify.Error with located diagnostics (Op carries the
// stage index, Layer the boundary layer).
func AuditShard(comp *core.Compiled, sp *core.ShardPlan) error {
	var diags []verify.Diagnostic
	name := modelName(comp)
	flag := func(stage, layer int, format string, args ...any) {
		diags = append(diags, verify.Diagnostic{
			Model: name, Layer: layer, Strip: -1, Tile: -1, Op: stage,
			Invariant: InvShard, Detail: fmt.Sprintf(format, args...),
		})
	}
	n := len(comp.Layers)
	if sp == nil || len(sp.Stages) == 0 {
		flag(-1, -1, "shard plan has no stages")
		return sortedShardError(diags)
	}
	if sp.Stages[0].Lo != 0 {
		flag(0, sp.Stages[0].Lo, "first stage starts at layer %d, want 0", sp.Stages[0].Lo)
	}
	if last := sp.Stages[len(sp.Stages)-1]; last.Hi != n {
		flag(len(sp.Stages)-1, last.Hi, "last stage ends at layer %d, plan has %d layers", last.Hi, n)
	}
	for i, st := range sp.Stages {
		if st.Lo >= st.Hi {
			flag(i, st.Lo, "empty stage [%d,%d)", st.Lo, st.Hi)
		}
		if i+1 < len(sp.Stages) && st.Hi != sp.Stages[i+1].Lo {
			flag(i, st.Hi, "stage ends at layer %d but the next starts at %d: stages must tile the layer range",
				st.Hi, sp.Stages[i+1].Lo)
		}
	}

	for i, st := range sp.Stages {
		if i == len(sp.Stages)-1 {
			if len(st.XferRefs) != 0 || st.XferBits != 0 {
				flag(i, st.Hi, "final stage declares %d boundary transfers (%d bits), want none",
					len(st.XferRefs), st.XferBits)
			}
			continue
		}
		if st.Hi < 0 || st.Hi > n {
			continue // already flagged structurally
		}
		live := boundaryLiveSet(comp.Net, st.Hi)
		declared := map[int]bool{}
		setOK := true
		for j, ref := range st.XferRefs {
			if declared[ref] {
				setOK = false
				flag(i, st.Hi, "transfer set declares producer %d twice", ref)
			}
			declared[ref] = true
			if j > 0 && st.XferRefs[j-1] >= ref {
				flag(i, st.Hi, "transfer set not in ascending producer order at entry %d", j)
			}
			if !live[ref] {
				setOK = false
				flag(i, st.Hi, "declared transfer of producer %d which is not live across the boundary", ref)
			}
		}
		for ref := range live {
			if !declared[ref] {
				setOK = false
				flag(i, st.Hi, "producer %d is live across the boundary but missing from the transfer set", ref)
			}
		}
		var wantBits int64
		for ref := range live {
			wantBits += transferBits(comp, ref)
		}
		if setOK && st.XferBits != wantBits {
			flag(i, st.Hi, "boundary payload declared as %d bits, live set carries %d", st.XferBits, wantBits)
		}
	}
	return sortedShardError(diags)
}

// sortedShardError wraps diagnostics into a canonical-order error, or
// nil when there are none.
func sortedShardError(diags []verify.Diagnostic) error {
	if len(diags) == 0 {
		return nil
	}
	e := &verify.Error{Diags: diags}
	e.Sort()
	return e
}

// boundaryLiveSet computes the producers live across the boundary
// before layer b: every tensor produced earlier (the network input
// included) that some layer at or past b still consumes. This is the
// ground truth the declared transfer sets are held to.
func boundaryLiveSet(net *model.Network, b int) map[int]bool {
	live := map[int]bool{}
	for j := b; j < len(net.Layers); j++ {
		for _, in := range net.Layers[j].Inputs {
			if in < b {
				live[in] = true
			}
		}
	}
	return live
}

// transferBits prices one boundary tensor independently of the
// partitioner: element count times the producer's wire width. The wire
// width contract matches what the runtime actually ships — conv/linear
// outputs travel as pre-requantization partial sums (the accumulator
// width), quant outputs as quantizer codes, residual adds widen their
// input by the carry bit, and pooling/flatten preserve width.
func transferBits(comp *core.Compiled, ref int) int64 {
	if ref == model.InputRef {
		sh := comp.Net.InputShape
		return int64(sh.C*sh.H*sh.W) * int64(comp.Net.InputQ.Bits)
	}
	plan := comp.Layers[ref]
	elems := int64(plan.OutC) * int64(plan.OutH) * int64(plan.OutW)
	return elems * int64(wireWidth(comp, ref))
}

// wireWidth resolves the producer's wire width by walking back through
// width-preserving layers.
func wireWidth(comp *core.Compiled, ref int) int {
	for {
		if ref == model.InputRef {
			return comp.Net.InputQ.Bits
		}
		plan := comp.Layers[ref]
		lay := &comp.Net.Layers[ref]
		switch plan.Class {
		case core.ClassConv:
			return plan.AccWidth
		case core.ClassQuant:
			return lay.Q.Bits
		case core.ClassAdd:
			return wireWidth(comp, lay.Inputs[0]) + 1
		default: // pool, gap, flatten: width-preserving
			ref = lay.Inputs[0]
		}
	}
}
