package dataflow

import (
	"rtmap/internal/core"
	"rtmap/internal/verify"
)

// Invariant names of the dataflow verifier, in the same style as the
// ap.AuditPlan invariants. Every diagnostic the package emits carries
// one of these.
const (
	// InvStructure: the compiled artifact's cross-program structure is
	// inconsistent (strip/tile counts, tile sizes, missing programs).
	InvStructure = "dataflow-structure"
	// InvProducer: a consumed activation column has zero or multiple
	// producers, or a producer resident in the wrong strip or slot.
	InvProducer = "dataflow-producer"
	// InvLiveness: a tile program's consumed input set disagrees with
	// the live set re-derived from the layer's ternary weights.
	InvLiveness = "dataflow-liveness"
	// InvFormat: a column's storage format (width, signedness, domain
	// base) disagrees with the independently derived activation band.
	InvFormat = "dataflow-format"
	// InvOverflow: a propagated value interval does not fit the
	// accumulator width the plan allocated.
	InvOverflow = "dataflow-overflow"
	// InvShard: a shard plan's stages are not disjoint and exhaustive,
	// or a boundary transfer set disagrees with the static live set.
	InvShard = "dataflow-shard"
	// InvCertificate: a stored plan certificate disagrees with the
	// artifact it claims to certify.
	InvCertificate = "dataflow-certificate"
)

func init() {
	core.RegisterDataflowVerifier(func(c *core.Compiled) error {
		_, err := Check(c)
		return err
	})
}

// Check runs the whole-artifact dataflow verification over a compiled
// model: the cross-layer interval propagation (with accumulator
// overflow proofs) and, for artifacts compiled with KeepPrograms, the
// per-column liveness and producer/consumer audit across every
// (strip, tile) program boundary. A clean artifact yields its
// PlanCertificate; a dirty one yields a *verify.Error whose located
// diagnostics are in canonical order.
func Check(comp *core.Compiled) (*Certificate, error) {
	bands, diags := deriveRanges(comp)
	diags = append(diags, auditLiveness(comp)...)
	if len(diags) > 0 {
		e := &verify.Error{Diags: diags}
		e.Sort()
		return nil, e
	}
	return newCertificate(comp, bands), nil
}

// modelName returns the diagnostic model label of an artifact.
func modelName(comp *core.Compiled) string {
	if comp.Net != nil {
		return comp.Net.Name
	}
	return ""
}
