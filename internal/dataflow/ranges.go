package dataflow

import (
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/dfg"
	"rtmap/internal/model"
	"rtmap/internal/ternary"
	"rtmap/internal/verify"
)

// band is the abstract value of one activation tensor: the interval its
// integer codes lie in and the storage format they travel in. It is the
// domain of the cross-layer abstract interpreter — deliberately
// re-derived here rather than reusing the compiler's actInfo, so a bug
// in the lowering's format propagation cannot hide in the verifier.
type band struct {
	Lo, Hi   int64
	Bits     int
	Unsigned bool
}

// fits reports whether the interval is representable in the declared
// storage width under the declared signedness.
func (b band) fits() bool {
	if b.Bits <= 0 || b.Bits > 62 {
		return false
	}
	if b.Unsigned {
		return b.Lo >= 0 && b.Hi <= int64(1)<<uint(b.Bits)-1
	}
	return b.Lo >= -(int64(1)<<uint(b.Bits-1)) && b.Hi <= int64(1)<<uint(b.Bits-1)-1
}

func (b band) String() string {
	sign := "s"
	if b.Unsigned {
		sign = "u"
	}
	return fmt.Sprintf("[%d,%d]:%s%d", b.Lo, b.Hi, sign, b.Bits)
}

// deriveRanges walks the network in topological order, composing value
// intervals across layer boundaries, and checks every compiled layer
// plan against the independently derived bands: the activation format
// the plan records must match the producer's band, and every conv
// accumulator row must fit the width the plan allocated. Returns the
// per-layer output bands (the facts a certificate records) and the
// located violations.
func deriveRanges(comp *core.Compiled) ([]band, []verify.Diagnostic) {
	net := comp.Net
	name := modelName(comp)
	var diags []verify.Diagnostic
	flag := func(layer int, invariant, format string, args ...any) {
		lname := ""
		if layer >= 0 && layer < len(net.Layers) {
			lname = net.Layers[layer].Name
		}
		diags = append(diags, verify.Diagnostic{
			Model: name, Layer: layer, LayerName: lname,
			Strip: -1, Tile: -1, Op: -1,
			Invariant: invariant, Detail: fmt.Sprintf(format, args...),
		})
	}

	bands := make([]band, len(net.Layers))
	bandOf := func(ref int) band {
		if ref == model.InputRef {
			q := net.InputQ
			return band{Lo: int64(q.Qn()), Hi: int64(q.Qp()), Bits: q.Bits, Unsigned: !q.Signed}
		}
		return bands[ref]
	}

	for i := range net.Layers {
		l := &net.Layers[i]
		plan := comp.Layers[i]
		switch l.Kind {
		case model.KindConv, model.KindLinear:
			in := bandOf(l.Inputs[0])
			if plan.ActBits != in.Bits || plan.ActUnsigned != in.Unsigned {
				flag(i, InvFormat, "plan consumes activations as %d-bit unsigned=%v, producer band is %v",
					plan.ActBits, plan.ActUnsigned, in)
			}
			acc, width := convAccBand(l.W, in)
			if width > plan.AccWidth {
				flag(i, InvOverflow, "accumulator rows need %d bits, plan allocates %d (interval %v)",
					width, plan.AccWidth, acc)
			}
			acc.Bits = plan.AccWidth
			acc.Unsigned = acc.Lo >= 0
			bands[i] = acc
		case model.KindActQuant:
			lo := int64(l.Q.Qn())
			if l.ReLU {
				lo = 0
			}
			b := band{Lo: lo, Hi: int64(l.Q.Qp()), Bits: l.Q.Bits, Unsigned: !l.Q.Signed || l.ReLU}
			if plan.ActBits != b.Bits || plan.ActUnsigned != b.Unsigned {
				flag(i, InvFormat, "plan emits %d-bit unsigned=%v codes, quantizer band is %v",
					plan.ActBits, plan.ActUnsigned, b)
			}
			bands[i] = b
		case model.KindAdd:
			a, bnd := bandOf(l.Inputs[0]), bandOf(l.Inputs[1])
			sum := band{Lo: a.Lo + bnd.Lo, Hi: a.Hi + bnd.Hi}
			sum.Bits = dfg.SignedBits(sum.Lo, sum.Hi)
			sum.Unsigned = sum.Lo >= 0
			if plan.ActBits != a.Bits || plan.ActUnsigned != a.Unsigned {
				flag(i, InvFormat, "plan consumes addends as %d-bit unsigned=%v, producer band is %v",
					plan.ActBits, plan.ActUnsigned, a)
			}
			bands[i] = sum
		case model.KindMaxPool, model.KindGlobalAvgPool, model.KindFlatten:
			// Selection and integer averaging stay inside the input hull;
			// flatten is a pure reshape.
			in := bandOf(l.Inputs[0])
			if plan.Class != core.ClassFree && (plan.ActBits != in.Bits || plan.ActUnsigned != in.Unsigned) {
				flag(i, InvFormat, "plan records %d-bit unsigned=%v activations, producer band is %v",
					plan.ActBits, plan.ActUnsigned, in)
			}
			bands[i] = in
		default:
			flag(i, InvStructure, "layer kind %v has no dataflow semantics", l.Kind)
		}
		if !bands[i].fits() {
			flag(i, InvOverflow, "derived band %v does not fit its storage width", bands[i])
		}
	}
	return bands, diags
}

// convAccBand re-derives the accumulator interval of a conv/linear
// layer straight from its ternary weights: with inputs in [lo, hi],
// output row o's full channel sum lies in
//
//	[pos(o)·lo − neg(o)·hi, pos(o)·hi − neg(o)·lo]
//
// where pos/neg count the row's +1/−1 weights over every (channel,
// patch) position. Returns the union interval over all rows and the
// widest row's signed width — the minimum accumulator width that can
// never overflow.
func convAccBand(w *ternary.Weights, in band) (band, int) {
	var lo, hi int64
	width := 1
	for co := 0; co < w.Cout; co++ {
		pos, neg := 0, 0
		for ci := 0; ci < w.Cin; ci++ {
			for kh := 0; kh < w.Fh; kh++ {
				for kw := 0; kw < w.Fw; kw++ {
					switch v := w.At(co, ci, kh, kw); {
					case v > 0:
						pos++
					case v < 0:
						neg++
					}
				}
			}
		}
		rlo := int64(pos)*in.Lo - int64(neg)*in.Hi
		rhi := int64(pos)*in.Hi - int64(neg)*in.Lo
		if co == 0 || rlo < lo {
			lo = rlo
		}
		if co == 0 || rhi > hi {
			hi = rhi
		}
		if b := dfg.SignedBits(rlo, rhi); b > width {
			width = b
		}
	}
	return band{Lo: lo, Hi: hi}, width
}
