package dataflow

import (
	"fmt"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/verify"
)

// auditLiveness proves the cross-program dataflow of every conv/linear
// layer compiled with KeepPrograms: channel residency (which strip
// produces which activation column), tile coverage, and — per tile
// program — that the consumed input set equals the live set re-derived
// from the layer's ternary weights, that every consumed column has
// exactly one producer slot, and that every column's storage format
// matches the layer's activation band. The checks share no code with
// the codegen path that emitted the programs.
func auditLiveness(comp *core.Compiled) []verify.Diagnostic {
	var diags []verify.Diagnostic
	name := modelName(comp)
	for i, plan := range comp.Layers {
		if plan.Class != core.ClassConv || len(plan.StripPlans) == 0 {
			continue
		}
		diags = append(diags, auditConvLayer(comp, name, i, plan)...)
	}
	return diags
}

// auditConvLayer audits one conv/linear layer's strip/tile program grid.
func auditConvLayer(comp *core.Compiled, name string, idx int, plan *core.LayerPlan) []verify.Diagnostic {
	var diags []verify.Diagnostic
	flag := func(strip, tile, op int, invariant, format string, args ...any) {
		diags = append(diags, verify.Diagnostic{
			Model: name, Layer: idx, LayerName: plan.Name,
			Strip: strip, Tile: tile, Op: op,
			Invariant: invariant, Detail: fmt.Sprintf(format, args...),
		})
	}
	lay := &comp.Net.Layers[idx]
	cin := plan.InCEffective()
	capacity := plan.Planes * plan.ChansPerPlane
	if capacity <= 0 {
		flag(-1, -1, -1, InvStructure, "non-positive strip capacity %d×%d", plan.Planes, plan.ChansPerPlane)
		return diags
	}

	// Channel residency: strip s holds global channels
	// [s·capacity, min((s+1)·capacity, cin)), each exactly once across
	// the whole layer — the single-producer property of every
	// activation column.
	if len(plan.StripPlans) != plan.Strips {
		flag(-1, -1, -1, InvStructure, "%d strip plans for %d strips", len(plan.StripPlans), plan.Strips)
	}
	produced := make([]int, cin) // producers per global channel
	for s := range plan.StripPlans {
		sp := &plan.StripPlans[s]
		for j, ch := range sp.Channels {
			if ch < 0 || ch >= cin {
				flag(s, -1, -1, InvProducer, "resident slot %d holds channel %d outside [0,%d)", j, ch, cin)
				continue
			}
			produced[ch]++
			if want := s*capacity + j; ch != want {
				flag(s, -1, -1, InvProducer, "resident slot %d holds channel %d, residency law requires %d", j, ch, want)
			}
		}
	}
	for ch, n := range produced {
		if n != 1 {
			flag(-1, -1, -1, InvProducer, "activation channel %d has %d producers, want exactly 1", ch, n)
		}
	}

	// Tile coverage: the declared tile sizes partition the output
	// channels in order.
	if len(plan.TileSizes) != plan.Tiles {
		flag(-1, -1, -1, InvStructure, "%d tile sizes for %d tiles", len(plan.TileSizes), plan.Tiles)
	}
	covered := 0
	for t, ts := range plan.TileSizes {
		want := plan.OutC - t*plan.TileSize
		if want > plan.TileSize {
			want = plan.TileSize
		}
		if ts != want || ts <= 0 {
			flag(-1, t, -1, InvStructure, "tile size %d, partition of %d output channels requires %d", ts, plan.OutC, want)
		}
		covered += ts
	}
	if covered != plan.OutC {
		flag(-1, -1, -1, InvStructure, "tile sizes cover %d output channels, layer has %d", covered, plan.OutC)
	}

	for s := range plan.StripPlans {
		sp := &plan.StripPlans[s]
		if len(sp.Programs) != len(plan.TileSizes) {
			flag(s, -1, -1, InvStructure, "%d tile programs, want %d", len(sp.Programs), len(plan.TileSizes))
			continue
		}
		rowLo := 0
		for t := range sp.Programs {
			tsize := plan.TileSizes[t]
			diags = append(diags, auditTileIO(comp, name, idx, plan, lay, s, t, rowLo, tsize, sp)...)
			rowLo += tsize
		}
	}
	return diags
}

// auditTileIO audits the I/O surface of one (strip, tile) program: the
// accumulator columns it defines and the input columns it consumes.
func auditTileIO(comp *core.Compiled, name string, idx int, plan *core.LayerPlan,
	lay *model.Layer, s, t, rowLo, tsize int, sp *core.StripPlan) []verify.Diagnostic {
	var diags []verify.Diagnostic
	flag := func(op int, invariant, format string, args ...any) {
		diags = append(diags, verify.Diagnostic{
			Model: name, Layer: idx, LayerName: plan.Name,
			Strip: s, Tile: t, Op: op,
			Invariant: invariant, Detail: fmt.Sprintf(format, args...),
		})
	}
	tp := sp.Programs[t]
	if tp == nil || tp.Prog == nil {
		flag(-1, InvStructure, "tile has no program")
		return diags
	}
	prog := tp.Prog
	if len(tp.Phys) != len(prog.Cols) {
		flag(-1, InvStructure, "%d physical column mappings for %d columns", len(tp.Phys), len(prog.Cols))
		return diags
	}

	// Defined values: one accumulator per tile row, stored at the
	// plan's accumulator width, packed AccWidth domains apart.
	if len(tp.AccVirt) != tsize {
		flag(-1, InvStructure, "%d accumulator columns for tile of %d rows", len(tp.AccVirt), tsize)
	}
	slots := 0
	if plan.AccWidth > 0 {
		slots = comp.Cfg.Par.DomainsPerTrack / plan.AccWidth
	}
	accCols := map[int]int{}
	for r, v := range tp.AccVirt {
		if v < 0 || v >= len(prog.Cols) {
			flag(-1, InvStructure, "accumulator %d bound to column %d outside the program", r, v)
			continue
		}
		if prev, dup := accCols[v]; dup {
			flag(-1, InvProducer, "accumulator rows %d and %d share column %d: one output row has no producer", prev, r, v)
		}
		accCols[v] = r
		col := prog.Cols[v]
		if col.Width != plan.AccWidth {
			flag(-1, InvFormat, "accumulator %d stored at %d bits, plan allocates %d", r, col.Width, plan.AccWidth)
		}
		if slots > 0 && col.Base != (r%slots)*plan.AccWidth {
			flag(-1, InvFormat, "accumulator %d at domain base %d, packing law requires %d", r, col.Base, (r%slots)*plan.AccWidth)
		}
	}

	// Consumed values: every input binding names an in-strip producer
	// slot exactly once, at the layer's activation band, on the
	// physical column and domain the residency law assigns it.
	k := plan.K
	bound := map[[2]int]bool{}
	physOf := map[[2]int]int{} // (plane, patch) → physical column
	for virt, bind := range tp.InputBindings {
		ch, kp := bind[0], bind[1]
		if virt < 0 || virt >= len(prog.Cols) {
			flag(-1, InvStructure, "input binding names column %d outside the program", virt)
			continue
		}
		if ch < 0 || ch >= len(sp.Channels) || kp < 0 || kp >= k {
			flag(-1, InvProducer, "input column %d bound to (channel %d, patch %d) outside strip residency (%d channels, K=%d)",
				virt, ch, kp, len(sp.Channels), k)
			continue
		}
		if bound[bind] {
			flag(-1, InvProducer, "(channel %d, patch %d) consumed through more than one column", ch, kp)
		}
		bound[bind] = true
		col := prog.Cols[virt]
		if col.Width != plan.ActBits || col.Unsigned != plan.ActUnsigned {
			flag(-1, InvFormat, "input (channel %d, patch %d) stored as %d-bit unsigned=%v, activation band is %d-bit unsigned=%v",
				ch, kp, col.Width, col.Unsigned, plan.ActBits, plan.ActUnsigned)
		}
		if plan.ChansPerPlane > 0 {
			if want := (ch % plan.ChansPerPlane) * plan.ActBits; col.Base != want {
				flag(-1, InvProducer, "input (channel %d, patch %d) at domain base %d, residency law requires %d",
					ch, kp, col.Base, want)
			}
			pk := [2]int{ch / plan.ChansPerPlane, kp}
			if prev, ok := physOf[pk]; ok && prev != tp.Phys[virt] {
				flag(-1, InvProducer, "(plane %d, patch %d) split across physical columns %d and %d",
					pk[0], pk[1], prev, tp.Phys[virt])
			}
			physOf[pk] = tp.Phys[virt]
		}
	}

	// Live-set equality against the weights: (channel, patch) is live
	// for this tile iff some output row in [rowLo, rowLo+tsize) has a
	// nonzero weight there. A binding outside the live set is a
	// rerouted producer; a live position without a binding is a dropped
	// one.
	w := lay.W
	for j, global := range sp.Channels {
		if global < 0 || global >= w.Cin {
			continue // already flagged by the residency audit
		}
		for kp := 0; kp < k; kp++ {
			kh, kw := kp/w.Fw, kp%w.Fw
			live := false
			for o := rowLo; o < rowLo+tsize && o < w.Cout; o++ {
				if w.At(o, global, kh, kw) != 0 {
					live = true
					break
				}
			}
			if live != bound[[2]int{j, kp}] {
				if live {
					flag(-1, InvLiveness, "(channel %d, patch %d) is live for rows [%d,%d) but never consumed",
						j, kp, rowLo, rowLo+tsize)
				} else {
					flag(-1, InvLiveness, "(channel %d, patch %d) is consumed but dead for rows [%d,%d)",
						j, kp, rowLo, rowLo+tsize)
				}
			}
		}
	}
	return diags
}
