package dataflow

import (
	"strings"
	"sync"
	"testing"

	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/verify"
)

// compiled caches one compiled artifact per zoo model for the whole
// test binary — compilation dominates test time, the artifacts are
// treated as read-only (corruption tests must restore what they touch).
var (
	compiledMu sync.Mutex
	compiledBy = map[string]*core.Compiled{}
)

func compileZoo(t *testing.T, name string) *core.Compiled {
	t.Helper()
	compiledMu.Lock()
	defer compiledMu.Unlock()
	if c, ok := compiledBy[name]; ok {
		return c
	}
	var net *model.Network
	switch name {
	case "tinycnn":
		net = model.TinyCNN(model.DefaultConfig())
	case "tinyresnet":
		net = model.TinyResNet(model.DefaultConfig())
	case "miniresnet18":
		net = model.MiniResNet18(model.DefaultConfig(), 32, 32)
	default:
		t.Fatalf("unknown zoo model %q", name)
	}
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	comp, err := core.Compile(net, cfg)
	if err != nil {
		t.Fatalf("compiling %s: %v", name, err)
	}
	compiledBy[name] = comp
	return comp
}

// The builtin zoo verifies clean and each clean artifact yields a
// well-formed certificate.
func TestCheckZooClean(t *testing.T) {
	for _, name := range []string{"tinycnn", "tinyresnet", "miniresnet18"} {
		comp := compileZoo(t, name)
		cert, err := Check(comp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cert.Version != CertVersion {
			t.Errorf("%s: certificate version %d, want %d", name, cert.Version, CertVersion)
		}
		if len(cert.Artifact) != 64 {
			t.Errorf("%s: artifact hash %q is not 64 hex chars", name, cert.Artifact)
		}
		if cert.Programs <= 0 {
			t.Errorf("%s: certificate covers %d programs", name, cert.Programs)
		}
		if len(cert.Layers) != len(comp.Net.Layers) {
			t.Errorf("%s: %d layer facts for %d layers", name, len(cert.Layers), len(comp.Net.Layers))
		}
		for _, f := range cert.Layers {
			if f.Lo > f.Hi || f.Bits <= 0 {
				t.Errorf("%s: degenerate fact %+v", name, f)
			}
		}
	}
}

// Config.VerifyDataflow routes compilation through the registered
// verifier (this package's init).
func TestCompileWithVerifyDataflow(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	cfg.VerifyDataflow = true
	if _, err := core.Compile(model.TinyCNN(model.DefaultConfig()), cfg); err != nil {
		t.Fatal(err)
	}
}

// Certificates survive an encode→decode→re-validate round trip, and a
// decoded certificate whose facts were tampered with is refuted under
// the dataflow-certificate invariant.
func TestCertificateRoundTrip(t *testing.T) {
	comp := compileZoo(t, "tinyresnet")
	cert, err := Check(comp)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cert.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(comp); err != nil {
		t.Fatalf("round-tripped certificate does not validate: %v", err)
	}

	back.Layers[0].Hi++
	err = back.Validate(comp)
	var ve *verify.Error
	if !asVerifyError(err, &ve) {
		t.Fatalf("tampered certificate validated: %v", err)
	}
	if ve.Diags[0].Invariant != InvCertificate {
		t.Fatalf("tampered certificate refuted under %q, want %q", ve.Diags[0].Invariant, InvCertificate)
	}

	if _, err := DecodeCertificate([]byte("{")); err == nil {
		t.Fatal("malformed JSON decoded")
	}
	if _, err := DecodeCertificate([]byte(`{"version":0}`)); err == nil {
		t.Fatal("certificate without version/artifact decoded")
	}
}

func asVerifyError(err error, out **verify.Error) bool {
	ve, ok := err.(*verify.Error)
	if ok {
		*out = ve
	}
	return ok
}

// VerifyOrCertify pays a full verification exactly once per artifact
// hash: the first admission misses and persists, later admissions hit.
func TestVerifyOrCertifyCaches(t *testing.T) {
	comp := compileZoo(t, "tinycnn")
	cache := core.NewCache()

	cert1, hit, err := VerifyOrCertify(comp, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first admission reported a certificate hit")
	}
	cert2, hit, err := VerifyOrCertify(comp, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second admission of the identical artifact re-verified")
	}
	if cert1 != cert2 {
		t.Fatal("certificate hit returned a different certificate")
	}
	if st := cache.Stats(); st.CertHits != 1 || st.CertMisses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", st.CertHits, st.CertMisses)
	}

	// nil cache degrades to plain verification.
	if _, hit, err := VerifyOrCertify(comp, nil); err != nil || hit {
		t.Fatalf("nil-cache verify: hit=%v err=%v", hit, err)
	}
}

// Changing the artifact — here, one flipped weight — changes the
// content hash, so a stored certificate can never be trusted for a
// different artifact: the modified model misses the cache and is
// verified from scratch.
func TestCertificateInvalidatedByArtifactChange(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.KeepPrograms = true
	build := func(mutate bool) *core.Compiled {
		net := model.TinyCNN(model.DefaultConfig())
		if mutate {
			w := net.Layers[0].W
			if w.At(0, 0, 0, 0) == 0 {
				w.Set(0, 0, 0, 0, 1)
			} else {
				w.Set(0, 0, 0, 0, 0)
			}
		}
		comp, err := core.Compile(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return comp
	}
	orig, mod := build(false), build(true)
	if core.ArtifactHash(orig) == core.ArtifactHash(mod) {
		t.Fatal("flipping a weight did not change the artifact hash")
	}

	cache := core.NewCache()
	if _, hit, err := VerifyOrCertify(orig, cache); err != nil || hit {
		t.Fatalf("seeding: hit=%v err=%v", hit, err)
	}
	_, hit, err := VerifyOrCertify(mod, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("modified artifact was served the original's certificate")
	}
	if st := cache.Stats(); st.CertMisses != 2 {
		t.Fatalf("%d cert misses, want 2", st.CertMisses)
	}
}

// shardPlan partitions a compiled zoo model into k pipeline stages
// using the analyzer's per-layer costs, as serve does.
func shardPlan(t *testing.T, comp *core.Compiled, k int) *core.ShardPlan {
	t.Helper()
	rep := sim.Analyze(comp)
	costs := make([]float64, len(rep.Layers))
	for i, lr := range rep.Layers {
		costs[i] = lr.LatencyNS
	}
	sp, err := core.Partition(comp, k, costs)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// Partitioned zoo models — skip connections included — certify clean,
// and every class of shard-plan corruption is refuted under the
// dataflow-shard invariant.
func TestAuditShard(t *testing.T) {
	comp := compileZoo(t, "tinyresnet")
	for _, k := range []int{2, 3} {
		sp := shardPlan(t, comp, k)
		if err := AuditShard(comp, sp); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}

	sp := shardPlan(t, comp, 2)
	corruptions := []struct {
		name   string
		mutate func(*core.ShardPlan)
		want   string
	}{
		{"drop-transfer", func(p *core.ShardPlan) {
			p.Stages[0].XferRefs = p.Stages[0].XferRefs[:len(p.Stages[0].XferRefs)-1]
		}, "missing from the transfer set"},
		{"add-spurious-transfer", func(p *core.ShardPlan) {
			p.Stages[0].XferRefs = append(p.Stages[0].XferRefs, len(comp.Layers)-1)
		}, "not live across the boundary"},
		{"perturb-payload-bits", func(p *core.ShardPlan) {
			p.Stages[0].XferBits += 8
		}, "boundary payload"},
		{"overlap-stages", func(p *core.ShardPlan) {
			p.Stages[1].Lo--
		}, "stages must tile the layer range"},
		{"truncate-coverage", func(p *core.ShardPlan) {
			p.Stages[1].Hi--
		}, "last stage ends"},
		{"final-stage-transfers", func(p *core.ShardPlan) {
			p.Stages[1].XferRefs = []int{0}
			p.Stages[1].XferBits = 64
		}, "final stage declares"},
	}
	for _, c := range corruptions {
		bad := *sp
		bad.Stages = append([]core.StageRange(nil), sp.Stages...)
		for i := range bad.Stages {
			bad.Stages[i].XferRefs = append([]int(nil), sp.Stages[i].XferRefs...)
		}
		c.mutate(&bad)
		err := AuditShard(comp, &bad)
		if err == nil {
			t.Errorf("%s: corruption not detected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
		var ve *verify.Error
		if !asVerifyError(err, &ve) {
			t.Errorf("%s: error is not a *verify.Error", c.name)
			continue
		}
		for _, d := range ve.Diags {
			if d.Invariant != InvShard {
				t.Errorf("%s: diagnostic under %q, want %q", c.name, d.Invariant, InvShard)
			}
		}
	}
}
