package dataflow

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"os"
	"sort"
	"testing"

	"rtmap/internal/ap"
	"rtmap/internal/codegen"
	"rtmap/internal/core"
	"rtmap/internal/model"
	"rtmap/internal/sim"
	"rtmap/internal/tensor"
)

// cloneCompiled deep-copies an artifact so a mutation cannot leak into
// the shared per-test-binary compile cache. Tile programs are rebuilt
// field by field (they memoize an exec plan behind a sync.Once that
// must start fresh in the clone).
func cloneCompiled(c *core.Compiled) *core.Compiled {
	net := *c.Net
	net.Layers = append([]model.Layer(nil), c.Net.Layers...)
	for i := range net.Layers {
		l := &net.Layers[i]
		l.Inputs = append([]int(nil), l.Inputs...)
		if l.W != nil {
			w := *l.W
			w.W = append([]int8(nil), l.W.W...)
			l.W = &w
		}
	}
	out := &core.Compiled{Net: &net, Cfg: c.Cfg, PoolArrays: c.PoolArrays}
	out.Cfg.Cache = nil
	for _, lp := range c.Layers {
		q := *lp
		q.TileSizes = append([]int(nil), lp.TileSizes...)
		q.StripPlans = make([]core.StripPlan, len(lp.StripPlans))
		for s := range lp.StripPlans {
			sp := &lp.StripPlans[s]
			q.StripPlans[s].Channels = append([]int(nil), sp.Channels...)
			q.StripPlans[s].Programs = make([]*codegen.TileProgram, len(sp.Programs))
			for t, tp := range sp.Programs {
				if tp == nil {
					continue
				}
				nt := &codegen.TileProgram{
					Phys:    append([]int(nil), tp.Phys...),
					AccVirt: append([]int(nil), tp.AccVirt...),
					Stats:   tp.Stats,
				}
				if tp.Prog != nil {
					p := &ap.Program{
						Carry:  tp.Prog.Carry,
						Cols:   append([]ap.Col(nil), tp.Prog.Cols...),
						Instrs: append([]ap.Instr(nil), tp.Prog.Instrs...),
					}
					nt.Prog = p
				}
				if tp.InputBindings != nil {
					nt.InputBindings = make(map[int][2]int, len(tp.InputBindings))
					for k, v := range tp.InputBindings {
						nt.InputBindings[k] = v
					}
				}
				q.StripPlans[s].Programs[t] = nt
			}
		}
		out.Layers = append(out.Layers, &q)
	}
	return out
}

// convSite is one (layer, strip, tile) program location.
type convSite struct {
	lp   *core.LayerPlan
	l    int // layer index
	s, t int
	tp   *codegen.TileProgram
}

// convSites enumerates every retained conv tile program.
func convSites(c *core.Compiled) []convSite {
	var sites []convSite
	for l, lp := range c.Layers {
		if lp.Class != core.ClassConv {
			continue
		}
		for s := range lp.StripPlans {
			for t, tp := range lp.StripPlans[s].Programs {
				if tp != nil {
					sites = append(sites, convSite{lp, l, s, t, tp})
				}
			}
		}
	}
	return sites
}

// sortedVirts returns a tile program's bound virtual columns in
// deterministic order (map iteration is randomized; the harness must
// not be).
func sortedVirts(tp *codegen.TileProgram) []int {
	virts := make([]int, 0, len(tp.InputBindings))
	for v := range tp.InputBindings {
		virts = append(virts, v)
	}
	sort.Ints(virts)
	return virts
}

// artifactMutation is one seeded cross-tile corruption operator over a
// cloned compiled artifact. apply mutates in place and reports whether
// the operator was applicable to this artifact.
type artifactMutation struct {
	name  string
	apply func(rng *rand.Rand, c *core.Compiled) bool
}

// pickSiteWithBindings returns a random tile program with at least one
// input binding.
func pickSiteWithBindings(rng *rand.Rand, c *core.Compiled) (convSite, bool) {
	var cand []convSite
	for _, site := range convSites(c) {
		if len(site.tp.InputBindings) > 0 {
			cand = append(cand, site)
		}
	}
	if len(cand) == 0 {
		return convSite{}, false
	}
	return cand[rng.IntN(len(cand))], true
}

var artifactMutations = []artifactMutation{
	// Reroute a consumed column to a different producer channel: the tile
	// now reads another channel's activations.
	{"reroute-producer-channel", func(rng *rand.Rand, c *core.Compiled) bool {
		site, ok := pickSiteWithBindings(rng, c)
		if !ok {
			return false
		}
		sp := &site.lp.StripPlans[site.s]
		if len(sp.Channels) < 2 {
			return false
		}
		virts := sortedVirts(site.tp)
		v := virts[rng.IntN(len(virts))]
		b := site.tp.InputBindings[v]
		b[0] = (b[0] + 1 + rng.IntN(len(sp.Channels)-1)) % len(sp.Channels)
		site.tp.InputBindings[v] = b
		return true
	}},
	// Reroute to a different patch position of the same channel.
	{"reroute-producer-patch", func(rng *rand.Rand, c *core.Compiled) bool {
		site, ok := pickSiteWithBindings(rng, c)
		if !ok || site.lp.K < 2 {
			return false
		}
		virts := sortedVirts(site.tp)
		v := virts[rng.IntN(len(virts))]
		b := site.tp.InputBindings[v]
		b[1] = (b[1] + 1 + rng.IntN(site.lp.K-1)) % site.lp.K
		site.tp.InputBindings[v] = b
		return true
	}},
	// Drop a consumed column outright: a live (channel, patch) loses its
	// producer edge.
	{"drop-binding", func(rng *rand.Rand, c *core.Compiled) bool {
		site, ok := pickSiteWithBindings(rng, c)
		if !ok {
			return false
		}
		virts := sortedVirts(site.tp)
		delete(site.tp.InputBindings, virts[rng.IntN(len(virts))])
		return true
	}},
	// Record the wrong activation width in the plan.
	{"perturb-actbits", func(rng *rand.Rand, c *core.Compiled) bool {
		sites := convSites(c)
		if len(sites) == 0 {
			return false
		}
		sites[rng.IntN(len(sites))].lp.ActBits++
		return true
	}},
	// Record the wrong signedness.
	{"flip-act-unsigned", func(rng *rand.Rand, c *core.Compiled) bool {
		sites := convSites(c)
		if len(sites) == 0 {
			return false
		}
		lp := sites[rng.IntN(len(sites))].lp
		lp.ActUnsigned = !lp.ActUnsigned
		return true
	}},
	// Shrink the accumulator allocation below the proven-safe width.
	{"shrink-accwidth", func(rng *rand.Rand, c *core.Compiled) bool {
		sites := convSites(c)
		if len(sites) == 0 {
			return false
		}
		lp := sites[rng.IntN(len(sites))].lp
		if lp.AccWidth <= 1 {
			return false
		}
		lp.AccWidth--
		return true
	}},
	// Grow it: the stored columns no longer match the declared width.
	{"grow-accwidth", func(rng *rand.Rand, c *core.Compiled) bool {
		sites := convSites(c)
		if len(sites) == 0 {
			return false
		}
		sites[rng.IntN(len(sites))].lp.AccWidth++
		return true
	}},
	// Swap two resident channels: both columns still have producers, but
	// the wrong ones.
	{"swap-strip-channels", func(rng *rand.Rand, c *core.Compiled) bool {
		for _, site := range convSites(c) {
			sp := &site.lp.StripPlans[site.s]
			if len(sp.Channels) >= 2 {
				j := rng.IntN(len(sp.Channels) - 1)
				sp.Channels[j], sp.Channels[j+1] = sp.Channels[j+1], sp.Channels[j]
				return true
			}
		}
		return false
	}},
	// Drop a resident channel: one activation column loses its producer
	// strip-wide.
	{"drop-strip-channel", func(rng *rand.Rand, c *core.Compiled) bool {
		for _, site := range convSites(c) {
			sp := &site.lp.StripPlans[site.s]
			if len(sp.Channels) >= 2 {
				sp.Channels = sp.Channels[:len(sp.Channels)-1]
				return true
			}
		}
		return false
	}},
	// Drop a whole tile program.
	{"drop-program", func(rng *rand.Rand, c *core.Compiled) bool {
		sites := convSites(c)
		if len(sites) == 0 {
			return false
		}
		site := sites[rng.IntN(len(sites))]
		site.lp.StripPlans[site.s].Programs[site.t] = nil
		return true
	}},
	// Break the tile partition of the output channels.
	{"perturb-tilesize", func(rng *rand.Rand, c *core.Compiled) bool {
		sites := convSites(c)
		if len(sites) == 0 {
			return false
		}
		lp := sites[rng.IntN(len(sites))].lp
		lp.TileSizes[rng.IntN(len(lp.TileSizes))]++
		return true
	}},
	// Rebind an accumulator row to a different program column.
	{"perturb-accvirt", func(rng *rand.Rand, c *core.Compiled) bool {
		for _, site := range convSites(c) {
			if len(site.tp.AccVirt) == 0 || site.tp.Prog == nil {
				continue
			}
			r := rng.IntN(len(site.tp.AccVirt))
			site.tp.AccVirt[r] = (site.tp.AccVirt[r] + 1) % len(site.tp.Prog.Cols)
			return true
		}
		return false
	}},
	// Corrupt a consumed column's declared storage width.
	{"corrupt-col-width", func(rng *rand.Rand, c *core.Compiled) bool {
		site, ok := pickSiteWithBindings(rng, c)
		if !ok {
			return false
		}
		virts := sortedVirts(site.tp)
		site.tp.Prog.Cols[virts[rng.IntN(len(virts))]].Width++
		return true
	}},
	// Corrupt a consumed column's domain base.
	{"corrupt-col-base", func(rng *rand.Rand, c *core.Compiled) bool {
		site, ok := pickSiteWithBindings(rng, c)
		if !ok {
			return false
		}
		virts := sortedVirts(site.tp)
		site.tp.Prog.Cols[virts[rng.IntN(len(virts))]].Base++
		return true
	}},
	// Drop a sole producer weight: zero the only nonzero a live (channel,
	// patch) has among one tile's rows, so the live set shrinks under the
	// program that still consumes it.
	{"drop-sole-producer-weight", func(rng *rand.Rand, c *core.Compiled) bool {
		for _, site := range convSites(c) {
			lay := &c.Net.Layers[site.l]
			w := lay.W
			sp := &site.lp.StripPlans[site.s]
			rowLo := site.t * site.lp.TileSize
			rowHi := rowLo + site.lp.TileSizes[site.t]
			for _, global := range sp.Channels {
				if global >= w.Cin {
					continue
				}
				for kp := 0; kp < site.lp.K; kp++ {
					kh, kw := kp/w.Fw, kp%w.Fw
					sole, count := -1, 0
					for o := rowLo; o < rowHi && o < w.Cout; o++ {
						if w.At(o, global, kh, kw) != 0 {
							sole = o
							count++
						}
					}
					if count == 1 {
						w.Set(sole, global, kh, kw, 0)
						return true
					}
				}
			}
		}
		return false
	}},
	// Add a producer weight at a dead position: the live set grows under
	// a program that never consumes it.
	{"add-producer-weight", func(rng *rand.Rand, c *core.Compiled) bool {
		for _, site := range convSites(c) {
			lay := &c.Net.Layers[site.l]
			w := lay.W
			sp := &site.lp.StripPlans[site.s]
			rowLo := site.t * site.lp.TileSize
			rowHi := rowLo + site.lp.TileSizes[site.t]
			for _, global := range sp.Channels {
				if global >= w.Cin {
					continue
				}
				for kp := 0; kp < site.lp.K; kp++ {
					kh, kw := kp/w.Fw, kp%w.Fw
					dead := true
					for o := rowLo; o < rowHi && o < w.Cout; o++ {
						if w.At(o, global, kh, kw) != 0 {
							dead = false
							break
						}
					}
					if dead && rowLo < w.Cout {
						w.Set(rowLo, global, kh, kw, 1)
						return true
					}
				}
			}
		}
		return false
	}},
}

// shardMutation corrupts a cloned shard plan.
type shardMutation struct {
	name  string
	apply func(rng *rand.Rand, c *core.Compiled, sp *core.ShardPlan) bool
}

var shardMutations = []shardMutation{
	{"shard-drop-transfer", func(rng *rand.Rand, c *core.Compiled, sp *core.ShardPlan) bool {
		for i := range sp.Stages[:len(sp.Stages)-1] {
			st := &sp.Stages[i]
			if len(st.XferRefs) > 0 {
				k := rng.IntN(len(st.XferRefs))
				st.XferRefs = append(st.XferRefs[:k], st.XferRefs[k+1:]...)
				return true
			}
		}
		return false
	}},
	{"shard-spurious-transfer", func(rng *rand.Rand, c *core.Compiled, sp *core.ShardPlan) bool {
		st := &sp.Stages[0]
		st.XferRefs = append(st.XferRefs, len(c.Layers)-1)
		return true
	}},
	{"shard-perturb-bits", func(rng *rand.Rand, c *core.Compiled, sp *core.ShardPlan) bool {
		sp.Stages[rng.IntN(len(sp.Stages)-1)].XferBits += int64(1 + rng.IntN(64))
		return true
	}},
	{"shard-overlap-stages", func(rng *rand.Rand, c *core.Compiled, sp *core.ShardPlan) bool {
		if len(sp.Stages) < 2 || sp.Stages[1].Lo <= 1 {
			return false
		}
		sp.Stages[1].Lo--
		return true
	}},
	{"shard-truncate-coverage", func(rng *rand.Rand, c *core.Compiled, sp *core.ShardPlan) bool {
		last := &sp.Stages[len(sp.Stages)-1]
		if last.Hi-last.Lo < 2 {
			return false
		}
		last.Hi--
		return true
	}},
}

// certMutation corrupts a decoded certificate.
type certMutation struct {
	name  string
	apply func(rng *rand.Rand, cert *Certificate) bool
}

var certMutations = []certMutation{
	{"cert-corrupt-artifact", func(rng *rand.Rand, cert *Certificate) bool {
		i := rng.IntN(len(cert.Artifact))
		b := []byte(cert.Artifact)
		if b[i] == '0' {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
		cert.Artifact = string(b)
		return true
	}},
	{"cert-perturb-range", func(rng *rand.Rand, cert *Certificate) bool {
		cert.Layers[rng.IntN(len(cert.Layers))].Hi++
		return true
	}},
	{"cert-perturb-width", func(rng *rand.Rand, cert *Certificate) bool {
		f := &cert.Layers[rng.IntN(len(cert.Layers))]
		f.Bits--
		return true
	}},
	{"cert-flip-sign", func(rng *rand.Rand, cert *Certificate) bool {
		f := &cert.Layers[rng.IntN(len(cert.Layers))]
		f.Unsigned = !f.Unsigned
		return true
	}},
	{"cert-drop-layer", func(rng *rand.Rand, cert *Certificate) bool {
		cert.Layers = cert.Layers[:len(cert.Layers)-1]
		return true
	}},
	{"cert-wrong-version", func(rng *rand.Rand, cert *Certificate) bool {
		cert.Version++
		return true
	}},
}

// cloneCert copies a certificate for mutation.
func cloneCert(c *Certificate) *Certificate {
	q := *c
	q.Layers = append([]LayerFact(nil), c.Layers...)
	return &q
}

func mutationInput(seed uint64, s tensor.Shape) *tensor.Float {
	rng := rand.New(rand.NewPCG(seed, seed^0xf00d))
	in := tensor.NewFloat(s)
	for i := range in.Data {
		in.Data[i] = float32(math.Abs(rng.NormFloat64())) * 0.5
	}
	return in
}

// tracesEqual compares two integer traces layer by layer.
func tracesEqual(a, b *model.IntTrace) bool {
	if len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Outputs {
		if !a.Outputs[i].Equal(b.Outputs[i]) {
			return false
		}
	}
	return true
}

// opTally is one operator's row in the kill-rate report.
type opTally struct {
	Total  int `json:"total"`
	Killed int `json:"killed"`
}

// Mutation test of the whole-model dataflow verifier: seeded cross-tile
// corruptions over cloned artifacts, shard plans and certificates must
// be caught at ≥95% overall, and every escapee must be proved
// bit-identical to the original by differential execution. The kill
// table is written to $RTMAP_MUTATION_OUT (CI commits it as
// bench/MUTATION_dataflow.json).
func TestDataflowCatchesMutations(t *testing.T) {
	tally := map[string]*opTally{}
	record := func(name string, killed bool) {
		tl := tally[name]
		if tl == nil {
			tl = &opTally{}
			tally[name] = tl
		}
		tl.Total++
		if killed {
			tl.Killed++
		}
	}

	// Artifact domain: mutate clones of two compiled models, verify, and
	// differentially execute escapees.
	const artifactTrials = 16
	for _, name := range []string{"tinycnn", "tinyresnet"} {
		orig := compileZoo(t, name)
		origOut := map[uint64]*model.IntTrace{}
		for trial := 0; trial < artifactTrials; trial++ {
			rng := rand.New(rand.NewPCG(uint64(trial), 0xdf01))
			for _, mu := range artifactMutations {
				mut := cloneCompiled(orig)
				if !mu.apply(rng, mut) {
					continue
				}
				if _, err := Check(mut); err != nil {
					record(mu.name, true)
					continue
				}
				record(mu.name, false)
				// Escapee: prove the mutant executes bit-identically.
				seed := uint64(trial)
				in := mutationInput(seed, orig.Net.InputShape)
				want, ok := origOut[seed]
				if !ok {
					var err error
					want, err = sim.ForwardAP(orig, in)
					if err != nil {
						t.Fatal(err)
					}
					origOut[seed] = want
				}
				got, err := sim.ForwardAP(mut, in)
				if err != nil || !tracesEqual(want, got) {
					t.Fatalf("%s: %s mutant passed verification but diverges from the original (err=%v)",
						name, mu.name, err)
				}
			}
		}
	}

	// Shard domain: mutate clones of certified shard plans; escapees must
	// execute bit-identically through the sharded path.
	comp := compileZoo(t, "tinyresnet")
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xdf02))
		k := 2 + trial%2
		base := shardPlan(t, comp, k)
		for _, mu := range shardMutations {
			mut := *base
			mut.Stages = append([]core.StageRange(nil), base.Stages...)
			for i := range mut.Stages {
				mut.Stages[i].XferRefs = append([]int(nil), base.Stages[i].XferRefs...)
			}
			if !mu.apply(rng, comp, &mut) {
				continue
			}
			if err := AuditShard(comp, &mut); err != nil {
				record(mu.name, true)
				continue
			}
			record(mu.name, false)
			in := mutationInput(uint64(trial), comp.Net.InputShape)
			want, err1 := sim.ForwardAPSharded(comp, base, in)
			got, err2 := sim.ForwardAPSharded(comp, &mut, in)
			if err1 != nil || err2 != nil || !tracesEqual(want, got) {
				t.Fatalf("%s mutant passed shard certification but diverges (err1=%v err2=%v)",
					mu.name, err1, err2)
			}
		}
	}

	// Certificate domain: tampered certificates must fail Validate;
	// an escapee must be byte-identical re-encoded (a no-op mutation).
	cert, err := Check(comp)
	if err != nil {
		t.Fatal(err)
	}
	origEnc, err := cert.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xdf03))
		for _, mu := range certMutations {
			mut := cloneCert(cert)
			if !mu.apply(rng, mut) {
				continue
			}
			if err := mut.Validate(comp); err != nil {
				record(mu.name, true)
				continue
			}
			record(mu.name, false)
			enc, err := mut.Encode()
			if err != nil || string(enc) != string(origEnc) {
				t.Fatalf("%s mutant passed Validate but is not byte-identical to the original certificate", mu.name)
			}
		}
	}

	names := make([]string, 0, len(tally))
	total, killed := 0, 0
	for name, tl := range tally {
		names = append(names, name)
		total += tl.Total
		killed += tl.Killed
	}
	sort.Strings(names)
	for _, name := range names {
		tl := tally[name]
		t.Logf("%-28s %3d/%3d", name, tl.Killed, tl.Total)
	}
	if len(tally) < 10 {
		t.Fatalf("only %d corruption operators applied; want >= 10", len(tally))
	}
	if total < 500 {
		t.Fatalf("mutation harness generated only %d mutants; generator regressed", total)
	}
	rate := float64(killed) / float64(total)
	t.Logf("killed %d/%d mutants (%.1f%%)", killed, total, 100*rate)

	if out := os.Getenv("RTMAP_MUTATION_OUT"); out != "" {
		report := struct {
			Verifier  string              `json:"verifier"`
			Total     int                 `json:"total"`
			Killed    int                 `json:"killed"`
			Rate      float64             `json:"rate"`
			Operators map[string]*opTally `json:"operators"`
		}{"dataflow", total, killed, rate, tally}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if rate < 0.95 {
		t.Fatalf("mutation kill rate %.1f%% < 95%% (%d/%d)", 100*rate, killed, total)
	}
}
