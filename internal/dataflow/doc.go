// Package dataflow is the whole-artifact static verifier: an abstract
// interpreter over compiled models that proves the seams between tile
// programs, not just the programs themselves (ap.AuditPlan's job).
//
// Check re-derives, independently of the compiler's lowering code:
//
//   - per-column liveness and producer/consumer chains across every
//     (strip, tile) program boundary — every consumed activation column
//     has exactly one producer, resident in the strip the consuming
//     program runs on, with a storage format matching the producer's
//     band;
//   - value intervals composed across layer boundaries (through im2col
//     patch expansion, pooling, residual skip connections), proving
//     every conv accumulator width can never overflow;
//   - the consumed input set of every tile program against the layer's
//     ternary weights, so a rerouted, duplicated or dropped producer
//     column is caught before anything executes.
//
// A clean artifact yields a PlanCertificate: a machine-readable JSON
// record of the strengthened cross-layer ranges, content-addressed by
// core.ArtifactHash through the artifact cache. Serve admission trusts
// a stored certificate instead of re-verifying (certificate hit), and
// the planned bit-sliced/JIT interpreter can consume the certified
// ranges to justify branch-free lanes.
//
// AuditShard extends the same treatment to core.Partition shard plans:
// stage ranges must be disjoint and exhaustive, and every boundary
// transfer set must equal the statically computed live set (skip
// connections included) with exactly the declared payload bits.
//
// The package registers itself with core.RegisterDataflowVerifier, so
// linking it in makes Config.VerifyDataflow work; core itself never
// imports it back.
package dataflow
