package dispatch

import "time"

// FormerOptions sizes a Former. Zero values select the documented
// defaults.
type FormerOptions struct {
	// MaxBatch caps batch size (default 8; 1 disables coalescing).
	MaxBatch int
	// Window bounds how long formation waits for follow-up work after
	// the first ticket of a batch (default 2ms). The effective wait is
	// adaptive — see NextWindow.
	Window time.Duration
	// StarveLimit bounds bulk starvation: a bulk ticket that has waited
	// at least this long is promoted into the next batch ahead of the
	// priority order, so sustained interactive pressure can slow bulk
	// down but never park it forever. Default 8×Window.
	StarveLimit time.Duration
}

func (o FormerOptions) withDefaults() FormerOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Millisecond
	}
	if o.StarveLimit <= 0 {
		o.StarveLimit = 8 * o.Window
	}
	return o
}

// Former is deadline- and class-aware micro-batch formation policy. The
// caller pushes tickets as they arrive and asks Form whether a batch
// should dispatch now; Former owns only the pending set and the
// decision, never a clock or a goroutine, so scripted tests drive it
// deterministically.
//
// Decision rules, in order:
//
//   - tickets whose deadline has already passed are cancelled (returned
//     as expired) before they can occupy batch capacity;
//   - a full batch (MaxBatch pending) dispatches immediately;
//   - otherwise the batch dispatches when the coalescing window closes —
//     or EARLIER, at the latest instant that still leaves the tightest
//     pending deadline its estimated execution time (early close: a
//     tight deadline is never sacrificed to batching opportunity);
//   - composition takes interactive first, then standard, then bulk,
//     FIFO within a class, so interactive never queues behind bulk; a
//     bulk ticket that has starved past StarveLimit is promoted to the
//     front of the next batch.
//
// Not safe for concurrent use: one Former belongs to one batcher
// goroutine.
type Former struct {
	opts FormerOptions
	wait time.Duration // adaptive window, see NextWindow
	// perItem is the caller-refreshed per-item execution estimate the
	// early-close rule prices dispatch-to-completion with.
	perItem time.Duration
	q       [NumClasses][]Ticket // pending, indexed by Class.rank()
	n       int
}

// NewFormer returns an empty Former.
func NewFormer(opts FormerOptions) *Former {
	opts = opts.withDefaults()
	return &Former{opts: opts, wait: opts.Window}
}

// Push adds one ticket to the pending set.
func (f *Former) Push(t Ticket) {
	f.q[t.Class.rank()] = append(f.q[t.Class.rank()], t)
	f.n++
}

// Pending returns the number of tickets waiting to be formed.
func (f *Former) Pending() int { return f.n }

// Window returns the current adaptive coalescing window.
func (f *Former) Window() time.Duration { return f.wait }

// SetPerItemEstimate refreshes the per-item execution time estimate
// used by the early-close rule (0 disables early close until the
// caller has a measurement).
func (f *Former) SetPerItemEstimate(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.perItem = d
}

// Form decides whether a batch should dispatch at now. It returns the
// formed batch (nil when formation should keep waiting), the tickets
// cancelled because their deadline already passed, and — when batch is
// nil and tickets remain — the wake time at which the decision changes
// without further arrivals. force dispatches whatever is pending
// regardless of the window (drain paths). Callers loop until batch
// comes back nil: one call forms at most MaxBatch.
func (f *Former) Form(now time.Time, force bool) (batch, expired []Ticket, wake time.Time) {
	expired = f.dropExpired(now)
	if f.n == 0 {
		return nil, expired, time.Time{}
	}
	if !force && f.n < f.opts.MaxBatch {
		close := f.closeTime()
		if close.After(now) {
			return nil, expired, close
		}
	}
	return f.compose(now), expired, time.Time{}
}

// dropExpired removes every pending ticket whose deadline has passed.
func (f *Former) dropExpired(now time.Time) []Ticket {
	var out []Ticket
	for c := range f.q {
		kept := f.q[c][:0]
		for _, t := range f.q[c] {
			if t.Expired(now) {
				out = append(out, t)
				f.n--
			} else {
				kept = append(kept, t)
			}
		}
		f.q[c] = kept
	}
	return out
}

// closeTime is the instant formation stops waiting: the adaptive
// window measured from the oldest pending ticket, pulled earlier by any
// pending deadline so that dispatch still leaves it the estimated
// execution time of the would-be batch.
func (f *Former) closeTime() time.Time {
	var close time.Time
	est := time.Duration(min(f.n, f.opts.MaxBatch)) * f.perItem
	if est <= 0 {
		// Cold start: no execution estimate yet. Still close strictly
		// before the deadline — dispatching AT the deadline guarantees a
		// miss, and real timers always overshoot their wake a little.
		est = f.opts.Window / 8
	}
	for c := range f.q {
		for _, t := range f.q[c] {
			windowEnd := t.Enqueued.Add(f.wait)
			if close.IsZero() || windowEnd.Before(close) {
				close = windowEnd
			}
			if !t.Deadline.IsZero() {
				if latest := t.Deadline.Add(-est); latest.Before(close) {
					close = latest
				}
			}
		}
	}
	return close
}

// compose pops up to MaxBatch tickets in priority order: a starved
// bulk ticket first (anti-starvation), then interactive, standard,
// bulk, FIFO within each class. Updates the adaptive window.
func (f *Former) compose(now time.Time) []Ticket {
	batch := make([]Ticket, 0, min(f.n, f.opts.MaxBatch))
	bulk := ClassBulk.rank()
	if len(f.q[bulk]) > 0 && now.Sub(f.q[bulk][0].Enqueued) >= f.opts.StarveLimit {
		batch = append(batch, f.q[bulk][0])
		f.q[bulk] = f.q[bulk][1:]
		f.n--
	}
	for c := range f.q {
		for len(batch) < f.opts.MaxBatch && len(f.q[c]) > 0 {
			batch = append(batch, f.q[c][0])
			f.q[c] = f.q[c][1:]
			f.n--
		}
	}
	f.wait = NextWindow(f.wait, len(batch), f.opts.MaxBatch, f.opts.Window)
	return batch
}

// NextWindow is the adaptive coalescing-window update: full batches
// halve the wait (floored at window/8) because traffic is dense enough
// that waiting longer only adds latency; everything else doubles it
// back (capped at the configured window) to recover batching
// opportunity. The restore must trigger on every non-full batch, not
// just singletons: under moderate traffic that fills 2..MaxBatch-1
// items per window a singleton may never occur, and a once-halved
// window would otherwise stay small forever.
func NextWindow(wait time.Duration, size, maxBatch int, window time.Duration) time.Duration {
	if size >= maxBatch {
		return max(wait/2, window/8)
	}
	return min(wait*2, window)
}
