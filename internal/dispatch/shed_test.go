package dispatch

import (
	"testing"
	"time"
)

// The estimator converges on the true per-item interval and prices
// queue depth linearly from it.
func TestDelayEstimatorConverges(t *testing.T) {
	var e DelayEstimator
	if e.Estimate(100) != 0 {
		t.Fatal("cold estimator must estimate 0 (admit everything)")
	}
	for i := 0; i < 50; i++ {
		e.Observe(4, 8*time.Millisecond, 2) // 8ms / (4 items × 2 replicas) = 1ms/item
	}
	per := e.PerItem()
	if per < 900*time.Microsecond || per > 1100*time.Microsecond {
		t.Fatalf("per-item estimate %v, want ~1ms", per)
	}
	est := e.Estimate(10)
	if est < 9*time.Millisecond || est > 11*time.Millisecond {
		t.Fatalf("depth-10 delay estimate %v, want ~10ms", est)
	}
}

// Degenerate observations never corrupt the estimate.
func TestDelayEstimatorIgnoresDegenerate(t *testing.T) {
	var e DelayEstimator
	e.Observe(0, time.Second, 1)
	e.Observe(4, 0, 1)
	e.Observe(4, -time.Second, 1)
	if e.PerItem() != 0 {
		t.Fatalf("degenerate observations moved the estimate to %v", e.PerItem())
	}
	e.Observe(1, time.Millisecond, 0) // par clamps to 1
	if e.PerItem() != time.Millisecond {
		t.Fatalf("par=0 observation gave %v, want 1ms", e.PerItem())
	}
}

func TestShedPolicyDeadlines(t *testing.T) {
	now := t0
	p := ShedPolicy{} // no operator bound: deadline-driven only

	// No deadline, no bound: always admit.
	if v := p.Admit(ClassStandard, time.Time{}, now, time.Hour); !v.Accept {
		t.Fatalf("unbounded policy shed a deadline-less request: %q", v.Reason)
	}
	// Meetable deadline admits.
	if v := p.Admit(ClassInteractive, now.Add(10*time.Millisecond), now, 5*time.Millisecond); !v.Accept {
		t.Fatalf("meetable deadline shed: %q", v.Reason)
	}
	// Unmeetable deadline sheds with RetryAfter = excess delay.
	v := p.Admit(ClassInteractive, now.Add(10*time.Millisecond), now, 30*time.Millisecond)
	if v.Accept {
		t.Fatal("admitted a request whose queue delay exceeds its deadline budget")
	}
	if v.RetryAfter != 20*time.Millisecond {
		t.Fatalf("RetryAfter %v, want the 20ms excess", v.RetryAfter)
	}
	// Already-expired deadline sheds immediately.
	if v := p.Admit(ClassStandard, now.Add(-time.Millisecond), now, 0); v.Accept {
		t.Fatal("admitted an already-expired request")
	}
}

func TestShedPolicyQueueBound(t *testing.T) {
	now := t0
	p := ShedPolicy{MaxQueueDelay: 10 * time.Millisecond}

	if v := p.Admit(ClassStandard, time.Time{}, now, 9*time.Millisecond); !v.Accept {
		t.Fatalf("under-bound request shed: %q", v.Reason)
	}
	v := p.Admit(ClassStandard, time.Time{}, now, 15*time.Millisecond)
	if v.Accept {
		t.Fatal("admitted past the queue-delay bound")
	}
	if v.RetryAfter != 5*time.Millisecond {
		t.Fatalf("RetryAfter %v, want 5ms (excess over the bound)", v.RetryAfter)
	}
	// Bulk sheds at half the bound: first class to go under pressure.
	if v := p.Admit(ClassBulk, time.Time{}, now, 7*time.Millisecond); v.Accept {
		t.Fatal("bulk admitted past half the bound")
	}
	if v := p.Admit(ClassInteractive, time.Time{}, now, 7*time.Millisecond); !v.Accept {
		t.Fatalf("interactive shed under the bound: %q", v.Reason)
	}
}
