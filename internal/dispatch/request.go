package dispatch

import (
	"fmt"
	"time"
)

// Class is a request's priority class. Lower values are more
// latency-sensitive: batch formation serves interactive before
// standard before bulk, and the shedder drops bulk first under
// pressure.
type Class int

const (
	// ClassInteractive is latency-sensitive traffic: it never queues
	// behind standard or bulk work in batch formation. The zero value is
	// deliberately NOT interactive — an absent class must not claim
	// priority — so ClassStandard is 0.
	ClassStandard Class = iota
	ClassInteractive
	ClassBulk
)

// NumClasses is the number of priority classes (array sizing).
const NumClasses = 3

// String returns the wire name of the class.
func (c Class) String() string {
	switch c {
	case ClassStandard:
		return "standard"
	case ClassInteractive:
		return "interactive"
	case ClassBulk:
		return "bulk"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// rank orders classes for batch formation: interactive first, bulk
// last.
func (c Class) rank() int {
	switch c {
	case ClassInteractive:
		return 0
	case ClassStandard:
		return 1
	case ClassBulk:
		return 2
	}
	return 1
}

// ParseClass maps a wire string to a Class. The empty string is
// standard (the default for requests that carry no class). Unknown
// strings are a client error — the caller answers 400, it never
// defaults silently.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "standard":
		return ClassStandard, nil
	case "interactive":
		return ClassInteractive, nil
	case "bulk":
		return ClassBulk, nil
	}
	return ClassStandard, fmt.Errorf("dispatch: unknown priority class %q (interactive, standard, bulk)", s)
}

// Ticket is one queued unit of work as the scheduler sees it: its
// class, its absolute deadline (zero = none), when it entered the
// queue, and an opaque payload the caller gets back untouched.
type Ticket struct {
	Class    Class
	Deadline time.Time
	Enqueued time.Time
	Payload  any
}

// Expired reports whether the ticket's deadline has passed at now.
// Deadline-less tickets never expire.
func (t Ticket) Expired(now time.Time) bool {
	return !t.Deadline.IsZero() && !t.Deadline.After(now)
}
