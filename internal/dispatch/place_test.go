package dispatch

import "testing"

func TestLeastLoaded(t *testing.T) {
	devs := []DeviceLoad{
		{Queued: 2, BusyNS: 10},
		{Queued: 1, BusyNS: 50, Dead: true},
		{Queued: 1, BusyNS: 30},
		{Queued: 1, BusyNS: 20},
	}
	if got := LeastLoaded(devs); got != 3 {
		t.Fatalf("LeastLoaded = %d, want 3 (fewest queued, least busy, alive)", got)
	}
	if got := LeastLoaded([]DeviceLoad{{Dead: true}, {Dead: true}}); got != -1 {
		t.Fatalf("all-dead fleet: %d, want -1", got)
	}
	if got := LeastLoaded(nil); got != -1 {
		t.Fatalf("empty fleet: %d, want -1", got)
	}
}

func TestPickReplica(t *testing.T) {
	reps := []ReplicaLoad{
		{Head: DeviceLoad{Queued: 0}, Batches: 5, Live: false}, // dead despite coolest head
		{Head: DeviceLoad{Queued: 1}, Batches: 9, Live: true},
		{Head: DeviceLoad{Queued: 1}, Batches: 3, Live: true}, // round-robin tilt wins
		{Head: DeviceLoad{Queued: 2}, Batches: 0, Live: true},
	}
	if got := PickReplica(reps); got != 2 {
		t.Fatalf("PickReplica = %d, want 2", got)
	}
	if got := PickReplica([]ReplicaLoad{{Live: false}}); got != -1 {
		t.Fatalf("no live replica: %d, want -1", got)
	}
}

func TestPlacementOrder(t *testing.T) {
	devs := []DeviceLoad{
		{Queued: 3},
		{Queued: 0, BusyNS: 9},
		{Queued: 0, BusyNS: 1},
		{Dead: true},
		{Queued: 1},
	}
	got := PlacementOrder(devs)
	want := []int{2, 1, 4, 0}
	if len(got) != len(want) {
		t.Fatalf("order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
