package dispatch

import "time"

// Per-class attempt-timeout defaults for the cluster router: how long one
// proxied attempt against one node may take before the router gives up on
// that node and (policy permitting) tries the next owner. Interactive
// traffic fails over fast; bulk traffic tolerates long service times
// (large batches under wall-time dilation) rather than churning retries.
const (
	DefaultTimeoutInteractive = 2 * time.Second
	DefaultTimeoutStandard    = 10 * time.Second
	DefaultTimeoutBulk        = 60 * time.Second
)

// AttemptTimeouts carries the per-class attempt-timeout bases the router
// derives per-request timeouts from. Zero fields select the defaults.
type AttemptTimeouts struct {
	Interactive time.Duration
	Standard    time.Duration
	Bulk        time.Duration
}

// base returns the class's configured base timeout.
func (t AttemptTimeouts) base(c Class) time.Duration {
	pick := func(v, def time.Duration) time.Duration {
		if v > 0 {
			return v
		}
		return def
	}
	switch c {
	case ClassInteractive:
		return pick(t.Interactive, DefaultTimeoutInteractive)
	case ClassBulk:
		return pick(t.Bulk, DefaultTimeoutBulk)
	default:
		return pick(t.Standard, DefaultTimeoutStandard)
	}
}

// AttemptTimeout derives the per-attempt timeout for a request of class c
// with `remaining` deadline budget left (zero remaining means the request
// carries no deadline; negative means the deadline already passed). The
// timeout is the class base clamped to the remaining budget: an attempt
// must never outlive the deadline it serves — past that point the
// node-side deadline gate would cancel the work anyway, so waiting longer
// only ties up a router slot. The clamp floors at MinAttemptTimeout so a
// nearly expired (or just-expired) request still gets one honest attempt
// instead of an instant context cancellation — callers should stop
// retrying once remaining goes non-positive rather than rely on this.
func (t AttemptTimeouts) AttemptTimeout(c Class, remaining time.Duration) time.Duration {
	d := t.base(c)
	if remaining < 0 {
		// An expired deadline must not un-clamp back to the full class
		// base: that would let a dead request keep consuming full-length
		// attempts.
		return MinAttemptTimeout
	}
	if remaining > 0 && remaining < d {
		d = remaining
	}
	if d < MinAttemptTimeout {
		d = MinAttemptTimeout
	}
	return d
}

// MinAttemptTimeout is the floor under deadline-clamped attempt timeouts.
const MinAttemptTimeout = 10 * time.Millisecond
