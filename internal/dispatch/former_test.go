package dispatch

import (
	"testing"
	"time"
)

// t0 anchors every scripted schedule; the Manual clock starts here.
var t0 = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func ticket(c Class, enq time.Time, deadline time.Duration) Ticket {
	t := Ticket{Class: c, Enqueued: enq}
	if deadline > 0 {
		t.Deadline = enq.Add(deadline)
	}
	return t
}

// payloads labels tickets so composition order is assertable.
func labeled(c Class, enq time.Time, deadline time.Duration, label string) Ticket {
	t := ticket(c, enq, deadline)
	t.Payload = label
	return t
}

func labels(batch []Ticket) []string {
	out := make([]string, len(batch))
	for i, t := range batch {
		out[i] = t.Payload.(string)
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Formation order: interactive before standard before bulk, FIFO
// within a class, regardless of arrival order — an interactive arrival
// never queues behind earlier bulk work.
func TestFormationPriorityOrder(t *testing.T) {
	clk := NewManual(t0)
	f := NewFormer(FormerOptions{MaxBatch: 8, Window: time.Millisecond})
	f.Push(labeled(ClassBulk, clk.Now(), 0, "b1"))
	f.Push(labeled(ClassStandard, clk.Now(), 0, "s1"))
	f.Push(labeled(ClassBulk, clk.Now(), 0, "b2"))
	f.Push(labeled(ClassInteractive, clk.Now(), 0, "i1"))
	f.Push(labeled(ClassStandard, clk.Now(), 0, "s2"))

	clk.Advance(2 * time.Millisecond) // window expired
	batch, expired, _ := f.Form(clk.Now(), false)
	if len(expired) != 0 {
		t.Fatalf("%d tickets expired, want 0", len(expired))
	}
	want := []string{"i1", "s1", "s2", "b1", "b2"}
	if !eq(labels(batch), want) {
		t.Fatalf("batch order %v, want %v", labels(batch), want)
	}
	if f.Pending() != 0 {
		t.Fatalf("%d pending after full drain", f.Pending())
	}
}

// A full batch dispatches immediately, without waiting for the window,
// and composition still honors priority.
func TestFormationFullBatchDispatchesEagerly(t *testing.T) {
	clk := NewManual(t0)
	f := NewFormer(FormerOptions{MaxBatch: 2, Window: time.Hour})
	f.Push(labeled(ClassBulk, clk.Now(), 0, "b1"))
	f.Push(labeled(ClassInteractive, clk.Now(), 0, "i1"))
	f.Push(labeled(ClassStandard, clk.Now(), 0, "s1"))

	batch, _, _ := f.Form(clk.Now(), false) // same instant: no time passed
	if !eq(labels(batch), []string{"i1", "s1"}) {
		t.Fatalf("first batch %v, want [i1 s1]", labels(batch))
	}
	// One pending item < MaxBatch: formation waits for the window again.
	batch, _, wake := f.Form(clk.Now(), false)
	if batch != nil {
		t.Fatalf("undersized batch dispatched immediately: %v", labels(batch))
	}
	if wake.IsZero() || !wake.After(clk.Now()) {
		t.Fatalf("no future wake time for the pending remainder (wake %v)", wake)
	}
}

// Early close: a tight deadline pulls dispatch to deadline−exec rather
// than the window end.
func TestFormationEarlyCloseOnTightDeadline(t *testing.T) {
	clk := NewManual(t0)
	f := NewFormer(FormerOptions{MaxBatch: 8, Window: 10 * time.Millisecond})
	f.SetPerItemEstimate(time.Millisecond)

	f.Push(labeled(ClassStandard, clk.Now(), 0, "s1"))
	batch, _, wake := f.Form(clk.Now(), false)
	if batch != nil {
		t.Fatal("deadline-less singleton dispatched before its window")
	}
	if got := wake.Sub(clk.Now()); got != 10*time.Millisecond {
		t.Fatalf("deadline-less wake after %v, want the full 10ms window", got)
	}

	// A 4ms-deadline interactive arrival must close the window at
	// deadline − 2 items × 1ms/item = t+2ms, not t+10ms.
	f.Push(labeled(ClassInteractive, clk.Now(), 4*time.Millisecond, "i1"))
	batch, _, wake = f.Form(clk.Now(), false)
	if batch != nil {
		t.Fatal("dispatched before the early-close instant")
	}
	if got := wake.Sub(clk.Now()); got != 2*time.Millisecond {
		t.Fatalf("early close after %v, want 2ms (deadline 4ms − 2×1ms exec)", got)
	}

	clk.Advance(2 * time.Millisecond)
	batch, expired, _ := f.Form(clk.Now(), false)
	if len(expired) != 0 {
		t.Fatalf("expired %d tickets at the early-close instant", len(expired))
	}
	if !eq(labels(batch), []string{"i1", "s1"}) {
		t.Fatalf("early-closed batch %v, want [i1 s1]", labels(batch))
	}
}

// Tickets whose deadline passed while queued are cancelled, never
// dispatched.
func TestFormationCancelsExpired(t *testing.T) {
	clk := NewManual(t0)
	f := NewFormer(FormerOptions{MaxBatch: 8, Window: time.Millisecond})
	f.Push(labeled(ClassInteractive, clk.Now(), 500*time.Microsecond, "dead"))
	f.Push(labeled(ClassStandard, clk.Now(), 0, "alive"))

	clk.Advance(2 * time.Millisecond)
	batch, expired, _ := f.Form(clk.Now(), false)
	if len(expired) != 1 || expired[0].Payload.(string) != "dead" {
		t.Fatalf("expired %v, want exactly [dead]", labels(expired))
	}
	if !eq(labels(batch), []string{"alive"}) {
		t.Fatalf("batch %v, want [alive]", labels(batch))
	}
}

// Non-starvation: under sustained interactive pressure that always
// fills MaxBatch, a bulk ticket older than StarveLimit is promoted so
// bulk still drains.
func TestFormationBulkNeverStarves(t *testing.T) {
	clk := NewManual(t0)
	f := NewFormer(FormerOptions{MaxBatch: 2, Window: time.Millisecond, StarveLimit: 4 * time.Millisecond})
	f.Push(labeled(ClassBulk, clk.Now(), 0, "bulk"))

	// Keep two interactive tickets pending at every formation: without
	// the anti-starvation rule, bulk would never be chosen.
	served := 0
	for round := 0; round < 10; round++ {
		f.Push(labeled(ClassInteractive, clk.Now(), 0, "i"))
		f.Push(labeled(ClassInteractive, clk.Now(), 0, "i"))
		batch, _, _ := f.Form(clk.Now(), false)
		if batch == nil {
			t.Fatalf("round %d: full queue did not dispatch", round)
		}
		for _, tk := range batch {
			if tk.Payload.(string) == "bulk" {
				served++
				age := clk.Now().Sub(tk.Enqueued)
				if age < 4*time.Millisecond {
					t.Fatalf("bulk promoted after only %v, before the 4ms starve limit", age)
				}
				if batch[0].Payload.(string) != "bulk" {
					t.Fatalf("starved bulk not at the front of its batch: %v", labels(batch))
				}
			}
		}
		clk.Advance(time.Millisecond)
	}
	if served != 1 {
		t.Fatalf("bulk ticket served %d times under interactive pressure, want exactly 1", served)
	}
}

// force drains everything pending regardless of windows (shutdown
// path), in priority order, MaxBatch at a time.
func TestFormationForceDrains(t *testing.T) {
	clk := NewManual(t0)
	f := NewFormer(FormerOptions{MaxBatch: 2, Window: time.Hour})
	f.Push(labeled(ClassBulk, clk.Now(), 0, "b1"))
	f.Push(labeled(ClassStandard, clk.Now(), 0, "s1"))
	f.Push(labeled(ClassStandard, clk.Now(), 0, "s2"))

	var got []string
	for f.Pending() > 0 {
		batch, _, _ := f.Form(clk.Now(), true)
		if len(batch) == 0 {
			t.Fatal("force formation returned an empty batch with tickets pending")
		}
		if len(batch) > 2 {
			t.Fatalf("force batch of %d exceeds MaxBatch 2", len(batch))
		}
		got = append(got, labels(batch)...)
	}
	if !eq(got, []string{"s1", "s2", "b1"}) {
		t.Fatalf("forced drain order %v, want [s1 s2 b1]", got)
	}
}

// The adaptive window halves on full batches (floored) and restores on
// any non-full batch (capped) — ported from the serve batcher, which
// now delegates here.
func TestNextWindowRestores(t *testing.T) {
	const maxBatch = 8
	window := 8 * time.Millisecond

	w := window
	for i := 0; i < 10; i++ {
		w = NextWindow(w, maxBatch, maxBatch, window)
	}
	if w != window/8 {
		t.Fatalf("dense traffic drove the window to %v, want floor %v", w, window/8)
	}
	// Mid-size batches (never a singleton) must restore the full window.
	for i := 0; i < 10; i++ {
		w = NextWindow(w, maxBatch/2, maxBatch, window)
	}
	if w != window {
		t.Fatalf("mid-size batches restored the window to %v, want %v", w, window)
	}
	if got := NextWindow(window, 1, maxBatch, window); got != window {
		t.Fatalf("window overshot to %v", got)
	}
}

// ParseClass round-trips the wire names, defaults the empty string to
// standard, and rejects junk.
func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", ClassStandard, true},
		{"standard", ClassStandard, true},
		{"interactive", ClassInteractive, true},
		{"bulk", ClassBulk, true},
		{"Interactive", ClassStandard, false},
		{"junk", ClassStandard, false},
	} {
		got, err := ParseClass(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, c := range []Class{ClassInteractive, ClassStandard, ClassBulk} {
		if back, err := ParseClass(c.String()); err != nil || back != c {
			t.Errorf("round-trip %v -> %q -> %v, %v", c, c.String(), back, err)
		}
	}
}
