package dispatch

import (
	"testing"
	"time"
)

func TestAttemptTimeoutClampsToRemaining(t *testing.T) {
	var ts AttemptTimeouts
	cases := []struct {
		name      string
		class     Class
		remaining time.Duration
		want      time.Duration
	}{
		{"no deadline uses class base", ClassStandard, 0, DefaultTimeoutStandard},
		{"ample budget uses class base", ClassInteractive, time.Minute, DefaultTimeoutInteractive},
		{"tight budget clamps", ClassBulk, 500 * time.Millisecond, 500 * time.Millisecond},
		{"near-expired floors at minimum", ClassStandard, time.Millisecond, MinAttemptTimeout},
		// Negative remaining means the deadline already passed: it must
		// NOT read as "no deadline" and un-clamp to the full class base.
		{"expired gets the floor, not the base", ClassBulk, -time.Second, MinAttemptTimeout},
	}
	for _, c := range cases {
		if got := ts.AttemptTimeout(c.class, c.remaining); got != c.want {
			t.Errorf("%s: AttemptTimeout(%v, %v) = %v, want %v", c.name, c.class, c.remaining, got, c.want)
		}
	}
}
