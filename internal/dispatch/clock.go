package dispatch

import "time"

// Clock abstracts wall-clock reads so scheduling policy can be driven
// by a fake clock in tests. Production code uses RealClock; the policy
// types themselves take explicit time.Time parameters and never read a
// clock behind the caller's back.
type Clock interface {
	Now() time.Time
}

// RealClock reads the system clock.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() } //rtmap:wallclock-ok — the one real-clock adapter

// Manual is a hand-advanced fake clock for deterministic scheduler
// tests: Now returns exactly what the test set, and Advance moves it
// forward. Not safe for concurrent use — scripted tests are
// single-threaded by design.
type Manual struct{ now time.Time }

// NewManual returns a fake clock pinned at start.
func NewManual(start time.Time) *Manual { return &Manual{now: start} }

// Now returns the current fake time.
func (m *Manual) Now() time.Time { return m.now }

// Advance moves the fake clock forward by d and returns the new time.
func (m *Manual) Advance(d time.Duration) time.Time {
	m.now = m.now.Add(d)
	return m.now
}
