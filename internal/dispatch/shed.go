package dispatch

import (
	"fmt"
	"sync"
	"time"
)

// DelayEstimator tracks the live per-item service interval of one model
// as an EWMA and prices queue delay from it: a queue of depth d drains
// in roughly d × perItem. The fleet feeds it one observation per
// executed batch (wall time, item count, and the parallelism that wall
// time was amortized over); admission control reads it on every
// request. Safe for concurrent use.
type DelayEstimator struct {
	mu        sync.Mutex
	perItemNS float64
	samples   int64
}

// ewmaAlpha weights the newest batch observation. 0.2 smooths over ~5
// recent batches: reactive enough to track a load shift within a few
// windows, smooth enough that one slow batch does not trigger a shed
// storm.
const ewmaAlpha = 0.2

// Observe records one executed batch: items samples completed in wall
// time, with the service spread across par parallel servers (replicas).
// The per-item interval sample is wall/(items×par) — the interval at
// which the whole deployment retires items, which is what queue drain
// time depends on.
func (e *DelayEstimator) Observe(items int, wall time.Duration, par int) {
	if items <= 0 || wall <= 0 {
		return
	}
	if par < 1 {
		par = 1
	}
	sample := float64(wall.Nanoseconds()) / float64(items*par)
	e.mu.Lock()
	if e.samples == 0 {
		e.perItemNS = sample
	} else {
		e.perItemNS = ewmaAlpha*sample + (1-ewmaAlpha)*e.perItemNS
	}
	e.samples++
	e.mu.Unlock()
}

// PerItem returns the current per-item service interval estimate (0
// before the first observation).
func (e *DelayEstimator) PerItem() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.perItemNS)
}

// Estimate prices the queue delay a new arrival behind depth items
// would see. 0 before the first observation — cold starts admit.
func (e *DelayEstimator) Estimate(depth int) time.Duration {
	if depth < 0 {
		depth = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.perItemNS * float64(depth))
}

// ShedPolicy decides admission: requests whose estimated queue delay
// makes them pointless (deadline unmeetable) or harmful (queue past the
// operator's bound) are rejected at the door with a Retry-After derived
// from the same estimate, instead of being accepted and then missed.
type ShedPolicy struct {
	// MaxQueueDelay is the operator bound on estimated queue delay.
	// Bulk sheds at half this bound (it is the first class to go under
	// pressure); 0 disables the bound and sheds only on unmeetable
	// deadlines.
	MaxQueueDelay time.Duration
}

// Verdict is one admission decision.
type Verdict struct {
	Accept bool
	// RetryAfter is how long the client should back off before
	// retrying (rejections only): the estimated time for the queue to
	// drain back under the violated bound.
	RetryAfter time.Duration
	// Reason is the human-readable rejection cause.
	Reason string
}

// Admit decides whether a request of the given class and deadline
// (zero = none) may enter a queue whose current delay estimate is est.
func (p ShedPolicy) Admit(class Class, deadline, now time.Time, est time.Duration) Verdict {
	if !deadline.IsZero() {
		budget := deadline.Sub(now)
		if budget <= 0 {
			return Verdict{
				RetryAfter: time.Second,
				Reason:     "deadline already expired at admission",
			}
		}
		if est > budget {
			return Verdict{
				RetryAfter: est - budget,
				Reason: fmt.Sprintf("estimated queue delay %v exceeds deadline budget %v",
					est.Round(time.Microsecond), budget.Round(time.Microsecond)),
			}
		}
	}
	if p.MaxQueueDelay > 0 {
		limit := p.MaxQueueDelay
		if class == ClassBulk {
			limit = p.MaxQueueDelay / 2
		}
		if est > limit {
			return Verdict{
				RetryAfter: est - limit,
				Reason: fmt.Sprintf("estimated queue delay %v exceeds the %v %s bound",
					est.Round(time.Microsecond), limit.Round(time.Microsecond), class),
			}
		}
	}
	return Verdict{Accept: true}
}
