package dispatch

import (
	"fmt"
	"time"
)

// Config is one deployment shape for a model: how many data-parallel
// replicas, each a pipeline of how many shard stages. Replicas×Stages
// devices total.
type Config struct {
	Replicas int
	Stages   int
}

// Devices returns the device count the config occupies.
func (c Config) Devices() int { return c.Replicas * c.Stages }

func (c Config) String() string {
	return fmt.Sprintf("%dr×%ds", c.Replicas, c.Stages)
}

// Signal is one autoscaler tick's input: the live demand measurements
// and the capacity model to price candidate configs with.
type Signal struct {
	// ArrivalPerSec is the measured request arrival rate since the last
	// tick.
	ArrivalPerSec float64
	// QueueDepth is the model's pending item count (batcher queue).
	QueueDepth int
	// QueueDelay is the DelayEstimator's current drain-time estimate
	// for that depth.
	QueueDelay time.Duration
	// MaxDevices bounds candidate configs to the live fleet;
	// MaxStages bounds pipeline depth (the operator's -shard-stages,
	// clamped by the caller to the model's layer count).
	MaxDevices int
	MaxStages  int
	// Throughput prices a candidate config in sustainable requests per
	// second. The caller builds it from the sim cost models
	// (AnalyzeReplicatedBatch / AnalyzePipeline) calibrated against
	// measured service time; it must be monotone in Replicas.
	Throughput func(Config) float64
}

// ScalerOptions tunes the hysteresis. Zero values select defaults.
type ScalerOptions struct {
	// Headroom is the capacity margin demand is padded by before
	// comparison (default 1.25): scale up when demand×Headroom exceeds
	// modeled capacity.
	Headroom float64
	// ShrinkAt triggers scale-down when demand×Headroom falls below
	// capacity×ShrinkAt (default 0.4). The gap between "needs more"
	// (1/Headroom of capacity) and "needs less" (ShrinkAt of capacity)
	// is the hysteresis band that keeps a steady load from flapping.
	ShrinkAt float64
	// HoldTicks is how many CONSECUTIVE ticks a pressure signal must
	// persist before a resize (default 3): oscillating load resets the
	// streak and never scales.
	HoldTicks int
	// CooldownTicks is how many ticks after a resize the scaler stays
	// quiet, letting the new config's measurements settle (default 4).
	CooldownTicks int
}

func (o ScalerOptions) withDefaults() ScalerOptions {
	if o.Headroom <= 1 {
		o.Headroom = 1.25
	}
	if o.ShrinkAt <= 0 || o.ShrinkAt >= 1 {
		o.ShrinkAt = 0.4
	}
	if o.HoldTicks <= 0 {
		o.HoldTicks = 3
	}
	if o.CooldownTicks <= 0 {
		o.CooldownTicks = 4
	}
	return o
}

// Scaler decides, tick by tick, what deployment shape a model should
// have. It is pure policy with hysteresis state: the caller owns the
// tick cadence, measurement, and the application of decisions
// (Registry.Rescale in internal/serve). One Scaler per model; not safe
// for concurrent use.
type Scaler struct {
	opts     ScalerOptions
	cur      Config
	up, down int // consecutive-tick pressure streaks
	cooldown int
}

// NewScaler returns a scaler currently at initial.
func NewScaler(opts ScalerOptions, initial Config) *Scaler {
	if initial.Replicas < 1 {
		initial.Replicas = 1
	}
	if initial.Stages < 1 {
		initial.Stages = 1
	}
	return &Scaler{opts: opts.withDefaults(), cur: initial}
}

// Current returns the config the scaler believes is deployed.
func (s *Scaler) Current() Config { return s.cur }

// SetCurrent overrides the deployed config (the applied placement can
// clamp below what Evaluate asked for — fewer live devices, fewer
// layers than stages). Keeping the scaler honest about what actually
// runs keeps its demand/capacity comparisons meaningful.
func (s *Scaler) SetCurrent(c Config) { s.cur = c }

// Evaluate consumes one tick's signal and returns the config the model
// should run plus whether that is a change (with the reason). Pressure
// must persist HoldTicks consecutive ticks to trigger, and after any
// change the scaler sleeps CooldownTicks — together these are the
// anti-flapping hysteresis the scheduler tests pin down.
func (s *Scaler) Evaluate(sig Signal) (cfg Config, changed bool, reason string) {
	if s.cooldown > 0 {
		s.cooldown--
		return s.cur, false, ""
	}
	if sig.Throughput == nil {
		return s.cur, false, ""
	}
	capacity := sig.Throughput(s.cur)
	demand := sig.ArrivalPerSec * s.opts.Headroom
	// A deep queue is demand too: even if arrivals paused, the backlog
	// must drain. Price it as the rate needed to clear within ~1s.
	if sig.QueueDelay > time.Second {
		demand = max(demand, capacity*s.opts.Headroom*1.01)
	}
	switch {
	case capacity <= 0 || demand > capacity:
		s.up, s.down = s.up+1, 0
	case demand < capacity*s.opts.ShrinkAt && s.cur != (Config{Replicas: 1, Stages: 1}):
		s.down, s.up = s.down+1, 0
	default:
		s.up, s.down = 0, 0
	}

	if s.up >= s.opts.HoldTicks {
		if next, ok := s.pick(sig, demand); ok && next != s.cur {
			return s.resize(next, fmt.Sprintf("demand %.0f/s (with headroom) > capacity %.0f/s", demand, capacity))
		}
		s.up = 0 // already at the best feasible config
		return s.cur, false, ""
	}
	if s.down >= s.opts.HoldTicks {
		if next, ok := s.pick(sig, demand); ok && next.Devices() < s.cur.Devices() {
			return s.resize(next, fmt.Sprintf("demand %.0f/s (with headroom) < %.0f%% of capacity %.0f/s",
				demand, 100*s.opts.ShrinkAt, capacity))
		}
		s.down = 0
		return s.cur, false, ""
	}
	return s.cur, false, ""
}

// resize commits a decision and arms the cooldown.
func (s *Scaler) resize(next Config, reason string) (Config, bool, string) {
	s.cur = next
	s.up, s.down = 0, 0
	s.cooldown = s.opts.CooldownTicks
	return next, true, reason
}

// pick searches candidate configs (replicas × stages within the device
// and stage bounds) for the cheapest one whose modeled throughput
// covers demand — fewest devices, ties to fewer stages (stage hops add
// transfer latency replicas don't). When nothing covers demand it
// returns the highest-throughput candidate: saturated is still better
// than drowning.
func (s *Scaler) pick(sig Signal, demand float64) (Config, bool) {
	maxDev := sig.MaxDevices
	if maxDev < 1 {
		maxDev = 1
	}
	maxStages := sig.MaxStages
	if maxStages < 1 {
		maxStages = 1
	}
	var best Config
	var bestTP float64
	found := false
	for st := 1; st <= maxStages; st++ {
		for r := 1; r*st <= maxDev; r++ {
			c := Config{Replicas: r, Stages: st}
			tp := sig.Throughput(c)
			if tp >= demand {
				if !found || c.Devices() < best.Devices() ||
					(c.Devices() == best.Devices() && c.Stages < best.Stages) {
					best, bestTP, found = c, tp, true
				}
			} else if !found && tp > bestTP {
				best, bestTP = c, tp
			}
		}
	}
	if best == (Config{}) {
		return s.cur, false
	}
	return best, true
}
