// Package dispatch holds the serving scheduler's policy logic: priority
// classes and deadlines (request.go), deadline-aware micro-batch
// formation (former.go), queue-delay estimation and load shedding
// (shed.go), replica/device placement selection (place.go), and the
// replica/stage autoscaler (scaler.go).
//
// Everything in this package is pure policy: no goroutines, no
// channels, no wall-clock reads. Time enters exclusively through
// explicit parameters (or the Clock interface in clock.go), which is
// what makes the fake-clock test suite deterministic. The mechanics —
// queues, device goroutines, HTTP — stay in internal/serve, which feeds
// this package snapshots and applies its decisions.
//
// The name is "dispatch" rather than "sched" because the Go toolchain
// reserves internal/sched inside GOROOT and tooling confuses the two.
package dispatch
