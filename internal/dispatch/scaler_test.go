package dispatch

import (
	"testing"
	"time"
)

// linearTP models a deployment whose throughput scales linearly with
// replicas at base req/s each, with stages adding nothing (the
// conservative shape for scaler tests).
func linearTP(base float64) func(Config) float64 {
	return func(c Config) float64 { return base * float64(c.Replicas) }
}

func sig(arrival float64, tp func(Config) float64) Signal {
	return Signal{ArrivalPerSec: arrival, MaxDevices: 4, MaxStages: 1, Throughput: tp}
}

// Sustained overload scales up — but only after HoldTicks consecutive
// ticks, and exactly once per cooldown.
func TestScalerScalesUpAfterHold(t *testing.T) {
	s := NewScaler(ScalerOptions{HoldTicks: 3, CooldownTicks: 2}, Config{Replicas: 1, Stages: 1})
	over := sig(250, linearTP(100)) // needs ~313/s with headroom -> 4 replicas

	for tick := 1; tick <= 2; tick++ {
		if _, changed, _ := s.Evaluate(over); changed {
			t.Fatalf("scaled after only %d ticks, hold is 3", tick)
		}
	}
	cfg, changed, reason := s.Evaluate(over)
	if !changed {
		t.Fatal("no scale-up after 3 consecutive overloaded ticks")
	}
	if cfg.Replicas != 4 || cfg.Stages != 1 {
		t.Fatalf("scaled to %v, want 4r×1s (reason %q)", cfg, reason)
	}
	// Cooldown: the next 2 ticks are quiet even under continued overload.
	for tick := 0; tick < 2; tick++ {
		if _, changed, _ := s.Evaluate(over); changed {
			t.Fatal("resized during cooldown")
		}
	}
}

// Sustained idleness shrinks back — to the cheapest config covering
// the (tiny) demand.
func TestScalerShrinksWhenIdle(t *testing.T) {
	s := NewScaler(ScalerOptions{HoldTicks: 2, CooldownTicks: 1}, Config{Replicas: 4, Stages: 1})
	idle := sig(10, linearTP(100)) // 12.5/s with headroom: one replica is plenty

	if _, changed, _ := s.Evaluate(idle); changed {
		t.Fatal("shrank on the first idle tick, hold is 2")
	}
	cfg, changed, _ := s.Evaluate(idle)
	if !changed || cfg.Replicas != 1 {
		t.Fatalf("after 2 idle ticks: %v changed=%v, want shrink to 1 replica", cfg, changed)
	}
}

// Oscillating load — overloaded one tick, idle the next — must never
// resize: the consecutive-tick streak resets every flip. This is the
// no-flapping property.
func TestScalerHysteresisNoFlapping(t *testing.T) {
	s := NewScaler(ScalerOptions{HoldTicks: 2, CooldownTicks: 1}, Config{Replicas: 2, Stages: 1})
	over := sig(500, linearTP(100))
	idle := sig(10, linearTP(100))

	for i := 0; i < 20; i++ {
		in := over
		if i%2 == 1 {
			in = idle
		}
		if cfg, changed, reason := s.Evaluate(in); changed {
			t.Fatalf("tick %d: flapped to %v (%s)", i, cfg, reason)
		}
	}
	if s.Current() != (Config{Replicas: 2, Stages: 1}) {
		t.Fatalf("config drifted to %v under oscillating load", s.Current())
	}
}

// Steady load inside the hysteresis band (between ShrinkAt and
// 1/Headroom of capacity) never resizes.
func TestScalerSteadyStateQuiet(t *testing.T) {
	s := NewScaler(ScalerOptions{HoldTicks: 2, CooldownTicks: 1}, Config{Replicas: 2, Stages: 1})
	steady := sig(120, linearTP(100)) // 150/s with headroom vs 200/s capacity: fine
	for i := 0; i < 50; i++ {
		if _, changed, _ := s.Evaluate(steady); changed {
			t.Fatalf("tick %d: resized under steady in-band load", i)
		}
	}
}

// When demand exceeds every candidate, the scaler saturates at the
// highest-throughput config instead of thrashing.
func TestScalerSaturatesAtMaxDevices(t *testing.T) {
	s := NewScaler(ScalerOptions{HoldTicks: 1, CooldownTicks: 1}, Config{Replicas: 1, Stages: 1})
	flood := sig(10000, linearTP(100))
	cfg, changed, _ := s.Evaluate(flood)
	if !changed || cfg.Replicas != 4 {
		t.Fatalf("flood scaled to %v, want saturation at 4 replicas", cfg)
	}
	s.Evaluate(flood) // cooldown tick
	if _, changed, _ := s.Evaluate(flood); changed {
		t.Fatal("resized again while already saturated")
	}
}

// Stage candidates: when the pipeline cost model says 2 stages beat 2
// replicas (same device count, higher throughput priced in), the
// scaler picks stages.
func TestScalerConsidersStages(t *testing.T) {
	tp := func(c Config) float64 {
		// A model whose pipeline parallelism is super-linear: 2 stages
		// yield 3x, replicas only 1x each.
		perReplica := 100.0
		if c.Stages == 2 {
			perReplica = 300
		}
		return perReplica * float64(c.Replicas)
	}
	s := NewScaler(ScalerOptions{HoldTicks: 1, CooldownTicks: 1}, Config{Replicas: 1, Stages: 1})
	in := Signal{ArrivalPerSec: 200, MaxDevices: 4, MaxStages: 2, Throughput: tp}
	cfg, changed, _ := s.Evaluate(in)
	if !changed || cfg != (Config{Replicas: 1, Stages: 2}) {
		t.Fatalf("scaled to %v, want 1r×2s (2 devices) over 3r×1s (3 devices)", cfg)
	}
}

// A deep backlog counts as demand even when arrivals paused: the queue
// must drain.
func TestScalerBacklogForcesGrowth(t *testing.T) {
	s := NewScaler(ScalerOptions{HoldTicks: 1, CooldownTicks: 1}, Config{Replicas: 1, Stages: 1})
	backlog := Signal{
		ArrivalPerSec: 0, QueueDepth: 500, QueueDelay: 5 * time.Second,
		MaxDevices: 4, MaxStages: 1, Throughput: linearTP(100),
	}
	cfg, changed, _ := s.Evaluate(backlog)
	if !changed || cfg.Replicas <= 1 {
		t.Fatalf("5s of backlog with arrivals paused scaled to %v, want growth", cfg)
	}
}
