package dispatch

import "sort"

// DeviceLoad is one device's scheduling-relevant state, snapshotted by
// the fleet under its lock.
type DeviceLoad struct {
	Queued int     // outstanding batches
	BusyNS float64 // cumulative simulated busy time (tie-break)
	Dead   bool
}

// LeastLoaded returns the index of the live device with the fewest
// outstanding batches, ties to the least simulated busy time; -1 when
// nothing is alive. This is the unpinned whole-fleet dispatch policy.
func LeastLoaded(devs []DeviceLoad) int {
	best := -1
	for i, d := range devs {
		if d.Dead {
			continue
		}
		if best < 0 || d.Queued < devs[best].Queued ||
			(d.Queued == devs[best].Queued && d.BusyNS < devs[best].BusyNS) {
			best = i
		}
	}
	return best
}

// ReplicaLoad is one replica placement's scheduling-relevant state: the
// load of its head device (where batches enter the pipeline), its
// lifetime dispatch count, and whether every device of the placement is
// alive.
type ReplicaLoad struct {
	Head    DeviceLoad
	Batches int64
	Live    bool
}

// PickReplica returns the index of the live replica whose head device
// has the fewest outstanding batches — ties to the fewest lifetime
// dispatches (a round-robin tilt), then the least busy head — or -1
// when no replica is live.
func PickReplica(reps []ReplicaLoad) int {
	best := -1
	for i, r := range reps {
		if !r.Live {
			continue
		}
		if best < 0 || lessLoaded(r, reps[best]) {
			best = i
		}
	}
	return best
}

// lessLoaded orders replicas for placement.
func lessLoaded(a, b ReplicaLoad) bool {
	if a.Head.Queued != b.Head.Queued {
		return a.Head.Queued < b.Head.Queued
	}
	if a.Batches != b.Batches {
		return a.Batches < b.Batches
	}
	return a.Head.BusyNS < b.Head.BusyNS
}

// PlacementOrder returns the indices of the live devices ordered
// least-loaded first (stable), the order replica pinning consumes
// devices in: the first replica lands on the coolest devices.
func PlacementOrder(devs []DeviceLoad) []int {
	var order []int
	for i, d := range devs {
		if !d.Dead {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := devs[order[a]], devs[order[b]]
		if da.Queued != db.Queued {
			return da.Queued < db.Queued
		}
		return da.BusyNS < db.BusyNS
	})
	return order
}
