package cam

import (
	"fmt"

	"rtmap/internal/energy"
	"rtmap/internal/rtm"
)

// KeyBit selects one column of a search key or write pattern.
type KeyBit struct {
	Col int
	Bit uint8
}

// Stats accumulates the cost counters of one array.
type Stats struct {
	Searches   uint64 // search passes issued
	Writes     uint64 // write passes issued
	SearchBits uint64 // cells compared (masked cols × active rows)
	WriteBits  uint64 // cells written (cols × tagged rows)
	ShiftSteps uint64 // single-domain DBC steps
	Cycles     uint64 // search/write phases (one per pass)

	SearchPJ float64
	WritePJ  float64
	ShiftPJ  float64
}

// EnergyPJ returns the total energy of the counters.
func (s Stats) EnergyPJ() float64 { return s.SearchPJ + s.WritePJ + s.ShiftPJ }

// Array is one CAM array of an AP.
type Array struct {
	rows, cols int
	dbcs       []*rtm.DBC // one per column
	tag        []bool
	tagCount   int
	usedRows   int // rows holding live data; energy scales with these
	par        energy.Params
	stats      Stats
}

// New allocates a rows × cols array whose cells have the domain count
// given by par.DomainsPerTrack.
func New(rows, cols int, par energy.Params) *Array {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cam: invalid geometry %dx%d", rows, cols))
	}
	if !par.Validate() {
		panic("cam: invalid energy parameters")
	}
	a := &Array{
		rows: rows, cols: cols,
		dbcs:     make([]*rtm.DBC, cols),
		tag:      make([]bool, rows),
		usedRows: rows,
		par:      par,
	}
	for c := range a.dbcs {
		a.dbcs[c] = rtm.NewDBC(rows, par.DomainsPerTrack)
	}
	return a
}

// Rows returns the row count.
func (a *Array) Rows() int { return a.rows }

// Cols returns the column count.
func (a *Array) Cols() int { return a.cols }

// Domains returns the per-cell domain count.
func (a *Array) Domains() int { return a.par.DomainsPerTrack }

// Stats returns a copy of the accumulated counters.
func (a *Array) Stats() Stats { return a.stats }

// ResetStats zeroes the cost counters (data is untouched).
func (a *Array) ResetStats() { a.stats = Stats{} }

// SetUsedRows declares how many rows hold live data. Searches precharge
// and compare only these rows' match lines in the energy model.
func (a *Array) SetUsedRows(n int) {
	if n < 0 || n > a.rows {
		panic(fmt.Sprintf("cam: used rows %d outside [0,%d]", n, a.rows))
	}
	a.usedRows = n
}

// UsedRows returns the active-row count.
func (a *Array) UsedRows() int { return a.usedRows }

// Align shifts column col so that domain `domain` faces the access ports
// and accounts the shift cost. It returns the steps taken.
func (a *Array) Align(col, domain int) int {
	steps := a.dbcs[col].ShiftTo(domain)
	if steps > 0 {
		a.stats.ShiftSteps += uint64(steps)
		a.stats.ShiftPJ += float64(steps) * float64(a.rows) * a.par.ShiftPJPerBit
	}
	return steps
}

// ColumnPos returns the domain currently aligned in column col.
func (a *Array) ColumnPos(col int) int { return a.dbcs[col].Pos() }

// Search compares all active rows against the key (over the aligned
// domains of the key's columns) and latches the per-row results into the
// tag register. It returns the number of matching rows.
func (a *Array) Search(key []KeyBit) int {
	if len(key) == 0 {
		panic("cam: empty search key")
	}
	a.tagCount = 0
	for r := 0; r < a.rows; r++ {
		match := r < a.usedRows
		if match {
			for _, kb := range key {
				if a.dbcs[kb.Col].Read(r) != kb.Bit&1 {
					match = false
					break
				}
			}
		}
		a.tag[r] = match
		if match {
			a.tagCount++
		}
	}
	a.stats.Searches++
	a.stats.Cycles++
	bits := uint64(len(key)) * uint64(a.usedRows)
	a.stats.SearchBits += bits
	a.stats.SearchPJ += float64(bits) * a.par.SearchPJPerBit
	return a.tagCount
}

// WriteTagged writes the pattern into every tagged row on the pattern's
// columns (the second phase of a LUT pass).
func (a *Array) WriteTagged(pattern []KeyBit) {
	if len(pattern) == 0 {
		panic("cam: empty write pattern")
	}
	for r := 0; r < a.rows; r++ {
		if !a.tag[r] {
			continue
		}
		for _, kb := range pattern {
			a.dbcs[kb.Col].Write(r, kb.Bit)
		}
	}
	a.stats.Writes++
	a.stats.Cycles++
	bits := uint64(len(pattern)) * uint64(a.tagCount)
	a.stats.WriteBits += bits
	a.stats.WritePJ += float64(bits) * a.par.WritePJPerBit
}

// WriteAll writes the pattern into every active row without a preceding
// search (used to clear fresh result/carry columns).
func (a *Array) WriteAll(pattern []KeyBit) {
	if len(pattern) == 0 {
		panic("cam: empty write pattern")
	}
	for r := 0; r < a.usedRows; r++ {
		for _, kb := range pattern {
			a.dbcs[kb.Col].Write(r, kb.Bit)
		}
	}
	a.stats.Writes++
	a.stats.Cycles++
	bits := uint64(len(pattern)) * uint64(a.usedRows)
	a.stats.WriteBits += bits
	a.stats.WritePJ += float64(bits) * a.par.WritePJPerBit
}

// Tagged reports whether row r is currently tagged.
func (a *Array) Tagged(r int) bool { return a.tag[r] }

// TagCount returns the number of tagged rows.
func (a *Array) TagCount() int { return a.tagCount }

// LatencyNS returns the op latency implied by the counters (compute
// cycles plus shift steps).
func (a *Array) LatencyNS() float64 {
	return float64(a.stats.Cycles)*a.par.CycleNS + float64(a.stats.ShiftSteps)*a.par.ShiftNS
}

// LoadWord stores a two's-complement value into the cell (row, col) at
// domains [base, base+width). Setup helper: endurance counters advance but
// op-level energy is attributed to the producer that wrote the value (the
// previous layer's store phase), not to this array.
func (a *Array) LoadWord(row, col, base, width int, v int64) {
	a.dbcs[col].LoadWord(row, base, width, v)
}

// ReadWord reads the two's-complement value at (row, col), domains
// [base, base+width). Readout helper for verification.
func (a *Array) ReadWord(row, col, base, width int) int64 {
	return a.dbcs[col].ReadWord(row, base, width)
}

// MaxCellWrites returns the endurance-limiting write count over all cells.
func (a *Array) MaxCellWrites() uint64 {
	var m uint64
	for _, d := range a.dbcs {
		if w := d.MaxTrackWrites(); w > m {
			m = w
		}
	}
	return m
}
