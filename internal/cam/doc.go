// Package cam models the RTM-based CAM array at the heart of each
// associative processor (Fig. 2c/d of the paper): a grid of rows × columns
// where every cell is a racetrack nanowire, every column is one DBC (so a
// single shift command changes the bit-plane of a whole column), and the
// two primitives are the masked parallel search (all rows compared against
// a key on selected columns, match results latched in the tag register)
// and the tagged parallel write (a data pattern written into all tagged
// rows on selected columns).
//
// The array keeps exact cost accounting — search/write passes, cells
// touched, shift steps, energy and cycles — using the figures of merit in
// internal/energy.
package cam
