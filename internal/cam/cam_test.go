package cam

import (
	"testing"

	"rtmap/internal/energy"
)

func newArr(t *testing.T, rows, cols int) *Array {
	t.Helper()
	return New(rows, cols, energy.Default())
}

func TestSearchAndTag(t *testing.T) {
	a := newArr(t, 4, 2)
	// Column 0 bits: rows 0,2 hold 1. Column 1: row 2 holds 1.
	a.LoadWord(0, 0, 0, 1, 1)
	a.LoadWord(2, 0, 0, 1, 1)
	a.LoadWord(2, 1, 0, 1, 1)
	if n := a.Search([]KeyBit{{Col: 0, Bit: 1}}); n != 2 {
		t.Errorf("single-column search matched %d rows, want 2", n)
	}
	if n := a.Search([]KeyBit{{Col: 0, Bit: 1}, {Col: 1, Bit: 1}}); n != 1 {
		t.Errorf("two-column search matched %d rows, want 1", n)
	}
	if !a.Tagged(2) || a.Tagged(0) {
		t.Error("tag register wrong rows")
	}
}

func TestWriteTaggedOnlyTouchesTaggedRows(t *testing.T) {
	a := newArr(t, 4, 2)
	a.LoadWord(1, 0, 0, 1, 1)
	a.Search([]KeyBit{{Col: 0, Bit: 1}}) // tags row 1 only
	a.WriteTagged([]KeyBit{{Col: 1, Bit: 1}})
	for r := 0; r < 4; r++ {
		want := int64(0)
		if r == 1 {
			want = 1
		}
		if got := a.ReadWord(r, 1, 0, 2); got != want {
			t.Errorf("row %d col 1 = %d, want %d", r, got, want)
		}
	}
}

func TestUsedRowsLimitsSearch(t *testing.T) {
	a := newArr(t, 4, 1)
	for r := 0; r < 4; r++ {
		a.LoadWord(r, 0, 0, 1, 1)
	}
	a.SetUsedRows(2)
	if n := a.Search([]KeyBit{{Col: 0, Bit: 1}}); n != 2 {
		t.Errorf("search matched %d rows with 2 active, want 2", n)
	}
}

func TestStatsAccounting(t *testing.T) {
	a := newArr(t, 8, 4)
	a.SetUsedRows(8)
	a.Search([]KeyBit{{Col: 0, Bit: 0}, {Col: 1, Bit: 0}, {Col: 2, Bit: 0}})
	s := a.Stats()
	if s.Searches != 1 || s.SearchBits != 3*8 {
		t.Errorf("search stats %+v", s)
	}
	wantPJ := float64(3*8) * energy.Default().SearchPJPerBit
	if s.SearchPJ != wantPJ {
		t.Errorf("search energy %g, want %g", s.SearchPJ, wantPJ)
	}
	a.WriteTagged([]KeyBit{{Col: 3, Bit: 1}}) // all 8 rows tagged (all-zero match)
	s = a.Stats()
	if s.Writes != 1 || s.WriteBits != 8 {
		t.Errorf("write stats %+v", s)
	}
	if s.Cycles != 2 {
		t.Errorf("cycles %d, want 2", s.Cycles)
	}
}

func TestAlignShiftCost(t *testing.T) {
	a := newArr(t, 4, 2)
	if steps := a.Align(0, 5); steps != 5 {
		t.Errorf("align took %d steps, want 5", steps)
	}
	if steps := a.Align(0, 5); steps != 0 {
		t.Errorf("re-align took %d steps, want 0", steps)
	}
	s := a.Stats()
	if s.ShiftSteps != 5 {
		t.Errorf("shift steps %d, want 5", s.ShiftSteps)
	}
	if s.ShiftPJ <= 0 {
		t.Error("shift energy not accounted")
	}
	if a.ColumnPos(0) != 5 || a.ColumnPos(1) != 0 {
		t.Error("column alignment must be independent per column")
	}
}

func TestWriteAll(t *testing.T) {
	a := newArr(t, 4, 1)
	a.SetUsedRows(3)
	for r := 0; r < 4; r++ {
		a.LoadWord(r, 0, 0, 1, 1)
	}
	a.WriteAll([]KeyBit{{Col: 0, Bit: 0}})
	for r := 0; r < 3; r++ {
		if a.ReadWord(r, 0, 0, 2) != 0 {
			t.Errorf("row %d not cleared", r)
		}
	}
	if a.ReadWord(3, 0, 0, 2) != 1 {
		t.Error("inactive row must not be written")
	}
}

func TestLatencyNS(t *testing.T) {
	a := newArr(t, 4, 2)
	a.Search([]KeyBit{{Col: 0, Bit: 0}})
	a.WriteTagged([]KeyBit{{Col: 1, Bit: 1}})
	a.Align(0, 10)
	par := energy.Default()
	want := 2*par.CycleNS + 10*par.ShiftNS
	if got := a.LatencyNS(); got != want {
		t.Errorf("latency %g, want %g", got, want)
	}
}

func TestMaxCellWrites(t *testing.T) {
	a := newArr(t, 2, 2)
	a.Search([]KeyBit{{Col: 0, Bit: 0}})
	for i := 0; i < 5; i++ {
		a.WriteTagged([]KeyBit{{Col: 1, Bit: 1}})
	}
	if a.MaxCellWrites() < 5 {
		t.Errorf("max cell writes %d, want >= 5", a.MaxCellWrites())
	}
}
