package arch

import (
	"testing"

	"rtmap/internal/energy"
)

func TestGeometryLinearRoundTrip(t *testing.T) {
	g := DefaultGeometry(energy.Default())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.TotalAPs(); i++ {
		if got := g.Linear(g.ByLinear(i)); got != i {
			t.Errorf("linear round trip %d -> %d", i, got)
		}
	}
}

func TestDistanceLevels(t *testing.T) {
	g := DefaultGeometry(energy.Default())
	a := APID{0, 0, 0}
	cases := []struct {
		b    APID
		want HopLevel
	}{
		{APID{0, 0, 0}, HopLocal},
		{APID{0, 0, 1}, HopTile},
		{APID{0, 1, 0}, HopBank},
		{APID{1, 0, 0}, HopGlobal},
	}
	for _, c := range cases {
		if got := g.Distance(a, c.b); got != c.want {
			t.Errorf("distance to %+v = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestInterconnectCosts(t *testing.T) {
	g := DefaultGeometry(energy.Default())
	ic := NewInterconnect(energy.Default())
	eTile := ic.Move(g, APID{0, 0, 0}, APID{0, 0, 1}, 100)
	if eTile != 100 { // 1 pJ/bit × hop factor 1
		t.Errorf("tile move energy %g, want 100", eTile)
	}
	eGlobal := ic.Move(g, APID{0, 0, 0}, APID{1, 0, 0}, 100)
	if eGlobal <= eTile {
		t.Error("global moves must cost more than tile moves")
	}
	if ic.Move(g, APID{0, 0, 0}, APID{0, 0, 0}, 100) != 0 {
		t.Error("local moves are free")
	}
	if ic.BitsMoved != 300 || ic.Transfers != 3 {
		t.Errorf("accounting %+v", ic)
	}
}

func TestAllocatorResNetShapes(t *testing.T) {
	g := DefaultGeometry(energy.Default())
	al := NewAllocator(g)
	// ResNet-18 conv1: P = 112² = 12544 → 49 row groups of 256.
	a, err := al.Allocate("conv1", 112*112, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.RowGroups != 49 {
		t.Errorf("row groups %d, want 49", a.RowGroups)
	}
	if a.Replicas != 1 {
		t.Errorf("replicas %d, want 1 (single channel group)", a.Replicas)
	}
	if a.UsedRows != 12544-48*256 {
		t.Errorf("tail rows %d", a.UsedRows)
	}

	// Deep layer: P = 49 → 1 row group; 32 channel groups spread across
	// the hierarchy.
	al.Reset()
	a, err = al.Allocate("layer4", 49, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.RowGroups != 1 {
		t.Errorf("row groups %d, want 1", a.RowGroups)
	}
	if a.Replicas != 32 {
		t.Errorf("replicas %d, want 32", a.Replicas)
	}
	if a.APsNeeded() != 32 || len(a.APs) != 32 {
		t.Errorf("APs needed %d/%d, want 32", a.APsNeeded(), len(a.APs))
	}
}

func TestAllocatorRejectsOversized(t *testing.T) {
	g := Geometry{Banks: 1, TilesPerBank: 1, APsPerTile: 2, Rows: 16, Cols: 16, Domains: 64}
	al := NewAllocator(g)
	if _, err := al.Allocate("huge", 16*3, 1); err == nil {
		t.Error("allocation beyond hierarchy must fail")
	}
}

func TestReplicasCappedByChannelGroups(t *testing.T) {
	g := DefaultGeometry(energy.Default())
	al := NewAllocator(g)
	a, err := al.Allocate("l", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Replicas != 3 {
		t.Errorf("replicas %d, want 3 (capped by channel groups)", a.Replicas)
	}
}
