// Package arch models the hierarchical organization of the accelerator
// (Fig. 2a/b of the paper): banks composed of tiles, tiles composed of
// APs, with a tile buffer and intercommunication network per tile and a
// global buffer at the top. It provides the geometry bookkeeping (how many
// APs a layer needs, which ones it gets) and the interconnect cost model
// (1 pJ/bit with distance-dependent hop factors) used by the accumulation
// phase's inter-AP adder tree.
package arch
