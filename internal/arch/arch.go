package arch

import (
	"fmt"

	"rtmap/internal/energy"
)

// Geometry describes the accelerator hierarchy.
type Geometry struct {
	Banks        int
	TilesPerBank int
	APsPerTile   int
	Rows         int // CAM rows per AP
	Cols         int // CAM columns per AP
	Domains      int // nanowire domains per cell
}

// DefaultGeometry returns a hierarchy large enough for every network in
// the paper (ResNet-18 needs 49 arrays; Table II).
func DefaultGeometry(par energy.Params) Geometry {
	return Geometry{
		Banks:        2,
		TilesPerBank: 4,
		APsPerTile:   8,
		Rows:         par.CAMRows,
		Cols:         par.CAMCols,
		Domains:      par.DomainsPerTrack,
	}
}

// TotalAPs returns the number of APs in the hierarchy.
func (g Geometry) TotalAPs() int { return g.Banks * g.TilesPerBank * g.APsPerTile }

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.TilesPerBank <= 0 || g.APsPerTile <= 0 {
		return fmt.Errorf("arch: non-positive hierarchy %+v", g)
	}
	if g.Rows <= 0 || g.Cols <= 0 || g.Domains <= 0 {
		return fmt.Errorf("arch: non-positive array geometry %+v", g)
	}
	return nil
}

// APID identifies one AP by position in the hierarchy.
type APID struct {
	Bank, Tile, AP int
}

// Linear returns the flat index of the AP.
func (g Geometry) Linear(id APID) int {
	return (id.Bank*g.TilesPerBank+id.Tile)*g.APsPerTile + id.AP
}

// ByLinear returns the APID for a flat index.
func (g Geometry) ByLinear(i int) APID {
	ap := i % g.APsPerTile
	t := (i / g.APsPerTile) % g.TilesPerBank
	b := i / (g.APsPerTile * g.TilesPerBank)
	return APID{Bank: b, Tile: t, AP: ap}
}

// HopLevel classifies the distance between two APs.
type HopLevel int

const (
	// HopLocal is a transfer within one AP (no interconnect).
	HopLocal HopLevel = iota
	// HopTile crosses the intra-tile interconnection network.
	HopTile
	// HopBank crosses tiles within one bank.
	HopBank
	// HopGlobal crosses banks through the global buffer.
	HopGlobal
)

// Distance returns the hop level between two APs.
func (g Geometry) Distance(a, b APID) HopLevel {
	switch {
	case a == b:
		return HopLocal
	case a.Bank == b.Bank && a.Tile == b.Tile:
		return HopTile
	case a.Bank == b.Bank:
		return HopBank
	default:
		return HopGlobal
	}
}

// hopFactor scales the base 1 pJ/bit movement energy with distance,
// reflecting the tile/bank/global buffer traversals of [14].
func hopFactor(h HopLevel) float64 {
	switch h {
	case HopLocal:
		return 0
	case HopTile:
		return 1
	case HopBank:
		return 1.5
	default:
		return 2
	}
}

// Interconnect accumulates data-movement costs.
type Interconnect struct {
	par energy.Params

	BitsMoved uint64
	EnergyPJ  float64
	LatencyNS float64
	Transfers uint64
}

// NewInterconnect returns a cost accumulator using par's constants.
func NewInterconnect(par energy.Params) *Interconnect {
	return &Interconnect{par: par}
}

// Move accounts a transfer of bits between two APs and returns its energy.
func (ic *Interconnect) Move(g Geometry, from, to APID, bits int) float64 {
	if bits <= 0 {
		return 0
	}
	h := g.Distance(from, to)
	e := float64(bits) * ic.par.MovePJPerBit * hopFactor(h)
	ic.BitsMoved += uint64(bits)
	ic.EnergyPJ += e
	ic.LatencyNS += float64(bits) * ic.par.MoveNSPerBit
	ic.Transfers++
	return e
}

// Allocation is the set of APs assigned to one layer: RowGroups APs are
// needed to cover all output positions, and Replicas independent copies of
// that row-group strip process disjoint channel subsets in parallel
// (§IV-B: channels beyond one AP's domain capacity spread over multiple
// CAMs, "thus adding parallelism").
type Allocation struct {
	Layer     string
	RowGroups int // ceil(P / rows): APs per replica strip
	Replicas  int // parallel channel groups
	APs       []APID
	UsedRows  int // rows used in the last row group (others use full rows)
}

// APsNeeded returns RowGroups × Replicas.
func (a Allocation) APsNeeded() int { return a.RowGroups * a.Replicas }

// Allocator hands out APs of a geometry to layers.
type Allocator struct {
	g    Geometry
	next int
}

// NewAllocator returns an allocator over g.
func NewAllocator(g Geometry) *Allocator {
	return &Allocator{g: g}
}

// Reset returns all APs to the pool (layers are time-multiplexed; each
// layer sees the full accelerator, as in the paper's per-layer resource
// allocation).
func (al *Allocator) Reset() { al.next = 0 }

// Allocate assigns APs for a layer with P output positions and chGroups
// sequential channel groups, giving it as many parallel replicas as the
// hierarchy allows (capped by chGroups — more replicas than channel groups
// would idle).
func (al *Allocator) Allocate(layer string, p, chGroups int) (Allocation, error) {
	if p <= 0 {
		return Allocation{}, fmt.Errorf("arch: layer %s has no output positions", layer)
	}
	if chGroups <= 0 {
		chGroups = 1
	}
	rows := al.g.Rows
	rowGroups := (p + rows - 1) / rows
	total := al.g.TotalAPs()
	if rowGroups > total {
		return Allocation{}, fmt.Errorf("arch: layer %s needs %d row groups, hierarchy has %d APs",
			layer, rowGroups, total)
	}
	replicas := total / rowGroups
	if replicas > chGroups {
		replicas = chGroups
	}
	if replicas < 1 {
		replicas = 1
	}
	alloc := Allocation{
		Layer:     layer,
		RowGroups: rowGroups,
		Replicas:  replicas,
		UsedRows:  p - (rowGroups-1)*rows,
	}
	for i := 0; i < alloc.APsNeeded(); i++ {
		alloc.APs = append(alloc.APs, al.g.ByLinear(i))
	}
	return alloc, nil
}
