// Package rtm models racetrack memory (RTM) at the device level: magnetic
// nanowire tracks storing one bit per domain, access ports that can only
// read/write the domain currently aligned with them, and the shift
// operations that move domain walls to align a target domain (§II-C of the
// paper). Tracks are grouped into domain-wall block clusters (DBCs) that
// shift in lockstep; the CAM model builds each column of an AP from one
// DBC so a whole column changes bit-plane with a single shift command.
//
// The package keeps full cost accounting: lifetime shift steps per DBC and
// per-domain write counts per track (for the §V-C endurance analysis).
package rtm
