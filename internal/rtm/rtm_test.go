package rtm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestTrackReadWrite(t *testing.T) {
	d := NewDBC(2, 8)
	d.WriteAt(0, 3, 1)
	d.WriteAt(1, 5, 1)
	if b, _ := d.ReadAt(0, 3); b != 1 {
		t.Error("lost bit at track 0 domain 3")
	}
	if b, _ := d.ReadAt(0, 5); b != 0 {
		t.Error("track isolation violated")
	}
	if b, _ := d.ReadAt(1, 5); b != 1 {
		t.Error("lost bit at track 1 domain 5")
	}
}

func TestShiftAccounting(t *testing.T) {
	d := NewDBC(4, 16)
	if steps := d.ShiftTo(10); steps != 10 {
		t.Errorf("shift 0→10 took %d steps", steps)
	}
	if steps := d.ShiftTo(6); steps != 4 {
		t.Errorf("shift 10→6 took %d steps", steps)
	}
	if d.Shifts() != 14 {
		t.Errorf("lifetime shifts %d, want 14", d.Shifts())
	}
	if d.Pos() != 6 {
		t.Errorf("pos %d, want 6", d.Pos())
	}
}

func TestShiftBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range shift must panic")
		}
	}()
	NewDBC(1, 8).ShiftTo(8)
}

func TestWordRoundTrip(t *testing.T) {
	d := NewDBC(3, 32)
	cases := []int64{0, 1, -1, 5, -17, 127, -128}
	for i, v := range cases {
		d.LoadWord(i%3, (i/3)*8, 8, v)
	}
	for i, v := range cases {
		if got := d.ReadWord(i%3, (i/3)*8, 8); got != v {
			t.Errorf("round trip %d: got %d", v, got)
		}
	}
}

// Property: LoadWord/ReadWord round-trips any value representable in the
// width, restores alignment, and never interferes across tracks.
func TestQuickWordRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		d := NewDBC(4, 64)
		type slot struct {
			track, base, width int
			v                  int64
		}
		var slots []slot
		for tr := 0; tr < 4; tr++ {
			base := 0
			for base+9 < 64 {
				w := 2 + rng.IntN(8)
				half := int64(1) << uint(w-1)
				slots = append(slots, slot{tr, base, w, rng.Int64N(2*half) - half})
				base += w
			}
		}
		for _, s := range slots {
			d.LoadWord(s.track, s.base, s.width, s.v)
		}
		for _, s := range slots {
			if d.ReadWord(s.track, s.base, s.width) != s.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEnduranceCounters(t *testing.T) {
	d := NewDBC(1, 4)
	for i := 0; i < 7; i++ {
		d.WriteAt(0, 2, uint8(i)&1)
	}
	if d.tracks[0].Writes(2) != 7 {
		t.Errorf("write count %d, want 7", d.tracks[0].Writes(2))
	}
	if d.MaxTrackWrites() != 7 {
		t.Errorf("max writes %d, want 7", d.MaxTrackWrites())
	}
	if d.tracks[0].Writes(1) != 0 {
		t.Error("untouched domain has writes")
	}
}
