package rtm

import "fmt"

// Track is a single magnetic nanowire with one access port.
type Track struct {
	domains []uint8  // one bit per domain
	writes  []uint64 // per-domain write count (endurance accounting)
}

// NewTrack allocates a zeroed track with n domains.
func NewTrack(n int) *Track {
	if n <= 0 {
		panic(fmt.Sprintf("rtm: track needs positive domain count, got %d", n))
	}
	return &Track{domains: make([]uint8, n), writes: make([]uint64, n)}
}

// Domains returns the number of domains of the track.
func (t *Track) Domains() int { return len(t.domains) }

// read returns the bit of domain pos (package-internal: alignment is
// managed by the owning DBC).
func (t *Track) read(pos int) uint8 { return t.domains[pos] }

// write stores bit b at domain pos and bumps the endurance counter.
func (t *Track) write(pos int, b uint8) {
	t.domains[pos] = b & 1
	t.writes[pos]++
}

// Writes returns the write count of domain pos.
func (t *Track) Writes(pos int) uint64 { return t.writes[pos] }

// MaxWrites returns the largest per-domain write count of the track.
func (t *Track) MaxWrites() uint64 {
	var m uint64
	for _, w := range t.writes {
		if w > m {
			m = w
		}
	}
	return m
}

// DBC is a domain-wall block cluster: a group of tracks that share shift
// circuitry and therefore always have the same domain aligned with their
// access ports. One AP column = one DBC with one track per CAM row.
type DBC struct {
	tracks []*Track
	pos    int    // domain currently aligned with the access ports
	shifts uint64 // lifetime shift steps (cost accounting)
}

// NewDBC allocates a cluster of nTracks tracks with nDomains domains each.
func NewDBC(nTracks, nDomains int) *DBC {
	if nTracks <= 0 {
		panic(fmt.Sprintf("rtm: DBC needs positive track count, got %d", nTracks))
	}
	d := &DBC{tracks: make([]*Track, nTracks)}
	for i := range d.tracks {
		d.tracks[i] = NewTrack(nDomains)
	}
	return d
}

// Tracks returns the number of tracks in the cluster.
func (d *DBC) Tracks() int { return len(d.tracks) }

// Domains returns the per-track domain count.
func (d *DBC) Domains() int { return d.tracks[0].Domains() }

// Pos returns the domain index currently aligned with the access ports.
func (d *DBC) Pos() int { return d.pos }

// Shifts returns the lifetime shift-step count of the cluster.
func (d *DBC) Shifts() uint64 { return d.shifts }

// ShiftTo aligns domain pos with the access ports and returns the number
// of single-domain shift steps this took (|pos - previous|).
func (d *DBC) ShiftTo(pos int) int {
	if pos < 0 || pos >= d.Domains() {
		panic(fmt.Sprintf("rtm: shift target %d outside [0,%d)", pos, d.Domains()))
	}
	steps := pos - d.pos
	if steps < 0 {
		steps = -steps
	}
	d.pos = pos
	d.shifts += uint64(steps)
	return steps
}

// Read returns the aligned bit of track i.
func (d *DBC) Read(i int) uint8 { return d.tracks[i].read(d.pos) }

// Write stores bit b into the aligned domain of track i.
func (d *DBC) Write(i int, b uint8) { d.tracks[i].write(d.pos, b) }

// ReadAt shifts to domain pos and reads track i, returning the bit and the
// shift steps taken.
func (d *DBC) ReadAt(i, pos int) (uint8, int) {
	steps := d.ShiftTo(pos)
	return d.Read(i), steps
}

// WriteAt shifts to domain pos and writes track i.
func (d *DBC) WriteAt(i, pos int, b uint8) int {
	steps := d.ShiftTo(pos)
	d.Write(i, b)
	return steps
}

// MaxTrackWrites returns the largest per-domain write count across all
// tracks of the cluster — the endurance-limiting cell.
func (d *DBC) MaxTrackWrites() uint64 {
	var m uint64
	for _, t := range d.tracks {
		if w := t.MaxWrites(); w > m {
			m = w
		}
	}
	return m
}

// LoadWord stores an nBits-wide two's-complement value into track i at
// domains [base, base+nBits), LSB first, restoring the previous alignment.
// It is a test/setup convenience, not a modeled AP operation.
func (d *DBC) LoadWord(i, base, nBits int, v int64) {
	prev := d.pos
	for k := 0; k < nBits; k++ {
		d.ShiftTo(base + k)
		d.Write(i, uint8((v>>uint(k))&1))
	}
	d.ShiftTo(prev)
}

// ReadWord reads an nBits-wide two's-complement value from track i at
// domains [base, base+nBits), restoring the previous alignment.
func (d *DBC) ReadWord(i, base, nBits int) int64 {
	prev := d.pos
	var v int64
	for k := 0; k < nBits; k++ {
		d.ShiftTo(base + k)
		v |= int64(d.Read(i)) << uint(k)
	}
	// Sign-extend from bit nBits-1.
	if nBits < 64 && v&(1<<uint(nBits-1)) != 0 {
		v -= 1 << uint(nBits)
	}
	d.ShiftTo(prev)
	return v
}
