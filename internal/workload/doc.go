// Package workload provides the evaluation harness: seeded synthetic
// inputs standing in for CIFAR10/ImageNet samples, teacher labeling by the
// full-precision reference network, and the top-1 agreement metric that
// substitutes for dataset accuracy (see DESIGN.md §1 — the paper's
// accuracy claim is "retains software accuracy", which is exactly the
// agreement of an execution path with the FP reference).
package workload
