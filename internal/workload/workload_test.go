package workload

import (
	"testing"

	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

func TestInputsDeterministicAndPositive(t *testing.T) {
	shape := tensor.Shape{N: 1, C: 3, H: 8, W: 8}
	a := Inputs(shape, 3, 42)
	b := Inputs(shape, 3, 42)
	c := Inputs(shape, 3, 43)
	if len(a) != 3 {
		t.Fatalf("got %d inputs", len(a))
	}
	for i := range a {
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatal("same seed must reproduce inputs")
			}
			if a[i].Data[j] < 0 {
				t.Fatal("image values must be non-negative (post-ReLU statistics)")
			}
		}
	}
	same := true
	for j := range a[0].Data {
		if a[0].Data[j] != c[0].Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds must differ")
	}
}

func TestTeacherAndAgreement(t *testing.T) {
	net := model.TinyCNN(model.Config{ActBits: 8, Sparsity: 0.5, Seed: 6})
	cal := Inputs(net.InputShape, 3, 7)
	if err := model.Calibrate(net, cal); err != nil {
		t.Fatal(err)
	}
	ds, err := Teacher(net, Inputs(net.InputShape, 25, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Labels) != 25 {
		t.Fatalf("labels %d", len(ds.Labels))
	}
	// The 8-bit integer reference should agree with the FP teacher on a
	// clear majority of inputs.
	agree, err := ds.Agreement(IntReference(net))
	if err != nil {
		t.Fatal(err)
	}
	if agree < 60 {
		t.Errorf("8-bit agreement %.1f%% too low", agree)
	}
	// A constant-answer forwarder scores near chance (4 classes).
	constant := func(in *tensor.Float) (*tensor.Int, error) {
		out := tensor.NewInt(tensor.Shape{N: 1, C: 4, H: 1, W: 1})
		out.Data[0] = 1
		return out, nil
	}
	low, err := ds.Agreement(constant)
	if err != nil {
		t.Fatal(err)
	}
	if low >= agree {
		t.Errorf("constant forwarder (%.1f%%) should not beat the reference (%.1f%%)", low, agree)
	}
}

// Dataset labels are a pure function of (network weights, input seed):
// rebuilding everything from the same seeds reproduces the labels
// bit-for-bit, and changing the input seed actually changes the set.
func TestDatasetLabelDeterminism(t *testing.T) {
	build := func(inputSeed uint64) *Dataset {
		net := model.TinyCNN(model.Config{ActBits: 4, Sparsity: 0.5, Seed: 11})
		if err := model.Calibrate(net, Inputs(net.InputShape, 3, 70)); err != nil {
			t.Fatal(err)
		}
		ds, err := Teacher(net, Inputs(net.InputShape, 20, inputSeed))
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := build(5), build(5)
	if len(a.Labels) != 20 || len(b.Labels) != 20 {
		t.Fatalf("label counts %d/%d", len(a.Labels), len(b.Labels))
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d: %d vs %d — teacher labeling not deterministic", i, a.Labels[i], b.Labels[i])
		}
	}
	c := build(6)
	same := true
	for i := range a.Labels {
		if a.Labels[i] != c.Labels[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("20 labels identical across different input seeds; teacher ignores the inputs?")
	}
}

// InputData must be the exact flattened form of Inputs — the payload a
// load generator posts must reconstruct bit-identically server-side.
func TestInputDataMatchesInputs(t *testing.T) {
	shape := tensor.Shape{N: 1, C: 2, H: 8, W: 8}
	flat := InputData(shape, 3, 42)
	ref := Inputs(shape, 3, 42)
	if len(flat) != 3 {
		t.Fatalf("got %d payloads", len(flat))
	}
	for i := range flat {
		if len(flat[i]) != shape.Elems() {
			t.Fatalf("payload %d has %d values, want %d", i, len(flat[i]), shape.Elems())
		}
		for j := range flat[i] {
			if flat[i][j] != ref[i].Data[j] {
				t.Fatalf("payload %d value %d diverges from Inputs", i, j)
			}
		}
	}
}

func TestAgreementEmptyDataset(t *testing.T) {
	ds := &Dataset{}
	if _, err := ds.Agreement(nil); err == nil {
		t.Error("empty dataset must error")
	}
}
