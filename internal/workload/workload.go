package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// Dataset is a seeded synthetic evaluation set.
type Dataset struct {
	Inputs []*tensor.Float
	// Labels are teacher labels: argmax of the FP reference network.
	Labels []int
}

// Inputs generates n synthetic images with the statistics the quantizers
// were calibrated for: non-negative, roughly half-normal channel values
// with mild spatial correlation (natural-image-like smoothness).
func Inputs(shape tensor.Shape, n int, seed uint64) []*tensor.Float {
	out := make([]*tensor.Float, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewPCG(seed, uint64(i)*0x9e3779b97f4a7c15+1))
		img := tensor.NewFloat(shape)
		for c := 0; c < shape.C; c++ {
			// Low-frequency base plus pixel noise.
			baseU := rng.Float64()
			baseV := rng.Float64()
			for h := 0; h < shape.H; h++ {
				for w := 0; w < shape.W; w++ {
					lowFreq := 0.25 * (math.Sin(baseU*6+float64(h)/7) + math.Cos(baseV*6+float64(w)/9))
					v := math.Abs(0.4*rng.NormFloat64() + 0.5 + lowFreq)
					img.Set(0, c, h, w, float32(v))
				}
			}
		}
		out[i] = img
	}
	return out
}

// InputData generates n synthetic samples as flattened NCHW value slices
// — the request-payload form the serving layer's /v1/infer endpoint and
// the rtmap-load generator exchange. Sample i equals Inputs(shape, n,
// seed)[i].Data, so payloads round-trip bit-identically into tensors on
// the server side.
func InputData(shape tensor.Shape, n int, seed uint64) [][]float32 {
	ins := Inputs(shape, n, seed)
	out := make([][]float32, n)
	for i, t := range ins {
		out[i] = t.Data
	}
	return out
}

// Teacher labels the inputs with the full-precision reference path of net
// (no fake quantization), producing the ground truth for agreement
// measurements. Logits are centered by their per-class means over the
// evaluation set before the argmax — synthetic random-ternary classifiers
// otherwise develop a dominant class that would saturate the metric (real
// trained networks have calibrated biases; centering plays that role).
func Teacher(net *model.Network, inputs []*tensor.Float) (*Dataset, error) {
	ds := &Dataset{Inputs: inputs}
	var logits [][]float64
	for _, in := range inputs {
		outs, err := net.ForwardFloat(in, false)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(outs[net.Output()].Data))
		for i, v := range outs[net.Output()].Data {
			row[i] = float64(v)
		}
		logits = append(logits, row)
	}
	ds.Labels = centeredArgmax(logits)
	return ds, nil
}

// centeredArgmax subtracts per-class means over the set, then takes the
// argmax of every row.
func centeredArgmax(logits [][]float64) []int {
	if len(logits) == 0 {
		return nil
	}
	classes := len(logits[0])
	means := make([]float64, classes)
	for _, row := range logits {
		for c, v := range row {
			means[c] += v
		}
	}
	for c := range means {
		means[c] /= float64(len(logits))
	}
	out := make([]int, len(logits))
	for i, row := range logits {
		best, bestC := math.Inf(-1), 0
		for c, v := range row {
			if d := v - means[c]; d > best {
				best, bestC = d, c
			}
		}
		out[i] = bestC
	}
	return out
}

// Forwarder produces logits for one input (any execution path: integer
// reference, functional AP, ADC-noisy crossbar, ...).
type Forwarder func(in *tensor.Float) (*tensor.Int, error)

// Agreement runs the forwarder on the dataset and returns the top-1
// agreement with the teacher labels, in percent. The forwarder's logits
// receive the same per-class centering as the teacher's.
func (ds *Dataset) Agreement(f Forwarder) (float64, error) {
	if len(ds.Inputs) == 0 {
		return 0, fmt.Errorf("workload: empty dataset")
	}
	var logits [][]float64
	for _, in := range ds.Inputs {
		out, err := f(in)
		if err != nil {
			return 0, err
		}
		row := make([]float64, len(out.Data))
		for i, v := range out.Data {
			row[i] = float64(v)
		}
		logits = append(logits, row)
	}
	preds := centeredArgmax(logits)
	hits := 0
	for i, p := range preds {
		if p == ds.Labels[i] {
			hits++
		}
	}
	return 100 * float64(hits) / float64(len(ds.Inputs)), nil
}

// IntReference returns the forwarder of the quantized software reference.
func IntReference(net *model.Network) Forwarder {
	return func(in *tensor.Float) (*tensor.Int, error) {
		tr, err := net.ForwardInt(in)
		if err != nil {
			return nil, err
		}
		return tr.Logits(), nil
	}
}
