package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"rtmap/internal/energy"
	"rtmap/internal/model"
)

// Cache is a content-addressed store of per-layer compilation artifacts.
// Conv/linear lowering dominates compile time and depends only on the
// layer's weights, the incoming activation format, the layer shapes, the
// array pool, and the compiler knobs — not on which network the layer is
// embedded in. Keying on a hash of exactly that content lets repeated
// compiles (config sweeps over one network, the Table II / Fig. 4
// artifacts, benchmark reruns) reuse lowered layers instead of redoing
// identical DFG construction and code generation.
//
// A Cache is safe for concurrent use. Cached plans are shared by
// reference between compiles: treat every Compiled as immutable, as the
// rest of the pipeline (sim.Analyze, sim.ForwardAP) already does.
type Cache struct {
	mu    sync.Mutex
	plans map[[32]byte]*LayerPlan
	ops   map[[32]byte][2]int // CountOps memo: (unroll, cse) per layer
	certs map[[32]byte]any    // plan certificates keyed by ArtifactHash
	stats CacheStats
}

// CacheStats counts cache traffic since creation (or the last Reset).
type CacheStats struct {
	Hits     int // lowering results served from the cache
	Misses   int // lowering results computed and inserted
	Entries  int // resident layer plans
	OpHits   int // CountOps layer results served from the cache
	OpMisses int
	// CertHits / CertMisses count certificate lookups: a hit means the
	// artifact was admitted on a stored PlanCertificate without
	// re-running the dataflow verifier.
	CertHits   int
	CertMisses int
}

// SharedCache is the process-wide default cache wired into DefaultConfig.
// Long-running servers that sweep many distinct networks can bound memory
// by calling Reset periodically or by giving each tenant its own Cache.
var SharedCache = NewCache()

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		plans: map[[32]byte]*LayerPlan{},
		ops:   map[[32]byte][2]int{},
		certs: map[[32]byte]any{},
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.plans)
	return s
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans = map[[32]byte]*LayerPlan{}
	c.ops = map[[32]byte][2]int{}
	c.certs = map[[32]byte]any{}
	c.stats = CacheStats{}
}

func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("cache: %d entries, %d hits / %d misses (ops: %d/%d)",
		s.Entries, s.Hits, s.Misses, s.OpHits, s.OpMisses)
}

// getPlan returns a copy of the cached plan under key, re-labelled for
// position idx of the receiving network. The copy shares the immutable
// slices (programs, tile sizes) with the cached original.
func (c *Cache) getPlan(key [32]byte, idx int, name string) (*LayerPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.plans[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	q := *p
	q.Index, q.Name = idx, name
	return &q, true
}

func (c *Cache) putPlan(key [32]byte, p *LayerPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans[key] = p
}

func (c *Cache) getOps(key [32]byte) ([2]int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.ops[key]
	if ok {
		c.stats.OpHits++
	} else {
		c.stats.OpMisses++
	}
	return v, ok
}

func (c *Cache) putOps(key [32]byte, v [2]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops[key] = v
}

// GetCertificate returns the stored plan certificate of an artifact
// hash, if any. The cache stores certificates opaquely (as `any`):
// internal/dataflow owns the concrete type, and core cannot import it.
func (c *Cache) GetCertificate(key [32]byte) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cert, ok := c.certs[key]
	if ok {
		c.stats.CertHits++
	} else {
		c.stats.CertMisses++
	}
	return cert, ok
}

// PutCertificate stores a plan certificate under an artifact hash.
// Certificates are immutable after insertion: the content address means
// any change to the artifact lands on a different key.
func (c *Cache) PutCertificate(key [32]byte, cert any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.certs[key] = cert
}

// ArtifactHash content-addresses a compiled artifact: the full network
// definition (shapes, quantizer grids, weights, layer wiring) plus every
// Config field that changes the emitted plans. Config.Parallel, the
// cache pointer and the verification flags are excluded — none of them
// alters the lowered output. Certificates stored under this hash are
// therefore valid exactly as long as the artifact they certify is
// byte-identical.
func ArtifactHash(c *Compiled) [32]byte {
	h := sha256.New()
	w := &keyWriter{h: h}
	w.ints(3) // distinct key space from convKey (1) and opsKey (2)
	net := c.Net
	fmt.Fprintf(h, "%s\x00", net.Name)
	w.ints(int64(net.InputShape.C), int64(net.InputShape.H), int64(net.InputShape.W))
	w.ints(int64(net.InputQ.Bits))
	w.bools(net.InputQ.Signed)
	w.ints(int64(len(net.Layers)))
	for i := range net.Layers {
		l := &net.Layers[i]
		fmt.Fprintf(h, "%s\x00", l.Name)
		w.ints(int64(l.Kind), int64(len(l.Inputs)))
		for _, in := range l.Inputs {
			w.ints(int64(in))
		}
		w.ints(int64(l.Stride), int64(l.Pad),
			int64(l.Pool.K), int64(l.Pool.Stride),
			int64(l.Q.Bits), int64(l.ShareID))
		w.bools(l.Q.Signed, l.ReLU)
		if l.W != nil {
			w.ints(int64(l.W.Cout), int64(l.W.Cin), int64(l.W.Fh), int64(l.W.Fw))
			h.Write(int8Bytes(l.W.W))
		}
	}
	cfg := c.Cfg
	w.ints(int64(cfg.TempBudget), int64(cfg.TileFloor))
	w.bools(cfg.CSE, cfg.KeepPrograms)
	w.params(cfg.Par)
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// keyWriter streams the content that defines a cache key into a hash.
type keyWriter struct {
	h   interface{ Write([]byte) (int, error) }
	buf [8]byte
}

func (w *keyWriter) ints(vs ...int64) {
	for _, v := range vs {
		binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
		w.h.Write(w.buf[:])
	}
}

func (w *keyWriter) bools(vs ...bool) {
	for _, v := range vs {
		if v {
			w.h.Write([]byte{1})
		} else {
			w.h.Write([]byte{0})
		}
	}
}

func (w *keyWriter) params(p energy.Params) {
	// The cost-model constants enter every emitted statistic, so any
	// change must miss. %#v is stable for a flat struct of numbers.
	fmt.Fprintf(w.h, "%#v", p)
}

// convKey hashes everything the lowering of one conv/linear layer depends
// on. Config.Parallel and the quantizer step size are deliberately
// excluded: neither changes the emitted plan (lowering is bit-identical
// serial vs parallel, and compilation consumes only the integer grid).
func convKey(l *model.Layer, plan *LayerPlan, ai actInfo, cfg Config, pool int) [32]byte {
	h := sha256.New()
	w := &keyWriter{h: h}
	w.ints(1) // key-format version
	w.ints(int64(l.Kind), int64(l.Stride), int64(l.Pad))
	w.ints(int64(plan.InC), int64(plan.InH), int64(plan.InW),
		int64(plan.OutC), int64(plan.OutH), int64(plan.OutW))
	w.ints(int64(ai.Bits), ai.Lo, ai.Hi)
	w.bools(ai.Unsigned)
	wt := l.W
	w.ints(int64(wt.Cout), int64(wt.Cin), int64(wt.Fh), int64(wt.Fw))
	h.Write(int8Bytes(wt.W))
	w.ints(int64(cfg.TempBudget), int64(cfg.TileFloor), int64(pool))
	w.bools(cfg.CSE, cfg.KeepPrograms)
	w.params(cfg.Par)
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// opsKey hashes what CountOps depends on for one layer: the weights and
// nothing else (full untiled slices, both CSE settings are computed).
func opsKey(l *model.Layer) [32]byte {
	h := sha256.New()
	w := &keyWriter{h: h}
	w.ints(2) // distinct key space from convKey
	wt := l.W
	w.ints(int64(wt.Cout), int64(wt.Cin), int64(wt.Fh), int64(wt.Fw))
	h.Write(int8Bytes(wt.W))
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// int8Bytes reinterprets ternary weight values as raw bytes for hashing.
func int8Bytes(s []int8) []byte {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return b
}
