package core

import "rtmap/internal/verify"

// VerifyCompiled statically audits every tile program retained in c
// (Config.KeepPrograms) through the independent plan verifier. It
// returns nil when every plan is proved sound, or a *verify.Error
// carrying one located diagnostic per violated invariant. Plans are
// memoized on their tile programs, so a sweep right after compilation
// also pre-builds the plans the simulator would build lazily.
func VerifyCompiled(c *Compiled) error {
	var diags []verify.Diagnostic
	var name string
	if c.Net != nil {
		name = c.Net.Name
	}
	for _, lp := range c.Layers {
		for s := range lp.StripPlans {
			for t, tp := range lp.StripPlans[s].Programs {
				ref := verify.Ref{
					Model: name, Layer: lp.Index, LayerName: lp.Name,
					Strip: s, Tile: t,
				}
				diags = append(diags, verify.CheckTileProgram(ref, tp)...)
			}
		}
	}
	if len(diags) > 0 {
		return &verify.Error{Diags: diags}
	}
	return nil
}
