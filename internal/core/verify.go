package core

import "rtmap/internal/verify"

// dataflowVerifier is the registered whole-artifact dataflow verifier
// (Config.VerifyDataflow). internal/dataflow installs itself here from
// its init function: the indirection exists because dataflow imports
// core for the artifact types, so core cannot import it back.
var dataflowVerifier func(*Compiled) error

// RegisterDataflowVerifier installs the verifier Compile runs when
// Config.VerifyDataflow is set. Intended to be called once, from the
// init function of the package implementing the verifier.
func RegisterDataflowVerifier(f func(*Compiled) error) { dataflowVerifier = f }

// VerifyCompiled statically audits every tile program retained in c
// (Config.KeepPrograms) through the independent plan verifier. It
// returns nil when every plan is proved sound, or a *verify.Error
// carrying one located diagnostic per violated invariant. Plans are
// memoized on their tile programs, so a sweep right after compilation
// also pre-builds the plans the simulator would build lazily.
func VerifyCompiled(c *Compiled) error {
	var diags []verify.Diagnostic
	var name string
	if c.Net != nil {
		name = c.Net.Name
	}
	for _, lp := range c.Layers {
		for s := range lp.StripPlans {
			for t, tp := range lp.StripPlans[s].Programs {
				ref := verify.Ref{
					Model: name, Layer: lp.Index, LayerName: lp.Name,
					Strip: s, Tile: t,
				}
				diags = append(diags, verify.CheckTileProgram(ref, tp)...)
			}
		}
	}
	if len(diags) > 0 {
		e := &verify.Error{Diags: diags}
		e.Sort()
		return e
	}
	return nil
}
