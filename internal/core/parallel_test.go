package core

import (
	"reflect"
	"testing"

	"rtmap/internal/model"
)

// truncateBefore cuts the network to the prefix preceding the first conv
// layer of the given output width — a compilation "slice" that keeps the
// full early-layer structure without the heavyweight deep layers. Any
// topological prefix of a valid network is itself valid.
func truncateBefore(t *testing.T, net *model.Network, cout int) *model.Network {
	t.Helper()
	for i := range net.Layers {
		l := &net.Layers[i]
		if (l.Kind == model.KindConv || l.Kind == model.KindLinear) && l.W.Cout == cout {
			net.Layers = net.Layers[:i]
			break
		}
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("truncated %s invalid: %v", net.Name, err)
	}
	return net
}

// assertBitIdentical compares two compilations structurally, plan by
// plan — statistics, mappings, and (when kept) the emitted programs.
func assertBitIdentical(t *testing.T, name string, serial, parallel *Compiled) {
	t.Helper()
	if serial.PoolArrays != parallel.PoolArrays {
		t.Errorf("%s: pool arrays %d (serial) vs %d (parallel)", name, serial.PoolArrays, parallel.PoolArrays)
	}
	if len(serial.Layers) != len(parallel.Layers) {
		t.Fatalf("%s: layer count %d vs %d", name, len(serial.Layers), len(parallel.Layers))
	}
	for i := range serial.Layers {
		if !reflect.DeepEqual(serial.Layers[i], parallel.Layers[i]) {
			t.Errorf("%s: layer %d (%s) diverges between serial and parallel lowering",
				name, i, serial.Layers[i].Name)
		}
	}
}

func compileSerialAndParallel(t *testing.T, net *model.Network, keep bool) (*Compiled, *Compiled) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cache = nil // a shared cache would make the comparison trivial
	cfg.KeepPrograms = keep
	cfg.Parallel = false
	serial, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = true
	parallel, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return serial, parallel
}

// TestParallelDeterminismTiny asserts Parallel: true output is
// bit-identical to the serial path, programs included, on the tiny
// models (runs in -short mode).
func TestParallelDeterminismTiny(t *testing.T) {
	for _, build := range []func(model.Config) *model.Network{model.TinyCNN, model.TinyResNet} {
		net := build(model.DefaultConfig())
		serial, parallel := compileSerialAndParallel(t, net, true)
		assertBitIdentical(t, net.Name, serial, parallel)
	}
}

// TestParallelDeterminismSlices repeats the bit-identity check on
// realistic slices of the paper's networks: the ResNet-18 and VGG-9
// prefixes up to (excluding) the first 256-wide stage.
func TestParallelDeterminismSlices(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size layer slices")
	}
	mc := model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1}
	for _, build := range []func(model.Config) *model.Network{model.ResNet18, model.VGG9} {
		net := truncateBefore(t, build(mc), 256)
		serial, parallel := compileSerialAndParallel(t, net, true)
		assertBitIdentical(t, net.Name, serial, parallel)
	}
}
