package core

import (
	"reflect"
	"testing"

	"rtmap/internal/model"
)

func convLayerCount(c *Compiled) int {
	n := 0
	for _, p := range c.Layers {
		if p.Class == ClassConv {
			n++
		}
	}
	return n
}

// TestCacheHitMissAccounting pins the cache contract on a two-config
// sweep: a repeated compile of the same network under the same config is
// all hits with byte-identical output, and changing a keyed config field
// (CSE) misses for every conv layer again.
func TestCacheHitMissAccounting(t *testing.T) {
	net := model.TinyCNN(model.DefaultConfig())
	cache := NewCache()
	cfg := DefaultConfig()
	cfg.Cache = cache
	cfg.KeepPrograms = true

	c1, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	convs := convLayerCount(c1)
	if convs == 0 {
		t.Fatal("no conv layers compiled")
	}
	s := cache.Stats()
	if s.Hits != 0 || s.Misses != convs || s.Entries != convs {
		t.Fatalf("cold compile: stats %+v, want 0 hits / %d misses / %d entries", s, convs, convs)
	}

	c2, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s = cache.Stats()
	if s.Hits != convs || s.Misses != convs {
		t.Fatalf("warm compile: stats %+v, want %d hits / %d misses", s, convs, convs)
	}
	if !reflect.DeepEqual(c1.Layers, c2.Layers) {
		t.Fatal("cache hit produced a different compilation result")
	}

	cfgUn := cfg
	cfgUn.CSE = false
	c3, err := Compile(net, cfgUn)
	if err != nil {
		t.Fatal(err)
	}
	s = cache.Stats()
	if s.Misses != 2*convs {
		t.Fatalf("CSE=false sweep: stats %+v, want %d misses (config is part of the key)", s, 2*convs)
	}
	if c3.TotalAddSub() < c1.TotalAddSub() {
		t.Fatalf("unroll compile (%d ops) cheaper than CSE (%d): wrong artifact served",
			c3.TotalAddSub(), c1.TotalAddSub())
	}

	cache.Reset()
	if s := cache.Stats(); s.Entries != 0 || s.Hits != 0 {
		t.Fatalf("reset left state behind: %+v", s)
	}
}

// TestCacheKeyedOnWeightsAndActivation asserts that networks differing
// only in weights (seed) or activation precision do not share artifacts.
func TestCacheKeyedOnWeightsAndActivation(t *testing.T) {
	cache := NewCache()
	cfg := DefaultConfig()
	cfg.Cache = cache

	for _, mc := range []model.Config{
		{ActBits: 4, Sparsity: 0.8, Seed: 1},
		{ActBits: 4, Sparsity: 0.8, Seed: 2}, // different weights
		{ActBits: 8, Sparsity: 0.8, Seed: 1}, // different activation grid
	} {
		if _, err := Compile(model.TinyCNN(mc), cfg); err != nil {
			t.Fatal(err)
		}
	}
	if s := cache.Stats(); s.Hits != 0 {
		t.Fatalf("distinct networks shared cache entries: %+v", s)
	}
}

// TestCountOpsMemo pins the CountOps layer memo: a second count over the
// same weights is served from the cache with identical totals.
func TestCountOpsMemo(t *testing.T) {
	net := model.TinyCNN(model.DefaultConfig())
	cache := NewCache()
	a, err := CountOps(net, true, cache)
	if err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.OpHits != 0 || s.OpMisses != len(a.PerLayer) {
		t.Fatalf("cold count: stats %+v, want %d op misses", s, len(a.PerLayer))
	}
	b, err := CountOps(net, true, cache)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.OpHits != len(a.PerLayer) {
		t.Fatalf("warm count: stats %+v, want %d op hits", s, len(a.PerLayer))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("memoized counts diverge: %+v vs %+v", a, b)
	}
	// The memo must agree with an uncached count.
	c, err := CountOps(net, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("cached counts %+v != uncached %+v", a, c)
	}
}
