package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rtmap/internal/codegen"
	"rtmap/internal/dfg"
	"rtmap/internal/model"
	"rtmap/internal/tensor"
)

// actInfo describes the activation format flowing out of a layer.
type actInfo struct {
	Bits     int
	Unsigned bool
	Lo, Hi   int64
}

// activationOf resolves the activation format produced by layer idx
// (InputRef = network input), walking through shape-only layers.
func activationOf(net *model.Network, idx int) (actInfo, error) {
	if idx == model.InputRef {
		q := net.InputQ
		return actInfo{Bits: q.Bits, Unsigned: !q.Signed, Lo: int64(q.Qn()), Hi: int64(q.Qp())}, nil
	}
	l := &net.Layers[idx]
	switch l.Kind {
	case model.KindActQuant:
		q := l.Q
		lo := int64(q.Qn())
		if l.ReLU {
			lo = 0
		}
		return actInfo{Bits: q.Bits, Unsigned: !q.Signed || l.ReLU, Lo: lo, Hi: int64(q.Qp())}, nil
	case model.KindAdd:
		in, err := activationOf(net, l.Inputs[0])
		if err != nil {
			return actInfo{}, err
		}
		sum := actInfo{Lo: 2 * in.Lo, Hi: 2 * in.Hi}
		sum.Bits = dfg.SignedBits(sum.Lo, sum.Hi)
		sum.Unsigned = sum.Lo >= 0
		return sum, nil
	case model.KindMaxPool, model.KindFlatten, model.KindGlobalAvgPool:
		return activationOf(net, l.Inputs[0])
	}
	return actInfo{}, fmt.Errorf("core: layer %d (%s) does not produce a defined activation format", idx, l.Name)
}

// parallelFor runs f(i) for every i in [0, n) on up to `workers`
// goroutines (the calling goroutine included). Indices are handed out by
// an atomic counter, so load balances dynamically; callers must make f
// write results only into per-index slots to stay deterministic.
func parallelFor(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}

// workers returns the lowering worker-pool size for this configuration.
func (cfg Config) workers() int {
	if !cfg.Parallel {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// Compile lowers the network onto the RTM-AP accelerator.
//
// The flow has three stages. A sequential mapping stage sizes the shared
// array pool (Table II "#Arrays"). A per-layer lowering stage — pure:
// each layer's result depends only on that layer's weights, shapes,
// incoming activation format and the pool size — runs across a worker
// pool when cfg.Parallel is set; lowering is deterministic and
// order-independent, so the output is bit-identical to the serial path.
// A final sequential allocation pass assembles the plans in layer order.
func Compile(net *model.Network, cfg Config) (*Compiled, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Par.CAMRows == 0 {
		return nil, fmt.Errorf("core: zero-valued energy parameters; use DefaultConfig")
	}
	if cfg.TempBudget <= 0 {
		cfg.TempBudget = 64
	}
	if cfg.TileFloor <= 0 {
		cfg.TileFloor = 32
	}
	shapes := net.OutShapes(1)

	comp := &Compiled{Net: net, Cfg: cfg}

	// Mapping stage. Array pool: the widest layer's row groups.
	rows := cfg.Par.CAMRows
	for i := range net.Layers {
		l := &net.Layers[i]
		switch l.Kind {
		case model.KindConv, model.KindLinear, model.KindAdd, model.KindMaxPool:
			p := shapes[i].H * shapes[i].W
			if rg := (p + rows - 1) / rows; rg > comp.PoolArrays {
				comp.PoolArrays = rg
			}
		}
	}
	if comp.PoolArrays == 0 {
		comp.PoolArrays = 1
	}

	// Lowering stage: independent per layer. When the layers alone
	// saturate the cores, per-channel DFG construction inside each layer
	// stays serial; when the network has fewer layers than cores, the
	// leftover parallelism is applied within layers instead.
	total := cfg.workers()
	layerWorkers := min(total, len(net.Layers))
	innerCfg := cfg
	innerCfg.Parallel = cfg.Parallel && layerWorkers < total
	plans := make([]*LayerPlan, len(net.Layers))
	errs := make([]error, len(net.Layers))
	parallelFor(len(net.Layers), layerWorkers, func(i int) {
		plans[i], errs[i] = lowerLayer(net, shapes, i, innerCfg, comp.PoolArrays)
	})

	// Allocation pass: sequential, in layer order (also makes the first
	// error deterministic).
	for i := range plans {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: layer %d (%s): %w", i, net.Layers[i].Name, errs[i])
		}
		comp.Layers = append(comp.Layers, plans[i])
	}
	if cfg.VerifyPlans {
		if err := VerifyCompiled(comp); err != nil {
			return nil, err
		}
	}
	if cfg.VerifyDataflow {
		if dataflowVerifier == nil {
			return nil, fmt.Errorf("core: Config.VerifyDataflow set but no verifier registered (blank-import rtmap/internal/dataflow)")
		}
		if err := dataflowVerifier(comp); err != nil {
			return nil, err
		}
	}
	return comp, nil
}

// lowerLayer builds the plan of layer i. It reads only immutable network
// state (weights, shapes, quantizers), so calls for distinct layers are
// safe to run concurrently.
func lowerLayer(net *model.Network, shapes []tensor.Shape, i int, cfg Config, pool int) (*LayerPlan, error) {
	rows := cfg.Par.CAMRows
	l := &net.Layers[i]
	is := net.InputShape
	if idx := l.Inputs[0]; idx != model.InputRef {
		is = shapes[idx]
	}
	os := shapes[i]
	plan := &LayerPlan{
		Index: i, Name: l.Name, Kind: l.Kind,
		InC: is.C, InH: is.H, InW: is.W,
		OutC: os.C, OutH: os.H, OutW: os.W,
		P: os.H * os.W,
	}
	var err error
	switch l.Kind {
	case model.KindConv, model.KindLinear:
		plan.Class = ClassConv
		var ai actInfo
		ai, err = activationOf(net, l.Inputs[0])
		if err != nil {
			return nil, err
		}
		if cfg.Cache != nil {
			key := convKey(l, plan, ai, cfg, pool)
			if hit, ok := cfg.Cache.getPlan(key, i, l.Name); ok {
				return hit, nil
			}
			if err = compileConv(l, plan, cfg, ai, pool); err == nil {
				cfg.Cache.putPlan(key, plan)
			}
		} else {
			err = compileConv(l, plan, cfg, ai, pool)
		}
	case model.KindActQuant:
		plan.Class = ClassQuant
		plan.RequantElems = int64(plan.P) * int64(plan.OutC)
		plan.ActBits = l.Q.Bits
		plan.ActUnsigned = !l.Q.Signed || l.ReLU
	case model.KindAdd:
		plan.Class = ClassAdd
		var ai actInfo
		ai, err = activationOf(net, l.Inputs[0])
		plan.ActBits, plan.ActUnsigned = ai.Bits, ai.Unsigned
		width := ai.Bits + 1
		plan.RowGroups = (plan.P + rows - 1) / rows
		plan.ElemOps = int64(plan.OutC)
		plan.ElemBits = int64(plan.OutC) * int64(width)
		plan.LoadMoveBits = 2 * int64(plan.OutC) * int64(plan.P) * int64(ai.Bits)
		plan.LoadWriteBits = plan.LoadMoveBits
	case model.KindMaxPool:
		plan.Class = ClassPool
		var ai actInfo
		ai, err = activationOf(net, l.Inputs[0])
		plan.ActBits, plan.ActUnsigned = ai.Bits, ai.Unsigned
		plan.RowGroups = (plan.P + rows - 1) / rows
		win := int64(l.Pool.K * l.Pool.K)
		plan.PoolCmpOps = 2 * int64(plan.OutC) * (win - 1)
		plan.PoolCmpBits = plan.PoolCmpOps * int64(ai.Bits)
		plan.LoadMoveBits = int64(is.C) * int64(is.H) * int64(is.W) * int64(ai.Bits)
		plan.LoadWriteBits = int64(plan.OutC) * int64(plan.P) * win * int64(ai.Bits)
	case model.KindGlobalAvgPool:
		plan.Class = ClassGAP
		var ai actInfo
		ai, err = activationOf(net, l.Inputs[0])
		plan.ActBits, plan.ActUnsigned = ai.Bits, ai.Unsigned
		area := int64(is.H * is.W)
		plan.RowGroups = 1
		plan.ElemOps = int64(plan.OutC) * (area - 1)
		sumBits := dfg.SignedBits(ai.Lo*area, ai.Hi*area)
		plan.ElemBits = plan.ElemOps * int64(sumBits)
		plan.RequantElems = int64(plan.OutC) // peripheral divide
		plan.LoadMoveBits = int64(is.C) * area * int64(ai.Bits)
		plan.LoadWriteBits = plan.LoadMoveBits
	case model.KindFlatten:
		plan.Class = ClassFree
	default:
		err = fmt.Errorf("core: unsupported layer kind %v", l.Kind)
	}
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// compileConv plans and emits one conv/linear layer.
func compileConv(l *model.Layer, plan *LayerPlan, cfg Config, ai actInfo, pool int) error {
	par := cfg.Par
	w := l.W
	k := w.Fh * w.Fw
	plan.K = k
	plan.ActBits, plan.ActUnsigned = ai.Bits, ai.Unsigned
	plan.RowGroups = (plan.P + par.CAMRows - 1) / par.CAMRows
	maxReplicas := pool / plan.RowGroups
	if maxReplicas < 1 {
		maxReplicas = 1
	}

	tempBudget := cfg.TempBudget
	for attempt := 0; ; attempt++ {
		err := planAndEmitConv(l, plan, cfg, ai, tempBudget, maxReplicas, pool)
		if err == nil {
			return nil
		}
		if attempt >= 3 {
			return err
		}
		// Column pressure: give temporaries more room and retry.
		tempBudget *= 2
		if tempBudget+k+cfg.TileFloor+1 >= par.CAMCols {
			return err
		}
	}
}

// reduceMoveBudget caps inter-strip reduction traffic at this fraction of
// the estimated compute energy when the planner considers splitting
// channels across parallel strips.
const reduceMoveBudget = 0.25

// chooseStrips sweeps candidate strip counts and returns (planes, strips).
func chooseStrips(l *model.Layer, plan *LayerPlan, cfg Config, ai actInfo,
	g, planesCap, maxReplicas, tempBudget int) (int, int) {
	par := cfg.Par
	k := plan.K
	cin, cout := l.W.Cin, l.W.Cout
	nnz := l.W.NNZ()

	// Rough per-layer compute energy: every nonzero weight becomes one
	// add/sub of ~(actBits+3) bit passes across P rows.
	cInBit := 4*3*par.SearchPJPerBit + 4*2*0.25*par.WritePJPerBit
	estCompute := float64(plan.P) * float64(nnz) * float64(ai.Bits+3) * cInBit
	// Accumulator width guess for reduction traffic.
	perFilter := float64(nnz)/float64(cout) + 1
	accWGuess := ai.Bits + bitsFor(int64(perFilter*float64(ai.Hi))) + 1

	bestPlanes, bestStrips := 0, 0
	var bestScore float64
	for target := 1; target <= max(1, maxReplicas); target++ {
		chansPerStrip := (cin + target - 1) / target
		planes := (chansPerStrip + g - 1) / g
		if planes > planesCap {
			planes = planesCap
		}
		if planes < 1 {
			planes = 1
		}
		strips := (cin + planes*g - 1) / (planes * g)
		replicas := min(strips, maxReplicas)
		moveBits := float64(replicas-1) * float64(plan.P) * float64(cout) * float64(accWGuess)
		movePJ := moveBits * par.MovePJPerBit
		allowance := reduceMoveBudget * estCompute
		if par.MoveAllowancePJ > allowance {
			allowance = par.MoveAllowancePJ
		}
		if replicas > 1 && movePJ > allowance {
			continue
		}
		// Latency score: compute work divided by parallel strips, with a
		// mild penalty for the extra tiles smaller accumulator budgets
		// force (definitions are recomputed per tile).
		accSlots := max(1, par.DomainsPerTrack/accWGuess)
		availAcc := par.CAMCols - 1 - tempBudget - planes*k
		if availAcc < 1 {
			continue
		}
		accCols := min((cout+accSlots-1)/accSlots, availAcc)
		tile := min(accCols*accSlots, cout)
		tiles := (cout + tile - 1) / tile
		rounds := (strips + replicas - 1) / replicas
		score := float64(nnz) / float64(replicas) * float64(rounds) * (1 + 0.15*float64(tiles-1))
		if bestStrips == 0 || score < bestScore {
			bestScore, bestPlanes, bestStrips = score, planes, strips
		}
	}
	if bestStrips == 0 {
		// No candidate met the movement budget; fall back to maximum
		// residency (fewest strips).
		planes := (cin + g - 1) / g
		if planes > planesCap {
			planes = planesCap
		}
		bestPlanes = planes
		bestStrips = (cin + planes*g - 1) / (planes * g)
	}
	return bestPlanes, bestStrips
}

func bitsFor(v int64) int {
	b := 0
	for ; v > 0; v >>= 1 {
		b++
	}
	return b
}

func planAndEmitConv(l *model.Layer, plan *LayerPlan, cfg Config, ai actInfo,
	tempBudget, maxReplicas, maxPool int) error {
	par := cfg.Par
	w := l.W
	k := plan.K
	cin, cout := w.Cin, w.Cout

	// Channel-to-domain packing: G channel slots per input plane.
	g := par.DomainsPerTrack / ai.Bits
	if g < 1 {
		return fmt.Errorf("activation width %d exceeds nanowire domains", ai.Bits)
	}
	planesCap := (par.CAMCols - 1 - tempBudget - cfg.TileFloor) / k
	if planesCap < 1 {
		return fmt.Errorf("patch size %d leaves no room for input planes (temp budget %d)", k, tempBudget)
	}
	// Strip-count selection is the latency/data-movement trade of §IV-B:
	// more parallel strips cut latency linearly but every extra strip adds
	// an inter-AP partial-sum reduction (P·Cout·accW bits over the
	// interconnect). We sweep the feasible strip counts and take the
	// fastest plan whose reduction traffic stays below a fixed fraction of
	// the layer's estimated compute energy — which is what keeps overall
	// movement near the 3% the paper reports (§V-C).
	planes, strips := chooseStrips(l, plan, cfg, ai, g, planesCap, maxReplicas, tempBudget)
	capacity := planes * g
	replicas := strips
	if replicas > maxReplicas {
		replicas = maxReplicas
	}
	plan.Planes, plan.ChansPerPlane = planes, g
	plan.Strips, plan.Replicas = strips, replicas
	plan.LoadRounds = (strips + replicas - 1) / replicas

	// Exact accumulator width from weight counts: row o's channel sum lies
	// in [pos·lo − neg·hi, pos·hi − neg·lo] over all input channels.
	accW := 1
	{
		kTot := w.Cin * k
		for o := 0; o < cout; o++ {
			pos, neg := 0, 0
			for _, v := range w.W[o*kTot : (o+1)*kTot] {
				switch {
				case v > 0:
					pos++
				case v < 0:
					neg++
				}
			}
			lo := int64(pos)*ai.Lo - int64(neg)*ai.Hi
			hi := int64(pos)*ai.Hi - int64(neg)*ai.Lo
			if b := dfg.SignedBits(lo, hi); b > accW {
				accW = b
			}
		}
	}
	if accW > par.DomainsPerTrack {
		return fmt.Errorf("accumulator width %d exceeds %d domains", accW, par.DomainsPerTrack)
	}
	plan.AccWidth = accW
	// Accumulators pack along nanowire domains (§III "true multi-bit
	// storage"): each accumulator column holds ⌊domains/accW⌋ partial sums.
	slots := par.DomainsPerTrack / accW
	if slots < 1 {
		slots = 1
	}
	// Adaptive column split: accumulators take only the columns they need
	// (domain packing covers `slots` outputs per column); everything else
	// becomes temp space for CSE definitions and chains. tempBudget is the
	// floor reserved for temporaries (doubled on retry).
	availForAcc := par.CAMCols - 1 - planes*k - tempBudget
	if availForAcc < 1 {
		return fmt.Errorf("no columns left for accumulators (planes=%d, temps=%d)", planes, tempBudget)
	}
	accColCount := (cout + slots - 1) / slots
	if accColCount > availForAcc {
		accColCount = availForAcc
	}
	tile := accColCount * slots
	if tile > cout {
		tile = cout
	}
	plan.TileSize = tile
	plan.Tiles = (cout + tile - 1) / tile
	// Output-channel tiles are independent (no cross-tile reduction), so
	// spare arrays run them in parallel — the paper's "multiple APs can be
	// used to meet the requirements of each layer".
	plan.OutGroups = maxPool / (plan.RowGroups * replicas)
	if plan.OutGroups > plan.Tiles {
		plan.OutGroups = plan.Tiles
	}
	if plan.OutGroups < 1 {
		plan.OutGroups = 1
	}

	// Physical column map: [carry | inputs | accumulators | temps].
	next := 0
	carryCol := next
	next++
	inputCols := make([][]int, planes)
	for p := range inputCols {
		inputCols[p] = make([]int, k)
		for i := range inputCols[p] {
			inputCols[p][i] = next
			next++
		}
	}
	accCols := make([]int, accColCount)
	for i := range accCols {
		accCols[i] = next
		next++
	}
	var tempCols []int
	for next < par.CAMCols {
		tempCols = append(tempCols, next)
		next++
	}

	// Resource-aware CSE: definitions live in temp columns for a whole
	// channel fragment, so their count is capped by the actual temp pool
	// (chains need a little headroom on top).
	// Definitions release their columns as soon as their last consumer
	// row folds (eager accumulates), so peak liveness is well below the
	// definition count; allow extraction past the pool size and let the
	// retry path widen the temp pool if a layer's peak truly overflows.
	maxDefs := 2 * (len(tempCols) - 16)
	if maxDefs < 8 {
		maxDefs = 8
	}
	opt := dfg.Options{CSE: cfg.CSE, MaxDefs: maxDefs}
	plan.CG = codegen.Stats{}
	plan.AddSubOps, plan.NaiveOps = 0, 0
	plan.StripPlans = nil
	plan.TileSizes = nil
	plan.ReduceOps, plan.ReduceBits, plan.ReduceMoveBits = 0, 0, 0

	if cfg.KeepPrograms {
		plan.StripPlans = make([]StripPlan, strips)
		for s := range plan.StripPlans {
			lo := s * capacity
			hi := lo + capacity
			if hi > cin {
				hi = cin
			}
			for c := lo; c < hi; c++ {
				plan.StripPlans[s].Channels = append(plan.StripPlans[s].Channels, c)
			}
		}
	}

	for t := 0; t < plan.Tiles; t++ {
		rowLo := t * tile
		rowHi := rowLo + tile
		if rowHi > cout {
			rowHi = cout
		}
		tsize := rowHi - rowLo
		plan.TileSizes = append(plan.TileSizes, tsize)

		// Build (in parallel) the per-channel slice DFGs of this tile.
		graphs := make([]*dfg.Graph, cin)
		build := func(c int) {
			s := w.Slice(c).RowRange(rowLo, rowHi)
			gph := dfg.Build(s, opt)
			gph.AnnotateWidths(ai.Lo, ai.Hi)
			graphs[c] = gph
		}
		parallelFor(cin, cfg.workers(), build)

		for s := 0; s < strips; s++ {
			chLo := s * capacity
			chHi := chLo + capacity
			if chHi > cin {
				chHi = cin
			}
			lay := codegen.Layout{
				K: k, ActBits: ai.Bits, ActUnsigned: ai.Unsigned,
				AccWidth: accW, TileSize: tsize, AccSlots: slots,
				Planes: planes, ChansPerPlane: g,
				InputCols: inputCols, AccCols: accCols[:(tsize+slots-1)/slots],
				CarryCol: carryCol, TempCols: tempCols,
				InputBase: 0, AccBase: 0, CarryBase: 0,
			}
			b, err := codegen.NewTileBuilder(lay)
			if err != nil {
				return err
			}
			for c := chLo; c < chHi; c++ {
				if err := b.AddChannel(c-chLo, graphs[c]); err != nil {
					return fmt.Errorf("tile %d strip %d: %w", t, s, err)
				}
			}
			tp, err := b.Finish()
			if err != nil {
				return err
			}
			plan.CG.Add(tp.Stats)
			if cfg.KeepPrograms {
				plan.StripPlans[s].Programs = append(plan.StripPlans[s].Programs, tp)
			}
		}

		for c := 0; c < cin; c++ {
			plan.AddSubOps += graphs[c].NumOps()
			s := w.Slice(c).RowRange(rowLo, rowHi)
			if n := s.NNZ(); n > 0 {
				plan.NaiveOps += n - 1
			}
		}

		// Inter-strip adder tree for this tile.
		merges := replicas - 1
		plan.ReduceOps += merges * tsize
		plan.ReduceBits += merges * tsize * accW
		plan.ReduceMoveBits += int64(merges) * int64(plan.P) * int64(tsize) * int64(accW)
	}

	// Input staging (consumer-side accounting). Output-parallel array
	// groups each stage their own copy of the inputs.
	plan.LoadMoveBits = int64(plan.InC) * int64(plan.InH) * int64(plan.InW) * int64(ai.Bits)
	plan.LoadWriteBits = int64(cin) * int64(plan.P) * int64(k) * int64(ai.Bits) * int64(plan.OutGroups)
	return nil
}
