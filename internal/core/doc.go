// Package core is the compiler driver — the paper's primary contribution
// (Fig. 3a): it takes a trained ternary network and produces, per layer,
// the complete mapping and instruction-level plan for the RTM-AP
// accelerator: im2col row/column mapping, channel-to-domain packing,
// output-channel tiling under the 256-column budget, per-channel slice
// DFGs (unroll + constant folding, optional CSE), bitwidth annotation,
// column allocation, in-/out-of-place selection, and the accumulation
// phase (local accumulate, inter-strip adder tree, fused requantize).
//
// Beyond single-device plans, Partition splits a Compiled plan into
// contiguous layer-range pipeline stages (balanced on caller-supplied
// per-layer costs, with per-boundary activation live sets) for
// pipeline-parallel execution across a device fleet.
package core
