package core

import (
	"runtime"
	"sync"

	"rtmap/internal/dfg"
	"rtmap/internal/model"
)

// OpCounts carries the Table II "#Adds/Subs" metrics of one network: the
// DFG add/sub count over full (untiled) weight slices, which is the
// compiler-level quantity the paper reports, for both evaluated
// configurations.
type OpCounts struct {
	Unroll int // loop unrolling + constant folding only
	CSE    int // all optimizations of Fig. 3a
	// PerLayer maps conv-layer plan order to (unroll, cse) pairs.
	PerLayer [][2]int
}

// CountOps computes the slice-DFG operation counts of every conv/linear
// layer without emitting programs (full Cout slices, no output tiling — the
// arithmetic-level metric of §IV-A; the executed, tiled counts live in
// LayerPlan.AddSubOps).
func CountOps(net *model.Network, parallel bool) (OpCounts, error) {
	if err := net.Validate(); err != nil {
		return OpCounts{}, err
	}
	var oc OpCounts
	for i := range net.Layers {
		l := &net.Layers[i]
		if l.Kind != model.KindConv && l.Kind != model.KindLinear {
			continue
		}
		cin := l.W.Cin
		un := make([]int, cin)
		cs := make([]int, cin)
		count := func(c int) {
			s := l.W.Slice(c)
			un[c] = dfg.Build(s, dfg.Options{}).NumOps()
			cs[c] = dfg.Build(s, dfg.Options{CSE: true}).NumOps()
		}
		if parallel && cin > 1 {
			var wg sync.WaitGroup
			ch := make(chan int)
			for w := 0; w < runtime.GOMAXPROCS(0); w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for c := range ch {
						count(c)
					}
				}()
			}
			for c := 0; c < cin; c++ {
				ch <- c
			}
			close(ch)
			wg.Wait()
		} else {
			for c := 0; c < cin; c++ {
				count(c)
			}
		}
		layerUn, layerCSE := 0, 0
		for c := 0; c < cin; c++ {
			layerUn += un[c]
			layerCSE += cs[c]
		}
		oc.Unroll += layerUn
		oc.CSE += layerCSE
		oc.PerLayer = append(oc.PerLayer, [2]int{layerUn, layerCSE})
	}
	return oc, nil
}
