package core

import (
	"rtmap/internal/dfg"
	"rtmap/internal/model"
)

// OpCounts carries the Table II "#Adds/Subs" metrics of one network: the
// DFG add/sub count over full (untiled) weight slices, which is the
// compiler-level quantity the paper reports, for both evaluated
// configurations.
type OpCounts struct {
	Unroll int // loop unrolling + constant folding only
	CSE    int // all optimizations of Fig. 3a
	// PerLayer maps conv-layer plan order to (unroll, cse) pairs.
	PerLayer [][2]int
}

// CountOps computes the slice-DFG operation counts of every conv/linear
// layer without emitting programs (full Cout slices, no output tiling — the
// arithmetic-level metric of §IV-A; the executed, tiled counts live in
// LayerPlan.AddSubOps). A non-nil cache memoizes per-layer results keyed
// on the weight content, so repeated sweeps over one network are free.
func CountOps(net *model.Network, parallel bool, cache *Cache) (OpCounts, error) {
	if err := net.Validate(); err != nil {
		return OpCounts{}, err
	}
	workers := 1
	if parallel {
		workers = Config{Parallel: true}.workers()
	}
	var oc OpCounts
	for i := range net.Layers {
		l := &net.Layers[i]
		if l.Kind != model.KindConv && l.Kind != model.KindLinear {
			continue
		}
		var v [2]int
		ok := false
		if cache != nil {
			v, ok = cache.getOps(opsKey(l))
		}
		if !ok {
			v = countLayerOps(l, workers)
			if cache != nil {
				cache.putOps(opsKey(l), v)
			}
		}
		oc.Unroll += v[0]
		oc.CSE += v[1]
		oc.PerLayer = append(oc.PerLayer, v)
	}
	return oc, nil
}

// countLayerOps builds the full-slice DFGs of one conv/linear layer under
// both compiler configurations and returns (unroll, cse) op counts.
func countLayerOps(l *model.Layer, workers int) [2]int {
	cin := l.W.Cin
	un := make([]int, cin)
	cs := make([]int, cin)
	parallelFor(cin, workers, func(c int) {
		s := l.W.Slice(c)
		un[c] = dfg.Build(s, dfg.Options{}).NumOps()
		cs[c] = dfg.Build(s, dfg.Options{CSE: true}).NumOps()
	})
	var v [2]int
	for c := 0; c < cin; c++ {
		v[0] += un[c]
		v[1] += cs[c]
	}
	return v
}
