package core

import (
	"rtmap/internal/codegen"
	"rtmap/internal/energy"
	"rtmap/internal/model"
)

// Config selects the compiler configuration. The paper evaluates `unroll`
// (CSE=false) and `unroll+CSE` (CSE=true).
type Config struct {
	Par energy.Params
	// CSE enables the common-subexpression-elimination step of §IV-A.
	CSE bool
	// KeepPrograms retains executable AP programs per (strip, tile) for
	// functional simulation. Off for large networks where only the cost
	// statistics are needed.
	KeepPrograms bool
	// TempBudget reserves CAM columns for DFG temporaries (doubled
	// automatically when a layer's schedule runs out).
	TempBudget int
	// TileFloor is the minimum accumulator-tile size the planner accepts
	// before it stops trading tile columns for input planes.
	TileFloor int
	// Parallel enables the goroutine-parallel lowering driver: layers are
	// lowered across a worker pool sized by GOMAXPROCS; when the network
	// has fewer layers than cores, per-channel DFG construction inside
	// each layer parallelizes as well. Output is bit-identical to the
	// serial path.
	Parallel bool
	// Cache, when non-nil, is consulted for content-addressed per-layer
	// lowering results (keyed on weights, activation format, shapes, array
	// pool and the relevant Config fields), so config sweeps over the same
	// network reuse lowered layers. nil disables caching.
	Cache *Cache
	// VerifyPlans runs the independent static plan verifier
	// (VerifyCompiled) over every retained tile program — including
	// cache hits — before Compile returns, failing the compile on any
	// violated invariant. Debug/CI mode: it audits the programs
	// KeepPrograms retains, and costs one plan-audit pass per compile,
	// so the steady-state execution path is unaffected.
	VerifyPlans bool
	// VerifyDataflow runs the whole-artifact dataflow verifier (the
	// cross-layer abstract interpreter of internal/dataflow) over the
	// compiled result: per-column liveness and producer/consumer chains
	// across every (strip, tile) boundary, value intervals composed
	// across layer boundaries, and accumulator-overflow proofs. The
	// verifier registers itself via RegisterDataflowVerifier when its
	// package is linked in; setting this flag without that registration
	// fails the compile rather than silently skipping the audit.
	VerifyDataflow bool
}

// DefaultConfig returns the paper's unroll+CSE configuration, with the
// parallel lowering driver and the process-wide artifact cache enabled.
func DefaultConfig() Config {
	return Config{
		Par:        energy.Default(),
		CSE:        true,
		TempBudget: 48,
		TileFloor:  32,
		Parallel:   true,
		Cache:      SharedCache,
	}
}

// LayerClass groups layers by their cost-model treatment.
type LayerClass int

const (
	// ClassConv covers conv and linear layers (the full AP pipeline).
	ClassConv LayerClass = iota
	// ClassQuant is the fused ReLU+requantize peripheral step.
	ClassQuant
	// ClassAdd is an elementwise residual addition on the AP.
	ClassAdd
	// ClassPool is max pooling (AP compare/select passes).
	ClassPool
	// ClassGAP is global average pooling (AP adds + peripheral divide).
	ClassGAP
	// ClassFree has no hardware cost (flatten).
	ClassFree
)

func (c LayerClass) String() string {
	switch c {
	case ClassConv:
		return "conv"
	case ClassQuant:
		return "quant"
	case ClassAdd:
		return "add"
	case ClassPool:
		return "pool"
	case ClassGAP:
		return "gap"
	case ClassFree:
		return "free"
	}
	return "?"
}

// StripPlan records one channel strip's resident channels and (optionally)
// its executable tile programs.
type StripPlan struct {
	Channels []int // model input-channel indices, resident-slot order
	Programs []*codegen.TileProgram
}

// LayerPlan is the compiled form of one layer.
type LayerPlan struct {
	Index int
	Name  string
	Kind  model.Kind
	Class LayerClass

	// Shapes.
	InC, InH, InW    int
	OutC, OutH, OutW int
	P                int // OutH·OutW — output positions mapped to CAM rows

	// Activation format at the layer input.
	ActBits     int
	ActUnsigned bool

	// Conv/linear mapping (§III/IV-B).
	K             int // Fh·Fw patch size
	RowGroups     int // APs per strip
	Strips        int // channel strips (total)
	Replicas      int // strips running in parallel
	LoadRounds    int // sequential strip rounds when Strips > Replicas
	Planes        int // input column sets per AP
	ChansPerPlane int
	Tiles         int // output-channel tiles
	TileSize      int // accumulators per full tile
	OutGroups     int // tiles processed on disjoint arrays in parallel
	AccWidth      int // partial-sum width

	// Emission statistics aggregated over (tile × channel).
	CG codegen.Stats

	// Table II metrics.
	AddSubOps int // DFG add/sub count (MVM convention)
	NaiveOps  int // one-accumulate-per-nonzero convention (§IV-A "19 ops")

	// Inter-strip accumulation (adder tree).
	ReduceOps      int
	ReduceBits     int
	ReduceMoveBits int64

	// Input staging (consumer-side accounting; see DESIGN.md).
	LoadMoveBits  int64 // unique activation bits over the interconnect
	LoadWriteBits int64 // CAM write bits incl. im2col duplication

	// Non-conv costs.
	RequantElems int64 // quant layers: fused ReLU+requantize elements
	ElemOps      int64 // add layers: SIMD add instructions
	ElemBits     int64
	PoolCmpOps   int64 // pool layers: compare/select instructions
	PoolCmpBits  int64

	// Functional-simulation programs (Config.KeepPrograms).
	StripPlans []StripPlan
	TileSizes  []int // actual size of each tile (last may be smaller)
}

// InCEffective returns the input-channel count of a conv layer plan
// (patch inputs are per channel; linear layers use flattened features).
func (l *LayerPlan) InCEffective() int {
	if l.Class != ClassConv {
		return 0
	}
	if l.Kind == model.KindLinear {
		return l.InC * l.InH * l.InW
	}
	return l.InC
}

// Compiled is the result of compiling a network.
type Compiled struct {
	Net    *model.Network
	Cfg    Config
	Layers []*LayerPlan

	// PoolArrays is the number of 256×256 arrays the network needs — the
	// "#Arrays" column of Table II (the widest layer's row groups; deeper
	// layers reuse those arrays as channel-strip replicas).
	PoolArrays int
}

// TotalAddSub sums the Table II "#Adds/Subs" metric over all layers.
func (c *Compiled) TotalAddSub() int {
	t := 0
	for _, l := range c.Layers {
		t += l.AddSubOps
	}
	return t
}

// TotalNaive sums the unoptimized accumulate-op convention.
func (c *Compiled) TotalNaive() int {
	t := 0
	for _, l := range c.Layers {
		t += l.NaiveOps
	}
	return t
}

// ConvPlans returns the conv/linear layer plans in definition order (the
// per-layer axis of Fig. 4).
func (c *Compiled) ConvPlans() []*LayerPlan {
	var out []*LayerPlan
	for _, l := range c.Layers {
		if l.Class == ClassConv {
			out = append(out, l)
		}
	}
	return out
}
