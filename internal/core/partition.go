package core

import (
	"fmt"
	"sort"

	"rtmap/internal/model"
)

// StageRange is one contiguous stage of a sharded plan: the layer index
// range [Lo, Hi) it executes, the per-layer cost it was balanced on, and
// the activation tensors that must cross its outgoing boundary.
type StageRange struct {
	Lo, Hi int
	// CostNS is the sum of the per-layer costs handed to Partition.
	CostNS float64
	// XferRefs lists, for every stage but the last, the producer indices
	// (model.InputRef for the network input) of the tensors live across
	// the outgoing boundary: produced before Hi and consumed at or after
	// Hi. A later stage may only read tensors its predecessor shipped, so
	// this set is exactly the inter-stage traffic — including tensors that
	// merely pass through a stage on their way to a residual add further
	// down.
	XferRefs []int
	// XferBits is the total payload of XferRefs on the interconnect
	// (element count × the producer's output bit width).
	XferBits int64
}

// Layers returns the number of layers in the stage.
func (s StageRange) Layers() int { return s.Hi - s.Lo }

// ShardPlan partitions a compiled network into contiguous pipeline
// stages. Stage boundaries always land between layers, so every stage is
// a well-formed sub-network once its XferRefs are resident.
type ShardPlan struct {
	Stages []StageRange
	// Requested is the stage count asked for before clamping to the layer
	// count (a stage must hold at least one layer).
	Requested int
}

// BottleneckNS returns the largest per-stage cost — the quantity
// Partition minimizes.
func (sp *ShardPlan) BottleneckNS() float64 {
	var m float64
	for _, s := range sp.Stages {
		if s.CostNS > m {
			m = s.CostNS
		}
	}
	return m
}

// Partition splits a compiled plan into (up to) k contiguous stages,
// minimizing the bottleneck stage cost over the given per-layer costs —
// the classic linear-partition problem, solved exactly by dynamic
// programming (layer counts are small). costNS is typically the
// per-layer LatencyNS of a sim analysis; any non-negative cost works.
//
// k < 1 is treated as 1 and k > len(costNS) is clamped down (every stage
// executes at least one layer), so a caller asking for more stages than
// the network has layers gets one layer per stage.
func Partition(c *Compiled, k int, costNS []float64) (*ShardPlan, error) {
	n := len(c.Layers)
	if n == 0 {
		return nil, fmt.Errorf("core: cannot partition an empty plan")
	}
	if len(costNS) != n {
		return nil, fmt.Errorf("core: %d per-layer costs for %d layers", len(costNS), n)
	}
	for i, v := range costNS {
		if v < 0 {
			return nil, fmt.Errorf("core: layer %d has negative cost %g", i, v)
		}
	}
	requested := k
	if k < 1 {
		k = 1
		requested = 1
	}
	if k > n {
		k = n
	}

	prefix := make([]float64, n+1)
	for i, v := range costNS {
		prefix[i+1] = prefix[i] + v
	}
	bounds := balanceBoundaries(prefix, k)
	sp := &ShardPlan{Requested: requested}
	for s := 0; s < k; s++ {
		st := StageRange{Lo: bounds[s], Hi: bounds[s+1]}
		st.CostNS = prefix[st.Hi] - prefix[st.Lo]
		if s < k-1 {
			st.XferRefs = liveAcross(c.Net, st.Hi)
			for _, ref := range st.XferRefs {
				st.XferBits += tensorBits(c, ref)
			}
		}
		sp.Stages = append(sp.Stages, st)
	}
	return sp, nil
}

// balanceBoundaries returns k+1 boundary indices (0 … n) minimizing the
// maximum stage cost, each stage non-empty, given the cost prefix sums
// (len n+1). dp[s][j] is the best bottleneck for the first j layers in s
// stages; ties resolve to the earliest split so the result is
// deterministic.
func balanceBoundaries(prefix []float64, k int) []int {
	n := len(prefix) - 1
	const inf = 1e300
	dp := make([][]float64, k+1)
	cut := make([][]int, k+1)
	for s := range dp {
		dp[s] = make([]float64, n+1)
		cut[s] = make([]int, n+1)
		for j := range dp[s] {
			dp[s][j] = inf
		}
	}
	for j := 1; j <= n; j++ {
		dp[1][j] = prefix[j]
	}
	for s := 2; s <= k; s++ {
		for j := s; j <= n; j++ {
			for i := s - 1; i < j; i++ {
				tail := prefix[j] - prefix[i]
				b := max(dp[s-1][i], tail)
				if b < dp[s][j] {
					dp[s][j] = b
					cut[s][j] = i
				}
			}
		}
	}
	bounds := make([]int, k+1)
	bounds[k] = n
	for s := k; s >= 2; s-- {
		bounds[s-1] = cut[s][bounds[s]]
	}
	return bounds
}

// liveAcross returns the sorted producer refs live across the boundary
// before layer b: tensors produced at index < b (or the network input)
// consumed by any layer at index >= b.
func liveAcross(net *model.Network, b int) []int {
	seen := map[int]bool{}
	var refs []int
	for j := b; j < len(net.Layers); j++ {
		for _, in := range net.Layers[j].Inputs {
			if in < b && !seen[in] {
				seen[in] = true
				refs = append(refs, in)
			}
		}
	}
	sort.Ints(refs) // producer-index order: a stable wire order
	return refs
}

// tensorBits prices one boundary tensor: element count times the
// producer's output width. Conv/linear outputs are pre-requantization
// partial sums (AccWidth); quant outputs carry the quantizer's code
// width; pooling and flatten preserve their input width; residual adds
// widen by one carry bit.
func tensorBits(c *Compiled, ref int) int64 {
	if ref == model.InputRef {
		sh := c.Net.InputShape
		return int64(sh.C*sh.H*sh.W) * int64(c.Net.InputQ.Bits)
	}
	plan := c.Layers[ref]
	elems := int64(plan.OutC * plan.OutH * plan.OutW)
	return elems * int64(outWidth(c, ref))
}

// outWidth resolves the output bit width of layer idx (or the network
// input) by walking producer chains through width-preserving layers.
func outWidth(c *Compiled, idx int) int {
	if idx == model.InputRef {
		return c.Net.InputQ.Bits
	}
	plan := c.Layers[idx]
	lay := &c.Net.Layers[idx]
	switch plan.Class {
	case ClassConv:
		return plan.AccWidth
	case ClassQuant:
		return lay.Q.Bits
	case ClassAdd:
		return outWidth(c, lay.Inputs[0]) + 1
	default: // pool, gap, flatten: width-preserving
		return outWidth(c, lay.Inputs[0])
	}
}
