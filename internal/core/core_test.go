package core

import (
	"testing"

	"rtmap/internal/model"
)

func compileTiny(t *testing.T, cse, keep bool) *Compiled {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CSE = cse
	cfg.KeepPrograms = keep
	c, err := Compile(model.TinyCNN(model.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileTinyCNN(t *testing.T) {
	c := compileTiny(t, true, false)
	if c.PoolArrays != 1 {
		t.Errorf("pool arrays %d, want 1 (8x8 inputs fit one array)", c.PoolArrays)
	}
	if c.TotalAddSub() <= 0 {
		t.Error("no DFG ops counted")
	}
	for _, p := range c.Layers {
		if p.Class != ClassConv {
			continue
		}
		if p.Tiles < 1 || p.TileSize < 1 || p.Strips < 1 || p.Replicas < 1 {
			t.Errorf("layer %s: degenerate plan %+v", p.Name, p)
		}
		if p.CG.AccumOps == 0 {
			t.Errorf("layer %s: no accumulate ops", p.Name)
		}
		if p.AccWidth < p.ActBits {
			t.Errorf("layer %s: accumulator width %d below input width %d", p.Name, p.AccWidth, p.ActBits)
		}
	}
}

func TestCSECutsOps(t *testing.T) {
	plain := compileTiny(t, false, false)
	opt := compileTiny(t, true, false)
	if opt.TotalAddSub() > plain.TotalAddSub() {
		t.Errorf("CSE increased ops: %d → %d", plain.TotalAddSub(), opt.TotalAddSub())
	}
}

func TestCompileResNet18Mapping(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size compile")
	}
	cfg := DefaultConfig()
	net := model.ResNet18(model.Config{ActBits: 4, Sparsity: 0.8, Seed: 1})
	c, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Table II: 49 arrays of 256×256 for ResNet-18/ImageNet.
	if c.PoolArrays != 49 {
		t.Errorf("pool arrays %d, want 49", c.PoolArrays)
	}
	convs := c.ConvPlans()
	if len(convs) != 21 {
		t.Fatalf("conv plans %d, want 21 (20 convs + fc)", len(convs))
	}
	// Stem: P = 112² = 12544 → 49 row groups, single strip (3 channels).
	stem := convs[0]
	if stem.RowGroups != 49 || stem.Strips != 1 {
		t.Errorf("stem mapping: %d row groups / %d strips, want 49/1", stem.RowGroups, stem.Strips)
	}
	// Deep 512-channel convs: single row group, several strips.
	deep := convs[len(convs)-2] // last block conv before fc
	if deep.RowGroups != 1 {
		t.Errorf("deep conv row groups %d, want 1", deep.RowGroups)
	}
	if deep.Strips < 2 {
		t.Errorf("deep conv strips %d, want >= 2 (512 channels)", deep.Strips)
	}
	if c.TotalAddSub() < 100_000 {
		t.Errorf("ResNet-18 total adds %d implausibly low", c.TotalAddSub())
	}
	// Temp budget respected.
	for _, p := range convs {
		if p.CG.TempHighWater > 2*cfg.TempBudget*4 {
			t.Errorf("layer %s temp high water %d", p.Name, p.CG.TempHighWater)
		}
	}
}

func TestVGGArraysMatchTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size compile")
	}
	for _, build := range []func(model.Config) *model.Network{model.VGG9, model.VGG11} {
		net := build(model.Config{ActBits: 4, Sparsity: 0.85, Seed: 2})
		c, err := Compile(net, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Table II: 4 arrays for both VGG models on CIFAR10 (32² inputs).
		if c.PoolArrays != 4 {
			t.Errorf("%s pool arrays %d, want 4", net.Name, c.PoolArrays)
		}
	}
}

func TestActivationInfoPropagation(t *testing.T) {
	net := model.TinyResNet(model.DefaultConfig())
	c, err := Compile(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Layers {
		if p.Class == ClassConv && p.ActBits <= 0 {
			t.Errorf("layer %s: activation bits %d", p.Name, p.ActBits)
		}
	}
	// The residual add operates on the signed shared grid.
	for i, p := range c.Layers {
		if p.Kind == model.KindAdd {
			if c.Net.Layers[i].Kind != model.KindAdd {
				t.Fatal("plan/layer misalignment")
			}
			if p.ActUnsigned {
				t.Errorf("residual add %s should see signed operands", p.Name)
			}
		}
	}
}

func TestNaiveOpsExceedCSEOps(t *testing.T) {
	c := compileTiny(t, true, false)
	if c.TotalNaive() < c.TotalAddSub() {
		t.Errorf("naive accumulate count %d below optimized %d", c.TotalNaive(), c.TotalAddSub())
	}
}

func TestKeepProgramsPopulatesStrips(t *testing.T) {
	c := compileTiny(t, true, true)
	found := false
	for _, p := range c.Layers {
		if p.Class != ClassConv {
			continue
		}
		if len(p.StripPlans) != p.Strips {
			t.Errorf("layer %s: %d strip plans, want %d", p.Name, len(p.StripPlans), p.Strips)
		}
		for _, sp := range p.StripPlans {
			if len(sp.Programs) != p.Tiles {
				t.Errorf("layer %s: %d programs, want %d", p.Name, len(sp.Programs), p.Tiles)
			}
			for _, tp := range sp.Programs {
				if err := tp.Prog.Validate(); err != nil {
					t.Errorf("layer %s: invalid program: %v", p.Name, err)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no programs kept")
	}
}
