package core

import (
	"math"
	"testing"

	"rtmap/internal/model"
)

// bruteBottleneck enumerates every contiguous k-way partition of costs
// and returns the smallest achievable maximum stage cost.
func bruteBottleneck(costs []float64, k int) float64 {
	n := len(costs)
	best := math.Inf(1)
	var rec func(start, stages int, worst float64)
	rec = func(start, stages int, worst float64) {
		if stages == 1 {
			var sum float64
			for _, v := range costs[start:] {
				sum += v
			}
			if m := math.Max(worst, sum); m < best {
				best = m
			}
			return
		}
		var sum float64
		for end := start + 1; end <= n-stages+1; end++ {
			sum += costs[end-1]
			rec(end, stages-1, math.Max(worst, sum))
		}
	}
	rec(0, k, 0)
	return best
}

func TestPartitionMatchesBruteForceOptimum(t *testing.T) {
	c := compileTiny(t, true, false)
	n := len(c.Layers)
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = float64((i*7)%13) + 0.25 // deterministic, uneven
	}
	for k := 1; k <= n; k++ {
		sp, err := Partition(c, k, costs)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteBottleneck(costs, k)
		if got := sp.BottleneckNS(); math.Abs(got-want) > 1e-9 {
			t.Errorf("k=%d: bottleneck %g, brute-force optimum %g", k, got, want)
		}
	}
}

func TestPartitionContiguityAndCosts(t *testing.T) {
	c := compileTiny(t, true, false)
	costs := make([]float64, len(c.Layers))
	for i := range costs {
		costs[i] = float64(i + 1)
	}
	sp, err := Partition(c, 3, costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(sp.Stages))
	}
	next := 0
	for si, st := range sp.Stages {
		if st.Lo != next || st.Hi <= st.Lo {
			t.Fatalf("stage %d: range [%d,%d) not contiguous from %d", si, st.Lo, st.Hi, next)
		}
		var sum float64
		for _, v := range costs[st.Lo:st.Hi] {
			sum += v
		}
		if math.Abs(sum-st.CostNS) > 1e-9 {
			t.Errorf("stage %d: CostNS %g, layer sum %g", si, st.CostNS, sum)
		}
		next = st.Hi
	}
	if next != len(c.Layers) {
		t.Fatalf("stages cover [0,%d), want [0,%d)", next, len(c.Layers))
	}
	if sp.Stages[len(sp.Stages)-1].XferRefs != nil {
		t.Error("last stage must have no outgoing transfers")
	}
}

func TestPartitionClampsStageCount(t *testing.T) {
	c := compileTiny(t, true, false)
	n := len(c.Layers)
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1
	}
	sp, err := Partition(c, n+50, costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages) != n {
		t.Errorf("k=%d: got %d stages, want clamp to layer count %d", n+50, len(sp.Stages), n)
	}
	if sp.Requested != n+50 {
		t.Errorf("Requested %d, want %d", sp.Requested, n+50)
	}
	for si, st := range sp.Stages {
		if st.Layers() != 1 {
			t.Errorf("stage %d: %d layers, want exactly 1", si, st.Layers())
		}
	}
	if sp, err = Partition(c, 0, costs); err != nil || len(sp.Stages) != 1 {
		t.Errorf("k=0: stages=%d err=%v, want single stage", len(sp.Stages), err)
	}
}

// Every boundary's XferRefs must be exactly the live set: tensors
// produced before the boundary with a consumer at or after it. TinyResNet
// exercises skip connections that pass over a boundary.
func TestPartitionTransferLiveSets(t *testing.T) {
	cfg := DefaultConfig()
	c, err := Compile(model.TinyResNet(model.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, len(c.Layers))
	for i := range costs {
		costs[i] = 1
	}
	for k := 2; k <= 6; k++ {
		sp, err := Partition(c, k, costs)
		if err != nil {
			t.Fatal(err)
		}
		for si, st := range sp.Stages[:len(sp.Stages)-1] {
			want := map[int]bool{}
			for j := st.Hi; j < len(c.Net.Layers); j++ {
				for _, in := range c.Net.Layers[j].Inputs {
					if in < st.Hi {
						want[in] = true
					}
				}
			}
			got := map[int]bool{}
			for _, r := range st.XferRefs {
				if got[r] {
					t.Errorf("k=%d stage %d: duplicate ref %d", k, si, r)
				}
				got[r] = true
				if st.XferBits <= 0 {
					t.Errorf("k=%d stage %d: non-empty transfer set with %d bits", k, si, st.XferBits)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d stage %d: refs %v, want set %v", k, si, st.XferRefs, want)
			}
			for r := range want {
				if !got[r] {
					t.Errorf("k=%d stage %d: missing live ref %d", k, si, r)
				}
			}
		}
	}
}

func TestPartitionRejectsBadCosts(t *testing.T) {
	c := compileTiny(t, true, false)
	if _, err := Partition(c, 2, make([]float64, len(c.Layers)+1)); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := make([]float64, len(c.Layers))
	bad[0] = -1
	if _, err := Partition(c, 2, bad); err == nil {
		t.Error("negative cost accepted")
	}
}
