package cluster

import (
	"errors"
	"testing"
	"time"
)

// drive pushes synthetic probe outcomes through the state machine
// without a live prober.
func drive(h *Health, node string, ok bool, times int) {
	for i := 0; i < times; i++ {
		var err error
		if !ok {
			err = errors.New("synthetic probe failure")
		}
		h.observe(node, ok, err, true)
	}
}

func TestHealthStateMachine(t *testing.T) {
	const n = "http://n:1"
	h := NewHealth([]string{n}, HealthOptions{FailThreshold: 3, SuccessThreshold: 2}, nil)

	if got := h.State(n); got != StateUp {
		t.Fatalf("initial state %v, want up", got)
	}

	// One failure: suspect, still routable.
	drive(h, n, false, 1)
	if got := h.State(n); got != StateSuspect || !got.Routable() {
		t.Fatalf("after 1 failure: %v routable=%v, want suspect/routable", got, got.Routable())
	}
	// A success clears the suspicion.
	drive(h, n, true, 1)
	if got := h.State(n); got != StateUp {
		t.Fatalf("suspect + success = %v, want up", got)
	}

	// FailThreshold consecutive failures confirm death.
	drive(h, n, false, 3)
	if got := h.State(n); got != StateDown || got.Routable() {
		t.Fatalf("after 3 failures: %v routable=%v, want down/unroutable", got, got.Routable())
	}

	// First success after death: probation — routable, but on thin ice.
	drive(h, n, true, 1)
	if got := h.State(n); got != StateProbation || !got.Routable() {
		t.Fatalf("down + success = %v, want probation/routable", got)
	}
	// One strike in probation goes straight back down.
	drive(h, n, false, 1)
	if got := h.State(n); got != StateDown {
		t.Fatalf("probation + failure = %v, want down", got)
	}
	// SuccessThreshold consecutive successes restore full membership.
	drive(h, n, true, 2)
	if got := h.State(n); got != StateUp {
		t.Fatalf("down + 2 successes = %v, want up", got)
	}
}

// TestHealthRejoinHookFiresOnceOnRejoin is the regression anchor for
// breaker hygiene: the hook must fire exactly on down → probation, not
// on suspect blips or probation → up.
func TestHealthRejoinHookFiresOnceOnRejoin(t *testing.T) {
	const n = "http://n:1"
	h := NewHealth([]string{n}, HealthOptions{FailThreshold: 2, SuccessThreshold: 2}, nil)
	var rejoins []string
	h.SetRejoinHook(func(node string) { rejoins = append(rejoins, node) })

	drive(h, n, false, 1) // suspect
	drive(h, n, true, 1)  // back up — no rejoin
	if len(rejoins) != 0 {
		t.Fatalf("rejoin hook fired on a suspect blip: %v", rejoins)
	}
	drive(h, n, false, 2) // down
	drive(h, n, true, 2)  // probation (hook), then up (no second firing)
	if len(rejoins) != 1 || rejoins[0] != n {
		t.Fatalf("rejoin hook fired %v, want exactly one firing for %s", rejoins, n)
	}
}

func TestHealthPassiveReportsConfirmDeath(t *testing.T) {
	const n = "http://n:1"
	h := NewHealth([]string{n}, HealthOptions{FailThreshold: 3}, nil)
	// Proxied-attempt connect failures count like probes: death is
	// confirmed between probe rounds.
	for i := 0; i < 3; i++ {
		h.ReportAttempt(n, false, errors.New("connection refused"))
	}
	if got := h.State(n); got != StateDown {
		t.Fatalf("3 passive failures left state %v, want down", got)
	}
	// Passive failures must not bump the probe counters.
	snap := h.Snapshot()
	if snap[0].Probes != 0 || snap[0].ProbeFail != 0 {
		t.Fatalf("passive reports counted as probes: %+v", snap[0])
	}
}

func TestHealthUnknownNodeStaysDown(t *testing.T) {
	h := NewHealth([]string{"http://n:1"}, HealthOptions{}, nil)
	if got := h.State("http://typo:1"); got != StateDown {
		t.Fatalf("unknown node state %v, want down", got)
	}
	h.ReportAttempt("http://typo:1", true, nil) // must not panic or register
	if len(h.Snapshot()) != 1 {
		t.Fatal("unknown node leaked into the member table")
	}
}

func TestHealthStopWithoutStart(t *testing.T) {
	h := NewHealth([]string{"http://n:1"}, HealthOptions{}, nil)
	done := make(chan struct{})
	go func() { h.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start hung")
	}
}
