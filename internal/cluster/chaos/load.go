package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"rtmap/internal/serve"
	"rtmap/internal/workload"
)

// DriveOptions shapes a closed-loop load run against the router.
type DriveOptions struct {
	// Models to cycle through (default tinycnn + tinyresnet). Workers is
	// the closed-loop client count (default 4).
	Models  []string
	Workers int
	// Variants drives that many seed-variants of each model (default 1:
	// just seed 1). Distinct variants hash independently on the ring, so
	// this is the knob that spreads one architecture's load across nodes
	// (the cluster bench uses it for its scaling arms).
	Variants int
	// Pinned dedicates Workers closed-loop clients to EVERY variant
	// instead of cycling one shared pool across all of them. The cycling
	// pool equalizes per-variant rates — the slowest owner gates every
	// worker's cycle — while pinned workers let each node run at its own
	// capacity, which is what an aggregate-throughput measurement needs.
	Pinned bool
	// Class is the request priority class sent with every request
	// ("interactive" exercises the hedging path); DeadlineMS attaches a
	// soft deadline. Both empty/zero by default.
	Class      string
	DeadlineMS int
	// Inputs is the sample count per request (default 2); Seed the
	// workload generator seed (default 7).
	Inputs int
	Seed   uint64
}

// Report is the outcome tally of one Drive run. The chaos gates are
// Errors == 0 (no accepted request was dropped: every answer is a clean
// 200, 429 or 503) and Mismatches == 0 (every 200 carried bit-exact
// logits regardless of serving node, retry or hedge).
type Report struct {
	Sent       int64
	OK         int64
	Rejected   int64 // clean backpressure: HTTP 429/503 with an error document
	Errors     int64 // transport failures and non-backpressure HTTP errors
	Mismatches int64 // 200s whose logits differ from the model's reference

	// ByCategory counts outcomes: "ok", "http_429", "http_503",
	// "transport", "http_<other>", "mismatch".
	ByCategory map[string]int64
	// Samples holds the first few error/mismatch descriptions.
	Samples []string
}

func (r *Report) record(category string, sample string) {
	if r.ByCategory == nil {
		r.ByCategory = map[string]int64{}
	}
	r.ByCategory[category]++
	if sample != "" && len(r.Samples) < 8 {
		r.Samples = append(r.Samples, sample)
	}
}

// Clean reports whether the run met the chaos gates.
func (r *Report) Clean() bool { return r.Errors == 0 && r.Mismatches == 0 }

// String summarizes the tally.
func (r *Report) String() string {
	return fmt.Sprintf("sent %d ok %d rejected %d errors %d mismatches %d",
		r.Sent, r.OK, r.Rejected, r.Errors, r.Mismatches)
}

// Drive runs closed-loop load through the router until ctx ends,
// checking every 200 for bit-exactness against the model's first
// accepted answer (inference is deterministic, so any divergence means
// a retry, hedge or failover corrupted a result).
func (c *Cluster) Drive(ctx context.Context, opts DriveOptions) (*Report, error) {
	if len(opts.Models) == 0 {
		opts.Models = []string{"tinycnn", "tinyresnet"}
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Inputs <= 0 {
		opts.Inputs = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	if opts.Variants <= 0 {
		opts.Variants = 1
	}

	var variants []*driveVariant
	for _, m := range opts.Models {
		sh, ok := serve.ZooShape(m)
		if !ok {
			return nil, fmt.Errorf("chaos: model %q is not in the zoo", m)
		}
		for v := 1; v <= opts.Variants; v++ {
			req := serve.InferRequest{Model: m, Seed: uint64(v)}
			for _, in := range workload.Inputs(sh, opts.Inputs, opts.Seed) {
				req.Inputs = append(req.Inputs, in.Data)
			}
			b, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			variants = append(variants, &driveVariant{
				name:  fmt.Sprintf("%s/seed%d", m, v),
				model: m,
				body:  b,
			})
		}
	}

	var (
		mu     sync.Mutex
		report Report
		refs   = map[string]string{} // variant -> canonical logits key
	)
	client := &http.Client{Timeout: 30 * time.Second}

	fire := func(v *driveVariant) {
		category, sample, logits := c.shoot(ctx, client, v, opts)
		mu.Lock()
		defer mu.Unlock()
		report.Sent++
		switch category {
		case "ok":
			report.OK++
			key := logitsKey(logits)
			if ref, seen := refs[v.name]; !seen {
				refs[v.name] = key
			} else if ref != key {
				report.Mismatches++
				report.record("mismatch", fmt.Sprintf("%s: logits diverged from reference", v.name))
				return
			}
		case "http_429", "http_503":
			report.Rejected++
		case "cancelled":
			// ctx ended mid-request: not a cluster outcome at all.
			report.Sent--
			return
		default:
			report.Errors++
		}
		report.record(category, sample)
	}

	var wg sync.WaitGroup
	if opts.Pinned {
		for _, v := range variants {
			for w := 0; w < opts.Workers; w++ {
				wg.Add(1)
				go func(v *driveVariant) {
					defer wg.Done()
					for ctx.Err() == nil {
						fire(v)
					}
				}(v)
			}
		}
	} else {
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ctx.Err() == nil; i++ {
					fire(variants[(w+i)%len(variants)])
				}
			}(w)
		}
	}
	wg.Wait()
	return &report, nil
}

// driveVariant is one (model, seed) request body the driver cycles.
type driveVariant struct {
	name  string // model/seedN, the reference-logits key
	model string
	body  []byte
}

// shoot issues one request and classifies its outcome.
func (c *Cluster) shoot(ctx context.Context, client *http.Client, v *driveVariant, opts DriveOptions) (category, sample string, logits [][]int32) {
	model := v.model
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.routerURL+"/v1/infer", bytes.NewReader(v.body))
	if err != nil {
		return "transport", err.Error(), nil
	}
	req.Header.Set("Content-Type", "application/json")
	if opts.Class != "" {
		req.Header.Set(serve.ClassHeader, opts.Class)
	}
	if opts.DeadlineMS > 0 {
		req.Header.Set(serve.DeadlineHeader, fmt.Sprint(opts.DeadlineMS))
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return "cancelled", "", nil
		}
		return "transport", fmt.Sprintf("%s: %v", model, err), nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return "cancelled", "", nil
		}
		return "transport", fmt.Sprintf("%s: reading body: %v", model, err), nil
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var out serve.InferResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			return "http_200_malformed", fmt.Sprintf("%s: %v", model, err), nil
		}
		for _, r := range out.Results {
			logits = append(logits, r.Logits)
		}
		return "ok", "", logits
	case http.StatusTooManyRequests:
		return "http_429", "", nil
	case http.StatusServiceUnavailable:
		return "http_503", "", nil
	default:
		return fmt.Sprintf("http_%d", resp.StatusCode),
			fmt.Sprintf("%s: HTTP %d: %.120s", model, resp.StatusCode, raw), nil
	}
}

// logitsKey canonicalizes a response's logits for bit-exact comparison.
func logitsKey(logits [][]int32) string {
	var b bytes.Buffer
	for _, row := range logits {
		for _, v := range row {
			fmt.Fprintf(&b, "%d,", v)
		}
		b.WriteByte(';')
	}
	return b.String()
}
