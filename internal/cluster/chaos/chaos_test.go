package chaos

import (
	"context"
	"testing"
	"time"

	"rtmap/internal/cluster"
	"rtmap/internal/dispatch"
	"rtmap/internal/serve"
)

// testOptions is the fast-reflex cluster the suite runs: 3 small nodes,
// 50ms probes, sub-second breaker cooloff, tight attempt timeouts.
func testOptions() Options {
	return Options{
		Nodes: 3,
		Node: serve.Options{
			Devices:  2,
			MaxBatch: 4,
			Window:   time.Millisecond,
			Queue:    64,
		},
		Router: cluster.Options{
			Health: cluster.HealthOptions{
				Interval: 50 * time.Millisecond,
				// Timeout > the slow fault's 50ms delay: a slow node must
				// fail requests' attempt timeouts, not its health probes.
				Timeout:          250 * time.Millisecond,
				FailThreshold:    3,
				SuccessThreshold: 2,
			},
			Breaker: cluster.BreakerOptions{Threshold: 5, Cooloff: 250 * time.Millisecond},
			Timeout: dispatch.AttemptTimeouts{
				Interactive: 2 * time.Second,
				Standard:    5 * time.Second,
				Bulk:        10 * time.Second,
			},
		},
	}
}

// driveDuring runs Drive in the background, hands control to body, then
// stops the load and returns the report.
func driveDuring(t *testing.T, c *Cluster, opts DriveOptions, body func()) *Report {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var report *Report
	var derr error
	go func() {
		defer close(done)
		report, derr = c.Drive(ctx, opts)
	}()
	body()
	cancel()
	<-done
	if derr != nil {
		t.Fatal(derr)
	}
	return report
}

// waitState polls until the router's health table reads the node in the
// wanted state.
func waitState(t *testing.T, c *Cluster, i int, want cluster.NodeState, within time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	for time.Since(start) < within {
		if c.Router().Health().State(c.NodeURL(i)) == want {
			return time.Since(start)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %d never reached state %v within %v (state %v)",
		i, want, within, c.Router().Health().State(c.NodeURL(i)))
	return 0
}

// victimFor returns the index of the node that primarily owns the
// driven variant (model, seed 1): the node whose death actually moves
// traffic. Killing an arbitrary index could pick a node that owns
// neither driven model and prove nothing about failover.
func victimFor(t *testing.T, c *Cluster, model string) int {
	t.Helper()
	key := cluster.RouteKey(model, 0, nil, 1)
	owner := c.Router().Ring().Owners(key, 1)[0]
	for i := 0; i < c.Nodes(); i++ {
		if c.NodeURL(i) == owner {
			return i
		}
	}
	t.Fatalf("owner %s of %s is not a chaos node", owner, model)
	return -1
}

func assertClean(t *testing.T, report *Report) {
	t.Helper()
	t.Logf("chaos load: %s (%v)", report, report.ByCategory)
	if report.OK == 0 {
		t.Fatal("no request succeeded at all")
	}
	if !report.Clean() {
		t.Fatalf("chaos gates violated: %s, samples: %v", report, report.Samples)
	}
}

// TestChaosKillRestartMidLoad is the headline scenario: a node is
// hard-killed under load and later revived. Gates: zero accepted
// requests dropped, bit-exact results throughout, the dead node is
// confirmed down and rebalanced around, and the rejoiner comes back
// from probation with a clean breaker.
func TestChaosKillRestartMidLoad(t *testing.T) {
	c, err := Start(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	victim := victimFor(t, c, "tinycnn")
	report := driveDuring(t, c, DriveOptions{Workers: 6}, func() {
		time.Sleep(700 * time.Millisecond) // warm both models on their owners

		if err := c.Kill(victim); err != nil {
			t.Error(err)
			return
		}
		detect := waitState(t, c, victim, cluster.StateDown, 5*time.Second)
		t.Logf("kill confirmed down in %v", detect)
		time.Sleep(500 * time.Millisecond) // serve through the hole

		if err := c.Restart(victim); err != nil {
			t.Error(err)
			return
		}
		waitState(t, c, victim, cluster.StateUp, 5*time.Second)
		if got := c.Router().Breakers().State(c.NodeURL(victim)); got != cluster.BreakerClosed {
			t.Errorf("rejoined node's breaker is %v, want closed (clean probation slate)", got)
		}
		time.Sleep(500 * time.Millisecond) // serve with the rejoiner back
	})
	assertClean(t, report)

	_, retries, _, _, _ := c.Router().Metrics().Counters()
	if retries == 0 {
		t.Error("a mid-load kill should have forced at least one retry")
	}
	opens, resets := c.Router().Breakers().Stats()
	if resets == 0 {
		t.Errorf("rejoin never reset a breaker (opens %d, resets %d)", opens, resets)
	}
}

// TestChaosHangFault black-holes one node at the wire: connections open
// and never answer. The class-derived attempt timeout must unstick
// every attempt and fail it over.
func TestChaosHangFault(t *testing.T) {
	opts := testOptions()
	opts.Router.Timeout = dispatch.AttemptTimeouts{
		Interactive: 400 * time.Millisecond,
		Standard:    400 * time.Millisecond,
		Bulk:        time.Second,
	}
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	report := driveDuring(t, c, DriveOptions{Workers: 4}, func() {
		time.Sleep(600 * time.Millisecond)
		c.Inject(1, cluster.Fault{Kind: cluster.FaultHang})
		// Hung probes time out too, so health confirms the node down and
		// routing moves off it; in the window before that, attempts hit
		// their 400ms timeout and fail over.
		waitState(t, c, 1, cluster.StateDown, 5*time.Second)
		time.Sleep(400 * time.Millisecond)
		c.Inject(1, cluster.Fault{})
		waitState(t, c, 1, cluster.StateUp, 5*time.Second)
		time.Sleep(300 * time.Millisecond)
	})
	assertClean(t, report)
}

// TestChaosSlowFault delays every response from one node by 50ms. That
// is degradation, not death: the node must stay routable and the run
// stays clean with no forced failover.
func TestChaosSlowFault(t *testing.T) {
	c, err := Start(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	report := driveDuring(t, c, DriveOptions{Workers: 4, Class: "interactive"}, func() {
		time.Sleep(500 * time.Millisecond)
		c.Inject(2, cluster.Fault{Kind: cluster.FaultSlow, Delay: 50 * time.Millisecond})
		time.Sleep(time.Second)
		if got := c.Router().Health().State(c.NodeURL(2)); got == cluster.StateDown {
			t.Error("a merely slow node was declared down")
		}
		c.Inject(2, cluster.Fault{})
	})
	assertClean(t, report)
}

// TestChaosPartitionHealsWithoutRestart cuts the wire to one node (the
// node itself keeps running) and then heals it: the node must return to
// service with no restart — the operational difference between a
// partition and a crash.
func TestChaosPartitionHealsWithoutRestart(t *testing.T) {
	c, err := Start(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	report := driveDuring(t, c, DriveOptions{Workers: 4}, func() {
		time.Sleep(600 * time.Millisecond)
		c.Inject(0, cluster.Fault{Kind: cluster.FaultPartition})
		waitState(t, c, 0, cluster.StateDown, 5*time.Second)
		time.Sleep(400 * time.Millisecond)
		c.Inject(0, cluster.Fault{}) // heal: no Restart call
		recover := waitState(t, c, 0, cluster.StateUp, 5*time.Second)
		t.Logf("partition healed to up in %v", recover)
		time.Sleep(300 * time.Millisecond)
	})
	assertClean(t, report)
}

// TestChaosFlapFault alternates one node dead/alive on a 300ms period —
// the pathological case for naive health checking. Probation's
// one-strike rule keeps the flapper from absorbing traffic it will
// drop, and the run must stay clean.
func TestChaosFlapFault(t *testing.T) {
	c, err := Start(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	report := driveDuring(t, c, DriveOptions{Workers: 4}, func() {
		time.Sleep(600 * time.Millisecond)
		c.Inject(1, cluster.Fault{Kind: cluster.FaultFlap, Period: 300 * time.Millisecond})
		time.Sleep(2 * time.Second)
		c.Inject(1, cluster.Fault{})
		waitState(t, c, 1, cluster.StateUp, 5*time.Second)
		time.Sleep(300 * time.Millisecond)
	})
	assertClean(t, report)
}

// TestChaosInteractiveHedgingUnderKill drives interactive traffic (the
// hedging path) through a mid-load kill: hedges and retries may race
// freely, and every accepted answer must still be bit-exact.
func TestChaosInteractiveHedgingUnderKill(t *testing.T) {
	c, err := Start(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	victim := victimFor(t, c, "tinycnn")
	report := driveDuring(t, c, DriveOptions{Workers: 6, Class: "interactive"}, func() {
		time.Sleep(700 * time.Millisecond)
		if err := c.Kill(victim); err != nil {
			t.Error(err)
			return
		}
		waitState(t, c, victim, cluster.StateDown, 5*time.Second)
		time.Sleep(500 * time.Millisecond)
	})
	assertClean(t, report)
}
