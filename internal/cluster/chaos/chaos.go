package chaos

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"rtmap/internal/cluster"
	"rtmap/internal/core"
	"rtmap/internal/serve"
)

// Options configures a chaos cluster.
type Options struct {
	// Nodes is the rtmap-serve node count (default 3).
	Nodes int
	// Node is the per-node serving template. Addr is ignored (every node
	// binds a fresh loopback port); a nil Cache is replaced by one cache
	// shared across all nodes, so a model admitted on node A re-admits
	// warm on node B after failover — the cluster-level analog of the
	// single-node artifact cache.
	Node serve.Options
	// Router is the router template. Addr, Nodes and Transport are
	// overwritten (the transport is wrapped in the fault injector).
	Router cluster.Options
	// Logf receives harness log lines (nil: silent).
	Logf func(format string, args ...any)
}

// node is one managed rtmap-serve instance. addr is pinned at first
// listen so Restart revives the node on the same port — the identity
// the ring and the health table know it by.
type node struct {
	url   string
	addr  string
	opts  serve.Options
	srv   *serve.Server
	done  chan struct{}
	alive bool
}

// Cluster is a running chaos cluster: N nodes, one router, one fault
// injector.
type Cluster struct {
	opts     Options
	Injector *cluster.FaultInjector

	router     *cluster.Router
	routerURL  string
	routerDone chan struct{}

	mu    sync.Mutex
	nodes []*node
}

// Start boots the nodes and the router. Callers must Close.
func Start(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 3
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Node.Cache == nil {
		opts.Node.Cache = core.NewCache()
	}
	if opts.Node.Logf == nil {
		opts.Node.Logf = func(string, ...any) {}
	}

	c := &Cluster{opts: opts}
	urls := make([]string, 0, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		n := &node{opts: opts.Node}
		n.opts.Addr = "127.0.0.1:0"
		if err := c.boot(n); err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		urls = append(urls, n.url)
		opts.Logf("chaos: node %d up at %s", i, n.url)
	}

	ropts := opts.Router
	ropts.Addr = "127.0.0.1:0"
	ropts.Nodes = urls
	c.Injector = cluster.NewFaultInjector(ropts.Transport)
	ropts.Transport = c.Injector
	if ropts.Logf == nil {
		ropts.Logf = opts.Logf
	}
	r, err := cluster.New(ropts)
	if err != nil {
		c.Close()
		return nil, err
	}
	addr, err := r.Listen()
	if err != nil {
		c.Close()
		return nil, err
	}
	c.router = r
	c.routerURL = "http://" + addr.String()
	c.routerDone = make(chan struct{})
	go func() {
		defer close(c.routerDone)
		if err := r.Serve(); err != nil {
			opts.Logf("chaos: router serve: %v", err)
		}
	}()
	opts.Logf("chaos: router up at %s (%d nodes)", c.routerURL, opts.Nodes)
	return c, nil
}

// boot starts (or revives) one node on n.opts.Addr, filling its url,
// addr, srv, done and alive fields.
func (c *Cluster) boot(n *node) error {
	srv := serve.New(n.opts)
	var addr net.Addr
	var err error
	// A revived node reclaims its old port; give the kernel a few
	// rounds to release it after the Abort that killed the previous
	// incarnation.
	for attempt := 0; ; attempt++ {
		addr, err = srv.Listen()
		if err == nil {
			break
		}
		if attempt >= 20 {
			return fmt.Errorf("chaos: rebinding %s: %w", n.opts.Addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	n.srv = srv
	n.addr = addr.String()
	n.url = "http://" + n.addr
	n.opts.Addr = n.addr // pin the port for future restarts
	n.done = make(chan struct{})
	n.alive = true
	done := n.done
	go func() {
		defer close(done)
		if err := srv.Serve(); err != nil {
			c.opts.Logf("chaos: node %s serve: %v", addr, err)
		}
	}()
	return nil
}

// RouterURL returns the router's base URL.
func (c *Cluster) RouterURL() string { return c.routerURL }

// Router exposes the router (health table, metrics, breakers).
func (c *Cluster) Router() *cluster.Router { return c.router }

// NodeURL returns node i's base URL (its ring identity).
func (c *Cluster) NodeURL(i int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i].url
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Kill hard-stops node i mid-flight: its listener and connections close
// immediately and nothing drains, exactly like a crashed process. The
// port stays reserved for Restart.
func (c *Cluster) Kill(i int) error {
	c.mu.Lock()
	n := c.nodes[i]
	if !n.alive {
		c.mu.Unlock()
		return fmt.Errorf("chaos: node %d already dead", i)
	}
	n.alive = false
	c.mu.Unlock()
	err := n.srv.Abort()
	<-n.done
	c.opts.Logf("chaos: node %d (%s) killed", i, n.url)
	return err
}

// Restart revives a killed node on its original port with a fresh
// server (state gone, like a restarted process — but sharing the
// artifact cache, so re-admissions are warm).
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[i]
	if n.alive {
		return fmt.Errorf("chaos: node %d already alive", i)
	}
	if err := c.boot(n); err != nil {
		return err
	}
	c.opts.Logf("chaos: node %d (%s) restarted", i, n.url)
	return nil
}

// Inject arms (or clears, with cluster.Fault{}) a wire-level fault
// between the router and node i.
func (c *Cluster) Inject(i int, f cluster.Fault) {
	c.mu.Lock()
	url := c.nodes[i].url
	c.mu.Unlock()
	c.Injector.Set(url, f)
	c.opts.Logf("chaos: node %d fault = %s", i, f.Kind)
}

// Close tears the whole cluster down: router first (so nothing proxies
// into dying nodes), then every live node.
func (c *Cluster) Close() {
	if c.router != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = c.router.Shutdown(ctx)
		cancel()
		<-c.routerDone
	}
	c.mu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		if !n.alive {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = n.srv.Shutdown(ctx)
		cancel()
		<-n.done
	}
}
