// Package chaos is the in-process multi-node fault-injection harness
// behind the cluster robustness suite and rtmap-bench -cluster.
//
// Start boots N real rtmap-serve nodes on loopback listeners plus a
// cluster.Router fronting them, with a cluster.FaultInjector spliced
// into the router's transport. Faults come in two flavors: Kill/Restart
// hard-stop and revive an actual node (the listener closes, so the
// router sees genuine ECONNREFUSED dials), while Inject arms wire-level
// faults — partition, hang, slow, flap — at the router's transport
// without touching the node.
//
// Drive generates closed-loop load through the router and checks the
// two cluster invariants the chaos suite gates on: accepted requests
// are never dropped (every non-rejected answer is a well-formed 200),
// and results are bit-exact no matter which node — or which retry or
// hedge attempt — served them.
package chaos
